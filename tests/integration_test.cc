// Property-based integration tests: random BSGF/SGF queries over random
// databases, evaluated under EVERY strategy (and the Pig/Hive baselines),
// must all agree with the naive reference evaluator.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "baselines/baselines.h"
#include "common/rng.h"
#include "ops/one_round.h"
#include "plan/executor.h"
#include "plan/planner.h"
#include "sgf/analyzer.h"
#include "sgf/naive_eval.h"
#include "test_util.h"

namespace gumbo {
namespace {

using plan::Strategy;

cost::ClusterConfig FuzzCluster(Xoshiro256* rng) {
  cost::ClusterConfig c;
  // Randomize the cluster shape too: task counts and reducer counts vary.
  c.nodes = 1 + static_cast<int>(rng->Uniform(4));
  c.map_slots_per_node = 1 + static_cast<int>(rng->Uniform(4));
  c.reduce_slots_per_node = 1 + static_cast<int>(rng->Uniform(4));
  c.split_mb = 0.0001 + rng->UniformDouble() * 0.001;
  c.mb_per_reducer = 0.0001 + rng->UniformDouble() * 0.001;
  return c;
}

// A random guard atom over relation `rel` with `arity` positions: mostly
// distinct variables, sometimes repeated variables or constants.
sgf::Atom RandomGuardAtom(const std::string& rel, uint32_t arity,
                          Xoshiro256* rng, std::vector<std::string>* vars) {
  std::vector<sgf::Term> terms;
  for (uint32_t i = 0; i < arity; ++i) {
    double roll = rng->UniformDouble();
    if (roll < 0.1) {
      terms.push_back(sgf::Term::ConstInt(
          static_cast<int64_t>(rng->Uniform(6))));
    } else if (roll < 0.25 && !vars->empty()) {
      terms.push_back(
          sgf::Term::Var((*vars)[rng->Uniform(vars->size())]));
    } else {
      std::string v = "v" + std::to_string(vars->size());
      vars->push_back(v);
      terms.push_back(sgf::Term::Var(v));
    }
  }
  return sgf::Atom(rel, std::move(terms));
}

// A random conditional atom: guard variables, fresh existentials, and
// constants. Existentials are unique per atom, so guardedness holds by
// construction.
sgf::Atom RandomConditionalAtom(const std::string& rel, uint32_t arity,
                                const std::vector<std::string>& guard_vars,
                                int atom_id, Xoshiro256* rng) {
  std::vector<sgf::Term> terms;
  int fresh = 0;
  for (uint32_t i = 0; i < arity; ++i) {
    double roll = rng->UniformDouble();
    if (roll < 0.55 && !guard_vars.empty()) {
      terms.push_back(
          sgf::Term::Var(guard_vars[rng->Uniform(guard_vars.size())]));
    } else if (roll < 0.7) {
      terms.push_back(sgf::Term::ConstInt(
          static_cast<int64_t>(rng->Uniform(6))));
    } else {
      terms.push_back(sgf::Term::Var("e" + std::to_string(atom_id) + "_" +
                                     std::to_string(fresh++)));
    }
  }
  return sgf::Atom(rel, std::move(terms));
}

sgf::ConditionPtr RandomCondition(size_t num_atoms, Xoshiro256* rng,
                                  size_t* next_atom) {
  if (num_atoms == 1) {
    auto leaf = sgf::Condition::MakeAtom((*next_atom)++);
    if (rng->Bernoulli(0.3)) {
      return sgf::Condition::MakeNot(std::move(leaf));
    }
    return leaf;
  }
  size_t left = 1 + rng->Uniform(num_atoms - 1);
  auto lhs = RandomCondition(left, rng, next_atom);
  auto rhs = RandomCondition(num_atoms - left, rng, next_atom);
  auto node = rng->Bernoulli(0.5)
                  ? sgf::Condition::MakeAnd(std::move(lhs), std::move(rhs))
                  : sgf::Condition::MakeOr(std::move(lhs), std::move(rhs));
  if (rng->Bernoulli(0.15)) {
    return sgf::Condition::MakeNot(std::move(node));
  }
  return node;
}

// A random BSGF over the given guard dataset (name + arity); conditional
// relations are drawn from `cond_pool` (name -> arity).
sgf::BsgfQuery RandomBsgf(
    const std::string& output, const std::string& guard_rel,
    uint32_t guard_arity,
    const std::vector<std::pair<std::string, uint32_t>>& cond_pool,
    int query_id, Xoshiro256* rng) {
  std::vector<std::string> vars;
  sgf::Atom guard = RandomGuardAtom(guard_rel, guard_arity, rng, &vars);
  while (vars.empty()) {
    // All-constant guard: re-roll (select list needs a variable).
    vars.clear();
    guard = RandomGuardAtom(guard_rel, guard_arity, rng, &vars);
  }
  // Select a random non-empty subset of guard variables.
  std::vector<std::string> select;
  for (const std::string& v : vars) {
    if (rng->Bernoulli(0.6)) select.push_back(v);
  }
  if (select.empty()) select.push_back(vars[rng->Uniform(vars.size())]);

  size_t num_atoms = rng->Uniform(4);  // 0..3
  std::vector<sgf::Atom> atoms;
  sgf::ConditionPtr cond;
  if (num_atoms > 0) {
    for (size_t a = 0; a < num_atoms; ++a) {
      const auto& [rel, arity] = cond_pool[rng->Uniform(cond_pool.size())];
      atoms.push_back(RandomConditionalAtom(
          rel, arity, vars, query_id * 10 + static_cast<int>(a), rng));
    }
    // Dedupe identical atoms (the parser would intern them).
    std::vector<sgf::Atom> unique;
    std::vector<size_t> remap(atoms.size());
    for (size_t a = 0; a < atoms.size(); ++a) {
      bool found = false;
      for (size_t u = 0; u < unique.size(); ++u) {
        if (unique[u] == atoms[a]) {
          remap[a] = u;
          found = true;
          break;
        }
      }
      if (!found) {
        remap[a] = unique.size();
        unique.push_back(atoms[a]);
      }
    }
    size_t next = 0;
    cond = RandomCondition(num_atoms, rng, &next);
    // Remap leaf indices onto the deduped atom list.
    struct Remapper {
      static sgf::ConditionPtr Apply(const sgf::Condition& c,
                                     const std::vector<size_t>& remap) {
        switch (c.kind()) {
          case sgf::Condition::Kind::kAtom:
            return sgf::Condition::MakeAtom(remap[c.atom_index()]);
          case sgf::Condition::Kind::kAnd:
            return sgf::Condition::MakeAnd(Apply(*c.lhs(), remap),
                                           Apply(*c.rhs(), remap));
          case sgf::Condition::Kind::kOr:
            return sgf::Condition::MakeOr(Apply(*c.lhs(), remap),
                                          Apply(*c.rhs(), remap));
          case sgf::Condition::Kind::kNot:
            return sgf::Condition::MakeNot(Apply(*c.child(), remap));
        }
        return nullptr;
      }
    };
    cond = Remapper::Apply(*cond, remap);
    atoms = std::move(unique);
  }
  return sgf::BsgfQuery(output, std::move(select), std::move(guard),
                        std::move(atoms), std::move(cond));
}

Relation RandomRelation(const std::string& name, uint32_t arity,
                        size_t tuples, Xoshiro256* rng) {
  Relation rel(name, arity);
  for (size_t i = 0; i < tuples; ++i) {
    Tuple t;
    for (uint32_t a = 0; a < arity; ++a) {
      t.PushBack(Value::Int(static_cast<int64_t>(rng->Uniform(6))));
    }
    rel.AddUnchecked(std::move(t));
  }
  rel.SortAndDedupe();
  return rel;
}

struct FuzzCase {
  sgf::SgfQuery query;
  Database db;
};

FuzzCase RandomCase(uint64_t seed) {
  Xoshiro256 rng(seed);
  FuzzCase fc;
  // Relation pool.
  std::vector<std::pair<std::string, uint32_t>> cond_pool;
  size_t num_rels = 2 + rng.Uniform(3);
  for (size_t i = 0; i < num_rels; ++i) {
    std::string name = "C" + std::to_string(i);
    uint32_t arity = 1 + static_cast<uint32_t>(rng.Uniform(3));
    cond_pool.push_back({name, arity});
    fc.db.Put(RandomRelation(name, arity, 10 + rng.Uniform(40), &rng));
  }
  uint32_t guard_arity = 1 + static_cast<uint32_t>(rng.Uniform(3));
  fc.db.Put(RandomRelation("R", guard_arity, 20 + rng.Uniform(60), &rng));

  // First query over the base guard.
  fc.query.Append(
      RandomBsgf("Z1", "R", guard_arity, cond_pool, 1, &rng));
  // Optionally a second query whose guard is Z1 (nested SGF) and which may
  // also use Z1 as a conditional through the pool.
  if (rng.Bernoulli(0.6)) {
    uint32_t z1_arity = fc.query.subqueries()[0].OutputArity();
    auto pool2 = cond_pool;
    pool2.push_back({"Z1", z1_arity});
    fc.query.Append(RandomBsgf("Z2", "Z1", z1_arity, pool2, 2, &rng));
  }
  return fc;
}

class StrategyFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(StrategyFuzzTest, AllStrategiesAgreeWithNaive) {
  FuzzCase fc = RandomCase(GetParam());
  ASSERT_OK(sgf::ValidateSgf(fc.query)) << fc.query.ToString();
  Xoshiro256 rng(GetParam() ^ 0xabcdef);
  cost::ClusterConfig config = FuzzCluster(&rng);

  std::vector<Strategy> strategies = {
      Strategy::kSeq,     Strategy::kPar,        Strategy::kGreedy,
      Strategy::kOpt,     Strategy::kSeqUnit,    Strategy::kParUnit,
      Strategy::kGreedySgf};
  // OPT-SGF only on 2-subquery cases (cheap enough).
  if (fc.query.size() <= 2) strategies.push_back(Strategy::kOptSgf);
  bool one_round_ok = true;
  for (const auto& q : fc.query.subqueries()) {
    one_round_ok = one_round_ok && ops::CanOneRound(q);
  }
  // 1-ROUND applies per level only when every subquery qualifies.
  if (one_round_ok) strategies.push_back(Strategy::kOneRound);

  for (Strategy s : strategies) {
    for (bool ids : {true, false}) {
      for (bool pack : {true, false}) {
        plan::PlannerOptions opts;
        opts.strategy = s;
        opts.op.tuple_id_refs = ids;
        opts.op.pack_messages = pack;
        opts.sample_size = 32;
        plan::Planner planner(config, opts);
        mr::Engine engine(config);
        Database db = fc.db;
        auto result = plan::ExecuteAndVerify(fc.query, planner, &engine, &db);
        ASSERT_OK(result) << "seed=" << GetParam() << " strategy="
                          << StrategyName(s) << " ids=" << ids
                          << " pack=" << pack << "\n"
                          << fc.query.ToString();
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, StrategyFuzzTest,
                         ::testing::Range<uint64_t>(0, 60));

class BaselineFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(BaselineFuzzTest, BaselinesAgreeWithNaive) {
  FuzzCase fc = RandomCase(GetParam());
  // Baselines support flat queries only: keep just Z1.
  sgf::SgfQuery flat;
  flat.Append(fc.query.subqueries()[0]);
  auto expected = sgf::NaiveEvalSgf(flat, fc.db);
  ASSERT_OK(expected);
  Xoshiro256 rng(GetParam() ^ 0x9999);
  cost::ClusterConfig config = FuzzCluster(&rng);
  for (auto kind : {baselines::BaselineKind::kHivePar,
                    baselines::BaselineKind::kHiveParSemiJoin,
                    baselines::BaselineKind::kPigPar}) {
    auto plan = baselines::PlanBaseline(kind, flat, fc.db);
    ASSERT_OK(plan) << baselines::BaselineName(kind);
    mr::Engine engine(config);
    Database db = fc.db;
    auto result = plan::ExecutePlan(*plan, &engine, &db);
    ASSERT_OK(result);
    EXPECT_TRUE(db.Get("Z1").value()->SetEquals(*expected->Get("Z1").value()))
        << "seed=" << GetParam() << " " << baselines::BaselineName(kind)
        << "\n" << flat.ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BaselineFuzzTest,
                         ::testing::Range<uint64_t>(0, 40));

}  // namespace
}  // namespace gumbo
