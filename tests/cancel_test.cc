// Tests for the fault-tolerance layer (DESIGN.md §11): cancellation
// tokens (deadline + explicit cancel + latch semantics), the seeded
// deterministic FaultInjector, task retry (fault-injected executions
// stay byte-identical to fault-free runs at every worker count; retry
// exhaustion surfaces as a typed retryable error), and the
// QueryService's deadline/cancel/shed behavior: EDF dequeueing, load
// shedding under saturation, prompt dropping of cancelled queued work,
// cache hygiene around cancelled queries, and single-flight planning
// error propagation (the leader's planner error reaches every coalesced
// follower — no hang, including through service destruction).
#include <chrono>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "common/cancel.h"
#include "common/fault.h"
#include "common/scheduler.h"
#include "data/generator.h"
#include "mr/engine.h"
#include "mr/runtime.h"
#include "plan/executor.h"
#include "plan/planner.h"
#include "serve/service.h"
#include "test_util.h"

namespace gumbo {
namespace {

using ::gumbo::testing::ParseSgfOrDie;

// Same shape as tests/serve_test.cc: 4-ary guard R, unary conditionals
// S, T, U, V.
Database MakeTestDb(size_t tuples = 600) {
  data::GeneratorConfig cfg;
  cfg.tuples = tuples;
  cfg.representation_scale = 1.0;
  data::Generator gen(cfg);
  Database db;
  db.Put(gen.Guard("R", 4));
  for (const char* c : {"S", "T", "U", "V"}) {
    db.Put(gen.Conditional(c, 1));
  }
  return db;
}

const char* kQueryA1 =
    "Z := SELECT (x, y, z, w) FROM R(x, y, z, w) "
    "WHERE S(x) AND T(y) AND U(z) AND V(w);";
const char* kQuerySmall = "Z := SELECT x FROM R(x, y, z, w) WHERE S(x);";

// A 17-atom query whose GREEDY grouping plans for tens of ms — long
// enough that everything submitted behind it is reliably still queued
// (the same blocker tests/serve_test.cc uses).
sgf::SgfQuery SlowBlocker() {
  std::string cond;
  for (const char* r : {"S", "T", "U", "V"}) {
    for (const char* v : {"x", "y", "z", "w"}) {
      if (!cond.empty()) cond += " AND ";
      cond += std::string(r) + "(" + v + ")";
    }
  }
  return ParseSgfOrDie(
      "Z := SELECT (x, y, z, w) FROM R(x, y, z, w) WHERE " + cond + ";");
}

// A tiny simulated cluster so a generated relation splits into many map
// tasks / reduce partitions — many distinct fault units per execution.
cost::ClusterConfig ManyTaskCluster() {
  cost::ClusterConfig config;
  config.split_mb = 0.002;
  config.mb_per_reducer = 0.002;
  return config;
}

// ---- CancelToken ------------------------------------------------------------

TEST(CancelTokenTest, StartsClearAndNullTokenIsUncancellable) {
  CancelToken token;
  EXPECT_OK(token.Check());
  EXPECT_FALSE(token.cancelled());
  EXPECT_EQ(token.fired_at(), CancelToken::Clock::time_point::min());
  EXPECT_OK(CheckCancel(nullptr));
  EXPECT_OK(CheckCancel(&token));
}

TEST(CancelTokenTest, ExplicitCancelLatchesFirstReason) {
  CancelToken token;
  token.Cancel("client went away");
  EXPECT_TRUE(token.cancelled());
  const Status first = token.Check();
  EXPECT_EQ(first.code(), StatusCode::kCancelled);
  EXPECT_NE(first.message().find("client went away"), std::string::npos);
  EXPECT_NE(token.fired_at(), CancelToken::Clock::time_point::min());
  // Later cancellations are no-ops: the first reason is sticky.
  token.Cancel("second reason");
  EXPECT_EQ(token.Check().message(), first.message());
}

TEST(CancelTokenTest, PastDeadlineFailsBeforeAnyWork) {
  CancelToken token(0.0);  // deadline already in the past
  const Status s = token.Check();
  EXPECT_EQ(s.code(), StatusCode::kDeadlineExceeded);
  EXPECT_TRUE(token.cancelled());
  // Latched: every later check returns the same terminal status.
  EXPECT_EQ(token.Check().code(), StatusCode::kDeadlineExceeded);
}

TEST(CancelTokenTest, EarliestDeadlineWins) {
  // Tightening: a far deadline then a past one -> fails now.
  CancelToken tightened;
  tightened.SetDeadlineAfterMs(1e9);
  EXPECT_OK(tightened.Check());
  tightened.SetDeadlineAfterMs(0.0);
  EXPECT_EQ(tightened.Check().code(), StatusCode::kDeadlineExceeded);
  // Loosening is ignored: a past deadline then a far one -> still fails.
  CancelToken loosened(0.0);
  loosened.SetDeadlineAfterMs(1e9);
  EXPECT_EQ(loosened.Check().code(), StatusCode::kDeadlineExceeded);
}

TEST(CancelTokenTest, ExplicitCancelStickyOverLaterDeadline) {
  CancelToken token;
  token.Cancel("stop");
  token.SetDeadlineAfterMs(0.0);  // deadline also fires...
  // ...but the already-latched kCancelled is the terminal status.
  EXPECT_EQ(token.Check().code(), StatusCode::kCancelled);
}

TEST(CancelTokenTest, CancelWithStatusCarriesEscalatedFault) {
  CancelToken token;
  token.CancelWithStatus(Status::Unavailable("injected fault escalated"));
  EXPECT_EQ(token.Check().code(), StatusCode::kUnavailable);
}

// ---- FaultInjector ----------------------------------------------------------

TEST(FaultInjectorTest, DecisionsAreAPureFunctionOfTheSeed) {
  const FaultInjector a(1234, 0.3);
  const FaultInjector b(1234, 0.3);
  const FaultInjector c(99, 0.3);  // different seed
  size_t fired = 0;
  size_t diverged_from_c = 0;
  for (int site = 0; site < static_cast<int>(kNumFaultSites); ++site) {
    for (uint64_t unit = 0; unit < 40; ++unit) {
      for (uint32_t attempt = 0; attempt < 3; ++attempt) {
        const bool fa =
            a.ShouldFail(static_cast<FaultSite>(site), unit, attempt);
        EXPECT_EQ(fa,
                  b.ShouldFail(static_cast<FaultSite>(site), unit, attempt));
        if (fa) ++fired;
        if (fa != c.ShouldFail(static_cast<FaultSite>(site), unit, attempt)) {
          ++diverged_from_c;
        }
      }
    }
  }
  // ~30% of 600 decisions fire, and a different seed picks a visibly
  // different fault set.
  EXPECT_GT(fired, 0u);
  EXPECT_LT(fired, 600u);
  EXPECT_GT(diverged_from_c, 0u);
}

TEST(FaultInjectorTest, RateEndpointsAndCounters) {
  const FaultInjector never(7, 0.0);
  const FaultInjector always(7, 1.0);
  for (uint64_t unit = 0; unit < 50; ++unit) {
    EXPECT_FALSE(never.ShouldFail(FaultSite::kMapScan, unit, 0));
    EXPECT_TRUE(always.ShouldFail(FaultSite::kMapScan, unit, 0));
  }
  EXPECT_FALSE(never.active());
  EXPECT_TRUE(always.active());
  EXPECT_EQ(never.injected(), 0u);
  EXPECT_EQ(always.injected(), 50u);
  EXPECT_EQ(always.injected_at(FaultSite::kMapScan), 50u);
  EXPECT_EQ(always.injected_at(FaultSite::kReduceEmit), 0u);
}

TEST(FaultInjectorTest, SiteFilterRestrictsInjection) {
  const FaultInjector only_sort(7, 1.0,
                                1u << static_cast<int>(FaultSite::kShuffleSort));
  EXPECT_TRUE(only_sort.site_enabled(FaultSite::kShuffleSort));
  EXPECT_FALSE(only_sort.site_enabled(FaultSite::kMapScan));
  EXPECT_TRUE(only_sort.ShouldFail(FaultSite::kShuffleSort, 3, 0));
  EXPECT_FALSE(only_sort.ShouldFail(FaultSite::kMapScan, 3, 0));
  EXPECT_FALSE(only_sort.ShouldFail(FaultSite::kPlanner, 3, 0));
  EXPECT_EQ(only_sort.injected_at(FaultSite::kMapScan), 0u);
}

TEST(FaultInjectorTest, RetriesRerollSoModerateRatesTerminate) {
  // Every unit must find a passing attempt within the hash's reroll
  // space — the property that makes any rate < 1 terminate under retry.
  const FaultInjector faults(11, 0.5);
  for (uint64_t unit = 0; unit < 100; ++unit) {
    bool passed = false;
    for (uint32_t attempt = 0; attempt < 64 && !passed; ++attempt) {
      passed = !faults.ShouldFail(FaultSite::kMapScan, unit, attempt);
    }
    EXPECT_TRUE(passed) << "unit " << unit << " failed 64 straight attempts";
  }
}

TEST(FaultInjectorTest, InjectedFaultIsTypedRetryable) {
  const Status s = FaultInjector::InjectedFault(FaultSite::kMapScan, 7, 2);
  EXPECT_EQ(s.code(), StatusCode::kUnavailable);
  EXPECT_TRUE(IsRetryable(s.code()));
  EXPECT_NE(s.message().find("map-scan"), std::string::npos);
}

// ---- Cancellation through the execution stack -------------------------------

// Plans and executes `query` on a dedicated scheduler with the given
// context pieces; returns the executor result.
Result<plan::ExecutionResult> RunOnSnapshot(
    const sgf::SgfQuery& query, const Database& db, Database* outputs,
    Scheduler* scheduler, const CancelToken* cancel = nullptr,
    const FaultInjector* faults = nullptr,
    cost::ClusterConfig cluster = cost::ClusterConfig{},
    uint32_t max_retries = 0) {
  plan::Planner planner(cluster, plan::PlannerOptions{});
  GUMBO_ASSIGN_OR_RETURN(plan::QueryPlan plan, planner.Plan(query, db));
  SchedOptions sched_options = SchedOptions::FromEnv();
  if (max_retries != 0) sched_options.max_task_retries = max_retries;
  mr::Engine engine(cluster, scheduler, sched_options);
  mr::Runtime runtime(&engine);
  SchedContext ctx;
  ctx.scheduler = scheduler;
  ctx.cancel = cancel;
  ctx.faults = faults;
  return plan::ExecutePlanOnSnapshot(plan, runtime, db, outputs, ctx);
}

TEST(ExecutionCancelTest, PastDeadlineRunsZeroMorsels) {
  const Database db = MakeTestDb(400);
  const sgf::SgfQuery query = ParseSgfOrDie(kQueryA1);
  Scheduler scheduler(2);
  CancelToken expired(0.0);
  const uint64_t morsels_before = scheduler.stats().morsels;
  Database outputs;
  auto result = RunOnSnapshot(query, db, &outputs, &scheduler, &expired);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kDeadlineExceeded);
  // The round-start check fired before any task was scheduled: no
  // execution morsels ran and nothing was committed anywhere.
  EXPECT_EQ(scheduler.stats().morsels, morsels_before);
  EXPECT_EQ(outputs.size(), 0u);
}

TEST(ExecutionCancelTest, CancelledRunCommitsNothingToTheDatabase) {
  // ExecutePlan (the mutating path): a cancelled execution must leave
  // the database exactly as it was — no outputs, no intermediates.
  Database db = MakeTestDb(400);
  const size_t base_relations = db.size();
  const sgf::SgfQuery query = ParseSgfOrDie(kQueryA1);
  cost::ClusterConfig cluster;
  plan::Planner planner(cluster, plan::PlannerOptions{});
  auto plan = planner.Plan(query, db);
  ASSERT_OK(plan);
  Scheduler scheduler(2);
  mr::Engine engine(cluster, &scheduler);
  CancelToken cancelled;
  cancelled.Cancel("caller gave up");
  SchedContext ctx;
  ctx.scheduler = &scheduler;
  ctx.cancel = &cancelled;
  auto result = plan::ExecutePlan(*plan, mr::Runtime(&engine), &db, ctx);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kCancelled);
  EXPECT_EQ(db.size(), base_relations);
  EXPECT_FALSE(db.Contains("Z"));
}

TEST(ExecutionCancelTest, MidFlightCancelNeverCorruptsResults) {
  // Race a cancel against a real execution: whichever way the race
  // lands, the outcome is clean — either kCancelled with nothing
  // committed, or a complete result identical to an undisturbed run.
  const Database db = MakeTestDb(600);
  const sgf::SgfQuery query = ParseSgfOrDie(kQueryA1);
  Scheduler scheduler(4);
  Database reference;
  ASSERT_OK(RunOnSnapshot(query, db, &reference, &scheduler));
  const Relation* ref_z = reference.Get("Z").value();

  for (int delay_us : {0, 50, 200, 1000}) {
    CancelToken token;
    std::thread canceller([&] {
      std::this_thread::sleep_for(std::chrono::microseconds(delay_us));
      token.Cancel("race");
    });
    Database outputs;
    auto result = RunOnSnapshot(query, db, &outputs, &scheduler, &token);
    canceller.join();
    if (result.ok()) {
      const Relation* got = outputs.Get("Z").value();
      EXPECT_TRUE(got->words() == ref_z->words());
      EXPECT_TRUE(got->fingerprints() == ref_z->fingerprints());
    } else {
      EXPECT_EQ(result.status().code(), StatusCode::kCancelled);
      EXPECT_EQ(outputs.size(), 0u);
    }
  }
}

// ---- Task retry: byte identity and exhaustion -------------------------------

TEST(RetryTest, FaultInjectedRunsStayByteIdenticalAcrossWorkerCounts) {
  const Database db = MakeTestDb(600);
  const sgf::SgfQuery query = ParseSgfOrDie(kQueryA1);
  const cost::ClusterConfig cluster = ManyTaskCluster();

  Scheduler ref_scheduler(2);
  Database reference;
  ASSERT_OK(RunOnSnapshot(query, db, &reference, &ref_scheduler, nullptr,
                          nullptr, cluster));
  const Relation* ref_z = reference.Get("Z").value();

  const uint32_t exec_sites =
      (1u << static_cast<int>(FaultSite::kMapScan)) |
      (1u << static_cast<int>(FaultSite::kShuffleSort)) |
      (1u << static_cast<int>(FaultSite::kReduceEmit));
  for (size_t workers : {1u, 2u, 8u}) {
    const FaultInjector faults(0xfa11ULL + workers, 0.25, exec_sites);
    Scheduler scheduler(workers);
    Database outputs;
    // A generous retry budget: at rate 0.25 a unit's exhaustion chance
    // is 0.25^11 ~ 2e-7, so the fixed seeds can never strand the test
    // (exhaustion itself is pinned by ExhaustedRetriesEscalate below).
    auto result = RunOnSnapshot(query, db, &outputs, &scheduler, nullptr,
                                &faults, cluster, /*max_retries=*/10);
    ASSERT_OK(result) << "workers=" << workers;
    // Faults really fired and were really retried...
    EXPECT_GT(faults.injected(), 0u) << "workers=" << workers;
    EXPECT_GT(result->metrics.task_retries, 0u) << "workers=" << workers;
    EXPECT_EQ(result->metrics.faults_injected, faults.injected());
    // ...and left no trace in the output bytes.
    const Relation* got = outputs.Get("Z").value();
    EXPECT_TRUE(got->words() == ref_z->words()) << "workers=" << workers;
    EXPECT_TRUE(got->fingerprints() == ref_z->fingerprints())
        << "workers=" << workers;
  }
}

TEST(RetryTest, ExhaustedRetriesEscalateToDeterministicTypedError) {
  const Database db = MakeTestDb(300);
  const sgf::SgfQuery query = ParseSgfOrDie(kQuerySmall);
  for (FaultSite site : {FaultSite::kMapScan, FaultSite::kShuffleSort,
                         FaultSite::kReduceEmit}) {
    // rate 1.0: every attempt of every unit at this site fails, so the
    // retry budget must exhaust and escalate.
    const FaultInjector faults(3, 1.0, 1u << static_cast<int>(site));
    Status first = Status::Ok();
    for (int run = 0; run < 2; ++run) {
      Scheduler scheduler(2);
      Database outputs;
      auto result =
          RunOnSnapshot(query, db, &outputs, &scheduler, nullptr, &faults);
      ASSERT_FALSE(result.ok()) << FaultSiteName(site);
      EXPECT_EQ(result.status().code(), StatusCode::kUnavailable)
          << FaultSiteName(site);
      EXPECT_EQ(outputs.size(), 0u);
      if (run == 0) {
        first = result.status();
      } else {
        // Deterministic: the second run fails with the same code.
        EXPECT_EQ(result.status().code(), first.code());
      }
    }
    EXPECT_GT(faults.injected_at(site), 0u);
  }
}

// ---- QueryService: deadlines, shedding, EDF, cancellation -------------------

TEST(ServiceDeadlineTest, ExpiredTokenFailsFastAndDoesNotPoisonTheCache) {
  Database db = MakeTestDb(300);
  const sgf::SgfQuery query = ParseSgfOrDie(kQueryA1);
  serve::ServiceOptions opts;
  opts.max_inflight = 2;
  serve::QueryService service(&db, opts);

  // Prime the cache with a clean run.
  serve::QueryResponse warm = service.Run(query);
  ASSERT_OK(warm.status);
  EXPECT_FALSE(warm.metrics.plan_cache_hit);

  // An already-expired deadline: the query is answered without planning
  // or executing anything.
  CancelToken expired(0.0);
  serve::QueryOptions qo;
  qo.cancel = &expired;
  serve::QueryResponse dead = service.Run(query, qo);
  EXPECT_EQ(dead.status.code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(dead.outputs.size(), 0u);

  // An explicitly pre-cancelled query likewise.
  CancelToken cancelled;
  cancelled.Cancel("never mind");
  serve::QueryOptions qc;
  qc.cancel = &cancelled;
  serve::QueryResponse gone = service.Run(query, qc);
  EXPECT_EQ(gone.status.code(), StatusCode::kCancelled);

  // The cached plan AND cached result survived both: the next clean run
  // is a pure result-cache hit (DESIGN.md §12 — it short-circuits ahead
  // of the plan path) with bytes identical to the first.
  serve::QueryResponse again = service.Run(query);
  ASSERT_OK(again.status);
  EXPECT_TRUE(again.metrics.result_cache_hit);
  const Relation* a = warm.outputs.Get("Z").value();
  const Relation* b = again.outputs.Get("Z").value();
  EXPECT_TRUE(a->words() == b->words());
  EXPECT_TRUE(a->fingerprints() == b->fingerprints());

  const serve::ServiceStats stats = service.Stats();
  EXPECT_EQ(stats.deadline_exceeded, 1u);
  EXPECT_EQ(stats.cancelled, 1u);
  EXPECT_EQ(stats.completed, 2u);
  EXPECT_EQ(stats.failed, 2u);
}

TEST(ServiceDeadlineTest, DefaultDeadlineComposesToTheStricter) {
  Database db = MakeTestDb(300);
  serve::ServiceOptions opts;
  opts.max_inflight = 1;
  opts.default_deadline_ms = 0.0001;  // effectively already expired
  serve::QueryService service(&db, opts);
  // A generous per-query deadline cannot loosen the service default.
  serve::QueryOptions qo;
  qo.deadline_ms = 1e9;
  serve::QueryResponse resp = service.Run(ParseSgfOrDie(kQuerySmall), qo);
  EXPECT_EQ(resp.status.code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(service.Stats().deadline_exceeded, 1u);
}

TEST(ServiceShedTest, SaturationShedsLowPriorityNotTheBacklog) {
  Database db = MakeTestDb(300);
  serve::ServiceOptions opts;
  opts.max_inflight = 1;
  opts.fast_lane_max_atoms = 0;  // everything through the FIFO
  opts.shed_watermark = 1;       // saturated as soon as anything is in
  serve::QueryService service(&db, opts);

  // Three slow queries: the worker planning the first holds the other
  // two in the backlog for tens of ms.
  const sgf::SgfQuery blocker = SlowBlocker();
  std::vector<std::future<serve::QueryResponse>> normals;
  for (int i = 0; i < 3; ++i) normals.push_back(service.Submit(blocker));

  // A kLow submission under saturation is shed synchronously...
  serve::QueryOptions low;
  low.priority = SchedPriority::kLow;
  serve::QueryResponse shed = service.Run(ParseSgfOrDie(kQuerySmall), low);
  EXPECT_EQ(shed.status.code(), StatusCode::kResourceExhausted);

  // ...while the queued kNormal work all completes.
  for (auto& f : normals) EXPECT_OK(f.get().status);
  EXPECT_EQ(service.Stats().shed, 1u);

  // Off saturation the same kLow query is admitted and runs.
  serve::QueryResponse idle = service.Run(ParseSgfOrDie(kQuerySmall), low);
  EXPECT_OK(idle.status);
  EXPECT_EQ(service.Stats().shed, 1u);
}

TEST(ServiceEdfTest, EarlierDeadlineJumpsTheQueue) {
  Database db = MakeTestDb(300);
  serve::ServiceOptions opts;
  opts.max_inflight = 1;
  opts.fast_lane_max_atoms = 0;
  serve::QueryService service(&db, opts);

  // Occupy the single worker, then queue A (loose deadline) before B
  // (tight deadline). EDF must dequeue B first, which shows up as B
  // spending less time in the admission queue than the earlier-queued A.
  auto blocker = service.Submit(SlowBlocker());
  serve::QueryOptions loose;
  loose.deadline_ms = 2e6;
  auto a = service.Submit(ParseSgfOrDie(kQuerySmall), loose);
  serve::QueryOptions tight;
  tight.deadline_ms = 1e6;
  auto b = service.Submit(ParseSgfOrDie(kQuerySmall), tight);

  ASSERT_OK(blocker.get().status);
  serve::QueryResponse ra = a.get();
  serve::QueryResponse rb = b.get();
  ASSERT_OK(ra.status);
  ASSERT_OK(rb.status);
  EXPECT_LT(rb.metrics.queue_ms, ra.metrics.queue_ms);
}

TEST(ServiceCancelTest, CancelledQueuedQueryDropsPromptly) {
  Database db = MakeTestDb(300);
  serve::ServiceOptions opts;
  opts.max_inflight = 1;
  opts.fast_lane_max_atoms = 0;
  serve::QueryService service(&db, opts);

  auto blocker = service.Submit(SlowBlocker());
  CancelToken token;
  serve::QueryOptions qo;
  qo.cancel = &token;
  auto queued = service.Submit(ParseSgfOrDie(kQueryA1), qo);
  token.Cancel("changed my mind");

  // The cancelled query is answered without executing (it was still
  // queued behind the blocker when the token latched).
  serve::QueryResponse resp = queued.get();
  EXPECT_EQ(resp.status.code(), StatusCode::kCancelled);
  EXPECT_EQ(resp.outputs.size(), 0u);
  ASSERT_OK(blocker.get().status);

  const serve::ServiceStats stats = service.Stats();
  EXPECT_EQ(stats.cancelled, 1u);
  EXPECT_GE(stats.mean_cancel_ms, 0.0);
}

// ---- Single-flight planning under leader errors -----------------------------

TEST(ServiceSingleFlightTest, LeaderPlannerErrorReachesEveryFollower) {
  Database db = MakeTestDb(100);
  // Parses fine, fails at planning: the guard relation does not exist.
  const sgf::SgfQuery bad = ParseSgfOrDie(
      "Z := SELECT (x, y, z, w) FROM Rmissing(x, y, z, w) WHERE S(x);");
  serve::ServiceOptions opts;
  opts.max_inflight = 4;
  opts.plan_cache = false;  // coalescing still applies with the cache off
  serve::QueryService service(&db, opts);

  constexpr int kN = 8;
  std::vector<std::future<serve::QueryResponse>> futures;
  for (int i = 0; i < kN; ++i) futures.push_back(service.Submit(bad));
  // Every coalesced follower observes the leader's planner error — the
  // futures all resolve (no hang) with the same error status.
  for (auto& f : futures) {
    const serve::QueryResponse resp = f.get();
    ASSERT_FALSE(resp.ok());
    EXPECT_NE(resp.status.code(), StatusCode::kInternal);
  }
  const serve::ServiceStats stats = service.Stats();
  EXPECT_EQ(stats.failed, static_cast<uint64_t>(kN));
  EXPECT_EQ(stats.completed, 0u);
}

TEST(ServiceSingleFlightTest, DestructionDrainsPendingPlannerErrors) {
  // The destructor-ordering regression: a backlog of queries whose
  // planning fails must all be answered through service teardown — the
  // single-flight registry's promises resolve before the workers join.
  Database db = MakeTestDb(100);
  const sgf::SgfQuery bad = ParseSgfOrDie(
      "Z := SELECT (x, y, z, w) FROM Rmissing(x, y, z, w) WHERE S(x);");
  std::vector<std::future<serve::QueryResponse>> futures;
  {
    serve::ServiceOptions opts;
    opts.max_inflight = 2;
    opts.plan_cache = false;
    serve::QueryService service(&db, opts);
    for (int i = 0; i < 6; ++i) futures.push_back(service.Submit(bad));
    // Destroyed with the backlog still full.
  }
  for (auto& f : futures) {
    EXPECT_FALSE(f.get().ok());  // answered, not abandoned
  }
}

// ---- Chaos through the service ----------------------------------------------

TEST(ServiceChaosTest, InjectedFaultsAreRetriedInvisiblyOrFailTyped) {
  Database db = MakeTestDb(400);
  const sgf::SgfQuery query = ParseSgfOrDie(kQueryA1);

  // Fault-free reference.
  serve::ServiceOptions clean_opts;
  clean_opts.max_inflight = 2;
  serve::QueryService clean(&db, clean_opts);
  serve::QueryResponse ref = clean.Run(query);
  ASSERT_OK(ref.status);
  const Relation* ref_z = ref.outputs.Get("Z").value();

  // All five sites armed, including planner + cache. The seed is chosen
  // so faults fire but no (site, unit) exhausts the default retry
  // budget of 3 — re-running the same query replays the same decision
  // triples, so one exhausting unit would fail all ten runs.
  const FaultInjector faults(1, 0.2);
  serve::ServiceOptions opts;
  opts.max_inflight = 2;
  opts.faults = &faults;
  serve::QueryService service(&db, opts);
  size_t ok = 0;
  for (int i = 0; i < 10; ++i) {
    serve::QueryResponse resp = service.Run(query);
    if (resp.ok()) {
      ++ok;
      const Relation* got = resp.outputs.Get("Z").value();
      EXPECT_TRUE(got->words() == ref_z->words());
      EXPECT_TRUE(got->fingerprints() == ref_z->fingerprints());
    } else {
      // Only the typed clean statuses are acceptable under chaos.
      EXPECT_EQ(resp.status.code(), StatusCode::kUnavailable)
          << resp.status.ToString();
    }
  }
  EXPECT_GT(ok, 0u);
  const serve::ServiceStats stats = service.Stats();
  EXPECT_GT(stats.faults_injected, 0u);
  EXPECT_GT(stats.task_retries, 0u);
}

}  // namespace
}  // namespace gumbo
