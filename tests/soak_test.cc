// Differential soak harness tests (src/soak): a small soak must run
// clean across every strategy and both serve paths, be deterministic in
// its seed, and honor the seed-splitting contract that iteration i of a
// soak with base seed S equals a one-iteration soak with seed S + i —
// the property the printed failure repro relies on.
#include <gtest/gtest.h>

#include "common/config.h"
#include "soak/soak.h"
#include "test_util.h"

namespace gumbo {
namespace {

soak::SoakConfig SmallConfig(uint64_t seed, size_t iterations) {
  soak::SoakConfig c;
  c.seed = seed;
  c.iterations = iterations;
  c.tuples = 120;
  c.max_failures = 8;
  return c;
}

TEST(SoakTest, SmallSoakHasNoDivergence) {
  const soak::SoakConfig c = SmallConfig(11, 8);
  const soak::SoakReport r = soak::RunSoak(c);
  EXPECT_TRUE(r.ok()) << r.Summary();
  EXPECT_EQ(r.iterations, 8u);
  // Most of the 9 strategies plus the two serve paths apply to most
  // queries; only 1-ROUND / OPT preconditions may skip.
  EXPECT_GE(r.checks, r.iterations * 6) << r.Summary();
}

TEST(SoakTest, SoakIsDeterministic) {
  const soak::SoakConfig c = SmallConfig(23, 4);
  const soak::SoakReport a = soak::RunSoak(c);
  const soak::SoakReport b = soak::RunSoak(c);
  EXPECT_EQ(a.checks, b.checks);
  EXPECT_EQ(a.skipped, b.skipped);
  EXPECT_EQ(a.failures.size(), b.failures.size());
}

TEST(SoakTest, IterationSeedSplitMatchesBatchRun) {
  // The repro contract: a failing iteration i of a seed-S soak is rerun
  // as a one-iteration soak with seed S + i. Check/skip totals must
  // therefore agree between one 3-iteration soak and three 1-iteration
  // soaks. (Calibration state differs across the batch, but it only
  // steers estimates, never applicability or results.)
  const uint64_t base = 101;
  const soak::SoakReport batch = soak::RunSoak(SmallConfig(base, 3));
  size_t checks = 0;
  size_t skipped = 0;
  for (uint64_t i = 0; i < 3; ++i) {
    const soak::SoakReport one = soak::RunSoak(SmallConfig(base + i, 1));
    EXPECT_TRUE(one.ok()) << one.Summary();
    checks += one.checks;
    skipped += one.skipped;
  }
  EXPECT_EQ(batch.checks, checks);
  EXPECT_EQ(batch.skipped, skipped);
}

TEST(SoakTest, BuildDatabaseIsDeterministicPerRegime) {
  const std::map<std::string, uint32_t> base = {
      {"G", 3}, {"S", 2}, {"T", 2}};
  for (const soak::DataRegime regime :
       {soak::DataRegime::kUniform, soak::DataRegime::kZipf,
        soak::DataRegime::kZipfHeavy, soak::DataRegime::kCorrelated,
        soak::DataRegime::kHotCold}) {
    Database a = soak::BuildDatabase(base, regime, 77, 100, 0.4);
    Database b = soak::BuildDatabase(base, regime, 77, 100, 0.4);
    for (const auto& [name, arity] : base) {
      (void)arity;
      auto ra = a.Get(name);
      auto rb = b.Get(name);
      ASSERT_OK(ra);
      ASSERT_OK(rb);
      EXPECT_EQ((*ra)->words(), (*rb)->words())
          << soak::DataRegimeName(regime) << " " << name;
      EXPECT_EQ((*ra)->fingerprints(), (*rb)->fingerprints());
    }
    // A different seed produces different guard contents.
    Database c = soak::BuildDatabase(base, regime, 78, 100, 0.4);
    EXPECT_NE((*a.Get("G"))->words(), (*c.Get("G"))->words())
        << soak::DataRegimeName(regime);
  }
}

TEST(SoakTest, FromEnvReadsKnobs) {
  {
    common::RuntimeConfig cfg;
    cfg.soak_seed = 99;
    cfg.soak_iters = 3;
    cfg.soak_tuples = 64;
    common::RuntimeConfig::ScopedOverride ov{std::move(cfg)};
    const soak::SoakConfig c = soak::SoakConfig::FromEnv();
    EXPECT_EQ(c.seed, 99u);
    EXPECT_EQ(c.iterations, 3u);
    EXPECT_EQ(c.tuples, 64u);
  }
  common::RuntimeConfig::ScopedOverride ov{common::RuntimeConfig{}};
  const soak::SoakConfig d = soak::SoakConfig::FromEnv();
  EXPECT_EQ(d.iterations, 200u);  // defaults restored
}

}  // namespace
}  // namespace gumbo
