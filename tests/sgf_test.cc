// Tests for the SGF query language: atoms, conditions, parser, analyzer,
// and the naive reference evaluator (including the paper's Examples 1-3).
#include <gtest/gtest.h>

#include "sgf/analyzer.h"
#include "sgf/atom.h"
#include "sgf/condition.h"
#include "sgf/naive_eval.h"
#include "sgf/parser.h"
#include "test_util.h"

namespace gumbo::sgf {
namespace {

using ::gumbo::testing::MakeRelation;
using ::gumbo::testing::ParseBsgfOrDie;
using ::gumbo::testing::ParseSgfOrDie;
using ::gumbo::testing::RowsOf;

// ---- Atoms -----------------------------------------------------------------

TEST(AtomTest, VariablesFirstOccurrenceOrder) {
  Atom a = Atom::Vars("R", {"x", "y", "x", "z"});
  EXPECT_EQ(a.Variables(), (std::vector<std::string>{"x", "y", "z"}));
}

TEST(AtomTest, ConformsChecksConstants) {
  // R(x, 2, x, y): paper example — (1,2,1,3) conforms to (x,2,x,y).
  Atom a("R", {Term::Var("x"), Term::ConstInt(2), Term::Var("x"),
               Term::Var("y")});
  EXPECT_TRUE(a.Conforms(Tuple::Ints({1, 2, 1, 3})));
  EXPECT_FALSE(a.Conforms(Tuple::Ints({1, 5, 1, 3})));  // constant mismatch
  EXPECT_FALSE(a.Conforms(Tuple::Ints({1, 2, 7, 3})));  // equality violated
  EXPECT_FALSE(a.Conforms(Tuple::Ints({1, 2, 1})));     // arity mismatch
}

TEST(AtomTest, ProjectionUsesFirstOccurrence) {
  // pi_{R(x,y,x,z); x,z}(R(1,2,1,3)) = (1,3) — paper §4 example.
  Atom a = Atom::Vars("R", {"x", "y", "x", "z"});
  Tuple p = a.Project(Tuple::Ints({1, 2, 1, 3}), {"x", "z"});
  EXPECT_EQ(p, Tuple::Ints({1, 3}));
}

TEST(AtomTest, SharedVariablesKappaOrder) {
  Atom guard = Atom::Vars("R", {"x", "y", "z", "w"});
  Atom kappa = Atom::Vars("S", {"w", "q", "x"});
  // Order of first occurrence in kappa, not in the guard.
  EXPECT_EQ(kappa.SharedVariables(guard),
            (std::vector<std::string>{"w", "x"}));
}

TEST(AtomTest, ConditionSignatureSharing) {
  // A2-style sharing: S(x), S(y) against guard R(x,y,z,w) both have the
  // signature "S bound at key position 0".
  Atom guard = Atom::Vars("R", {"x", "y", "z", "w"});
  Atom sx = Atom::Vars("S", {"x"});
  Atom sy = Atom::Vars("S", {"y"});
  EXPECT_EQ(sx.ConditionSignature(sx.SharedVariables(guard)),
            sy.ConditionSignature(sy.SharedVariables(guard)));
  // Different relations do not share.
  Atom tx = Atom::Vars("T", {"x"});
  EXPECT_NE(sx.ConditionSignature(sx.SharedVariables(guard)),
            tx.ConditionSignature(tx.SharedVariables(guard)));
  // Existential equality patterns matter: S(z1, x, z1) vs S(z1, x, z2).
  Atom rep("S", {Term::Var("p"), Term::Var("x"), Term::Var("p")});
  Atom norep("S", {Term::Var("p"), Term::Var("x"), Term::Var("q")});
  EXPECT_NE(rep.ConditionSignature({"x"}), norep.ConditionSignature({"x"}));
}

// ---- Conditions ------------------------------------------------------------

TEST(ConditionTest, EvaluateBooleanCombination) {
  // (0 AND NOT 1) OR 2
  auto c = Condition::MakeOr(
      Condition::MakeAnd(Condition::MakeAtom(0),
                         Condition::MakeNot(Condition::MakeAtom(1))),
      Condition::MakeAtom(2));
  auto eval = [&](bool a0, bool a1, bool a2) {
    bool truth[] = {a0, a1, a2};
    return c->Evaluate([&](size_t i) { return truth[i]; });
  };
  EXPECT_TRUE(eval(true, false, false));
  EXPECT_FALSE(eval(true, true, false));
  EXPECT_TRUE(eval(false, true, true));
  EXPECT_FALSE(eval(false, true, false));
}

TEST(ConditionTest, IsDisjunctionOfLiterals) {
  auto lit_or = Condition::MakeOr(Condition::MakeAtom(0),
                                  Condition::MakeNot(Condition::MakeAtom(1)));
  EXPECT_TRUE(lit_or->IsDisjunctionOfLiterals());
  auto with_and = Condition::MakeOr(
      Condition::MakeAtom(0),
      Condition::MakeAnd(Condition::MakeAtom(1), Condition::MakeAtom(2)));
  EXPECT_FALSE(with_and->IsDisjunctionOfLiterals());
  auto not_not = Condition::MakeNot(
      Condition::MakeNot(Condition::MakeAtom(0)));
  EXPECT_FALSE(not_not->IsDisjunctionOfLiterals());
}

TEST(ConditionTest, ToDnfDistributes) {
  // 0 AND (1 OR NOT 2) => {0,1}, {0,-2} (as 1-based signed literals).
  auto c = Condition::MakeAnd(
      Condition::MakeAtom(0),
      Condition::MakeOr(Condition::MakeAtom(1),
                        Condition::MakeNot(Condition::MakeAtom(2))));
  std::vector<std::vector<int>> clauses;
  ASSERT_OK(c->ToDnf(&clauses));
  ASSERT_EQ(clauses.size(), 2u);
  EXPECT_EQ(clauses[0], (std::vector<int>{1, 2}));
  EXPECT_EQ(clauses[1], (std::vector<int>{1, -3}));
}

TEST(ConditionTest, ToDnfPushesNegation) {
  // NOT (0 OR 1) => {-1,-2}; NOT (0 AND 1) => {-1}, {-2}.
  auto nor = Condition::MakeNot(
      Condition::MakeOr(Condition::MakeAtom(0), Condition::MakeAtom(1)));
  std::vector<std::vector<int>> clauses;
  ASSERT_OK(nor->ToDnf(&clauses));
  ASSERT_EQ(clauses.size(), 1u);
  EXPECT_EQ(clauses[0], (std::vector<int>{-1, -2}));

  auto nand = Condition::MakeNot(
      Condition::MakeAnd(Condition::MakeAtom(0), Condition::MakeAtom(1)));
  ASSERT_OK(nand->ToDnf(&clauses));
  ASSERT_EQ(clauses.size(), 2u);
}

// ---- Parser ----------------------------------------------------------------

TEST(ParserTest, ParsesIntroQuery) {
  // The paper's introductory query Q.
  sgf::BsgfQuery q = ParseBsgfOrDie(
      "Z := SELECT (x, y) FROM R(x, y) "
      "WHERE (S(x, y) OR S(y, x)) AND T(x, z);");
  EXPECT_EQ(q.output(), "Z");
  EXPECT_EQ(q.select_vars(), (std::vector<std::string>{"x", "y"}));
  EXPECT_EQ(q.guard().relation(), "R");
  EXPECT_EQ(q.num_conditional_atoms(), 3u);  // S(x,y), S(y,x), T(x,z)
}

TEST(ParserTest, InternsIdenticalAtoms) {
  // S(1,x) appears twice; the paper treats identical atoms as one.
  sgf::BsgfQuery q = ParseBsgfOrDie(
      "Z5 := SELECT (x, y) FROM R(x, y, 4) "
      "WHERE (S(1, x) AND NOT S(y, 10)) OR (NOT S(1, x) AND S(y, 10));");
  EXPECT_EQ(q.num_conditional_atoms(), 2u);
  EXPECT_EQ(q.guard().terms()[2].value(), Value::Int(4));
}

TEST(ParserTest, ParsesStringsAndComments) {
  sgf::SgfQuery q = ParseSgfOrDie(
      "-- the bookstore query of Example 2\n"
      "Z1 := SELECT aut FROM Amaz(ttl, aut, \"bad\") "
      "WHERE BN(ttl, aut, \"bad\") AND BD(ttl, aut, \"bad\");\n"
      "Z2 := SELECT (new, aut) FROM Upcoming(new, aut) WHERE NOT Z1(aut);");
  EXPECT_EQ(q.size(), 2u);
  EXPECT_EQ(q.subqueries()[1].conditional_atoms()[0].relation(), "Z1");
}

TEST(ParserTest, RejectsGarbage) {
  Dictionary dict;
  EXPECT_FALSE(sgf::ParseBsgf("Z := FROM R(x)", &dict).ok());
  EXPECT_FALSE(sgf::ParseBsgf("Z := SELECT x FROM R(x", &dict).ok());
  EXPECT_FALSE(sgf::ParseBsgf("Z := SELECT x FROM R(x) WHERE", &dict).ok());
  EXPECT_FALSE(sgf::ParseBsgf("", &dict).ok());
  EXPECT_FALSE(
      sgf::ParseBsgf("Z := SELECT x FROM R(x) WHERE S(\"unterminated);",
                     &dict).ok());
}

TEST(ParserTest, ReportsLineAndColumn) {
  Dictionary dict;
  auto r = sgf::ParseSgf("Z1 := SELECT x FROM R(x);\nZ2 := SELEKT x;", &dict);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("line 2"), std::string::npos)
      << r.status();
}

TEST(ParserTest, OperatorPrecedenceNotAndOr) {
  // a OR b AND NOT c parses as a OR (b AND (NOT c)).
  sgf::BsgfQuery q = ParseBsgfOrDie(
      "Z := SELECT x FROM R(x) WHERE A(x) OR B(x) AND NOT C(x);");
  const Condition* c = q.condition();
  ASSERT_EQ(c->kind(), Condition::Kind::kOr);
  EXPECT_EQ(c->lhs()->kind(), Condition::Kind::kAtom);
  EXPECT_EQ(c->rhs()->kind(), Condition::Kind::kAnd);
  EXPECT_EQ(c->rhs()->rhs()->kind(), Condition::Kind::kNot);
}

// ---- Analyzer --------------------------------------------------------------

TEST(AnalyzerTest, RejectsSelectVarNotInGuard) {
  Dictionary dict;
  auto r = sgf::ParseBsgf("Z := SELECT q FROM R(x, y) WHERE S(x);", &dict);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(AnalyzerTest, RejectsGuardednessViolation) {
  // S(x, t) and T(y, t) share t, which is not in the guard — the paper's
  // Example 2 explains this is not expressible as a basic query.
  Dictionary dict;
  auto r = sgf::ParseBsgf(
      "Z := SELECT x FROM R(x, y) WHERE S(x, t) AND T(y, t);", &dict);
  EXPECT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("guardedness"), std::string::npos);
}

TEST(AnalyzerTest, AcceptsSharedGuardVariables) {
  Dictionary dict;
  EXPECT_OK(sgf::ParseBsgf(
                "Z := SELECT x FROM R(x, y) WHERE S(x, t) AND T(x, y, q);",
                &dict)
                .status());
}

TEST(AnalyzerTest, RejectsForwardReference) {
  Dictionary dict;
  auto r = sgf::ParseSgf(
      "Z1 := SELECT x FROM R(x) WHERE Z2(x);\n"
      "Z2 := SELECT x FROM S(x);",
      &dict);
  EXPECT_FALSE(r.ok());
}

TEST(AnalyzerTest, RejectsDuplicateOutput) {
  Dictionary dict;
  auto r = sgf::ParseSgf(
      "Z1 := SELECT x FROM R(x);\nZ1 := SELECT x FROM S(x);", &dict);
  EXPECT_FALSE(r.ok());
}

TEST(AnalyzerTest, RejectsArityMismatch) {
  Dictionary dict;
  auto r = sgf::ParseSgf(
      "Z1 := SELECT x FROM R(x, y);\n"
      "Z2 := SELECT a FROM S(a) WHERE R(a);",
      &dict);
  EXPECT_FALSE(r.ok());
}

// ---- Naive evaluator -------------------------------------------------------

Database Example1Db() {
  Database db;
  db.Put(MakeRelation("R", 2, {{1, 2}, {3, 4}, {5, 6}}));
  db.Put(MakeRelation("S", 2, {{1, 2}, {4, 9}, {6, 7}}));
  return db;
}

TEST(NaiveEvalTest, IntersectionAndDifference) {
  Database db = Example1Db();
  // Z1 := R intersect S; Z2 := R - S (paper Example 1).
  auto z1 = NaiveEvalBsgf(
      ParseBsgfOrDie("Z1 := SELECT (x, y) FROM R(x, y) WHERE S(x, y);"), db);
  ASSERT_OK(z1);
  EXPECT_EQ(RowsOf(*z1), (std::vector<std::vector<int64_t>>{{1, 2}}));

  auto z2 = NaiveEvalBsgf(
      ParseBsgfOrDie("Z2 := SELECT (x, y) FROM R(x, y) WHERE NOT S(x, y);"),
      db);
  ASSERT_OK(z2);
  EXPECT_EQ(RowsOf(*z2),
            (std::vector<std::vector<int64_t>>{{3, 4}, {5, 6}}));
}

TEST(NaiveEvalTest, SemijoinAndAntijoin) {
  Database db = Example1Db();
  // Z3 := R |x S on R.y = S.x (semijoin via shared variable y).
  auto z3 = NaiveEvalBsgf(
      ParseBsgfOrDie("Z3 := SELECT (x, y) FROM R(x, y) WHERE S(y, z);"), db);
  ASSERT_OK(z3);
  // R-tuples whose y appears as S's first column: (3,4)->S(4,9),
  // (5,6)->S(6,7). (1,2) has no S(2,_).
  EXPECT_EQ(RowsOf(*z3),
            (std::vector<std::vector<int64_t>>{{3, 4}, {5, 6}}));

  auto z4 = NaiveEvalBsgf(
      ParseBsgfOrDie("Z4 := SELECT (x, y) FROM R(x, y) WHERE NOT S(y, z);"),
      db);
  ASSERT_OK(z4);
  EXPECT_EQ(RowsOf(*z4), (std::vector<std::vector<int64_t>>{{1, 2}}));
}

TEST(NaiveEvalTest, PaperExample3) {
  // Z := pi_x(R(x,z) |x S(z,y)) over I = {R(1,2), R(4,5), S(2,3)} = {(1)}.
  Database db;
  db.Put(MakeRelation("R", 2, {{1, 2}, {4, 5}}));
  db.Put(MakeRelation("S", 2, {{2, 3}}));
  auto z = NaiveEvalBsgf(
      ParseBsgfOrDie("Z := SELECT x FROM R(x, z) WHERE S(z, y);"), db);
  ASSERT_OK(z);
  EXPECT_EQ(RowsOf(*z), (std::vector<std::vector<int64_t>>{{1}}));
}

TEST(NaiveEvalTest, ConstantsInGuardAndCondition) {
  Database db;
  db.Put(MakeRelation("R", 3, {{1, 2, 4}, {3, 4, 4}, {5, 6, 7}}));
  db.Put(MakeRelation("S", 2, {{1, 1}, {4, 10}}));
  // Guard constant filters rows; conditional constants filter matches.
  auto z = NaiveEvalBsgf(
      ParseBsgfOrDie(
          "Z := SELECT (x, y) FROM R(x, y, 4) WHERE S(1, x) OR S(y, 10);"),
      db);
  ASSERT_OK(z);
  // (1,2,4): S(1,1) matches S(1,x)? needs S(1,1) with x=1 — yes.
  // (3,4,4): S(1,3)? no. S(4,10)? yes.
  // (5,6,7): filtered by guard constant.
  EXPECT_EQ(RowsOf(*z),
            (std::vector<std::vector<int64_t>>{{1, 2}, {3, 4}}));
}

TEST(NaiveEvalTest, RepeatedVariablesInConditional) {
  Database db;
  db.Put(MakeRelation("R", 1, {{1}, {2}}));
  db.Put(MakeRelation("S", 2, {{1, 1}, {2, 3}}));
  // S(x, x): only guard value 1 has a "diagonal" S-fact.
  auto z = NaiveEvalBsgf(
      ParseBsgfOrDie("Z := SELECT x FROM R(x) WHERE S(x, x);"), db);
  ASSERT_OK(z);
  EXPECT_EQ(RowsOf(*z), (std::vector<std::vector<int64_t>>{{1}}));
}

TEST(NaiveEvalTest, ExistentialEqualityInConditional) {
  Database db;
  db.Put(MakeRelation("R", 1, {{1}, {2}}));
  db.Put(MakeRelation("S", 3, {{1, 7, 7}, {2, 8, 9}}));
  // S(x, p, p): existential p must repeat.
  auto z = NaiveEvalBsgf(
      ParseBsgfOrDie("Z := SELECT x FROM R(x) WHERE S(x, p, p);"), db);
  ASSERT_OK(z);
  EXPECT_EQ(RowsOf(*z), (std::vector<std::vector<int64_t>>{{1}}));
}

TEST(NaiveEvalTest, NestedSgfBookstore) {
  // Paper Example 2, with string data.
  Dictionary* dict = &Dictionary::Global();
  sgf::SgfQuery q = ParseSgfOrDie(
      "Z1 := SELECT aut FROM Amaz(ttl, aut, \"bad\") "
      "WHERE BN(ttl, aut, \"bad\") AND BD(ttl, aut, \"bad\");\n"
      "Z2 := SELECT (new, aut) FROM Upcoming(new, aut) WHERE NOT Z1(aut);");
  Value bad = dict->Intern("bad");
  Value good = dict->Intern("good");
  Value t1 = dict->Intern("t1"), t2 = dict->Intern("t2");
  Value a1 = dict->Intern("a1"), a2 = dict->Intern("a2");
  Value n1 = dict->Intern("n1"), n2 = dict->Intern("n2");

  Database db;
  Relation amaz("Amaz", 3), bn("BN", 3), bd("BD", 3), up("Upcoming", 2);
  // a1 has "bad" ratings for t1 everywhere; a2 only at Amazon.
  ASSERT_OK(amaz.Add(Tuple{t1, a1, bad}));
  ASSERT_OK(amaz.Add(Tuple{t2, a2, bad}));
  ASSERT_OK(bn.Add(Tuple{t1, a1, bad}));
  ASSERT_OK(bd.Add(Tuple{t1, a1, bad}));
  ASSERT_OK(bn.Add(Tuple{t2, a2, good}));
  ASSERT_OK(bd.Add(Tuple{t2, a2, good}));
  ASSERT_OK(up.Add(Tuple{n1, a1}));
  ASSERT_OK(up.Add(Tuple{n2, a2}));
  db.Put(amaz);
  db.Put(bn);
  db.Put(bd);
  db.Put(up);

  auto out = NaiveEvalSgf(q, db);
  ASSERT_OK(out);
  const Relation* z2 = out->Get("Z2").value();
  // Only a2's upcoming book survives (a1 is bad at all three stores).
  ASSERT_EQ(z2->size(), 1u);
  EXPECT_EQ(z2->TupleAt(0), (Tuple{n2, a2}));
}

TEST(NaiveEvalTest, GuardednessAllowsDistinctExistentials) {
  // Remark 1's example: S(x, z1) AND NOT S(y, z2).
  Database db;
  db.Put(MakeRelation("R", 2, {{1, 2}, {3, 4}}));
  db.Put(MakeRelation("S", 2, {{1, 9}, {4, 9}}));
  auto z = NaiveEvalBsgf(
      ParseBsgfOrDie(
          "Z := SELECT x FROM R(x, y) WHERE S(x, z1) AND NOT S(y, z2);"),
      db);
  ASSERT_OK(z);
  // (1,2): S(1,9) yes, S(2,_) no -> keep. (3,4): S(3,_) no -> drop.
  EXPECT_EQ(RowsOf(*z), (std::vector<std::vector<int64_t>>{{1}}));
}

TEST(NaiveEvalTest, MissingRelationIsError) {
  Database db;
  db.Put(MakeRelation("R", 1, {{1}}));
  auto z = NaiveEvalBsgf(
      ParseBsgfOrDie("Z := SELECT x FROM R(x) WHERE Nope(x);"), db);
  EXPECT_FALSE(z.ok());
  EXPECT_EQ(z.status().code(), StatusCode::kNotFound);
}

}  // namespace
}  // namespace gumbo::sgf
