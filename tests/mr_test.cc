// Tests for the simulated MapReduce engine and the program scheduler,
// plus the shuffle-volume optimization primitives (DESIGN.md §5): Bloom
// filters, the dedup combiner, and their engine accounting.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <set>

#include "common/rng.h"
#include "mr/combiner.h"
#include "mr/engine.h"
#include "mr/filter.h"
#include "mr/program.h"
#include "test_util.h"

namespace gumbo::mr {
namespace {

using ::gumbo::testing::MakeRelation;
using ::gumbo::testing::RowsOf;

// A toy job: groups input tuples by first attribute and counts them.
class CountMapper : public Mapper {
 public:
  void Map(size_t, RowView fact, uint64_t, Emitter* emitter) override {
    emitter->Emit(Tuple{fact[0]}, /*tag=*/1, /*aux=*/0, /*wire_bytes=*/4.0);
  }
};

class CountReducer : public Reducer {
 public:
  void Reduce(TupleView key, const MessageGroup& values,
              ReduceEmitter* emitter) override {
    Tuple out;
    out.PushBack(key[0]);
    out.PushBack(Value::Int(static_cast<int64_t>(values.size())));
    emitter->Emit(0, out);
  }
};

JobSpec CountJob(const std::string& in, const std::string& out) {
  JobSpec spec;
  spec.name = "count";
  spec.inputs.push_back({in});
  JobOutput o;
  o.dataset = out;
  o.arity = 2;
  spec.outputs.push_back(o);
  spec.mapper_factory = [] { return std::make_unique<CountMapper>(); };
  spec.reducer_factory = [] { return std::make_unique<CountReducer>(); };
  return spec;
}

cost::ClusterConfig SmallCluster() {
  cost::ClusterConfig c;
  c.nodes = 2;
  c.map_slots_per_node = 2;
  c.reduce_slots_per_node = 2;
  c.split_mb = 0.001;  // force several map tasks on tiny data
  c.mb_per_reducer = 0.001;
  return c;
}

TEST(EngineTest, GroupCountCorrectAcrossTasksAndReducers) {
  Database db;
  Relation r("In", 2);
  for (int64_t i = 0; i < 1000; ++i) {
    ASSERT_OK(r.Add(Tuple::Ints({i % 10, i})));
  }
  db.Put(std::move(r));

  Engine engine(SmallCluster());
  auto stats = engine.Run(CountJob("In", "Out"), &db);
  ASSERT_OK(stats);
  EXPECT_GT(stats->map_task_costs.size(), 1u);  // multiple map tasks
  EXPECT_GT(stats->num_reducers, 1);            // multiple reducers

  const Relation* out = db.Get("Out").value();
  ASSERT_EQ(out->size(), 10u);
  for (RowView t : out->views()) {
    EXPECT_EQ(t[1], Value::Int(100));  // each group has 100 members
  }
}

TEST(EngineTest, DeterministicAcrossRuns) {
  Database db;
  Relation r("In", 2);
  for (int64_t i = 0; i < 500; ++i) {
    ASSERT_OK(r.Add(Tuple::Ints({i % 7, i})));
  }
  db.Put(std::move(r));
  Engine engine(SmallCluster());
  ASSERT_OK(engine.Run(CountJob("In", "Out1"), &db).status());
  ASSERT_OK(engine.Run(CountJob("In", "Out2"), &db).status());
  const Relation* a = db.Get("Out1").value();
  const Relation* b = db.Get("Out2").value();
  EXPECT_EQ(a->ToTuples(), b->ToTuples());  // identical order, not just set
}

TEST(EngineTest, CountsBytesAndScale) {
  Database db;
  Relation r("In", 2);
  for (int64_t i = 0; i < 100; ++i) ASSERT_OK(r.Add(Tuple::Ints({i, i})));
  r.set_representation_scale(1000.0);  // 100 tuples stand for 100k
  db.Put(std::move(r));

  cost::ClusterConfig c;
  Engine engine(c);
  auto stats = engine.Run(CountJob("In", "Out"), &db);
  ASSERT_OK(stats);
  // Input: 100k represented tuples * 20 B = 2,000,000 B.
  EXPECT_NEAR(stats->hdfs_read_mb, 2e6 / (1024.0 * 1024.0), 1e-9);
  // Shuffle: packed by key; all keys distinct => 100k records * (10 key +
  // 4 payload) B.
  EXPECT_NEAR(stats->shuffle_mb, 100000.0 * 14.0 / (1024.0 * 1024.0), 1e-9);
  // Output inherits the scale.
  EXPECT_DOUBLE_EQ(db.Get("Out").value()->representation_scale(), 1000.0);
}

TEST(EngineTest, PackingReducesShuffleBytes) {
  Database db;
  Relation r("In", 2);
  for (int64_t i = 0; i < 100; ++i) {
    ASSERT_OK(r.Add(Tuple::Ints({i % 5, i})));  // 5 hot keys
  }
  db.Put(std::move(r));
  Engine engine(cost::ClusterConfig{});

  JobSpec packed = CountJob("In", "OutP");
  packed.pack_messages = true;
  JobSpec unpacked = CountJob("In", "OutU");
  unpacked.pack_messages = false;

  auto sp = engine.Run(packed, &db);
  auto su = engine.Run(unpacked, &db);
  ASSERT_OK(sp);
  ASSERT_OK(su);
  EXPECT_LT(sp->shuffle_mb, su->shuffle_mb);
  // Same results either way.
  EXPECT_TRUE(db.Get("OutP").value()->SetEquals(*db.Get("OutU").value()));
}

TEST(EngineTest, ReducerAllocationByMapInputSize) {
  Database db;
  Relation r("In", 2);
  for (int64_t i = 0; i < 1000; ++i) {
    ASSERT_OK(r.Add(Tuple::Ints({i % 10, i})));
  }
  db.Put(std::move(r));
  const double input_mb = db.Get("In").value()->SizeMb();
  cost::ClusterConfig c = SmallCluster();
  Engine engine(c);
  JobSpec spec = CountJob("In", "Out");
  spec.reducer_allocation = ReducerAllocation::kByMapInputSize;
  auto stats = engine.Run(spec, &db);
  ASSERT_OK(stats);
  // Pig's policy: one reducer per 4 * mb_per_reducer of *map input* data,
  // independent of the intermediate size.
  const int expected = std::max(
      1, static_cast<int>(std::ceil(input_mb / (4.0 * c.mb_per_reducer))));
  EXPECT_EQ(stats->num_reducers, expected);
  EXPECT_GT(stats->num_reducers, 1);  // the tiny quota forces several
  // Allocation policy must not change results.
  EXPECT_EQ(db.Get("Out").value()->size(), 10u);
}

TEST(EngineTest, ReducerAllocationFixed) {
  Database db;
  Relation r("In", 2);
  for (int64_t i = 0; i < 200; ++i) {
    ASSERT_OK(r.Add(Tuple::Ints({i % 10, i})));
  }
  db.Put(std::move(r));
  Engine engine(SmallCluster());
  JobSpec spec = CountJob("In", "OutF");
  spec.reducer_allocation = ReducerAllocation::kFixed;
  spec.fixed_num_reducers = 3;
  auto stats = engine.Run(spec, &db);
  ASSERT_OK(stats);
  EXPECT_EQ(stats->num_reducers, 3);
  EXPECT_EQ(stats->reduce_task_costs.size(), 3u);
  EXPECT_EQ(db.Get("OutF").value()->size(), 10u);
  // Non-positive fixed counts clamp to one reducer.
  spec = CountJob("In", "OutZ");
  spec.reducer_allocation = ReducerAllocation::kFixed;
  spec.fixed_num_reducers = 0;
  stats = engine.Run(spec, &db);
  ASSERT_OK(stats);
  EXPECT_EQ(stats->num_reducers, 1);
  // The fixed and derived allocations agree on the result set.
  EXPECT_TRUE(db.Get("OutF").value()->SetEquals(*db.Get("OutZ").value()));
}

TEST(EngineTest, MissingInputFails) {
  Database db;
  Engine engine(cost::ClusterConfig{});
  EXPECT_FALSE(engine.Run(CountJob("Nope", "Out"), &db).ok());
}

TEST(EngineTest, MismatchedScalesFail) {
  Database db;
  Relation a = MakeRelation("A", 1, {{1}});
  Relation b = MakeRelation("B", 1, {{1}});
  b.set_representation_scale(10.0);
  db.Put(a);
  db.Put(b);
  JobSpec spec = CountJob("A", "Out");
  spec.inputs.push_back({"B"});
  Engine engine(cost::ClusterConfig{});
  auto r = engine.Run(spec, &db);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kFailedPrecondition);
}

// ---- Scheduler -------------------------------------------------------------

JobStats FakeJob(const std::string& name, std::vector<double> maps,
                 std::vector<double> reds, double overhead = 0.0) {
  JobStats js;
  js.job_name = name;
  js.map_task_costs = std::move(maps);
  js.reduce_task_costs = std::move(reds);
  js.job_overhead = overhead;
  return js;
}

TEST(SchedulerTest, SingleJobIsMapPlusReduce) {
  cost::ClusterConfig c;
  c.nodes = 1;
  c.map_slots_per_node = 2;
  c.reduce_slots_per_node = 2;
  c.costs.job_overhead = 1.0;
  // 4 map tasks of 10 on 2 slots -> 2 waves = 20; then 1 reduce of 5.
  std::vector<JobStats> jobs = {FakeJob("j", {10, 10, 10, 10}, {5})};
  double net = SimulateNetTime(jobs, {{}}, c);
  EXPECT_DOUBLE_EQ(net, 1.0 + 20.0 + 5.0);
}

TEST(SchedulerTest, IndependentJobsShareSlots) {
  cost::ClusterConfig c;
  c.nodes = 1;
  c.map_slots_per_node = 2;
  c.reduce_slots_per_node = 2;
  c.costs.job_overhead = 0.0;
  // Two independent jobs, each 2 maps of 10: with 2 slots total the maps
  // serialize across jobs -> makespan 20 + reduce 5.
  std::vector<JobStats> jobs = {FakeJob("a", {10, 10}, {5}),
                                FakeJob("b", {10, 10}, {5})};
  double net = SimulateNetTime(jobs, {{}, {}}, c);
  EXPECT_DOUBLE_EQ(net, 25.0);
  // With 4 slots they overlap fully.
  c.map_slots_per_node = 4;
  EXPECT_DOUBLE_EQ(SimulateNetTime(jobs, {{}, {}}, c), 15.0);
}

TEST(SchedulerTest, DependencyChainsSerialize) {
  cost::ClusterConfig c;
  c.nodes = 10;
  c.map_slots_per_node = 10;
  c.costs.job_overhead = 2.0;
  std::vector<JobStats> jobs = {FakeJob("a", {10}, {5}),
                                FakeJob("b", {10}, {5})};
  // b depends on a: net = (2+10+5) + (2+10+5).
  double net = SimulateNetTime(jobs, {{}, {0}}, c);
  EXPECT_DOUBLE_EQ(net, 34.0);
}

TEST(SchedulerTest, ReduceWaitsForAllMaps) {
  cost::ClusterConfig c;
  c.nodes = 1;
  c.map_slots_per_node = 4;
  c.reduce_slots_per_node = 4;
  c.costs.job_overhead = 0.0;
  // Straggler map of 100 gates the reduce phase (slowstart = 1).
  std::vector<JobStats> jobs = {FakeJob("j", {1, 1, 1, 100}, {1})};
  EXPECT_DOUBLE_EQ(SimulateNetTime(jobs, {{}}, c), 101.0);
}

// ---- Bloom filters (DESIGN.md §5.2) -----------------------------------------

TEST(BloomFilterTest, NoFalseNegatives) {
  Xoshiro256 rng(7);
  BloomFilter f(1000, 0.01);
  std::vector<uint64_t> keys;
  for (int i = 0; i < 1000; ++i) keys.push_back(rng.Next());
  for (uint64_t k : keys) f.Insert(k);
  for (uint64_t k : keys) EXPECT_TRUE(f.MightContain(k));
}

TEST(BloomFilterTest, EmptyAndDefaultFiltersContainNothing) {
  BloomFilter def;  // default-constructed: zero bytes
  EXPECT_FALSE(def.MightContain(42));
  EXPECT_DOUBLE_EQ(def.SizeBytes(), 0.0);
  BloomFilter sized(100, 0.01);  // sized but nothing inserted
  EXPECT_FALSE(sized.MightContain(42));
  EXPECT_GT(sized.SizeBytes(), 0.0);
}

TEST(BloomFilterTest, FalsePositiveRateNearTarget) {
  Xoshiro256 rng(11);
  const size_t n = 5000;
  BloomFilter f(n, 0.01);
  std::set<uint64_t> inserted;
  while (inserted.size() < n) inserted.insert(rng.Next());
  for (uint64_t k : inserted) f.Insert(k);
  size_t fp = 0;
  const size_t probes = 20000;
  for (size_t i = 0; i < probes; ++i) {
    uint64_t k = rng.Next();
    if (inserted.count(k) == 0 && f.MightContain(k)) ++fp;
  }
  // 1% target; allow generous slack for hash imperfections.
  EXPECT_LT(static_cast<double>(fp) / static_cast<double>(probes), 0.03);
}

TEST(BloomFilterTest, SizeScalesWithKeysAndFpp) {
  BloomFilter small(1000, 0.01);
  BloomFilter big(10000, 0.01);
  BloomFilter sloppy(10000, 0.1);
  EXPECT_GT(big.SizeBytes(), small.SizeBytes());
  EXPECT_LT(sloppy.SizeBytes(), big.SizeBytes());
}

// ---- Dedup combiner (DESIGN.md §5.1) ----------------------------------------

// Builds a flat message; payloads beyond the inline capacity spill into
// `arena`, mirroring what MapOutputBuffer does.
Message Msg(uint32_t tag, uint32_t aux, const Tuple& payload,
            std::vector<uint64_t>* arena, double wire = 3.0) {
  Message m;
  m.tag = tag;
  m.aux = aux;
  m.wire_bytes = wire;
  m.payload_size = payload.size();
  if (payload.size() <= Message::kInlinePayloadValues) {
    uint32_t i = 0;
    for (const Value& v : payload) m.inline_payload[i++] = v.raw();
  } else {
    m.payload_pos = static_cast<uint32_t>(payload.EncodeTo(arena));
  }
  return m;
}

TEST(DedupCombinerTest, RemovesDuplicatesKeepsFirstOccurrenceOrder) {
  DedupCombiner combiner;
  std::vector<uint64_t> arena;
  std::vector<Message> values;
  values.push_back(Msg(2, 0, Tuple{}, &arena));
  values.push_back(Msg(1, 0, Tuple::Ints({7}), &arena));
  values.push_back(Msg(2, 0, Tuple{}, &arena));  // duplicate of [0]
  values.push_back(Msg(2, 1, Tuple{}, &arena));  // distinct aux
  values.push_back(Msg(1, 0, Tuple::Ints({8}), &arena));  // distinct payload
  values.push_back(Msg(1, 0, Tuple::Ints({7}), &arena));  // duplicate of [1]
  std::vector<uint64_t> key_words;
  Tuple::Ints({1}).EncodeTo(&key_words);
  const size_t kept =
      combiner.Combine(key_words.data(), 1, values.data(), values.size(),
                       arena.data());
  ASSERT_EQ(kept, 4u);
  EXPECT_EQ(values[0].tag, 2u);
  EXPECT_EQ(MessageRef(&values[1], arena.data()).PayloadTuple(),
            Tuple::Ints({7}));
  EXPECT_EQ(values[2].aux, 1u);
  EXPECT_EQ(MessageRef(&values[3], arena.data()).PayloadTuple(),
            Tuple::Ints({8}));
}

TEST(DedupCombinerTest, SpilledPayloadsCompareByWords) {
  DedupCombiner combiner;
  std::vector<uint64_t> arena;
  std::vector<Message> values;
  // Arity 5 > kInlinePayloadValues: payloads live in the arena.
  Tuple big1 = Tuple::Ints({1, 2, 3, 4, 5});
  Tuple big2 = Tuple::Ints({1, 2, 3, 4, 6});
  values.push_back(Msg(1, 0, big1, &arena));
  values.push_back(Msg(1, 0, big2, &arena));  // distinct
  values.push_back(Msg(1, 0, big1, &arena));  // duplicate of [0]
  std::vector<uint64_t> key_words;
  Tuple::Ints({9}).EncodeTo(&key_words);
  const size_t kept = combiner.Combine(key_words.data(), 1, values.data(),
                                       values.size(), arena.data());
  ASSERT_EQ(kept, 2u);
  EXPECT_EQ(MessageRef(&values[0], arena.data()).PayloadTuple(), big1);
  EXPECT_EQ(MessageRef(&values[1], arena.data()).PayloadTuple(), big2);
}

// ---- Engine accounting of combiners and filters -----------------------------

// A mapper that emits `copies` identical messages per fact, keyed by the
// first attribute.
class DupMapper : public Mapper {
 public:
  explicit DupMapper(int copies) : copies_(copies) {}
  void Map(size_t, RowView fact, uint64_t, Emitter* emitter) override {
    for (int i = 0; i < copies_; ++i) {
      emitter->Emit(Tuple{fact[0]}, /*tag=*/1, /*aux=*/0, /*wire_bytes=*/4.0);
    }
  }

 private:
  int copies_;
};

class KeyCountReducer : public Reducer {
 public:
  void Reduce(TupleView key, const MessageGroup& values,
              ReduceEmitter* emitter) override {
    Tuple out;
    out.PushBack(key[0]);
    out.PushBack(Value::Int(values.empty() ? 0 : 1));  // set semantics
    emitter->Emit(0, out);
  }
};

JobSpec DupJob(const std::string& in, const std::string& out, bool combine) {
  JobSpec spec;
  spec.name = "dup";
  spec.inputs.push_back({in});
  JobOutput o;
  o.dataset = out;
  o.arity = 2;
  spec.outputs.push_back(o);
  spec.mapper_factory = [] { return std::make_unique<DupMapper>(3); };
  spec.reducer_factory = [] { return std::make_unique<KeyCountReducer>(); };
  if (combine) {
    spec.combiner_factory = [] { return std::make_unique<DedupCombiner>(); };
  }
  return spec;
}

TEST(EngineTest, CombinerShrinksShuffleAndIsAccounted) {
  Database db;
  Relation r("In", 1);
  for (int64_t i = 0; i < 200; ++i) ASSERT_OK(r.Add(Tuple::Ints({i % 20})));
  db.Put(std::move(r));
  Engine engine(SmallCluster());
  auto with = engine.Run(DupJob("In", "OutC", true), &db);
  auto without = engine.Run(DupJob("In", "OutN", false), &db);
  ASSERT_OK(with);
  ASSERT_OK(without);
  // Identical result *sets* (the combiner can change the reducer count,
  // which permutes raw output order; canonical query outputs are sorted
  // downstream), smaller shuffle, exact message conservation.
  EXPECT_TRUE(db.Get("OutC").value()->SetEquals(*db.Get("OutN").value()));
  EXPECT_LT(with->shuffle_mb, without->shuffle_mb);
  EXPECT_GT(with->combined_messages, 0u);
  EXPECT_GT(with->combined_mb, 0.0);
  EXPECT_EQ(with->shuffle_messages + with->combined_messages,
            without->shuffle_messages);
  EXPECT_EQ(without->combined_messages, 0u);
  // The dedup never crosses reduce keys: every key still arrives.
  EXPECT_EQ(db.Get("OutC").value()->size(), 20u);
}

TEST(EngineTest, CombinerWithoutPackingStillDedupes) {
  Database db;
  Relation r("In", 1);
  for (int64_t i = 0; i < 60; ++i) ASSERT_OK(r.Add(Tuple::Ints({i % 6})));
  db.Put(std::move(r));
  Engine engine(SmallCluster());
  JobSpec spec = DupJob("In", "Out", true);
  spec.pack_messages = false;
  auto stats = engine.Run(spec, &db);
  ASSERT_OK(stats);
  EXPECT_GT(stats->combined_messages, 0u);
  EXPECT_EQ(db.Get("Out").value()->size(), 6u);
}

// A mapper that consults filter 0 before emitting (like the ops mappers).
class FilteringMapper : public Mapper {
 public:
  void AttachFilters(const FilterSet* filters) override { filters_ = filters; }
  uint64_t SuppressedEmissions() const override { return suppressed_; }
  void Map(size_t, RowView fact, uint64_t, Emitter* emitter) override {
    Tuple key{fact[0]};
    const uint64_t h = key.Hash();
    if (filters_ != nullptr && !filters_->filter(0).MightContain(h)) {
      ++suppressed_;
      return;
    }
    emitter->EmitPrehashed(key, h, /*tag=*/1, /*aux=*/0, /*wire_bytes=*/4.0);
  }

 private:
  const FilterSet* filters_ = nullptr;
  uint64_t suppressed_ = 0;
};

TEST(EngineTest, FilterBuilderAttachesAndAccounts) {
  Database db;
  Relation r("In", 1);
  for (int64_t i = 0; i < 100; ++i) ASSERT_OK(r.Add(Tuple::Ints({i})));
  db.Put(std::move(r));

  JobSpec spec;
  spec.name = "filtered";
  spec.inputs.push_back({"In"});
  JobOutput o;
  o.dataset = "Out";
  o.arity = 2;
  spec.outputs.push_back(o);
  spec.mapper_factory = [] { return std::make_unique<FilteringMapper>(); };
  spec.reducer_factory = [] { return std::make_unique<KeyCountReducer>(); };
  // Filter admits only even keys.
  spec.filter_builder =
      [](const std::vector<const Relation*>& rels) -> Result<FilterSet> {
    FilterSet fs;
    fs.Add(BloomFilter(rels[0]->size(), 0.01));
    for (RowView t : rels[0]->views()) {
      if (t[0].AsInt() % 2 == 0) fs.mutable_filter(0)->Insert(Tuple{t[0]}.Hash());
    }
    fs.set_scan_mb(rels[0]->SizeMb());
    return fs;
  };

  Engine engine(SmallCluster());
  auto stats = engine.Run(spec, &db);
  ASSERT_OK(stats);
  // ~50 odd keys suppressed (no false negatives: all evens pass).
  EXPECT_GE(stats->filtered_messages, 45u);
  EXPECT_GT(stats->filter_mb, 0.0);
  EXPECT_GT(stats->filter_broadcast_mb, 0.0);
  EXPECT_GT(stats->filter_build_cost, 0.0);
  EXPECT_GE(db.Get("Out").value()->size(), 50u);  // evens always survive
}

TEST(ProgramTest, RoundsIsLongestChain) {
  Program p;
  JobSpec s;
  s.name = "x";
  s.mapper_factory = [] { return nullptr; };
  s.reducer_factory = [] { return nullptr; };
  size_t a = p.AddJob(s);
  size_t b = p.AddJob(s);
  size_t cjob = p.AddJob(s, {a, b});
  p.AddJob(s, {cjob});
  EXPECT_EQ(p.Rounds(), 3);
}

}  // namespace
}  // namespace gumbo::mr
