// Tests for the simulated MapReduce engine and the program scheduler.
#include <gtest/gtest.h>

#include <memory>

#include "mr/engine.h"
#include "mr/program.h"
#include "test_util.h"

namespace gumbo::mr {
namespace {

using ::gumbo::testing::MakeRelation;
using ::gumbo::testing::RowsOf;

// A toy job: groups input tuples by first attribute and counts them.
class CountMapper : public Mapper {
 public:
  void Map(size_t, const Tuple& fact, uint64_t, MapEmitter* emitter) override {
    Message m;
    m.tag = 1;
    m.wire_bytes = 4.0;
    emitter->Emit(Tuple{fact[0]}, std::move(m));
  }
};

class CountReducer : public Reducer {
 public:
  void Reduce(const Tuple& key, const std::vector<Message>& values,
              ReduceEmitter* emitter) override {
    Tuple out;
    out.PushBack(key[0]);
    out.PushBack(Value::Int(static_cast<int64_t>(values.size())));
    emitter->Emit(0, std::move(out));
  }
};

JobSpec CountJob(const std::string& in, const std::string& out) {
  JobSpec spec;
  spec.name = "count";
  spec.inputs.push_back({in});
  JobOutput o;
  o.dataset = out;
  o.arity = 2;
  spec.outputs.push_back(o);
  spec.mapper_factory = [] { return std::make_unique<CountMapper>(); };
  spec.reducer_factory = [] { return std::make_unique<CountReducer>(); };
  return spec;
}

cost::ClusterConfig SmallCluster() {
  cost::ClusterConfig c;
  c.nodes = 2;
  c.map_slots_per_node = 2;
  c.reduce_slots_per_node = 2;
  c.split_mb = 0.001;  // force several map tasks on tiny data
  c.mb_per_reducer = 0.001;
  return c;
}

TEST(EngineTest, GroupCountCorrectAcrossTasksAndReducers) {
  Database db;
  Relation r("In", 2);
  for (int64_t i = 0; i < 1000; ++i) {
    ASSERT_OK(r.Add(Tuple::Ints({i % 10, i})));
  }
  db.Put(std::move(r));

  Engine engine(SmallCluster());
  auto stats = engine.Run(CountJob("In", "Out"), &db);
  ASSERT_OK(stats);
  EXPECT_GT(stats->map_task_costs.size(), 1u);  // multiple map tasks
  EXPECT_GT(stats->num_reducers, 1);            // multiple reducers

  const Relation* out = db.Get("Out").value();
  ASSERT_EQ(out->size(), 10u);
  for (const Tuple& t : out->tuples()) {
    EXPECT_EQ(t[1], Value::Int(100));  // each group has 100 members
  }
}

TEST(EngineTest, DeterministicAcrossRuns) {
  Database db;
  Relation r("In", 2);
  for (int64_t i = 0; i < 500; ++i) {
    ASSERT_OK(r.Add(Tuple::Ints({i % 7, i})));
  }
  db.Put(std::move(r));
  Engine engine(SmallCluster());
  ASSERT_OK(engine.Run(CountJob("In", "Out1"), &db).status());
  ASSERT_OK(engine.Run(CountJob("In", "Out2"), &db).status());
  const Relation* a = db.Get("Out1").value();
  const Relation* b = db.Get("Out2").value();
  EXPECT_EQ(a->tuples(), b->tuples());  // identical order, not just set
}

TEST(EngineTest, CountsBytesAndScale) {
  Database db;
  Relation r("In", 2);
  for (int64_t i = 0; i < 100; ++i) ASSERT_OK(r.Add(Tuple::Ints({i, i})));
  r.set_representation_scale(1000.0);  // 100 tuples stand for 100k
  db.Put(std::move(r));

  cost::ClusterConfig c;
  Engine engine(c);
  auto stats = engine.Run(CountJob("In", "Out"), &db);
  ASSERT_OK(stats);
  // Input: 100k represented tuples * 20 B = 2,000,000 B.
  EXPECT_NEAR(stats->hdfs_read_mb, 2e6 / (1024.0 * 1024.0), 1e-9);
  // Shuffle: packed by key; all keys distinct => 100k records * (10 key +
  // 4 payload) B.
  EXPECT_NEAR(stats->shuffle_mb, 100000.0 * 14.0 / (1024.0 * 1024.0), 1e-9);
  // Output inherits the scale.
  EXPECT_DOUBLE_EQ(db.Get("Out").value()->representation_scale(), 1000.0);
}

TEST(EngineTest, PackingReducesShuffleBytes) {
  Database db;
  Relation r("In", 2);
  for (int64_t i = 0; i < 100; ++i) {
    ASSERT_OK(r.Add(Tuple::Ints({i % 5, i})));  // 5 hot keys
  }
  db.Put(std::move(r));
  Engine engine(cost::ClusterConfig{});

  JobSpec packed = CountJob("In", "OutP");
  packed.pack_messages = true;
  JobSpec unpacked = CountJob("In", "OutU");
  unpacked.pack_messages = false;

  auto sp = engine.Run(packed, &db);
  auto su = engine.Run(unpacked, &db);
  ASSERT_OK(sp);
  ASSERT_OK(su);
  EXPECT_LT(sp->shuffle_mb, su->shuffle_mb);
  // Same results either way.
  EXPECT_TRUE(db.Get("OutP").value()->SetEquals(*db.Get("OutU").value()));
}

TEST(EngineTest, MissingInputFails) {
  Database db;
  Engine engine(cost::ClusterConfig{});
  EXPECT_FALSE(engine.Run(CountJob("Nope", "Out"), &db).ok());
}

TEST(EngineTest, MismatchedScalesFail) {
  Database db;
  Relation a = MakeRelation("A", 1, {{1}});
  Relation b = MakeRelation("B", 1, {{1}});
  b.set_representation_scale(10.0);
  db.Put(a);
  db.Put(b);
  JobSpec spec = CountJob("A", "Out");
  spec.inputs.push_back({"B"});
  Engine engine(cost::ClusterConfig{});
  auto r = engine.Run(spec, &db);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kFailedPrecondition);
}

// ---- Scheduler -------------------------------------------------------------

JobStats FakeJob(const std::string& name, std::vector<double> maps,
                 std::vector<double> reds, double overhead = 0.0) {
  JobStats js;
  js.job_name = name;
  js.map_task_costs = std::move(maps);
  js.reduce_task_costs = std::move(reds);
  js.job_overhead = overhead;
  return js;
}

TEST(SchedulerTest, SingleJobIsMapPlusReduce) {
  cost::ClusterConfig c;
  c.nodes = 1;
  c.map_slots_per_node = 2;
  c.reduce_slots_per_node = 2;
  c.costs.job_overhead = 1.0;
  // 4 map tasks of 10 on 2 slots -> 2 waves = 20; then 1 reduce of 5.
  std::vector<JobStats> jobs = {FakeJob("j", {10, 10, 10, 10}, {5})};
  double net = SimulateNetTime(jobs, {{}}, c);
  EXPECT_DOUBLE_EQ(net, 1.0 + 20.0 + 5.0);
}

TEST(SchedulerTest, IndependentJobsShareSlots) {
  cost::ClusterConfig c;
  c.nodes = 1;
  c.map_slots_per_node = 2;
  c.reduce_slots_per_node = 2;
  c.costs.job_overhead = 0.0;
  // Two independent jobs, each 2 maps of 10: with 2 slots total the maps
  // serialize across jobs -> makespan 20 + reduce 5.
  std::vector<JobStats> jobs = {FakeJob("a", {10, 10}, {5}),
                                FakeJob("b", {10, 10}, {5})};
  double net = SimulateNetTime(jobs, {{}, {}}, c);
  EXPECT_DOUBLE_EQ(net, 25.0);
  // With 4 slots they overlap fully.
  c.map_slots_per_node = 4;
  EXPECT_DOUBLE_EQ(SimulateNetTime(jobs, {{}, {}}, c), 15.0);
}

TEST(SchedulerTest, DependencyChainsSerialize) {
  cost::ClusterConfig c;
  c.nodes = 10;
  c.map_slots_per_node = 10;
  c.costs.job_overhead = 2.0;
  std::vector<JobStats> jobs = {FakeJob("a", {10}, {5}),
                                FakeJob("b", {10}, {5})};
  // b depends on a: net = (2+10+5) + (2+10+5).
  double net = SimulateNetTime(jobs, {{}, {0}}, c);
  EXPECT_DOUBLE_EQ(net, 34.0);
}

TEST(SchedulerTest, ReduceWaitsForAllMaps) {
  cost::ClusterConfig c;
  c.nodes = 1;
  c.map_slots_per_node = 4;
  c.reduce_slots_per_node = 4;
  c.costs.job_overhead = 0.0;
  // Straggler map of 100 gates the reduce phase (slowstart = 1).
  std::vector<JobStats> jobs = {FakeJob("j", {1, 1, 1, 100}, {1})};
  EXPECT_DOUBLE_EQ(SimulateNetTime(jobs, {{}}, c), 101.0);
}

TEST(ProgramTest, RoundsIsLongestChain) {
  Program p;
  JobSpec s;
  s.name = "x";
  s.mapper_factory = [] { return nullptr; };
  s.reducer_factory = [] { return nullptr; };
  size_t a = p.AddJob(s);
  size_t b = p.AddJob(s);
  size_t cjob = p.AddJob(s, {a, b});
  p.AddJob(s, {cjob});
  EXPECT_EQ(p.Rounds(), 3);
}

}  // namespace
}  // namespace gumbo::mr
