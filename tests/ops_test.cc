// Tests for the MapReduce operators (MSJ, EVAL, 1-ROUND, chain steps):
// every operator is validated against the naive reference evaluator.
#include <gtest/gtest.h>

#include "mr/engine.h"
#include "mr/program.h"
#include "ops/chain.h"
#include "ops/eval.h"
#include "ops/msj.h"
#include "ops/one_round.h"
#include "sgf/naive_eval.h"
#include "test_util.h"

namespace gumbo::ops {
namespace {

using ::gumbo::testing::MakeRelation;
using ::gumbo::testing::ParseBsgfOrDie;
using ::gumbo::testing::RowsOf;

cost::ClusterConfig TestCluster() {
  cost::ClusterConfig c;
  c.split_mb = 0.0005;  // several map tasks even on tiny relations
  c.mb_per_reducer = 0.0005;
  return c;
}

Database IntroDb() {
  Database db;
  db.Put(MakeRelation("R", 2, {{1, 2}, {2, 3}, {3, 4}, {4, 5}, {5, 1}}));
  db.Put(MakeRelation("S", 2, {{1, 2}, {3, 2}, {4, 5}}));
  db.Put(MakeRelation("T", 2, {{1, 9}, {3, 7}, {5, 5}}));
  return db;
}

// Runs MSJ for all equations of `query` (in one job), then EVAL; returns
// the output relation.
Result<Relation> RunTwoRound(const sgf::BsgfQuery& query, Database db,
                             const OpOptions& options) {
  std::vector<SemiJoinEquation> eqs;
  EvalTask eval_task;
  eval_task.query = query;
  eval_task.guard_dataset = query.guard().relation();
  eval_task.output_dataset = query.output();
  for (size_t i = 0; i < query.num_conditional_atoms(); ++i) {
    SemiJoinEquation eq;
    eq.output = "__x" + std::to_string(i);
    eq.guard = query.guard();
    eq.guard_dataset = query.guard().relation();
    eq.conditional = query.conditional_atoms()[i];
    eq.conditional_dataset = query.conditional_atoms()[i].relation();
    eval_task.x_datasets.push_back(eq.output);
    eqs.push_back(std::move(eq));
  }
  mr::Program program;
  GUMBO_ASSIGN_OR_RETURN(mr::JobSpec msj, BuildMsjJob(eqs, options, "msj"));
  size_t j = program.AddJob(std::move(msj));
  GUMBO_ASSIGN_OR_RETURN(mr::JobSpec eval,
                         BuildEvalJob({eval_task}, options, "eval"));
  program.AddJob(std::move(eval), {j});
  mr::Engine engine(TestCluster());
  GUMBO_RETURN_IF_ERROR(mr::RunProgram(program, &engine, &db).status());
  GUMBO_ASSIGN_OR_RETURN(const Relation* out, db.Get(query.output()));
  return *out;
}

void ExpectMatchesNaive(const std::string& text, const Database& db,
                        const OpOptions& options) {
  sgf::BsgfQuery q = ParseBsgfOrDie(text);
  auto expected = sgf::NaiveEvalBsgf(q, db);
  ASSERT_OK(expected);
  auto got = RunTwoRound(q, db, options);
  ASSERT_OK(got);
  EXPECT_TRUE(got->SetEquals(*expected))
      << "query: " << text << "\n got " << got->size() << " tuples, want "
      << expected->size();
}

TEST(MsjEvalTest, IntroQueryBothPayloadModes) {
  const char* q =
      "Z := SELECT (x, y) FROM R(x, y) "
      "WHERE (S(x, y) OR S(y, x)) AND T(x, z);";
  for (bool ids : {true, false}) {
    OpOptions opt;
    opt.tuple_id_refs = ids;
    ExpectMatchesNaive(q, IntroDb(), opt);
  }
}

TEST(MsjEvalTest, NegationRequiresGuardPresence) {
  // Tuples matching NO atom must still be evaluated (NOT S).
  ExpectMatchesNaive("Z := SELECT (x, y) FROM R(x, y) WHERE NOT S(x, y);",
                     IntroDb(), OpOptions{});
}

TEST(MsjEvalTest, EarlyProjectionWouldBeWrong) {
  // Two guard tuples agree on x but satisfy different atoms; projecting
  // before EVAL would wrongly emit x=1. Guards against the §4.2 pitfall
  // discussed in DESIGN.md.
  Database db;
  db.Put(MakeRelation("R", 2, {{1, 10}, {1, 20}}));
  db.Put(MakeRelation("S", 1, {{10}}));
  db.Put(MakeRelation("T", 1, {{20}}));
  ExpectMatchesNaive("Z := SELECT x FROM R(x, y) WHERE S(y) AND T(y);", db,
                     OpOptions{});
  // And verify the expected answer is indeed empty.
  auto q = ParseBsgfOrDie("Z := SELECT x FROM R(x, y) WHERE S(y) AND T(y);");
  auto expected = sgf::NaiveEvalBsgf(q, db);
  ASSERT_OK(expected);
  EXPECT_EQ(expected->size(), 0u);
}

TEST(MsjEvalTest, SharedConditionSignatures) {
  // A2-style: same relation tested on four different guard columns.
  Database db;
  db.Put(MakeRelation("G", 4, {{1, 2, 3, 4}, {5, 5, 5, 5}, {9, 9, 9, 9}}));
  db.Put(MakeRelation("S", 1, {{1}, {2}, {3}, {4}, {5}}));
  ExpectMatchesNaive(
      "Z := SELECT (x, y, z, w) FROM G(x, y, z, w) "
      "WHERE S(x) AND S(y) AND S(z) AND S(w);",
      db, OpOptions{});
}

TEST(MsjEvalTest, SharedKeysAcrossConditions) {
  // A3-style: different relations, same key.
  Database db;
  db.Put(MakeRelation("G", 4, {{1, 2, 3, 4}, {2, 1, 1, 1}, {7, 0, 0, 0}}));
  db.Put(MakeRelation("S", 1, {{1}, {7}}));
  db.Put(MakeRelation("T", 1, {{1}, {2}}));
  db.Put(MakeRelation("U", 1, {{2}, {7}}));
  ExpectMatchesNaive(
      "Z := SELECT (x, y, z, w) FROM G(x, y, z, w) "
      "WHERE S(x) AND (T(x) OR NOT U(x));",
      db, OpOptions{});
}

TEST(MsjEvalTest, GuardAlsoConditional) {
  // The same relation appears as guard and conditional.
  Database db;
  db.Put(MakeRelation("R", 2, {{1, 2}, {2, 1}, {3, 4}}));
  ExpectMatchesNaive("Z := SELECT (x, y) FROM R(x, y) WHERE R(y, x);", db,
                     OpOptions{});
}

TEST(MsjEvalTest, EmptyConditionalRelation) {
  Database db = IntroDb();
  db.Put(Relation("E", 1));
  ExpectMatchesNaive("Z := SELECT x FROM R(x, y) WHERE NOT E(x);", db,
                     OpOptions{});
  ExpectMatchesNaive("Z := SELECT x FROM R(x, y) WHERE E(x);", db,
                     OpOptions{});
}

TEST(MsjEvalTest, CrossConditionNoSharedVars) {
  // Conditional atom sharing no variable with the guard: existential
  // "relation is non-empty" semantics; exercises the empty join key.
  Database db;
  db.Put(MakeRelation("R", 1, {{1}, {2}}));
  db.Put(MakeRelation("S", 1, {{9}}));
  db.Put(Relation("E", 1));
  ExpectMatchesNaive("Z := SELECT x FROM R(x) WHERE S(q);", db, OpOptions{});
  ExpectMatchesNaive("Z := SELECT x FROM R(x) WHERE E(q);", db, OpOptions{});
  ExpectMatchesNaive("Z := SELECT x FROM R(x) WHERE NOT E(q);", db,
                     OpOptions{});
}

TEST(MsjTest, RejectsDuplicateOutputs) {
  SemiJoinEquation eq;
  eq.output = "X";
  eq.guard = sgf::Atom::Vars("R", {"x"});
  eq.guard_dataset = "R";
  eq.conditional = sgf::Atom::Vars("S", {"x"});
  eq.conditional_dataset = "S";
  auto r = BuildMsjJob({eq, eq}, OpOptions{}, "bad");
  EXPECT_FALSE(r.ok());
}

TEST(MsjTest, RejectsOutputShadowingInput) {
  SemiJoinEquation eq;
  eq.output = "S";  // collides with the conditional input
  eq.guard = sgf::Atom::Vars("R", {"x"});
  eq.guard_dataset = "R";
  eq.conditional = sgf::Atom::Vars("S", {"x"});
  eq.conditional_dataset = "S";
  EXPECT_FALSE(BuildMsjJob({eq}, OpOptions{}, "bad").ok());
}

// ---- 1-ROUND ---------------------------------------------------------------

TEST(OneRoundTest, QualificationRules) {
  EXPECT_TRUE(CanOneRound(ParseBsgfOrDie(
      "Z := SELECT x FROM R(x, y) WHERE S(x) AND T(x) AND NOT U(x);")));
  EXPECT_TRUE(CanOneRound(ParseBsgfOrDie(
      "Z := SELECT x FROM R(x, y) WHERE S(x) OR NOT T(y);")));
  EXPECT_FALSE(CanOneRound(ParseBsgfOrDie(
      "Z := SELECT x FROM R(x, y) WHERE S(x) AND T(y);")));
  EXPECT_TRUE(CanOneRound(ParseBsgfOrDie("Z := SELECT x FROM R(x, y);")));
}

Result<Relation> RunOneRound(const sgf::BsgfQuery& query, Database db) {
  OneRoundTask task;
  task.query = query;
  task.guard_dataset = query.guard().relation();
  for (const auto& a : query.conditional_atoms()) {
    task.conditional_datasets.push_back(a.relation());
  }
  task.output_dataset = query.output();
  GUMBO_ASSIGN_OR_RETURN(mr::JobSpec spec,
                         BuildOneRoundJob({task}, OpOptions{}, "1round"));
  mr::Engine engine(TestCluster());
  GUMBO_RETURN_IF_ERROR(engine.Run(spec, &db).status());
  GUMBO_ASSIGN_OR_RETURN(const Relation* out, db.Get(query.output()));
  return *out;
}

void ExpectOneRoundMatchesNaive(const std::string& text, const Database& db) {
  sgf::BsgfQuery q = ParseBsgfOrDie(text);
  auto expected = sgf::NaiveEvalBsgf(q, db);
  ASSERT_OK(expected);
  auto got = RunOneRound(q, db);
  ASSERT_OK(got);
  EXPECT_TRUE(got->SetEquals(*expected))
      << "query: " << text << "\n got " << got->size() << ", want "
      << expected->size();
}

TEST(OneRoundTest, SharedKeyFullCondition) {
  Database db;
  db.Put(MakeRelation("G", 4, {{1, 2, 3, 4}, {2, 1, 1, 1}, {7, 0, 0, 0}}));
  db.Put(MakeRelation("S", 1, {{1}, {7}}));
  db.Put(MakeRelation("T", 1, {{1}, {2}}));
  db.Put(MakeRelation("U", 1, {{2}, {7}}));
  ExpectOneRoundMatchesNaive(
      "Z := SELECT (x, y, z, w) FROM G(x, y, z, w) "
      "WHERE (S(x) AND NOT T(x)) OR U(x);",
      db);
}

TEST(OneRoundTest, DisjunctionOfLiteralsAcrossKeys) {
  Database db = IntroDb();
  ExpectOneRoundMatchesNaive(
      "Z := SELECT (x, y) FROM R(x, y) WHERE S(x, q) OR NOT T(y, p);", db);
}

TEST(OneRoundTest, ProjectionOnly) {
  Database db;
  db.Put(MakeRelation("R", 3, {{1, 2, 4}, {3, 4, 4}, {5, 6, 7}, {8, 9, 4}}));
  ExpectOneRoundMatchesNaive("Z := SELECT y FROM R(x, y, 4);", db);
}

TEST(OneRoundTest, RefusesNonQualifyingQuery) {
  sgf::BsgfQuery q = ParseBsgfOrDie(
      "Z := SELECT x FROM R(x, y) WHERE S(x) AND T(y);");
  OneRoundTask task;
  task.query = q;
  task.guard_dataset = "R";
  task.conditional_datasets = {"S", "T"};
  task.output_dataset = "Z";
  EXPECT_FALSE(BuildOneRoundJob({task}, OpOptions{}, "bad").ok());
}

// ---- Chain steps (SEQ) -----------------------------------------------------

TEST(ChainTest, SemijoinThenAntijoin) {
  Database db = IntroDb();
  // Z := R |x S(x,q) then anti-join T(x,p): matches naive for
  // "S(x,q) AND NOT T(x,p)".
  sgf::BsgfQuery q = ParseBsgfOrDie(
      "Z := SELECT (x, y) FROM R(x, y) WHERE S(x, q) AND NOT T(x, p);");
  auto expected = sgf::NaiveEvalBsgf(q, db);
  ASSERT_OK(expected);

  ChainStepSpec s1;
  s1.guard = q.guard();
  s1.input_dataset = "R";
  s1.conditional = q.conditional_atoms()[0];
  s1.conditional_dataset = "S";
  s1.positive = true;
  s1.filter_guard_pattern = true;
  s1.output_dataset = "__c1";

  ChainStepSpec s2;
  s2.guard = q.guard();
  s2.input_dataset = "__c1";
  s2.conditional = q.conditional_atoms()[1];
  s2.conditional_dataset = "T";
  s2.positive = false;
  s2.emit_projection = true;
  s2.select_vars = q.select_vars();
  s2.output_dataset = "Z";

  mr::Program program;
  auto j1 = BuildChainStepJob(s1, OpOptions{}, "step1");
  ASSERT_OK(j1);
  size_t id1 = program.AddJob(std::move(*j1));
  auto j2 = BuildChainStepJob(s2, OpOptions{}, "step2");
  ASSERT_OK(j2);
  program.AddJob(std::move(*j2), {id1});

  mr::Engine engine(TestCluster());
  ASSERT_OK(mr::RunProgram(program, &engine, &db).status());
  EXPECT_TRUE(db.Get("Z").value()->SetEquals(*expected));
}

TEST(ChainTest, IntermediateShrinks) {
  Database db = IntroDb();
  ChainStepSpec s1;
  s1.guard = sgf::Atom::Vars("R", {"x", "y"});
  s1.input_dataset = "R";
  s1.conditional = sgf::Atom::Vars("S", {"x", "q"});
  s1.conditional_dataset = "S";
  s1.positive = true;
  s1.filter_guard_pattern = true;
  s1.output_dataset = "__c";
  auto job = BuildChainStepJob(s1, OpOptions{}, "s");
  ASSERT_OK(job);
  mr::Engine engine(TestCluster());
  ASSERT_OK(engine.Run(*job, &db).status());
  EXPECT_LT(db.Get("__c").value()->size(), db.Get("R").value()->size());
}

// Anti-join + Bloom filters (DESIGN.md §5.2): requests must NOT be
// filtered on a negative step — dropping a filter-negative request would
// silently delete exactly the tuples an anti-join is supposed to keep.
// Only dead asserts (keys no input tuple requests) may be suppressed.
TEST(ChainTest, AntiJoinWithFiltersKeepsUnmatchedGuards) {
  OpOptions filtered;
  filtered.bloom_filters = true;
  OpOptions plain;
  plain.bloom_filters = false;
  for (const OpOptions& options : {filtered, plain}) {
    Database db = IntroDb();
    ChainStepSpec s;
    s.guard = sgf::Atom::Vars("R", {"x", "y"});
    s.input_dataset = "R";
    s.conditional = sgf::Atom::Vars("S", {"x", "q"});
    s.conditional_dataset = "S";
    s.positive = false;  // keep R tuples with NO matching S fact
    s.filter_guard_pattern = true;
    s.output_dataset = "Z";
    auto job = BuildChainStepJob(s, options, "asj");
    ASSERT_OK(job);
    mr::Engine engine(TestCluster());
    auto stats = engine.Run(*job, &db);
    ASSERT_OK(stats);
    // S has x in {1, 3, 4}; R keeps x in {2, 5}.
    EXPECT_EQ(RowsOf(*db.Get("Z").value()),
              (std::vector<std::vector<int64_t>>{{2, 3}, {5, 1}}));
    if (options.bloom_filters) {
      // The dead asserts (S keys 1/3/4 all appear in R here, so none are
      // dead) may or may not fire; what matters is nothing was requested
      // away: all requests flowed.
      EXPECT_GT(stats->filter_mb, 0.0);
    } else {
      EXPECT_EQ(stats->filtered_messages, 0u);
      EXPECT_EQ(stats->filter_mb, 0.0);
    }
  }
}

// Two-sided MSJ filtering drops both unmatched requests and dead asserts
// while leaving the result untouched.
TEST(MsjEvalTest, FiltersSuppressTrafficWithoutChangingResults) {
  const char* q =
      "Z := SELECT (x, y) FROM R(x, y) WHERE S(x, q) AND T(y, r);";
  Database db = IntroDb();
  OpOptions on;
  on.bloom_filters = true;
  on.combiners = true;
  OpOptions off;
  off.bloom_filters = false;
  off.combiners = false;
  ExpectMatchesNaive(q, db, on);
  ExpectMatchesNaive(q, db, off);
}

TEST(ChainTest, UnionProjectDedupes) {
  Database db;
  db.Put(MakeRelation("C1", 2, {{1, 2}, {3, 4}}));
  db.Put(MakeRelation("C2", 2, {{3, 4}, {5, 6}}));
  auto job = BuildUnionProjectJob({"C1", "C2"}, sgf::Atom::Vars("R", {"x", "y"}),
                                  {"x"}, "Z", OpOptions{}, "union");
  ASSERT_OK(job);
  mr::Engine engine(TestCluster());
  ASSERT_OK(engine.Run(*job, &db).status());
  EXPECT_EQ(RowsOf(*db.Get("Z").value()),
            (std::vector<std::vector<int64_t>>{{1}, {3}, {5}}));
}

}  // namespace
}  // namespace gumbo::ops
