// Tests for the MapReduce cost model (§3.3) and the sampling estimator.
#include <gtest/gtest.h>

#include <cmath>

#include "cost/constants.h"
#include "cost/estimator.h"
#include "cost/model.h"
#include "data/generator.h"
#include "ops/msj.h"
#include "test_util.h"

namespace gumbo::cost {
namespace {

using ::gumbo::testing::MakeRelation;

TEST(CostModelTest, LogDCeil) {
  EXPECT_DOUBLE_EQ(LogDCeil(0.5, 10.0), 0.0);   // fits in buffer
  EXPECT_DOUBLE_EQ(LogDCeil(1.0, 10.0), 0.0);
  EXPECT_DOUBLE_EQ(LogDCeil(10.0, 10.0), 1.0);  // one merge pass
  EXPECT_DOUBLE_EQ(LogDCeil(100.0, 10.0), 2.0);
  EXPECT_DOUBLE_EQ(LogDCeil(99.2, 10.0), 2.0);  // ceil then log
}

TEST(CostModelTest, MapCostHandComputed) {
  CostConstants c;  // paper Table 5 values
  // Small output: no merge passes.
  MapPartition p;
  p.input_mb = 100.0;
  p.output_mb = 100.0;
  p.metadata_mb = 1.0;
  p.num_mappers = 1;
  // (101/409) < 1 -> merge 0; cost = 0.15*100 + 0 + 0.085*100 = 23.5.
  EXPECT_NEAR(MapCost(c, p), 23.5, 1e-9);

  // Large output: ceil(5000/409)=13 -> log10(13) passes.
  p.output_mb = 5000.0;
  p.metadata_mb = 0.0;
  double merge = (0.03 + 0.085) * 5000.0 * std::log(13.0) / std::log(10.0);
  EXPECT_NEAR(MapCost(c, p), 0.15 * 100.0 + merge + 0.085 * 5000.0, 1e-9);
}

TEST(CostModelTest, ReduceCostHandComputed) {
  CostConstants c;
  // M=1000 over 4 reducers: 250/512 < 1 -> no merge passes.
  EXPECT_NEAR(ReduceCost(c, 1000.0, 300.0, 4),
              0.017 * 1000.0 + 0.25 * 300.0, 1e-9);
  // One reducer: ceil(1000/512)=2 -> log10(2).
  double merge = (0.03 + 0.085) * 1000.0 * std::log(2.0) / std::log(10.0);
  EXPECT_NEAR(ReduceCost(c, 1000.0, 300.0, 1),
              0.017 * 1000.0 + merge + 0.25 * 300.0, 1e-9);
}

TEST(CostModelTest, GumboSeparatesPartitionsWangAggregates) {
  CostConstants c;
  // Two inputs with wildly different expansion: one emits 4000 MB from
  // 100 MB, the other emits nothing. Per-partition accounting sees merge
  // passes only on the hot input at its own task count; the aggregate
  // model smears the data across all mappers, changing the merge term
  // (this is the §3.3 / §5.2 discrepancy).
  MapPartition hot;
  hot.input_mb = 100.0;
  hot.output_mb = 8000.0;
  hot.metadata_mb = 400.0;
  hot.num_mappers = 1;
  MapPartition cold;
  cold.input_mb = 400.0;
  cold.output_mb = 0.0;
  cold.metadata_mb = 0.0;
  cold.num_mappers = 4;

  double gumbo = JobCost(c, CostModelVariant::kGumbo, {hot, cold}, 10.0, 4);
  double wang = JobCost(c, CostModelVariant::kWang, {hot, cold}, 10.0, 4);
  EXPECT_GT(gumbo, wang);  // wang underestimates the hot input's merges
}

TEST(CostModelTest, VariantsAgreeOnUniformInputs) {
  CostConstants c;
  MapPartition a;
  a.input_mb = 100.0;
  a.output_mb = 100.0;
  a.metadata_mb = 5.0;
  a.num_mappers = 2;
  MapPartition b = a;
  double gumbo = JobCost(c, CostModelVariant::kGumbo, {a, b}, 10.0, 2);
  double wang = JobCost(c, CostModelVariant::kWang, {a, b}, 10.0, 2);
  EXPECT_NEAR(gumbo, wang, 1e-9);
}

TEST(CostModelTest, JobOverheadIncluded) {
  CostConstants c;
  c.job_overhead = 42.0;
  EXPECT_NEAR(JobCost(c, CostModelVariant::kGumbo, {}, 0.0, 1), 42.0, 1e-9);
}

TEST(ClusterConfigTest, ScaledBytesPreservesRatios) {
  ClusterConfig c;
  ClusterConfig s = c.ScaledBytes(0.01);
  EXPECT_NEAR(s.split_mb / s.mb_per_reducer, c.split_mb / c.mb_per_reducer,
              1e-12);
  EXPECT_NEAR(s.costs.buf_map_mb, c.costs.buf_map_mb * 0.01, 1e-12);
  EXPECT_EQ(s.TotalMapSlots(), c.TotalMapSlots());
}

// ---- Estimator ---------------------------------------------------------------

TEST(EstimatorTest, SamplingMatchesEngineShapeOnMsj) {
  // Estimate an MSJ job by sampling and compare the input/intermediate
  // profile against structural expectations.
  data::GeneratorConfig g;
  g.tuples = 2000;
  g.representation_scale = 1.0;
  Database db;
  data::Generator gen(g);
  db.Put(gen.Guard("R", 4));
  db.Put(gen.Conditional("S", 1));

  ops::SemiJoinEquation eq;
  eq.output = "X";
  eq.guard = sgf::Atom::Vars("R", {"x", "y", "z", "w"});
  eq.guard_dataset = "R";
  eq.conditional = sgf::Atom::Vars("S", {"x"});
  eq.conditional_dataset = "S";
  ops::OpOptions opt;
  opt.pack_messages = false;  // exact per-message byte math below
  auto job = ops::BuildMsjJob({eq}, opt, "j");
  ASSERT_OK(job);

  ClusterConfig config;
  config.split_mb = 0.01;
  StatsCatalog catalog;
  CostEstimator est(config, CostModelVariant::kGumbo, &db, &catalog, 256);
  auto e = est.EstimateJob(*job);
  ASSERT_OK(e);
  ASSERT_EQ(e->partitions.size(), 2u);
  // Guard input: 2000 * 40 B.
  EXPECT_NEAR(e->partitions[0].input_mb, 2000.0 * 40 / (1024.0 * 1024.0),
              1e-9);
  // Every guard tuple emits one request (key 10 B + msg 3 + 8 id).
  EXPECT_NEAR(e->partitions[0].output_mb, 2000.0 * 21 / (1024.0 * 1024.0),
              1e-6);
  EXPECT_GT(e->cost, 0.0);
}

TEST(EstimatorTest, CatalogFallbackForUnmaterializedInputs) {
  Database db;  // empty: forces the catalog path
  StatsCatalog catalog;
  RelationStats rs;
  rs.tuples = 1000.0;
  rs.bytes_per_tuple = 40.0;
  catalog.Put("R", rs);
  rs.bytes_per_tuple = 10.0;
  catalog.Put("S", rs);

  ops::SemiJoinEquation eq;
  eq.output = "X";
  eq.guard = sgf::Atom::Vars("R", {"x", "y", "z", "w"});
  eq.guard_dataset = "R";
  eq.conditional = sgf::Atom::Vars("S", {"x"});
  eq.conditional_dataset = "S";
  auto job = ops::BuildMsjJob({eq}, ops::OpOptions{}, "j");
  ASSERT_OK(job);

  ClusterConfig config;
  CostEstimator est(config, CostModelVariant::kGumbo, &db, &catalog, 256);
  auto e = est.EstimateJob(*job);
  ASSERT_OK(e);
  EXPECT_NEAR(e->partitions[0].input_mb, 1000.0 * 40 / (1024.0 * 1024.0),
              1e-9);
  EXPECT_GT(e->partitions[0].output_mb, 0.0);

  // Missing from both db and catalog -> NotFound.
  StatsCatalog empty;
  CostEstimator bad(config, CostModelVariant::kGumbo, &db, &empty, 256);
  EXPECT_FALSE(bad.EstimateJob(*job).ok());
}

TEST(EstimatorTest, ConstantFilterDetectedBySampling) {
  // The §5.2 scenario: a conditional atom whose constant matches no tuple
  // contributes zero intermediate data — visible to sampling, invisible
  // to a naive size-proportional guess.
  Database db;
  db.Put(MakeRelation("R", 1, {{1}, {2}, {3}, {4}}));
  Relation s("S", 2);
  for (int64_t i = 0; i < 100; ++i) {
    ASSERT_OK(s.Add(Tuple::Ints({i, i})));
  }
  db.Put(std::move(s));

  ops::SemiJoinEquation eq;
  eq.output = "X";
  eq.guard = sgf::Atom::Vars("R", {"x"});
  eq.guard_dataset = "R";
  eq.conditional =
      sgf::Atom("S", {sgf::Term::Var("x"), sgf::Term::ConstInt(424242)});
  eq.conditional_dataset = "S";
  auto job = ops::BuildMsjJob({eq}, ops::OpOptions{}, "j");
  ASSERT_OK(job);
  ClusterConfig config;
  StatsCatalog catalog;
  CostEstimator est(config, CostModelVariant::kGumbo, &db, &catalog, 64);
  auto e = est.EstimateJob(*job);
  ASSERT_OK(e);
  EXPECT_DOUBLE_EQ(e->partitions[1].output_mb, 0.0);
}

// ---- Skew classification + calibration (DESIGN.md §10) ----------------------

TEST(CalibrationTest, ClassifyKeySkewPerGeneratorRegime) {
  data::GeneratorConfig g;
  g.tuples = 5000;
  g.representation_scale = 1.0;
  data::Generator gen(g);
  EXPECT_EQ(ClassifyKeySkew(gen.Guard("R", 1)), SkewRegime::kUniform);
  EXPECT_EQ(ClassifyKeySkew(gen.ZipfGuard("Z", 1, 1.0)),
            SkewRegime::kModerate);
  EXPECT_EQ(ClassifyKeySkew(gen.ZipfGuard("H", 1, 1.5)), SkewRegime::kHeavy);
  // Correlation skews later attributes, not the key column: with theta=0
  // the first attribute stays uniform.
  EXPECT_EQ(ClassifyKeySkew(gen.CorrelatedGuard("C", 3, 0.9, 0.0)),
            SkewRegime::kUniform);
  EXPECT_EQ(ClassifyKeySkew(Relation("E", 2)), SkewRegime::kUniform);
}

TEST(CalibrationTest, EmptyStoreIsTheIdentity) {
  CalibrationStore store;
  EXPECT_EQ(store.TotalObservations(), 0u);
  for (size_t c = 0; c < kNumChannels; ++c) {
    for (size_t r = 0; r < kNumRegimes; ++r) {
      EXPECT_DOUBLE_EQ(store.Factor(static_cast<Channel>(c),
                                    static_cast<SkewRegime>(r)),
                       1.0);
    }
  }
}

TEST(CalibrationTest, FactorIsTheClampedGeometricMean) {
  CalibrationStore store;
  store.Observe(Channel::kOutputBound, SkewRegime::kHeavy, 1.0, 4.0);
  store.Observe(Channel::kOutputBound, SkewRegime::kHeavy, 2.0, 2.0);
  // Geometric mean of {4, 1} = 2.
  EXPECT_NEAR(store.Factor(Channel::kOutputBound, SkewRegime::kHeavy), 2.0,
              1e-12);
  // Other cells untouched.
  EXPECT_DOUBLE_EQ(store.Factor(Channel::kOutputBound, SkewRegime::kUniform),
                   1.0);
  // A pathological ratio is clamped to 64 before entering the mean.
  CalibrationStore wild;
  wild.Observe(Channel::kCatalogOutput, SkewRegime::kUniform, 1.0, 1e12);
  EXPECT_DOUBLE_EQ(wild.Factor(Channel::kCatalogOutput, SkewRegime::kUniform),
                   64.0);
  // Invalid observations are ignored.
  CalibrationStore noop;
  noop.Observe(Channel::kCatalogOutput, SkewRegime::kUniform, 0.0, 5.0);
  noop.Observe(Channel::kCatalogOutput, SkewRegime::kUniform, 1.0, -1.0);
  EXPECT_EQ(noop.TotalObservations(), 0u);
}

TEST(CalibrationTest, SerializeRoundTripsEveryCell) {
  CalibrationStore store;
  store.Observe(Channel::kSampledOutput, SkewRegime::kUniform, 2.0, 1.0);
  store.Observe(Channel::kCatalogInput, SkewRegime::kModerate, 1.0, 0.25);
  store.Observe(Channel::kOutputBound, SkewRegime::kHeavy, 10.0, 0.5);
  store.Observe(Channel::kCombinerYield, SkewRegime::kHeavy, 1.0, 0.7);

  CalibrationStore loaded;
  ASSERT_OK(loaded.Deserialize(store.Serialize()));
  for (size_t c = 0; c < kNumChannels; ++c) {
    for (size_t r = 0; r < kNumRegimes; ++r) {
      const Channel ch = static_cast<Channel>(c);
      const SkewRegime rg = static_cast<SkewRegime>(r);
      EXPECT_EQ(loaded.Observations(ch, rg), store.Observations(ch, rg));
      EXPECT_DOUBLE_EQ(loaded.Factor(ch, rg), store.Factor(ch, rg));
    }
  }
  // Unknown lines are skipped; garbage headers are rejected.
  ASSERT_OK(loaded.Deserialize(
      "gumbo-calibration v1\nfuture-field 12\ncell catalog-input moderate 1 "
      "-1.0\n"));
  EXPECT_FALSE(loaded.Deserialize("not a calibration file").ok());
}

// ---- Estimator sampling accuracy per skew regime -----------------------------

TEST(EstimatorTest, SampledEstimateErrorBoundedOnSkewedInputs) {
  // The sampled channel must stay accurate whatever the key regime: a
  // 256-row stride sample's M_i estimate lands within 25% of the
  // exhaustive-sample estimate on uniform, Zipf, and hot/cold data.
  data::GeneratorConfig g;
  g.tuples = 4000;
  g.representation_scale = 1.0;
  g.selectivity = 0.3;
  data::Generator gen(g);
  struct Case {
    const char* name;
    Relation guard;
    Relation cond;
  };
  std::vector<Case> cases;
  cases.push_back({"uniform", gen.Guard("R", 2), gen.Conditional("S", 1)});
  cases.push_back(
      {"zipf", gen.ZipfGuard("R", 2, 1.2), gen.Conditional("S", 1)});
  cases.push_back(
      {"hot", gen.ZipfGuard("R", 2, 1.2), gen.HotConditional("S", 1)});
  cases.push_back(
      {"cold", gen.ZipfGuard("R", 2, 1.2), gen.ColdConditional("S", 1)});
  for (Case& c : cases) {
    Database db;
    db.Put(std::move(c.guard));
    db.Put(std::move(c.cond));
    ops::SemiJoinEquation eq;
    eq.output = "X";
    eq.guard = sgf::Atom::Vars("R", {"x", "y"});
    eq.guard_dataset = "R";
    eq.conditional = sgf::Atom::Vars("S", {"x"});
    eq.conditional_dataset = "S";
    auto job = ops::BuildMsjJob({eq}, ops::OpOptions{}, "j");
    ASSERT_OK(job);
    ClusterConfig config;
    StatsCatalog catalog;
    CostEstimator sampled(config, CostModelVariant::kGumbo, &db, &catalog,
                          256);
    CostEstimator exhaustive(config, CostModelVariant::kGumbo, &db, &catalog,
                             g.tuples);
    auto es = sampled.EstimateJob(*job);
    auto ee = exhaustive.EstimateJob(*job);
    ASSERT_OK(es);
    ASSERT_OK(ee);
    ASSERT_EQ(es->partitions.size(), ee->partitions.size());
    for (size_t p = 0; p < es->partitions.size(); ++p) {
      const double got = es->partitions[p].output_mb;
      const double want = ee->partitions[p].output_mb;
      EXPECT_NEAR(got, want, 0.25 * want + 1e-9)
          << c.name << " partition " << p;
    }
  }
}

}  // namespace
}  // namespace gumbo::cost
