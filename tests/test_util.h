// Shared helpers for the gumbo test suites.
#ifndef GUMBO_TESTS_TEST_UTIL_H_
#define GUMBO_TESTS_TEST_UTIL_H_

#include <gtest/gtest.h>

#include <initializer_list>
#include <string>
#include <vector>

#include "common/relation.h"
#include "common/result.h"
#include "sgf/parser.h"

namespace gumbo::testing {

/// Builds a relation of integer tuples.
inline Relation MakeRelation(const std::string& name, uint32_t arity,
                             std::initializer_list<std::vector<int64_t>> rows) {
  Relation rel(name, arity);
  for (const auto& row : rows) {
    Tuple t;
    for (int64_t v : row) t.PushBack(Value::Int(v));
    EXPECT_TRUE(rel.Add(std::move(t)).ok());
  }
  return rel;
}

/// Parses a BSGF query or aborts the test.
inline sgf::BsgfQuery ParseBsgfOrDie(const std::string& text) {
  Result<sgf::BsgfQuery> r = sgf::ParseBsgf(text, &Dictionary::Global());
  EXPECT_TRUE(r.ok()) << r.status() << " while parsing: " << text;
  return std::move(r).value();
}

/// Parses an SGF query or aborts the test.
inline sgf::SgfQuery ParseSgfOrDie(const std::string& text) {
  Result<sgf::SgfQuery> r = sgf::ParseSgf(text, &Dictionary::Global());
  EXPECT_TRUE(r.ok()) << r.status() << " while parsing: " << text;
  return std::move(r).value();
}

/// Sorted-tuple view of a relation, for readable assertions.
inline std::vector<std::vector<int64_t>> RowsOf(const Relation& rel) {
  Relation copy = rel;
  copy.SortAndDedupe();
  std::vector<std::vector<int64_t>> out;
  for (RowView t : copy.views()) {
    std::vector<int64_t> row;
    for (uint32_t i = 0; i < t.size(); ++i) row.push_back(t[i].AsInt());
    out.push_back(std::move(row));
  }
  return out;
}

inline ::testing::AssertionResult IsOk(const Status& s) {
  if (s.ok()) return ::testing::AssertionSuccess();
  return ::testing::AssertionFailure() << s.ToString();
}
template <typename T>
::testing::AssertionResult IsOk(const Result<T>& r) {
  return IsOk(r.status());
}

#define ASSERT_OK(expr) ASSERT_TRUE(::gumbo::testing::IsOk(expr))
#define EXPECT_OK(expr) EXPECT_TRUE(::gumbo::testing::IsOk(expr))

}  // namespace gumbo::testing

#endif  // GUMBO_TESTS_TEST_UTIL_H_
