// Tests for the morsel-driven work-stealing scheduler (DESIGN.md §9):
// no lost tasks under concurrent submit + steal, priority ordering
// under contention, anti-starvation of the low class, clean shutdown
// with queued work, helping waits / nested groups, chain stealing, and
// the env-tunable options.
#include "common/scheduler.h"

#include <gtest/gtest.h>

#include "common/config.h"

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace gumbo {
namespace {

// Spins until `pred` holds (tests only; all uses are bounded by gtest's
// per-test timeout, so a scheduler bug shows up as a hung test, which
// is the failure mode we want to surface loudly).
template <typename Pred>
void SpinUntil(Pred pred) {
  while (!pred()) std::this_thread::yield();
}

TEST(SchedulerTest, ParallelForCoversEveryIndexExactlyOnce) {
  Scheduler scheduler(4);
  constexpr size_t kN = 1000;
  std::vector<std::atomic<int>> hits(kN);
  SchedContext ctx;
  scheduler.ParallelFor(
      kN, [&](size_t i) { hits[i].fetch_add(1, std::memory_order_relaxed); },
      ctx);
  for (size_t i = 0; i < kN; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(SchedulerTest, ParallelForEdgeCases) {
  Scheduler scheduler(2);
  SchedContext ctx;
  int calls = 0;
  scheduler.ParallelFor(0, [&](size_t) { ++calls; }, ctx);
  EXPECT_EQ(calls, 0);
  // n == 1 runs inline on the calling thread.
  std::thread::id runner;
  scheduler.ParallelFor(1, [&](size_t) { runner = std::this_thread::get_id(); },
                        ctx);
  EXPECT_EQ(runner, std::this_thread::get_id());
}

// ISSUE satellite: no lost tasks under concurrent submit and steal.
// Eight submitter threads race their own groups; every closure chains a
// child (exercising worker-deque continuations, the steal targets), and
// the grand total must come out exact. Also checks the ticket ledger:
// every submitted closure is executed exactly once (morsels counter).
TEST(SchedulerTest, NoLostTasksUnderConcurrentSubmitAndSteal) {
  Scheduler scheduler(4, /*stealing=*/true);
  constexpr int kThreads = 8;
  constexpr int kParents = 200;  // each parent chains one child
  std::atomic<int> executed{0};

  std::vector<std::thread> submitters;
  submitters.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    submitters.emplace_back([&] {
      SchedContext ctx;
      ctx.scheduler = &scheduler;
      Scheduler::TaskGroup group(ctx);
      for (int i = 0; i < kParents; ++i) {
        group.Submit([&executed, &group] {
          executed.fetch_add(1, std::memory_order_relaxed);
          group.Submit(
              [&executed] { executed.fetch_add(1, std::memory_order_relaxed); });
        });
      }
      group.Wait();
    });
  }
  for (auto& t : submitters) t.join();

  constexpr int kTotal = kThreads * kParents * 2;
  EXPECT_EQ(executed.load(), kTotal);
  const SchedulerStats stats = scheduler.stats();
  EXPECT_EQ(stats.submitted, static_cast<uint64_t>(kTotal));
  // Every closure ran exactly once, whether a worker or a helping
  // waiter claimed it; tickets whose closure a waiter already drained
  // are accounted as stale, never re-run.
  EXPECT_EQ(stats.morsels, static_cast<uint64_t>(kTotal));
  EXPECT_LE(stats.stale_tickets, stats.submitted);
}

// ISSUE satellite: priority ordering under contention. A single worker
// is gated inside a closure while nine tickets pile up, submitted in
// *inverse* priority order (low first). Once the gate lifts the worker
// must drain them priority-major: all high, then all normal, then all
// low — regardless of arrival order.
TEST(SchedulerTest, PriorityOrderingUnderContention) {
  Scheduler scheduler(1);
  SchedContext gate_ctx;
  gate_ctx.scheduler = &scheduler;
  Scheduler::TaskGroup gate(gate_ctx);

  std::promise<void> release;
  std::shared_future<void> released = release.get_future().share();
  std::atomic<bool> gate_running{false};
  gate.Submit([&] {
    gate_running.store(true);
    released.wait();
  });
  SpinUntil([&] { return gate_running.load(); });

  std::mutex order_mu;
  std::vector<int> order;
  auto make_group = [&](SchedPriority prio) {
    SchedContext ctx;
    ctx.scheduler = &scheduler;
    ctx.priority = prio;
    return std::make_unique<Scheduler::TaskGroup>(ctx);
  };
  auto submit_three = [&](Scheduler::TaskGroup* group, int tag) {
    for (int i = 0; i < 3; ++i) {
      group->Submit([&order_mu, &order, tag] {
        std::lock_guard<std::mutex> lock(order_mu);
        order.push_back(tag);
      });
    }
  };
  auto low = make_group(SchedPriority::kLow);
  auto normal = make_group(SchedPriority::kNormal);
  auto high = make_group(SchedPriority::kHigh);
  submit_three(low.get(), 2);
  submit_three(normal.get(), 1);
  submit_three(high.get(), 0);

  release.set_value();
  SpinUntil([&] {
    std::lock_guard<std::mutex> lock(order_mu);
    return order.size() == 9;
  });
  // Do not Wait() before the work is done: a helping waiter would run
  // closures on this thread and scramble the order we are asserting.
  high->Wait();
  normal->Wait();
  low->Wait();
  gate.Wait();

  ASSERT_EQ(order.size(), 9u);
  const std::vector<int> expected = {0, 0, 0, 1, 1, 1, 2, 2, 2};
  EXPECT_EQ(order, expected);
  // Dispatching high while normal/low sat queued is exactly the
  // inversion the old FIFO pool would have committed.
  EXPECT_GE(scheduler.stats().inversions_avoided, 1u);
}

// ISSUE satellite: anti-starvation. Forty high-priority tickets against
// two low ones on a gated single worker: strict priority would run the
// low pair dead last, but the periodic inverted scan must grant the low
// class a slot while high work still remains.
TEST(SchedulerTest, AntiStarvationGrantsLowClassUnderHighLoad) {
  Scheduler scheduler(1);
  SchedContext gate_ctx;
  gate_ctx.scheduler = &scheduler;
  Scheduler::TaskGroup gate(gate_ctx);

  std::promise<void> release;
  std::shared_future<void> released = release.get_future().share();
  std::atomic<bool> gate_running{false};
  gate.Submit([&] {
    gate_running.store(true);
    released.wait();
  });
  SpinUntil([&] { return gate_running.load(); });

  std::mutex order_mu;
  std::vector<int> order;
  auto record = [&](int tag) {
    return [&order_mu, &order, tag] {
      std::lock_guard<std::mutex> lock(order_mu);
      order.push_back(tag);
    };
  };

  SchedContext low_ctx;
  low_ctx.scheduler = &scheduler;
  low_ctx.priority = SchedPriority::kLow;
  Scheduler::TaskGroup low(low_ctx);
  SchedContext high_ctx;
  high_ctx.scheduler = &scheduler;
  high_ctx.priority = SchedPriority::kHigh;
  Scheduler::TaskGroup high(high_ctx);

  constexpr int kHighTasks = 40;
  low.Submit(record(2));
  low.Submit(record(2));
  for (int i = 0; i < kHighTasks; ++i) high.Submit(record(0));

  release.set_value();
  SpinUntil([&] {
    std::lock_guard<std::mutex> lock(order_mu);
    return order.size() == kHighTasks + 2;
  });
  high.Wait();
  low.Wait();
  gate.Wait();

  size_t first_low = order.size();
  for (size_t i = 0; i < order.size(); ++i) {
    if (order[i] == 2) {
      first_low = i;
      break;
    }
  }
  // The inverted scan fires every 13th dispatch, so the first low task
  // must land well before the 40 high tasks are exhausted.
  EXPECT_LT(first_low, static_cast<size_t>(kHighTasks))
      << "low class starved behind the high backlog";
  EXPECT_GE(scheduler.stats().starvation_grants, 1u);
}

// ISSUE satellite: clean shutdown with queued work. Both workers are
// parked inside gate closures while 100 tickets queue up; ~Scheduler
// then runs concurrently with the release. The destructor must drain
// every queued closure (not drop them) before joining, and the group
// must remain waitable after the scheduler is gone.
TEST(SchedulerTest, ShutdownDrainsQueuedWork) {
  auto scheduler = std::make_unique<Scheduler>(2);
  SchedContext ctx;
  ctx.scheduler = scheduler.get();
  Scheduler::TaskGroup group(ctx);

  std::promise<void> release;
  std::shared_future<void> released = release.get_future().share();
  std::atomic<int> gates_running{0};
  std::atomic<int> executed{0};
  for (int i = 0; i < 2; ++i) {
    group.Submit([&] {
      gates_running.fetch_add(1);
      released.wait();
    });
  }
  SpinUntil([&] { return gates_running.load() == 2; });

  constexpr int kQueued = 100;
  for (int i = 0; i < kQueued; ++i) {
    group.Submit([&executed] { executed.fetch_add(1); });
  }

  // Lift the gates from a side thread a beat after shutdown begins, so
  // the destructor really does observe a full queue.
  std::thread releaser([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    release.set_value();
  });
  scheduler.reset();  // ~Scheduler: drain everything, then join
  releaser.join();

  EXPECT_EQ(executed.load(), kQueued);
  // The group outlives its scheduler: Wait() (and the destructor's
  // implicit Wait) must complete without touching the dead scheduler.
  group.Wait();
}

// Nested groups on a single worker only complete because Wait() helps:
// the outer closures hold the lone worker, so the inner groups' work
// must run on the waiting threads themselves.
TEST(SchedulerTest, HelpingWaitCompletesNestedGroupsOnOneWorker) {
  Scheduler scheduler(1);
  std::atomic<int> inner_done{0};
  SchedContext ctx;
  scheduler.ParallelFor(
      8,
      [&](size_t) {
        SchedContext inner_ctx;
        inner_ctx.scheduler = &scheduler;
        Scheduler::TaskGroup inner(inner_ctx);
        for (int i = 0; i < 8; ++i) {
          inner.Submit([&inner_done] { inner_done.fetch_add(1); });
        }
        inner.Wait();
      },
      ctx);
  EXPECT_EQ(inner_done.load(), 64);
}

// A chain continuation lands on the submitting worker's own deque;
// while that worker is blocked, the only way the child can run is for
// the other worker to steal it. Deadlock here = a stealing bug.
TEST(SchedulerTest, IdleWorkerStealsChainContinuation) {
  Scheduler scheduler(2, /*stealing=*/true);
  SchedContext ctx;
  ctx.scheduler = &scheduler;
  Scheduler::TaskGroup group(ctx);

  std::atomic<bool> child_done{false};
  group.Submit([&] {
    group.Submit([&child_done] { child_done.store(true); });
    // Block the submitting worker until someone else runs the child.
    SpinUntil([&] { return child_done.load(); });
  });
  SpinUntil([&] { return child_done.load(); });
  group.Wait();
  EXPECT_GE(scheduler.stats().steals, 1u);
}

TEST(SchedulerTest, DisabledStealingStillCompletesViaInjectionQueue) {
  Scheduler scheduler(4, /*stealing=*/false);
  EXPECT_FALSE(scheduler.stealing());
  std::atomic<int> executed{0};
  SchedContext ctx;
  scheduler.ParallelFor(200, [&](size_t) { executed.fetch_add(1); }, ctx);
  EXPECT_EQ(executed.load(), 200);
  EXPECT_EQ(scheduler.stats().steals, 0u);
}

// Stall accounting (the sched_wait attribution source, DESIGN.md §9):
// work queued while no closure of the group runs counts as stall time,
// flushed into ctx.metrics at Wait().
TEST(SchedulerTest, GroupMetricsReportStallTime) {
  Scheduler scheduler(1);
  SchedContext gate_ctx;
  gate_ctx.scheduler = &scheduler;
  Scheduler::TaskGroup gate(gate_ctx);
  std::promise<void> release;
  std::shared_future<void> released = release.get_future().share();
  std::atomic<bool> gate_running{false};
  gate.Submit([&] {
    gate_running.store(true);
    released.wait();
  });
  SpinUntil([&] { return gate_running.load(); });

  SchedGroupMetrics metrics;
  SchedContext ctx;
  ctx.scheduler = &scheduler;
  ctx.metrics = &metrics;
  Scheduler::TaskGroup group(ctx);
  std::atomic<int> executed{0};
  for (int i = 0; i < 4; ++i) {
    group.Submit([&executed] { executed.fetch_add(1); });
  }
  // The group is runnable but unserved while the worker sits in the
  // gate: that interval must surface as stall_us.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  release.set_value();
  group.Wait();
  gate.Wait();

  EXPECT_EQ(executed.load(), 4);
  EXPECT_EQ(metrics.morsels.load(), 4u);
  EXPECT_GE(metrics.stall_us.load(), 5000u);  // >= 5ms of the ~20ms gate
}

TEST(SchedOptionsTest, FromEnvParsesKnobs) {
  // The environment is parsed into common::RuntimeConfig exactly once
  // per process; tests inject configurations with ScopedOverride instead
  // of racing setenv against that parse.
  {
    // Defaults: no knobs engaged.
    common::RuntimeConfig::ScopedOverride ov{common::RuntimeConfig{}};
    SchedOptions defaults = SchedOptions::FromEnv();
    EXPECT_EQ(defaults.morsel_rows, 4096u);
    EXPECT_TRUE(defaults.stealing);
  }
  {
    common::RuntimeConfig cfg;
    cfg.morsel_rows = 128;
    cfg.disable_stealing = true;
    common::RuntimeConfig::ScopedOverride ov{std::move(cfg)};
    SchedOptions tuned = SchedOptions::FromEnv();
    EXPECT_EQ(tuned.morsel_rows, 128u);
    EXPECT_FALSE(tuned.stealing);
  }
  {
    // "0" and empty mean "not disabled"; garbage rows never parse. The
    // env layer leaves such knobs disengaged (RuntimeConfig::FromEnv),
    // so the struct defaults hold.
    common::RuntimeConfig cfg;
    cfg.disable_stealing = false;
    common::RuntimeConfig::ScopedOverride ov{std::move(cfg)};
    SchedOptions fallback = SchedOptions::FromEnv();
    EXPECT_EQ(fallback.morsel_rows, 4096u);
    EXPECT_TRUE(fallback.stealing);
  }
}

}  // namespace
}  // namespace gumbo
