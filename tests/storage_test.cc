// Equivalence tests for the flat arena-backed relation storage
// (DESIGN.md §7): a reference row-store — the pre-refactor vector<Tuple>
// representation, transcribed here — is driven in lockstep with the flat
// Relation over randomized inputs, and every observable (append order,
// canonical SortAndDedupe order, SetEquals verdicts, fingerprints) must
// match byte for byte. Also covers RelationBuilder adoption and the
// parallel dedupe path's thread-count independence.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/dictionary.h"
#include "common/relation.h"
#include "common/rng.h"
#include "common/scheduler.h"
#include "test_util.h"

namespace gumbo {
namespace {

using ::gumbo::testing::MakeRelation;

// The pre-refactor representation: a row of owning Tuples with
// lexicographic sort+unique canonicalization. Kept in-test as the
// equivalence oracle.
struct ReferenceRowStore {
  uint32_t arity = 0;
  std::vector<Tuple> rows;

  void Add(const Tuple& t) {
    ASSERT_EQ(t.size(), arity);
    rows.push_back(t);
  }
  void SortAndDedupe() {
    std::sort(rows.begin(), rows.end());
    rows.erase(std::unique(rows.begin(), rows.end()), rows.end());
  }
  bool SetEquals(const ReferenceRowStore& other) const {
    if (arity != other.arity) return false;
    std::vector<Tuple> a = rows;
    std::vector<Tuple> b = other.rows;
    std::sort(a.begin(), a.end());
    a.erase(std::unique(a.begin(), a.end()), a.end());
    std::sort(b.begin(), b.end());
    b.erase(std::unique(b.begin(), b.end()), b.end());
    return a == b;
  }
};

// A random tuple mixing positive/negative ints and interned strings, from
// a small domain so duplicates actually occur.
Tuple RandomTuple(Xoshiro256* rng, uint32_t arity) {
  Tuple t;
  for (uint32_t i = 0; i < arity; ++i) {
    switch (rng->Uniform(4)) {
      case 0:
        t.PushBack(Value::Int(static_cast<int64_t>(rng->Uniform(6))));
        break;
      case 1:
        t.PushBack(Value::Int(-static_cast<int64_t>(rng->Uniform(6)) - 1));
        break;
      case 2:
        t.PushBack(Dictionary::Global().Intern(
            "s" + std::to_string(rng->Uniform(5))));
        break;
      default:
        t.PushBack(Value::Int(static_cast<int64_t>(rng->Uniform(1000))));
        break;
    }
  }
  return t;
}

void ExpectSameRows(const Relation& flat, const ReferenceRowStore& ref) {
  ASSERT_EQ(flat.size(), ref.rows.size());
  for (size_t i = 0; i < flat.size(); ++i) {
    EXPECT_EQ(flat.TupleAt(i), ref.rows[i]) << "row " << i;
  }
}

// Append order, views, and fingerprints match the reference exactly,
// including heap-spilled arities beyond Tuple::kInlineCapacity.
TEST(FlatStorageTest, AppendOrderViewsAndFingerprints) {
  for (uint32_t arity : {1u, 2u, 4u, 6u}) {
    Xoshiro256 rng(1000 + arity);
    Relation flat("R", arity);
    ReferenceRowStore ref{arity, {}};
    for (int i = 0; i < 500; ++i) {
      Tuple t = RandomTuple(&rng, arity);
      ref.Add(t);
      ASSERT_OK(flat.Add(t));
    }
    ExpectSameRows(flat, ref);
    for (size_t i = 0; i < flat.size(); ++i) {
      RowView v = flat.view(i);
      EXPECT_EQ(v.fingerprint(), ref.rows[i].Hash());
      EXPECT_EQ(v.Fingerprint(), ref.rows[i].Hash());
      EXPECT_TRUE(v == TupleView(ref.rows[i]));
      EXPECT_EQ(v.ToTuple(), ref.rows[i]);
    }
  }
}

// TupleView ordering and equality agree with Tuple's operators on random
// pairs (this is what makes the flat sort byte-identical).
TEST(FlatStorageTest, ViewComparisonsMatchTuple) {
  Xoshiro256 rng(7);
  for (int i = 0; i < 2000; ++i) {
    Tuple a = RandomTuple(&rng, 1 + rng.Uniform(5));
    Tuple b = RandomTuple(&rng, 1 + rng.Uniform(5));
    EXPECT_EQ(TupleView(a) < TupleView(b), a < b);
    EXPECT_EQ(TupleView(a) == TupleView(b), a == b);
  }
}

// SortAndDedupe yields exactly the reference's sort+unique sequence —
// same rows, same canonical order — and keeps fingerprints attached to
// the right rows.
TEST(FlatStorageTest, SortAndDedupeMatchesReference) {
  for (uint32_t arity : {1u, 2u, 3u, 5u}) {
    Xoshiro256 rng(2000 + arity);
    Relation flat("R", arity);
    ReferenceRowStore ref{arity, {}};
    for (int i = 0; i < 800; ++i) {
      // Re-add an earlier row 25% of the time so every arity actually
      // exercises the dedupe (high arities rarely collide by chance).
      Tuple t = (i > 0 && rng.Bernoulli(0.25))
                    ? ref.rows[rng.Uniform(ref.rows.size())]
                    : RandomTuple(&rng, arity);
      ref.Add(t);
      flat.AddUnchecked(t);
    }
    flat.SortAndDedupe();
    ref.SortAndDedupe();
    ASSERT_LT(flat.size(), 800u);  // the small domain guarantees dups
    ExpectSameRows(flat, ref);
    for (size_t i = 0; i < flat.size(); ++i) {
      EXPECT_EQ(flat.fingerprint(i), flat.TupleAt(i).Hash());
    }
  }
}

// The parallel sort path is byte-identical to the sequential one for any
// thread count, above and below the chunking threshold.
TEST(FlatStorageTest, ParallelDedupeThreadCountIndependent) {
  for (size_t n : {100u, 40000u}) {
    Xoshiro256 rng(n);
    Relation seq("R", 2);
    for (size_t i = 0; i < n; ++i) {
      Tuple t = RandomTuple(&rng, 2);
      seq.AddUnchecked(t);
    }
    Relation par1 = seq;
    Relation par8 = seq;
    seq.SortAndDedupe(nullptr);
    Scheduler sched1(1);
    par1.SortAndDedupe(&sched1);
    Scheduler sched8(8);
    par8.SortAndDedupe(&sched8);
    EXPECT_EQ(par1.words(), seq.words());
    EXPECT_EQ(par8.words(), seq.words());
    EXPECT_EQ(par1.fingerprints(), seq.fingerprints());
    EXPECT_EQ(par8.fingerprints(), seq.fingerprints());
  }
}

// SetEquals verdicts agree with the reference on equal sets (permuted,
// duplicated), subsets, and disjoint sets.
TEST(FlatStorageTest, SetEqualsMatchesReference) {
  Xoshiro256 rng(99);
  for (int trial = 0; trial < 50; ++trial) {
    const uint32_t arity = 1 + trial % 3;
    Relation fa("A", arity), fb("B", arity);
    ReferenceRowStore ra{arity, {}}, rb{arity, {}};
    std::vector<Tuple> base;
    for (int i = 0; i < 30; ++i) base.push_back(RandomTuple(&rng, arity));
    // A: the base in order, with duplicates.
    for (const Tuple& t : base) {
      fa.AddUnchecked(t);
      ra.Add(t);
      if (rng.Bernoulli(0.3)) {
        fa.AddUnchecked(t);
        ra.Add(t);
      }
    }
    // B: shuffled base; half the trials drop or mutate a row.
    std::vector<Tuple> b = base;
    for (size_t i = b.size(); i > 1; --i) {
      std::swap(b[i - 1], b[rng.Uniform(i)]);
    }
    if (trial % 2 == 1) {
      if (rng.Bernoulli(0.5)) {
        b.pop_back();
      } else {
        b[0] = RandomTuple(&rng, arity);
      }
    }
    for (const Tuple& t : b) {
      fb.AddUnchecked(t);
      rb.Add(t);
    }
    EXPECT_EQ(fa.SetEquals(fb), ra.SetEquals(rb)) << "trial " << trial;
    EXPECT_EQ(fb.SetEquals(fa), rb.SetEquals(ra)) << "trial " << trial;
  }
}

TEST(FlatStorageTest, SetEqualsRejectsArityMismatch) {
  Relation a = MakeRelation("A", 1, {{1}});
  Relation b = MakeRelation("B", 2, {{1, 2}});
  EXPECT_FALSE(a.SetEquals(b));
}

// Builder adoption: first adopt moves arenas wholesale into an empty
// relation, later adopts append; the row sequence equals tuple-by-tuple
// reference appends and the builders come back empty.
TEST(FlatStorageTest, BuilderAdoption) {
  Xoshiro256 rng(5);
  Relation flat("Z", 3);
  ReferenceRowStore ref{3, {}};
  for (int chunk = 0; chunk < 4; ++chunk) {
    RelationBuilder b(3);
    const int rows = chunk == 2 ? 0 : 40;  // one empty builder in the mix
    for (int i = 0; i < rows; ++i) {
      Tuple t = RandomTuple(&rng, 3);
      ref.Add(t);
      b.Add(t);
    }
    ASSERT_EQ(b.size(), static_cast<size_t>(rows));
    flat.Adopt(std::move(b));
    EXPECT_TRUE(b.empty());
  }
  ExpectSameRows(flat, ref);
  for (size_t i = 0; i < flat.size(); ++i) {
    EXPECT_EQ(flat.fingerprint(i), ref.rows[i].Hash());
  }
}

// Zero-arity relations: set semantics collapse to empty vs non-empty.
TEST(FlatStorageTest, ZeroArity) {
  Relation r("N", 0);
  EXPECT_TRUE(r.empty());
  r.AddUnchecked(Tuple{});
  r.AddUnchecked(Tuple{});
  EXPECT_EQ(r.size(), 2u);
  r.SortAndDedupe();
  EXPECT_EQ(r.size(), 1u);
  Relation s("M", 0);
  EXPECT_FALSE(r.SetEquals(s));
  s.AddUnchecked(Tuple{});
  EXPECT_TRUE(r.SetEquals(s));
}

}  // namespace
}  // namespace gumbo
