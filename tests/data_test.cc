// Tests for the data generators and the paper's workload catalog.
#include <gtest/gtest.h>

#include <set>

#include "data/generator.h"
#include "data/workloads.h"
#include "sgf/analyzer.h"
#include "sgf/naive_eval.h"
#include "test_util.h"

namespace gumbo::data {
namespace {

GeneratorConfig TestConfig(double selectivity = 0.5) {
  GeneratorConfig g;
  g.tuples = 5000;
  g.representation_scale = 1.0;
  g.selectivity = selectivity;
  g.seed = 123;
  return g;
}

TEST(GeneratorTest, GuardShape) {
  Generator gen(TestConfig());
  Relation r = gen.Guard("R", 4);
  EXPECT_EQ(r.size(), 5000u);
  EXPECT_EQ(r.arity(), 4u);
  EXPECT_DOUBLE_EQ(r.bytes_per_tuple(), 40.0);
  for (RowView t : r.views()) {
    for (uint32_t i = 0; i < t.size(); ++i) {
      EXPECT_GE(t[i].AsInt(), 0);
      EXPECT_LT(t[i].AsInt(), 5000);
    }
    // Stored fingerprints match the decoded tuple's hash.
    EXPECT_EQ(t.fingerprint(), t.ToTuple().Hash());
  }
}

TEST(GeneratorTest, Deterministic) {
  Generator a(TestConfig()), b(TestConfig());
  EXPECT_EQ(a.Guard("R").words(), b.Guard("R").words());
  EXPECT_EQ(a.Conditional("S").words(), b.Conditional("S").words());
  // Different names give different data.
  EXPECT_NE(a.Guard("R").words(), a.Guard("G").words());
}

TEST(GeneratorTest, SelectivityControlsMatchFraction) {
  for (double sel : {0.1, 0.5, 0.9}) {
    GeneratorConfig cfg = TestConfig(sel);
    Generator gen(cfg);
    Relation guard = gen.Guard("R", 1);
    Relation cond = gen.Conditional("S", 1, sel);
    std::set<Value> values;
    for (RowView t : cond.views()) values.insert(t[0]);
    size_t matched = 0;
    for (RowView t : guard.views()) {
      if (values.count(t[0]) > 0) ++matched;
    }
    double rate = static_cast<double>(matched) / guard.size();
    EXPECT_NEAR(rate, sel, 0.05) << "selectivity " << sel;
  }
}

TEST(GeneratorTest, ConditionalPadsWithNonMatchingValues) {
  GeneratorConfig cfg = TestConfig(0.2);
  Generator gen(cfg);
  Relation cond = gen.Conditional("S", 1);
  EXPECT_EQ(cond.size(), cfg.tuples);
  size_t junk = 0;
  for (RowView t : cond.views()) {
    if (t[0].AsInt() >= static_cast<int64_t>(cfg.Domain())) ++junk;
  }
  EXPECT_GT(junk, 0u);  // padding present at low selectivity
}

TEST(WorkloadTest, CatalogQueriesValidateAndEvaluate) {
  GeneratorConfig cfg = TestConfig();
  cfg.tuples = 300;
  for (int i = 1; i <= 5; ++i) {
    auto w = MakeA(i, cfg);
    ASSERT_OK(w);
    ASSERT_OK(sgf::ValidateSgf(w->query));
    ASSERT_OK(sgf::NaiveEvalSgf(w->query, w->db).status()) << w->name;
  }
  for (int i = 1; i <= 2; ++i) {
    auto w = MakeB(i, cfg);
    ASSERT_OK(w);
    ASSERT_OK(sgf::NaiveEvalSgf(w->query, w->db).status()) << w->name;
  }
  for (int i = 1; i <= 4; ++i) {
    auto w = MakeC(i, cfg);
    ASSERT_OK(w);
    ASSERT_OK(sgf::NaiveEvalSgf(w->query, w->db).status()) << w->name;
  }
  EXPECT_FALSE(MakeA(9, cfg).ok());
  EXPECT_FALSE(MakeB(3, cfg).ok());
  EXPECT_FALSE(MakeC(0, cfg).ok());
}

TEST(WorkloadTest, QueryShapes) {
  GeneratorConfig cfg = TestConfig();
  cfg.tuples = 100;
  auto b1 = MakeB(1, cfg);
  ASSERT_OK(b1);
  EXPECT_EQ(b1->query.subqueries()[0].num_conditional_atoms(), 16u);
  auto b2 = MakeB(2, cfg);
  ASSERT_OK(b2);
  EXPECT_TRUE(b2->query.subqueries()[0].AllAtomsShareJoinKey());
  auto a3 = MakeA(3, cfg);
  ASSERT_OK(a3);
  EXPECT_TRUE(a3->query.subqueries()[0].AllAtomsShareJoinKey());
  auto a1 = MakeA(1, cfg);
  ASSERT_OK(a1);
  EXPECT_FALSE(a1->query.subqueries()[0].AllAtomsShareJoinKey());
}

TEST(WorkloadTest, CostModelQueryFiltersEverything) {
  GeneratorConfig cfg = TestConfig();
  cfg.tuples = 100;
  auto w = MakeCostModelQuery(cfg);
  ASSERT_OK(w);
  EXPECT_EQ(w->query.subqueries()[0].num_conditional_atoms(), 48u);
  // The constant matches no tuple: the conjunctive condition fails
  // everywhere, so the result is empty.
  auto out = sgf::NaiveEvalSgf(w->query, w->db);
  ASSERT_OK(out);
  EXPECT_EQ(out->Get("Z").value()->size(), 0u);
}

TEST(WorkloadTest, A3FamilySizes) {
  GeneratorConfig cfg = TestConfig();
  cfg.tuples = 100;
  for (int k : {2, 5, 16}) {
    auto w = MakeA3Family(k, cfg);
    ASSERT_OK(w);
    EXPECT_EQ(w->query.subqueries()[0].num_conditional_atoms(),
              static_cast<size_t>(k));
    EXPECT_TRUE(w->query.subqueries()[0].AllAtomsShareJoinKey());
  }
  EXPECT_FALSE(MakeA3Family(0, cfg).ok());
}

TEST(WorkloadTest, DependencyShapes) {
  GeneratorConfig cfg = TestConfig();
  cfg.tuples = 100;
  auto c1 = MakeC(1, cfg);
  ASSERT_OK(c1);
  auto g = c1->query.BuildDependencyGraph();
  // C1: Z1 -> Z3 -> Z5 (chained), Z2 and Z4 independent.
  EXPECT_TRUE(g.HasEdge(0, 2));
  EXPECT_TRUE(g.HasEdge(2, 4));
  EXPECT_TRUE(g.Predecessors(1).empty());
  EXPECT_TRUE(g.Predecessors(3).empty());
}

}  // namespace
}  // namespace gumbo::data
