// Tests for the data generators and the paper's workload catalog.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "data/generator.h"
#include "data/workloads.h"
#include "sgf/analyzer.h"
#include "sgf/naive_eval.h"
#include "test_util.h"

namespace gumbo::data {
namespace {

GeneratorConfig TestConfig(double selectivity = 0.5) {
  GeneratorConfig g;
  g.tuples = 5000;
  g.representation_scale = 1.0;
  g.selectivity = selectivity;
  g.seed = 123;
  return g;
}

TEST(GeneratorTest, GuardShape) {
  Generator gen(TestConfig());
  Relation r = gen.Guard("R", 4);
  EXPECT_EQ(r.size(), 5000u);
  EXPECT_EQ(r.arity(), 4u);
  EXPECT_DOUBLE_EQ(r.bytes_per_tuple(), 40.0);
  for (RowView t : r.views()) {
    for (uint32_t i = 0; i < t.size(); ++i) {
      EXPECT_GE(t[i].AsInt(), 0);
      EXPECT_LT(t[i].AsInt(), 5000);
    }
    // Stored fingerprints match the decoded tuple's hash.
    EXPECT_EQ(t.fingerprint(), t.ToTuple().Hash());
  }
}

TEST(GeneratorTest, Deterministic) {
  Generator a(TestConfig()), b(TestConfig());
  EXPECT_EQ(a.Guard("R").words(), b.Guard("R").words());
  EXPECT_EQ(a.Conditional("S").words(), b.Conditional("S").words());
  // Different names give different data.
  EXPECT_NE(a.Guard("R").words(), a.Guard("G").words());
}

TEST(GeneratorTest, SelectivityControlsMatchFraction) {
  for (double sel : {0.1, 0.5, 0.9}) {
    GeneratorConfig cfg = TestConfig(sel);
    Generator gen(cfg);
    Relation guard = gen.Guard("R", 1);
    Relation cond = gen.Conditional("S", 1, sel);
    std::set<Value> values;
    for (RowView t : cond.views()) values.insert(t[0]);
    size_t matched = 0;
    for (RowView t : guard.views()) {
      if (values.count(t[0]) > 0) ++matched;
    }
    double rate = static_cast<double>(matched) / guard.size();
    EXPECT_NEAR(rate, sel, 0.05) << "selectivity " << sel;
  }
}

TEST(GeneratorTest, ConditionalPadsWithNonMatchingValues) {
  GeneratorConfig cfg = TestConfig(0.2);
  Generator gen(cfg);
  Relation cond = gen.Conditional("S", 1);
  EXPECT_EQ(cond.size(), cfg.tuples);
  size_t junk = 0;
  for (RowView t : cond.views()) {
    if (t[0].AsInt() >= static_cast<int64_t>(cfg.Domain())) ++junk;
  }
  EXPECT_GT(junk, 0u);  // padding present at low selectivity
}

// ---- Skew-aware generators (DESIGN.md §10) ----------------------------------

TEST(ZipfDistributionTest, MassSumsToOneAndDecays) {
  ZipfDistribution z(1000, 1.0);
  double sum = 0.0;
  for (uint64_t r = 0; r < z.n(); ++r) {
    sum += z.Mass(r);
    if (r > 0) EXPECT_LE(z.Mass(r), z.Mass(r - 1));
  }
  EXPECT_NEAR(sum, 1.0, 1e-9);
  // theta = 0 degenerates to uniform.
  ZipfDistribution u(1000, 0.0);
  EXPECT_NEAR(u.Mass(0), u.Mass(999), 1e-12);
}

TEST(GeneratorTest, SkewGeneratorsAreDeterministicAndSalted) {
  Generator a(TestConfig()), b(TestConfig());
  EXPECT_EQ(a.ZipfGuard("R").words(), b.ZipfGuard("R").words());
  EXPECT_EQ(a.CorrelatedGuard("R").words(), b.CorrelatedGuard("R").words());
  EXPECT_EQ(a.HotConditional("S").words(), b.HotConditional("S").words());
  EXPECT_EQ(a.ColdConditional("S").words(), b.ColdConditional("S").words());
  // Different names / different seeds give different data.
  EXPECT_NE(a.ZipfGuard("R").words(), a.ZipfGuard("G").words());
  GeneratorConfig other = TestConfig();
  other.seed = 321;
  Generator c(other);
  EXPECT_NE(a.ZipfGuard("R").words(), c.ZipfGuard("R").words());
  // The skewed generators are new streams: they do not perturb (or
  // mirror) the uniform ones.
  EXPECT_NE(a.ZipfGuard("R", 4, 0.0).words(), a.Guard("R", 4).words());
}

TEST(GeneratorTest, ZipfFrequenciesFitTheRankLaw) {
  GeneratorConfig cfg = TestConfig();
  cfg.tuples = 50000;
  Generator gen(cfg);
  const double theta = 1.0;
  Relation r = gen.ZipfGuard("R", 1, theta);
  std::map<int64_t, size_t> freq;
  for (RowView t : r.views()) ++freq[t[0].AsInt()];
  ZipfDistribution z(cfg.Domain(), theta);
  // Top ranks carry enough mass for a tight relative check; value k is
  // rank k by construction.
  for (int64_t rank = 0; rank < 5; ++rank) {
    const double expected = z.Mass(static_cast<uint64_t>(rank));
    const double observed =
        static_cast<double>(freq[rank]) / static_cast<double>(cfg.tuples);
    EXPECT_NEAR(observed, expected, 0.25 * expected)
        << "rank " << rank;
  }
  // Empirical frequency-rank ordering holds on the head.
  EXPECT_GT(freq[0], freq[10]);
  EXPECT_GT(freq[10], freq[1000]);
}

TEST(GeneratorTest, CorrelatedGuardRepeatsKeysAtTheRequestedRate) {
  GeneratorConfig cfg = TestConfig();
  cfg.tuples = 20000;
  Generator gen(cfg);
  for (double corr : {0.0, 0.7, 1.0}) {
    Relation r = gen.CorrelatedGuard("R", 2, corr, 0.0);
    size_t repeats = 0;
    for (RowView t : r.views()) {
      if (t[0] == t[1]) ++repeats;
    }
    const double rate =
        static_cast<double>(repeats) / static_cast<double>(r.size());
    // Chance collisions add ~1/domain, negligible at 20000.
    EXPECT_NEAR(rate, corr, 0.02) << "correlation " << corr;
  }
}

TEST(GeneratorTest, HotAndColdConditionalsPickRankSlices) {
  GeneratorConfig cfg = TestConfig(0.2);
  Generator gen(cfg);
  const int64_t domain = static_cast<int64_t>(cfg.Domain());
  const int64_t cut = static_cast<int64_t>(0.2 * static_cast<double>(domain));
  Relation hot = gen.HotConditional("S", 1);
  Relation cold = gen.ColdConditional("T", 1);
  for (RowView t : hot.views()) {
    if (t[0].AsInt() < domain) EXPECT_LT(t[0].AsInt(), cut);
  }
  for (RowView t : cold.views()) {
    if (t[0].AsInt() < domain) EXPECT_GE(t[0].AsInt(), domain - cut);
  }
  // Against a Zipf guard the hot slice matches far MORE than the nominal
  // selectivity and the cold slice far LESS — the regimes the calibrated
  // cost model must discriminate.
  Relation guard = gen.ZipfGuard("G", 1, 1.0);
  auto match_rate = [&](const Relation& cond) {
    std::set<Value> values;
    for (RowView t : cond.views()) values.insert(t[0]);
    size_t matched = 0;
    for (RowView t : guard.views()) {
      if (values.count(t[0]) > 0) ++matched;
    }
    return static_cast<double>(matched) / static_cast<double>(guard.size());
  };
  EXPECT_GE(match_rate(hot), 2 * 0.2);
  EXPECT_LE(match_rate(cold), 0.2 / 2);
}

TEST(GeneratorTest, SkewGeneratorFingerprintInvariants) {
  GeneratorConfig cfg = TestConfig();
  cfg.tuples = 500;
  Generator gen(cfg);
  for (const Relation& r :
       {gen.ZipfGuard("R", 3, 1.1), gen.CorrelatedGuard("C", 3, 0.5, 0.5),
        gen.HotConditional("S", 2), gen.ColdConditional("T", 2)}) {
    ASSERT_EQ(r.fingerprints().size(), r.size());
    for (RowView t : r.views()) {
      EXPECT_EQ(t.fingerprint(), t.ToTuple().Hash()) << r.name();
    }
  }
}

TEST(WorkloadTest, CatalogQueriesValidateAndEvaluate) {
  GeneratorConfig cfg = TestConfig();
  cfg.tuples = 300;
  for (int i = 1; i <= 5; ++i) {
    auto w = MakeA(i, cfg);
    ASSERT_OK(w);
    ASSERT_OK(sgf::ValidateSgf(w->query));
    ASSERT_OK(sgf::NaiveEvalSgf(w->query, w->db).status()) << w->name;
  }
  for (int i = 1; i <= 2; ++i) {
    auto w = MakeB(i, cfg);
    ASSERT_OK(w);
    ASSERT_OK(sgf::NaiveEvalSgf(w->query, w->db).status()) << w->name;
  }
  for (int i = 1; i <= 4; ++i) {
    auto w = MakeC(i, cfg);
    ASSERT_OK(w);
    ASSERT_OK(sgf::NaiveEvalSgf(w->query, w->db).status()) << w->name;
  }
  EXPECT_FALSE(MakeA(9, cfg).ok());
  EXPECT_FALSE(MakeB(3, cfg).ok());
  EXPECT_FALSE(MakeC(0, cfg).ok());
}

TEST(WorkloadTest, QueryShapes) {
  GeneratorConfig cfg = TestConfig();
  cfg.tuples = 100;
  auto b1 = MakeB(1, cfg);
  ASSERT_OK(b1);
  EXPECT_EQ(b1->query.subqueries()[0].num_conditional_atoms(), 16u);
  auto b2 = MakeB(2, cfg);
  ASSERT_OK(b2);
  EXPECT_TRUE(b2->query.subqueries()[0].AllAtomsShareJoinKey());
  auto a3 = MakeA(3, cfg);
  ASSERT_OK(a3);
  EXPECT_TRUE(a3->query.subqueries()[0].AllAtomsShareJoinKey());
  auto a1 = MakeA(1, cfg);
  ASSERT_OK(a1);
  EXPECT_FALSE(a1->query.subqueries()[0].AllAtomsShareJoinKey());
}

TEST(WorkloadTest, CostModelQueryFiltersEverything) {
  GeneratorConfig cfg = TestConfig();
  cfg.tuples = 100;
  auto w = MakeCostModelQuery(cfg);
  ASSERT_OK(w);
  EXPECT_EQ(w->query.subqueries()[0].num_conditional_atoms(), 48u);
  // The constant matches no tuple: the conjunctive condition fails
  // everywhere, so the result is empty.
  auto out = sgf::NaiveEvalSgf(w->query, w->db);
  ASSERT_OK(out);
  EXPECT_EQ(out->Get("Z").value()->size(), 0u);
}

TEST(WorkloadTest, A3FamilySizes) {
  GeneratorConfig cfg = TestConfig();
  cfg.tuples = 100;
  for (int k : {2, 5, 16}) {
    auto w = MakeA3Family(k, cfg);
    ASSERT_OK(w);
    EXPECT_EQ(w->query.subqueries()[0].num_conditional_atoms(),
              static_cast<size_t>(k));
    EXPECT_TRUE(w->query.subqueries()[0].AllAtomsShareJoinKey());
  }
  EXPECT_FALSE(MakeA3Family(0, cfg).ok());
}

TEST(WorkloadTest, DependencyShapes) {
  GeneratorConfig cfg = TestConfig();
  cfg.tuples = 100;
  auto c1 = MakeC(1, cfg);
  ASSERT_OK(c1);
  auto g = c1->query.BuildDependencyGraph();
  // C1: Z1 -> Z3 -> Z5 (chained), Z2 and Z4 independent.
  EXPECT_TRUE(g.HasEdge(0, 2));
  EXPECT_TRUE(g.HasEdge(2, 4));
  EXPECT_TRUE(g.Predecessors(1).empty());
  EXPECT_TRUE(g.Predecessors(3).empty());
}

}  // namespace
}  // namespace gumbo::data
