// Property-based tests of module invariants, using parameterized sweeps:
//
//  * DNF conversion is truth-table equivalent to the original condition;
//  * parser round-trips: ToString(parse(q)) reparses to the same structure;
//  * the scheduler respects fundamental bounds (net <= total, critical
//    path lower bound, slot monotonicity);
//  * the cost model is monotone in its size arguments;
//  * multiway-toposort enumeration on random DAGs yields only valid sorts
//    and always contains the all-singletons sort;
//  * Greedy-BSGF grouping cost never beats the brute-force optimum;
//  * shuffle-volume optimizations (DESIGN.md §5): over random BSGF
//    queries, results are byte-identical with combiners/Bloom filters on
//    vs. off, and the optimized run never shuffles more records.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "common/rng.h"
#include "cost/model.h"
#include "data/generator.h"
#include "mr/program.h"
#include "mr/runtime.h"
#include "plan/executor.h"
#include "plan/planner.h"
#include "plan/toposort.h"
#include "sgf/condition.h"
#include "sgf/parser.h"
#include "test_util.h"

namespace gumbo {
namespace {

// ---- Condition / DNF ---------------------------------------------------------

sgf::ConditionPtr RandomCondition(size_t atoms, Xoshiro256* rng, int depth) {
  if (depth <= 0 || rng->Bernoulli(0.35)) {
    auto leaf = sgf::Condition::MakeAtom(rng->Uniform(atoms));
    return rng->Bernoulli(0.3) ? sgf::Condition::MakeNot(std::move(leaf))
                               : std::move(leaf);
  }
  auto lhs = RandomCondition(atoms, rng, depth - 1);
  auto rhs = RandomCondition(atoms, rng, depth - 1);
  auto node = rng->Bernoulli(0.5)
                  ? sgf::Condition::MakeAnd(std::move(lhs), std::move(rhs))
                  : sgf::Condition::MakeOr(std::move(lhs), std::move(rhs));
  return rng->Bernoulli(0.2) ? sgf::Condition::MakeNot(std::move(node))
                             : std::move(node);
}

bool EvalDnf(const std::vector<std::vector<int>>& clauses, uint32_t truth) {
  for (const auto& clause : clauses) {
    bool all = true;
    for (int lit : clause) {
      size_t atom = static_cast<size_t>(std::abs(lit)) - 1;
      bool v = (truth >> atom) & 1;
      if ((lit > 0) != v) {
        all = false;
        break;
      }
    }
    if (all) return true;
  }
  return false;
}

class DnfPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DnfPropertyTest, DnfIsTruthTableEquivalent) {
  Xoshiro256 rng(GetParam());
  const size_t atoms = 1 + rng.Uniform(5);
  auto cond = RandomCondition(atoms, &rng, 4);
  std::vector<std::vector<int>> clauses;
  auto st = cond->ToDnf(&clauses, 1 << 14);
  ASSERT_OK(st);
  for (uint32_t truth = 0; truth < (1u << atoms); ++truth) {
    bool direct =
        cond->Evaluate([&](size_t i) { return ((truth >> i) & 1) != 0; });
    // An empty-clause DNF can only arise from an empty condition, which
    // RandomCondition never produces; clauses.empty() means "false".
    bool via_dnf = EvalDnf(clauses, truth);
    ASSERT_EQ(direct, via_dnf)
        << "seed " << GetParam() << " truth " << truth << " condition "
        << cond->ToString([](size_t i) { return "a" + std::to_string(i); });
  }
}

TEST_P(DnfPropertyTest, CloneIsEquivalent) {
  Xoshiro256 rng(GetParam() ^ 0xc10c);
  const size_t atoms = 1 + rng.Uniform(5);
  auto cond = RandomCondition(atoms, &rng, 4);
  auto clone = cond->Clone();
  for (uint32_t truth = 0; truth < (1u << atoms); ++truth) {
    auto f = [&](size_t i) { return ((truth >> i) & 1) != 0; };
    ASSERT_EQ(cond->Evaluate(f), clone->Evaluate(f));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DnfPropertyTest,
                         ::testing::Range<uint64_t>(0, 40));

// ---- Parser round-trip ---------------------------------------------------------

class ParserRoundTripTest : public ::testing::TestWithParam<const char*> {};

TEST_P(ParserRoundTripTest, ToStringReparses) {
  Dictionary* dict = &Dictionary::Global();
  auto q1 = sgf::ParseSgf(GetParam(), dict);
  ASSERT_OK(q1);
  std::string printed = q1->ToString(dict);
  auto q2 = sgf::ParseSgf(printed, dict);
  ASSERT_OK(q2) << "reprint failed to parse:\n" << printed;
  EXPECT_EQ(printed, q2->ToString(dict));
  ASSERT_EQ(q1->size(), q2->size());
  for (size_t i = 0; i < q1->size(); ++i) {
    const auto& a = q1->subqueries()[i];
    const auto& b = q2->subqueries()[i];
    EXPECT_EQ(a.output(), b.output());
    EXPECT_EQ(a.select_vars(), b.select_vars());
    EXPECT_EQ(a.guard(), b.guard());
    EXPECT_EQ(a.conditional_atoms().size(), b.conditional_atoms().size());
  }
}

INSTANTIATE_TEST_SUITE_P(
    Queries, ParserRoundTripTest,
    ::testing::Values(
        "Z := SELECT x FROM R(x);",
        "Z := SELECT (x, y) FROM R(x, y) WHERE S(x, y) OR S(y, x);",
        "Z := SELECT (x, y) FROM R(x, y, 4) "
        "WHERE (S(1, x) AND NOT S(y, 10)) OR (NOT S(1, x) AND S(y, 10));",
        "Z := SELECT x FROM R(x, -5) WHERE NOT S(x, \"weird string\");",
        "Z1 := SELECT x FROM R(x, y) WHERE S(x);\n"
        "Z2 := SELECT x FROM Z1(x) WHERE NOT T(x, q);",
        "Z := SELECT w FROM R(w, w, w);",
        "Z := SELECT x FROM R(x) WHERE A(x) AND B(x) AND C(x) AND D(x) AND "
        "E(x) OR NOT (F(x) OR G(x));"));

// ---- Scheduler properties -------------------------------------------------------

mr::JobStats RandomJob(Xoshiro256* rng) {
  mr::JobStats js;
  size_t maps = 1 + rng->Uniform(12);
  size_t reds = 1 + rng->Uniform(5);
  for (size_t i = 0; i < maps; ++i) {
    js.map_task_costs.push_back(0.5 + rng->UniformDouble() * 20.0);
  }
  for (size_t i = 0; i < reds; ++i) {
    js.reduce_task_costs.push_back(0.5 + rng->UniformDouble() * 10.0);
  }
  js.job_overhead = rng->UniformDouble() * 5.0;
  return js;
}

class SchedulerPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SchedulerPropertyTest, BoundsAndSlotMonotonicity) {
  Xoshiro256 rng(GetParam());
  size_t n = 1 + rng.Uniform(6);
  std::vector<mr::JobStats> jobs;
  std::vector<std::vector<size_t>> deps(n);
  double total = 0.0;
  for (size_t i = 0; i < n; ++i) {
    jobs.push_back(RandomJob(&rng));
    total += jobs.back().TotalCost();
    for (size_t p = 0; p < i; ++p) {
      if (rng.Bernoulli(0.3)) deps[i].push_back(p);
    }
  }
  cost::ClusterConfig small;
  small.nodes = 1;
  small.map_slots_per_node = 1 + static_cast<int>(rng.Uniform(3));
  small.reduce_slots_per_node = 1 + static_cast<int>(rng.Uniform(3));
  small.costs.job_overhead = 1.0;
  double net_small = mr::SimulateNetTime(jobs, deps, small);

  cost::ClusterConfig big = small;
  big.nodes = 100;
  double net_big = mr::SimulateNetTime(jobs, deps, big);

  // With per-job overhead counted once in total and once per job in net,
  // net on one node with one slot of each kind equals total only when
  // overheads match; use the universal bounds instead:
  EXPECT_LE(net_big, net_small + 1e-9) << "more slots should not hurt";
  EXPECT_GT(net_small, 0.0);
  // Net time on the huge cluster is at least the critical path of any
  // single job: max over jobs of (overhead + longest map + longest red).
  double lower = 0.0;
  for (const auto& j : jobs) {
    double m = *std::max_element(j.map_task_costs.begin(),
                                 j.map_task_costs.end());
    double r = *std::max_element(j.reduce_task_costs.begin(),
                                 j.reduce_task_costs.end());
    lower = std::max(lower, 1.0 + m + r);
  }
  EXPECT_GE(net_big + 1e-9, lower);
  // And no schedule beats the sum of all work divided by slot count.
  EXPECT_GE(net_small + 1e-9,
            total /
                std::max(small.TotalMapSlots() + small.TotalReduceSlots(), 1));
}

TEST_P(SchedulerPropertyTest, SerialChainIsSumOfJobs) {
  Xoshiro256 rng(GetParam() ^ 0x5e71a1);
  size_t n = 2 + rng.Uniform(4);
  std::vector<mr::JobStats> jobs;
  std::vector<std::vector<size_t>> deps(n);
  cost::ClusterConfig c;  // 100 slots: no contention inside a job
  c.costs.job_overhead = 2.0;
  double expected = 0.0;
  for (size_t i = 0; i < n; ++i) {
    jobs.push_back(RandomJob(&rng));
    if (i > 0) deps[i] = {i - 1};
    double m = *std::max_element(jobs[i].map_task_costs.begin(),
                                 jobs[i].map_task_costs.end());
    double r = *std::max_element(jobs[i].reduce_task_costs.begin(),
                                 jobs[i].reduce_task_costs.end());
    expected += 2.0 + m + r;
  }
  EXPECT_NEAR(mr::SimulateNetTime(jobs, deps, c), expected, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SchedulerPropertyTest,
                         ::testing::Range<uint64_t>(0, 30));

// ---- Cost model monotonicity -----------------------------------------------------

class CostMonotonicityTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CostMonotonicityTest, CostGrowsWithSizes) {
  Xoshiro256 rng(GetParam());
  cost::CostConstants c;
  cost::MapPartition p;
  p.input_mb = rng.UniformDouble() * 1000.0;
  p.output_mb = rng.UniformDouble() * 5000.0;
  p.metadata_mb = rng.UniformDouble() * 100.0;
  p.num_mappers = 1 + static_cast<int>(rng.Uniform(30));

  cost::MapPartition bigger_in = p;
  bigger_in.input_mb += 100.0;
  EXPECT_GE(MapCost(c, bigger_in), MapCost(c, p));

  cost::MapPartition bigger_out = p;
  bigger_out.output_mb += 100.0;
  EXPECT_GE(MapCost(c, bigger_out), MapCost(c, p));

  // More mappers for the same data never increases the per-partition
  // map cost (fewer merge passes per task).
  cost::MapPartition more_mappers = p;
  more_mappers.num_mappers = p.num_mappers * 2;
  EXPECT_LE(MapCost(c, more_mappers), MapCost(c, p) + 1e-9);

  double m = rng.UniformDouble() * 4000.0;
  double k = rng.UniformDouble() * 500.0;
  int r = 1 + static_cast<int>(rng.Uniform(20));
  EXPECT_GE(ReduceCost(c, m + 50.0, k, r), ReduceCost(c, m, k, r));
  EXPECT_GE(ReduceCost(c, m, k + 50.0, r), ReduceCost(c, m, k, r));
  EXPECT_LE(ReduceCost(c, m, k, r * 2), ReduceCost(c, m, k, r) + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CostMonotonicityTest,
                         ::testing::Range<uint64_t>(0, 50));

// ---- Multiway toposort on random DAGs ---------------------------------------------

class ToposortPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ToposortPropertyTest, EnumerationValidAndContainsSingletons) {
  Xoshiro256 rng(GetParam());
  size_t n = 1 + rng.Uniform(5);
  sgf::DependencyGraph g(n);
  for (size_t j = 1; j < n; ++j) {
    for (size_t i = 0; i < j; ++i) {
      if (rng.Bernoulli(0.35)) g.AddEdge(i, j);
    }
  }
  auto sorts = plan::EnumerateMultiwayTopoSorts(g);
  ASSERT_OK(sorts);
  ASSERT_FALSE(sorts->empty());
  for (const auto& b : *sorts) {
    ASSERT_TRUE(plan::IsValidMultiwaySort(g, b));
  }
  // The all-singletons sort in index order is always valid here (edges
  // point forward), so it must be enumerated.
  plan::Batches singletons;
  for (size_t i = 0; i < n; ++i) singletons.push_back({i});
  EXPECT_NE(std::find(sorts->begin(), sorts->end(), singletons),
            sorts->end());
  // No duplicates.
  std::set<plan::Batches> dedup(sorts->begin(), sorts->end());
  EXPECT_EQ(dedup.size(), sorts->size());
}

TEST_P(ToposortPropertyTest, RejectsInvalidSorts) {
  Xoshiro256 rng(GetParam() ^ 0xbad);
  sgf::DependencyGraph g(3);
  g.AddEdge(0, 1);
  g.AddEdge(1, 2);
  EXPECT_FALSE(plan::IsValidMultiwaySort(g, {{0, 1}, {2}}));  // edge inside
  EXPECT_FALSE(plan::IsValidMultiwaySort(g, {{1}, {0}, {2}}));  // reversed
  EXPECT_FALSE(plan::IsValidMultiwaySort(g, {{0}, {2}}));       // missing 1
  EXPECT_TRUE(plan::IsValidMultiwaySort(g, {{0}, {1}, {2}}));
}

INSTANTIATE_TEST_SUITE_P(Seeds, ToposortPropertyTest,
                         ::testing::Range<uint64_t>(0, 30));

// ---- Shuffle-volume optimizations on random BSGF queries (DESIGN.md §5) ----

// Renders a random BSGF query over guard G(x, y, z) and conditional
// relations S/T/U/V of arity 2. Atom terms mix guard variables,
// existentials, and small constants; the WHERE condition is a random
// AND/OR/NOT tree over the atoms.
std::string RandomBsgfQueryText(Xoshiro256* rng) {
  const char* kGuardVars[3] = {"x", "y", "z"};
  const char* kRels[4] = {"S", "T", "U", "V"};
  const size_t natoms = 1 + rng->Uniform(4);
  std::vector<std::string> leaves;
  for (size_t i = 0; i < natoms; ++i) {
    std::string t1 = kGuardVars[rng->Uniform(3)];
    std::string t2;
    switch (rng->Uniform(3)) {
      case 0:
        t2 = kGuardVars[rng->Uniform(3)];
        break;
      case 1:
        t2 = "e" + std::to_string(i);
        break;
      default:
        t2 = std::to_string(rng->Uniform(50));
        break;
    }
    std::string atom =
        std::string(kRels[rng->Uniform(4)]) + "(" + t1 + ", " + t2 + ")";
    leaves.push_back(rng->Bernoulli(0.3) ? "NOT " + atom : atom);
  }
  while (leaves.size() > 1) {
    size_t i = rng->Uniform(leaves.size() - 1);
    leaves[i] = "(" + leaves[i] +
                (rng->Bernoulli(0.5) ? " AND " : " OR ") + leaves[i + 1] +
                ")";
    leaves.erase(leaves.begin() + static_cast<long>(i) + 1);
  }
  // Random non-empty SELECT subset of the guard variables.
  std::vector<std::string> select;
  for (const char* v : kGuardVars) {
    if (rng->Bernoulli(0.5)) select.push_back(v);
  }
  if (select.empty()) select.push_back(kGuardVars[rng->Uniform(3)]);
  std::string sel;
  if (select.size() == 1) {
    sel = select[0];
  } else {
    sel = "(";
    for (size_t i = 0; i < select.size(); ++i) {
      if (i > 0) sel += ", ";
      sel += select[i];
    }
    sel += ")";
  }
  return "Z := SELECT " + sel + " FROM G(x, y, z) WHERE " + leaves[0] + ";";
}

struct OptRun {
  std::vector<Tuple> output;  // tuple order, not just set
  plan::Metrics metrics;
};

class OptimizationEquivalenceTest : public ::testing::TestWithParam<uint64_t> {
};

TEST_P(OptimizationEquivalenceTest, ByteIdenticalResultsAndNoExtraShuffle) {
  Xoshiro256 rng(GetParam() ^ 0x5b10f17e5ULL);
  Dictionary* dict = &Dictionary::Global();
  const std::string text = RandomBsgfQueryText(&rng);
  auto query = sgf::ParseSgf(text, dict);
  ASSERT_OK(query) << text;

  data::GeneratorConfig g;
  g.tuples = 300;
  g.representation_scale = 1.0;
  g.seed = GetParam() * 131 + 7;
  g.selectivity = 0.4;
  data::Generator gen(g);
  Database db;
  db.Put(gen.Guard("G", 3));
  for (const char* rel : {"S", "T", "U", "V"}) {
    db.Put(gen.Conditional(rel, 2));
  }

  cost::ClusterConfig config;
  config.split_mb = 0.002;
  config.mb_per_reducer = 0.002;

  // GREEDY exercises MSJ + EVAL; SEQ exercises semi-/anti-join chains
  // (anti-joins must keep their requests: only asserts are filtered).
  for (plan::Strategy strategy :
       {plan::Strategy::kGreedy, plan::Strategy::kSeq}) {
    auto run = [&](bool optimized) -> OptRun {
      plan::PlannerOptions opts;
      opts.strategy = strategy;
      opts.sample_size = 32;
      opts.op.combiners = optimized;
      opts.op.bloom_filters = optimized;
      plan::Planner planner(config, opts);
      mr::Engine engine(config);
      mr::Runtime runtime(&engine);
      Database run_db = db;
      // ExecuteAndVerify additionally checks against the naive reference
      // evaluator, so each configuration is independently correct.
      auto result = plan::ExecuteAndVerify(*query, planner, runtime, &run_db);
      EXPECT_TRUE(result.ok())
          << text << "\noptimized=" << optimized << ": " << result.status();
      OptRun out;
      if (result.ok()) {
        out.metrics = result->metrics;
        out.output = run_db.Get("Z").value()->ToTuples();
      }
      return out;
    };
    OptRun on = run(true);
    OptRun off = run(false);
    // Byte-identical output: same tuples in the same order.
    EXPECT_EQ(on.output, off.output) << text;
    // The optimized run never shuffles more.
    EXPECT_LE(on.metrics.shuffle_records, off.metrics.shuffle_records) << text;
    EXPECT_LE(on.metrics.shuffle_messages, off.metrics.shuffle_messages)
        << text;
    EXPECT_LE(on.metrics.shuffle_mb, off.metrics.shuffle_mb + 1e-9) << text;
    // Nothing is dropped or combined when the knobs are off.
    EXPECT_EQ(off.metrics.combined_messages, 0u);
    EXPECT_EQ(off.metrics.filtered_messages, 0u);
    EXPECT_EQ(off.metrics.filter_broadcast_mb, 0.0);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, OptimizationEquivalenceTest,
                         ::testing::Range<uint64_t>(0, 16));

}  // namespace
}  // namespace gumbo
