// Tests for the planning layer: grouping (Greedy-BSGF vs optimal),
// multiway topological sorts (Greedy-SGF vs enumeration; paper Example 5),
// the strategy planner, and the Pig/Hive baselines — all verified against
// the naive reference evaluator.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "baselines/baselines.h"
#include "data/generator.h"
#include "data/workloads.h"
#include "plan/executor.h"
#include "plan/grouping.h"
#include "plan/planner.h"
#include "plan/toposort.h"
#include "sgf/naive_eval.h"
#include "test_util.h"

namespace gumbo::plan {
namespace {

using ::gumbo::testing::MakeRelation;
using ::gumbo::testing::ParseSgfOrDie;

cost::ClusterConfig TestCluster() {
  cost::ClusterConfig c;
  c.split_mb = 0.0005;
  c.mb_per_reducer = 0.0005;
  return c;
}

data::GeneratorConfig SmallData() {
  data::GeneratorConfig g;
  g.tuples = 400;
  g.representation_scale = 1.0;
  g.seed = 7;
  return g;
}

// ---- Grouping ---------------------------------------------------------------

// Builds equations from the first subquery of a workload.
std::vector<ops::SemiJoinEquation> EquationsOf(const data::Workload& w) {
  std::vector<ops::SemiJoinEquation> eqs;
  const sgf::BsgfQuery& q = w.query.subqueries()[0];
  for (size_t i = 0; i < q.num_conditional_atoms(); ++i) {
    ops::SemiJoinEquation eq;
    eq.output = "__X" + std::to_string(i);
    eq.guard = q.guard();
    eq.guard_dataset = q.guard().relation();
    eq.conditional = q.conditional_atoms()[i];
    eq.conditional_dataset = q.conditional_atoms()[i].relation();
    eqs.push_back(std::move(eq));
  }
  return eqs;
}

bool IsPartition(const Grouping& g, size_t n) {
  std::set<size_t> seen;
  for (const auto& grp : g.groups) {
    for (size_t i : grp) {
      if (i >= n || !seen.insert(i).second) return false;
    }
  }
  return seen.size() == n;
}

TEST(GroupingTest, GreedyProducesValidPartitionAndBeatsOrMatchesSingletons) {
  auto w = data::MakeA(1, SmallData());
  ASSERT_OK(w);
  auto eqs = EquationsOf(*w);
  cost::StatsCatalog catalog;
  cost::ClusterConfig config = TestCluster();
  cost::CostEstimator est(config, cost::CostModelVariant::kGumbo, &w->db,
                          &catalog, 128);
  auto greedy = GreedyBsgfGrouping(eqs, ops::OpOptions{}, est);
  ASSERT_OK(greedy);
  EXPECT_TRUE(IsPartition(*greedy, eqs.size())) << greedy->ToString();

  // Singleton cost as reference: greedy must never be worse.
  double singleton_cost = 0.0;
  for (size_t i = 0; i < eqs.size(); ++i) {
    auto c = EstimateGroupCost(eqs, {i}, ops::OpOptions{}, est);
    ASSERT_OK(c);
    singleton_cost += *c;
  }
  EXPECT_LE(greedy->total_cost, singleton_cost + 1e-9);
}

TEST(GroupingTest, SharedGuardMakesGroupingProfitable) {
  // A1: four semi-joins over one guard — grouping shares the 4 GB guard
  // scan, so greedy should merge everything into one job.
  auto w = data::MakeA(1, SmallData());
  ASSERT_OK(w);
  auto eqs = EquationsOf(*w);
  cost::StatsCatalog catalog;
  cost::ClusterConfig config;  // paper-scale constants
  cost::CostEstimator est(config, cost::CostModelVariant::kGumbo, &w->db,
                          &catalog, 128);
  auto greedy = GreedyBsgfGrouping(eqs, ops::OpOptions{}, est);
  ASSERT_OK(greedy);
  EXPECT_EQ(greedy->groups.size(), 1u) << greedy->ToString();
}

TEST(GroupingTest, GreedyNeverBeatsOptimal) {
  for (int qi : {1, 2, 3}) {
    auto w = data::MakeA(qi, SmallData());
    ASSERT_OK(w);
    auto eqs = EquationsOf(*w);
    cost::StatsCatalog catalog;
    cost::ClusterConfig config = TestCluster();
    cost::CostEstimator est(config, cost::CostModelVariant::kGumbo, &w->db,
                            &catalog, 128);
    auto greedy = GreedyBsgfGrouping(eqs, ops::OpOptions{}, est);
    auto opt = OptimalGrouping(eqs, ops::OpOptions{}, est);
    ASSERT_OK(greedy);
    ASSERT_OK(opt);
    EXPECT_TRUE(IsPartition(*opt, eqs.size()));
    EXPECT_GE(greedy->total_cost, opt->total_cost - 1e-9)
        << "A" << qi << ": optimal worse than greedy?!";
  }
}

TEST(GroupingTest, OptimalRefusesLargeInputs) {
  auto w = data::MakeB(1, SmallData());  // 16 equations
  ASSERT_OK(w);
  auto eqs = EquationsOf(*w);
  cost::StatsCatalog catalog;
  cost::ClusterConfig config = TestCluster();
  cost::CostEstimator est(config, cost::CostModelVariant::kGumbo, &w->db,
                          &catalog, 128);
  EXPECT_FALSE(OptimalGrouping(eqs, ops::OpOptions{}, est, 10).ok());
}

// ---- Multiway topological sorts ---------------------------------------------

sgf::SgfQuery Example5Query() {
  // Paper Example 5 (guards reshaped to unary chains; structure intact).
  return ParseSgfOrDie(
      "Z1 := SELECT x FROM R1(x, y) WHERE S(x);\n"
      "Z2 := SELECT x FROM Z1(x) WHERE T(x);\n"
      "Z3 := SELECT x FROM Z2(x) WHERE U(x);\n"
      "Z4 := SELECT x FROM R2(x, y) WHERE T(x);\n"
      "Z5 := SELECT x FROM Z3(x) WHERE Z4(x);");
}

TEST(ToposortTest, Example5HasExactlyFourPartitions) {
  sgf::SgfQuery q = Example5Query();
  sgf::DependencyGraph g = q.BuildDependencyGraph();
  auto sorts = EnumerateMultiwayTopoSorts(g);
  ASSERT_OK(sorts);
  for (const Batches& b : *sorts) {
    EXPECT_TRUE(IsValidMultiwaySort(g, b));
  }
  // The paper counts sorts up to batch reordering (evaluation cost is
  // order-invariant): canonicalize to a multiset of batches.
  std::set<std::set<std::vector<size_t>>> canonical;
  for (const Batches& b : *sorts) {
    std::set<std::vector<size_t>> cb(b.begin(), b.end());
    canonical.insert(std::move(cb));
  }
  EXPECT_EQ(canonical.size(), 4u);
}

TEST(ToposortTest, GreedySgfPlacesQ4WithQ2) {
  // overlap(Q4, {Q2}) = 1 (they share T) — the only positive overlap, so
  // Greedy-SGF should produce ({Q1},{Q2,Q4},{Q3},{Q5}), the paper's
  // sort #2.
  auto batches = GreedySgfSort(Example5Query());
  ASSERT_OK(batches);
  Batches expected = {{0}, {1, 3}, {2}, {4}};
  EXPECT_EQ(*batches, expected);
}

TEST(ToposortTest, GreedyAlwaysValid) {
  for (int ci : {1, 2, 3, 4}) {
    auto w = data::MakeC(ci, SmallData());
    ASSERT_OK(w);
    auto batches = GreedySgfSort(w->query);
    ASSERT_OK(batches);
    EXPECT_TRUE(
        IsValidMultiwaySort(w->query.BuildDependencyGraph(), *batches))
        << "C" << ci;
  }
}

TEST(ToposortTest, OverlapCountsDistinctSharedRelations) {
  sgf::SgfQuery q = Example5Query();
  // Q2 reads {Z1, T}; Q4 reads {R2, T} -> overlap 1 (T).
  EXPECT_EQ(Overlap(q, 1, {3}), 1u);
  // Q1 reads {R1, S}: no overlap with Q4.
  EXPECT_EQ(Overlap(q, 0, {3}), 0u);
}

// ---- Planner strategies end-to-end -------------------------------------------

void VerifyStrategies(const data::Workload& w,
                      std::initializer_list<Strategy> strategies) {
  for (Strategy s : strategies) {
    PlannerOptions opts;
    opts.strategy = s;
    opts.sample_size = 64;
    cost::ClusterConfig config = TestCluster();
    Planner planner(config, opts);
    mr::Engine engine(config);
    Database db = w.db;
    auto result = ExecuteAndVerify(w.query, planner, &engine, &db);
    ASSERT_OK(result) << w.name << " under " << StrategyName(s);
    EXPECT_GT(result->metrics.total_time, 0.0);
    EXPECT_GT(result->metrics.net_time, 0.0);
    EXPECT_LE(result->metrics.net_time, result->metrics.total_time + 1e-9);
  }
}

TEST(PlannerTest, FlatQueriesAllStrategies) {
  for (int i : {1, 2, 3, 4, 5}) {
    auto w = data::MakeA(i, SmallData());
    ASSERT_OK(w);
    VerifyStrategies(*w, {Strategy::kSeq, Strategy::kPar, Strategy::kGreedy,
                          Strategy::kOpt});
  }
}

TEST(PlannerTest, OneRoundOnQualifyingQueries) {
  auto a3 = data::MakeA(3, SmallData());
  ASSERT_OK(a3);
  VerifyStrategies(*a3, {Strategy::kOneRound});
  auto b2 = data::MakeB(2, SmallData());
  ASSERT_OK(b2);
  VerifyStrategies(*b2, {Strategy::kOneRound});
}

TEST(PlannerTest, OneRoundRefusesMixedKeys) {
  auto a1 = data::MakeA(1, SmallData());
  ASSERT_OK(a1);
  PlannerOptions opts;
  opts.strategy = Strategy::kOneRound;
  cost::ClusterConfig config = TestCluster();
  Planner planner(config, opts);
  EXPECT_FALSE(planner.Plan(a1->query, a1->db).ok());
}

TEST(PlannerTest, LargeQueries) {
  for (int i : {1, 2}) {
    auto w = data::MakeB(i, SmallData());
    ASSERT_OK(w);
    VerifyStrategies(*w, {Strategy::kSeq, Strategy::kPar, Strategy::kGreedy});
  }
}

TEST(PlannerTest, NestedSgfAllStrategies) {
  for (int i : {1, 2, 3, 4}) {
    auto w = data::MakeC(i, SmallData());
    ASSERT_OK(w);
    VerifyStrategies(*w, {Strategy::kSeqUnit, Strategy::kParUnit,
                          Strategy::kGreedySgf});
  }
}

TEST(PlannerTest, OptSgfOnSmallQuery) {
  auto w = data::MakeC(1, SmallData());
  ASSERT_OK(w);
  VerifyStrategies(*w, {Strategy::kOptSgf});
}

TEST(PlannerTest, CostModelQueryBothVariants) {
  data::GeneratorConfig g = SmallData();
  g.tuples = 200;
  auto w = data::MakeCostModelQuery(g);
  ASSERT_OK(w);
  for (auto variant :
       {cost::CostModelVariant::kGumbo, cost::CostModelVariant::kWang}) {
    PlannerOptions opts;
    opts.strategy = Strategy::kGreedy;
    opts.cost_variant = variant;
    opts.sample_size = 64;
    cost::ClusterConfig config = TestCluster();
    Planner planner(config, opts);
    mr::Engine engine(config);
    Database db = w->db;
    ASSERT_OK(ExecuteAndVerify(w->query, planner, &engine, &db))
        << CostModelVariantName(variant);
  }
}

TEST(PlannerTest, SeqMatchesRoundCountToChainLength) {
  // B1 under SEQ: 16 chained steps -> 16 rounds; PAR: 2 rounds.
  auto w = data::MakeB(1, SmallData());
  ASSERT_OK(w);
  cost::ClusterConfig config = TestCluster();
  mr::Engine engine(config);
  {
    PlannerOptions opts;
    opts.strategy = Strategy::kSeq;
    Planner planner(config, opts);
    auto plan = planner.Plan(w->query, w->db);
    ASSERT_OK(plan);
    EXPECT_EQ(plan->program.Rounds(), 16);
  }
  {
    PlannerOptions opts;
    opts.strategy = Strategy::kPar;
    Planner planner(config, opts);
    auto plan = planner.Plan(w->query, w->db);
    ASSERT_OK(plan);
    EXPECT_EQ(plan->program.Rounds(), 2);
    EXPECT_EQ(plan->program.size(), 17u);  // 16 MSJ + 1 EVAL
  }
}

TEST(PlannerTest, StrategyNamesRoundTrip) {
  for (Strategy s : {Strategy::kSeq, Strategy::kPar, Strategy::kGreedy,
                     Strategy::kOpt, Strategy::kOneRound, Strategy::kSeqUnit,
                     Strategy::kParUnit, Strategy::kGreedySgf,
                     Strategy::kOptSgf}) {
    auto parsed = StrategyFromName(StrategyName(s));
    ASSERT_OK(parsed);
    EXPECT_EQ(*parsed, s);
  }
  // Case-insensitive lookup.
  auto lower = StrategyFromName("greedy-sgf");
  ASSERT_OK(lower);
  EXPECT_EQ(*lower, Strategy::kGreedySgf);
  auto mixed = StrategyFromName("Opt");
  ASSERT_OK(mixed);
  EXPECT_EQ(*mixed, Strategy::kOpt);
  // Unknown names fail and the error lists the valid strategies.
  auto bad = StrategyFromName("TURBO");
  EXPECT_FALSE(bad.ok());
  EXPECT_NE(bad.status().ToString().find("GREEDY"), std::string::npos);
  EXPECT_NE(bad.status().ToString().find("1-ROUND"), std::string::npos);
}

// ---- Baselines ----------------------------------------------------------------

// ---- Self-calibrating planner (DESIGN.md §10) -------------------------------

Database SkewDb(double theta, bool cold) {
  data::GeneratorConfig g = SmallData();
  g.selectivity = 0.3;
  data::Generator gen(g);
  Database db;
  db.Put(gen.ZipfGuard("G", 3, theta));
  for (const char* c : {"S", "T", "U"}) {
    db.Put(cold ? gen.ColdConditional(c, 1) : gen.HotConditional(c, 1));
  }
  return db;
}

const char* kSkewQuery =
    "Z := SELECT (x, y, z) FROM G(x, y, z) WHERE S(x) AND T(y) AND U(z);";

TEST(CalibrationPlanTest, EveryPlanCarriesJobEstimates) {
  const sgf::SgfQuery query = ParseSgfOrDie(kSkewQuery);
  // 1-ROUND refuses kSkewQuery (conjunction over distinct join keys), so
  // it gets a single-key query that qualifies.
  const sgf::SgfQuery one_key = ParseSgfOrDie(
      "Z := SELECT (x, y, z) FROM G(x, y, z) WHERE S(x) AND T(x);");
  const Database db = SkewDb(1.2, true);
  for (Strategy s : {Strategy::kSeq, Strategy::kPar, Strategy::kGreedy,
                     Strategy::kOneRound}) {
    PlannerOptions opts;
    opts.strategy = s;
    Planner planner(TestCluster(), opts);
    auto plan =
        planner.Plan(s == Strategy::kOneRound ? one_key : query, db);
    ASSERT_OK(plan);
    // One estimate record per program job, in job order, with positive
    // total cost — the feedback loop's "estimated" side.
    EXPECT_EQ(plan->job_estimates.size(), plan->program.size())
        << StrategyName(s);
    EXPECT_GT(plan->estimated_cost, 0.0);
    for (const JobEstimateRecord& rec : plan->job_estimates) {
      EXPECT_FALSE(rec.inputs.empty());
      EXPECT_GE(rec.cost, 0.0);
    }
  }
}

TEST(CalibrationPlanTest, QueryRegimeFollowsTheGuard) {
  const sgf::SgfQuery query = ParseSgfOrDie(kSkewQuery);
  data::GeneratorConfig g = SmallData();
  g.tuples = 4000;  // enough rows for a stable skew classification
  data::Generator gen(g);
  Database uniform;
  uniform.Put(gen.Guard("G", 3));
  for (const char* c : {"S", "T", "U"}) uniform.Put(gen.Conditional(c, 1));
  EXPECT_EQ(QueryRegime(query, uniform), cost::SkewRegime::kUniform);
  Database heavy;
  heavy.Put(gen.ZipfGuard("G", 3, 1.5));
  for (const char* c : {"S", "T", "U"}) heavy.Put(gen.Conditional(c, 1));
  EXPECT_EQ(QueryRegime(query, heavy), cost::SkewRegime::kHeavy);
}

TEST(CalibrationPlanTest, TuneOpOptionsDisablesLowYieldKnobs) {
  cost::CalibrationStore store;
  ops::OpOptions base;
  base.combiners = true;
  base.bloom_filters = true;
  // No observations: base passes through untouched.
  ops::OpOptions same =
      TuneOpOptions(base, cost::SkewRegime::kHeavy, store);
  EXPECT_TRUE(same.combiners);
  EXPECT_TRUE(same.bloom_filters);
  // Observed negligible combiner yield in the heavy regime -> knob off
  // there, untouched elsewhere.
  store.Observe(cost::Channel::kCombinerYield, cost::SkewRegime::kHeavy, 1.0,
                0.001);
  store.Observe(cost::Channel::kFilterYield, cost::SkewRegime::kHeavy, 1.0,
                0.5);
  ops::OpOptions tuned =
      TuneOpOptions(base, cost::SkewRegime::kHeavy, store);
  EXPECT_FALSE(tuned.combiners);
  EXPECT_TRUE(tuned.bloom_filters);
  ops::OpOptions uniform =
      TuneOpOptions(base, cost::SkewRegime::kUniform, store);
  EXPECT_TRUE(uniform.combiners);
}

TEST(CalibrationPlanTest, CalibrateFromExecutionFillsTheStore) {
  const sgf::SgfQuery query = ParseSgfOrDie(kSkewQuery);
  const Database db = SkewDb(1.2, true);
  PlannerOptions opts;
  opts.strategy = Strategy::kSeq;
  Planner planner(TestCluster(), opts);
  auto plan = planner.Plan(query, db);
  ASSERT_OK(plan);
  mr::Engine engine(TestCluster());
  mr::Runtime runtime(&engine);
  Database out;
  auto run = ExecutePlanOnSnapshot(*plan, runtime, db, &out);
  ASSERT_OK(run);
  cost::CalibrationStore store;
  CalibrateFromExecution(*plan, run->stats, &store);
  EXPECT_GT(store.TotalObservations(), 0u);
  // A null store is a no-op, not a crash.
  CalibrateFromExecution(*plan, run->stats, nullptr);
}

TEST(CalibrationPlanTest, SavedStoreReloadsToIdenticalPlans) {
  const sgf::SgfQuery query = ParseSgfOrDie(kSkewQuery);
  const Database db = SkewDb(1.2, true);
  // Train a store from real executions of two strategies.
  cost::CalibrationStore store;
  for (Strategy s : {Strategy::kSeq, Strategy::kGreedy}) {
    PlannerOptions opts;
    opts.strategy = s;
    Planner planner(TestCluster(), opts);
    auto plan = planner.Plan(query, db);
    ASSERT_OK(plan);
    mr::Engine engine(TestCluster());
    mr::Runtime runtime(&engine);
    Database out;
    auto run = ExecutePlanOnSnapshot(*plan, runtime, db, &out);
    ASSERT_OK(run);
    CalibrateFromExecution(*plan, run->stats, &store);
  }
  ASSERT_GT(store.TotalObservations(), 0u);

  const std::string path = ::testing::TempDir() + "gumbo_calibration.txt";
  ASSERT_OK(store.Save(path));
  cost::CalibrationStore reloaded;
  ASSERT_OK(reloaded.Load(path));

  // The round-tripped store plans byte-identically: same description,
  // same estimated costs, same chosen strategy.
  PlannerOptions a;
  a.calibration = &store;
  PlannerOptions b;
  b.calibration = &reloaded;
  auto choice_a = ChoosePlan(query, db, TestCluster(), a);
  auto choice_b = ChoosePlan(query, db, TestCluster(), b);
  ASSERT_OK(choice_a);
  ASSERT_OK(choice_b);
  EXPECT_EQ(choice_a->strategy, choice_b->strategy);
  EXPECT_EQ(choice_a->plan.description, choice_b->plan.description);
  EXPECT_DOUBLE_EQ(choice_a->plan.estimated_cost,
                   choice_b->plan.estimated_cost);
  ASSERT_EQ(choice_a->candidates.size(), choice_b->candidates.size());
  for (size_t i = 0; i < choice_a->candidates.size(); ++i) {
    EXPECT_EQ(choice_a->candidates[i].strategy,
              choice_b->candidates[i].strategy);
    EXPECT_DOUBLE_EQ(choice_a->candidates[i].estimated_cost,
                     choice_b->candidates[i].estimated_cost);
  }
}

TEST(CalibrationPlanTest, ChoosePlanSkipsInapplicableCandidates) {
  // A conjunction over distinct join keys disqualifies 1-ROUND; ChoosePlan
  // must still succeed and report only the candidates that planned.
  const sgf::SgfQuery mixed = ParseSgfOrDie(kSkewQuery);
  const Database db = SkewDb(0.0, false);
  auto choice = ChoosePlan(mixed, db, TestCluster(), PlannerOptions{});
  ASSERT_OK(choice);
  EXPECT_FALSE(choice->candidates.empty());
  for (const StrategyCost& c : choice->candidates) {
    EXPECT_NE(c.strategy, Strategy::kOneRound);
  }
}

TEST(BaselineTest, AllBaselinesProduceCorrectResults) {
  for (int i : {1, 2, 3, 5}) {
    auto w = data::MakeA(i, SmallData());
    ASSERT_OK(w);
    auto expected = sgf::NaiveEvalSgf(w->query, w->db);
    ASSERT_OK(expected);
    for (auto kind :
         {baselines::BaselineKind::kHivePar,
          baselines::BaselineKind::kHiveParSemiJoin,
          baselines::BaselineKind::kPigPar}) {
      auto plan = baselines::PlanBaseline(kind, w->query, w->db);
      ASSERT_OK(plan) << baselines::BaselineName(kind);
      cost::ClusterConfig config = TestCluster();
      mr::Engine engine(config);
      Database db = w->db;
      auto result = ExecutePlan(*plan, &engine, &db);
      ASSERT_OK(result) << baselines::BaselineName(kind);
      for (const auto& q : w->query.subqueries()) {
        EXPECT_TRUE(db.Get(q.output()).value()->SetEquals(
            *expected->Get(q.output()).value()))
            << "A" << i << " " << baselines::BaselineName(kind) << " "
            << q.output();
      }
    }
  }
}

TEST(BaselineTest, HparSerializesJoins) {
  auto w = data::MakeA(1, SmallData());
  ASSERT_OK(w);
  auto plan = baselines::PlanBaseline(baselines::BaselineKind::kHivePar,
                                      w->query, w->db);
  ASSERT_OK(plan);
  // 4 chained LOJ jobs + filter = 5 rounds.
  EXPECT_EQ(plan->program.Rounds(), 5);
}

TEST(BaselineTest, HparGroupsSameKeyJoins) {
  auto w = data::MakeA(3, SmallData());
  ASSERT_OK(w);
  auto plan = baselines::PlanBaseline(baselines::BaselineKind::kHivePar,
                                      w->query, w->db);
  ASSERT_OK(plan);
  // The paper's A3 observation: one multi-way join + filter = 2 rounds.
  EXPECT_EQ(plan->program.Rounds(), 2);
}

TEST(BaselineTest, RejectsNestedQueries) {
  auto w = data::MakeC(1, SmallData());
  ASSERT_OK(w);
  EXPECT_FALSE(baselines::PlanBaseline(baselines::BaselineKind::kPigPar,
                                       w->query, w->db)
                   .ok());
}

}  // namespace
}  // namespace gumbo::plan
