// Tests for the serving layer (DESIGN.md §8): canonical signatures,
// database stats epochs, snapshot execution, the plan cache
// (hit / miss / alpha-renaming / invalidation / eviction), and the
// QueryService's admission scheduler — including the central determinism
// claim: N-thread concurrent submission produces results byte-identical
// to sequential solo execution.
#include <cstdlib>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "common/config.h"
#include "data/generator.h"
#include "mr/engine.h"
#include "plan/executor.h"
#include "plan/planner.h"
#include "serve/plan_cache.h"
#include "serve/service.h"
#include "serve/signature.h"
#include "sgf/naive_eval.h"
#include "test_util.h"

namespace gumbo {
namespace {

using ::gumbo::testing::ParseSgfOrDie;

// A small generated database serving every query in this file: 4-ary
// guard R, unary conditionals S, T, U, V.
Database MakeTestDb(size_t tuples = 600) {
  data::GeneratorConfig cfg;
  cfg.tuples = tuples;
  cfg.representation_scale = 1.0;
  data::Generator gen(cfg);
  Database db;
  db.Put(gen.Guard("R", 4));
  for (const char* c : {"S", "T", "U", "V"}) {
    db.Put(gen.Conditional(c, 1));
  }
  return db;
}

const char* kQueryA1 =
    "Z := SELECT (x, y, z, w) FROM R(x, y, z, w) "
    "WHERE S(x) AND T(y) AND U(z) AND V(w);";
const char* kQueryA3 =
    "Z := SELECT (x, y, z, w) FROM R(x, y, z, w) "
    "WHERE S(x) AND T(x) AND U(x) AND V(x);";
// kQueryA1 with every variable consistently renamed.
const char* kQueryA1Renamed =
    "Z := SELECT (a, b, c, d) FROM R(a, b, c, d) "
    "WHERE S(a) AND T(b) AND U(c) AND V(d);";
const char* kQuerySmall = "Z := SELECT x FROM R(x, y, z, w) WHERE S(x);";
const char* kQueryNested =
    "Z1 := SELECT x FROM R(x, y, z, w) WHERE S(x) AND T(y);\n"
    "Z2 := SELECT x FROM R(x, y, z, w) WHERE Z1(x) OR NOT U(y);";

// ---- Signatures -------------------------------------------------------------

TEST(SignatureTest, AlphaRenamedQueriesShareSignature) {
  EXPECT_EQ(serve::CanonicalQuerySignature(ParseSgfOrDie(kQueryA1)),
            serve::CanonicalQuerySignature(ParseSgfOrDie(kQueryA1Renamed)));
}

TEST(SignatureTest, StructureIsSignificant) {
  const std::string a1 = serve::CanonicalQuerySignature(ParseSgfOrDie(kQueryA1));
  // Same relations, different join structure (all atoms keyed on x).
  EXPECT_NE(a1, serve::CanonicalQuerySignature(ParseSgfOrDie(kQueryA3)));
  // Different output name.
  EXPECT_NE(a1, serve::CanonicalQuerySignature(ParseSgfOrDie(
                    "W := SELECT (x, y, z, w) FROM R(x, y, z, w) "
                    "WHERE S(x) AND T(y) AND U(z) AND V(w);")));
  // Different condition over the same atoms.
  EXPECT_NE(a1, serve::CanonicalQuerySignature(ParseSgfOrDie(
                    "Z := SELECT (x, y, z, w) FROM R(x, y, z, w) "
                    "WHERE S(x) AND T(y) AND U(z) OR V(w);")));
}

TEST(SignatureTest, PlannerOptionsChangeTheCacheKey) {
  const sgf::SgfQuery q = ParseSgfOrDie(kQueryA1);
  plan::PlannerOptions greedy;
  greedy.strategy = plan::Strategy::kGreedy;
  plan::PlannerOptions par;
  par.strategy = plan::Strategy::kPar;
  EXPECT_NE(serve::PlanCacheKey(q, greedy), serve::PlanCacheKey(q, par));
  EXPECT_EQ(serve::PlanCacheKey(q, greedy),
            serve::PlanCacheKey(ParseSgfOrDie(kQueryA1Renamed), greedy));
}

// ---- Stats epochs -----------------------------------------------------------

TEST(DatabaseEpochTest, MutationsBumpReadsDoNot) {
  Database db = MakeTestDb(50);
  const uint64_t e0 = db.stats_epoch();
  const uint64_t r0 = db.StatsEpochOf("R");

  ASSERT_OK(db.Get("R"));
  EXPECT_TRUE(db.Contains("S"));
  EXPECT_EQ(db.stats_epoch(), e0);
  EXPECT_EQ(db.StatsEpochOf("R"), r0);

  Tuple t;
  for (int i = 0; i < 4; ++i) t.PushBack(Value::Int(i));
  ASSERT_OK(db.AddFact("R", t));
  EXPECT_GT(db.stats_epoch(), e0);
  EXPECT_GT(db.StatsEpochOf("R"), r0);

  const uint64_t e1 = db.stats_epoch();
  EXPECT_TRUE(db.Erase("V"));
  EXPECT_GT(db.StatsEpochOf("V"), e1);

  ASSERT_OK(db.Create("W", 2));
  EXPECT_GT(db.StatsEpochOf("W"), 0u);
}

// Regression (DESIGN.md §12): GetMutable used to bump the epoch
// unconditionally — taking the handle counted as a write even if the
// caller never touched the relation, so every cached plan and result
// whose query read that relation was invalidated for nothing. The loan
// protocol bumps on *observed* mutation only: GetMutable snapshots the
// relation's version counters and the next settlement point (any
// mutating Database entry point, or an explicit SettleLoans) classifies
// what actually happened.
TEST(DatabaseEpochTest, MutableHandleBumpsOnlyOnActualWrite) {
  Database db = MakeTestDb(50);

  // Taking the handle and walking away is a read: no bump, ever.
  const uint64_t s0 = db.StatsEpochOf("S");
  ASSERT_OK(db.GetMutable("S"));
  db.SettleLoans();
  EXPECT_EQ(db.StatsEpochOf("S"), s0);

  // Appending through the handle is an insert-only write: the epoch
  // bumps and the watermark classifies the move as delta-eligible.
  Relation* s = db.GetMutable("S").value();
  const size_t rows_before = s->size();
  Tuple t;
  t.PushBack(Value::Int(999));
  ASSERT_OK(s->Add(t));
  db.SettleLoans();
  EXPECT_GT(db.StatsEpochOf("S"), s0);
  EXPECT_TRUE(db.InsertOnlySince("S", s0));
  ASSERT_TRUE(db.RowsAtEpoch("S", s0).has_value());
  EXPECT_EQ(*db.RowsAtEpoch("S", s0), rows_before);

  // Reordering in place is a destructive write: the epoch bumps and the
  // insert-only classification is revoked for older epochs.
  const uint64_t t0 = db.StatsEpochOf("T");
  Relation* tr = db.GetMutable("T").value();
  tr->SortAndDedupe();
  db.SettleLoans();
  EXPECT_GT(db.StatsEpochOf("T"), t0);
  EXPECT_FALSE(db.InsertOnlySince("T", t0));

  // AddFact (the delta write API) is insert-only by construction.
  const uint64_t u0 = db.StatsEpochOf("U");
  const size_t u_rows = db.Get("U").value()->size();
  Tuple f;
  f.PushBack(Value::Int(1000));
  ASSERT_OK(db.AddFact("U", f));
  EXPECT_GT(db.StatsEpochOf("U"), u0);
  EXPECT_TRUE(db.InsertOnlySince("U", u0));
  EXPECT_EQ(*db.RowsAtEpoch("U", u0), u_rows);

  // Put and Erase are destructive moves.
  const uint64_t v0 = db.StatsEpochOf("V");
  db.Put(Relation("V", 1));
  EXPECT_FALSE(db.InsertOnlySince("V", v0));
  EXPECT_GT(db.StatsEpochOf("V"), v0);
}

// ---- Overlays + snapshot execution ------------------------------------------

TEST(OverlayTest, OverlayReadsBaseWritesLocally) {
  Database base = MakeTestDb(50);
  const uint64_t base_epoch = base.stats_epoch();

  Database overlay(&base);
  ASSERT_OK(overlay.Get("R"));
  EXPECT_TRUE(overlay.Contains("S"));
  EXPECT_EQ(overlay.size(), 0u);  // enumeration is local-only

  // Writes shadow, never touch the base.
  Relation mine("R", 2);
  overlay.Put(std::move(mine));
  EXPECT_EQ(overlay.Get("R").value()->arity(), 2u);
  EXPECT_EQ(base.Get("R").value()->arity(), 4u);
  EXPECT_EQ(base.stats_epoch(), base_epoch);

  // Create refuses to shadow an existing base relation.
  EXPECT_FALSE(overlay.Create("S", 3).ok());
  // GetMutable never reaches into the base.
  EXPECT_FALSE(overlay.GetMutable("S").ok());
  // Epochs of untouched base relations are visible through the overlay.
  EXPECT_EQ(overlay.StatsEpochOf("S"), base.StatsEpochOf("S"));
}

TEST(OverlayTest, SnapshotExecutionLeavesBaseUntouched) {
  Database base = MakeTestDb();
  const uint64_t base_epoch = base.stats_epoch();
  const size_t base_size = base.size();

  cost::ClusterConfig cluster;
  plan::Planner planner(cluster, plan::PlannerOptions{});
  const sgf::SgfQuery query = ParseSgfOrDie(kQueryA1);
  auto plan = planner.Plan(query, base);
  ASSERT_OK(plan);

  mr::Engine engine(cluster);
  Database outputs;
  auto result =
      plan::ExecutePlanOnSnapshot(*plan, mr::Runtime(&engine), base, &outputs);
  ASSERT_OK(result);
  EXPECT_EQ(base.size(), base_size);
  EXPECT_EQ(base.stats_epoch(), base_epoch);
  ASSERT_OK(outputs.Get("Z"));

  // Identical to the classic committing execution path, byte for byte.
  Database committed = base;
  auto direct = plan::ExecutePlan(*plan, &engine, &committed);
  ASSERT_OK(direct);
  EXPECT_TRUE(outputs.Get("Z").value()->words() ==
              committed.Get("Z").value()->words());
}

// ---- Plan cache -------------------------------------------------------------

TEST(PlanCacheTest, HitOnIdenticalAndAlphaRenamedQueries) {
  Database db = MakeTestDb();
  serve::ServiceOptions opts;
  opts.max_inflight = 1;
  // These tests pin *plan*-cache behavior: the result cache sits in front
  // of it and would short-circuit repeat submissions before they reach
  // the plan path, so it is switched off here (and in the other
  // PlanCacheTest cases). ResultCacheTest below covers the front layer.
  opts.result_cache = false;
  serve::QueryService service(&db, opts);

  serve::QueryResponse first = service.Run(ParseSgfOrDie(kQueryA1));
  ASSERT_OK(first.status);
  EXPECT_FALSE(first.metrics.plan_cache_hit);
  EXPECT_GT(first.metrics.plan_ms, 0.0);

  serve::QueryResponse second = service.Run(ParseSgfOrDie(kQueryA1));
  ASSERT_OK(second.status);
  EXPECT_TRUE(second.metrics.plan_cache_hit);
  EXPECT_EQ(second.metrics.plan_ms, 0.0);

  serve::QueryResponse renamed = service.Run(ParseSgfOrDie(kQueryA1Renamed));
  ASSERT_OK(renamed.status);
  EXPECT_TRUE(renamed.metrics.plan_cache_hit);

  serve::QueryResponse other = service.Run(ParseSgfOrDie(kQueryA3));
  ASSERT_OK(other.status);
  EXPECT_FALSE(other.metrics.plan_cache_hit);

  const serve::PlanCache::Counters c = service.plan_cache().counters();
  EXPECT_EQ(c.hits, 2u);
  EXPECT_EQ(c.misses, 2u);
  EXPECT_EQ(c.invalidations, 0u);
  EXPECT_EQ(c.entries, 2u);

  // Cached plans return the same results as freshly planned ones.
  EXPECT_TRUE(first.outputs.Get("Z").value()->words() ==
              second.outputs.Get("Z").value()->words());
  EXPECT_TRUE(first.outputs.Get("Z").value()->words() ==
              renamed.outputs.Get("Z").value()->words());
}

TEST(PlanCacheTest, InvalidationOnStatsEpochBump) {
  Database db = MakeTestDb();
  serve::ServiceOptions opts;
  opts.max_inflight = 1;
  opts.result_cache = false;
  serve::QueryService service(&db, opts);

  ASSERT_OK(service.Run(ParseSgfOrDie(kQueryA1)).status);
  ASSERT_TRUE(service.Run(ParseSgfOrDie(kQueryA1)).metrics.plan_cache_hit);

  // Mutating a relation the query reads bumps its stats epoch; the next
  // submission must re-plan (no in-flight queries while we mutate).
  Tuple t;
  for (int i = 0; i < 4; ++i) t.PushBack(Value::Int(1));
  ASSERT_OK(db.AddFact("R", t));

  serve::QueryResponse after = service.Run(ParseSgfOrDie(kQueryA1));
  ASSERT_OK(after.status);
  EXPECT_FALSE(after.metrics.plan_cache_hit);
  EXPECT_EQ(service.plan_cache().counters().invalidations, 1u);

  // The re-planned entry serves hits again.
  EXPECT_TRUE(service.Run(ParseSgfOrDie(kQueryA1)).metrics.plan_cache_hit);
}

TEST(PlanCacheTest, MutatingUnrelatedRelationDoesNotInvalidate) {
  Database db = MakeTestDb();
  ASSERT_OK(db.Create("Unrelated", 1));
  serve::ServiceOptions opts;
  opts.max_inflight = 1;
  opts.result_cache = false;
  serve::QueryService service(&db, opts);

  ASSERT_OK(service.Run(ParseSgfOrDie(kQueryA1)).status);
  Tuple t;
  t.PushBack(Value::Int(7));
  ASSERT_OK(db.AddFact("Unrelated", t));
  EXPECT_TRUE(service.Run(ParseSgfOrDie(kQueryA1)).metrics.plan_cache_hit);
  EXPECT_EQ(service.plan_cache().counters().invalidations, 0u);
}

TEST(PlanCacheTest, LruEvictionAtCapacity) {
  Database db = MakeTestDb();
  serve::ServiceOptions opts;
  opts.max_inflight = 1;
  opts.plan_cache_capacity = 2;
  opts.result_cache = false;
  serve::QueryService service(&db, opts);

  ASSERT_OK(service.Run(ParseSgfOrDie(kQueryA1)).status);    // {A1}
  ASSERT_OK(service.Run(ParseSgfOrDie(kQueryA3)).status);    // {A1, A3}
  ASSERT_OK(service.Run(ParseSgfOrDie(kQuerySmall)).status); // evicts A1
  EXPECT_EQ(service.plan_cache().counters().evictions, 1u);
  EXPECT_FALSE(service.Run(ParseSgfOrDie(kQueryA1)).metrics.plan_cache_hit);
}

TEST(PlanCacheTest, DisabledCacheNeverHits) {
  Database db = MakeTestDb();
  serve::ServiceOptions opts;
  opts.max_inflight = 1;
  opts.plan_cache = false;
  opts.result_cache = false;
  serve::QueryService service(&db, opts);
  ASSERT_OK(service.Run(ParseSgfOrDie(kQueryA1)).status);
  EXPECT_FALSE(service.Run(ParseSgfOrDie(kQueryA1)).metrics.plan_cache_hit);
  EXPECT_EQ(service.plan_cache().counters().hits, 0u);
}

// Regression (plan::Metrics carry-over): every response derives its
// metrics from scratch. A cached-plan rerun of the same query must report
// exactly the cold run's deterministic counters — nothing (serve fields,
// max_jobs_per_round, shuffle counters) may accumulate across reuses of
// one cached plan (executor.cc FillMetrics resets the whole struct).
TEST(PlanCacheTest, CachedPlanRerunsDoNotAccumulateMetrics) {
  Database db = MakeTestDb();
  serve::ServiceOptions opts;
  opts.max_inflight = 1;
  opts.result_cache = false;
  serve::QueryService service(&db, opts);
  const serve::QueryResponse cold = service.Run(ParseSgfOrDie(kQueryA1));
  ASSERT_OK(cold.status);
  EXPECT_FALSE(cold.metrics.plan_cache_hit);
  for (int i = 0; i < 3; ++i) {
    const serve::QueryResponse hit = service.Run(ParseSgfOrDie(kQueryA1));
    ASSERT_OK(hit.status);
    EXPECT_TRUE(hit.metrics.plan_cache_hit);
    EXPECT_EQ(hit.metrics.plan_ms, 0.0);  // no planning on a hit
    EXPECT_EQ(hit.metrics.jobs, cold.metrics.jobs);
    EXPECT_EQ(hit.metrics.rounds, cold.metrics.rounds);
    EXPECT_EQ(hit.metrics.max_jobs_per_round, cold.metrics.max_jobs_per_round);
    EXPECT_EQ(hit.metrics.shuffle_records, cold.metrics.shuffle_records);
    EXPECT_EQ(hit.metrics.shuffle_messages, cold.metrics.shuffle_messages);
    EXPECT_EQ(hit.metrics.combined_messages, cold.metrics.combined_messages);
    EXPECT_EQ(hit.metrics.filtered_messages, cold.metrics.filtered_messages);
    EXPECT_DOUBLE_EQ(hit.metrics.net_time, cold.metrics.net_time);
    EXPECT_DOUBLE_EQ(hit.metrics.total_time, cold.metrics.total_time);
    EXPECT_DOUBLE_EQ(hit.metrics.input_mb, cold.metrics.input_mb);
    EXPECT_DOUBLE_EQ(hit.metrics.shuffle_mb, cold.metrics.shuffle_mb);
    EXPECT_DOUBLE_EQ(hit.metrics.output_mb, cold.metrics.output_mb);
    EXPECT_DOUBLE_EQ(hit.metrics.filter_broadcast_mb,
                     cold.metrics.filter_broadcast_mb);
  }
}

// ---- Result cache + incremental delta evaluation (DESIGN.md §12) ------------

// Compares a response against a from-scratch naive evaluation of the
// database's *current* state: canonical words AND fingerprints.
void ExpectMatchesNaive(const sgf::SgfQuery& query, const Database& db,
                        const serve::QueryResponse& resp) {
  auto expected = sgf::NaiveEvalSgf(query, db);
  ASSERT_OK(expected);
  for (const auto& sub : query.subqueries()) {
    const auto want = expected->Get(sub.output());
    ASSERT_OK(want);
    const auto got = resp.outputs.Get(sub.output());
    ASSERT_OK(got);
    Relation canon = **got;
    canon.SortAndDedupe();
    EXPECT_EQ(canon.words(), want.value()->words()) << sub.output();
    EXPECT_EQ(canon.fingerprints(), want.value()->fingerprints())
        << sub.output();
  }
}

Tuple GuardFact(int64_t v) {
  Tuple t;
  for (int i = 0; i < 4; ++i) t.PushBack(Value::Int(v + i));
  return t;
}

TEST(ResultCacheTest, RepeatIsAPureHitByteIdentical) {
  Database db = MakeTestDb();
  serve::ServiceOptions opts;
  opts.max_inflight = 1;
  serve::QueryService service(&db, opts);

  const serve::QueryResponse cold = service.Run(ParseSgfOrDie(kQueryA1));
  ASSERT_OK(cold.status);
  EXPECT_FALSE(cold.metrics.result_cache_hit);

  const serve::QueryResponse hit = service.Run(ParseSgfOrDie(kQueryA1));
  ASSERT_OK(hit.status);
  EXPECT_TRUE(hit.metrics.result_cache_hit);
  EXPECT_FALSE(hit.metrics.plan_cache_hit);  // never reached the plan path
  EXPECT_FALSE(hit.metrics.delta_applied);
  EXPECT_EQ(hit.outputs.Get("Z").value()->words(),
            cold.outputs.Get("Z").value()->words());
  EXPECT_EQ(hit.outputs.Get("Z").value()->fingerprints(),
            cold.outputs.Get("Z").value()->fingerprints());

  const serve::ServiceStats stats = service.Stats();
  EXPECT_EQ(stats.result_hits, 1u);
  EXPECT_EQ(stats.result_cache.hits, 1u);
  EXPECT_EQ(stats.delta_hits, 0u);
}

TEST(ResultCacheTest, GuardInsertIsDeltaMaintained) {
  Database db = MakeTestDb();
  serve::ServiceOptions opts;
  opts.max_inflight = 1;
  serve::QueryService service(&db, opts);  // mutable-base overload

  ASSERT_OK(service.Run(ParseSgfOrDie(kQueryA1)).status);

  // A guard-position insert moves R's epoch insert-only: the next lookup
  // must delta-maintain the cached result instead of re-executing, and
  // stay byte-identical to a from-scratch evaluation.
  ASSERT_OK(service.AddFact("R", GuardFact(3)));
  const serve::QueryResponse delta = service.Run(ParseSgfOrDie(kQueryA1));
  ASSERT_OK(delta.status);
  EXPECT_TRUE(delta.metrics.delta_applied);
  EXPECT_FALSE(delta.metrics.result_cache_hit);
  EXPECT_EQ(delta.metrics.delta_rows, 1u);
  ExpectMatchesNaive(ParseSgfOrDie(kQueryA1), db, delta);

  // The maintenance pass refreshed the cache at the new epochs: an
  // unchanged repeat is a pure hit again.
  const serve::QueryResponse hit = service.Run(ParseSgfOrDie(kQueryA1));
  ASSERT_OK(hit.status);
  EXPECT_TRUE(hit.metrics.result_cache_hit);
  EXPECT_EQ(hit.outputs.Get("Z").value()->words(),
            delta.outputs.Get("Z").value()->words());

  const serve::ServiceStats stats = service.Stats();
  EXPECT_EQ(stats.delta_hits, 1u);
  EXPECT_EQ(stats.delta_rows, 1u);
  EXPECT_EQ(stats.result_hits, 1u);
}

TEST(ResultCacheTest, ConditionalInsertFallsBackToFullRun) {
  Database db = MakeTestDb();
  serve::ServiceOptions opts;
  opts.max_inflight = 1;
  serve::QueryService service(&db, opts);

  ASSERT_OK(service.Run(ParseSgfOrDie(kQueryA1)).status);

  // Conditional-position inserts are not guard-distributive (and not
  // monotone under NOT): the service must fall back to a full
  // re-execution — and still be exactly right.
  Tuple t;
  t.PushBack(Value::Int(12345));
  ASSERT_OK(service.AddFact("S", t));
  const serve::QueryResponse full = service.Run(ParseSgfOrDie(kQueryA1));
  ASSERT_OK(full.status);
  EXPECT_FALSE(full.metrics.delta_applied);
  EXPECT_FALSE(full.metrics.result_cache_hit);
  ExpectMatchesNaive(ParseSgfOrDie(kQueryA1), db, full);
  EXPECT_EQ(service.Stats().delta_hits, 0u);
}

TEST(ResultCacheTest, DestructiveWriteFallsBackToFullRun) {
  Database db = MakeTestDb();
  serve::ServiceOptions opts;
  opts.max_inflight = 1;
  serve::QueryService service(&db, opts);

  ASSERT_OK(service.Run(ParseSgfOrDie(kQueryA1)).status);

  // Put replaces the relation wholesale — a destructive epoch move, so
  // neither a pure hit nor a delta pass is sound.
  data::GeneratorConfig cfg;
  cfg.tuples = 300;
  cfg.seed = 99;
  cfg.representation_scale = 1.0;
  db.Put(data::Generator(cfg).Guard("R", 4));

  const serve::QueryResponse full = service.Run(ParseSgfOrDie(kQueryA1));
  ASSERT_OK(full.status);
  EXPECT_FALSE(full.metrics.delta_applied);
  EXPECT_FALSE(full.metrics.result_cache_hit);
  ExpectMatchesNaive(ParseSgfOrDie(kQueryA1), db, full);
}

TEST(ResultCacheTest, MultiSubqueryDeltaRecomputesCleanOutputsExactly) {
  // Two subqueries with disjoint guards: an insert into R dirties Z1
  // only; the maintenance pass must union Z1 with its delta and
  // recompute the clean Z2 in full — both byte-identical to scratch.
  Database db = MakeTestDb();
  data::GeneratorConfig cfg;
  cfg.tuples = 600;
  cfg.representation_scale = 1.0;
  db.Put(data::Generator(cfg).Guard("G", 4));
  const char* kTwoGuards =
      "Z1 := SELECT x FROM R(x, y, z, w) WHERE S(x) AND T(y);\n"
      "Z2 := SELECT x FROM G(x, y, z, w) WHERE U(x) AND NOT V(x);";
  serve::ServiceOptions opts;
  opts.max_inflight = 1;
  serve::QueryService service(&db, opts);

  ASSERT_OK(service.Run(ParseSgfOrDie(kTwoGuards)).status);
  ASSERT_OK(service.AddFact("R", GuardFact(7)));
  const serve::QueryResponse delta = service.Run(ParseSgfOrDie(kTwoGuards));
  ASSERT_OK(delta.status);
  EXPECT_TRUE(delta.metrics.delta_applied);
  ExpectMatchesNaive(ParseSgfOrDie(kTwoGuards), db, delta);
}

TEST(ResultCacheTest, DisableDeltaEnvKnobTurnsTheLayerOff) {
  common::RuntimeConfig cfg;
  cfg.disable_delta = true;
  common::RuntimeConfig::ScopedOverride ov{std::move(cfg)};
  Database db = MakeTestDb();
  serve::ServiceOptions opts;
  opts.max_inflight = 1;
  serve::QueryService service(&db, opts);

  ASSERT_OK(service.Run(ParseSgfOrDie(kQueryA1)).status);
  const serve::QueryResponse second = service.Run(ParseSgfOrDie(kQueryA1));
  ASSERT_OK(second.status);
  EXPECT_FALSE(second.metrics.result_cache_hit);
  EXPECT_TRUE(second.metrics.plan_cache_hit);  // plan cache still works
  EXPECT_EQ(service.Stats().result_hits, 0u);
  EXPECT_EQ(service.Stats().result_cache.hits, 0u);
}

TEST(ResultCacheTest, WriteApiRequiresMutableBase) {
  Database db = MakeTestDb(50);
  const Database& const_db = db;
  serve::QueryService service(&const_db, serve::ServiceOptions{});
  Tuple t;
  t.PushBack(Value::Int(1));
  EXPECT_EQ(service.AddFact("S", t).code(), StatusCode::kFailedPrecondition);
}

// TSan coverage: AddFact holds the writer lock while queries hold reader
// locks for their whole capture -> execute -> cache-refresh span, so a
// concurrent write/read mix must be race-free and every response must
// match a from-scratch evaluation of *some* consistent database state —
// verified here only for the final quiesced state.
TEST(ResultCacheTest, ConcurrentAddFactAndRunAreRaceFree) {
  Database db = MakeTestDb(300);
  Scheduler scheduler(4);
  serve::ServiceOptions opts;
  opts.max_inflight = 3;
  serve::QueryService service(&db, opts, &scheduler);
  const sgf::SgfQuery query = ParseSgfOrDie(kQueryA1);

  std::vector<std::thread> threads;
  std::vector<Status> status(3, Status::Ok());
  for (int c = 0; c < 2; ++c) {
    threads.emplace_back([&, c] {
      for (int i = 0; i < 6; ++i) {
        serve::QueryResponse resp = service.Run(query);
        if (!resp.ok()) {
          status[c] = resp.status;
          return;
        }
      }
    });
  }
  threads.emplace_back([&] {
    for (int i = 0; i < 10; ++i) {
      const Status st = service.AddFact("R", GuardFact(1000 + 7 * i));
      if (!st.ok()) {
        status[2] = st;
        return;
      }
    }
  });
  for (auto& t : threads) t.join();
  for (const Status& s : status) EXPECT_OK(s);

  const serve::QueryResponse final_resp = service.Run(query);
  ASSERT_OK(final_resp.status);
  ExpectMatchesNaive(query, db, final_resp);
}

// The calibration loop (DESIGN.md §10) observes every successful
// execution without changing a single result byte.
TEST(ServiceTest, CalibrationFeedbackObservesWithoutChangingResults) {
  Database db = MakeTestDb();
  serve::QueryService plain(&db, serve::ServiceOptions{});
  const serve::QueryResponse a = plain.Run(ParseSgfOrDie(kQueryA1));
  ASSERT_OK(a.status);

  cost::CalibrationStore store;
  serve::ServiceOptions opts;
  opts.calibration = &store;
  opts.result_cache = false;  // repeats must re-execute to feed the store
  serve::QueryService calibrated(&db, opts);
  const serve::QueryResponse b1 = calibrated.Run(ParseSgfOrDie(kQueryA1));
  ASSERT_OK(b1.status);
  EXPECT_GT(store.TotalObservations(), 0u);
  // A second run plans through the now-nonempty store (same cache key, so
  // it reuses the plan; the cache-off path replans below).
  const serve::QueryResponse b2 = calibrated.Run(ParseSgfOrDie(kQueryA1));
  ASSERT_OK(b2.status);

  serve::ServiceOptions nocache = opts;
  nocache.plan_cache = false;
  serve::QueryService replanning(&db, nocache);
  ASSERT_OK(replanning.Run(ParseSgfOrDie(kQueryA1)).status);  // feeds store
  const serve::QueryResponse b3 = replanning.Run(ParseSgfOrDie(kQueryA1));
  ASSERT_OK(b3.status);

  const Relation* want = a.outputs.Get("Z").value();
  for (const serve::QueryResponse* r : {&b1, &b2, &b3}) {
    const Relation* got = r->outputs.Get("Z").value();
    EXPECT_EQ(got->words(), want->words());
    EXPECT_EQ(got->fingerprints(), want->fingerprints());
  }
}

// ---- QueryService: admission scheduling + determinism -----------------------

TEST(ServiceTest, FailedQueryReportsErrorAndCountsIt) {
  Database db = MakeTestDb(50);
  serve::ServiceOptions opts;
  opts.max_inflight = 2;
  serve::QueryService service(&db, opts);
  serve::QueryResponse resp = service.Run(
      ParseSgfOrDie("Z := SELECT x FROM Nope(x, y) WHERE S(x);"));
  EXPECT_FALSE(resp.ok());
  serve::ServiceStats stats = service.Stats();
  EXPECT_EQ(stats.failed, 1u);
  EXPECT_EQ(stats.completed, 0u);
}

TEST(ServiceTest, SubmitAfterShutdownIsRejected) {
  Database db = MakeTestDb(50);
  serve::QueryService service(&db, serve::ServiceOptions{});
  service.Shutdown();
  serve::QueryResponse resp = service.Run(ParseSgfOrDie(kQuerySmall));
  EXPECT_FALSE(resp.ok());
  EXPECT_EQ(service.Stats().rejected, 1u);
}

TEST(ServiceTest, FastLaneRoutesSmallQueries) {
  Database db = MakeTestDb(50);
  serve::ServiceOptions opts;
  opts.max_inflight = 1;
  opts.fast_lane_max_atoms = 2;
  serve::QueryService service(&db, opts);
  ASSERT_OK(service.Run(ParseSgfOrDie(kQuerySmall)).status);  // 2 atoms
  ASSERT_OK(service.Run(ParseSgfOrDie(kQueryA1)).status);     // 5 atoms
  EXPECT_EQ(service.Stats().fast_lane, 1u);
  EXPECT_EQ(service.Stats().submitted, 2u);
}

TEST(ServiceTest, ConcurrentSubmissionByteIdenticalToSequential) {
  Database db = MakeTestDb(800);
  // Parse up front, on this thread only: Dictionary::Global() interning
  // is single-threaded by contract; the service takes parsed queries.
  std::vector<sgf::SgfQuery> queries;
  for (const char* text : {kQueryA1, kQueryA3, kQuerySmall, kQueryNested}) {
    queries.push_back(ParseSgfOrDie(text));
  }

  // Sequential solo references: the classic plan + execute path, one
  // query at a time against a pristine copy.
  cost::ClusterConfig cluster;
  plan::Planner planner(cluster, plan::PlannerOptions{});
  mr::Engine ref_engine(cluster);
  std::vector<Database> refs;
  for (const sgf::SgfQuery& q : queries) {
    Database copy = db;
    auto plan = planner.Plan(q, copy);
    ASSERT_OK(plan);
    ASSERT_OK(plan::ExecutePlan(*plan, &ref_engine, &copy));
    Database outputs;
    for (const auto& sub : q.subqueries()) {
      outputs.Put(*copy.Get(sub.output()).value());
    }
    refs.push_back(std::move(outputs));
  }

  // Concurrent submission: 4 client threads x 3 rounds x all queries,
  // through a 3-wide admission scheduler on an explicit 4-worker morsel
  // scheduler (Global() may have 1 worker on 1-core CI).
  Scheduler scheduler(4);
  serve::ServiceOptions opts;
  opts.max_inflight = 3;
  serve::QueryService service(&db, opts, &scheduler);

  constexpr int kClients = 4;
  constexpr int kRounds = 3;
  std::vector<std::thread> clients;
  std::vector<Status> client_status(kClients, Status::Ok());
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (int r = 0; r < kRounds; ++r) {
        for (size_t qi = 0; qi < queries.size(); ++qi) {
          // Stagger the mix per client so distinct queries overlap.
          const size_t pick = (qi + static_cast<size_t>(c)) % queries.size();
          serve::QueryResponse resp = service.Run(queries[pick]);
          if (!resp.ok()) {
            client_status[c] = resp.status;
            return;
          }
          if (resp.outputs.size() != refs[pick].size()) {
            client_status[c] = Status::Internal(
                "concurrent response holds extra/missing relations");
            return;
          }
          for (const auto& [name, ref] : refs[pick].relations()) {
            const auto got = resp.outputs.Get(name);
            if (!got.ok() || !(got.value()->words() == ref.words()) ||
                !(got.value()->fingerprints() == ref.fingerprints())) {
              client_status[c] = Status::Internal(
                  "concurrent result for " + name +
                  " diverged from sequential reference");
              return;
            }
          }
        }
      }
    });
  }
  for (auto& t : clients) t.join();
  for (const Status& s : client_status) EXPECT_OK(s);

  serve::ServiceStats stats = service.Stats();
  EXPECT_EQ(stats.completed,
            static_cast<uint64_t>(kClients * kRounds) * queries.size());
  EXPECT_EQ(stats.failed, 0u);
  EXPECT_LE(stats.peak_inflight, 3);
  // Repeats are served from a cache: a plan-cache hit while the first
  // execution is still in flight, or a result-cache hit once it finished
  // (which of the two depends on scheduling).
  EXPECT_GE(stats.cache.hits + stats.result_hits, 1u);
}

TEST(ServiceTest, FastLaneCannotStarveTheFifo) {
  // One worker; a slow-planning FIFO query, 8 fast-lane queries, and a
  // second FIFO query all enqueued back to back. Workers take a FIFO
  // task after every 3 consecutive fast-lane dispatches, so the second
  // FIFO query is dispatched ahead of the fast-lane tail: at least one
  // (in practice 2-5, depending on which task the worker grabs first)
  // small query completes after it. Without the anti-starvation rule the
  // worker drains the entire lane first and exactly zero small queries
  // finish after the FIFO one — completion order is read off wall_ms
  // (near-identical submit instants, single worker).
  Database db = MakeTestDb(200);
  serve::ServiceOptions opts;
  opts.max_inflight = 1;
  opts.fast_lane_max_atoms = 2;
  serve::QueryService service(&db, opts);

  // 17 atoms -> FIFO; its GREEDY grouping plans for tens of ms, so the
  // whole batch below is enqueued long before the worker drains it.
  std::string big_cond;
  for (const char* r : {"S", "T", "U", "V"}) {
    for (const char* v : {"x", "y", "z", "w"}) {
      if (!big_cond.empty()) big_cond += " AND ";
      big_cond += std::string(r) + "(" + v + ")";
    }
  }
  const sgf::SgfQuery blocker = ParseSgfOrDie(
      "Z := SELECT (x, y, z, w) FROM R(x, y, z, w) WHERE " + big_cond + ";");
  const sgf::SgfQuery small = ParseSgfOrDie(kQuerySmall);  // 2 atoms -> lane

  auto blocker_future = service.Submit(blocker);
  std::vector<std::future<serve::QueryResponse>> lane;
  for (int i = 0; i < 8; ++i) lane.push_back(service.Submit(small));
  auto fifo_future = service.Submit(blocker);  // queued FIFO task

  ASSERT_OK(blocker_future.get().status);
  const serve::QueryResponse fifo_resp = fifo_future.get();
  ASSERT_OK(fifo_resp.status);
  size_t finished_after_fifo = 0;
  for (auto& f : lane) {
    serve::QueryResponse resp = f.get();
    ASSERT_OK(resp.status);
    if (resp.wall_ms > fifo_resp.wall_ms) ++finished_after_fifo;
  }
  EXPECT_GE(finished_after_fifo, 1u);
}

TEST(ServiceTest, ColdCacheStampedeAccounting) {
  // Many concurrent submissions of the same never-seen query: exactly one
  // of {cache hit, coalesced wait, plan built} happens per query, and at
  // least one plan is built. Single-flight makes plans_built < N the
  // common case, but the invariant below is scheduling-independent.
  Database db = MakeTestDb(200);
  const sgf::SgfQuery query = ParseSgfOrDie(kQueryA1);
  Scheduler scheduler(4);
  serve::ServiceOptions opts;
  opts.max_inflight = 6;
  serve::QueryService service(&db, opts, &scheduler);

  constexpr uint64_t kN = 12;
  std::vector<std::future<serve::QueryResponse>> futures;
  for (uint64_t i = 0; i < kN; ++i) futures.push_back(service.Submit(query));
  for (auto& f : futures) ASSERT_OK(f.get().status);

  const serve::ServiceStats stats = service.Stats();
  EXPECT_EQ(stats.completed, kN);
  EXPECT_GE(stats.plans_built, 1u);
  // Every query is exactly one of: result-cache hit (an early finisher
  // populated the result cache before a queued sibling was admitted),
  // plan-cache hit, coalesced wait, or plan built.
  EXPECT_EQ(stats.result_hits + stats.cache.hits + stats.plan_coalesced +
                stats.plans_built,
            kN);
}

TEST(ServiceTest, DrainsBacklogOnDestruction) {
  Database db = MakeTestDb(50);
  std::vector<std::future<serve::QueryResponse>> futures;
  {
    serve::ServiceOptions opts;
    opts.max_inflight = 1;
    serve::QueryService service(&db, opts);
    for (int i = 0; i < 8; ++i) {
      futures.push_back(service.Submit(ParseSgfOrDie(kQuerySmall)));
    }
    // Destructor drains: every accepted query gets an answer.
  }
  for (auto& f : futures) {
    EXPECT_OK(f.get().status);
  }
}

}  // namespace
}  // namespace gumbo
