// Tests for the flat-buffer shuffle hot path (DESIGN.md §3): flat key
// encode/decode round-trips, fingerprint grouping (including forced
// 64-bit collisions), multi-task group merging, and an equivalence check
// against a reference implementation of the previous Tuple-keyed
// representation (unordered_map grouping + per-call sort), which pins
// the old-vs-new byte identity of the shuffle's reduce-side view.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "common/tuple.h"
#include "mr/map_output.h"
#include "mr/shuffle.h"

namespace gumbo::mr {
namespace {

// ---- Flat key encode/decode -------------------------------------------------

TEST(FlatTupleTest, EncodeDecodeRoundTrips) {
  std::vector<Tuple> cases;
  cases.push_back(Tuple{});                       // empty
  cases.push_back(Tuple::Ints({0}));              // single
  cases.push_back(Tuple::Ints({-1, -42, 7}));     // negative ints
  cases.push_back(Tuple::Ints({1, 2, 3, 4}));     // full inline capacity
  cases.push_back(Tuple::Ints({1, 2, 3, 4, 5, 6, 7, 8}));  // heap-spilled
  Tuple strings;                                  // interned string handles
  strings.PushBack(Value::StringId(0));
  strings.PushBack(Value::StringId(12345));
  strings.PushBack(Value::Int(-3));
  cases.push_back(strings);

  for (const Tuple& t : cases) {
    std::vector<uint64_t> arena;
    arena.push_back(0xdeadbeefULL);  // nonzero offset
    const size_t pos = t.EncodeTo(&arena);
    ASSERT_EQ(pos, 1u);
    ASSERT_EQ(arena.size(), 1u + t.size());
    Tuple back = Tuple::DecodeFrom(arena.data() + pos, t.size());
    EXPECT_EQ(back, t);
    // Values round-trip exactly, kind included.
    for (uint32_t i = 0; i < t.size(); ++i) {
      EXPECT_EQ(back[i].raw(), t[i].raw());
      EXPECT_EQ(back[i].is_string(), t[i].is_string());
      if (t[i].is_int()) {
        EXPECT_EQ(back[i].AsInt(), t[i].AsInt());
      }
    }
    // The flat fingerprint is the Tuple hash, bit for bit.
    EXPECT_EQ(TupleFingerprint(arena.data() + pos, t.size()), t.Hash());
  }
}

// ---- Fingerprint grouping ---------------------------------------------------

// Collects the reduce-side view of a shuffle into a comparable form.
struct CollectedMessage {
  uint32_t tag = 0;
  uint32_t aux = 0;
  Tuple payload;
  double wire_bytes = 0.0;
  bool operator==(const CollectedMessage& o) const {
    return tag == o.tag && aux == o.aux && payload == o.payload &&
           wire_bytes == o.wire_bytes;
  }
};
struct CollectedGroup {
  Tuple key;
  std::vector<CollectedMessage> values;
};

std::vector<std::vector<CollectedGroup>> Collect(const Shuffle& shuffle) {
  std::vector<std::vector<CollectedGroup>> out(
      static_cast<size_t>(shuffle.num_partitions()));
  for (size_t p = 0; p < out.size(); ++p) {
    shuffle.ForEachGroup(p, [&](TupleView key, const MessageGroup& values) {
      CollectedGroup g;
      g.key = key.ToTuple();
      for (const MessageRef m : values) {
        g.values.push_back(
            {m.tag(), m.aux(), m.PayloadTuple(), m.wire_bytes()});
      }
      out[p].push_back(std::move(g));
    });
  }
  return out;
}

uint64_t ConstantFingerprint(const uint64_t*, uint32_t) { return 0x42; }

TEST(MapOutputBufferTest, ForcedCollisionsStillGroupExactly) {
  // Every key gets the same fingerprint: grouping must fall back to the
  // full-key compare and keep distinct keys apart.
  MapOutputBuffer buffer(&ConstantFingerprint);
  const int kKeys = 50;
  for (int round = 0; round < 3; ++round) {
    for (int k = 0; k < kKeys; ++k) {
      buffer.Emit(Tuple::Ints({k, k + 1}), /*tag=*/1,
                  /*aux=*/static_cast<uint32_t>(round), /*wire_bytes=*/2.0);
    }
  }
  EXPECT_EQ(buffer.num_keys(), static_cast<size_t>(kKeys));
  EXPECT_EQ(buffer.num_messages(), static_cast<size_t>(3 * kKeys));
  // Every probe for key k != first hit the same fingerprint: collisions
  // must have been detected (and resolved).
  EXPECT_GT(buffer.fingerprint_collisions(), 0u);

  Shuffle shuffle(1, /*pack_messages=*/true);
  ShuffleTaskIo io = shuffle.AddTaskOutput(0, std::move(buffer)).value();
  EXPECT_EQ(io.records, static_cast<size_t>(kKeys));
  EXPECT_EQ(io.messages, static_cast<size_t>(3 * kKeys));
  ASSERT_TRUE(shuffle.Partition(4).ok());
  auto parts = Collect(shuffle);
  // All records share the fingerprint, so they all land in one partition —
  // with 50 distinct, sorted, fully-populated groups.
  size_t nonempty = 0;
  for (const auto& groups : parts) {
    if (groups.empty()) continue;
    ++nonempty;
    ASSERT_EQ(groups.size(), static_cast<size_t>(kKeys));
    for (size_t i = 0; i < groups.size(); ++i) {
      EXPECT_EQ(groups[i].values.size(), 3u);
      // aux records emission round order within the key.
      for (uint32_t r = 0; r < 3; ++r) EXPECT_EQ(groups[i].values[r].aux, r);
      if (i > 0) {
        EXPECT_TRUE(groups[i - 1].key < groups[i].key);
      }
    }
  }
  EXPECT_EQ(nonempty, 1u);
}

TEST(MapOutputBufferTest, PrehashedEmissionMatchesPlain) {
  MapOutputBuffer plain;
  MapOutputBuffer prehashed;
  for (int k = 0; k < 20; ++k) {
    Tuple key = Tuple::Ints({k % 5, k});
    plain.Emit(key, 1, 0, 4.0);
    prehashed.EmitPrehashed(key, key.Hash(), 1, 0, 4.0);
  }
  EXPECT_EQ(plain.num_keys(), prehashed.num_keys());
  EXPECT_EQ(plain.num_messages(), prehashed.num_messages());
  double wp = 0.0, wq = 0.0;
  size_t rp = 0, rq = 0;
  plain.AccountWire(true, &wp, &rp);
  prehashed.AccountWire(true, &wq, &rq);
  EXPECT_EQ(wp, wq);
  EXPECT_EQ(rp, rq);
}

TEST(ShuffleFlatTest, MergesEqualKeysAcrossTasksInTaskOrder) {
  Shuffle shuffle(3, /*pack_messages=*/true);
  for (uint32_t task = 0; task < 3; ++task) {
    MapOutputBuffer buffer;
    // Every task emits the same two keys; aux encodes the task so the
    // merged order is observable.
    buffer.Emit(Tuple::Ints({1}), 1, task, 2.0);
    buffer.Emit(Tuple::Ints({2}), 1, task, 2.0);
    buffer.Emit(Tuple::Ints({1}), 2, task, 2.0);
    ASSERT_TRUE(shuffle.AddTaskOutput(task, std::move(buffer)).ok());
  }
  ASSERT_TRUE(shuffle.Partition(1).ok());
  auto parts = Collect(shuffle);
  ASSERT_EQ(parts[0].size(), 2u);
  const CollectedGroup& g1 = parts[0][0];
  EXPECT_EQ(g1.key, Tuple::Ints({1}));
  ASSERT_EQ(g1.values.size(), 6u);  // two per task, three tasks
  for (size_t i = 0; i < 6; ++i) {
    EXPECT_EQ(g1.values[i].aux, static_cast<uint32_t>(i / 2));  // task order
    EXPECT_EQ(g1.values[i].tag, i % 2 == 0 ? 1u : 2u);  // emission order
  }
}

// ---- Old-vs-new representation equivalence ----------------------------------

// Reference implementation of the pre-flat shuffle over (Tuple, message)
// pairs: per-task unordered_map grouping in first-seen order (or raw
// singleton records), Tuple::Hash() % r partitioning in (task, emission)
// order, stable per-partition sort by key, equal-key merge.
std::vector<std::vector<CollectedGroup>> ReferenceShuffle(
    const std::vector<std::vector<std::pair<Tuple, CollectedMessage>>>& tasks,
    int r, bool pack) {
  std::vector<std::vector<CollectedGroup>> task_records(tasks.size());
  for (size_t ti = 0; ti < tasks.size(); ++ti) {
    if (pack) {
      std::unordered_map<Tuple, size_t> index;
      for (const auto& [key, msg] : tasks[ti]) {
        auto [it, inserted] = index.emplace(key, task_records[ti].size());
        if (inserted) task_records[ti].push_back({key, {}});
        task_records[ti][it->second].values.push_back(msg);
      }
    } else {
      for (const auto& [key, msg] : tasks[ti]) {
        task_records[ti].push_back({key, {msg}});
      }
    }
  }
  std::vector<std::vector<const CollectedGroup*>> parts(
      static_cast<size_t>(r));
  for (const auto& records : task_records) {
    for (const CollectedGroup& rec : records) {
      parts[rec.key.Hash() % static_cast<uint64_t>(r)].push_back(&rec);
    }
  }
  std::vector<std::vector<CollectedGroup>> out(static_cast<size_t>(r));
  for (size_t p = 0; p < parts.size(); ++p) {
    std::stable_sort(parts[p].begin(), parts[p].end(),
                     [](const CollectedGroup* a, const CollectedGroup* b) {
                       return a->key < b->key;
                     });
    for (size_t i = 0; i < parts[p].size();) {
      size_t j = i + 1;
      while (j < parts[p].size() && parts[p][j]->key == parts[p][i]->key) ++j;
      CollectedGroup g;
      g.key = parts[p][i]->key;
      for (size_t k = i; k < j; ++k) {
        g.values.insert(g.values.end(), parts[p][k]->values.begin(),
                        parts[p][k]->values.end());
      }
      out[p].push_back(std::move(g));
      i = j;
    }
  }
  return out;
}

TEST(ShuffleFlatTest, MatchesReferenceRepresentationOnRandomStreams) {
  for (uint64_t seed : {1ull, 7ull, 99ull}) {
    for (bool pack : {true, false}) {
      Xoshiro256 rng(seed);
      const size_t num_tasks = 3;
      const int r = 4;
      std::vector<std::vector<std::pair<Tuple, CollectedMessage>>> emissions(
          num_tasks);
      Shuffle shuffle(num_tasks, pack);
      for (size_t ti = 0; ti < num_tasks; ++ti) {
        MapOutputBuffer buffer;
        const size_t n = 100 + rng.Uniform(100);
        for (size_t e = 0; e < n; ++e) {
          // Small key domain -> plenty of shared keys; mixed arity.
          Tuple key;
          const uint32_t key_arity = 1 + rng.Uniform(2);
          for (uint32_t i = 0; i < key_arity; ++i) {
            key.PushBack(Value::Int(static_cast<int64_t>(rng.Uniform(8))));
          }
          CollectedMessage msg;
          msg.tag = 1 + static_cast<uint32_t>(rng.Uniform(2));
          msg.aux = static_cast<uint32_t>(rng.Uniform(4));
          const uint32_t payload_arity = rng.Uniform(6);  // 0..5: spills too
          for (uint32_t i = 0; i < payload_arity; ++i) {
            msg.payload.PushBack(
                Value::Int(static_cast<int64_t>(rng.Uniform(100)) - 50));
          }
          msg.wire_bytes = 3.0 + static_cast<double>(msg.tag);
          if (msg.payload.empty()) {
            buffer.Emit(key, msg.tag, msg.aux, msg.wire_bytes);
          } else {
            buffer.Emit(key, msg.tag, msg.aux, msg.payload, msg.wire_bytes);
          }
          emissions[ti].push_back({std::move(key), std::move(msg)});
        }
        ASSERT_TRUE(shuffle.AddTaskOutput(ti, std::move(buffer)).ok());
      }
      ASSERT_TRUE(shuffle.Partition(r).ok());
      auto flat = Collect(shuffle);
      auto reference = ReferenceShuffle(emissions, r, pack);
      ASSERT_EQ(flat.size(), reference.size());
      for (size_t p = 0; p < flat.size(); ++p) {
        ASSERT_EQ(flat[p].size(), reference[p].size())
            << "partition " << p << " seed " << seed << " pack " << pack;
        for (size_t g = 0; g < flat[p].size(); ++g) {
          EXPECT_EQ(flat[p][g].key, reference[p][g].key);
          ASSERT_EQ(flat[p][g].values.size(), reference[p][g].values.size());
          for (size_t v = 0; v < flat[p][g].values.size(); ++v) {
            EXPECT_TRUE(flat[p][g].values[v] == reference[p][g].values[v])
                << "partition " << p << " group " << g << " value " << v;
          }
        }
      }
      // Wire accounting: every record pays its key header once (packed:
      // one per distinct key per task) or once per message (unpacked),
      // recomputed here from the raw emission stream.
      double expected_wire = 0.0;
      if (pack) {
        for (const auto& task : emissions) {
          std::map<std::vector<uint64_t>, double> per_key;
          for (const auto& [key, msg] : task) {
            std::vector<uint64_t> words;
            key.EncodeTo(&words);
            auto [it, inserted] =
                per_key.emplace(std::move(words), 10.0 * key.size());
            it->second += msg.wire_bytes;
          }
          for (const auto& [k, b] : per_key) expected_wire += b;
        }
      } else {
        for (const auto& task : emissions) {
          for (const auto& [key, msg] : task) {
            expected_wire += 10.0 * key.size() + msg.wire_bytes;
          }
        }
      }
      double actual_wire = 0.0;
      for (int p = 0; p < r; ++p) {
        actual_wire += shuffle.PartitionWireBytes(static_cast<size_t>(p));
      }
      EXPECT_NEAR(actual_wire, expected_wire, 1e-6);
    }
  }
}

// ---- Promoted release-mode invariants (DESIGN.md §11) -----------------------
// These used to be debug-only asserts; they now hold in release builds
// as typed Internal errors, so a production misuse fails closed instead
// of corrupting the shuffle.

TEST(ShuffleInvariantTest, TaskIndexOutOfRangeIsInternal) {
  Shuffle shuffle(2, /*pack_messages=*/true);
  auto r = shuffle.AddTaskOutput(2, MapOutputBuffer());
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInternal);
}

TEST(ShuffleInvariantTest, DoubleIngestionIsInternal) {
  Shuffle shuffle(2, /*pack_messages=*/true);
  MapOutputBuffer first;
  first.Emit(Tuple::Ints({1}), 1, 0, 2.0);
  ASSERT_TRUE(shuffle.AddTaskOutput(0, std::move(first)).ok());
  MapOutputBuffer again;
  again.Emit(Tuple::Ints({2}), 1, 0, 2.0);
  auto r = shuffle.AddTaskOutput(0, std::move(again));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInternal);
}

TEST(ShuffleInvariantTest, NonPositivePartitionCountIsInternal) {
  Shuffle shuffle(1, /*pack_messages=*/true);
  ASSERT_TRUE(shuffle.AddTaskOutput(0, MapOutputBuffer()).ok());
  const Status s = shuffle.Partition(0);
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInternal);
}

TEST(ShuffleInvariantTest, PartitioningTwiceIsInternal) {
  Shuffle shuffle(1, /*pack_messages=*/true);
  MapOutputBuffer buffer;
  buffer.Emit(Tuple::Ints({1}), 1, 0, 2.0);
  ASSERT_TRUE(shuffle.AddTaskOutput(0, std::move(buffer)).ok());
  ASSERT_TRUE(shuffle.Partition(2).ok());
  const Status s = shuffle.Partition(2);
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInternal);
}

}  // namespace
}  // namespace gumbo::mr
