// Tests for the sharded execution stack (DESIGN.md §13): wire frames,
// transports, shuffle export/import, and the oracle of the whole design —
// sharded runs (in-process threads and real worker processes) are
// byte-identical (words + fingerprints) to the single-process runtime at
// any shard count.
#include <gtest/gtest.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <string>
#include <thread>
#include <type_traits>
#include <vector>

#include "common/cancel.h"
#include "common/config.h"
#include "common/dictionary.h"
#include "data/workloads.h"
#include "dist/cluster.h"
#include "dist/sharded.h"
#include "dist/transport.h"
#include "dist/wire.h"
#include "mr/engine.h"
#include "mr/map_output.h"
#include "mr/shuffle.h"
#include "plan/executor.h"
#include "plan/planner.h"
#include "serve/service.h"
#include "test_util.h"

#ifndef GUMBO_WORKER_BIN
#define GUMBO_WORKER_BIN ""
#endif

namespace gumbo::dist {
namespace {

using ::gumbo::testing::MakeRelation;

// ---- Wire frames ------------------------------------------------------------

TEST(WireTest, FrameRoundTripsTypedFields) {
  FrameWriter w;
  w.U32(7);
  w.U64(0xDEADBEEFCAFEF00DULL);
  w.F64(-1234.5);
  w.Str("hello wire");
  const std::vector<uint64_t> words = {1, 2, 3};
  w.Words(words.data(), words.size());
  const std::vector<uint8_t> frame =
      w.Finish(FrameType::kJobStats, /*src_shard=*/3, /*aux=*/9);
  EXPECT_EQ(w.body_bytes(), 0u);  // writer reusable after Finish

  auto rd = FrameReader::Parse(frame);
  ASSERT_OK(rd);
  EXPECT_EQ(rd->type(), FrameType::kJobStats);
  EXPECT_EQ(rd->src_shard(), 3u);
  EXPECT_EQ(rd->aux(), 9u);
  uint32_t u32 = 0;
  uint64_t u64 = 0;
  double f64 = 0.0;
  std::string s;
  std::vector<uint64_t> back;
  ASSERT_OK(rd->ReadU32(&u32));
  ASSERT_OK(rd->ReadU64(&u64));
  ASSERT_OK(rd->ReadF64(&f64));
  ASSERT_OK(rd->ReadStr(&s));
  ASSERT_OK(rd->ReadWords(words.size(), &back));
  EXPECT_EQ(u32, 7u);
  EXPECT_EQ(u64, 0xDEADBEEFCAFEF00DULL);
  EXPECT_EQ(f64, -1234.5);
  EXPECT_EQ(s, "hello wire");
  EXPECT_EQ(back, words);
  EXPECT_EQ(rd->remaining(), 0u);
  // Over-reads are bounds-checked, not UB.
  EXPECT_FALSE(rd->ReadU32(&u32).ok());
}

// The nasty-value gauntlet: negatives, interned string ids (high-bit
// words at kStringBase), wide rows (heap Tuples), and 0-arity rows must
// all survive a relation round-trip with words AND stored fingerprints
// bit-for-bit intact.
TEST(WireTest, RelationRoundTripsNastyValues) {
  Relation rel("nasty", 4);
  Dictionary* dict = &Dictionary::Global();
  {
    Tuple t;
    t.PushBack(Value::Int(-1));
    t.PushBack(Value::Int(std::numeric_limits<int32_t>::min()));
    t.PushBack(dict->Intern("wire-string-a"));
    t.PushBack(Value::Int(0));
    ASSERT_OK(rel.Add(t));
  }
  {
    Tuple t;
    t.PushBack(dict->Intern("wire-string-b"));
    t.PushBack(dict->Intern(""));
    t.PushBack(Value::Int(-987654321));
    t.PushBack(dict->Intern("wire-string-a"));
    ASSERT_OK(rel.Add(t));
  }
  rel.set_bytes_per_tuple(40.0);
  rel.set_representation_scale(250000.0);

  const std::vector<uint8_t> frame = EncodeRelationFrame(rel, /*src=*/1);
  auto rd = FrameReader::Parse(frame);
  ASSERT_OK(rd);
  EXPECT_EQ(rd->type(), FrameType::kRelation);
  auto back = DecodeRelationBody(&*rd);
  ASSERT_OK(back);
  EXPECT_EQ(back->name(), "nasty");
  EXPECT_EQ(back->arity(), 4u);
  EXPECT_EQ(back->words(), rel.words());
  EXPECT_EQ(back->fingerprints(), rel.fingerprints());
  EXPECT_EQ(back->bytes_per_tuple(), 40.0);
  EXPECT_EQ(back->representation_scale(), 250000.0);
  // The decoded string ids still resolve.
  EXPECT_EQ(back->view(0)[2].string_id(), dict->Intern("wire-string-a").string_id());
}

TEST(WireTest, RelationRoundTripsZeroArityRows) {
  Relation rel("unit", 0);
  ASSERT_OK(rel.Add(Tuple{}));
  ASSERT_OK(rel.Add(Tuple{}));
  const std::vector<uint8_t> frame = EncodeRelationFrame(rel, /*src=*/0);
  auto rd = FrameReader::Parse(frame);
  ASSERT_OK(rd);
  auto back = DecodeRelationBody(&*rd);
  ASSERT_OK(back);
  EXPECT_EQ(back->arity(), 0u);
  EXPECT_EQ(back->size(), 2u);
  EXPECT_EQ(back->fingerprints(), rel.fingerprints());
}

TEST(WireTest, RejectsTruncatedForeignSkewedAndCorruptFrames) {
  const std::vector<uint8_t> frame =
      EncodeRelationFrame(MakeRelation("r", 2, {{1, 2}, {3, -4}}), 0);
  ASSERT_GT(frame.size(), kFrameHeaderBytes);

  {  // truncated: shorter than the header
    std::vector<uint8_t> t(frame.begin(), frame.begin() + 10);
    EXPECT_FALSE(FrameReader::Parse(t).ok());
  }
  {  // truncated: header promises more body than present
    std::vector<uint8_t> t(frame.begin(), frame.end() - 1);
    EXPECT_FALSE(FrameReader::Parse(t).ok());
  }
  {  // foreign magic (offset 0)
    std::vector<uint8_t> t = frame;
    t[0] ^= 0xFF;
    EXPECT_FALSE(FrameReader::Parse(t).ok());
  }
  {  // version skew (offset 4)
    std::vector<uint8_t> t = frame;
    t[4] += 1;
    EXPECT_FALSE(FrameReader::Parse(t).ok());
  }
  {  // corrupt body -> checksum mismatch
    std::vector<uint8_t> t = frame;
    t[kFrameHeaderBytes] ^= 0x01;
    auto r = FrameReader::Parse(t);
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), StatusCode::kParseError);
  }
  // The untouched frame still parses (the mutations above were the
  // problem, not the fixture).
  EXPECT_OK(FrameReader::Parse(frame));
}

TEST(WireTest, ErrorFrameCarriesStatus) {
  const Status s = Status::Unavailable("shard 2 lost its replica");
  const std::vector<uint8_t> frame = EncodeErrorFrame(s, /*src=*/2);
  auto rd = FrameReader::Parse(frame);
  ASSERT_OK(rd);
  ASSERT_EQ(rd->type(), FrameType::kError);
  const Status back = DecodeErrorBody(&*rd);
  EXPECT_EQ(back.code(), StatusCode::kUnavailable);
  EXPECT_NE(back.ToString().find("shard 2 lost its replica"),
            std::string::npos);
}

// ---- Shuffle export / import ------------------------------------------------

// One exported record, flattened for comparison.
struct FlatRecord {
  uint32_t key_arity = 0;
  uint64_t fingerprint = 0;
  double wire_bytes = 0.0;
  std::vector<uint64_t> key;
  // Per message: tag, aux, payload words, wire bytes.
  std::vector<std::tuple<uint32_t, uint32_t, std::vector<uint64_t>, double>>
      msgs;
  bool operator==(const FlatRecord& o) const {
    return key_arity == o.key_arity && fingerprint == o.fingerprint &&
           wire_bytes == o.wire_bytes && key == o.key && msgs == o.msgs;
  }
};

std::vector<FlatRecord> FlattenTask(const mr::Shuffle& sh, size_t ti) {
  std::vector<FlatRecord> out;
  sh.ForEachTaskRecord(
      ti, [&](const mr::Shuffle::KeyEntry& e, const uint64_t* key_words,
              const mr::Message* msgs, const uint64_t* payload_arena) {
        FlatRecord r;
        r.key_arity = e.key_arity;
        r.fingerprint = e.fingerprint;
        r.wire_bytes = e.wire_bytes;
        r.key.assign(key_words, key_words + e.key_arity);
        for (uint32_t i = 0; i < e.msg_count; ++i) {
          const mr::Message& m = msgs[i];
          const uint64_t* p = m.payload_words(payload_arena);
          r.msgs.emplace_back(m.tag, m.aux,
                              std::vector<uint64_t>(p, p + m.payload_size),
                              m.wire_bytes);
        }
        out.push_back(std::move(r));
      });
  return out;
}

// Exporting every record of one shuffle and importing it into a fresh one
// (the sharded runtime's exchange path, minus the transport) must
// reproduce keys, fingerprints, payloads — including heap-spilled ones —
// and wire accounting verbatim.
TEST(ShuffleWireTest, ExportImportRoundTripsRecords) {
  for (const bool pack : {true, false}) {
    SCOPED_TRACE(pack ? "packed" : "unpacked");
    mr::Shuffle src(/*num_map_tasks=*/2, pack);
    {
      mr::MapOutputBuffer buf;
      Tuple spilled;  // 3 values > Message::kInlinePayloadValues -> arena
      spilled.PushBack(Value::Int(-7));
      spilled.PushBack(Value::Int(1ull << 40));
      spilled.PushBack(Dictionary::Global().Intern("spill"));
      buf.Emit(Tuple{Value::Int(5)}, /*tag=*/1, /*aux=*/0, spilled, 34.0);
      buf.Emit(Tuple{Value::Int(5)}, /*tag=*/0, /*aux=*/3, 14.0);  // packed pair
      buf.Emit(Tuple{Value::Int(-5)}, /*tag=*/2, /*aux=*/1,
               Tuple{Value::Int(9)}, 24.0);  // inline payload
      ASSERT_OK(src.AddTaskOutput(0, std::move(buf)));
    }
    {
      mr::MapOutputBuffer buf;
      buf.Emit(Tuple{Value::Int(5)}, /*tag=*/0, /*aux=*/7, 14.0);
      ASSERT_OK(src.AddTaskOutput(1, std::move(buf)));
    }

    mr::Shuffle dst(/*num_map_tasks=*/2, pack);
    for (size_t ti = 0; ti < 2; ++ti) {
      src.ForEachTaskRecord(
          ti, [&](const mr::Shuffle::KeyEntry& e, const uint64_t* key_words,
                  const mr::Message* msgs, const uint64_t* payload_arena) {
            std::vector<mr::Shuffle::ImportMessage> im(e.msg_count);
            for (uint32_t i = 0; i < e.msg_count; ++i) {
              im[i].tag = msgs[i].tag;
              im[i].aux = msgs[i].aux;
              im[i].payload_size = msgs[i].payload_size;
              im[i].wire_bytes = msgs[i].wire_bytes;
              im[i].payload = msgs[i].payload_words(payload_arena);
            }
            ASSERT_OK(dst.ImportTaskRecord(ti, key_words, e.key_arity,
                                           e.fingerprint, e.wire_bytes,
                                           im.data(), im.size()));
          });
    }

    for (size_t ti = 0; ti < 2; ++ti) {
      EXPECT_EQ(FlattenTask(src, ti), FlattenTask(dst, ti))
          << "task " << ti;
    }
  }
}

// ---- Transports -------------------------------------------------------------

TEST(TransportTest, InProcDeliversPerChannelInOrder) {
  InProcTransport tp(3);
  EXPECT_EQ(tp.endpoints(), 3);
  ASSERT_OK(tp.Send(0, 2, {1}));
  ASSERT_OK(tp.Send(1, 2, {2}));
  ASSERT_OK(tp.Send(0, 2, {3}));
  // Channels are independent; within (0 -> 2), send order holds.
  auto a = tp.Recv(2, 0, /*timeout_ms=*/1000);
  auto b = tp.Recv(2, 1, /*timeout_ms=*/1000);
  auto c = tp.Recv(2, 0, /*timeout_ms=*/1000);
  ASSERT_OK(a);
  ASSERT_OK(b);
  ASSERT_OK(c);
  EXPECT_EQ((*a)[0], 1);
  EXPECT_EQ((*b)[0], 2);
  EXPECT_EQ((*c)[0], 3);
}

TEST(TransportTest, InProcRecvTimesOut) {
  InProcTransport tp(2);
  auto r = tp.Recv(1, 0, /*timeout_ms=*/10);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kDeadlineExceeded);
}

TEST(TransportTest, MmapRoundTripsFramesThroughADirectory) {
  char dir_template[] = "/tmp/gumbo_dist_test_XXXXXX";
  ASSERT_NE(mkdtemp(dir_template), nullptr);
  const std::string dir = dir_template;
  {
    // Two transport instances over one mailbox, as two processes would.
    MmapTransport sender(dir, 2);
    MmapTransport receiver(dir, 2);
    const std::vector<uint8_t> f1 = {0xAA, 0xBB, 0xCC};
    const std::vector<uint8_t> f2(4096, 0x5E);  // multi-page payload
    ASSERT_OK(sender.Send(0, 1, f1));
    ASSERT_OK(sender.Send(0, 1, f2));
    auto r1 = receiver.Recv(1, 0, /*timeout_ms=*/5000);
    auto r2 = receiver.Recv(1, 0, /*timeout_ms=*/5000);
    ASSERT_OK(r1);
    ASSERT_OK(r2);
    EXPECT_EQ(*r1, f1);
    EXPECT_EQ(*r2, f2);
    auto empty = receiver.Recv(1, 0, /*timeout_ms=*/10);
    ASSERT_FALSE(empty.ok());
    EXPECT_EQ(empty.status().code(), StatusCode::kDeadlineExceeded);
  }
  std::filesystem::remove_all(dir);
}

// ---- Sharded execution: the byte-identity oracle ----------------------------

cost::ClusterConfig TestCluster() {
  cost::ClusterConfig c;
  c.split_mb = 0.0005;       // many map tasks even on tiny samples
  c.mb_per_reducer = 0.0005; // several reduce partitions
  return c;
}

Result<data::Workload> SmallWorkload(const std::string& name) {
  data::GeneratorConfig g;
  g.tuples = 400;
  g.representation_scale = 1.0;
  g.seed = 7;
  if (name == "A1") return data::MakeA(1, g);
  if (name == "A3") return data::MakeA(3, g);
  if (name == "B1") return data::MakeB(1, g);
  return Status::InvalidArgument("unknown workload " + name);
}

// name -> (words, fingerprints) of every query output.
using OutputBytes =
    std::map<std::string,
             std::pair<std::vector<uint64_t>, std::vector<uint64_t>>>;

OutputBytes RunWorkload(const std::string& wl, int local_shards,
                        double* dist_wire_mb = nullptr) {
  OutputBytes out;
  auto w = SmallWorkload(wl);
  EXPECT_OK(w);
  if (!w.ok()) return out;
  const cost::ClusterConfig config = TestCluster();
  plan::Planner planner(config, plan::PlannerOptions{});
  auto plan = planner.Plan(w->query, w->db);
  EXPECT_OK(plan);
  if (!plan.ok()) return out;
  mr::Engine engine(config);
  plan::ExecutionContext ectx;
  ectx.local_shards = local_shards;
  auto result = plan::ExecutePlan(*plan, &engine, &w->db, ectx);
  EXPECT_OK(result);
  if (!result.ok()) return out;
  if (dist_wire_mb != nullptr) *dist_wire_mb = result->metrics.dist_wire_mb;
  for (const auto& q : w->query.subqueries()) {
    auto rel = w->db.Get(q.output());
    EXPECT_OK(rel);
    if (!rel.ok()) continue;
    out[q.output()] = {(*rel)->words(), (*rel)->fingerprints()};
  }
  return out;
}

TEST(ShardedTest, ByteIdenticalToSingleProcessAtAnyShardCount) {
  for (const std::string wl : {"A1", "A3", "B1"}) {
    const OutputBytes reference = RunWorkload(wl, /*local_shards=*/1);
    ASSERT_FALSE(reference.empty()) << wl;
    for (const int shards : {2, 3, 4}) {
      SCOPED_TRACE(wl + " at " + std::to_string(shards) + " shards");
      double wire_mb = 0.0;
      const OutputBytes sharded = RunWorkload(wl, shards, &wire_mb);
      EXPECT_EQ(sharded, reference);
      // Real frames crossed the (in-process) wire and were charged.
      EXPECT_GT(wire_mb, 0.0);
    }
  }
}

TEST(ShardedTest, SingleShardChargesNoWireBytes) {
  double wire_mb = -1.0;
  RunWorkload("A1", /*local_shards=*/1, &wire_mb);
  EXPECT_EQ(wire_mb, 0.0);
}

// ExecutionContext's cluster branch (a borrowed Cluster handle, the path
// the worker binary takes) must behave exactly like local_shards.
TEST(ShardedTest, ExplicitClusterMatchesLocalHarness) {
  const OutputBytes reference = RunWorkload("A3", /*local_shards=*/1);
  ASSERT_FALSE(reference.empty());

  const int shards = 3;
  InProcTransport tp(shards);
  std::vector<std::optional<OutputBytes>> results(shards);
  std::vector<std::thread> threads;
  for (int s = 0; s < shards; ++s) {
    threads.emplace_back([&, s] {
      auto w = SmallWorkload("A3");
      ASSERT_OK(w);
      const cost::ClusterConfig config = TestCluster();
      plan::Planner planner(config, plan::PlannerOptions{});
      auto plan = planner.Plan(w->query, w->db);
      ASSERT_OK(plan);
      mr::Engine engine(config);
      Cluster cluster{&tp, s, shards};
      plan::ExecutionContext ectx;
      ectx.cluster = &cluster;
      auto result = plan::ExecutePlan(*plan, &engine, &w->db, ectx);
      ASSERT_OK(result);
      OutputBytes out;
      for (const auto& q : w->query.subqueries()) {
        auto rel = w->db.Get(q.output());
        ASSERT_OK(rel);
        out[q.output()] = {(*rel)->words(), (*rel)->fingerprints()};
      }
      results[s] = std::move(out);
    });
  }
  for (std::thread& t : threads) t.join();
  // Every replica — coordinator and workers — committed the same bytes.
  for (int s = 0; s < shards; ++s) {
    ASSERT_TRUE(results[s].has_value()) << "shard " << s;
    EXPECT_EQ(*results[s], reference) << "shard " << s;
  }
}

// ---- Multi-process: the worker binary over an mmap mailbox ------------------

std::string WorkerBin() {
  const char* env = std::getenv("GUMBO_WORKER_BIN");
  if (env != nullptr && *env != '\0') return env;
  return GUMBO_WORKER_BIN;
}

TEST(ShardedProcessTest, FourWorkerProcessesMatchSingleProcessBytes) {
  const std::string bin = WorkerBin();
  if (bin.empty() || !std::filesystem::exists(bin)) {
    GTEST_SKIP() << "worker binary unavailable (build examples or set "
                    "GUMBO_WORKER_BIN)";
  }

  // Reference: what the worker computes in one process. Mirrors the
  // worker binary's workload construction (400 tuples, seed 11).
  data::GeneratorConfig g;
  g.tuples = 400;
  g.seed = 11;
  g.representation_scale = 100e6 / 400.0;
  auto w = data::MakeA(3, g);
  ASSERT_OK(w);
  cost::ClusterConfig config;
  plan::Planner planner(config, plan::PlannerOptions{});
  auto plan = planner.Plan(w->query, w->db);
  ASSERT_OK(plan);
  mr::Engine engine(config);
  ASSERT_OK(plan::ExecutePlan(*plan, &engine, &w->db,
                              plan::ExecutionContext{}));

  char dir_template[] = "/tmp/gumbo_dist_proc_XXXXXX";
  ASSERT_NE(mkdtemp(dir_template), nullptr);
  const std::string dir = dir_template;

  const int shards = 4;
  std::vector<pid_t> pids;
  for (int s = 0; s < shards; ++s) {
    const std::string a_shard = "--shard=" + std::to_string(s);
    const std::string a_dir = "--dir=" + dir;
    const pid_t pid = fork();
    ASSERT_GE(pid, 0);
    if (pid == 0) {
      const char* argv[] = {bin.c_str(),     a_shard.c_str(), "--shards=4",
                            a_dir.c_str(),   "--workload=A3", "--tuples=400",
                            "--seed=11",     nullptr};
      execv(bin.c_str(), const_cast<char* const*>(argv));
      _exit(127);
    }
    pids.push_back(pid);
  }
  for (const pid_t pid : pids) {
    int status = 0;
    ASSERT_EQ(waitpid(pid, &status, 0), pid);
    ASSERT_TRUE(WIFEXITED(status));
    EXPECT_EQ(WEXITSTATUS(status), 0);
  }

  for (const auto& q : w->query.subqueries()) {
    SCOPED_TRACE(q.output());
    auto want = w->db.Get(q.output());
    ASSERT_OK(want);
    std::ifstream in(dir + "/out_" + q.output() + ".rel", std::ios::binary);
    ASSERT_TRUE(in.good()) << "worker published no frame";
    std::vector<uint8_t> frame((std::istreambuf_iterator<char>(in)),
                               std::istreambuf_iterator<char>());
    auto rd = FrameReader::Parse(frame);
    ASSERT_OK(rd);
    auto got = DecodeRelationBody(&*rd);
    ASSERT_OK(got);
    EXPECT_EQ(got->words(), (*want)->words());
    EXPECT_EQ(got->fingerprints(), (*want)->fingerprints());
  }
  std::filesystem::remove_all(dir);
}

// ---- Configuration + serve integration --------------------------------------

TEST(DistConfigTest, KnobsFlowThroughScopedOverrideIntoServiceOptions) {
  common::RuntimeConfig cfg;
  cfg.shards = 3;
  cfg.transport = "mmap";
  cfg.dist_dir = "/tmp/gumbo-mailbox";
  common::RuntimeConfig::ScopedOverride guard(cfg);
  EXPECT_EQ(common::RuntimeConfig::Get().shards.value_or(1), 3);
  EXPECT_NE(common::RuntimeConfig::Get().Describe().find("GUMBO_SHARDS"),
            std::string::npos);

  // The service layers the env knobs over its programmatic defaults.
  auto w = SmallWorkload("A1");
  ASSERT_OK(w);
  serve::QueryService service(
      static_cast<const Database*>(&w->db), serve::ServiceOptions{});
  EXPECT_EQ(service.options().dist.shards, 3);
  EXPECT_EQ(service.options().dist.transport, "mmap");
  EXPECT_EQ(service.options().dist.dir, "/tmp/gumbo-mailbox");
}

TEST(ServeApiTest, QueryOptionsBuilderAndResponseShim) {
  // The deprecation shims are part of the API contract.
  static_assert(std::is_same_v<serve::QueryResponse, serve::Response>,
                "QueryResponse must alias Response");
  static_assert(std::is_same_v<serve::QueryMetrics, plan::Metrics>,
                "QueryMetrics must alias plan::Metrics");
  CancelToken token;
  const serve::QueryOptions q = serve::QueryOptions()
                                    .WithDeadlineMs(123.0)
                                    .WithPriority(SchedPriority::kHigh)
                                    .WithCancel(&token);
  EXPECT_EQ(q.deadline_ms, 123.0);
  EXPECT_EQ(q.priority, SchedPriority::kHigh);
  EXPECT_EQ(q.cancel, &token);
  EXPECT_EQ(serve::QueryOptions{}.deadline_ms, 0.0);
}

TEST(ServeShardedTest, ShardedServiceAnswersByteIdentically) {
  auto w = SmallWorkload("A3");
  ASSERT_OK(w);
  const Database* db = &w->db;

  serve::ServiceOptions plain;
  plain.cluster = TestCluster();
  serve::ServiceOptions sharded = plain;
  sharded.dist.shards = 3;

  serve::Response a, b;
  {
    serve::QueryService service(db, plain);
    a = service.Run(w->query);
  }
  {
    serve::QueryService service(db, sharded);
    b = service.Run(w->query);
  }
  ASSERT_OK(a.status);
  ASSERT_OK(b.status);
  EXPECT_GT(b.metrics.dist_wire_mb, 0.0);
  EXPECT_EQ(a.metrics.dist_wire_mb, 0.0);
  for (const auto& q : w->query.subqueries()) {
    SCOPED_TRACE(q.output());
    auto ra = a.outputs.Get(q.output());
    auto rb = b.outputs.Get(q.output());
    ASSERT_OK(ra);
    ASSERT_OK(rb);
    EXPECT_EQ((*ra)->words(), (*rb)->words());
    EXPECT_EQ((*ra)->fingerprints(), (*rb)->fingerprints());
  }
}

}  // namespace
}  // namespace gumbo::dist
