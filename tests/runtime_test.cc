// Tests for the round runtime: round structure, concurrent execution of
// independent jobs, and determinism across scheduler worker counts and
// morsel sizes (DESIGN.md §9).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <thread>

#include "data/workloads.h"
#include "mr/runtime.h"
#include "plan/executor.h"
#include "plan/planner.h"
#include "sgf/naive_eval.h"
#include "test_util.h"

namespace gumbo::mr {
namespace {

using ::gumbo::testing::MakeRelation;

cost::ClusterConfig TestCluster() {
  cost::ClusterConfig c;
  c.split_mb = 0.0005;
  c.mb_per_reducer = 0.0005;
  return c;
}

data::GeneratorConfig SmallData() {
  data::GeneratorConfig g;
  g.tuples = 400;
  g.representation_scale = 1.0;
  g.seed = 7;
  return g;
}

// ---- Round structure --------------------------------------------------------

JobSpec NamedJob(const std::string& name) {
  JobSpec s;
  s.name = name;
  s.mapper_factory = [] { return nullptr; };
  s.reducer_factory = [] { return nullptr; };
  return s;
}

TEST(RuntimeTest, JobRoundsGroupByDependencyDepth) {
  // Diamond: a; b,c depend on a; d depends on b and c; e independent.
  Program p;
  size_t a = p.AddJob(NamedJob("a"));
  size_t b = p.AddJob(NamedJob("b"), {a});
  size_t c = p.AddJob(NamedJob("c"), {a});
  size_t d = p.AddJob(NamedJob("d"), {b, c});
  size_t e = p.AddJob(NamedJob("e"));
  std::vector<std::vector<size_t>> rounds = Runtime::JobRounds(p);
  ASSERT_EQ(rounds.size(), 3u);
  EXPECT_EQ(rounds[0], (std::vector<size_t>{a, e}));
  EXPECT_EQ(rounds[1], (std::vector<size_t>{b, c}));
  EXPECT_EQ(rounds[2], (std::vector<size_t>{d}));
}

TEST(RuntimeTest, JobRoundsOfEmptyProgram) {
  Program p;
  EXPECT_TRUE(Runtime::JobRounds(p).empty());
}

// ---- Concurrent execution --------------------------------------------------

// A mapper that, on its first fact, announces itself and then waits until
// `expected` map tasks across the program are running. If the runtime
// executed round jobs sequentially this would stall until the fallback
// deadline, and the concurrency assertion below would fail instead of
// hanging the suite.
class GateMapper : public Mapper {
 public:
  GateMapper(std::atomic<int>* started, int expected)
      : started_(started), expected_(expected) {}
  void Map(size_t, RowView fact, uint64_t,
           Emitter* emitter) override {
    if (!announced_) {
      announced_ = true;
      started_->fetch_add(1);
      auto deadline =
          std::chrono::steady_clock::now() + std::chrono::seconds(5);
      while (started_->load() < expected_ &&
             std::chrono::steady_clock::now() < deadline) {
        std::this_thread::yield();
      }
    }
    emitter->Emit(Tuple{fact[0]}, /*tag=*/0, /*aux=*/0, /*wire_bytes=*/4.0);
  }

 private:
  std::atomic<int>* started_;
  int expected_;
  bool announced_ = false;
};

class PassKeyReducer : public Reducer {
 public:
  void Reduce(TupleView key, const MessageGroup&,
              ReduceEmitter* emitter) override {
    emitter->Emit(0, Tuple{key[0]});
  }
};

JobSpec GateJob(const std::string& in, const std::string& out,
                std::atomic<int>* started, int expected) {
  JobSpec spec;
  spec.name = "gate-" + out;
  spec.inputs.push_back({in});
  JobOutput o;
  o.dataset = out;
  o.arity = 1;
  spec.outputs.push_back(o);
  spec.mapper_factory = [started, expected] {
    return std::make_unique<GateMapper>(started, expected);
  };
  spec.reducer_factory = [] { return std::make_unique<PassKeyReducer>(); };
  return spec;
}

TEST(RuntimeTest, IndependentJobsOfARoundRunConcurrently) {
  Database db;
  db.Put(MakeRelation("In", 1, {{1}, {2}, {3}}));
  // Two independent jobs whose mappers block until both are running: only
  // a concurrent runtime lets both gates open promptly.
  std::atomic<int> started{0};
  Program program;
  program.AddJob(GateJob("In", "OutA", &started, 2));
  program.AddJob(GateJob("In", "OutB", &started, 2));

  Scheduler scheduler(4);
  Engine engine(cost::ClusterConfig{}, &scheduler);
  Runtime runtime(&engine);
  auto stats = runtime.Execute(program, &db);
  ASSERT_OK(stats);

  ASSERT_EQ(stats->round_stats.size(), 1u);
  EXPECT_EQ(stats->round_stats[0].jobs.size(), 2u);
  EXPECT_EQ(stats->round_stats[0].max_concurrent, 2);
  EXPECT_EQ(stats->MaxConcurrentJobs(), 2);
  EXPECT_EQ(db.Get("OutA").value()->size(), 3u);
  EXPECT_EQ(db.Get("OutB").value()->size(), 3u);
}

TEST(RuntimeTest, SequentialOptionStillCorrect) {
  Database db;
  db.Put(MakeRelation("In", 1, {{1}, {2}, {3}}));
  std::atomic<int> started{0};
  Program program;
  // expected=1: the gate opens immediately; jobs run one-by-one.
  program.AddJob(GateJob("In", "OutA", &started, 1));
  program.AddJob(GateJob("In", "OutB", &started, 1));

  Scheduler scheduler(4);
  Engine engine(cost::ClusterConfig{}, &scheduler);
  RuntimeOptions options;
  options.concurrent_jobs = false;
  Runtime runtime(&engine, options);
  auto stats = runtime.Execute(program, &db);
  ASSERT_OK(stats);
  EXPECT_EQ(stats->round_stats[0].max_concurrent, 1);
  EXPECT_EQ(db.Get("OutA").value()->size(), 3u);
  EXPECT_EQ(db.Get("OutB").value()->size(), 3u);
}

TEST(RuntimeTest, FailingJobSurfacesItsStatus) {
  Database db;
  db.Put(MakeRelation("In", 1, {{1}}));
  Program program;
  std::atomic<int> started{0};
  program.AddJob(GateJob("In", "OutA", &started, 1));
  program.AddJob(GateJob("Missing", "OutB", &started, 1));  // bad input
  Engine engine(cost::ClusterConfig{});
  auto stats = Runtime(&engine).Execute(program, &db);
  EXPECT_FALSE(stats.ok());
  EXPECT_EQ(stats.status().code(), StatusCode::kNotFound);
  // The failing round committed nothing.
  EXPECT_FALSE(db.Contains("OutA"));
}

// ---- PAR plans under the round scheduler ------------------------------------

TEST(RuntimeTest, ParPlanHasMultiJobFirstRound) {
  auto w = data::MakeA(1, SmallData());
  ASSERT_OK(w);
  plan::PlannerOptions opts;
  opts.strategy = plan::Strategy::kPar;
  cost::ClusterConfig config = TestCluster();
  plan::Planner planner(config, opts);
  Engine engine(config);
  Database db = w->db;
  auto result = plan::ExecuteAndVerify(w->query, planner, &engine, &db);
  ASSERT_OK(result);
  // A1 under PAR: 4 independent MSJ jobs in round 1, one EVAL in round 2.
  EXPECT_EQ(result->metrics.rounds, 2);
  EXPECT_EQ(result->metrics.max_jobs_per_round, 4);
  ASSERT_EQ(result->stats.round_stats.size(), 2u);
  EXPECT_EQ(result->stats.round_stats[0].jobs.size(), 4u);
  EXPECT_EQ(result->stats.round_stats[1].jobs.size(), 1u);
  EXPECT_GT(result->stats.RoundNetTime(), 0.0);
  EXPECT_GT(result->metrics.wall_ms, 0.0);
}

// ---- Determinism across pool sizes ------------------------------------------

// Executes workload `w` under `strategy` with a dedicated scheduler of
// `threads` workers; returns the output relations and metrics.
// `morsel_rows` != 0 shrinks the morsel size (1 = every row its own
// morsel — maximal interleaving and steal opportunity).
struct RunOutput {
  std::vector<std::vector<Tuple>> outputs;  // per subquery, tuple order
  plan::Metrics metrics;
};

RunOutput RunWithThreads(const data::Workload& w, plan::Strategy strategy,
                         size_t threads, bool concurrent_jobs = true,
                         ops::OpOptions op = ops::OpOptions{},
                         size_t morsel_rows = 0) {
  plan::PlannerOptions opts;
  opts.strategy = strategy;
  opts.sample_size = 64;
  opts.op = op;
  cost::ClusterConfig config = TestCluster();
  plan::Planner planner(config, opts);
  Scheduler scheduler(threads);
  SchedOptions sched_options = SchedOptions::FromEnv();
  if (morsel_rows != 0) sched_options.morsel_rows = morsel_rows;
  Engine engine(config, &scheduler, sched_options);
  RuntimeOptions roptions;
  roptions.concurrent_jobs = concurrent_jobs;
  Runtime runtime(&engine, roptions);
  Database db = w.db;
  auto plan = planner.Plan(w.query, db);
  EXPECT_TRUE(plan.ok()) << plan.status();
  auto result = plan::ExecutePlan(*plan, runtime, &db);
  EXPECT_TRUE(result.ok()) << result.status();
  RunOutput out;
  out.metrics = result->metrics;
  for (const auto& q : w.query.subqueries()) {
    out.outputs.push_back(db.Get(q.output()).value()->ToTuples());
  }
  return out;
}

TEST(RuntimeTest, ByteIdenticalAcrossPoolSizes) {
  for (plan::Strategy strategy :
       {plan::Strategy::kPar, plan::Strategy::kGreedy}) {
    auto w = data::MakeA(1, SmallData());
    ASSERT_OK(w);
    RunOutput one = RunWithThreads(*w, strategy, 1);
    RunOutput two = RunWithThreads(*w, strategy, 2);
    RunOutput eight = RunWithThreads(*w, strategy, 8);
    // Byte-identical outputs: same tuples in the same order, not just the
    // same set.
    EXPECT_EQ(one.outputs, two.outputs);
    EXPECT_EQ(one.outputs, eight.outputs);
    // Identical modeled metrics, bit for bit.
    EXPECT_EQ(one.metrics.communication_mb, two.metrics.communication_mb);
    EXPECT_EQ(one.metrics.communication_mb, eight.metrics.communication_mb);
    EXPECT_EQ(one.metrics.net_time, eight.metrics.net_time);
    EXPECT_EQ(one.metrics.total_time, eight.metrics.total_time);
    EXPECT_EQ(one.metrics.input_mb, eight.metrics.input_mb);
  }
}

// The flat shuffle representation (DESIGN.md §3) must stay byte-identical
// across pool sizes under every packing/combining mode — each mode takes
// a different path through AddTaskOutput (grouped, grouped-then-exploded,
// raw emission order).
TEST(RuntimeTest, ByteIdenticalAcrossPoolSizesForAllShuffleModes) {
  auto w = data::MakeA(1, SmallData());
  ASSERT_OK(w);
  for (bool pack : {true, false}) {
    for (bool combine : {true, false}) {
      ops::OpOptions op;
      op.pack_messages = pack;
      op.combiners = combine;
      RunOutput one = RunWithThreads(*w, plan::Strategy::kGreedy, 1,
                                     /*concurrent_jobs=*/true, op);
      RunOutput eight = RunWithThreads(*w, plan::Strategy::kGreedy, 8,
                                       /*concurrent_jobs=*/true, op);
      EXPECT_EQ(one.outputs, eight.outputs)
          << "pack=" << pack << " combine=" << combine;
      EXPECT_EQ(one.metrics.communication_mb, eight.metrics.communication_mb)
          << "pack=" << pack << " combine=" << combine;
      EXPECT_EQ(one.metrics.net_time, eight.metrics.net_time)
          << "pack=" << pack << " combine=" << combine;
    }
  }
}

// ---- Morsel-path byte-identity (DESIGN.md §9) -------------------------------

// Tiny morsels (every row its own morsel) at 1/2/8 workers: maximal
// chaining, interleaving, and steal opportunity (stealing is on by
// default; with one-row morsels and concurrent jobs every worker's deque
// is a constant steal target). All runs must be byte-identical to the
// default-morsel sequential reference: the scheduler only decides *when*
// morsels run — results commit by task index, and a chain preserves its
// task's emission order.
TEST(RuntimeTest, ByteIdenticalWithTinyMorselsAcrossWorkerCounts) {
  for (plan::Strategy strategy :
       {plan::Strategy::kPar, plan::Strategy::kGreedy}) {
    auto w = data::MakeA(1, SmallData());
    ASSERT_OK(w);
    RunOutput reference = RunWithThreads(*w, strategy, 1);
    for (size_t workers : {size_t{1}, size_t{2}, size_t{8}}) {
      RunOutput tiny =
          RunWithThreads(*w, strategy, workers, /*concurrent_jobs=*/true,
                         ops::OpOptions{}, /*morsel_rows=*/1);
      EXPECT_EQ(reference.outputs, tiny.outputs) << "workers=" << workers;
      EXPECT_EQ(reference.metrics.communication_mb,
                tiny.metrics.communication_mb)
          << "workers=" << workers;
      EXPECT_EQ(reference.metrics.net_time, tiny.metrics.net_time)
          << "workers=" << workers;
      EXPECT_EQ(reference.metrics.total_time, tiny.metrics.total_time)
          << "workers=" << workers;
    }
  }
}

// The packing/combining matrix again, this time on the tiny-morsel path:
// per-task combining and packing happen inside a chain, so the wire
// bytes must not depend on how finely the scan was chopped.
TEST(RuntimeTest, ByteIdenticalWithTinyMorselsForAllShuffleModes) {
  auto w = data::MakeA(1, SmallData());
  ASSERT_OK(w);
  for (bool pack : {true, false}) {
    for (bool combine : {true, false}) {
      ops::OpOptions op;
      op.pack_messages = pack;
      op.combiners = combine;
      RunOutput coarse = RunWithThreads(*w, plan::Strategy::kGreedy, 1,
                                        /*concurrent_jobs=*/true, op);
      RunOutput tiny =
          RunWithThreads(*w, plan::Strategy::kGreedy, 8,
                         /*concurrent_jobs=*/true, op, /*morsel_rows=*/1);
      EXPECT_EQ(coarse.outputs, tiny.outputs)
          << "pack=" << pack << " combine=" << combine;
      EXPECT_EQ(coarse.metrics.communication_mb, tiny.metrics.communication_mb)
          << "pack=" << pack << " combine=" << combine;
      EXPECT_EQ(coarse.metrics.net_time, tiny.metrics.net_time)
          << "pack=" << pack << " combine=" << combine;
    }
  }
}

// ---- Shuffle accounting: one source of truth --------------------------------

// JobStats::shuffle_mb (measured once, map-side, post-combine) is the
// single source of truth for shuffle volume; RoundStats::shuffle_mb is
// derived from it at the commit barrier and ProgramStats::ShuffleMb()
// sums the same per-job figures. The three views must agree exactly —
// nothing re-measures shuffle bytes (the PR-1 engine/runtime
// double-counting hazard).
TEST(RuntimeTest, ShuffleBytesHaveOneSourceOfTruth) {
  auto w = data::MakeA(1, SmallData());
  ASSERT_OK(w);
  plan::PlannerOptions opts;
  opts.strategy = plan::Strategy::kGreedy;
  opts.sample_size = 64;
  cost::ClusterConfig config = TestCluster();
  plan::Planner planner(config, opts);
  Engine engine(config);
  Runtime runtime(&engine);
  Database db = w->db;
  auto plan = planner.Plan(w->query, db);
  ASSERT_OK(plan);
  auto result = plan::ExecutePlan(*plan, runtime, &db);
  ASSERT_OK(result);
  const ProgramStats& stats = result->stats;
  ASSERT_FALSE(stats.round_stats.empty());
  double via_rounds = 0.0;
  for (const RoundStats& r : stats.round_stats) via_rounds += r.shuffle_mb;
  double via_jobs = 0.0;
  for (const JobStats& j : stats.jobs) via_jobs += j.shuffle_mb;
  EXPECT_DOUBLE_EQ(via_rounds, via_jobs);
  EXPECT_DOUBLE_EQ(via_rounds, stats.ShuffleMb());
  // Every job is in exactly one round.
  size_t jobs_in_rounds = 0;
  for (const RoundStats& r : stats.round_stats) jobs_in_rounds += r.jobs.size();
  EXPECT_EQ(jobs_in_rounds, stats.jobs.size());
  // The executor's metrics are derived from the same aggregates.
  EXPECT_DOUBLE_EQ(result->metrics.shuffle_mb, stats.ShuffleMb());
  EXPECT_DOUBLE_EQ(result->metrics.communication_mb,
                   stats.ShuffleMb() + stats.FilterBroadcastMb());
  EXPECT_GT(stats.ShuffleMessages(), 0u);
}

TEST(RuntimeTest, ConcurrentMatchesSequentialRuntime) {
  auto w = data::MakeC(1, SmallData());  // nested query: several rounds
  ASSERT_OK(w);
  RunOutput concurrent = RunWithThreads(*w, plan::Strategy::kGreedySgf, 8,
                                        /*concurrent_jobs=*/true);
  RunOutput sequential = RunWithThreads(*w, plan::Strategy::kGreedySgf, 8,
                                        /*concurrent_jobs=*/false);
  EXPECT_EQ(concurrent.outputs, sequential.outputs);
  EXPECT_EQ(concurrent.metrics.communication_mb,
            sequential.metrics.communication_mb);
  EXPECT_EQ(concurrent.metrics.net_time, sequential.metrics.net_time);
}

}  // namespace
}  // namespace gumbo::mr
