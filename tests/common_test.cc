// Tests for the common foundations: Status/Result, Value/Dictionary,
// Tuple, Relation/Database, RNG, string helpers, table printer.
#include <gtest/gtest.h>

#include <set>
#include <thread>

#include "common/dictionary.h"
#include "common/relation.h"
#include "common/result.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/str_util.h"
#include "common/table_printer.h"
#include "common/tuple.h"
#include "test_util.h"

namespace gumbo {
namespace {

using ::gumbo::testing::MakeRelation;

// ---- Status / Result -------------------------------------------------------

TEST(StatusTest, OkAndErrors) {
  EXPECT_TRUE(Status::Ok().ok());
  Status s = Status::InvalidArgument("bad");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad");
  EXPECT_EQ(Status::Ok().ToString(), "OK");
}

TEST(ResultTest, ValueAndError) {
  Result<int> ok = 42;
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 42);
  EXPECT_EQ(ok.value_or(7), 42);

  Result<int> err = Status::NotFound("nope");
  EXPECT_FALSE(err.ok());
  EXPECT_EQ(err.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(err.value_or(7), 7);
}

Result<int> Half(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Result<int> Quarter(int x) {
  GUMBO_ASSIGN_OR_RETURN(int h, Half(x));
  GUMBO_ASSIGN_OR_RETURN(int q, Half(h));
  return q;
}

TEST(ResultTest, AssignOrReturnMacro) {
  auto q = Quarter(8);
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(*q, 2);
  EXPECT_FALSE(Quarter(6).ok());  // 6/2=3 is odd
}

// ---- Value / Dictionary ----------------------------------------------------

TEST(ValueTest, IntRoundTrip) {
  EXPECT_EQ(Value::Int(0).AsInt(), 0);
  EXPECT_EQ(Value::Int(12345).AsInt(), 12345);
  EXPECT_EQ(Value::Int(-7).AsInt(), -7);
  EXPECT_TRUE(Value::Int(5).is_int());
  EXPECT_FALSE(Value::Int(5).is_string());
}

TEST(ValueTest, StringsDisjointFromInts) {
  Dictionary dict;
  Value s = dict.Intern("hello");
  EXPECT_TRUE(s.is_string());
  EXPECT_NE(s, Value::Int(static_cast<int64_t>(s.raw())));
  EXPECT_EQ(dict.Lookup(s), "hello");
  EXPECT_EQ(dict.Intern("hello"), s);       // stable
  EXPECT_NE(dict.Intern("world"), s);       // distinct
  EXPECT_EQ(dict.ToString(s), "\"hello\"");
  EXPECT_EQ(dict.ToString(Value::Int(3)), "3");
}

// ---- Tuple -----------------------------------------------------------------

TEST(TupleTest, BasicOps) {
  Tuple t = Tuple::Ints({1, 2, 3});
  EXPECT_EQ(t.size(), 3u);
  EXPECT_EQ(t[1], Value::Int(2));
  EXPECT_EQ(t, Tuple::Ints({1, 2, 3}));
  EXPECT_NE(t, Tuple::Ints({1, 2}));
  EXPECT_NE(t, Tuple::Ints({1, 2, 4}));
  EXPECT_TRUE(Tuple().empty());
}

TEST(TupleTest, GrowsBeyondInlineCapacity) {
  Tuple t;
  for (int64_t i = 0; i < 20; ++i) t.PushBack(Value::Int(i));
  EXPECT_EQ(t.size(), 20u);
  for (uint32_t i = 0; i < 20; ++i) {
    EXPECT_EQ(t[i], Value::Int(i));
  }
  // Copy and move of heap-backed tuples.
  Tuple copy = t;
  EXPECT_EQ(copy, t);
  Tuple moved = std::move(copy);
  EXPECT_EQ(moved, t);
}

TEST(TupleTest, LexicographicOrder) {
  EXPECT_LT(Tuple::Ints({1, 2}), Tuple::Ints({1, 3}));
  EXPECT_LT(Tuple::Ints({1}), Tuple::Ints({1, 0}));
  EXPECT_FALSE(Tuple::Ints({2}) < Tuple::Ints({1, 5}));
}

TEST(TupleTest, HashDistinguishes) {
  std::set<uint64_t> hashes;
  for (int64_t i = 0; i < 1000; ++i) {
    hashes.insert(Tuple::Ints({i, i * 2}).Hash());
  }
  EXPECT_EQ(hashes.size(), 1000u);
  // Same content, same hash.
  EXPECT_EQ(Tuple::Ints({5, 6}).Hash(), Tuple::Ints({5, 6}).Hash());
  // (1,2) vs (12): size is part of the hash.
  EXPECT_NE(Tuple::Ints({}).Hash(), Tuple::Ints({0}).Hash());
}

TEST(TupleTest, SelfAssignment) {
  Tuple t = Tuple::Ints({1, 2, 3, 4, 5});
  t = *&t;
  EXPECT_EQ(t.size(), 5u);
}

// ---- Relation / Database ---------------------------------------------------

TEST(RelationTest, ArityEnforced) {
  Relation r("R", 2);
  EXPECT_TRUE(r.Add(Tuple::Ints({1, 2})).ok());
  EXPECT_FALSE(r.Add(Tuple::Ints({1})).ok());
  EXPECT_EQ(r.size(), 1u);
}

TEST(RelationTest, SortAndDedupe) {
  Relation r = MakeRelation("R", 2, {{3, 4}, {1, 2}, {3, 4}, {1, 2}});
  r.SortAndDedupe();
  ASSERT_EQ(r.size(), 2u);
  EXPECT_EQ(r.TupleAt(0), Tuple::Ints({1, 2}));
}

TEST(RelationTest, SetEqualsIgnoresOrderAndDuplicates) {
  Relation a = MakeRelation("A", 1, {{1}, {2}, {2}});
  Relation b = MakeRelation("B", 1, {{2}, {1}});
  EXPECT_TRUE(a.SetEquals(b));
  Relation c = MakeRelation("C", 1, {{1}});
  EXPECT_FALSE(a.SetEquals(c));
}

TEST(RelationTest, SizeAccounting) {
  Relation r = MakeRelation("R", 4, {{1, 2, 3, 4}});
  // Default density 10 B/attribute.
  EXPECT_DOUBLE_EQ(r.bytes_per_tuple(), 40.0);
  r.set_representation_scale(100.0);
  EXPECT_DOUBLE_EQ(r.RepresentedRecords(), 100.0);
  EXPECT_NEAR(r.SizeMb(), 100.0 * 40.0 / (1024 * 1024), 1e-12);
  r.set_bytes_per_tuple(8.0);
  EXPECT_DOUBLE_EQ(r.bytes_per_tuple(), 8.0);
}

TEST(DatabaseTest, CrudAndErrors) {
  Database db;
  EXPECT_OK(db.Create("R", 2));
  EXPECT_FALSE(db.Create("R", 3).ok());
  EXPECT_OK(db.AddFact("R", Tuple::Ints({1, 2})));
  EXPECT_FALSE(db.AddFact("R", Tuple::Ints({1})).ok());
  EXPECT_FALSE(db.AddFact("S", Tuple::Ints({1})).ok());
  ASSERT_OK(db.Get("R"));
  EXPECT_EQ(db.Get("R").value()->size(), 1u);
  EXPECT_FALSE(db.Get("S").ok());
  EXPECT_TRUE(db.Erase("R"));
  EXPECT_FALSE(db.Erase("R"));
}

// ---- RNG -------------------------------------------------------------------

TEST(RngTest, DeterministicAcrossInstances) {
  Xoshiro256 a(42), b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
  Xoshiro256 c(43);
  EXPECT_NE(Xoshiro256(42).Next(), c.Next());
}

TEST(RngTest, UniformBounds) {
  Xoshiro256 rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.Uniform(10), 10u);
    double d = rng.UniformDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, BernoulliRoughlyFair) {
  Xoshiro256 rng(11);
  int heads = 0;
  for (int i = 0; i < 10000; ++i) heads += rng.Bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(heads / 10000.0, 0.3, 0.02);
}

// ---- Strings ---------------------------------------------------------------

TEST(StrUtilTest, Format) {
  EXPECT_EQ(StrFormat("%d-%s", 7, "x"), "7-x");
  EXPECT_EQ(StrFormat("%.2f", 1.005), "1.00");
}

TEST(StrUtilTest, JoinSplitTrim) {
  EXPECT_EQ(StrJoin({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(StrSplit("a,b,,c", ','),
            (std::vector<std::string>{"a", "b", "", "c"}));
  EXPECT_EQ(StrTrim("  x y \n"), "x y");
  EXPECT_TRUE(StartsWith("__tmp_1", "__"));
  EXPECT_FALSE(StartsWith("_tmp", "__"));
}

TEST(StrUtilTest, FormatDouble) {
  EXPECT_EQ(FormatDouble(12.50), "12.5");
  EXPECT_EQ(FormatDouble(3.00), "3");
  EXPECT_EQ(FormatDouble(0.123, 2), "0.12");
}

// ---- TablePrinter ----------------------------------------------------------

TEST(TablePrinterTest, AlignsColumns) {
  TablePrinter tp({"a", "bbbb"});
  tp.AddRow({"ccc", "d"});
  std::string out = tp.Render();
  EXPECT_NE(out.find("| a   | bbbb |"), std::string::npos) << out;
  EXPECT_NE(out.find("| ccc | d    |"), std::string::npos) << out;
}

// The morsel scheduler (the ThreadPool successor) is covered in
// tests/scheduler_test.cc: ParallelFor coverage, nested groups, lost
// tasks, priority ordering, anti-starvation, and shutdown drain.

}  // namespace
}  // namespace gumbo
