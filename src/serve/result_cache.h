// The serving-layer result cache (DESIGN.md §12): plan-cache key ->
// materialized, canonical query outputs + the immutable plan that
// produced them, validated against per-relation stats epochs.
//
// Where the plan cache answers "skip planning", this cache answers "skip
// execution": a lookup whose epoch vector matches is a pure hit (the
// stored outputs are the answer, byte for byte); one whose epochs moved
// insert-only can be *delta-maintained* by the QueryService (re-run the
// stored plan over the delta slices, union into the stored outputs —
// serve/delta.h) and refreshed in place; anything else is invalidated.
// Entries are shared immutable snapshots: a hit hands out a
// shared_ptr<const Entry>, refreshes replace the entry wholesale, so
// concurrent readers never observe a half-updated result. Capacity is
// bounded with LRU eviction.
#ifndef GUMBO_SERVE_RESULT_CACHE_H_
#define GUMBO_SERVE_RESULT_CACHE_H_

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/relation.h"
#include "plan/planner.h"

namespace gumbo::serve {

class ResultCache {
 public:
  /// Monotonic counters, readable at any time (counters()).
  struct Counters {
    uint64_t hits = 0;        ///< pure hits: outputs served with no execution
    uint64_t delta_hits = 0;  ///< entries refreshed by a delta pass
    uint64_t misses = 0;      ///< no entry for the key
    uint64_t invalidations = 0;  ///< entries dropped (non-delta-able movement)
    uint64_t evictions = 0;      ///< LRU capacity evictions
    uint64_t entries = 0;        ///< current size (gauge, not a counter)
  };

  /// One materialized result. `outputs` holds exactly the query's output
  /// relations, canonical (sorted + deduped) — the invariant that makes
  /// delta-union byte-identical to from-scratch evaluation.
  struct Entry {
    std::vector<std::string> names;   ///< PlanCache::EpochNamesOf order
    std::vector<uint64_t> epochs;     ///< stats epoch per name at capture
    plan::PlanRef plan;               ///< the lowered plan that produced it
    std::shared_ptr<const Database> outputs;
  };

  explicit ResultCache(size_t capacity = 32) : capacity_(capacity) {}

  /// Returns the entry for `key` (bumping its LRU position) or nullptr,
  /// counting a miss. The caller classifies what the entry is good for —
  /// pure hit, delta pass, or invalidation — against current epochs and
  /// reports back via NoteHit/NoteDeltaHit/Invalidate.
  std::shared_ptr<const Entry> Lookup(const std::string& key);

  /// Inserts or replaces the entry for `key`, evicting the least recently
  /// used entry when at capacity. A capacity of 0 disables storage.
  void Insert(const std::string& key, Entry entry);

  /// Drops the entry for `key` (if still present), counting an
  /// invalidation: its epochs moved in a way delta maintenance cannot
  /// express.
  void Invalidate(const std::string& key);

  void NoteHit();       ///< a Lookup result served as-is
  void NoteDeltaHit();  ///< a Lookup result refreshed via a delta pass

  Counters counters() const;
  size_t capacity() const { return capacity_; }
  void Clear();

 private:
  struct Slot {
    std::shared_ptr<const Entry> entry;
    std::list<std::string>::iterator lru_it;
  };

  mutable std::mutex mu_;
  size_t capacity_;
  std::list<std::string> lru_;  ///< front = most recently used
  std::unordered_map<std::string, Slot> slots_;
  Counters counters_;
};

}  // namespace gumbo::serve

#endif  // GUMBO_SERVE_RESULT_CACHE_H_
