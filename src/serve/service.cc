#include "serve/service.h"

#include <chrono>

#include "common/config.h"
#include "serve/delta.h"
#include "serve/signature.h"

namespace gumbo::serve {

namespace {

using Clock = std::chrono::steady_clock;

double MsSince(Clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
}

// Stable work-unit id for planner/cache fault sites: FNV-1a over the
// plan-cache key, so a chaos failure reproduces from the seed and the
// query text alone (std::hash is not pinned across standard libraries).
uint64_t KeyUnit(const std::string& key) {
  uint64_t h = 1469598103934665603ULL;
  for (const char c : key) {
    h ^= static_cast<uint8_t>(c);
    h *= 1099511628211ULL;
  }
  return h;
}

// A service-level calibration store doubles as the planner's unless the
// caller wired a different one into planner.calibration explicitly.
ServiceOptions InstallCalibration(ServiceOptions options) {
  if (options.calibration != nullptr &&
      options.planner.calibration == nullptr) {
    options.planner.calibration = options.calibration;
  }
  return options;
}

// Environment escape hatches for the delta layer (DESIGN.md §12):
// GUMBO_DISABLE_DELTA=1 forces the result cache (and with it all delta
// maintenance) off; GUMBO_RESULT_CACHE_CAP overrides its capacity.
ServiceOptions ApplyDeltaEnv(ServiceOptions options) {
  const common::RuntimeConfig& cfg = common::RuntimeConfig::Get();
  if (cfg.disable_delta.value_or(false)) options.result_cache = false;
  options.result_cache_capacity =
      cfg.result_cache_cap.value_or(options.result_cache_capacity);
  // Distribution knobs layer the same way (DESIGN.md §13): GUMBO_SHARDS
  // over ServiceOptions::dist, so a deployed binary shards without a
  // code change.
  options.dist.shards = cfg.shards.value_or(options.dist.shards);
  options.dist.transport = cfg.transport.value_or(options.dist.transport);
  options.dist.dir = cfg.dist_dir.value_or(options.dist.dir);
  return options;
}

}  // namespace

QueryService::QueryService(const Database* db, ServiceOptions options,
                           Scheduler* scheduler)
    : db_(db),
      options_(ApplyDeltaEnv(InstallCalibration(std::move(options)))),
      env_faults_(FaultInjector::FromEnv()),
      faults_(options_.faults != nullptr ? options_.faults : &env_faults_),
      engine_(options_.cluster, scheduler),
      runtime_(&engine_, options_.runtime),
      planner_(options_.cluster, options_.planner),
      cache_(options_.plan_cache ? options_.plan_cache_capacity : 0),
      results_(options_.result_cache ? options_.result_cache_capacity : 0) {
  const size_t n = options_.max_inflight > 0 ? options_.max_inflight : 1;
  workers_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

QueryService::QueryService(Database* db, ServiceOptions options,
                           Scheduler* scheduler)
    : QueryService(static_cast<const Database*>(db), std::move(options),
                   scheduler) {
  mutable_db_ = db;
}

Status QueryService::AddFact(const std::string& name, const Tuple& t) {
  if (mutable_db_ == nullptr) {
    return Status::FailedPrecondition(
        "AddFact requires a service constructed over a mutable database");
  }
  // Write half of the database lock: waits for in-flight executions to
  // finish their read hold, so no query ever observes a half-applied
  // write (and no arena reallocates under a running scan).
  std::unique_lock<std::shared_mutex> lock(db_mu_);
  return mutable_db_->AddFact(name, t);
}

QueryService::~QueryService() {
  Shutdown();
  for (std::thread& w : workers_) w.join();
}

void QueryService::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  cv_work_.notify_all();
  cv_space_.notify_all();
}

size_t QueryService::AtomCount(const sgf::SgfQuery& query) {
  size_t atoms = 0;
  for (const sgf::BsgfQuery& q : query.subqueries()) {
    atoms += 1 + q.num_conditional_atoms();  // guard + conditionals
  }
  return atoms;
}

std::future<QueryResponse> QueryService::Submit(sgf::SgfQuery query,
                                                QueryOptions qopts) {
  Task task;
  task.query = std::move(query);
  task.submitted = Clock::now();
  task.priority = qopts.priority;
  std::future<QueryResponse> future = task.promise.get_future();

  // Deadline composition: the per-query budget and the service default
  // both arm the same token; SetDeadline keeps the earliest, so the
  // stricter one wins. A caller-supplied token is used directly (its
  // Cancel() reaches queued and in-flight work alike); otherwise a token
  // is created only when some deadline exists.
  const double deadline_ms =
      qopts.deadline_ms > 0.0 && options_.default_deadline_ms > 0.0
          ? std::min(qopts.deadline_ms, options_.default_deadline_ms)
          : (qopts.deadline_ms > 0.0 ? qopts.deadline_ms
                                     : options_.default_deadline_ms);
  if (qopts.cancel != nullptr) {
    task.token = qopts.cancel;
  } else if (deadline_ms > 0.0) {
    task.owned = std::make_shared<CancelToken>();
    task.token = task.owned.get();
  }
  if (task.token != nullptr && deadline_ms > 0.0) {
    task.token->SetDeadlineAfterMs(deadline_ms);
    task.deadline = task.submitted +
                    std::chrono::microseconds(
                        static_cast<int64_t>(deadline_ms * 1e3));
  }

  const bool fast =
      qopts.priority == SchedPriority::kHigh ||
      (options_.fast_lane_max_atoms > 0 &&
       AtomCount(task.query) <= options_.fast_lane_max_atoms);
  task.fast = fast;
  if (fast) task.priority = SchedPriority::kHigh;
  {
    std::unique_lock<std::mutex> lock(mu_);
    // Saturation shedding (DESIGN.md §11): at the watermark, background
    // (kLow) queries and queries already past their deadline are turned
    // away immediately — a typed synchronous rejection instead of
    // occupying backlog a saturated service will not reach in time.
    const size_t watermark = options_.shed_watermark > 0
                                 ? options_.shed_watermark
                                 : options_.max_inflight + options_.max_queued;
    const size_t load = fifo_.size() + fast_lane_.size() +
                        static_cast<size_t>(inflight_.load());
    if (!stopping_ && load >= watermark &&
        (qopts.priority == SchedPriority::kLow ||
         (task.deadline != Clock::time_point::max() &&
          Clock::now() >= task.deadline))) {
      ++shed_;
      QueryResponse resp;
      resp.status = Status::ResourceExhausted(
          "query shed: service saturated (" + std::to_string(load) +
          " queued+inflight >= watermark " + std::to_string(watermark) + ")");
      task.promise.set_value(std::move(resp));
      return future;
    }
    cv_space_.wait(lock, [&] {
      return stopping_ ||
             fifo_.size() + fast_lane_.size() < options_.max_queued;
    });
    if (stopping_) {
      ++rejected_;
      QueryResponse resp;
      resp.status = Status::FailedPrecondition("QueryService is shut down");
      task.promise.set_value(std::move(resp));
      return future;
    }
    ++submitted_;
    if (fast) {
      ++fast_lane_count_;
      fast_lane_.push_back(std::move(task));
    } else {
      fifo_.push_back(std::move(task));
    }
  }
  cv_work_.notify_one();
  return future;
}

QueryResponse QueryService::Run(sgf::SgfQuery query, QueryOptions qopts) {
  return Submit(std::move(query), qopts).get();
}

QueryService::Task QueryService::PopEdf(std::deque<Task>* q) {
  // Earliest deadline first within the lane; deadline-free tasks sort
  // last (time_point::max()) and ties keep queue order, so a deadline-
  // free workload degenerates to plain FIFO. Linear scan: the backlog is
  // bounded (max_queued) and dispatch is rare next to morsel work.
  size_t best = 0;
  for (size_t i = 1; i < q->size(); ++i) {
    if ((*q)[i].deadline < (*q)[best].deadline) best = i;
  }
  Task task = std::move((*q)[best]);
  q->erase(q->begin() + static_cast<std::ptrdiff_t>(best));
  return task;
}

void QueryService::WorkerLoop() {
  for (;;) {
    Task task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_work_.wait(lock, [&] {
        return stopping_ || !fast_lane_.empty() || !fifo_.empty();
      });
      if (fast_lane_.empty() && fifo_.empty()) {
        if (stopping_) return;
        continue;
      }
      // Fast lane first: small jobs jump the FIFO — but a FIFO task is
      // taken after every kLaneBurst consecutive fast-lane dispatches,
      // so a sustained small-query stream cannot starve the FIFO: its
      // head waits at most kLaneBurst fast-lane queries per dispatch.
      constexpr size_t kLaneBurst = 3;
      const bool take_fifo =
          fast_lane_.empty() || (!fifo_.empty() && lane_streak_ >= kLaneBurst);
      std::deque<Task>& q = take_fifo ? fifo_ : fast_lane_;
      lane_streak_ = take_fifo ? 0 : lane_streak_ + 1;
      task = PopEdf(&q);
    }
    cv_space_.notify_one();
    Execute(std::move(task));
  }
}

Result<plan::PlanRef> QueryService::PlanSingleFlight(
    const sgf::SgfQuery& query, const std::string& key,
    std::vector<uint64_t> epochs, bool use_cache, bool* coalesced) {
  *coalesced = false;

  // Single-flight: the first miss for a key becomes the leader and plans;
  // concurrent misses for the same key wait for the leader's result
  // instead of stampeding the planner with redundant sampling runs.
  // Independent of the cache switch: with the cache off nothing is
  // stored, but in-flight identical queries still share one planning run
  // — a lowered plan is immutable and reusable, so sharing it changes no
  // byte of any response (see executor.h).
  std::promise<Result<plan::PlanRef>> promise;
  std::shared_future<Result<plan::PlanRef>> shared;
  bool leader = false;
  {
    std::lock_guard<std::mutex> lock(plan_mu_);
    auto it = planning_.find(key);
    if (it != planning_.end()) {
      shared = it->second;
    } else {
      // No planning in flight — but a leader that finished between our
      // caller's cache miss and this point has already published its
      // plan; re-check the cache before redundantly re-planning.
      // (PlanCache never takes plan_mu_, so the nested lock is safe.)
      if (use_cache) {
        if (plan::PlanRef cached = cache_.PeekAfterMiss(key, epochs)) {
          return cached;
        }
      }
      leader = true;
      shared = promise.get_future().share();
      planning_.emplace(key, shared);
    }
  }
  if (!leader) {
    *coalesced = true;
    return shared.get();
  }

  Result<plan::PlanRef> outcome = [&]() -> Result<plan::PlanRef> {
    // Planner fault site (DESIGN.md §11): an injected fault abandons the
    // finished planning attempt and re-plans from scratch. Planning is
    // idempotent (sampling is seeded), so a retried attempt lowers the
    // same plan; followers coalesced on this key only ever see the final
    // outcome.
    const uint64_t unit = KeyUnit(key);
    const uint32_t max_retries = engine_.sched_options().max_task_retries;
    for (uint32_t attempt = 0;; ++attempt) {
      const Clock::time_point attempt_start = Clock::now();
      Result<plan::PlanRef> attempt_outcome =
          [&]() -> Result<plan::PlanRef> {
        GUMBO_ASSIGN_OR_RETURN(plan::QueryPlan planned,
                               planner_.Plan(query, *db_));
        return std::make_shared<const plan::QueryPlan>(std::move(planned));
      }();
      if (!faults_->active() ||
          !faults_->ShouldFail(FaultSite::kPlanner, unit, attempt)) {
        return attempt_outcome;
      }
      faults_injected_.fetch_add(1, std::memory_order_relaxed);
      retry_us_.fetch_add(
          static_cast<uint64_t>(MsSince(attempt_start) * 1e3),
          std::memory_order_relaxed);
      if (attempt >= max_retries) {
        return FaultInjector::InjectedFault(FaultSite::kPlanner, unit,
                                            attempt);
      }
      task_retries_.fetch_add(1, std::memory_order_relaxed);
    }
  }();
  // Publish to the cache BEFORE leaving the registry: combined with the
  // registry-miss cache re-check above, a concurrent miss always sees
  // either the registry entry or the cached plan, never a planning gap.
  if (outcome.ok()) {
    plans_built_.fetch_add(1, std::memory_order_relaxed);
    if (use_cache) cache_.Insert(key, std::move(epochs), *outcome);
  }
  {
    std::lock_guard<std::mutex> lock(plan_mu_);
    planning_.erase(key);
  }
  promise.set_value(outcome);
  return outcome;
}

bool QueryService::TryResultCache(const Task& task, const std::string& key,
                                  const std::vector<std::string>& names,
                                  const std::vector<uint64_t>& epochs,
                                  QueryResponse* resp) {
  std::shared_ptr<const ResultCache::Entry> entry = results_.Lookup(key);
  if (entry == nullptr) return false;
  if (entry->names != names) {
    // Signature collision safeguard: same key but different epoch-name
    // universe means the entry cannot be validated — drop it.
    results_.Invalidate(key);
    return false;
  }

  if (entry->epochs == epochs) {
    // Pure hit: nothing moved — the stored canonical outputs ARE the
    // answer, byte for byte. No planning, no execution.
    results_.NoteHit();
    result_hits_.fetch_add(1, std::memory_order_relaxed);
    resp->outputs = *entry->outputs;
    resp->metrics.result_cache_hit = true;
    return true;
  }

  DeltaPlan dp = PlanDelta(task.query, *db_, names, entry->epochs, epochs);
  if (!dp.eligible) {
    // Non-insert movement (or aged-out watermark, or delta in conditional
    // position): the fallback matrix says invalidate and recompute.
    results_.Invalidate(key);
    return false;
  }
  for (const std::string& out : entry->plan->outputs) {
    if (dp.dirty.count(out) > 0 && !entry->outputs->Contains(out)) {
      results_.Invalidate(key);  // defensive: nothing to union into
      return false;
    }
  }

  // ---- Delta maintenance pass (DESIGN.md §12) ----
  // Re-run the cached plan with each moved relation shadowed by its
  // delta slice: dirty subqueries produce exactly their new output rows.
  SchedGroupMetrics sched_metrics;
  SchedContext ctx;
  ctx.priority = task.priority;
  ctx.metrics = &sched_metrics;
  ctx.cancel = task.token;
  ctx.faults = faults_->active() ? faults_ : nullptr;
  const Clock::time_point delta_start = Clock::now();
  Database delta_out;
  Result<plan::ExecutionResult> executed = plan::ExecutePlanWithOverrides(
      *entry->plan, runtime_, *db_, dp.overrides, &delta_out, ctx);
  const double delta_wall_ms = MsSince(delta_start);
  if (!executed.ok()) {
    // A failed pass (cancel, deadline, injected fault past retries) fails
    // the query; the cached entry is untouched and still valid.
    resp->status = executed.status();
    return true;
  }

  // Union + canonicalize: a dirty output is cached ∪ delta, re-deduped —
  // SortAndDedupe restores exactly the canonical order a from-scratch
  // run emits, so the bytes (words AND fingerprints) are identical. A
  // clean output was recomputed in full by the pass (its inputs were all
  // unmoved), so it is already canonical and complete.
  for (const std::string& out : entry->plan->outputs) {
    Result<Relation*> got = delta_out.GetMutable(out);
    if (!got.ok()) {
      resp->status = got.status();
      return true;
    }
    if (dp.dirty.count(out) > 0) {
      Relation merged = **entry->outputs->Get(out);
      merged.AppendFrom(**got);
      merged.SortAndDedupe();
      resp->outputs.Put(std::move(merged));
    } else {
      resp->outputs.Put(std::move(**got));
    }
  }

  // Refresh the entry in place: replacement is atomic, concurrent readers
  // keep the snapshot they already hold.
  ResultCache::Entry fresh;
  fresh.names = names;
  fresh.epochs = epochs;
  fresh.plan = entry->plan;
  fresh.outputs = std::make_shared<const Database>(resp->outputs);
  results_.Insert(key, std::move(fresh));
  results_.NoteDeltaHit();
  delta_hits_.fetch_add(1, std::memory_order_relaxed);
  delta_rows_.fetch_add(dp.delta_rows, std::memory_order_relaxed);
  delta_us_.fetch_add(static_cast<uint64_t>(delta_wall_ms * 1e3),
                      std::memory_order_relaxed);

  const double sched_wait_ms =
      static_cast<double>(
          sched_metrics.stall_us.load(std::memory_order_relaxed)) /
      1e3;
  exec_us_.fetch_add(
      static_cast<uint64_t>(std::max(0.0, delta_wall_ms - sched_wait_ms) *
                            1e3),
      std::memory_order_relaxed);
  sched_wait_us_.fetch_add(static_cast<uint64_t>(sched_wait_ms * 1e3),
                           std::memory_order_relaxed);
  resp->metrics = executed->metrics;
  resp->stats = std::move(executed->stats);
  resp->metrics.sched_wait_ms = sched_wait_ms;
  resp->metrics.sched_morsels =
      sched_metrics.morsels.load(std::memory_order_relaxed);
  resp->metrics.delta_applied = true;
  resp->metrics.delta_rows = dp.delta_rows;
  // No calibration feedback from delta passes: the cached plan's
  // estimates describe full-size inputs, the observed stats a delta-sized
  // run — pairing them would poison the store (DESIGN.md §10).
  return true;
}

void QueryService::Execute(Task task) {
  const int cur = inflight_.fetch_add(1) + 1;
  int seen = peak_inflight_.load();
  while (cur > seen && !peak_inflight_.compare_exchange_weak(seen, cur)) {
  }

  QueryResponse resp;
  const double queue_ms = MsSince(task.submitted);

  // Cancellation gate: a query cancelled (or past its deadline) while it
  // sat in the backlog is answered here without planning or executing —
  // the prompt-drop path for queued work. One poll covers explicit
  // Cancel(), deadlines, and fault escalation alike.
  resp.status = CheckCancel(task.token);

  const std::string key = PlanCacheKey(task.query, options_.planner);

  // Database read hold (DESIGN.md §12): epoch capture, cache routing,
  // planning, execution, and the result-cache refresh all see one
  // consistent base — AddFact writers wait for this hold to drain.
  std::shared_lock<std::shared_mutex> db_lock(db_mu_);

  // Cache fault site (DESIGN.md §11): an injected fault degrades the
  // lookup (result cache and plan cache alike) to a miss — the query
  // re-plans and re-executes, staying correct; only the cached latency
  // win is lost. The cache entries themselves are untouched.
  const bool cache_faulted =
      (options_.plan_cache || options_.result_cache) && faults_->active() &&
      faults_->ShouldFail(FaultSite::kCache, KeyUnit(key), /*attempt=*/0);
  if (cache_faulted) {
    faults_injected_.fetch_add(1, std::memory_order_relaxed);
  }

  // ---- Result cache: pure hit or delta maintenance (DESIGN.md §12) ----
  bool result_done = false;
  std::vector<std::string> epoch_names;
  std::vector<uint64_t> epochs;
  bool have_epochs = false;
  if (resp.ok() && options_.result_cache) {
    epoch_names = PlanCache::EpochNamesOf(task.query);
    epochs.reserve(epoch_names.size());
    for (const std::string& n : epoch_names) {
      epochs.push_back(db_->StatsEpochOf(n));
    }
    have_epochs = true;
    if (!cache_faulted) {
      result_done = TryResultCache(task, key, epoch_names, epochs, &resp);
    }
  }

  // ---- Plan: cache lookup keyed on signature + stats epochs ----
  // The key is computed even with the cache off: single-flight planning
  // coalesces identical in-flight queries either way.
  plan::PlanRef plan;
  bool cache_hit = false;
  double plan_ms = 0.0;
  if (resp.ok() && !result_done) {
    if (options_.plan_cache && !cache_faulted) {
      if (!have_epochs) epochs = PlanCache::EpochsOf(task.query, *db_);
      plan = cache_.Lookup(key, epochs);
      cache_hit = plan != nullptr;
    }
    if (plan == nullptr) {
      const Clock::time_point plan_start = Clock::now();
      bool coalesced = false;
      Result<plan::PlanRef> planned =
          PlanSingleFlight(task.query, key, epochs,
                           options_.plan_cache && !cache_faulted, &coalesced);
      plan_ms = MsSince(plan_start);
      if (coalesced) plan_coalesced_.fetch_add(1, std::memory_order_relaxed);
      if (!planned.ok()) {
        resp.status = planned.status();
      } else {
        plan = *planned;
      }
    }
    // A deadline that expired during planning stops the query before any
    // execution work is scheduled.
    if (resp.ok()) resp.status = CheckCancel(task.token);
  }

  // ---- Execute against the shared snapshot via a private overlay ----
  // Admission lane -> morsel priority (DESIGN.md §9): fast-lane queries
  // execute at kHigh, so their morsels overtake normal-priority backlogs
  // inside the shared scheduler, not just the admission queue.
  double exec_ms = 0.0;
  double sched_wait_ms = 0.0;
  if (resp.ok() && !result_done) {
    SchedGroupMetrics sched_metrics;
    SchedContext ctx;
    ctx.priority = task.priority;
    ctx.metrics = &sched_metrics;
    ctx.cancel = task.token;
    ctx.faults = faults_->active() ? faults_ : nullptr;
    const Clock::time_point exec_start = Clock::now();
    // dist.shards > 1 routes through the sharded harness (DESIGN.md
    // §13): same snapshot/overlay contract, byte-identical outputs.
    Result<plan::ExecutionResult> executed =
        [&]() -> Result<plan::ExecutionResult> {
      if (options_.dist.shards > 1) {
        plan::ExecutionContext ectx;
        ectx.sched = ctx;
        ectx.local_shards = options_.dist.shards;
        return plan::ExecutePlanOnSnapshot(*plan, &engine_, *db_,
                                           &resp.outputs, ectx);
      }
      return plan::ExecutePlanOnSnapshot(*plan, runtime_, *db_, &resp.outputs,
                                         ctx);
    }();
    const double exec_wall_ms = MsSince(exec_start);
    // Attribution fix: time our morsels sat runnable-but-unserved is the
    // scheduler's doing, not the query's — report it as sched_wait so an
    // inflated p95 is diagnosable (DESIGN.md §9).
    sched_wait_ms =
        static_cast<double>(
            sched_metrics.stall_us.load(std::memory_order_relaxed)) /
        1e3;
    exec_ms = std::max(0.0, exec_wall_ms - sched_wait_ms);
    if (!executed.ok()) {
      resp.status = executed.status();
    } else {
      resp.metrics = executed->metrics;
      resp.stats = std::move(executed->stats);
      resp.metrics.sched_wait_ms = sched_wait_ms;
      resp.metrics.sched_morsels =
          sched_metrics.morsels.load(std::memory_order_relaxed);
      // Close the calibration loop (DESIGN.md §10): observed stats of this
      // execution refine the shared store so later plannings estimate
      // better. Thread-safe; results are unaffected (estimates only).
      plan::CalibrateFromExecution(*plan, resp.stats, options_.calibration);
      // Materialize into the result cache so the next lookup is a pure
      // hit — or, after insert-only writes, a delta pass (DESIGN.md §12).
      if (options_.result_cache && have_epochs && plan != nullptr) {
        ResultCache::Entry entry;
        entry.names = epoch_names;
        entry.epochs = epochs;
        entry.plan = plan;
        entry.outputs = std::make_shared<const Database>(resp.outputs);
        results_.Insert(key, std::move(entry));
      }
    }
  }
  db_lock.unlock();
  if (!result_done) {
    resp.metrics.plan_cache_hit = cache_hit;
    resp.metrics.plan_ms = plan_ms;
  }
  resp.metrics.queue_ms = queue_ms;
  resp.wall_ms = MsSince(task.submitted);

  // ---- Aggregate metrics, then fulfill the caller's future ----
  total_latency_.Record(resp.wall_ms);
  queue_us_.fetch_add(static_cast<uint64_t>(queue_ms * 1e3),
                      std::memory_order_relaxed);
  plan_us_.fetch_add(static_cast<uint64_t>(plan_ms * 1e3),
                     std::memory_order_relaxed);
  exec_us_.fetch_add(static_cast<uint64_t>(exec_ms * 1e3),
                     std::memory_order_relaxed);
  sched_wait_us_.fetch_add(static_cast<uint64_t>(sched_wait_ms * 1e3),
                           std::memory_order_relaxed);
  // Retry attribution: the jobs' counters ride in the program stats (the
  // planner site feeds the service atomics directly as it retries).
  if (resp.metrics.faults_injected > 0 || resp.metrics.task_retries > 0) {
    task_retries_.fetch_add(resp.metrics.task_retries,
                            std::memory_order_relaxed);
    faults_injected_.fetch_add(resp.metrics.faults_injected,
                               std::memory_order_relaxed);
    retry_us_.fetch_add(static_cast<uint64_t>(resp.metrics.retry_ms * 1e3),
                        std::memory_order_relaxed);
  }
  // Cancellation take-effect latency: token latch -> this response.
  const bool was_cancelled =
      resp.status.code() == StatusCode::kCancelled ||
      resp.status.code() == StatusCode::kDeadlineExceeded;
  if (was_cancelled && task.token != nullptr && task.token->cancelled()) {
    const Clock::time_point fired = task.token->fired_at();
    if (fired != Clock::time_point::min()) {
      cancel_us_.fetch_add(static_cast<uint64_t>(MsSince(fired) * 1e3),
                           std::memory_order_relaxed);
      cancel_count_.fetch_add(1, std::memory_order_relaxed);
    }
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (resp.ok()) {
      ++completed_;
    } else {
      ++failed_;
      if (resp.status.code() == StatusCode::kDeadlineExceeded) {
        ++deadline_exceeded_;
      } else if (resp.status.code() == StatusCode::kCancelled) {
        ++cancelled_;
      }
    }
  }
  inflight_.fetch_sub(1);
  task.promise.set_value(std::move(resp));
}

ServiceStats QueryService::Stats() const {
  ServiceStats s;
  {
    std::lock_guard<std::mutex> lock(mu_);
    s.submitted = submitted_;
    s.completed = completed_;
    s.failed = failed_;
    s.fast_lane = fast_lane_count_;
    s.rejected = rejected_;
    s.deadline_exceeded = deadline_exceeded_;
    s.cancelled = cancelled_;
    s.shed = shed_;
  }
  s.peak_inflight = peak_inflight_.load();
  s.plan_coalesced = plan_coalesced_.load(std::memory_order_relaxed);
  s.plans_built = plans_built_.load(std::memory_order_relaxed);
  s.cache = cache_.counters();
  s.result_hits = result_hits_.load(std::memory_order_relaxed);
  s.delta_hits = delta_hits_.load(std::memory_order_relaxed);
  s.delta_rows = delta_rows_.load(std::memory_order_relaxed);
  s.mean_delta_ms =
      s.delta_hits == 0
          ? 0.0
          : static_cast<double>(delta_us_.load(std::memory_order_relaxed)) /
                1e3 / static_cast<double>(s.delta_hits);
  s.result_cache = results_.counters();
  s.total_p50_ms = total_latency_.Percentile(0.50);
  s.total_p95_ms = total_latency_.Percentile(0.95);
  s.total_p99_ms = total_latency_.Percentile(0.99);
  const double n =
      static_cast<double>(s.completed + s.failed > 0 ? s.completed + s.failed
                                                     : 1);
  s.mean_queue_ms =
      static_cast<double>(queue_us_.load(std::memory_order_relaxed)) / 1e3 / n;
  s.mean_plan_ms =
      static_cast<double>(plan_us_.load(std::memory_order_relaxed)) / 1e3 / n;
  s.mean_exec_ms =
      static_cast<double>(exec_us_.load(std::memory_order_relaxed)) / 1e3 / n;
  s.mean_sched_wait_ms =
      static_cast<double>(sched_wait_us_.load(std::memory_order_relaxed)) /
      1e3 / n;
  s.task_retries = task_retries_.load(std::memory_order_relaxed);
  s.faults_injected = faults_injected_.load(std::memory_order_relaxed);
  s.mean_retry_ms =
      static_cast<double>(retry_us_.load(std::memory_order_relaxed)) / 1e3 / n;
  const uint64_t nc = cancel_count_.load(std::memory_order_relaxed);
  s.mean_cancel_ms =
      nc == 0 ? 0.0
              : static_cast<double>(cancel_us_.load(std::memory_order_relaxed)) /
                    1e3 / static_cast<double>(nc);
  s.scheduler = engine_.scheduler().stats();
  return s;
}

}  // namespace gumbo::serve
