#include "serve/service.h"

#include <chrono>

#include "serve/signature.h"

namespace gumbo::serve {

namespace {

using Clock = std::chrono::steady_clock;

double MsSince(Clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
}

// A service-level calibration store doubles as the planner's unless the
// caller wired a different one into planner.calibration explicitly.
ServiceOptions InstallCalibration(ServiceOptions options) {
  if (options.calibration != nullptr &&
      options.planner.calibration == nullptr) {
    options.planner.calibration = options.calibration;
  }
  return options;
}

}  // namespace

QueryService::QueryService(const Database* db, ServiceOptions options,
                           Scheduler* scheduler)
    : db_(db),
      options_(InstallCalibration(std::move(options))),
      engine_(options_.cluster, scheduler),
      runtime_(&engine_, options_.runtime),
      planner_(options_.cluster, options_.planner),
      cache_(options_.plan_cache ? options_.plan_cache_capacity : 0) {
  const size_t n = options_.max_inflight > 0 ? options_.max_inflight : 1;
  workers_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

QueryService::~QueryService() {
  Shutdown();
  for (std::thread& w : workers_) w.join();
}

void QueryService::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  cv_work_.notify_all();
  cv_space_.notify_all();
}

size_t QueryService::AtomCount(const sgf::SgfQuery& query) {
  size_t atoms = 0;
  for (const sgf::BsgfQuery& q : query.subqueries()) {
    atoms += 1 + q.num_conditional_atoms();  // guard + conditionals
  }
  return atoms;
}

std::future<QueryResponse> QueryService::Submit(sgf::SgfQuery query) {
  Task task;
  task.query = std::move(query);
  task.submitted = Clock::now();
  std::future<QueryResponse> future = task.promise.get_future();

  const bool fast = options_.fast_lane_max_atoms > 0 &&
                    AtomCount(task.query) <= options_.fast_lane_max_atoms;
  task.fast = fast;
  {
    std::unique_lock<std::mutex> lock(mu_);
    cv_space_.wait(lock, [&] {
      return stopping_ ||
             fifo_.size() + fast_lane_.size() < options_.max_queued;
    });
    if (stopping_) {
      ++rejected_;
      QueryResponse resp;
      resp.status = Status::FailedPrecondition("QueryService is shut down");
      task.promise.set_value(std::move(resp));
      return future;
    }
    ++submitted_;
    if (fast) {
      ++fast_lane_count_;
      fast_lane_.push_back(std::move(task));
    } else {
      fifo_.push_back(std::move(task));
    }
  }
  cv_work_.notify_one();
  return future;
}

QueryResponse QueryService::Run(sgf::SgfQuery query) {
  return Submit(std::move(query)).get();
}

void QueryService::WorkerLoop() {
  for (;;) {
    Task task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_work_.wait(lock, [&] {
        return stopping_ || !fast_lane_.empty() || !fifo_.empty();
      });
      if (fast_lane_.empty() && fifo_.empty()) {
        if (stopping_) return;
        continue;
      }
      // Fast lane first: small jobs jump the FIFO — but a FIFO task is
      // taken after every kLaneBurst consecutive fast-lane dispatches,
      // so a sustained small-query stream cannot starve the FIFO: its
      // head waits at most kLaneBurst fast-lane queries per dispatch.
      constexpr size_t kLaneBurst = 3;
      const bool take_fifo =
          fast_lane_.empty() || (!fifo_.empty() && lane_streak_ >= kLaneBurst);
      std::deque<Task>& q = take_fifo ? fifo_ : fast_lane_;
      lane_streak_ = take_fifo ? 0 : lane_streak_ + 1;
      task = std::move(q.front());
      q.pop_front();
    }
    cv_space_.notify_one();
    Execute(std::move(task));
  }
}

Result<plan::PlanRef> QueryService::PlanSingleFlight(
    const sgf::SgfQuery& query, const std::string& key,
    std::vector<uint64_t> epochs, bool use_cache, bool* coalesced) {
  *coalesced = false;

  // Single-flight: the first miss for a key becomes the leader and plans;
  // concurrent misses for the same key wait for the leader's result
  // instead of stampeding the planner with redundant sampling runs.
  // Independent of the cache switch: with the cache off nothing is
  // stored, but in-flight identical queries still share one planning run
  // — a lowered plan is immutable and reusable, so sharing it changes no
  // byte of any response (see executor.h).
  std::promise<Result<plan::PlanRef>> promise;
  std::shared_future<Result<plan::PlanRef>> shared;
  bool leader = false;
  {
    std::lock_guard<std::mutex> lock(plan_mu_);
    auto it = planning_.find(key);
    if (it != planning_.end()) {
      shared = it->second;
    } else {
      // No planning in flight — but a leader that finished between our
      // caller's cache miss and this point has already published its
      // plan; re-check the cache before redundantly re-planning.
      // (PlanCache never takes plan_mu_, so the nested lock is safe.)
      if (use_cache) {
        if (plan::PlanRef cached = cache_.PeekAfterMiss(key, epochs)) {
          return cached;
        }
      }
      leader = true;
      shared = promise.get_future().share();
      planning_.emplace(key, shared);
    }
  }
  if (!leader) {
    *coalesced = true;
    return shared.get();
  }

  Result<plan::PlanRef> outcome = [&]() -> Result<plan::PlanRef> {
    GUMBO_ASSIGN_OR_RETURN(plan::QueryPlan planned,
                           planner_.Plan(query, *db_));
    return std::make_shared<const plan::QueryPlan>(std::move(planned));
  }();
  // Publish to the cache BEFORE leaving the registry: combined with the
  // registry-miss cache re-check above, a concurrent miss always sees
  // either the registry entry or the cached plan, never a planning gap.
  if (outcome.ok()) {
    plans_built_.fetch_add(1, std::memory_order_relaxed);
    if (use_cache) cache_.Insert(key, std::move(epochs), *outcome);
  }
  {
    std::lock_guard<std::mutex> lock(plan_mu_);
    planning_.erase(key);
  }
  promise.set_value(outcome);
  return outcome;
}

void QueryService::Execute(Task task) {
  const int cur = inflight_.fetch_add(1) + 1;
  int seen = peak_inflight_.load();
  while (cur > seen && !peak_inflight_.compare_exchange_weak(seen, cur)) {
  }

  QueryResponse resp;
  const double queue_ms = MsSince(task.submitted);

  // ---- Plan: cache lookup keyed on signature + stats epochs ----
  // The key is computed even with the cache off: single-flight planning
  // coalesces identical in-flight queries either way.
  plan::PlanRef plan;
  bool cache_hit = false;
  double plan_ms = 0.0;
  const std::string key = PlanCacheKey(task.query, options_.planner);
  std::vector<uint64_t> epochs;
  if (options_.plan_cache) {
    epochs = PlanCache::EpochsOf(task.query, *db_);
    plan = cache_.Lookup(key, epochs);
    cache_hit = plan != nullptr;
  }
  if (plan == nullptr) {
    const Clock::time_point plan_start = Clock::now();
    bool coalesced = false;
    Result<plan::PlanRef> planned =
        PlanSingleFlight(task.query, key, std::move(epochs),
                         options_.plan_cache, &coalesced);
    plan_ms = MsSince(plan_start);
    if (coalesced) plan_coalesced_.fetch_add(1, std::memory_order_relaxed);
    if (!planned.ok()) {
      resp.status = planned.status();
    } else {
      plan = *planned;
    }
  }

  // ---- Execute against the shared snapshot via a private overlay ----
  // Admission lane -> morsel priority (DESIGN.md §9): fast-lane queries
  // execute at kHigh, so their morsels overtake normal-priority backlogs
  // inside the shared scheduler, not just the admission queue.
  double exec_ms = 0.0;
  double sched_wait_ms = 0.0;
  if (resp.ok()) {
    SchedGroupMetrics sched_metrics;
    SchedContext ctx;
    ctx.priority =
        task.fast ? SchedPriority::kHigh : SchedPriority::kNormal;
    ctx.metrics = &sched_metrics;
    const Clock::time_point exec_start = Clock::now();
    Result<plan::ExecutionResult> executed =
        plan::ExecutePlanOnSnapshot(*plan, runtime_, *db_, &resp.outputs, ctx);
    const double exec_wall_ms = MsSince(exec_start);
    // Attribution fix: time our morsels sat runnable-but-unserved is the
    // scheduler's doing, not the query's — report it as sched_wait so an
    // inflated p95 is diagnosable (DESIGN.md §9).
    sched_wait_ms =
        static_cast<double>(
            sched_metrics.stall_us.load(std::memory_order_relaxed)) /
        1e3;
    exec_ms = std::max(0.0, exec_wall_ms - sched_wait_ms);
    if (!executed.ok()) {
      resp.status = executed.status();
    } else {
      resp.metrics = executed->metrics;
      resp.stats = std::move(executed->stats);
      resp.metrics.sched_wait_ms = sched_wait_ms;
      resp.metrics.sched_morsels =
          sched_metrics.morsels.load(std::memory_order_relaxed);
      // Close the calibration loop (DESIGN.md §10): observed stats of this
      // execution refine the shared store so later plannings estimate
      // better. Thread-safe; results are unaffected (estimates only).
      plan::CalibrateFromExecution(*plan, resp.stats, options_.calibration);
    }
  }
  resp.metrics.plan_cache_hit = cache_hit;
  resp.metrics.queue_ms = queue_ms;
  resp.metrics.plan_ms = plan_ms;
  resp.wall_ms = MsSince(task.submitted);

  // ---- Aggregate metrics, then fulfill the caller's future ----
  total_latency_.Record(resp.wall_ms);
  queue_us_.fetch_add(static_cast<uint64_t>(queue_ms * 1e3),
                      std::memory_order_relaxed);
  plan_us_.fetch_add(static_cast<uint64_t>(plan_ms * 1e3),
                     std::memory_order_relaxed);
  exec_us_.fetch_add(static_cast<uint64_t>(exec_ms * 1e3),
                     std::memory_order_relaxed);
  sched_wait_us_.fetch_add(static_cast<uint64_t>(sched_wait_ms * 1e3),
                           std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (resp.ok()) {
      ++completed_;
    } else {
      ++failed_;
    }
  }
  inflight_.fetch_sub(1);
  task.promise.set_value(std::move(resp));
}

ServiceStats QueryService::Stats() const {
  ServiceStats s;
  {
    std::lock_guard<std::mutex> lock(mu_);
    s.submitted = submitted_;
    s.completed = completed_;
    s.failed = failed_;
    s.fast_lane = fast_lane_count_;
    s.rejected = rejected_;
  }
  s.peak_inflight = peak_inflight_.load();
  s.plan_coalesced = plan_coalesced_.load(std::memory_order_relaxed);
  s.plans_built = plans_built_.load(std::memory_order_relaxed);
  s.cache = cache_.counters();
  s.total_p50_ms = total_latency_.Percentile(0.50);
  s.total_p95_ms = total_latency_.Percentile(0.95);
  s.total_p99_ms = total_latency_.Percentile(0.99);
  const double n =
      static_cast<double>(s.completed + s.failed > 0 ? s.completed + s.failed
                                                     : 1);
  s.mean_queue_ms =
      static_cast<double>(queue_us_.load(std::memory_order_relaxed)) / 1e3 / n;
  s.mean_plan_ms =
      static_cast<double>(plan_us_.load(std::memory_order_relaxed)) / 1e3 / n;
  s.mean_exec_ms =
      static_cast<double>(exec_us_.load(std::memory_order_relaxed)) / 1e3 / n;
  s.mean_sched_wait_ms =
      static_cast<double>(sched_wait_us_.load(std::memory_order_relaxed)) /
      1e3 / n;
  s.scheduler = engine_.scheduler().stats();
  return s;
}

}  // namespace gumbo::serve
