#include "serve/result_cache.h"

namespace gumbo::serve {

std::shared_ptr<const ResultCache::Entry> ResultCache::Lookup(
    const std::string& key) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = slots_.find(key);
  if (it == slots_.end()) {
    ++counters_.misses;
    return nullptr;
  }
  lru_.splice(lru_.begin(), lru_, it->second.lru_it);
  return it->second.entry;
}

void ResultCache::Insert(const std::string& key, Entry entry) {
  if (capacity_ == 0) return;
  auto shared = std::make_shared<const Entry>(std::move(entry));
  std::lock_guard<std::mutex> lock(mu_);
  auto it = slots_.find(key);
  if (it != slots_.end()) {
    it->second.entry = std::move(shared);
    lru_.splice(lru_.begin(), lru_, it->second.lru_it);
    return;
  }
  while (slots_.size() >= capacity_) {
    slots_.erase(lru_.back());
    lru_.pop_back();
    ++counters_.evictions;
  }
  lru_.push_front(key);
  slots_.emplace(key, Slot{std::move(shared), lru_.begin()});
}

void ResultCache::Invalidate(const std::string& key) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = slots_.find(key);
  if (it == slots_.end()) return;
  lru_.erase(it->second.lru_it);
  slots_.erase(it);
  ++counters_.invalidations;
}

void ResultCache::NoteHit() {
  std::lock_guard<std::mutex> lock(mu_);
  ++counters_.hits;
}

void ResultCache::NoteDeltaHit() {
  std::lock_guard<std::mutex> lock(mu_);
  ++counters_.delta_hits;
}

ResultCache::Counters ResultCache::counters() const {
  std::lock_guard<std::mutex> lock(mu_);
  Counters c = counters_;
  c.entries = slots_.size();  // gauge, derived here rather than tracked
  return c;
}

void ResultCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  slots_.clear();
  lru_.clear();
}

}  // namespace gumbo::serve
