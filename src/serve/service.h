// QueryService: the concurrent serving layer over the round-parallel
// runtime (DESIGN.md §8).
//
// Many callers submit SGF queries concurrently; the service runs them
// through
//   (a) an admission scheduler — a bounded-backlog FIFO with a small-job
//       fast lane, drained by max_inflight worker threads that execute
//       admitted queries simultaneously on the shared morsel scheduler.
//       The admission lanes map onto scheduler priority classes
//       (DESIGN.md §9): fast-lane queries run their morsels at kHigh, so
//       a small query's morsels preempt — at morsel granularity — the
//       backlog of a running analytical monster instead of queueing
//       behind whole phases of it;
//   (b) a plan cache — canonicalized query signature + database stats
//       epochs -> lowered immutable QueryPlan, so a repeated (or
//       alpha-renamed) query skips planning, sampling, and grouping
//       entirely (serve/plan_cache.h). Concurrent misses for the same
//       key are coalesced (single-flight): one worker plans, the rest
//       wait for its result instead of stampeding the planner with
//       redundant sampling runs. Coalescing applies with the cache off
//       too — identical in-flight queries share one planning run even
//       when nothing is ever stored.
//
//   (c) a result cache + delta evaluation layer (DESIGN.md §12) — plan
//       cache key -> materialized canonical outputs, validated against
//       the same stats epochs. A repeat query over unchanged data is a
//       *pure hit* (the stored outputs are the answer; no execution); a
//       repeat over insert-only epoch movement is *delta-maintained*:
//       the cached plan re-runs over just the delta slices
//       (serve/delta.h) and the union refreshes the cache entry. Any
//       other movement invalidates the entry (and the plan cache entry)
//       exactly as before. GUMBO_DISABLE_DELTA=1 forces this layer off.
//
// Every query executes against the same immutable base Database snapshot
// through a private overlay (plan::ExecutePlanOnSnapshot), so results are
// byte-identical to a solo run regardless of admission order, pool
// contention, or cache hits: the engine's determinism is per-query, and
// queries share nothing mutable. Mutations go through the service's own
// write API (AddFact, available when constructed over a mutable
// database), which serializes against in-flight executions with a
// reader/writer lock; a caller holding the database directly must still
// only mutate it between quiesced periods.
#ifndef GUMBO_SERVE_SERVICE_H_
#define GUMBO_SERVE_SERVICE_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <future>
#include <map>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/cancel.h"
#include "common/fault.h"
#include "common/relation.h"
#include "common/scheduler.h"
#include "cost/constants.h"
#include "dist/cluster.h"
#include "mr/engine.h"
#include "mr/runtime.h"
#include "plan/executor.h"
#include "plan/planner.h"
#include "serve/metrics.h"
#include "serve/plan_cache.h"
#include "serve/result_cache.h"

namespace gumbo::serve {

struct ServiceOptions {
  /// Concurrent query executions (admission worker threads). 1 =
  /// serialized admission (the pre-serve behavior, used as the bench
  /// baseline).
  size_t max_inflight = 4;
  /// Bounded backlog: Submit blocks once this many queries are queued
  /// (closed-loop callers self-throttle; open-loop callers feel
  /// backpressure instead of growing an unbounded queue).
  size_t max_queued = 1024;
  /// Queries whose total atom count (guard + conditionals, summed over
  /// subqueries) is <= this threshold are admitted through the fast lane:
  /// workers prefer it over the FIFO, so cheap interactive queries are
  /// not stuck behind analytical monsters. 0 disables the fast lane.
  /// Starvation-proof: after every few consecutive fast-lane dispatches
  /// a FIFO task is taken regardless (see WorkerLoop), so the FIFO head
  /// waits a bounded number of small queries even under a sustained
  /// fast-lane stream.
  size_t fast_lane_max_atoms = 4;
  /// Plan cache switch + capacity (entries).
  bool plan_cache = true;
  size_t plan_cache_capacity = 64;
  /// Result cache + incremental delta evaluation (DESIGN.md §12): cached
  /// query outputs are served without execution while their epochs hold,
  /// and maintained by a delta pass across insert-only writes instead of
  /// being recomputed. Off = every epoch movement invalidates (the
  /// pre-delta behavior). Forced off by GUMBO_DISABLE_DELTA=1;
  /// GUMBO_RESULT_CACHE_CAP overrides the capacity.
  bool result_cache = true;
  size_t result_cache_capacity = 32;
  plan::PlannerOptions planner;
  cost::ClusterConfig cluster;
  mr::RuntimeOptions runtime;
  /// Optional calibration feedback loop (DESIGN.md §10): when set, every
  /// successful execution's observed stats are fed back through
  /// plan::CalibrateFromExecution, and the planner estimates through the
  /// store (it is installed as planner.calibration if that is unset).
  /// Non-owning; must outlive the service. The store is thread-safe, so
  /// concurrent workers may feed it simultaneously.
  cost::CalibrationStore* calibration = nullptr;
  /// Default per-query deadline (ms) applied when a submission carries
  /// none; 0 = queries without their own deadline run unbounded. A
  /// per-query deadline composes with this to the stricter of the two
  /// (the token keeps the earliest deadline ever armed).
  double default_deadline_ms = 0.0;
  /// Saturation watermark for load shedding (DESIGN.md §11): once
  /// inflight + queued reaches this, Submit rejects kLow-priority and
  /// already-over-deadline queries with ResourceExhausted instead of
  /// queueing (or blocking) them. 0 = max_inflight + max_queued, i.e.
  /// shed only instead of blocking on a full backlog.
  size_t shed_watermark = 0;
  /// Fault injection for chaos runs (DESIGN.md §11). Non-owning; must
  /// outlive the service. nullptr = the process-wide GUMBO_FAULT_* env
  /// configuration (inactive unless GUMBO_FAULT_RATE is set).
  const FaultInjector* faults = nullptr;
  /// Sharded execution (DESIGN.md §13): dist.shards > 1 routes every
  /// query execution through `dist.shards` in-process worker shards over
  /// an InProcTransport (plan::ExecutionContext::local_shards) —
  /// byte-identical outputs, real wire bytes charged to the cost model.
  /// GUMBO_SHARDS layers over this (env wins when set). Delta passes
  /// stay single-process: their inputs are delta-sized by construction.
  dist::ClusterOptions dist;
};

/// Per-query submission options — the one place deadline, priority, and
/// cancellation live (callers used to thread them separately). Builder
/// style: `QueryOptions().WithDeadlineMs(50).WithPriority(kHigh)` reads
/// as the submission it configures; plain aggregate initialization still
/// works. All defaults preserve the plain Submit(query) behavior: no
/// deadline beyond the service default, normal priority, no external
/// cancellation.
struct QueryOptions {
  /// Wall-clock budget from submission (ms); <= 0 = only the service
  /// default applies. Past the deadline the query fails with
  /// kDeadlineExceeded — dropped before execution if still queued, or
  /// cooperatively cancelled at the next morsel boundary if in flight.
  double deadline_ms = 0.0;
  /// Admission class. kHigh behaves like the fast lane (jump the FIFO,
  /// morsels at kHigh); kLow is background work the service sheds first
  /// under saturation. Queries the fast-lane heuristic admits are
  /// promoted to kHigh regardless.
  SchedPriority priority = SchedPriority::kNormal;
  /// Optional caller-owned cancellation token: Cancel() stops the query
  /// cooperatively whether it is still queued or already executing (the
  /// response then carries the token's terminal status). Deadlines are
  /// armed on this token when provided. Must outlive the response
  /// future's completion.
  CancelToken* cancel = nullptr;

  // ---- Builder surface ----
  QueryOptions& WithDeadlineMs(double ms) {
    deadline_ms = ms;
    return *this;
  }
  QueryOptions& WithPriority(SchedPriority p) {
    priority = p;
    return *this;
  }
  QueryOptions& WithCancel(CancelToken* token) {
    cancel = token;
    return *this;
  }
};

/// The per-query metrics a Response carries: the paper's §5.1 figures
/// plus the serving fields (plan_cache_hit, queue_ms, plan_ms, ...).
using QueryMetrics = plan::Metrics;

/// The typed outcome of one query — status, outputs, and metrics travel
/// together, so callers never fish through futures plus side-channel
/// stats accessors.
struct Response {
  Status status = Status::Ok();
  bool ok() const { return status.ok(); }
  /// The query's output relations (subquery output names), moved out of
  /// the per-query overlay. Base relations are not included.
  Database outputs;
  QueryMetrics metrics;
  /// Per-job statistics of the execution (empty on failure).
  mr::ProgramStats stats;
  /// End-to-end submit -> response wall time.
  double wall_ms = 0.0;
};

/// Deprecated pre-§13 name for Response; kept as a shim (pinned by
/// tests/serve_test.cc) so existing callers keep compiling. New code
/// should spell serve::Response.
using QueryResponse = Response;

class QueryService {
 public:
  /// `db` is the base snapshot every query reads; it must outlive the
  /// service and stay unmutated while queries are in flight. `scheduler`
  /// supplies morsel-level map/reduce parallelism (nullptr =
  /// Scheduler::Global()), shared by all in-flight queries.
  QueryService(const Database* db, ServiceOptions options,
               Scheduler* scheduler = nullptr);
  /// Mutable-base construction: same as above, and additionally enables
  /// the service's write API (AddFact), which serializes writes against
  /// in-flight query executions. Direct external mutation of `db` must
  /// still happen only while the service is quiesced.
  QueryService(Database* db, ServiceOptions options,
               Scheduler* scheduler = nullptr);
  /// Drains the backlog (every accepted query is answered), then joins.
  ~QueryService();

  QueryService(const QueryService&) = delete;
  QueryService& operator=(const QueryService&) = delete;

  /// Enqueues `query` and returns the future response. Blocks while the
  /// backlog is full (unless shedding applies, see ServiceOptions);
  /// after Shutdown the returned future holds a FailedPrecondition
  /// response immediately, and a shed query holds ResourceExhausted.
  std::future<Response> Submit(sgf::SgfQuery query, QueryOptions qopts = {});

  /// Submit + wait: the blocking convenience for closed-loop callers.
  Response Run(sgf::SgfQuery query, QueryOptions qopts = {});

  /// Stops accepting new queries; already-accepted ones still complete.
  void Shutdown();

  /// Appends a fact to base relation `name` (DESIGN.md §12). Requires
  /// mutable-base construction (FailedPrecondition otherwise). Takes the
  /// write half of the database lock, so the append is serialized against
  /// in-flight query executions; the insert-only epoch bump lets cached
  /// results be delta-maintained instead of invalidated.
  Status AddFact(const std::string& name, const Tuple& t);

  /// Aggregate counters + latency quantiles (serve/metrics.h).
  ServiceStats Stats() const;

  const ServiceOptions& options() const { return options_; }
  const PlanCache& plan_cache() const { return cache_; }
  const ResultCache& result_cache() const { return results_; }

 private:
  struct Task {
    sgf::SgfQuery query;
    std::promise<QueryResponse> promise;
    std::chrono::steady_clock::time_point submitted;
    /// Admitted through the fast lane -> morsels run at kHigh priority.
    bool fast = false;
    /// Morsel priority class of this query's execution.
    SchedPriority priority = SchedPriority::kNormal;
    /// The token the whole stack polls: the caller's when one was
    /// supplied, otherwise `owned` (created only when a deadline is
    /// armed). nullptr = uncancellable.
    CancelToken* token = nullptr;
    std::shared_ptr<CancelToken> owned;
    /// Absolute deadline for EDF dequeueing; time_point::max() = none.
    std::chrono::steady_clock::time_point deadline =
        std::chrono::steady_clock::time_point::max();
  };

  void WorkerLoop();
  void Execute(Task task);
  /// Pops the next task from `q` in earliest-deadline-first order
  /// (deadline ties resolve to queue order). Caller holds mu_.
  static Task PopEdf(std::deque<Task>* q);
  static size_t AtomCount(const sgf::SgfQuery& query);

  /// Plans `query` (or waits for a concurrent planning of the same key —
  /// single-flight). `use_cache` additionally publishes the result to /
  /// re-checks the plan cache; coalescing itself only needs the key, so
  /// identical concurrent queries share one planning run either way.
  Result<plan::PlanRef> PlanSingleFlight(const sgf::SgfQuery& query,
                                         const std::string& key,
                                         std::vector<uint64_t> epochs,
                                         bool use_cache, bool* coalesced);

  /// Result-cache front door (DESIGN.md §12): pure hit, delta pass, or
  /// invalidation for `key` at the current `epochs`. Returns true when
  /// `resp` is final (hit or delta — including a delta pass that failed,
  /// e.g. cancelled mid-run); false = fall through to plan + execute.
  /// Caller holds the read half of db_mu_.
  bool TryResultCache(const Task& task, const std::string& key,
                      const std::vector<std::string>& names,
                      const std::vector<uint64_t>& epochs,
                      QueryResponse* resp);

  const Database* db_;
  /// Non-null iff constructed over a mutable database; target of AddFact.
  Database* mutable_db_ = nullptr;
  ServiceOptions options_;
  /// The env-configured injector backing options_.faults when the caller
  /// supplied none; faults_ below is the one actually consulted.
  FaultInjector env_faults_;
  const FaultInjector* faults_;
  mr::Engine engine_;
  mr::Runtime runtime_;
  plan::Planner planner_;
  PlanCache cache_;
  ResultCache results_;
  /// Readers = query executions (epoch capture through result-cache
  /// refresh happens under one shared hold, so a write never interleaves
  /// with an execution's snapshot); writer = AddFact.
  mutable std::shared_mutex db_mu_;

  mutable std::mutex mu_;
  std::condition_variable cv_work_;   ///< workers wait for backlog items
  std::condition_variable cv_space_;  ///< submitters wait for backlog room
  std::deque<Task> fifo_;
  std::deque<Task> fast_lane_;
  /// Consecutive fast-lane dispatches since the last FIFO dispatch
  /// (anti-starvation bookkeeping, see WorkerLoop).
  size_t lane_streak_ = 0;
  bool stopping_ = false;

  // Single-flight planning registry: key -> the shared outcome of the
  // one in-progress planning for that key.
  std::mutex plan_mu_;
  std::map<std::string, std::shared_future<Result<plan::PlanRef>>> planning_;

  // Aggregate metrics; counters under mu_, histograms lock-free.
  uint64_t submitted_ = 0;
  uint64_t completed_ = 0;
  uint64_t failed_ = 0;
  uint64_t fast_lane_count_ = 0;
  uint64_t rejected_ = 0;
  uint64_t deadline_exceeded_ = 0;
  uint64_t cancelled_ = 0;
  uint64_t shed_ = 0;
  std::atomic<uint64_t> plan_coalesced_{0};
  std::atomic<uint64_t> plans_built_{0};
  std::atomic<uint64_t> result_hits_{0};
  std::atomic<uint64_t> delta_hits_{0};
  std::atomic<uint64_t> delta_rows_{0};
  std::atomic<uint64_t> delta_us_{0};  ///< wall time of delta passes
  std::atomic<uint64_t> task_retries_{0};
  std::atomic<uint64_t> faults_injected_{0};
  std::atomic<uint64_t> retry_us_{0};
  std::atomic<uint64_t> cancel_us_{0};     ///< token latch -> response
  std::atomic<uint64_t> cancel_count_{0};  ///< responses behind cancel_us_
  std::atomic<int> inflight_{0};
  std::atomic<int> peak_inflight_{0};
  LatencyHistogram total_latency_;
  std::atomic<uint64_t> queue_us_{0};
  std::atomic<uint64_t> plan_us_{0};
  /// Execution time net of scheduler stalls; the stall share lands in
  /// sched_wait_us_ instead, so a p95 regression is attributable
  /// (DESIGN.md §9).
  std::atomic<uint64_t> exec_us_{0};
  std::atomic<uint64_t> sched_wait_us_{0};

  std::vector<std::thread> workers_;
};

}  // namespace gumbo::serve

#endif  // GUMBO_SERVE_SERVICE_H_
