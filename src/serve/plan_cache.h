// The serving-layer plan cache (DESIGN.md §8): canonical query signature
// -> lowered, immutable QueryPlan, validated against the database's
// per-relation statistics epochs.
//
// An entry is keyed by serve::PlanCacheKey (alpha-renaming-invariant
// query signature + planner-options fingerprint) and stores the stats
// epochs of the base relations the query reads, captured at planning
// time. A lookup whose epoch vector differs from the stored one is an
// *invalidation*: the data under the plan changed, so the stale entry is
// dropped and the caller re-plans (re-sampling against the new data).
// Capacity is bounded with LRU eviction. All operations are thread-safe;
// returned PlanRefs are shared and immutable, so hits from many threads
// execute the same plan object concurrently.
#ifndef GUMBO_SERVE_PLAN_CACHE_H_
#define GUMBO_SERVE_PLAN_CACHE_H_

#include <cstdint>
#include <list>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/relation.h"
#include "plan/planner.h"
#include "sgf/sgf.h"

namespace gumbo::serve {

class PlanCache {
 public:
  /// Monotonic counters, readable at any time (Counters()).
  struct Counters {
    uint64_t hits = 0;
    uint64_t misses = 0;         ///< no entry for the key
    uint64_t invalidations = 0;  ///< entry found but stats epochs moved
    uint64_t evictions = 0;      ///< LRU capacity evictions
    uint64_t entries = 0;        ///< current size (gauge, not a counter)
  };

  explicit PlanCache(size_t capacity = 64) : capacity_(capacity) {}

  /// The relation names whose epochs key a cached plan for `query`: every
  /// name the query mentions (base relations AND produced names — produced
  /// names shadow base relations if present), sorted and deduplicated.
  static std::vector<std::string> EpochNamesOf(const sgf::SgfQuery& query);

  /// The epoch vector a cached plan for `query` must match: the stats
  /// epoch of each EpochNamesOf name, in that order.
  static std::vector<uint64_t> EpochsOf(const sgf::SgfQuery& query,
                                        const Database& db);

  /// Returns the cached plan for `key` when present and its stored epoch
  /// vector equals `epochs`; nullptr otherwise (counting a miss, or an
  /// invalidation when a stale entry was dropped).
  plan::PlanRef Lookup(const std::string& key,
                       const std::vector<uint64_t>& epochs);

  /// The single-flight re-check: like Lookup, but a second probe for a
  /// query whose miss was already counted — finding the entry counts a
  /// hit (the query is served from the cache after all); finding nothing
  /// counts nothing, so the common cold path stays one miss per query.
  plan::PlanRef PeekAfterMiss(const std::string& key,
                              const std::vector<uint64_t>& epochs);

  /// Inserts (or replaces) the plan for `key`, evicting the least
  /// recently used entry when at capacity. A capacity of 0 disables
  /// storage entirely.
  void Insert(const std::string& key, std::vector<uint64_t> epochs,
              plan::PlanRef plan);

  Counters counters() const;
  size_t capacity() const { return capacity_; }
  void Clear();

 private:
  struct Entry {
    std::vector<uint64_t> epochs;
    plan::PlanRef plan;
    std::list<std::string>::iterator lru_it;
  };

  mutable std::mutex mu_;
  size_t capacity_;
  std::list<std::string> lru_;  ///< front = most recently used
  std::unordered_map<std::string, Entry> entries_;
  Counters counters_;
};

}  // namespace gumbo::serve

#endif  // GUMBO_SERVE_PLAN_CACHE_H_
