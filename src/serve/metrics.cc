#include "serve/metrics.h"

#include <cmath>

namespace gumbo::serve {

void LatencyHistogram::Record(double ms) {
  if (ms < 0.0) ms = 0.0;
  size_t b = 0;
  // Bucket index = 1 + floor(log2(ms)) for ms >= 1, clamped to the range.
  if (ms >= 1.0) {
    b = static_cast<size_t>(1.0 + std::floor(std::log2(ms)));
    if (b >= kBuckets) b = kBuckets - 1;
  }
  buckets_[b].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_us_.fetch_add(static_cast<uint64_t>(ms * 1e3),
                    std::memory_order_relaxed);
}

double LatencyHistogram::Percentile(double p) const {
  const uint64_t n = count();
  if (n == 0) return 0.0;
  if (p < 0.0) p = 0.0;
  if (p > 1.0) p = 1.0;
  const uint64_t rank = static_cast<uint64_t>(std::ceil(
      p * static_cast<double>(n)));
  uint64_t seen = 0;
  for (size_t b = 0; b < kBuckets; ++b) {
    seen += buckets_[b].load(std::memory_order_relaxed);
    if (seen >= rank && seen > 0) {
      // Geometric midpoint of [2^(b-1), 2^b); bucket 0 reports 0.5 ms.
      if (b == 0) return 0.5;
      const double lo = std::pow(2.0, static_cast<double>(b) - 1.0);
      return lo * std::sqrt(2.0);
    }
  }
  return std::pow(2.0, static_cast<double>(kBuckets - 1));
}

}  // namespace gumbo::serve
