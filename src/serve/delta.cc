#include "serve/delta.h"

namespace gumbo::serve {

const char* DeltaFallbackName(DeltaFallback f) {
  switch (f) {
    case DeltaFallback::kNone:
      return "none";
    case DeltaFallback::kDestructive:
      return "destructive-mutation";
    case DeltaFallback::kNoWatermark:
      return "watermark-aged-out";
    case DeltaFallback::kConditionalDelta:
      return "delta-in-conditional-position";
    case DeltaFallback::kMissingRelation:
      return "missing-relation";
  }
  return "unknown";
}

DeltaPlan PlanDelta(const sgf::SgfQuery& query, const Database& db,
                    const std::vector<std::string>& names,
                    const std::vector<uint64_t>& cached_epochs,
                    const std::vector<uint64_t>& current_epochs) {
  DeltaPlan plan;
  auto fallback = [&plan](DeltaFallback f) {
    plan.eligible = false;
    plan.fallback = f;
    plan.overrides = Database();
    plan.dirty.clear();
    plan.delta_rows = 0;
    return plan;
  };
  if (names.size() != cached_epochs.size() ||
      names.size() != current_epochs.size()) {
    return fallback(DeltaFallback::kMissingRelation);
  }

  // The moved set: names whose stats epoch differs between the cached
  // result and now. Each must be an insert-only movement with a retained
  // watermark, or the whole lookup falls back to invalidation.
  struct Moved {
    const std::string* name;
    size_t from_rows;
  };
  std::vector<Moved> moved;
  for (size_t i = 0; i < names.size(); ++i) {
    if (cached_epochs[i] == current_epochs[i]) continue;
    const std::string& name = names[i];
    if (!db.InsertOnlySince(name, cached_epochs[i])) {
      return fallback(DeltaFallback::kDestructive);
    }
    std::optional<size_t> rows = db.RowsAtEpoch(name, cached_epochs[i]);
    if (!rows.has_value()) return fallback(DeltaFallback::kNoWatermark);
    moved.push_back(Moved{&name, *rows});
    plan.dirty.insert(name);
  }
  if (moved.empty()) {
    // No movement at all: the caller should have taken the pure-hit path;
    // report eligible-with-empty-delta so it degrades gracefully.
    plan.eligible = true;
    return plan;
  }

  // Dirty-set fixpoint over the subquery dependency graph: a subquery
  // whose guard relation is dirty produces a delta-only output, which is
  // itself dirty for any downstream consumer. (Subqueries may reference
  // earlier outputs in any order, so iterate to a fixpoint.)
  bool changed = true;
  while (changed) {
    changed = false;
    for (const sgf::BsgfQuery& q : query.subqueries()) {
      if (plan.dirty.count(q.guard().relation()) > 0 &&
          plan.dirty.insert(q.output()).second) {
        changed = true;
      }
    }
  }

  // Guard-only restriction: a dirty relation read in conditional position
  // is not delta-expressible (the subquery's output changes without its
  // guard delta changing — non-monotone under negation, and not
  // guard-distributive even without it).
  for (const sgf::BsgfQuery& q : query.subqueries()) {
    for (const sgf::Atom& a : q.conditional_atoms()) {
      if (plan.dirty.count(a.relation()) > 0) {
        return fallback(DeltaFallback::kConditionalDelta);
      }
    }
  }

  // Build the shadow slices: for each moved base relation, exactly its
  // arena tail past the cached watermark, materialized under the same
  // name (bulk copy of words + stored fingerprints, no re-hash).
  for (const Moved& m : moved) {
    Result<const Relation*> rel = db.Get(*m.name);
    if (!rel.ok()) return fallback(DeltaFallback::kMissingRelation);
    const size_t now = (*rel)->size();
    if (m.from_rows > now) {
      // Defensive: a watermark past the current size means the history
      // lied (should be impossible for insert-only movement).
      return fallback(DeltaFallback::kDestructive);
    }
    plan.delta_rows += now - m.from_rows;
    plan.overrides.Put((*rel)->CloneRange(m.from_rows, now));
  }
  plan.eligible = true;
  return plan;
}

}  // namespace gumbo::serve
