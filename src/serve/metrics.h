// Serving-layer observability (DESIGN.md §8): a lock-free log-bucketed
// latency histogram plus the aggregate counter snapshot the QueryService
// exposes. Per-query detail (JobStats, plan::Metrics with cache/queue
// fields) travels in each QueryResponse; this header is the cross-query
// aggregate view.
#ifndef GUMBO_SERVE_METRICS_H_
#define GUMBO_SERVE_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>

#include "common/scheduler.h"
#include "serve/plan_cache.h"
#include "serve/result_cache.h"

namespace gumbo::serve {

/// Log2-bucketed latency histogram over milliseconds. Record is wait-free
/// (relaxed atomics: buckets are independent counters and readers only
/// need eventual totals); Percentile answers from bucket geometric
/// midpoints, so quantiles carry at most one bucket (~2x) of resolution
/// error — the right tool for "did p99 explode", not for microbenchmark
/// deltas (bench_serve computes exact percentiles from raw samples).
class LatencyHistogram {
 public:
  /// Bucket b counts latencies in [2^(b-1), 2^b) ms; bucket 0 is < 1 ms,
  /// the last bucket is open-ended (~9 hours).
  static constexpr size_t kBuckets = 26;

  void Record(double ms);

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum_ms() const {
    return static_cast<double>(sum_us_.load(std::memory_order_relaxed)) / 1e3;
  }
  double mean_ms() const {
    const uint64_t n = count();
    return n == 0 ? 0.0 : sum_ms() / static_cast<double>(n);
  }
  /// Approximate p-quantile (p in [0, 1]) in milliseconds.
  double Percentile(double p) const;

 private:
  std::array<std::atomic<uint64_t>, kBuckets> buckets_{};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_us_{0};
};

/// Aggregate service counters, captured atomically enough for monitoring
/// (individual fields are consistent; cross-field arithmetic can be off
/// by in-flight queries).
struct ServiceStats {
  uint64_t submitted = 0;   ///< Submit calls accepted into a queue
  uint64_t completed = 0;   ///< responses fulfilled with an OK status
  uint64_t failed = 0;      ///< responses fulfilled with an error status
  uint64_t fast_lane = 0;   ///< queries admitted through the fast lane
  uint64_t rejected = 0;    ///< submissions refused (service shut down)
  // ---- Failure handling (DESIGN.md §11) ----
  uint64_t deadline_exceeded = 0;  ///< responses failed past their deadline
  uint64_t cancelled = 0;          ///< responses failed by explicit cancel
  /// Submissions rejected under saturation (kLow class or already past
  /// deadline while the service was at its shed watermark); these return
  /// ResourceExhausted from Submit without ever queueing.
  uint64_t shed = 0;
  uint64_t task_retries = 0;    ///< task attempts re-run (jobs + planner)
  uint64_t faults_injected = 0; ///< injected faults across all queries
  /// Cache misses that waited on a concurrent planning of the same key
  /// instead of planning redundantly (single-flight coalescing).
  uint64_t plan_coalesced = 0;
  /// Plans actually lowered by the planner (single-flight leaders and
  /// cache-off queries). Every successful query is exactly one of:
  /// cache hit, coalesced wait, or plans_built.
  uint64_t plans_built = 0;
  int peak_inflight = 0;    ///< observed peak of concurrent executions
  PlanCache::Counters cache;
  // ---- Incremental delta evaluation (DESIGN.md §12) ----
  /// Queries answered straight from the result cache (no execution).
  uint64_t result_hits = 0;
  /// Queries answered by delta-maintaining a cached result instead of
  /// re-executing it from scratch.
  uint64_t delta_hits = 0;
  /// Total input delta rows those maintenance passes consumed.
  uint64_t delta_rows = 0;
  /// Mean wall time of a delta maintenance pass (ms).
  double mean_delta_ms = 0.0;
  ResultCache::Counters result_cache;
  // Latency quantiles (ms) over completed+failed queries, end to end
  // (submit -> response) and per phase.
  double total_p50_ms = 0.0;
  double total_p95_ms = 0.0;
  double total_p99_ms = 0.0;
  double mean_queue_ms = 0.0;
  double mean_plan_ms = 0.0;
  /// Execution net of scheduler stalls; the stall share is
  /// mean_sched_wait_ms (DESIGN.md §9 attribution fix), so "queries got
  /// slower" and "queries waited their turn" are separate signals.
  double mean_exec_ms = 0.0;
  double mean_sched_wait_ms = 0.0;
  /// Mean wall time per response spent in abandoned (retried) task
  /// attempts — the latency cost of fault recovery, split out like
  /// mean_sched_wait_ms so a chaos run's p95 inflation is attributable.
  double mean_retry_ms = 0.0;
  /// Mean cancellation take-effect latency over cancelled /
  /// deadline-exceeded responses: token latch -> response fulfilled (how
  /// long cooperative cancellation took to drain the in-flight work).
  double mean_cancel_ms = 0.0;
  /// Morsel-scheduler counters of the engine's scheduler (steals, local
  /// hits, morsels, priority inversions avoided, ...). Process-wide when
  /// the service runs on Scheduler::Global().
  SchedulerStats scheduler;
};

}  // namespace gumbo::serve

#endif  // GUMBO_SERVE_METRICS_H_
