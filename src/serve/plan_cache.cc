#include "serve/plan_cache.h"

#include <algorithm>

namespace gumbo::serve {

std::vector<std::string> PlanCache::EpochNamesOf(const sgf::SgfQuery& query) {
  // Every relation name the query mentions, sorted and deduplicated so
  // the vector ordering is independent of mention order. Produced names
  // are included too: they normally do not exist in the base database
  // (epoch 0), but if a caller pre-populated one, its mutations must
  // invalidate just like a base relation's.
  std::vector<std::string> names = query.BaseRelations();
  for (const std::string& n : query.ProducedNames()) names.push_back(n);
  std::sort(names.begin(), names.end());
  names.erase(std::unique(names.begin(), names.end()), names.end());
  return names;
}

std::vector<uint64_t> PlanCache::EpochsOf(const sgf::SgfQuery& query,
                                          const Database& db) {
  const std::vector<std::string> names = EpochNamesOf(query);
  std::vector<uint64_t> epochs;
  epochs.reserve(names.size());
  for (const std::string& n : names) epochs.push_back(db.StatsEpochOf(n));
  return epochs;
}

plan::PlanRef PlanCache::Lookup(const std::string& key,
                                const std::vector<uint64_t>& epochs) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(key);
  if (it == entries_.end()) {
    ++counters_.misses;
    return nullptr;
  }
  if (it->second.epochs != epochs) {
    // The data under this plan changed: drop the stale entry and make the
    // caller re-plan (and re-sample) against the new statistics.
    lru_.erase(it->second.lru_it);
    entries_.erase(it);
    ++counters_.invalidations;
    ++counters_.misses;
    return nullptr;
  }
  lru_.splice(lru_.begin(), lru_, it->second.lru_it);
  ++counters_.hits;
  return it->second.plan;
}

plan::PlanRef PlanCache::PeekAfterMiss(const std::string& key,
                                       const std::vector<uint64_t>& epochs) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(key);
  if (it == entries_.end() || it->second.epochs != epochs) {
    return nullptr;  // quiet: this query's miss is already on the books
  }
  lru_.splice(lru_.begin(), lru_, it->second.lru_it);
  ++counters_.hits;
  return it->second.plan;
}

void PlanCache::Insert(const std::string& key, std::vector<uint64_t> epochs,
                       plan::PlanRef plan) {
  if (capacity_ == 0) return;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(key);
  if (it != entries_.end()) {
    it->second.epochs = std::move(epochs);
    it->second.plan = std::move(plan);
    lru_.splice(lru_.begin(), lru_, it->second.lru_it);
    return;
  }
  while (entries_.size() >= capacity_) {
    entries_.erase(lru_.back());
    lru_.pop_back();
    ++counters_.evictions;
  }
  lru_.push_front(key);
  entries_.emplace(key,
                   Entry{std::move(epochs), std::move(plan), lru_.begin()});
}

PlanCache::Counters PlanCache::counters() const {
  std::lock_guard<std::mutex> lock(mu_);
  Counters c = counters_;
  c.entries = entries_.size();  // gauge, derived here rather than tracked
  return c;
}

void PlanCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  entries_.clear();
  lru_.clear();
}

}  // namespace gumbo::serve
