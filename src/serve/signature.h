// Canonical query signatures for the serving-layer plan cache
// (DESIGN.md §8).
//
// Two queries that are alpha-equivalent — identical up to a consistent
// renaming of their (per-subquery-scoped) variables — lower to the same
// plan shape, so they must share one cache entry. The signature renames
// every variable to its first-occurrence index and serializes the query
// structurally; relation names, output names, constants, atom order, and
// condition structure all stay significant, because each of them changes
// the lowered plan.
#ifndef GUMBO_SERVE_SIGNATURE_H_
#define GUMBO_SERVE_SIGNATURE_H_

#include <string>

#include "plan/planner.h"
#include "sgf/sgf.h"

namespace gumbo::serve {

/// Alpha-renaming-invariant canonical signature of `query`. Queries with
/// equal signatures produce byte-identical lowered plans under the same
/// planner options and database statistics.
std::string CanonicalQuerySignature(const sgf::SgfQuery& query);

/// Fingerprint of every planner knob that changes the lowered plan:
/// strategy, operator options (after the GUMBO_DISABLE_* environment
/// overrides the planner itself applies), cost variant, sample size, and
/// the brute-force grouping limit.
std::string PlannerFingerprint(const plan::PlannerOptions& options);

/// The full plan-cache key: CanonicalQuerySignature + PlannerFingerprint.
std::string PlanCacheKey(const sgf::SgfQuery& query,
                         const plan::PlannerOptions& options);

}  // namespace gumbo::serve

#endif  // GUMBO_SERVE_SIGNATURE_H_
