#include "serve/signature.h"

#include <map>

#include "common/str_util.h"
#include "ops/options.h"

namespace gumbo::serve {

namespace {

// Maps variable names to dense first-occurrence indices. Variables are
// scoped per BSGF subquery (paper §3.1), so each subquery gets a fresh
// canonicalizer.
class VarCanon {
 public:
  void Append(const std::string& var, std::string* out) {
    auto [it, inserted] = ids_.emplace(var, ids_.size());
    (void)inserted;
    *out += 'v';
    *out += std::to_string(it->second);
  }

 private:
  std::map<std::string, size_t> ids_;
};

void AppendTerm(const sgf::Term& t, VarCanon* vars, std::string* out) {
  if (t.is_variable()) {
    vars->Append(t.var(), out);
    return;
  }
  // Constants serialize by raw payload: ints by value, strings by interned
  // id (stable for the lifetime of the process dictionary).
  const Value v = t.value();
  if (v.is_int()) {
    *out += '#';
    *out += std::to_string(v.AsInt());
  } else {
    *out += '$';
    *out += std::to_string(v.string_id());
  }
}

void AppendAtom(const sgf::Atom& atom, VarCanon* vars, std::string* out) {
  *out += atom.relation();
  *out += '(';
  const auto& terms = atom.terms();
  for (size_t i = 0; i < terms.size(); ++i) {
    if (i > 0) *out += ',';
    AppendTerm(terms[i], vars, out);
  }
  *out += ')';
}

}  // namespace

std::string CanonicalQuerySignature(const sgf::SgfQuery& query) {
  std::string out;
  for (const sgf::BsgfQuery& q : query.subqueries()) {
    VarCanon vars;
    out += q.output();
    out += "<-sel(";
    const auto& sel = q.select_vars();
    for (size_t i = 0; i < sel.size(); ++i) {
      if (i > 0) out += ',';
      vars.Append(sel[i], &out);
    }
    out += ")from:";
    AppendAtom(q.guard(), &vars, &out);
    for (const sgf::Atom& atom : q.conditional_atoms()) {
      out += ";c:";
      AppendAtom(atom, &vars, &out);
    }
    if (q.has_condition()) {
      out += ";where:";
      out += q.condition()->ToString(
          [](size_t i) { return "a" + std::to_string(i); });
    }
    out += '\n';
  }
  return out;
}

std::string PlannerFingerprint(const plan::PlannerOptions& options) {
  // The planner applies the environment ablation overrides to every plan
  // it builds (DESIGN.md §5.4); the fingerprint must see the same
  // effective options or a cached plan could outlive a knob flip.
  const ops::OpOptions op = ops::ApplyEnvOverrides(options.op);
  return StrFormat("%s|tid=%d|pack=%d|comb=%d|bloom=%d|fpp=%g|cv=%d|ss=%zu|on=%zu",
                   plan::StrategyName(options.strategy), op.tuple_id_refs ? 1 : 0,
                   op.pack_messages ? 1 : 0, op.combiners ? 1 : 0,
                   op.bloom_filters ? 1 : 0, op.filter_fpp,
                   static_cast<int>(options.cost_variant), options.sample_size,
                   options.opt_max_n);
}

std::string PlanCacheKey(const sgf::SgfQuery& query,
                         const plan::PlannerOptions& options) {
  return PlannerFingerprint(options) + "\n" + CanonicalQuerySignature(query);
}

}  // namespace gumbo::serve
