// Delta-evaluation eligibility and slice planning (DESIGN.md §12).
//
// A cached query result at epoch vector E_old can be *maintained* — not
// recomputed — when every relation whose epoch moved (a) moved by pure
// inserts with a retained watermark, and (b) occurs only in *guard*
// position in the query (transitively: an output produced from a delta'd
// guard is itself delta'd, so it too must avoid conditional position).
// A BSGF subquery's output distributes over its guard rows —
//   O = { pi(t) : t in Guard, C(t) } = O_old  UNION  f(DeltaGuard)
// — so re-running the cached plan with each delta'd relation shadowed by
// a slice of just its new rows yields exactly the new output rows, and
// cached UNION delta, canonically deduped, is byte-identical to a
// from-scratch run. Inserts into a conditional-position relation are NOT
// delta-expressible this way (a positive conditional grows the output
// without the guard changing; a negated one shrinks it), so they fall
// back to full invalidation, as do all destructive mutations
// (Put/Create/Erase/reshape).
#ifndef GUMBO_SERVE_DELTA_H_
#define GUMBO_SERVE_DELTA_H_

#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "common/relation.h"
#include "sgf/sgf.h"

namespace gumbo::serve {

/// Why a cached result could not be delta-maintained (fallback matrix,
/// DESIGN.md §12).
enum class DeltaFallback {
  kNone,             ///< eligible — no fallback
  kDestructive,      ///< a moved relation saw a non-insert mutation
  kNoWatermark,      ///< insert-only, but the old epoch's row count aged out
  kConditionalDelta, ///< a delta'd relation is read in conditional position
  kMissingRelation,  ///< a moved name is not resolvable in the database
};

const char* DeltaFallbackName(DeltaFallback f);

struct DeltaPlan {
  bool eligible = false;
  DeltaFallback fallback = DeltaFallback::kNone;
  /// For each insert-moved base relation, a materialized copy of exactly
  /// its delta rows [watermark, size) under the same name — the shadow
  /// overlay a cached plan re-runs over (plan::ExecutePlanWithOverrides).
  Database overrides;
  /// Names carrying delta (not full) contents in the re-run: the moved
  /// base relations plus, transitively, every output produced from a
  /// delta'd guard. Outputs in this set must be unioned with the cached
  /// result; outputs outside it are recomputed in full.
  std::set<std::string> dirty;
  uint64_t delta_rows = 0;  ///< total input delta rows across overrides
};

/// Decides whether the epoch movement from `cached_epochs` to
/// `current_epochs` (both parallel to `names`, the sorted
/// PlanCache::EpochNamesOf order) is delta-maintainable for `query` over
/// `db`, and builds the delta override slices if so.
DeltaPlan PlanDelta(const sgf::SgfQuery& query, const Database& db,
                    const std::vector<std::string>& names,
                    const std::vector<uint64_t>& cached_epochs,
                    const std::vector<uint64_t>& current_epochs);

}  // namespace gumbo::serve

#endif  // GUMBO_SERVE_DELTA_H_
