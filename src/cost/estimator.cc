#include "cost/estimator.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "mr/map_output.h"
#include "mr/message.h"

namespace gumbo::cost {

namespace {

constexpr double kMbPerByte = 1.0 / (1024.0 * 1024.0);

}  // namespace

Result<RelationStats> CostEstimator::StatsOf(const std::string& name) const {
  if (db_ != nullptr && db_->Contains(name)) {
    const Relation* rel = db_->Get(name).value();
    RelationStats stats;
    stats.tuples = rel->RepresentedRecords();
    stats.bytes_per_tuple = rel->bytes_per_tuple();
    stats.regime = ClassifyKeySkew(*rel);
    return stats;
  }
  if (catalog_ == nullptr) {
    return Status::NotFound("stats for " + name + " (no catalog)");
  }
  return catalog_->Get(name);
}

Result<MapPartition> CostEstimator::EstimateInput(const mr::JobSpec& job,
                                                  size_t input_index,
                                                  InputEstimateTag* tag) const {
  const mr::JobInput& input = job.inputs[input_index];
  MapPartition p;
  tag->dataset = input.dataset;

  // Materialized input: sample the real map function (Gumbo §5.1 opt (3)).
  if (db_ != nullptr && db_->Contains(input.dataset)) {
    const Relation* rel = db_->Get(input.dataset).value();
    tag->channel = Channel::kSampledOutput;
    tag->regime = ClassifyKeySkew(*rel);
    p.input_mb = rel->SizeMb();
    p.num_mappers = std::max(
        1, static_cast<int>(std::ceil(p.input_mb / config_.split_mb)));
    tag->input_mb = p.input_mb;
    size_t n = rel->size();
    if (n == 0 || !job.mapper_factory) return p;
    size_t s = std::min(sample_size_, n);
    auto mapper = job.mapper_factory();
    mr::MapOutputBuffer emitter;
    for (size_t k = 0; k < s; ++k) {
      size_t idx = k * n / s;  // stride sample, deterministic
      mapper->Map(input_index, rel->view(idx),
                  static_cast<uint64_t>(idx), &emitter);
    }
    // Account packing the way the shuffle would within a task: the flat
    // buffer already grouped by key, so this is a read-off, not a regroup.
    double wire_bytes = 0.0;
    size_t record_count = 0;
    emitter.AccountWire(job.pack_messages, &wire_bytes, &record_count);
    double records = static_cast<double>(record_count);
    double blowup = static_cast<double>(n) / static_cast<double>(s) *
                    rel->representation_scale();
    p.output_mb = wire_bytes * blowup * job.intermediate_overhead_factor *
                  kMbPerByte * Factor(Channel::kSampledOutput, tag->regime);
    p.metadata_mb = records * blowup *
                    config_.costs.metadata_bytes_per_record * kMbPerByte;
    tag->output_mb = p.output_mb;
    return p;
  }

  // Catalog fallback: structural upper bound via the job-input hints.
  // This is where regime-dependent estimation error lives (the bound is
  // tight only on uniform data), so both N and M take learned factors.
  if (catalog_ == nullptr) {
    return Status::NotFound("input " + input.dataset +
                            " unmaterialized and no stats catalog");
  }
  GUMBO_ASSIGN_OR_RETURN(RelationStats stats, catalog_->Get(input.dataset));
  tag->channel = Channel::kCatalogOutput;
  tag->regime = stats.regime;
  p.input_mb = stats.SizeMb() * Factor(Channel::kCatalogInput, stats.regime);
  p.num_mappers =
      std::max(1, static_cast<int>(std::ceil(p.input_mb / config_.split_mb)));
  double bytes_per_msg = input.hint_bytes_per_message >= 0.0
                             ? input.hint_bytes_per_message
                             : stats.bytes_per_tuple;
  double messages = stats.tuples * input.hint_messages_per_tuple;
  p.output_mb = messages * bytes_per_msg * job.intermediate_overhead_factor *
                kMbPerByte * Factor(Channel::kCatalogOutput, stats.regime);
  p.metadata_mb =
      messages * config_.costs.metadata_bytes_per_record * kMbPerByte;
  tag->input_mb = p.input_mb;
  tag->output_mb = p.output_mb;
  return p;
}

Result<JobEstimate> CostEstimator::EstimateJob(
    const mr::JobSpec& job, double output_mb_upper_bound) const {
  JobEstimate est;
  est.partitions.reserve(job.inputs.size());
  est.input_tags.reserve(job.inputs.size());
  double intermediate_mb = 0.0;
  double input_mb = 0.0;
  for (size_t i = 0; i < job.inputs.size(); ++i) {
    InputEstimateTag tag;
    GUMBO_ASSIGN_OR_RETURN(MapPartition p, EstimateInput(job, i, &tag));
    intermediate_mb += p.output_mb;
    input_mb += p.input_mb;
    // The job's bound regime is its most skewed input's regime.
    if (tag.regime > est.bound_regime) est.bound_regime = tag.regime;
    est.partitions.push_back(p);
    est.input_tags.push_back(std::move(tag));
  }
  est.bound_defaulted = output_mb_upper_bound < 0.0;
  est.output_mb = est.bound_defaulted
                      ? input_mb * Factor(Channel::kOutputBound,
                                          est.bound_regime)  // paper's bound
                      : output_mb_upper_bound;
  switch (job.reducer_allocation) {
    case mr::ReducerAllocation::kByIntermediateSize:
      est.num_reducers = std::max(
          1, static_cast<int>(std::ceil(intermediate_mb /
                                        config_.mb_per_reducer)));
      break;
    case mr::ReducerAllocation::kByMapInputSize:
      est.num_reducers = std::max(
          1, static_cast<int>(
                 std::ceil(input_mb / (4.0 * config_.mb_per_reducer))));
      break;
    case mr::ReducerAllocation::kFixed:
      est.num_reducers = std::max(1, job.fixed_num_reducers);
      break;
  }
  est.cost = JobCost(config_.costs, variant_, est.partitions, est.output_mb,
                     est.num_reducers);
  return est;
}

}  // namespace gumbo::cost
