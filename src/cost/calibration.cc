#include "cost/calibration.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>

namespace gumbo::cost {

namespace {

constexpr double kMinRatio = 1.0 / 64.0;
constexpr double kMaxRatio = 64.0;

}  // namespace

const char* SkewRegimeName(SkewRegime regime) {
  switch (regime) {
    case SkewRegime::kUniform:
      return "uniform";
    case SkewRegime::kModerate:
      return "moderate";
    case SkewRegime::kHeavy:
      return "heavy";
  }
  return "?";
}

const char* ChannelName(Channel channel) {
  switch (channel) {
    case Channel::kSampledOutput:
      return "sampled-output";
    case Channel::kCatalogInput:
      return "catalog-input";
    case Channel::kCatalogOutput:
      return "catalog-output";
    case Channel::kOutputBound:
      return "output-bound";
    case Channel::kCombinerYield:
      return "combiner-yield";
    case Channel::kFilterYield:
      return "filter-yield";
  }
  return "?";
}

SkewRegime ClassifyKeySkew(const Relation& rel, size_t sample_cap) {
  const size_t n = rel.size();
  if (n == 0 || rel.arity() == 0) return SkewRegime::kUniform;
  const size_t s = std::min(sample_cap, n);
  std::map<uint64_t, size_t> counts;
  size_t top = 0;
  for (size_t k = 0; k < s; ++k) {
    const size_t idx = k * n / s;  // stride sample, deterministic
    const size_t c = ++counts[rel.view(idx).words()[0]];
    top = std::max(top, c);
  }
  const double share = static_cast<double>(top) / static_cast<double>(s);
  const double distinct = static_cast<double>(counts.size());
  if (share >= 0.20) return SkewRegime::kHeavy;
  if (share >= std::max(0.04, 8.0 / distinct)) return SkewRegime::kModerate;
  return SkewRegime::kUniform;
}

CalibrationStore& CalibrationStore::operator=(const CalibrationStore& o) {
  if (this == &o) return *this;
  std::scoped_lock lock(mu_, o.mu_);
  for (size_t c = 0; c < kNumChannels; ++c) {
    for (size_t r = 0; r < kNumRegimes; ++r) {
      log_sum_[c][r] = o.log_sum_[c][r];
      count_[c][r] = o.count_[c][r];
    }
  }
  return *this;
}

void CalibrationStore::Observe(Channel channel, SkewRegime regime,
                               double estimated, double observed) {
  if (!(estimated > 0.0) || !(observed >= 0.0)) return;
  const double ratio =
      std::clamp(observed / estimated, kMinRatio, kMaxRatio);
  std::lock_guard<std::mutex> lock(mu_);
  log_sum_[static_cast<size_t>(channel)][static_cast<size_t>(regime)] +=
      std::log(ratio);
  ++count_[static_cast<size_t>(channel)][static_cast<size_t>(regime)];
}

double CalibrationStore::Factor(Channel channel, SkewRegime regime) const {
  std::lock_guard<std::mutex> lock(mu_);
  const size_t c = static_cast<size_t>(channel);
  const size_t r = static_cast<size_t>(regime);
  if (count_[c][r] == 0) return 1.0;
  const double mean =
      std::exp(log_sum_[c][r] / static_cast<double>(count_[c][r]));
  return std::clamp(mean, kMinRatio, kMaxRatio);
}

uint64_t CalibrationStore::Observations(Channel channel,
                                        SkewRegime regime) const {
  std::lock_guard<std::mutex> lock(mu_);
  return count_[static_cast<size_t>(channel)][static_cast<size_t>(regime)];
}

uint64_t CalibrationStore::TotalObservations() const {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t total = 0;
  for (size_t c = 0; c < kNumChannels; ++c) {
    for (size_t r = 0; r < kNumRegimes; ++r) total += count_[c][r];
  }
  return total;
}

std::string CalibrationStore::Serialize() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream out;
  out << "gumbo-calibration v1\n";
  out.precision(17);
  for (size_t c = 0; c < kNumChannels; ++c) {
    for (size_t r = 0; r < kNumRegimes; ++r) {
      if (count_[c][r] == 0) continue;
      out << "cell " << ChannelName(static_cast<Channel>(c)) << " "
          << SkewRegimeName(static_cast<SkewRegime>(r)) << " "
          << count_[c][r] << " " << log_sum_[c][r] << "\n";
    }
  }
  return out.str();
}

Status CalibrationStore::Deserialize(const std::string& text) {
  double log_sum[kNumChannels][kNumRegimes] = {};
  uint64_t count[kNumChannels][kNumRegimes] = {};
  std::istringstream in(text);
  std::string line;
  if (!std::getline(in, line) || line.rfind("gumbo-calibration", 0) != 0) {
    return Status::InvalidArgument("not a gumbo-calibration file");
  }
  while (std::getline(in, line)) {
    std::istringstream ls(line);
    std::string tag, channel_name, regime_name;
    uint64_t n = 0;
    double sum = 0.0;
    if (!(ls >> tag)) continue;
    if (tag != "cell") continue;  // unknown lines are skipped, see header
    if (!(ls >> channel_name >> regime_name >> n >> sum)) {
      return Status::InvalidArgument("malformed calibration line: " + line);
    }
    int ci = -1, ri = -1;
    for (size_t c = 0; c < kNumChannels; ++c) {
      if (channel_name == ChannelName(static_cast<Channel>(c))) {
        ci = static_cast<int>(c);
      }
    }
    for (size_t r = 0; r < kNumRegimes; ++r) {
      if (regime_name == SkewRegimeName(static_cast<SkewRegime>(r))) {
        ri = static_cast<int>(r);
      }
    }
    if (ci < 0 || ri < 0) continue;  // future channel/regime: skip
    log_sum[ci][ri] = sum;
    count[ci][ri] = n;
  }
  std::lock_guard<std::mutex> lock(mu_);
  for (size_t c = 0; c < kNumChannels; ++c) {
    for (size_t r = 0; r < kNumRegimes; ++r) {
      log_sum_[c][r] = log_sum[c][r];
      count_[c][r] = count[c][r];
    }
  }
  return Status::Ok();
}

Status CalibrationStore::Save(const std::string& path) const {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return Status::Internal("cannot open " + path + " for writing");
  out << Serialize();
  if (!out.good()) return Status::Internal("write to " + path + " failed");
  return Status::Ok();
}

Status CalibrationStore::Load(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::NotFound("cannot open " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return Deserialize(buf.str());
}

std::string CalibrationStore::ToString() const {
  std::ostringstream out;
  for (size_t c = 0; c < kNumChannels; ++c) {
    for (size_t r = 0; r < kNumRegimes; ++r) {
      const Channel ch = static_cast<Channel>(c);
      const SkewRegime rg = static_cast<SkewRegime>(r);
      if (Observations(ch, rg) == 0) continue;
      char line[128];
      std::snprintf(line, sizeof(line), "%-15s %-9s x%.3f (n=%llu)\n",
                    ChannelName(ch), SkewRegimeName(rg), Factor(ch, rg),
                    static_cast<unsigned long long>(Observations(ch, rg)));
      out << line;
    }
  }
  return out.str();
}

}  // namespace gumbo::cost
