// The MapReduce I/O cost model (paper §3.3).
//
// Two variants are provided:
//  * kGumbo — the paper's refinement: the map cost is summed per input
//    partition (Equation 2), so inputs with different map input/output
//    ratios are accounted separately;
//  * kWang  — the Wang & Chan / Nykiel et al. baseline: one aggregate
//    costmap over the summed sizes (Equation 3).
//
// All sizes are in MB of *represented* data; costs are in cost-seconds.
#ifndef GUMBO_COST_MODEL_H_
#define GUMBO_COST_MODEL_H_

#include <vector>

#include "cost/constants.h"

namespace gumbo::cost {

/// Which map-phase aggregation the model uses (see file comment).
enum class CostModelVariant { kGumbo, kWang };

const char* CostModelVariantName(CostModelVariant v);

/// One uniform map input partition I_i (paper §3.3): N_i MB in, M_i MB of
/// intermediate data out, Mhat_i MB of map-output metadata, m_i mappers.
struct MapPartition {
  double input_mb = 0.0;     ///< N_i
  double output_mb = 0.0;    ///< M_i
  double metadata_mb = 0.0;  ///< Mhat_i
  int num_mappers = 1;       ///< m_i
};

/// mergemap(M_i): sort/merge cost on the map side.
/// (l_r + l_w) * M_i * log_D ceil( ((M_i + Mhat_i)/m_i) / buf_map ).
double MergeMapCost(const CostConstants& c, double output_mb,
                    double metadata_mb, int num_mappers);

/// costmap(N_i, M_i) = h_r*N_i + mergemap(M_i) + l_w*M_i.
double MapCost(const CostConstants& c, const MapPartition& p);

/// mergered(M) = (l_r + l_w) * M * log_D ceil( (M/r) / buf_red ).
double MergeRedCost(const CostConstants& c, double shuffle_mb,
                    int num_reducers);

/// costred(M, K) = t*M + mergered(M) + h_w*K.
double ReduceCost(const CostConstants& c, double shuffle_mb,
                  double output_mb, int num_reducers);

/// Full job cost: costh + map phase + reduce phase, where the map phase is
/// aggregated according to `variant` (Equation 2 vs Equation 3). K is the
/// reduce output size in MB.
double JobCost(const CostConstants& c, CostModelVariant variant,
               const std::vector<MapPartition>& partitions, double output_mb,
               int num_reducers);

/// Helper: ceil-log base D, clamped at zero; log_D ceil(x).
double LogDCeil(double x, double d);

/// Bloom-filter accounting (DESIGN.md §5.3). Building scans `scan_mb` of
/// conditional input once at local-read cost: l_r * scan_mb. Charged once
/// per job (JobStats::filter_build_cost).
double FilterBuildCost(const CostConstants& c, double scan_mb);

/// Broadcast of `filter_mb` of filter bits to `copies` receivers (one per
/// cluster node, Hadoop distributed-cache style) at network transfer
/// cost: t * filter_mb * copies. The engine spreads this over the map
/// tasks, so the broadcast enters both total time and the net-time
/// simulation (DESIGN.md §5.3).
double FilterBroadcastCost(const CostConstants& c, double filter_mb,
                           int copies);

}  // namespace gumbo::cost

#endif  // GUMBO_COST_MODEL_H_
