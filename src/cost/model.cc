#include "cost/model.h"

#include <algorithm>
#include <cmath>

namespace gumbo::cost {

const char* CostModelVariantName(CostModelVariant v) {
  switch (v) {
    case CostModelVariant::kGumbo:
      return "gumbo";
    case CostModelVariant::kWang:
      return "wang";
  }
  return "?";
}

double LogDCeil(double x, double d) {
  double c = std::ceil(x);
  if (c <= 1.0 || d <= 1.0) return 0.0;
  return std::log(c) / std::log(d);
}

double MergeMapCost(const CostConstants& c, double output_mb,
                    double metadata_mb, int num_mappers) {
  if (output_mb <= 0.0) return 0.0;
  int m = std::max(num_mappers, 1);
  double per_mapper = (output_mb + metadata_mb) / static_cast<double>(m);
  double passes = LogDCeil(per_mapper / c.buf_map_mb, c.merge_factor);
  return (c.local_read + c.local_write) * output_mb * passes;
}

double MapCost(const CostConstants& c, const MapPartition& p) {
  return c.hdfs_read * p.input_mb +
         MergeMapCost(c, p.output_mb, p.metadata_mb, p.num_mappers) +
         c.local_write * p.output_mb;
}

double MergeRedCost(const CostConstants& c, double shuffle_mb,
                    int num_reducers) {
  if (shuffle_mb <= 0.0) return 0.0;
  int r = std::max(num_reducers, 1);
  double per_reducer = shuffle_mb / static_cast<double>(r);
  double passes = LogDCeil(per_reducer / c.buf_red_mb, c.merge_factor);
  return (c.local_read + c.local_write) * shuffle_mb * passes;
}

double ReduceCost(const CostConstants& c, double shuffle_mb, double output_mb,
                  int num_reducers) {
  return c.transfer * shuffle_mb + MergeRedCost(c, shuffle_mb, num_reducers) +
         c.hdfs_write * output_mb;
}

double FilterBuildCost(const CostConstants& c, double scan_mb) {
  return c.local_read * scan_mb;
}

double FilterBroadcastCost(const CostConstants& c, double filter_mb,
                           int copies) {
  return c.transfer * filter_mb * static_cast<double>(std::max(copies, 1));
}

double JobCost(const CostConstants& c, CostModelVariant variant,
               const std::vector<MapPartition>& partitions, double output_mb,
               int num_reducers) {
  double map_cost = 0.0;
  double shuffle_mb = 0.0;
  if (variant == CostModelVariant::kGumbo) {
    for (const MapPartition& p : partitions) {
      map_cost += MapCost(c, p);
      shuffle_mb += p.output_mb;
    }
  } else {
    MapPartition agg;
    agg.num_mappers = 0;
    for (const MapPartition& p : partitions) {
      agg.input_mb += p.input_mb;
      agg.output_mb += p.output_mb;
      agg.metadata_mb += p.metadata_mb;
      agg.num_mappers += p.num_mappers;
    }
    agg.num_mappers = std::max(agg.num_mappers, 1);
    map_cost = MapCost(c, agg);
    shuffle_mb = agg.output_mb;
  }
  return c.job_overhead + map_cost +
         ReduceCost(c, shuffle_mb, output_mb, num_reducers);
}

}  // namespace gumbo::cost
