// Cost-model constants (paper Table 1 / Table 5) and cluster parameters.
//
// The values are the ones the authors benchmarked on the VSC cluster
// (Appendix B). Byte-denominated knobs (buffers, split size, per-reducer
// allocation) can be scaled down together with the data via Scaled(), which
// preserves every ratio the experiments depend on (DESIGN.md §2).
#ifndef GUMBO_COST_CONSTANTS_H_
#define GUMBO_COST_CONSTANTS_H_

namespace gumbo::cost {

/// Per-MB I/O costs and merge parameters of the MapReduce cost model
/// (paper §3.3, Tables 1 and 5).
struct CostConstants {
  double local_read = 0.03;    ///< l_r: local disk read cost (per MB)
  double local_write = 0.085;  ///< l_w: local disk write cost (per MB)
  double hdfs_read = 0.15;     ///< h_r: HDFS read cost (per MB)
  double hdfs_write = 0.25;    ///< h_w: HDFS write cost (per MB)
  double transfer = 0.017;     ///< t: network transfer cost (per MB)
  double merge_factor = 10.0;  ///< D: external-sort merge factor
  double buf_map_mb = 409.0;   ///< buf_map: map task sort buffer (MB)
  double buf_red_mb = 512.0;   ///< buf_red: reduce task merge buffer (MB)
  /// cost_h: fixed overhead of starting one MR job (cost-seconds). Not in
  /// Table 5; Hadoop job startup is a few seconds wall-clock.
  double job_overhead = 6.0;
  /// Hadoop appends 16 bytes of map-output metadata per emitted record
  /// (paper §3.3, footnote 2).
  double metadata_bytes_per_record = 16.0;
};

/// The simulated cluster: topology plus the data-layout knobs that decide
/// task counts. Defaults mirror the paper's testbed (10 nodes, 10 usable
/// cores each per the YARN vcore setting, 128 MB HDFS splits, 256 MB of
/// intermediate data per reducer — §5.1 optimization (3)).
struct ClusterConfig {
  int nodes = 10;
  int map_slots_per_node = 10;
  int reduce_slots_per_node = 10;
  double split_mb = 128.0;        ///< HDFS split size => map task count
  double mb_per_reducer = 256.0;  ///< intermediate MB per reduce task
  CostConstants costs;

  int TotalMapSlots() const { return nodes * map_slots_per_node; }
  int TotalReduceSlots() const { return nodes * reduce_slots_per_node; }

  /// Returns a copy with every byte-denominated knob multiplied by
  /// `factor` (< 1 scales the cluster down to match scaled-down data while
  /// preserving task counts and merge-pass counts). Cost constants are
  /// per-MB and are left untouched.
  ClusterConfig ScaledBytes(double factor) const {
    ClusterConfig c = *this;
    c.split_mb *= factor;
    c.mb_per_reducer *= factor;
    c.costs.buf_map_mb *= factor;
    c.costs.buf_red_mb *= factor;
    c.costs.job_overhead *= factor;
    return c;
  }
};

}  // namespace gumbo::cost

#endif  // GUMBO_COST_CONSTANTS_H_
