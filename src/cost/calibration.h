// Self-calibrating cost-model feedback (DESIGN.md §10).
//
// The §5.3 cost model is exact about machine constants (Table 5) but
// approximate about data: unmaterialized inputs are estimated from
// declared *upper bounds* (paper §4.1: "the output size K can be
// approximated by its upper bound N1"), and those bounds are tight only
// in the regime the paper measures — uniform keys, independent
// attributes. Under Zipf-skewed or correlated keys the real intermediate
// sizes diverge from the bounds by regime-dependent ratios, which is
// exactly where a fixed model mis-ranks strategies (a semi-join chain
// that shrinks 100x per step looks as expensive as one that doesn't).
//
// The executor already records the observed (N_i, M_i) of every job
// input (mr::InputStats). A CalibrationStore accumulates
// observed/estimated ratios per (channel, skew regime): the planner
// tags each estimate with the channel it came from (sampled map run,
// catalog upper bound, output bound) and the input's skew regime; after
// execution, plan::CalibrateFromExecution feeds the observations back.
// Future estimates multiply in the learned geometric-mean ratio, so the
// planner's strategy ranking adapts to the data regime it actually
// serves — without ever touching the Table 5 machine constants.
#ifndef GUMBO_COST_CALIBRATION_H_
#define GUMBO_COST_CALIBRATION_H_

#include <cstdint>
#include <mutex>
#include <string>

#include "common/relation.h"
#include "common/result.h"

namespace gumbo::cost {

/// Key-skew regime of a relation, classified from the share of its most
/// frequent first-attribute value (the join key position in this repo's
/// generators). Thresholds are relative to the uniform expectation, so
/// classification is stable across relation sizes.
enum class SkewRegime { kUniform = 0, kModerate = 1, kHeavy = 2 };

constexpr size_t kNumRegimes = 3;

const char* SkewRegimeName(SkewRegime regime);

/// Classifies `rel` by sampling up to `sample_cap` rows (stride sample,
/// deterministic) and measuring the top first-attribute-value share s:
///   s >= 20%          -> kHeavy    (a Zipf(>=1) hot key)
///   s >= max(4%, 8/u) -> kModerate (u = distinct values seen; the 8/u
///                        term keeps tiny uniform domains out)
///   otherwise         -> kUniform
SkewRegime ClassifyKeySkew(const Relation& rel, size_t sample_cap = 2048);

/// Which estimate a correction factor applies to. Channels are separated
/// because their error sources are independent: sampling error is small
/// and regime-insensitive, upper-bound error is large and regime-driven.
enum class Channel {
  /// M_i from sampling the real map function on a materialized input.
  kSampledOutput = 0,
  /// N_i of an unmaterialized input, estimated from the catalog bound.
  kCatalogInput = 1,
  /// M_i of an unmaterialized input, estimated from the catalog bound.
  kCatalogOutput = 2,
  /// The job's output size K, defaulted to the summed input sizes.
  kOutputBound = 3,
  /// Observed combiner yield: fraction of messages removed by map-side
  /// combining, recorded against estimated = 1.0 so Factor() is the mean
  /// yield. Drives the per-regime combiner knob (plan::TuneOpOptions).
  kCombinerYield = 4,
  /// Observed Bloom-filter yield: fraction of emissions suppressed.
  kFilterYield = 5,
};

constexpr size_t kNumChannels = 6;

const char* ChannelName(Channel channel);

/// Thread-safe accumulator of observed/estimated ratios per
/// (channel, regime). Factor() is the damped geometric mean of the
/// observed ratios, clamped to [1/64, 64]; with no observations it is
/// exactly 1.0, so an empty store reproduces the uncalibrated planner
/// byte-for-byte. Save/Load round-trip the full state as text.
class CalibrationStore {
 public:
  CalibrationStore() = default;
  CalibrationStore(const CalibrationStore& o) { *this = o; }
  CalibrationStore& operator=(const CalibrationStore& o);

  /// Records one observation. Ignored unless estimated > 0 and
  /// observed >= 0; the ratio is clamped to [1/64, 64] so one pathological
  /// job cannot poison the mean.
  void Observe(Channel channel, SkewRegime regime, double estimated,
               double observed);

  /// The multiplicative correction for estimates on this channel/regime.
  double Factor(Channel channel, SkewRegime regime) const;

  uint64_t Observations(Channel channel, SkewRegime regime) const;
  uint64_t TotalObservations() const;

  /// Serializes the store as a small line-oriented text format (stable
  /// across versions: unknown lines are skipped on load).
  std::string Serialize() const;
  Status Deserialize(const std::string& text);

  Status Save(const std::string& path) const;
  Status Load(const std::string& path);

  /// Human-readable factor table (for bench output).
  std::string ToString() const;

 private:
  mutable std::mutex mu_;
  double log_sum_[kNumChannels][kNumRegimes] = {};
  uint64_t count_[kNumChannels][kNumRegimes] = {};
};

}  // namespace gumbo::cost

#endif  // GUMBO_COST_CALIBRATION_H_
