// Cost estimation for query planning.
//
// Estimates the cost of candidate MR jobs *before* running them, the way
// Gumbo does (paper §5.1, optimization (3)): the job's real map function is
// simulated on a small sample of each input relation and the per-input
// intermediate sizes are extrapolated; reducer counts follow from the
// intermediate-size estimate. The resulting (N_i, M_i) partitions feed the
// cost model of model.h under either variant (gumbo / wang), which is what
// the §5.2 cost-model experiment compares.
//
// Relations that do not exist yet at planning time (outputs of earlier
// batches of an SGF plan) are estimated from a StatsCatalog of declared
// upper bounds (paper §4.1: "the output size K can be approximated by its
// upper bound N1").
#ifndef GUMBO_COST_ESTIMATOR_H_
#define GUMBO_COST_ESTIMATOR_H_

#include <map>
#include <string>

#include "common/relation.h"
#include "common/result.h"
#include "cost/calibration.h"
#include "cost/constants.h"
#include "cost/model.h"
#include "mr/job.h"

namespace gumbo::cost {

/// Declared statistics of one relation (possibly not yet materialized).
struct RelationStats {
  double tuples = 0.0;          ///< represented tuple count
  double bytes_per_tuple = 0.0;
  /// Key-skew regime of the relation (materialized: classified by
  /// sampling; catalog entries inherit their upstream guard's regime).
  /// Selects which calibration factors apply (DESIGN.md §10).
  SkewRegime regime = SkewRegime::kUniform;
  double SizeMb() const {
    return tuples * bytes_per_tuple / (1024.0 * 1024.0);
  }
};

/// Name -> stats map used for not-yet-materialized inputs.
class StatsCatalog {
 public:
  void Put(const std::string& name, RelationStats stats) {
    stats_[name] = stats;
  }
  bool Contains(const std::string& name) const {
    return stats_.count(name) > 0;
  }
  Result<RelationStats> Get(const std::string& name) const {
    auto it = stats_.find(name);
    if (it == stats_.end()) return Status::NotFound("stats for " + name);
    return it->second;
  }

 private:
  std::map<std::string, RelationStats> stats_;
};

/// Where one input's estimate came from plus the values the planner
/// believed — recorded so observed execution stats can be matched back to
/// the exact estimate they correct (plan::CalibrateFromExecution).
struct InputEstimateTag {
  std::string dataset;
  Channel channel = Channel::kSampledOutput;
  SkewRegime regime = SkewRegime::kUniform;
  double input_mb = 0.0;   ///< estimated N_i, after calibration
  double output_mb = 0.0;  ///< estimated M_i, after calibration
};

/// Estimated job profile: the cost-model inputs plus the derived cost.
struct JobEstimate {
  std::vector<MapPartition> partitions;  // one per input
  double output_mb = 0.0;                // K (upper bound)
  int num_reducers = 1;
  double cost = 0.0;
  /// Parallel to `partitions`: provenance of each input's estimate.
  std::vector<InputEstimateTag> input_tags;
  /// Regime + provenance of the K bound (kOutputBound calibration).
  SkewRegime bound_regime = SkewRegime::kUniform;
  bool bound_defaulted = false;  ///< K defaulted to summed input sizes
};

class CostEstimator {
 public:
  /// `db` supplies materialized relations for sampling; `catalog` supplies
  /// declared stats for everything else. Both pointers must outlive the
  /// estimator. `sample_size` caps the tuples sampled per input.
  /// `calibration` (optional, must outlive the estimator) scales estimates
  /// by learned observed/estimated factors per channel and skew regime; a
  /// null or empty store reproduces uncalibrated estimates exactly.
  CostEstimator(const ClusterConfig& config, CostModelVariant variant,
                const Database* db, const StatsCatalog* catalog,
                size_t sample_size = 1024,
                const CalibrationStore* calibration = nullptr)
      : config_(config),
        variant_(variant),
        db_(db),
        catalog_(catalog),
        sample_size_(sample_size),
        calibration_(calibration) {}

  CostModelVariant variant() const { return variant_; }
  const ClusterConfig& config() const { return config_; }

  /// Estimates the cost of running `job`. `output_mb_upper_bound` is the
  /// planner's bound on K (pass < 0 to default to the summed input sizes).
  Result<JobEstimate> EstimateJob(const mr::JobSpec& job,
                                  double output_mb_upper_bound = -1.0) const;

  /// Stats for a dataset: from the materialized relation when available,
  /// otherwise from the catalog.
  Result<RelationStats> StatsOf(const std::string& name) const;

 private:
  /// Per-input (N, M, Mhat, mappers) via map-function sampling or catalog
  /// fallback. Fills `tag` with the estimate's provenance.
  Result<MapPartition> EstimateInput(const mr::JobSpec& job,
                                     size_t input_index,
                                     InputEstimateTag* tag) const;

  double Factor(Channel channel, SkewRegime regime) const {
    return calibration_ != nullptr ? calibration_->Factor(channel, regime)
                                   : 1.0;
  }

  const ClusterConfig& config_;
  CostModelVariant variant_;
  const Database* db_;
  const StatsCatalog* catalog_;
  size_t sample_size_;
  const CalibrationStore* calibration_;
};

}  // namespace gumbo::cost

#endif  // GUMBO_COST_ESTIMATOR_H_
