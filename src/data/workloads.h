// The paper's workload catalog: queries A1-A5 and B1-B2 (Table 2), the
// SGF query sets C1-C4 (Figure 6), the §5.2 cost-model query, and the
// A3(k) query-size family (Figure 8), each paired with a generated
// database of the matching shape.
//
// Where the paper's figure is ambiguous (C1 lists two queries named Z3;
// C2 mixes arities between definition and use), the reconstruction keeps
// the documented *structure* — dependency shape and atom overlaps — with
// consistent unary intermediate outputs; see EXPERIMENTS.md.
#ifndef GUMBO_DATA_WORKLOADS_H_
#define GUMBO_DATA_WORKLOADS_H_

#include <string>

#include "common/relation.h"
#include "common/result.h"
#include "data/generator.h"
#include "sgf/sgf.h"

namespace gumbo::data {

/// A named query + database pair ready for planning/execution.
struct Workload {
  std::string name;
  sgf::SgfQuery query;
  Database db;
};

/// Queries A1-A5 of Table 2 (i in [1,5]).
Result<Workload> MakeA(int i, const GeneratorConfig& config);

/// Queries B1-B2 of Table 2 (i in [1,2]).
Result<Workload> MakeB(int i, const GeneratorConfig& config);

/// SGF query sets C1-C4 of Figure 6 (i in [1,4]).
Result<Workload> MakeC(int i, const GeneratorConfig& config);

/// The §5.2 cost-model experiment query: 12 distinct keys x 4 conditional
/// relations, where a constant filters out every conditional tuple, making
/// the map input/output ratio wildly non-uniform across inputs.
Result<Workload> MakeCostModelQuery(const GeneratorConfig& config);

/// The Figure 8 family: A3-shaped query with `num_atoms` conditional
/// atoms (2..16), all sharing join key x.
Result<Workload> MakeA3Family(int num_atoms, const GeneratorConfig& config);

}  // namespace gumbo::data

#endif  // GUMBO_DATA_WORKLOADS_H_
