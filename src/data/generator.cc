#include "data/generator.h"

#include <algorithm>
#include <cmath>

#include "common/rng.h"

namespace gumbo::data {

ZipfDistribution::ZipfDistribution(size_t n, double theta) : theta_(theta) {
  cdf_.resize(n > 0 ? n : 1);
  double total = 0.0;
  for (size_t r = 0; r < cdf_.size(); ++r) {
    total += 1.0 / std::pow(static_cast<double>(r + 1), theta_);
    cdf_[r] = total;
  }
  for (double& c : cdf_) c /= total;
}

uint64_t ZipfDistribution::Sample(Xoshiro256& rng) const {
  const double u = rng.UniformDouble();
  auto it = std::upper_bound(cdf_.begin(), cdf_.end(), u);
  if (it == cdf_.end()) --it;
  return static_cast<uint64_t>(it - cdf_.begin());
}

double ZipfDistribution::Mass(uint64_t r) const {
  if (r >= cdf_.size()) return 0.0;
  return r == 0 ? cdf_[0] : cdf_[r] - cdf_[r - 1];
}

namespace {

uint64_t NameSalt(const std::string& name) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (char c : name) {
    h ^= static_cast<uint64_t>(static_cast<unsigned char>(c));
    h *= 0x100000001b3ULL;
  }
  return h;
}

// Whether domain value v is selected for relation `salt` at `selectivity`.
bool Selected(uint64_t v, uint64_t salt, double selectivity) {
  uint64_t h = SplitMix64::Mix(v ^ salt);
  return static_cast<double>(h >> 11) * 0x1.0p-53 < selectivity;
}

}  // namespace

Relation Generator::Guard(const std::string& name, uint32_t arity) const {
  Relation rel(name, arity);
  rel.set_bytes_per_tuple(10.0 * arity);
  rel.set_representation_scale(config_.representation_scale);
  Xoshiro256 rng(config_.seed ^ NameSalt(name));
  const uint64_t domain = config_.Domain();
  rel.Reserve(config_.tuples);
  // Rows are built as flat words straight into the relation arena — no
  // Tuple object exists on the generation path (DESIGN.md §7).
  std::vector<uint64_t> row(arity);
  for (size_t i = 0; i < config_.tuples; ++i) {
    for (uint32_t a = 0; a < arity; ++a) {
      row[a] = Value::Int(static_cast<int64_t>(rng.Uniform(domain))).raw();
    }
    rel.AddWords(row.data());
  }
  return rel;
}

Relation Generator::Conditional(const std::string& name, uint32_t arity,
                                double selectivity) const {
  if (selectivity < 0.0) selectivity = config_.selectivity;
  Relation rel(name, arity);
  rel.set_bytes_per_tuple(10.0 * arity);
  rel.set_representation_scale(config_.representation_scale);
  Xoshiro256 rng(config_.seed ^ NameSalt(name) ^ 0x5eedULL);
  const uint64_t domain = config_.Domain();
  const uint64_t salt = NameSalt(name);
  rel.Reserve(config_.tuples);
  std::vector<uint64_t> row(arity);
  // Pass 1: all selected domain values (ensures the advertised match
  // fraction exactly over the domain).
  for (uint64_t v = 0; v < domain && rel.size() < config_.tuples; ++v) {
    if (!Selected(v, salt, selectivity)) continue;
    row[0] = Value::Int(static_cast<int64_t>(v)).raw();
    for (uint32_t a = 1; a < arity; ++a) {
      row[a] = Value::Int(static_cast<int64_t>(rng.Uniform(domain))).raw();
    }
    rel.AddWords(row.data());
  }
  // Pass 2: pad with non-matching values (>= domain) up to the count.
  while (rel.size() < config_.tuples) {
    row[0] =
        Value::Int(static_cast<int64_t>(domain + rng.Uniform(domain) + 1))
            .raw();
    for (uint32_t a = 1; a < arity; ++a) {
      row[a] = Value::Int(static_cast<int64_t>(rng.Uniform(domain))).raw();
    }
    rel.AddWords(row.data());
  }
  return rel;
}

Relation Generator::ZipfGuard(const std::string& name, uint32_t arity,
                              double theta) const {
  Relation rel(name, arity);
  rel.set_bytes_per_tuple(10.0 * arity);
  rel.set_representation_scale(config_.representation_scale);
  Xoshiro256 rng(config_.seed ^ NameSalt(name) ^ 0x21bfULL);
  const ZipfDistribution zipf(config_.Domain(), theta);
  rel.Reserve(config_.tuples);
  std::vector<uint64_t> row(arity);
  for (size_t i = 0; i < config_.tuples; ++i) {
    for (uint32_t a = 0; a < arity; ++a) {
      row[a] = Value::Int(static_cast<int64_t>(zipf.Sample(rng))).raw();
    }
    rel.AddWords(row.data());
  }
  return rel;
}

Relation Generator::CorrelatedGuard(const std::string& name, uint32_t arity,
                                    double correlation, double theta) const {
  Relation rel(name, arity);
  rel.set_bytes_per_tuple(10.0 * arity);
  rel.set_representation_scale(config_.representation_scale);
  Xoshiro256 rng(config_.seed ^ NameSalt(name) ^ 0xc0deULL);
  const ZipfDistribution zipf(config_.Domain(), theta);
  rel.Reserve(config_.tuples);
  std::vector<uint64_t> row(arity);
  for (size_t i = 0; i < config_.tuples; ++i) {
    const uint64_t key = zipf.Sample(rng);
    row[0] = Value::Int(static_cast<int64_t>(key)).raw();
    for (uint32_t a = 1; a < arity; ++a) {
      const uint64_t v = rng.Bernoulli(correlation) ? key : zipf.Sample(rng);
      row[a] = Value::Int(static_cast<int64_t>(v)).raw();
    }
    rel.AddWords(row.data());
  }
  return rel;
}

Relation Generator::SkewConditional(const std::string& name, uint32_t arity,
                                    double selectivity, bool hot) const {
  if (selectivity < 0.0) selectivity = config_.selectivity;
  Relation rel(name, arity);
  rel.set_bytes_per_tuple(10.0 * arity);
  rel.set_representation_scale(config_.representation_scale);
  Xoshiro256 rng(config_.seed ^ NameSalt(name) ^ (hot ? 0x407ULL : 0xc01dULL));
  const uint64_t domain = config_.Domain();
  // Matching values are a rank-contiguous slice: the hottest (smallest
  // ranks) or coldest (largest ranks) `selectivity` fraction of the domain.
  const uint64_t matched = static_cast<uint64_t>(
      selectivity * static_cast<double>(domain) + 0.5);
  const uint64_t lo = hot ? 0 : domain - std::min(domain, matched);
  const uint64_t hi = hot ? matched : domain;
  rel.Reserve(config_.tuples);
  std::vector<uint64_t> row(arity);
  for (uint64_t v = lo; v < hi && rel.size() < config_.tuples; ++v) {
    row[0] = Value::Int(static_cast<int64_t>(v)).raw();
    for (uint32_t a = 1; a < arity; ++a) {
      row[a] = Value::Int(static_cast<int64_t>(rng.Uniform(domain))).raw();
    }
    rel.AddWords(row.data());
  }
  // Pad with non-matching values (>= domain), as Conditional does.
  while (rel.size() < config_.tuples) {
    row[0] =
        Value::Int(static_cast<int64_t>(domain + rng.Uniform(domain) + 1))
            .raw();
    for (uint32_t a = 1; a < arity; ++a) {
      row[a] = Value::Int(static_cast<int64_t>(rng.Uniform(domain))).raw();
    }
    rel.AddWords(row.data());
  }
  return rel;
}

Relation Generator::HotConditional(const std::string& name, uint32_t arity,
                                   double selectivity) const {
  return SkewConditional(name, arity, selectivity, /*hot=*/true);
}

Relation Generator::ColdConditional(const std::string& name, uint32_t arity,
                                    double selectivity) const {
  return SkewConditional(name, arity, selectivity, /*hot=*/false);
}

}  // namespace gumbo::data
