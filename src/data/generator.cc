#include "data/generator.h"

#include "common/rng.h"

namespace gumbo::data {

namespace {

uint64_t NameSalt(const std::string& name) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (char c : name) {
    h ^= static_cast<uint64_t>(static_cast<unsigned char>(c));
    h *= 0x100000001b3ULL;
  }
  return h;
}

// Whether domain value v is selected for relation `salt` at `selectivity`.
bool Selected(uint64_t v, uint64_t salt, double selectivity) {
  uint64_t h = SplitMix64::Mix(v ^ salt);
  return static_cast<double>(h >> 11) * 0x1.0p-53 < selectivity;
}

}  // namespace

Relation Generator::Guard(const std::string& name, uint32_t arity) const {
  Relation rel(name, arity);
  rel.set_bytes_per_tuple(10.0 * arity);
  rel.set_representation_scale(config_.representation_scale);
  Xoshiro256 rng(config_.seed ^ NameSalt(name));
  const uint64_t domain = config_.Domain();
  rel.Reserve(config_.tuples);
  // Rows are built as flat words straight into the relation arena — no
  // Tuple object exists on the generation path (DESIGN.md §7).
  std::vector<uint64_t> row(arity);
  for (size_t i = 0; i < config_.tuples; ++i) {
    for (uint32_t a = 0; a < arity; ++a) {
      row[a] = Value::Int(static_cast<int64_t>(rng.Uniform(domain))).raw();
    }
    rel.AddWords(row.data());
  }
  return rel;
}

Relation Generator::Conditional(const std::string& name, uint32_t arity,
                                double selectivity) const {
  if (selectivity < 0.0) selectivity = config_.selectivity;
  Relation rel(name, arity);
  rel.set_bytes_per_tuple(10.0 * arity);
  rel.set_representation_scale(config_.representation_scale);
  Xoshiro256 rng(config_.seed ^ NameSalt(name) ^ 0x5eedULL);
  const uint64_t domain = config_.Domain();
  const uint64_t salt = NameSalt(name);
  rel.Reserve(config_.tuples);
  std::vector<uint64_t> row(arity);
  // Pass 1: all selected domain values (ensures the advertised match
  // fraction exactly over the domain).
  for (uint64_t v = 0; v < domain && rel.size() < config_.tuples; ++v) {
    if (!Selected(v, salt, selectivity)) continue;
    row[0] = Value::Int(static_cast<int64_t>(v)).raw();
    for (uint32_t a = 1; a < arity; ++a) {
      row[a] = Value::Int(static_cast<int64_t>(rng.Uniform(domain))).raw();
    }
    rel.AddWords(row.data());
  }
  // Pass 2: pad with non-matching values (>= domain) up to the count.
  while (rel.size() < config_.tuples) {
    row[0] =
        Value::Int(static_cast<int64_t>(domain + rng.Uniform(domain) + 1))
            .raw();
    for (uint32_t a = 1; a < arity; ++a) {
      row[a] = Value::Int(static_cast<int64_t>(rng.Uniform(domain))).raw();
    }
    rel.AddWords(row.data());
  }
  return rel;
}

}  // namespace gumbo::data
