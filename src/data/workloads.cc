#include "data/workloads.h"

#include <vector>

#include "sgf/parser.h"

namespace gumbo::data {

namespace {

Result<Workload> Build(const std::string& name, const std::string& query_text,
                       const GeneratorConfig& config,
                       const std::vector<std::string>& guards,
                       const std::vector<std::pair<std::string, uint32_t>>&
                           conditionals) {
  Workload w;
  w.name = name;
  GUMBO_ASSIGN_OR_RETURN(w.query,
                         sgf::ParseSgf(query_text, &Dictionary::Global()));
  Generator gen(config);
  for (const std::string& g : guards) {
    w.db.Put(gen.Guard(g, 4));
  }
  for (const auto& [c, arity] : conditionals) {
    w.db.Put(gen.Conditional(c, arity));
  }
  return w;
}

}  // namespace

Result<Workload> MakeA(int i, const GeneratorConfig& config) {
  switch (i) {
    case 1:  // guard sharing
      return Build("A1",
                   "Z := SELECT (x, y, z, w) FROM R(x, y, z, w) "
                   "WHERE S(x) AND T(y) AND U(z) AND V(w);",
                   config, {"R"}, {{"S", 1}, {"T", 1}, {"U", 1}, {"V", 1}});
    case 2:  // guard & conditional name sharing
      return Build("A2",
                   "Z := SELECT (x, y, z, w) FROM R(x, y, z, w) "
                   "WHERE S(x) AND S(y) AND S(z) AND S(w);",
                   config, {"R"}, {{"S", 1}});
    case 3:  // guard & conditional key sharing
      return Build("A3",
                   "Z := SELECT (x, y, z, w) FROM R(x, y, z, w) "
                   "WHERE S(x) AND T(x) AND U(x) AND V(x);",
                   config, {"R"}, {{"S", 1}, {"T", 1}, {"U", 1}, {"V", 1}});
    case 4:  // no sharing (two independent queries)
      return Build("A4",
                   "Z1 := SELECT (x, y, z, w) FROM R(x, y, z, w) "
                   "WHERE S(x) AND T(y) AND U(z) AND V(w);\n"
                   "Z2 := SELECT (x, y, z, w) FROM G(x, y, z, w) "
                   "WHERE W(x) AND X(y) AND Y(z) AND Q(w);",
                   config, {"R", "G"},
                   {{"S", 1},
                    {"T", 1},
                    {"U", 1},
                    {"V", 1},
                    {"W", 1},
                    {"X", 1},
                    {"Y", 1},
                    {"Q", 1}});
    case 5:  // conditional name sharing across two queries
      return Build("A5",
                   "Z1 := SELECT (x, y, z, w) FROM R(x, y, z, w) "
                   "WHERE S(x) AND T(y) AND U(z) AND V(w);\n"
                   "Z2 := SELECT (x, y, z, w) FROM G(x, y, z, w) "
                   "WHERE S(x) AND T(y) AND U(z) AND V(w);",
                   config, {"R", "G"},
                   {{"S", 1}, {"T", 1}, {"U", 1}, {"V", 1}});
    default:
      return Status::InvalidArgument("A" + std::to_string(i) +
                                     " is not a catalog query");
  }
}

Result<Workload> MakeB(int i, const GeneratorConfig& config) {
  switch (i) {
    case 1: {  // large conjunctive query: 4 relations x 4 keys = 16 atoms
      std::string cond;
      const char* rels[] = {"S", "T", "U", "V"};
      const char* vars[] = {"x", "y", "z", "w"};
      for (const char* v : vars) {
        for (const char* r : rels) {
          if (!cond.empty()) cond += " AND ";
          cond += std::string(r) + "(" + v + ")";
        }
      }
      return Build("B1",
                   "Z := SELECT (x, y, z, w) FROM R(x, y, z, w) WHERE " +
                       cond + ";",
                   config, {"R"}, {{"S", 1}, {"T", 1}, {"U", 1}, {"V", 1}});
    }
    case 2:  // uniqueness query (DNF over one key)
      return Build(
          "B2",
          "Z := SELECT (x, y, z, w) FROM R(x, y, z, w) WHERE "
          "(S(x) AND NOT T(x) AND NOT U(x) AND NOT V(x)) OR "
          "(NOT S(x) AND T(x) AND NOT U(x) AND NOT V(x)) OR "
          "(NOT S(x) AND NOT T(x) AND U(x) AND NOT V(x)) OR "
          "(NOT S(x) AND NOT T(x) AND NOT U(x) AND V(x));",
          config, {"R"}, {{"S", 1}, {"T", 1}, {"U", 1}, {"V", 1}});
    default:
      return Status::InvalidArgument("B" + std::to_string(i) +
                                     " is not a catalog query");
  }
}

Result<Workload> MakeC(int i, const GeneratorConfig& config) {
  switch (i) {
    case 1:  // two dependent chains sharing guards G and H (Fig. 6a)
      return Build("C1",
                   "Z1 := SELECT x FROM R(x, y, z, w) WHERE S(x) AND S(y);\n"
                   "Z2 := SELECT x FROM G(x, y, z, w) WHERE T(x) AND T(y);\n"
                   "Z3 := SELECT x FROM G(x, y, z, w) WHERE Z1(z) OR Z1(w);\n"
                   "Z4 := SELECT x FROM H(x, y, z, w) WHERE U(x) AND U(y);\n"
                   "Z5 := SELECT x FROM H(x, y, z, w) WHERE Z3(z) OR Z3(w);",
                   config, {"R", "G", "H"}, {{"S", 1}, {"T", 1}, {"U", 1}});
    case 2:  // three independent pairs, overlapping relations (Fig. 6b)
      return Build("C2",
                   "Z1 := SELECT x FROM R(x, y, z, w) WHERE S(x) AND S(y);\n"
                   "Z2 := SELECT x FROM G(x, y, z, w) WHERE T(x) AND T(y);\n"
                   "Z3 := SELECT x FROM H(x, y, z, w) WHERE U(x) AND U(y);\n"
                   "Z4 := SELECT x FROM G(x, y, z, w) WHERE Z1(x) AND Z1(y);\n"
                   "Z5 := SELECT x FROM H(x, y, z, w) WHERE Z2(x) AND Z2(y);\n"
                   "Z6 := SELECT x FROM R(x, y, z, w) WHERE Z3(x) AND Z3(y);",
                   config, {"R", "G", "H"}, {{"S", 1}, {"T", 1}, {"U", 1}});
    case 3:  // complex multi-atom DAG (Fig. 6c)
      return Build(
          "C3",
          "Z11 := SELECT z FROM R(x, y, z, w) WHERE S(x) AND T(y);\n"
          "Z12 := SELECT z FROM R(x, y, z, w) WHERE T(y);\n"
          "Z13 := SELECT z FROM I(x, y, z, w) WHERE NOT S(w);\n"
          "Z21 := SELECT z FROM G(x, y, z, w) WHERE Z11(x) AND U(y);\n"
          "Z22 := SELECT z FROM H(x, y, z, w) WHERE U(y) OR V(y) AND Z12(x);\n"
          "Z23 := SELECT z FROM R(x, y, z, w) "
          "WHERE U(x) AND T(y) AND V(z) AND Z13(w);\n"
          "Z31 := SELECT z FROM I(x, y, z, w) "
          "WHERE Z22(x) AND T(x) AND V(y);",
          config, {"R", "G", "H", "I"},
          {{"S", 1}, {"T", 1}, {"U", 1}, {"V", 1}});
    case 4:  // two levels, many overlapping atoms (Fig. 6d)
      return Build(
          "C4",
          "Z11 := SELECT y FROM R(x, y, z, w) WHERE S(x) OR T(y);\n"
          "Z12 := SELECT y FROM R(x, y, z, w) WHERE U(z) OR S(x);\n"
          "Z13 := SELECT y FROM G(x, y, z, w) WHERE U(x) OR V(y);\n"
          "Z14 := SELECT y FROM G(x, y, z, w) WHERE S(z) OR U(x);\n"
          "Z21 := SELECT x FROM H(x, y, z, w) "
          "WHERE Z11(x) OR Z12(y) OR Z13(z) OR Z14(w);",
          config, {"R", "G", "H"},
          {{"S", 1}, {"T", 1}, {"U", 1}, {"V", 1}});
    default:
      return Status::InvalidArgument("C" + std::to_string(i) +
                                     " is not a catalog query");
  }
}

Result<Workload> MakeCostModelQuery(const GeneratorConfig& config) {
  // 12 distinct keys: the four singles, six pairs, and two triples over
  // (x, y, z, w). Each key is tested against S1..S4 with a trailing
  // constant that no conditional tuple carries, so the conditional inputs
  // contribute zero intermediate data while the guard fans out 48
  // requests per tuple — the non-uniform map input/output ratio that
  // separates cost_gumbo from cost_wang (§5.2).
  const std::vector<std::vector<std::string>> keys = {
      {"x"},           {"y"},           {"z"},          {"w"},
      {"x", "y"},      {"x", "z"},      {"x", "w"},     {"y", "z"},
      {"y", "w"},      {"z", "w"},      {"x", "y", "z"}, {"y", "z", "w"}};
  // The constant 9999999999 lies outside every generated domain.
  std::string cond;
  std::vector<std::pair<std::string, uint32_t>> rels;
  int atom_counter = 0;
  for (int s = 1; s <= 4; ++s) {
    std::string rel = "S" + std::to_string(s);
    // All 12 keys share the same relation; arity = max key size + 1.
    rels.push_back({rel, 4});
    for (const auto& key : keys) {
      ++atom_counter;
      std::string atom = rel + "(";
      for (const auto& v : key) atom += v + ", ";
      // Pad up to 3 positions with atom-unique existential variables so
      // one 4-ary relation serves all key shapes (fresh names keep the
      // guardedness restriction satisfied), then the filtering constant.
      for (size_t p = key.size(); p < 3; ++p) {
        atom += "e" + std::to_string(atom_counter) + "_" +
                std::to_string(p) + ", ";
      }
      atom += "9999999999)";
      if (!cond.empty()) cond += " AND ";
      cond += atom;
    }
  }
  GUMBO_ASSIGN_OR_RETURN(
      Workload w,
      Build("COSTQ",
            "Z := SELECT (x, y, z, w) FROM R(x, y, z, w) WHERE " + cond +
                ";",
            config, {"R"}, rels));
  // The paper's conditional relations are 1 GB at 100M tuples (10 B per
  // tuple); keep that density even though these relations are 4-ary, so
  // that guard-scan sharing does not drown out the map-side merge effects
  // the experiment isolates.
  for (int s = 1; s <= 4; ++s) {
    w.db.GetMutable("S" + std::to_string(s)).value()->set_bytes_per_tuple(
        10.0);
  }
  return w;
}

Result<Workload> MakeA3Family(int num_atoms, const GeneratorConfig& config) {
  if (num_atoms < 1 || num_atoms > 26) {
    return Status::InvalidArgument("num_atoms out of range");
  }
  std::string cond;
  std::vector<std::pair<std::string, uint32_t>> rels;
  for (int i = 0; i < num_atoms; ++i) {
    std::string rel = "C" + std::to_string(i);
    rels.push_back({rel, 1});
    if (!cond.empty()) cond += " AND ";
    cond += rel + "(x)";
  }
  return Build("A3x" + std::to_string(num_atoms),
               "Z := SELECT (x, y, z, w) FROM R(x, y, z, w) WHERE " + cond +
                   ";",
               config, {"R"}, rels);
}

}  // namespace gumbo::data
