// Synthetic data generation mirroring the paper's experimental data
// (§5.1): guard relations of 100M 4-ary tuples (4 GB), conditional
// relations of 100M narrow tuples (1 GB), with a configurable fraction of
// conditional values matching the guard ("selectivity rate" — the
// percentage of guard tuples a conditional relation matches, §5.4).
//
// This repo materializes a sample of each relation and declares the full
// size through Relation::representation_scale (DESIGN.md §2), so cost and
// byte accounting happen at paper scale while execution stays fast.
//
// Determinism & selectivity: a guard attribute value v in [0, domain) is
// "selected" for conditional relation REL iff a salted hash of (v, REL)
// falls below the selectivity threshold. Guard attributes are uniform over
// the domain, so each conditional matches exactly `selectivity` of the
// guard tuples in expectation, independently across relations.
#ifndef GUMBO_DATA_GENERATOR_H_
#define GUMBO_DATA_GENERATOR_H_

#include <string>

#include "common/relation.h"

namespace gumbo::data {

struct GeneratorConfig {
  uint64_t seed = 42;
  /// Materialized tuples per relation (guard and conditional alike, as in
  /// the paper: "For the conditional relations we use the same number of
  /// tuples").
  size_t tuples = 250000;
  /// Each materialized tuple represents this many tuples; the default
  /// yields the paper's 100M-tuple relations (250k x 400).
  double representation_scale = 400.0;
  /// Fraction of guard tuples a conditional relation matches (paper
  /// default: 50%).
  double selectivity = 0.5;
  /// Attribute value domain [0, domain); defaults to `tuples`.
  size_t domain = 0;

  size_t Domain() const { return domain > 0 ? domain : tuples; }
};

class Generator {
 public:
  explicit Generator(GeneratorConfig config) : config_(config) {}

  const GeneratorConfig& config() const { return config_; }

  /// A guard relation: `arity` uniform attributes over the domain.
  /// Density: 10 B per attribute (4-ary guard = 40 B, the paper's 4 GB at
  /// 100M tuples).
  Relation Guard(const std::string& name, uint32_t arity = 4) const;

  /// A conditional relation whose first attribute carries the join values:
  /// `selectivity` of the domain values selected for this relation name,
  /// padded with non-matching values (>= domain) up to the tuple count.
  /// Additional attributes are uniform. Pass selectivity < 0 to use the
  /// config default.
  Relation Conditional(const std::string& name, uint32_t arity = 1,
                       double selectivity = -1.0) const;

 private:
  GeneratorConfig config_;
};

}  // namespace gumbo::data

#endif  // GUMBO_DATA_GENERATOR_H_
