// Synthetic data generation mirroring the paper's experimental data
// (§5.1): guard relations of 100M 4-ary tuples (4 GB), conditional
// relations of 100M narrow tuples (1 GB), with a configurable fraction of
// conditional values matching the guard ("selectivity rate" — the
// percentage of guard tuples a conditional relation matches, §5.4).
//
// This repo materializes a sample of each relation and declares the full
// size through Relation::representation_scale (DESIGN.md §2), so cost and
// byte accounting happen at paper scale while execution stays fast.
//
// Determinism & selectivity: a guard attribute value v in [0, domain) is
// "selected" for conditional relation REL iff a salted hash of (v, REL)
// falls below the selectivity threshold. Guard attributes are uniform over
// the domain, so each conditional matches exactly `selectivity` of the
// guard tuples in expectation, independently across relations.
#ifndef GUMBO_DATA_GENERATOR_H_
#define GUMBO_DATA_GENERATOR_H_

#include <string>
#include <vector>

#include "common/relation.h"
#include "common/rng.h"

namespace gumbo::data {

/// Zipf(theta) rank sampler over [0, n): P(rank r) proportional to
/// 1/(r+1)^theta, so rank 0 is the hottest value. theta = 0 degenerates to
/// uniform. The CDF is precomputed once (O(n)); Sample is a binary search.
/// Rank r maps directly to domain value r, so "hot" values are the small
/// ones — a fixed, documented convention the skew-aware conditional
/// generators and the calibration regime classifier both rely on.
class ZipfDistribution {
 public:
  ZipfDistribution(size_t n, double theta);

  /// Draws a rank in [0, n) using randomness from `rng`.
  uint64_t Sample(Xoshiro256& rng) const;

  /// Probability mass of rank r.
  double Mass(uint64_t r) const;

  size_t n() const { return cdf_.size(); }
  double theta() const { return theta_; }

 private:
  double theta_;
  std::vector<double> cdf_;
};

struct GeneratorConfig {
  uint64_t seed = 42;
  /// Materialized tuples per relation (guard and conditional alike, as in
  /// the paper: "For the conditional relations we use the same number of
  /// tuples").
  size_t tuples = 250000;
  /// Each materialized tuple represents this many tuples; the default
  /// yields the paper's 100M-tuple relations (250k x 400).
  double representation_scale = 400.0;
  /// Fraction of guard tuples a conditional relation matches (paper
  /// default: 50%).
  double selectivity = 0.5;
  /// Attribute value domain [0, domain); defaults to `tuples`.
  size_t domain = 0;

  size_t Domain() const { return domain > 0 ? domain : tuples; }
};

class Generator {
 public:
  explicit Generator(GeneratorConfig config) : config_(config) {}

  const GeneratorConfig& config() const { return config_; }

  /// A guard relation: `arity` uniform attributes over the domain.
  /// Density: 10 B per attribute (4-ary guard = 40 B, the paper's 4 GB at
  /// 100M tuples).
  Relation Guard(const std::string& name, uint32_t arity = 4) const;

  /// A conditional relation whose first attribute carries the join values:
  /// `selectivity` of the domain values selected for this relation name,
  /// padded with non-matching values (>= domain) up to the tuple count.
  /// Additional attributes are uniform. Pass selectivity < 0 to use the
  /// config default.
  Relation Conditional(const std::string& name, uint32_t arity = 1,
                       double selectivity = -1.0) const;

  /// A Zipf-skewed guard: every attribute is drawn Zipf(theta) over the
  /// domain (rank r -> value r, so value 0 is the hottest). Same density
  /// and representation scale as Guard. Deterministic in (seed, name).
  Relation ZipfGuard(const std::string& name, uint32_t arity = 4,
                     double theta = 1.0) const;

  /// A correlated-key guard: attribute 0 is drawn from Zipf(theta)
  /// (theta = 0 -> uniform); each further attribute repeats attribute 0
  /// with probability `correlation`, else draws fresh from the same
  /// distribution. correlation = 1 makes every row a constant tuple of one
  /// key; 0 recovers independent attributes.
  Relation CorrelatedGuard(const std::string& name, uint32_t arity = 4,
                           double correlation = 0.5,
                           double theta = 0.0) const;

  /// A conditional relation whose matching values are the `selectivity`
  /// *hottest* fraction of the domain (ranks [0, sel*domain)). Under a
  /// uniform guard this matches `selectivity` of guard tuples; under a
  /// ZipfGuard it matches far MORE (the hot mass concentrates there) —
  /// the regime where the uniform-calibrated cost model overestimates
  /// how much a semi-join chain shrinks.
  Relation HotConditional(const std::string& name, uint32_t arity = 1,
                          double selectivity = -1.0) const;

  /// The mirror image: matching values are the `selectivity` *coldest*
  /// fraction (ranks [domain - sel*domain, domain)). Under a ZipfGuard it
  /// matches far FEWER guard tuples than `selectivity` — the regime where
  /// the uniform model underestimates shrink and mis-plans multi-round
  /// strategies as too expensive.
  Relation ColdConditional(const std::string& name, uint32_t arity = 1,
                           double selectivity = -1.0) const;

 private:
  Relation SkewConditional(const std::string& name, uint32_t arity,
                           double selectivity, bool hot) const;

  GeneratorConfig config_;
};

}  // namespace gumbo::data

#endif  // GUMBO_DATA_GENERATOR_H_
