// Simulated Pig / Hive comparators (paper §5.2).
//
// These planners generate MR programs with the documented behavioural
// characteristics of each system, run on the same simulated cluster:
//
//  * HPAR  — Hive with left-outer-join plans: one LOJ job per conditional
//    atom, each materializing ALL guard rows plus a match flag (no
//    reduction), executed *sequentially* (Hive's restriction that certain
//    join stages cannot run in parallel), then a filter job. When all
//    atoms share a join key Hive groups them into a single multi-way join,
//    bringing the plan to 2 jobs (the paper's A3 observation).
//  * HPARS — Hive with semi-join operators: one repartition semi-join job
//    per atom, running in parallel, but with no grouping, no message
//    packing, no tuple-id projection, and full-tuple shuffles on both
//    sides; a final intersection job combines the results.
//  * PPAR  — Pig COGROUP plans: one COGROUP job per atom producing a
//    flagged copy of the full guard relation (no intermediate reduction),
//    with Pig's input-based reducer allocation (1 GB of map input per
//    reducer), plus a final combine job.
//
// Serialization overhead of the less compact systems is modeled by a
// multiplier on intermediate bytes (kHiveOverhead / kPigOverhead).
//
// Only flat (dependency-free) SGF queries are supported — the paper's
// Pig/Hive comparison (Figures 3 and 4) uses exactly those.
#ifndef GUMBO_BASELINES_BASELINES_H_
#define GUMBO_BASELINES_BASELINES_H_

#include "common/relation.h"
#include "common/result.h"
#include "plan/planner.h"
#include "sgf/sgf.h"

namespace gumbo::baselines {

inline constexpr double kHiveOverhead = 1.3;
inline constexpr double kPigOverhead = 1.15;

enum class BaselineKind { kHivePar, kHiveParSemiJoin, kPigPar };

const char* BaselineName(BaselineKind kind);

/// Builds the baseline plan for a flat SGF query.
Result<plan::QueryPlan> PlanBaseline(BaselineKind kind,
                                     const sgf::SgfQuery& query,
                                     const Database& db);

}  // namespace gumbo::baselines

#endif  // GUMBO_BASELINES_BASELINES_H_
