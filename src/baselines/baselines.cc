#include "baselines/baselines.h"

#include <memory>

#include "ops/eval.h"
#include "ops/messages.h"
#include "ops/one_round.h"

namespace gumbo::baselines {

const char* BaselineName(BaselineKind kind) {
  switch (kind) {
    case BaselineKind::kHivePar:
      return "HPAR";
    case BaselineKind::kHiveParSemiJoin:
      return "HPARS";
    case BaselineKind::kPigPar:
      return "PPAR";
  }
  return "?";
}

namespace {

using ops::kTagAssert;
using ops::kTagGuard;
using ops::kTagRequest;
using ops::kTagX;

// ---- Left-outer-join job (HPAR, PPAR per-atom) ------------------------------
// Emits every guard row extended with one 0/1 match flag per atom. All
// atoms of one job must share the join key (single-atom jobs trivially do).
struct LojSpec {
  sgf::Atom guard;            // pattern over the first guard.arity() columns
  std::string input_dataset;  // guard relation or previous flagged output
  uint32_t input_arity = 0;   // guard.arity() + flags already appended
  bool filter_guard_pattern = false;
  std::vector<std::pair<sgf::Atom, std::string>> atoms;  // (atom, dataset)
  std::string output_dataset;
  double overhead = 1.0;
  mr::ReducerAllocation allocation =
      mr::ReducerAllocation::kByIntermediateSize;
};

struct CompiledLoj {
  LojSpec spec;
  std::vector<std::string> key_vars;  // shared join key of all atoms
};

class LojMapper : public mr::Mapper {
 public:
  explicit LojMapper(std::shared_ptr<const CompiledLoj> c) : c_(std::move(c)) {}

  void Map(size_t input_index, RowView fact, uint64_t,
           mr::Emitter* emitter) override {
    const LojSpec& s = c_->spec;
    if (input_index == 0) {
      // The guard pattern covers the first guard.arity() columns: a
      // zero-copy prefix view of the (possibly already-flagged) row.
      TupleView prefix(fact.words(), s.guard.arity());
      if (s.filter_guard_pattern && !s.guard.Conforms(prefix)) return;
      // Payload: the full (possibly already-flagged) row.
      emitter->Emit(s.guard.Project(prefix, c_->key_vars), kTagRequest, 0,
                    fact, ops::kTagBytes + mr::TupleWireBytes(fact));
    } else {
      const auto& [atom, ds] = s.atoms[input_index - 1];
      if (!atom.Conforms(fact)) return;
      // Hive/Pig ship the conditional tuple itself (wire size), though
      // only the match flag matters at the reducer.
      emitter->Emit(atom.Project(fact, c_->key_vars), kTagAssert,
                    static_cast<uint32_t>(input_index - 1),
                    ops::kTagBytes + mr::TupleWireBytes(fact));
    }
  }

 private:
  std::shared_ptr<const CompiledLoj> c_;
};

class LojReducer : public mr::Reducer {
 public:
  explicit LojReducer(std::shared_ptr<const CompiledLoj> c)
      : c_(std::move(c)) {}

  void Reduce(TupleView, const mr::MessageGroup& values,
              mr::ReduceEmitter* emitter) override {
    const size_t n = c_->spec.atoms.size();
    matched_.assign(n, false);
    for (const mr::MessageRef m : values) {
      if (m.tag() == kTagAssert) matched_[m.aux()] = true;
    }
    for (const mr::MessageRef m : values) {
      if (m.tag() != kTagRequest) continue;
      Tuple row = m.PayloadTuple();
      for (size_t a = 0; a < n; ++a) {
        row.PushBack(Value::Int(matched_[a] ? 1 : 0));
      }
      emitter->Emit(0, row);
    }
  }

 private:
  std::shared_ptr<const CompiledLoj> c_;
  std::vector<bool> matched_;
};

Result<mr::JobSpec> BuildLojJob(const LojSpec& in, const std::string& name) {
  auto compiled = std::make_shared<CompiledLoj>();
  compiled->spec = in;
  if (in.atoms.empty()) {
    return Status::InvalidArgument("LOJ job without atoms");
  }
  compiled->key_vars = in.atoms[0].first.SharedVariables(in.guard);
  for (const auto& [atom, ds] : in.atoms) {
    if (atom.SharedVariables(in.guard) != compiled->key_vars) {
      return Status::InvalidArgument(
          "LOJ job atoms must share one join key");
    }
  }
  mr::JobSpec spec;
  spec.name = name;
  spec.pack_messages = false;  // neither system packs gumbo-style
  spec.intermediate_overhead_factor = in.overhead;
  spec.reducer_allocation = in.allocation;
  spec.inputs.push_back({in.input_dataset});
  for (const auto& [atom, ds] : in.atoms) spec.inputs.push_back({ds});
  mr::JobOutput out;
  out.dataset = in.output_dataset;
  out.arity = in.input_arity + static_cast<uint32_t>(in.atoms.size());
  out.bytes_per_tuple = 10.0 * static_cast<double>(out.arity);
  spec.outputs.push_back(std::move(out));
  spec.mapper_factory = [compiled] {
    return std::make_unique<LojMapper>(compiled);
  };
  spec.reducer_factory = [compiled] {
    return std::make_unique<LojReducer>(compiled);
  };
  return spec;
}

// ---- Flag-combine job (HPAR / PPAR final stage) -----------------------------
// Reads flagged guard copies, reconciles per guard row, evaluates the
// condition, projects.
struct FlaggedSource {
  std::string dataset;
  // (column index, query atom index) for each flag column.
  std::vector<std::pair<uint32_t, size_t>> flags;
};

struct CompiledCombine {
  sgf::BsgfQuery query;
  std::vector<FlaggedSource> sources;
  double overhead = 1.0;
};

class CombineMapper : public mr::Mapper {
 public:
  explicit CombineMapper(std::shared_ptr<const CompiledCombine> c)
      : c_(std::move(c)) {}

  void Map(size_t input_index, RowView fact, uint64_t,
           mr::Emitter* emitter) override {
    const FlaggedSource& src = c_->sources[input_index];
    // Zero-copy prefix: the guard row is the first guard.arity() columns.
    TupleView key(fact.words(), c_->query.guard().arity());
    // Guard pattern filter: a no-op for rows that already passed an LOJ
    // job, but required when a source is the raw guard relation.
    if (!c_->query.guard().Conforms(key)) return;
    for (const auto& [col, atom] : src.flags) {
      if (fact[col] == Value::Int(1)) {
        emitter->Emit(key, kTagX, static_cast<uint32_t>(atom),
                      ops::kTagBytes + ops::kSmallIdBytes);
      }
    }
    if (input_index == 0) {
      emitter->Emit(key, kTagGuard, 0, ops::kTagBytes);
    }
  }

 private:
  std::shared_ptr<const CompiledCombine> c_;
};

class CombineReducer : public mr::Reducer {
 public:
  explicit CombineReducer(std::shared_ptr<const CompiledCombine> c)
      : c_(std::move(c)) {}

  void Reduce(TupleView key, const mr::MessageGroup& values,
              mr::ReduceEmitter* emitter) override {
    bool guard_present = false;
    truth_.assign(c_->query.num_conditional_atoms(), false);
    for (const mr::MessageRef m : values) {
      if (m.tag() == kTagGuard) guard_present = true;
      if (m.tag() == kTagX) truth_[m.aux()] = true;
    }
    if (!guard_present) return;
    bool keep = !c_->query.has_condition() ||
                c_->query.condition()->Evaluate(
                    [&](size_t i) { return truth_[i]; });
    if (!keep) return;
    emitter->Emit(0,
                  c_->query.guard().Project(key, c_->query.select_vars()));
  }

 private:
  std::shared_ptr<const CompiledCombine> c_;
  std::vector<bool> truth_;
};

Result<mr::JobSpec> BuildCombineJob(const sgf::BsgfQuery& query,
                                    std::vector<FlaggedSource> sources,
                                    double overhead,
                                    mr::ReducerAllocation allocation,
                                    const std::string& name) {
  auto compiled = std::make_shared<CompiledCombine>();
  compiled->query = query;
  compiled->sources = std::move(sources);
  compiled->overhead = overhead;
  mr::JobSpec spec;
  spec.name = name;
  spec.pack_messages = false;
  spec.intermediate_overhead_factor = overhead;
  spec.reducer_allocation = allocation;
  for (const auto& src : compiled->sources) {
    spec.inputs.push_back({src.dataset});
  }
  mr::JobOutput out;
  out.dataset = query.output();
  out.arity = query.OutputArity();
  out.bytes_per_tuple = 10.0 * static_cast<double>(out.arity);
  out.dedupe = true;
  spec.outputs.push_back(std::move(out));
  spec.mapper_factory = [compiled] {
    return std::make_unique<CombineMapper>(compiled);
  };
  spec.reducer_factory = [compiled] {
    return std::make_unique<CombineReducer>(compiled);
  };
  return spec;
}

// ---- Semi-join job with full-tuple shuffles (HPARS per-atom) ---------------

struct CompiledSemiFull {
  sgf::Atom guard;
  sgf::Atom conditional;
  std::vector<std::string> key_vars;
  bool filter_guard_pattern = true;
};

class SemiFullMapper : public mr::Mapper {
 public:
  explicit SemiFullMapper(std::shared_ptr<const CompiledSemiFull> c)
      : c_(std::move(c)) {}
  void Map(size_t input_index, RowView fact, uint64_t,
           mr::Emitter* emitter) override {
    if (input_index == 0) {
      if (c_->filter_guard_pattern && !c_->guard.Conforms(fact)) return;
      emitter->Emit(c_->guard.Project(fact, c_->key_vars), kTagRequest, 0,
                    fact, ops::kTagBytes + mr::TupleWireBytes(fact));
    } else {
      if (!c_->conditional.Conforms(fact)) return;
      emitter->Emit(c_->conditional.Project(fact, c_->key_vars), kTagAssert,
                    0, ops::kTagBytes + mr::TupleWireBytes(fact));
    }
  }

 private:
  std::shared_ptr<const CompiledSemiFull> c_;
};

class SemiFullReducer : public mr::Reducer {
 public:
  void Reduce(TupleView, const mr::MessageGroup& values,
              mr::ReduceEmitter* emitter) override {
    bool asserted = false;
    for (const mr::MessageRef m : values) {
      if (m.tag() == kTagAssert) {
        asserted = true;
        break;
      }
    }
    if (!asserted) return;
    for (const mr::MessageRef m : values) {
      if (m.tag() == kTagRequest) emitter->Emit(0, m.PayloadView());
    }
  }
};

Result<mr::JobSpec> BuildSemiFullJob(const sgf::Atom& guard,
                                     const std::string& guard_ds,
                                     const sgf::Atom& conditional,
                                     const std::string& cond_ds,
                                     const std::string& out_ds,
                                     double overhead,
                                     const std::string& name) {
  auto compiled = std::make_shared<CompiledSemiFull>();
  compiled->guard = guard;
  compiled->conditional = conditional;
  compiled->key_vars = conditional.SharedVariables(guard);
  mr::JobSpec spec;
  spec.name = name;
  spec.pack_messages = false;
  spec.intermediate_overhead_factor = overhead;
  spec.inputs.push_back({guard_ds});
  spec.inputs.push_back({cond_ds});
  mr::JobOutput out;
  out.dataset = out_ds;
  out.arity = guard.arity();
  out.bytes_per_tuple = 10.0 * static_cast<double>(guard.arity());
  spec.outputs.push_back(std::move(out));
  spec.mapper_factory = [compiled] {
    return std::make_unique<SemiFullMapper>(compiled);
  };
  spec.reducer_factory = [] { return std::make_unique<SemiFullReducer>(); };
  return spec;
}

// ---- Per-system planners ----------------------------------------------------

Status PlanHparQuery(const sgf::BsgfQuery& q, plan::QueryPlan* plan,
                     size_t* counter) {
  if (!q.has_condition()) {
    // Degenerate: a single LOJ-less projection via combine on the guard.
    GUMBO_ASSIGN_OR_RETURN(
        mr::JobSpec spec,
        BuildCombineJob(q, {{q.guard().relation(), {}}}, kHiveOverhead,
                        mr::ReducerAllocation::kByIntermediateSize,
                        "HIVE-PROJECT(" + q.output() + ")"));
    plan->program.AddJob(std::move(spec));
    return Status::Ok();
  }
  const auto& atoms = q.conditional_atoms();
  std::vector<size_t> chain_deps;
  std::string current = q.guard().relation();
  uint32_t arity = q.guard().arity();
  FlaggedSource final_src;
  if (q.AllAtomsShareJoinKey()) {
    // Hive groups same-key joins: one multi-way LOJ + the filter job.
    LojSpec loj;
    loj.guard = q.guard();
    loj.input_dataset = current;
    loj.input_arity = arity;
    loj.filter_guard_pattern = true;
    for (size_t a = 0; a < atoms.size(); ++a) {
      loj.atoms.push_back({atoms[a], atoms[a].relation()});
      final_src.flags.push_back(
          {arity + static_cast<uint32_t>(a), a});
    }
    loj.output_dataset = "__hive_" + q.output() + "_loj";
    plan->intermediates.push_back(loj.output_dataset);
    loj.overhead = kHiveOverhead;
    GUMBO_ASSIGN_OR_RETURN(
        mr::JobSpec spec,
        BuildLojJob(loj, "HIVE-MWJOIN(" + q.output() + ")"));
    chain_deps = {plan->program.AddJob(std::move(spec))};
    final_src.dataset = loj.output_dataset;
  } else {
    // One LOJ per atom, chained sequentially (Hive's serialization).
    for (size_t a = 0; a < atoms.size(); ++a) {
      LojSpec loj;
      loj.guard = q.guard();
      loj.input_dataset = current;
      loj.input_arity = arity;
      loj.filter_guard_pattern = (a == 0);
      loj.atoms.push_back({atoms[a], atoms[a].relation()});
      loj.output_dataset =
          "__hive_" + q.output() + "_loj" + std::to_string((*counter)++);
      plan->intermediates.push_back(loj.output_dataset);
      loj.overhead = kHiveOverhead;
      GUMBO_ASSIGN_OR_RETURN(
          mr::JobSpec spec,
          BuildLojJob(loj, "HIVE-LOJ(" + q.output() + "/" +
                               atoms[a].ToString() + ")"));
      size_t id = plan->program.AddJob(std::move(spec), chain_deps);
      chain_deps = {id};
      // The flag of atom `a` lands at the current row width (one column is
      // appended per chain job).
      final_src.flags.push_back({arity, a});
      current = loj.output_dataset;
      arity += 1;
    }
    final_src.dataset = current;
  }
  GUMBO_ASSIGN_OR_RETURN(
      mr::JobSpec spec,
      BuildCombineJob(q, {final_src}, kHiveOverhead,
                      mr::ReducerAllocation::kByIntermediateSize,
                      "HIVE-FILTER(" + q.output() + ")"));
  plan->program.AddJob(std::move(spec), chain_deps);
  return Status::Ok();
}

Status PlanHparsQuery(const sgf::BsgfQuery& q, plan::QueryPlan* plan,
                      size_t* counter) {
  ops::OpOptions opt;
  opt.tuple_id_refs = false;
  opt.pack_messages = false;
  // The baselines model systems without gumbo's shuffle-volume
  // optimizations (DESIGN.md §5).
  opt.combiners = false;
  opt.bloom_filters = false;
  ops::EvalTask eval_task;
  eval_task.query = q;
  eval_task.guard_dataset = q.guard().relation();
  eval_task.output_dataset = q.output();
  std::vector<size_t> deps;
  for (size_t a = 0; a < q.num_conditional_atoms(); ++a) {
    std::string x =
        "__hives_" + q.output() + "_x" + std::to_string((*counter)++);
    plan->intermediates.push_back(x);
    GUMBO_ASSIGN_OR_RETURN(
        mr::JobSpec spec,
        BuildSemiFullJob(q.guard(), q.guard().relation(),
                         q.conditional_atoms()[a],
                         q.conditional_atoms()[a].relation(), x,
                         kHiveOverhead,
                         "HIVE-SJ(" + q.output() + "/" +
                             q.conditional_atoms()[a].ToString() + ")"));
    deps.push_back(plan->program.AddJob(std::move(spec)));
    eval_task.x_datasets.push_back(x);
  }
  GUMBO_ASSIGN_OR_RETURN(
      mr::JobSpec spec,
      ops::BuildEvalJob({eval_task}, opt,
                        "HIVE-INTERSECT(" + q.output() + ")"));
  spec.intermediate_overhead_factor = kHiveOverhead;
  plan->program.AddJob(std::move(spec), deps);
  return Status::Ok();
}

Status PlanPparQuery(const sgf::BsgfQuery& q, plan::QueryPlan* plan,
                     size_t* counter) {
  std::vector<FlaggedSource> sources;
  std::vector<size_t> deps;
  for (size_t a = 0; a < q.num_conditional_atoms(); ++a) {
    LojSpec loj;
    loj.guard = q.guard();
    loj.input_dataset = q.guard().relation();
    loj.input_arity = q.guard().arity();
    loj.filter_guard_pattern = true;
    loj.atoms.push_back({q.conditional_atoms()[a],
                         q.conditional_atoms()[a].relation()});
    loj.output_dataset =
        "__pig_" + q.output() + "_cg" + std::to_string((*counter)++);
    plan->intermediates.push_back(loj.output_dataset);
    loj.overhead = kPigOverhead;
    loj.allocation = mr::ReducerAllocation::kByMapInputSize;
    GUMBO_ASSIGN_OR_RETURN(
        mr::JobSpec spec,
        BuildLojJob(loj, "PIG-COGROUP(" + q.output() + "/" +
                             q.conditional_atoms()[a].ToString() + ")"));
    deps.push_back(plan->program.AddJob(std::move(spec)));
    FlaggedSource src;
    src.dataset = loj.output_dataset;
    src.flags.push_back({q.guard().arity(), a});
    sources.push_back(std::move(src));
  }
  if (sources.empty()) {
    sources.push_back({q.guard().relation(), {}});
  }
  GUMBO_ASSIGN_OR_RETURN(
      mr::JobSpec spec,
      BuildCombineJob(q, std::move(sources), kPigOverhead,
                      mr::ReducerAllocation::kByMapInputSize,
                      "PIG-COMBINE(" + q.output() + ")"));
  plan->program.AddJob(std::move(spec), deps);
  return Status::Ok();
}

}  // namespace

Result<plan::QueryPlan> PlanBaseline(BaselineKind kind,
                                     const sgf::SgfQuery& query,
                                     const Database& db) {
  (void)db;
  // Flat queries only.
  sgf::DependencyGraph graph = query.BuildDependencyGraph();
  for (size_t v = 0; v < graph.size(); ++v) {
    if (!graph.Predecessors(v).empty()) {
      return Status::Unimplemented(
          "baseline planners support flat SGF queries only");
    }
  }
  plan::QueryPlan plan;
  size_t counter = 0;
  for (const auto& q : query.subqueries()) {
    plan.outputs.push_back(q.output());
    switch (kind) {
      case BaselineKind::kHivePar:
        GUMBO_RETURN_IF_ERROR(PlanHparQuery(q, &plan, &counter));
        break;
      case BaselineKind::kHiveParSemiJoin:
        GUMBO_RETURN_IF_ERROR(PlanHparsQuery(q, &plan, &counter));
        break;
      case BaselineKind::kPigPar:
        GUMBO_RETURN_IF_ERROR(PlanPparQuery(q, &plan, &counter));
        break;
    }
  }
  plan.description = plan.program.ToString();
  return plan;
}

}  // namespace gumbo::baselines
