#include "mr/runtime.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <optional>

#include "common/cancel.h"

namespace gumbo::mr {

std::vector<std::vector<size_t>> Runtime::JobRounds(const Program& program) {
  const size_t n = program.size();
  std::vector<int> depth(n, 0);
  int max_depth = -1;
  // Dependency indices always point backwards (Program::AddJob asserts),
  // so one forward pass computes the longest-chain depth of every job.
  for (size_t i = 0; i < n; ++i) {
    int d = 0;
    for (size_t p : program.deps(i)) d = std::max(d, depth[p] + 1);
    depth[i] = d;
    max_depth = std::max(max_depth, d);
  }
  std::vector<std::vector<size_t>> rounds(static_cast<size_t>(max_depth + 1));
  for (size_t i = 0; i < n; ++i) {
    rounds[static_cast<size_t>(depth[i])].push_back(i);
  }
  return rounds;
}

Result<ProgramStats> Runtime::Execute(const Program& program, Database* db,
                                      const SchedContext& ctx) const {
  using Clock = std::chrono::steady_clock;
  const Clock::time_point program_start = Clock::now();
  auto ms_since = [](Clock::time_point t0) {
    return std::chrono::duration<double, std::milli>(Clock::now() - t0)
        .count();
  };

  ProgramStats stats;
  stats.jobs.resize(program.size());
  const std::vector<std::vector<size_t>> rounds = JobRounds(program);
  stats.round_stats.reserve(rounds.size());

  for (size_t ri = 0; ri < rounds.size(); ++ri) {
    const std::vector<size_t>& round = rounds[ri];
    const Clock::time_point round_start = Clock::now();

    // Cancellation barrier: a query cancelled between rounds never
    // starts the next one, and since a failing round commits nothing,
    // the database still holds exactly the snapshot of the last fully
    // committed round.
    GUMBO_RETURN_IF_ERROR(CheckCancel(ctx.cancel));

    // Every dependency of this round's jobs was committed in an earlier
    // round, so all jobs read `db` concurrently without synchronization;
    // nothing writes to it until the barrier below.
    std::vector<std::optional<Result<Engine::JobResult>>> results(
        round.size());
    std::atomic<int> in_flight{0};
    std::atomic<int> peak{0};
    auto run_one = [&](size_t k) {
      int cur = in_flight.fetch_add(1) + 1;
      int seen = peak.load();
      while (cur > seen && !peak.compare_exchange_weak(seen, cur)) {
      }
      results[k] = engine_->RunDetached(program.job(round[k]), *db, ctx);
      in_flight.fetch_sub(1);
    };
    if (options_.concurrent_jobs) {
      // One ticket per job at the query's priority; each job then chains
      // its own map/reduce morsels (nested groups — the waiter helps, so
      // this nests without deadlock on any worker count).
      engine_->scheduler().ParallelFor(round.size(), run_one, ctx);
    } else {
      for (size_t k = 0; k < round.size(); ++k) run_one(k);
    }

    // A failing round commits nothing; the first failure (by job index)
    // wins deterministically.
    for (size_t k = 0; k < round.size(); ++k) {
      if (!results[k]->ok()) return results[k]->status();
    }

    // Barrier: commit outputs in job-index order so the database contents
    // (and any output-name collisions) match a sequential run exactly.
    RoundStats rs;
    rs.round = static_cast<int>(ri + 1);
    rs.jobs = round;
    rs.max_concurrent = peak.load();
    for (size_t k = 0; k < round.size(); ++k) {
      Engine::JobResult& r = **results[k];
      for (Relation& out : r.outputs) db->Put(std::move(out));
      double cost = r.stats.TotalCost();
      rs.max_job_cost = std::max(rs.max_job_cost, cost);
      rs.sum_job_cost += cost;
      // Round-level shuffle volume is *derived* from the job stats at the
      // commit barrier, never re-measured: JobStats::shuffle_mb is the
      // single source of truth (see mr/stats.h; asserted in
      // tests/runtime_test.cc).
      rs.shuffle_mb += r.stats.shuffle_mb;
      stats.jobs[round[k]] = std::move(r.stats);
    }
    rs.wall_ms = ms_since(round_start);
    stats.round_stats.push_back(std::move(rs));
  }

  stats.rounds = program.Rounds();
  stats.wall_ms = ms_since(program_start);
  for (const JobStats& js : stats.jobs) stats.total_time += js.TotalCost();
  std::vector<std::vector<size_t>> deps;
  deps.reserve(program.size());
  for (size_t i = 0; i < program.size(); ++i) deps.push_back(program.deps(i));
  stats.net_time = SimulateNetTime(stats.jobs, deps, engine_->config());
  return stats;
}

}  // namespace gumbo::mr
