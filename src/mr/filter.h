// Bloom-filter pre-filtering of shuffle messages (DESIGN.md §5.2).
//
// Gumbo's semi-join jobs shuffle one Request message per (guard fact,
// equation) even when the request's join key cannot possibly match a
// conditional fact — the reducer then silently drops it. A per-condition
// Bloom filter over the conditional relation's projected join keys lets
// the mapper skip those requests entirely: a negative answer is exact
// ("no conditional fact has this key"), a false positive merely ships a
// request that the reducer drops as before. Query results are therefore
// byte-identical with filtering on or off; only shuffle volume changes.
//
// The operator builders (ops/msj.cc, ops/chain.cc, ops/one_round.cc)
// construct the filters through JobSpec::filter_builder, the engine runs
// the builder once per job before the map phase and hands the resulting
// FilterSet to every mapper (see docs/operators.md for which message
// kinds of each operator are filter-eligible). Build and broadcast costs
// enter the modeled clock via cost::FilterBuildCost /
// cost::FilterBroadcastCost (DESIGN.md §5.3).
#ifndef GUMBO_MR_FILTER_H_
#define GUMBO_MR_FILTER_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace gumbo::mr {

/// A classic (m bits, k hashes) Bloom filter over 64-bit key hashes
/// (DESIGN.md §5.2). Sized from an expected key count and a target
/// false-positive probability: m = -n ln(p) / (ln 2)^2, k = (m/n) ln 2.
/// Deterministic: the bit pattern depends only on the inserted hash set.
/// No false negatives, ever — that is what makes dropping a request on a
/// negative membership answer safe (docs/operators.md, "Filter rules").
class BloomFilter {
 public:
  /// Default target false-positive probability (ops::OpOptions can
  /// override per plan).
  static constexpr double kDefaultFpp = 0.01;

  /// An empty filter: contains nothing, occupies no bytes.
  BloomFilter() = default;

  /// Sizes the filter for `expected_keys` insertions at false-positive
  /// probability `fpp`. `expected_keys` of 0 is treated as 1.
  explicit BloomFilter(size_t expected_keys, double fpp = kDefaultFpp);

  /// Inserts a key by its 64-bit hash (e.g. Tuple::Hash of the join key).
  void Insert(uint64_t key_hash);

  /// Returns false only if the key was definitely never inserted.
  bool MightContain(uint64_t key_hash) const;

  /// Bitset size in bytes — what a broadcast of this filter ships
  /// (DESIGN.md §5.3); excludes the constant-size header.
  double SizeBytes() const { return static_cast<double>(words_.size()) * 8.0; }

  size_t num_bits() const { return words_.size() * 64; }
  int num_hashes() const { return num_hashes_; }

 private:
  std::vector<uint64_t> words_;
  int num_hashes_ = 0;
};

/// The per-job collection of Bloom filters built by
/// JobSpec::filter_builder before the map phase (DESIGN.md §5.2). The
/// operator builder decides what each index means (MSJ: one filter per
/// condition id; chain: one per step; 1-ROUND: one per key-group
/// condition id — see docs/operators.md); mappers receive the set via
/// Mapper::AttachFilters and address filters by those indices.
class FilterSet {
 public:
  /// Appends a filter, returning its index.
  size_t Add(BloomFilter filter) {
    filters_.push_back(std::move(filter));
    return filters_.size() - 1;
  }

  const BloomFilter& filter(size_t i) const { return filters_[i]; }
  /// Mutable access for the builder's insert pass.
  BloomFilter* mutable_filter(size_t i) { return &filters_[i]; }

  size_t size() const { return filters_.size(); }
  bool empty() const { return filters_.empty(); }

  /// Total bitset bytes across all filters (materialized; the engine
  /// scales by the representation scale, DESIGN.md §5.3).
  double SizeBytes() const {
    double b = 0.0;
    for (const BloomFilter& f : filters_) b += f.SizeBytes();
    return b;
  }

  /// Represented MB the builder scanned to populate the filters (the
  /// conditional inputs it read); the cost model charges one local read
  /// over it (cost::FilterBuildCost, DESIGN.md §5.3).
  double scan_mb() const { return scan_mb_; }
  void set_scan_mb(double mb) { scan_mb_ = mb; }

 private:
  std::vector<BloomFilter> filters_;
  double scan_mb_ = 0.0;
};

}  // namespace gumbo::mr

#endif  // GUMBO_MR_FILTER_H_
