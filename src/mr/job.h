// Job interfaces of the simulated MapReduce engine.
#ifndef GUMBO_MR_JOB_H_
#define GUMBO_MR_JOB_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/relation.h"
#include "common/result.h"
#include "common/tuple.h"
#include "mr/filter.h"
#include "mr/map_output.h"
#include "mr/message.h"

namespace gumbo::mr {

/// Sink for reduce-side output tuples; output_index selects one of the
/// job's declared outputs. The engine's implementation encodes straight
/// into a flat RelationBuilder (common/relation.h), so emitted rows are
/// adopted by the output relation arena-wholesale.
class ReduceEmitter {
 public:
  virtual ~ReduceEmitter() = default;
  /// Emits an owning tuple (reducers that construct fresh rows).
  virtual void Emit(size_t output_index, const Tuple& tuple) = 0;
  /// Emits a borrowed flat row (reducers that forward payloads or keys
  /// verbatim) — the zero-copy path: words flow from the shuffle buffers
  /// into the output builder without a Tuple in between.
  virtual void Emit(size_t output_index, TupleView row) = 0;
};

/// User map function. One instance is created per map task, so Map may keep
/// per-task state without synchronization.
class Mapper {
 public:
  virtual ~Mapper() = default;
  /// Called once per input fact. `fact` is a zero-copy view of the stored
  /// row, carrying the relation's precomputed fingerprint — when the
  /// shuffle key is the fact itself, pass fact.fingerprint() to
  /// EmitPrehashed so the tuple is never hashed again after load
  /// (DESIGN.md §7). The view is valid for the duration of the call.
  /// `input_index` identifies which JobInput the fact came from;
  /// `tuple_id` is the fact's index within its input relation (stable
  /// across runs; used by the tuple-id optimization). Emissions go
  /// straight into the flat map-output buffer (mr/map_output.h) —
  /// `emitter` is a concrete class, not an interface, so the
  /// per-emission path pays no virtual dispatch.
  virtual void Map(size_t input_index, RowView fact, uint64_t tuple_id,
                   Emitter* emitter) = 0;

  /// Hands the mapper the job's Bloom filters (DESIGN.md §5.2) before any
  /// Map call; only invoked when JobSpec::filter_builder produced a
  /// non-empty FilterSet. `filters` outlives the mapper. Mappers that
  /// don't pre-filter ignore it.
  virtual void AttachFilters(const FilterSet* filters) { (void)filters; }

  /// Number of emissions this mapper suppressed because a Bloom filter
  /// proved the key cannot match (DESIGN.md §5.2); the engine aggregates
  /// it into JobStats::filtered_messages after the task finishes.
  virtual uint64_t SuppressedEmissions() const { return 0; }
};

/// User reduce function. One instance per reduce task.
class Reducer {
 public:
  virtual ~Reducer() = default;
  /// Called once per key group, keys in sorted order within the task.
  /// `key` and `values` are zero-copy views over the shuffle's flat
  /// buffers, valid only for the duration of the call; messages arrive in
  /// (map task, emission) order.
  virtual void Reduce(TupleView key, const MessageGroup& values,
                      ReduceEmitter* emitter) = 0;
};

/// Map-side combiner (DESIGN.md §5.1): reduces one map task's value list
/// for a single key before it is shuffled. A combiner must never merge
/// across reduce keys and must preserve the reducer's view up to set
/// semantics — the only combiner gumbo's operators use is the
/// set-semantics dedup of mr/combiner.h, which docs/operators.md proves
/// legal per operator. One instance is created per map task, so Combine
/// may keep scratch state without synchronization.
class Combiner {
 public:
  virtual ~Combiner() = default;
  /// Shrinks the `count` messages of one key group in place (the key in
  /// flat form: `key_arity` raw words at `key`; `payload_arena` resolves
  /// spilled payloads). Returns how many messages survive, compacted to
  /// the front of `values`. Must keep at least one message per surviving
  /// equivalence class and must not reorder the survivors.
  virtual size_t Combine(const uint64_t* key, uint32_t key_arity,
                         Message* values, size_t count,
                         const uint64_t* payload_arena) = 0;
};

/// How the engine picks the number of reduce tasks.
enum class ReducerAllocation {
  /// Gumbo §5.1 optimization (3): one reducer per mb_per_reducer of
  /// intermediate (map output) data.
  kByIntermediateSize,
  /// Pig's default policy: one reducer per GB of *map input* data.
  kByMapInputSize,
  /// Fixed count given in JobSpec::fixed_num_reducers.
  kFixed,
};

struct JobInput {
  std::string dataset;
  /// Planning hints used by the cost estimator when the dataset is not
  /// materialized yet (outputs of earlier plan stages). Operator builders
  /// fill these with structural upper bounds.
  double hint_messages_per_tuple = 1.0;
  double hint_bytes_per_message = -1.0;  ///< <0: assume input tuple size
};

struct JobOutput {
  std::string dataset;
  uint32_t arity = 0;
  /// Wire density of output tuples (defaults to 10 B per attribute).
  double bytes_per_tuple = 0.0;
  /// Whether the executor should canonicalize (sort + dedupe) the dataset
  /// after the job. Final query outputs set this; intermediate semi-join
  /// results are duplicate-free by construction.
  bool dedupe = false;
};

/// A full MapReduce job specification.
struct JobSpec {
  std::string name;
  std::vector<JobInput> inputs;
  std::vector<JobOutput> outputs;
  /// Factories: the engine instantiates one mapper per map task and one
  /// reducer per reduce task.
  std::function<std::unique_ptr<Mapper>()> mapper_factory;
  std::function<std::unique_ptr<Reducer>()> reducer_factory;
  /// Optional map-side combiner (DESIGN.md §5.1): one instance per map
  /// task, applied by the shuffle to every key group the task emits.
  /// Combined-away messages are accounted in JobStats::combined_messages.
  std::function<std::unique_ptr<Combiner>()> combiner_factory;
  /// Optional Bloom-filter construction (DESIGN.md §5.2): called once per
  /// job with the resolved input relations (JobSpec::inputs order) before
  /// the map phase; the resulting FilterSet is attached to every mapper.
  /// Build/broadcast costs are charged per DESIGN.md §5.3.
  std::function<Result<FilterSet>(const std::vector<const Relation*>&)>
      filter_builder;
  /// Message packing (Gumbo §5.1 optimization (1)): all values emitted by
  /// one map task for the same key share a single key header on the wire.
  bool pack_messages = true;
  ReducerAllocation reducer_allocation = ReducerAllocation::kByIntermediateSize;
  int fixed_num_reducers = 1;
  /// Multiplier on intermediate wire bytes; baselines use it to model
  /// serialization overhead of less compact systems.
  double intermediate_overhead_factor = 1.0;
};

}  // namespace gumbo::mr

#endif  // GUMBO_MR_JOB_H_
