// The set-semantics dedup combiner (DESIGN.md §5.1).
//
// All of gumbo's operators are set-algebraic: a reducer either tests
// message *existence* (Assert / X-membership / union markers) or forwards
// payloads into an output that is deduplicated downstream. Shipping the
// same (tag, aux, payload) twice for one key therefore never changes a
// query result — so the one universally legal combiner is "keep the first
// occurrence of every distinct message per key". docs/operators.md walks
// through the legality argument operator by operator; the property tests
// (tests/property_test.cc) pin byte-identical results with the combiner
// on vs. off over random queries.
//
// Dedup never crosses reduce keys (the shuffle invokes Combine once per
// key group of one map task) and never drops the last copy of a message.
#ifndef GUMBO_MR_COMBINER_H_
#define GUMBO_MR_COMBINER_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "mr/job.h"

namespace gumbo::mr {

/// Removes duplicate messages — equal (tag, aux, payload) — from one map
/// task's value list for a key, keeping first occurrences in order
/// (DESIGN.md §5.1; legality per operator in docs/operators.md). Wire
/// size is not part of the identity: operators assign it as a pure
/// function of the other three fields. Payloads are compared by their
/// flat words, inline or spilled alike.
class DedupCombiner : public Combiner {
 public:
  size_t Combine(const uint64_t* key, uint32_t key_arity, Message* values,
                 size_t count, const uint64_t* payload_arena) override;

 private:
  /// Scratch reused across key groups: message hash -> indices of kept
  /// messages with that hash (collisions resolved by full comparison).
  std::unordered_map<uint64_t, std::vector<uint32_t>> seen_;
};

}  // namespace gumbo::mr

#endif  // GUMBO_MR_COMBINER_H_
