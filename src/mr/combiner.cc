#include "mr/combiner.h"

#include <cstring>

namespace gumbo::mr {

namespace {

inline uint64_t MessageHash(const Message& m, const uint64_t* arena) {
  uint64_t z = (static_cast<uint64_t>(m.tag) << 32) ^ m.aux;
  const uint64_t payload_fp =
      TupleFingerprint(m.payload_words(arena), m.payload_size);
  z ^= payload_fp + 0x9e3779b97f4a7c15ULL + (z << 6) + (z >> 2);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  return z ^ (z >> 31);
}

inline bool SameMessage(const Message& a, const Message& b,
                        const uint64_t* arena) {
  if (a.tag != b.tag || a.aux != b.aux || a.payload_size != b.payload_size) {
    return false;
  }
  return a.payload_size == 0 ||
         std::memcmp(a.payload_words(arena), b.payload_words(arena),
                     a.payload_size * sizeof(uint64_t)) == 0;
}

}  // namespace

size_t DedupCombiner::Combine(const uint64_t* key, uint32_t key_arity,
                              Message* values, size_t count,
                              const uint64_t* payload_arena) {
  (void)key;
  (void)key_arity;
  if (count < 2) return count;
  seen_.clear();
  size_t kept = 0;
  for (size_t i = 0; i < count; ++i) {
    const uint64_t h = MessageHash(values[i], payload_arena);
    std::vector<uint32_t>& bucket = seen_[h];
    bool duplicate = false;
    for (uint32_t idx : bucket) {
      if (SameMessage(values[idx], values[i], payload_arena)) {
        duplicate = true;
        break;
      }
    }
    if (duplicate) continue;
    bucket.push_back(static_cast<uint32_t>(kept));
    if (kept != i) values[kept] = values[i];
    ++kept;
  }
  return kept;
}

}  // namespace gumbo::mr
