#include "mr/combiner.h"

namespace gumbo::mr {

namespace {

inline uint64_t MessageHash(const Message& m) {
  uint64_t z = (static_cast<uint64_t>(m.tag) << 32) ^ m.aux;
  z ^= m.payload.Hash() + 0x9e3779b97f4a7c15ULL + (z << 6) + (z >> 2);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  return z ^ (z >> 31);
}

}  // namespace

void DedupCombiner::Combine(const Tuple& key, std::vector<Message>* values) {
  (void)key;
  if (values->size() < 2) return;
  seen_.clear();
  std::vector<Message> kept;
  kept.reserve(values->size());
  for (Message& m : *values) {
    const uint64_t h = MessageHash(m);
    std::vector<uint32_t>& bucket = seen_[h];
    bool duplicate = false;
    for (uint32_t idx : bucket) {
      const Message& k = kept[idx];
      if (k.tag == m.tag && k.aux == m.aux && k.payload == m.payload) {
        duplicate = true;
        break;
      }
    }
    if (duplicate) continue;
    bucket.push_back(static_cast<uint32_t>(kept.size()));
    kept.push_back(std::move(m));
  }
  *values = std::move(kept);
}

}  // namespace gumbo::mr
