#include "mr/filter.h"

#include <algorithm>
#include <cmath>

namespace gumbo::mr {

namespace {

// Derives the second probe hash for double hashing (Kirsch–Mitzenmacher:
// bit_i = h1 + i * h2). The odd multiplier keeps h2 well-mixed even for
// sequential key hashes.
inline uint64_t SecondHash(uint64_t h) {
  uint64_t z = h ^ 0x94d049bb133111ebULL;
  z = (z ^ (z >> 29)) * 0xff51afd7ed558ccdULL;
  z = (z ^ (z >> 32)) | 1ULL;  // odd, so probes cycle through all bits
  return z;
}

}  // namespace

BloomFilter::BloomFilter(size_t expected_keys, double fpp) {
  const double n = static_cast<double>(std::max<size_t>(expected_keys, 1));
  const double p = std::min(std::max(fpp, 1e-9), 0.5);
  const double ln2 = std::log(2.0);
  // m = -n ln p / (ln 2)^2 bits, rounded up to whole 64-bit words.
  const double bits = std::ceil(-n * std::log(p) / (ln2 * ln2));
  const size_t words =
      std::max<size_t>(1, static_cast<size_t>(std::ceil(bits / 64.0)));
  words_.assign(words, 0);
  // k = (m/n) ln 2 hash functions, clamped to a sane range.
  const double m = static_cast<double>(words * 64);
  num_hashes_ = std::max(
      1, std::min(30, static_cast<int>(std::lround(m / n * ln2))));
}

void BloomFilter::Insert(uint64_t key_hash) {
  if (words_.empty()) return;  // default-constructed: nothing to set
  const uint64_t m = static_cast<uint64_t>(words_.size()) * 64;
  const uint64_t h2 = SecondHash(key_hash);
  uint64_t h = key_hash;
  for (int i = 0; i < num_hashes_; ++i) {
    const uint64_t bit = h % m;
    words_[bit >> 6] |= (1ULL << (bit & 63));
    h += h2;
  }
}

bool BloomFilter::MightContain(uint64_t key_hash) const {
  if (words_.empty()) return false;  // empty filter contains nothing
  const uint64_t m = static_cast<uint64_t>(words_.size()) * 64;
  const uint64_t h2 = SecondHash(key_hash);
  uint64_t h = key_hash;
  for (int i = 0; i < num_hashes_; ++i) {
    const uint64_t bit = h % m;
    if ((words_[bit >> 6] & (1ULL << (bit & 63))) == 0) return false;
    h += h2;
  }
  return true;
}

}  // namespace gumbo::mr
