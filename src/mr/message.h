// Intermediate key/value data of the simulated MapReduce engine.
//
// Keys are Tuples. Values are Messages: a small operator-defined header
// (tag + aux) plus an optional Tuple payload and an explicit wire size in
// bytes. Operators set the wire size to what a compact Hadoop
// serialization would use (see ops/messages.h); the engine turns it into
// represented megabytes for the cost model.
#ifndef GUMBO_MR_MESSAGE_H_
#define GUMBO_MR_MESSAGE_H_

#include <cstdint>

#include "common/tuple.h"

namespace gumbo::mr {

/// One value shuffled from a mapper to a reducer.
struct Message {
  /// Operator-defined discriminator (e.g. request vs assert).
  uint32_t tag = 0;
  /// Operator-defined auxiliary id (e.g. condition id, equation index).
  uint32_t aux = 0;
  /// Optional tuple payload (e.g. the projected guard tuple).
  Tuple payload;
  /// Wire size of this value in bytes, excluding the key (the engine
  /// accounts key bytes once per packed list or once per message when
  /// packing is disabled).
  double wire_bytes = 0.0;
};

struct KeyValue {
  Tuple key;
  Message value;
};

/// Bytes of a tuple on the wire at the paper's data densities
/// (10 bytes per attribute by default).
inline double TupleWireBytes(const Tuple& t, double bytes_per_value = 10.0) {
  return bytes_per_value * static_cast<double>(t.size());
}

}  // namespace gumbo::mr

#endif  // GUMBO_MR_MESSAGE_H_
