// Intermediate key/value data of the simulated MapReduce engine, in flat
// (struct-of-arrays) form.
//
// Keys are tuples flat-encoded into a contiguous word arena with a
// precomputed 64-bit fingerprint (common/tuple.h); values are POD
// `Message` structs whose small tuple payloads live inline and whose
// larger ones spill to a shared payload arena. Operators set the wire
// size to what a compact Hadoop serialization would use (see
// ops/messages.h); the engine turns it into represented megabytes for
// the cost model. Reducers see one key group at a time through the
// `MessageGroup` view, which stitches together the group's per-map-task
// message runs without copying them.
#ifndef GUMBO_MR_MESSAGE_H_
#define GUMBO_MR_MESSAGE_H_

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <type_traits>

#include "common/tuple.h"

namespace gumbo::mr {

/// One value shuffled from a mapper to a reducer. POD: copying a Message
/// is a 40-byte memcpy, never a Tuple copy. Payloads of up to
/// kInlinePayloadValues values are stored inside the struct; larger ones
/// live in the owning buffer's payload arena at `payload_pos`.
struct Message {
  static constexpr uint32_t kInlinePayloadValues = 2;

  /// Operator-defined discriminator (e.g. request vs assert).
  uint32_t tag = 0;
  /// Operator-defined auxiliary id (e.g. condition id, equation index).
  uint32_t aux = 0;
  /// Payload arity in values (0 = no payload).
  uint32_t payload_size = 0;
  /// Word offset into the payload arena when the payload is spilled;
  /// unused (0) while it fits inline.
  uint32_t payload_pos = 0;
  /// Wire size of this value in bytes, excluding the key (the engine
  /// accounts key bytes once per packed list or once per message when
  /// packing is disabled).
  double wire_bytes = 0.0;
  /// The payload's raw Value words when payload_size <= kInlinePayloadValues.
  uint64_t inline_payload[kInlinePayloadValues];

  bool payload_is_inline() const {
    return payload_size <= kInlinePayloadValues;
  }
  /// The payload's flat words; `arena` is the owning buffer's payload
  /// arena (may be null when the payload is inline or empty).
  const uint64_t* payload_words(const uint64_t* arena) const {
    return payload_is_inline() ? inline_payload : arena + payload_pos;
  }
};
static_assert(std::is_trivially_copyable_v<Message>,
              "Message must stay POD: the shuffle memcpys it freely");

/// A borrowed view of one message plus the arena resolving its payload.
/// Cheap to copy; valid as long as the underlying shuffle buffers live.
class MessageRef {
 public:
  MessageRef(const Message* m, const uint64_t* arena) : m_(m), arena_(arena) {}

  uint32_t tag() const { return m_->tag; }
  uint32_t aux() const { return m_->aux; }
  double wire_bytes() const { return m_->wire_bytes; }
  uint32_t payload_size() const { return m_->payload_size; }
  const uint64_t* payload_words() const { return m_->payload_words(arena_); }
  /// Zero-copy view of the payload (empty view when absent); valid while
  /// the underlying shuffle buffers live. Reducers that re-emit payloads
  /// verbatim should pass this straight to ReduceEmitter::Emit — the
  /// words flow from the shuffle arena into the output builder without a
  /// Tuple in between.
  TupleView PayloadView() const {
    return TupleView(payload_words(), m_->payload_size);
  }
  /// Decodes the payload back into an owning Tuple (empty tuple when
  /// absent); for callers that mutate or outlive the buffers.
  Tuple PayloadTuple() const {
    return Tuple::DecodeFrom(payload_words(), m_->payload_size);
  }

 private:
  const Message* m_;
  const uint64_t* arena_;
};

/// All messages of one reduce key, as up to a handful of contiguous
/// segments — one per (map task, run) — concatenated in (map task,
/// emission) order. Iteration yields MessageRefs; nothing is copied or
/// re-materialized per key.
class MessageGroup {
 public:
  struct Segment {
    const Message* msgs = nullptr;
    const uint64_t* arena = nullptr;  ///< payload arena of the owning task
    uint32_t count = 0;
  };

  MessageGroup(const Segment* segments, size_t num_segments, size_t total)
      : segments_(segments), num_segments_(num_segments), total_(total) {}

  size_t size() const { return total_; }
  bool empty() const { return total_ == 0; }

  class const_iterator {
   public:
    const_iterator(const Segment* seg, uint32_t i) : seg_(seg), i_(i) {}
    MessageRef operator*() const { return {seg_->msgs + i_, seg_->arena}; }
    const_iterator& operator++() {
      if (++i_ == seg_->count) {
        ++seg_;
        i_ = 0;
      }
      return *this;
    }
    bool operator==(const const_iterator& o) const {
      return seg_ == o.seg_ && i_ == o.i_;
    }
    bool operator!=(const const_iterator& o) const { return !(*this == o); }

   private:
    const Segment* seg_;
    uint32_t i_;
  };

  const_iterator begin() const { return {segments_, 0}; }
  const_iterator end() const { return {segments_ + num_segments_, 0}; }

  /// Random access; O(num_segments) — fine for the segment counts the
  /// shuffle produces (usually 1), prefer iteration in reducer loops.
  MessageRef operator[](size_t i) const {
    assert(i < total_);
    const Segment* seg = segments_;
    while (i >= seg->count) {
      i -= seg->count;
      ++seg;
    }
    return {seg->msgs + i, seg->arena};
  }

 private:
  const Segment* segments_;
  size_t num_segments_;
  size_t total_;
};

/// Bytes of a tuple on the wire at the paper's data densities
/// (10 bytes per attribute by default). Takes a view; Tuples convert.
inline double TupleWireBytes(TupleView t, double bytes_per_value = 10.0) {
  return bytes_per_value * static_cast<double>(t.size());
}

/// Wire bytes of a flat-encoded key of the given arity.
inline double KeyWireBytes(uint32_t arity, double bytes_per_value = 10.0) {
  return bytes_per_value * static_cast<double>(arity);
}

}  // namespace gumbo::mr

#endif  // GUMBO_MR_MESSAGE_H_
