// Shuffle: the mapper→reducer data movement of the simulated MapReduce
// engine (DESIGN.md §3), extracted from the engine so the map, partition,
// and reduce phases share one flat-buffer representation.
//
// Pipeline:
//   1. AddTaskOutput adopts one map task's MapOutputBuffer — keys already
//      flat-encoded, fingerprinted, and grouped in first-seen order by
//      the emitter's open-addressing table (Gumbo §5.1 optimization (1):
//      one key header per packed list on the wire) — lays each key group
//      out contiguously, and applies the job's optional map-side combiner
//      per key group (DESIGN.md §5.1) before any byte is accounted;
//   2. Partition buckets every record by its cached fingerprint into
//      reduce partitions and sorts each partition ONCE by key (stable, so
//      records keep (map task, emission) order within equal keys); the
//      sorted index arrays and per-partition wire bytes are cached;
//   3. ForEachGroup walks one partition's distinct keys in sorted order,
//      handing the reducer a zero-copy MessageGroup view that stitches
//      the key's per-task message runs together.
//
// The hot path never materializes a Tuple or a per-key vector: keys stay
// flat words end to end (reducers receive zero-copy TupleViews), messages
// stay POD, and the only per-key scratch is a reused segment array.
//
// Determinism: record order within a partition is the (task index,
// emission index) order, the stable sort preserves it within equal keys,
// and distinct keys come out in sorted order — all independent of thread
// count and scheduling. Fingerprints equal Tuple::Hash(), so partition
// assignment (and therefore every byte of output) matches the previous
// Tuple-keyed representation exactly.
#ifndef GUMBO_MR_SHUFFLE_H_
#define GUMBO_MR_SHUFFLE_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

#include "common/result.h"
#include "common/scheduler.h"
#include "common/tuple.h"
#include "mr/job.h"
#include "mr/map_output.h"
#include "mr/message.h"
#include "mr/stats.h"

namespace gumbo::mr {

/// Wire-level accounting of one map task's shuffle output. All figures
/// are post-combine: the combiner (DESIGN.md §5.1) runs before anything
/// is counted, so JobStats::shuffle_mb is the single source of truth for
/// what actually crosses the wire.
struct ShuffleTaskIo {
  double wire_bytes = 0.0;  ///< total key + value bytes the task emits
  size_t records = 0;       ///< materialized records (after packing)
  size_t messages = 0;      ///< shuffled values (after combining)
  size_t combined_messages = 0;  ///< values removed by the combiner
  double combined_bytes = 0.0;   ///< wire bytes the combiner removed
  uint64_t fingerprint_collisions = 0;  ///< distinct keys, equal fingerprint
};

class Shuffle {
 public:
  /// `pack_messages`: group values by key within each map task.
  Shuffle(size_t num_map_tasks, bool pack_messages);

  size_t num_map_tasks() const { return tasks_.size(); }

  /// One wire record: a packed key group, or a single message when
  /// packing is off. Key words live in the owning task's key arena.
  struct KeyEntry {
    uint32_t key_pos = 0;
    uint32_t key_arity = 0;
    uint64_t fingerprint = 0;
    uint32_t msg_begin = 0;  ///< into TaskData::messages
    uint32_t msg_count = 0;
    double wire_bytes = 0.0;  ///< key header + value bytes of this record
  };

  /// The reduce partition a record with this fingerprint lands in —
  /// THE shard/partition mapping of the whole system (DESIGN.md §13):
  /// Partition() buckets with it, and the sharded runtime routes wire
  /// records with it, so both sides agree by construction.
  static size_t PartitionIndex(uint64_t fingerprint, int num_partitions) {
    return static_cast<size_t>(fingerprint %
                               static_cast<uint64_t>(num_partitions));
  }

  /// Walks task `ti`'s ingested records in their materialized (emission)
  /// order, exposing everything a wire export needs: the entry, the key
  /// words, the record's contiguous messages, and the payload arena that
  /// resolves spilled payloads. Must be called after AddTaskOutput for
  /// `ti` (records are unaffected by Partition, so before or after it).
  void ForEachTaskRecord(
      size_t ti,
      const std::function<void(const KeyEntry&, const uint64_t* key_words,
                               const Message* msgs,
                               const uint64_t* payload_arena)>& fn) const;

  /// One message of a record arriving over the wire: the POD fields plus
  /// the payload words to copy into the receiving task's arena.
  struct ImportMessage {
    uint32_t tag = 0;
    uint32_t aux = 0;
    uint32_t payload_size = 0;
    double wire_bytes = 0.0;
    const uint64_t* payload = nullptr;  ///< payload_size words
  };

  /// Appends one record to task `task` (the wire import path, inverse of
  /// ForEachTaskRecord): key words are copied into the task's key arena,
  /// spilled payloads into its payload arena, and the fingerprint /
  /// wire-byte accounting is adopted verbatim — never recomputed, so an
  /// imported shuffle is byte-identical to the one it was exported from.
  /// Records of one (task, partition) pair must arrive in their original
  /// order; interleaving different partitions' records of a task is fine
  /// (key ties — the only order-sensitive comparisons — never span
  /// partitions). Must precede Partition.
  Status ImportTaskRecord(size_t task, const uint64_t* key_words,
                          uint32_t key_arity, uint64_t fingerprint,
                          double wire_bytes, const ImportMessage* msgs,
                          size_t msg_count);

  /// Adopts one map task's emission buffer. `combiner` (may be null) is
  /// applied to every key group before accounting (DESIGN.md §5.1);
  /// without packing, surviving values are re-materialized as singleton
  /// records, each paying its own key header. Safe to call concurrently
  /// for distinct `task` indices. Errors (out-of-range task, double
  /// ingestion, a combiner dropping a whole key group) surface as
  /// Status::Internal in Release builds too.
  Result<ShuffleTaskIo> AddTaskOutput(size_t task, MapOutputBuffer buffer,
                                      Combiner* combiner = nullptr);

  /// Hash-partitions every ingested record by fingerprint into
  /// `num_partitions` reduce partitions and sorts each partition's index
  /// array once by key. Must be called once, after all AddTaskOutput
  /// calls. `scheduler` parallelizes bucketing and sorting (nullptr =
  /// sequential); `ctx` sets the priority/metrics of those morsels and
  /// carries the cancellation token (polled between phases) and fault
  /// injector. An injected kShuffleSort fault re-sorts the partition (an
  /// idempotent retry, counted in `counters`) up to `max_retries` times
  /// before escalating.
  Status Partition(int num_partitions, Scheduler* scheduler = nullptr,
                   const SchedContext& ctx = {}, uint32_t max_retries = 0,
                   RetryCounters* counters = nullptr);

  int num_partitions() const { return num_partitions_; }

  /// Total key + value wire bytes received by partition `p` (cached at
  /// Partition time).
  double PartitionWireBytes(size_t p) const;

  /// Invokes `fn(key, values)` once per distinct key of partition `p`,
  /// keys in sorted order, values concatenated in (map task, emission)
  /// order. The key is a zero-copy view into the owning task's key arena
  /// — no Tuple is materialized anywhere on the reduce path. Safe to call
  /// concurrently for distinct `p` after Partition.
  void ForEachGroup(
      size_t p,
      const std::function<void(TupleView, const MessageGroup&)>& fn) const;

  /// Resumable position in one partition's group walk, so a reduce task
  /// can process its partition as a chain of bounded morsels (DESIGN.md
  /// §9). Also owns the reused per-key segment scratch, which therefore
  /// persists across the chain instead of re-growing every morsel.
  struct GroupCursor {
    size_t next_record = 0;
    std::vector<MessageGroup::Segment> segments;
  };

  /// Runs `fn` over whole key groups of partition `p` starting at
  /// `cursor`, stopping once at least `max_records` records have been
  /// consumed (a group is never split, so the chunk sequence yields
  /// exactly the groups ForEachGroup would, in the same order). Returns
  /// true while groups remain. Distinct cursors may walk distinct
  /// partitions concurrently.
  bool ForEachGroupChunk(
      size_t p, GroupCursor* cursor, size_t max_records,
      const std::function<void(TupleView, const MessageGroup&)>& fn) const;

 private:
  /// One map task's finalized output: messages contiguous per key entry.
  struct TaskData {
    std::vector<uint64_t> key_arena;
    std::vector<uint64_t> payload_arena;
    std::vector<Message> messages;
    std::vector<KeyEntry> entries;
  };

  /// 16 bytes per record in the sorted partition arrays. word0 and the
  /// saturating arity hint are inlined so the sort decides single-word
  /// keys (the common MSJ join-key case) without touching the key arena
  /// or entry array at all.
  struct RecordRef {
    static constexpr uint32_t kAritySaturated = 0xff;
    /// First key word (0 for empty keys) — the first lexicographic
    /// comparison position.
    uint64_t word0 = 0;
    /// (task << 8) | min(key_arity, kAritySaturated).
    uint32_t task_arity = 0;
    uint32_t entry = 0;

    uint32_t task() const { return task_arity >> 8; }
    uint32_t arity_hint() const { return task_arity & kAritySaturated; }
  };

  const uint64_t* KeyWordsOf(const RecordRef& r) const {
    const TaskData& td = tasks_[r.task()];
    return td.key_arena.data() + td.entries[r.entry].key_pos;
  }
  const KeyEntry& EntryOf(const RecordRef& r) const {
    return tasks_[r.task()].entries[r.entry];
  }
  bool KeyLess(const RecordRef& a, const RecordRef& b) const;
  bool KeyEquals(const RecordRef& a, const RecordRef& b) const;

  bool pack_messages_;
  std::vector<TaskData> tasks_;
  int num_partitions_ = 0;
  /// [partition] -> records sorted by key (ties in (task, emission)
  /// order), cached by Partition.
  std::vector<std::vector<RecordRef>> partitions_;
  std::vector<double> partition_wire_bytes_;
};

}  // namespace gumbo::mr

#endif  // GUMBO_MR_SHUFFLE_H_
