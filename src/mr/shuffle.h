// Shuffle: the mapper→reducer data movement of the simulated MapReduce
// engine (DESIGN.md §3), extracted from the engine so the map, partition,
// and reduce phases share one flat-buffer representation.
//
// Pipeline:
//   1. AddTaskOutput ingests one map task's raw emissions, grouping values
//      by key in first-seen order when packing is enabled (Gumbo §5.1
//      optimization (1): one key header per packed list on the wire) and
//      applying the job's optional map-side combiner per key group
//      (DESIGN.md §5.1) — combined-away messages are reported back so the
//      engine can account them;
//   2. Partition hash-buckets every record by key into reduce partitions,
//      keeping records of each partition in (map task, emission) order;
//   3. ForEachGroup walks one partition's distinct keys in sorted order.
//
// The reduce side performs a single stable sort over one flat record
// vector per partition instead of building a per-key hash map, so the hot
// path allocates O(partitions) scratch buffers rather than O(keys).
//
// Determinism: record order within a partition is the (task index,
// emission index) order, the stable sort preserves it within equal keys,
// and distinct keys come out in sorted order — all independent of thread
// count and scheduling.
#ifndef GUMBO_MR_SHUFFLE_H_
#define GUMBO_MR_SHUFFLE_H_

#include <cstddef>
#include <functional>
#include <vector>

#include "common/thread_pool.h"
#include "common/tuple.h"
#include "mr/job.h"
#include "mr/message.h"

namespace gumbo::mr {

/// One shuffle record: a key plus all messages one map task emitted for it
/// (a singleton list per message when packing is disabled).
struct ShuffleRecord {
  Tuple key;
  std::vector<Message> values;
  double wire_bytes = 0.0;  ///< key bytes + value bytes of this record
};

/// Wire-level accounting of one map task's shuffle output. All figures
/// are post-combine: the combiner (DESIGN.md §5.1) runs before anything
/// is counted, so JobStats::shuffle_mb is the single source of truth for
/// what actually crosses the wire.
struct ShuffleTaskIo {
  double wire_bytes = 0.0;  ///< total key + value bytes the task emits
  size_t records = 0;       ///< materialized records (after packing)
  size_t messages = 0;      ///< shuffled values (after combining)
  size_t combined_messages = 0;  ///< values removed by the combiner
  double combined_bytes = 0.0;   ///< wire bytes the combiner removed
};

class Shuffle {
 public:
  /// `pack_messages`: group values by key within each map task.
  Shuffle(size_t num_map_tasks, bool pack_messages);

  size_t num_map_tasks() const { return task_records_.size(); }

  /// Ingests one map task's emitted key/values. `combiner` (may be null)
  /// is applied to every key group before accounting (DESIGN.md §5.1);
  /// without packing, surviving values are re-materialized as singleton
  /// records, each paying its own key header. Safe to call concurrently
  /// for distinct `task` indices.
  ShuffleTaskIo AddTaskOutput(size_t task, std::vector<KeyValue> kvs,
                              Combiner* combiner = nullptr);

  /// Hash-partitions every ingested record into `num_partitions` reduce
  /// partitions. Must be called once, after all AddTaskOutput calls.
  /// `pool` parallelizes the bucketing (nullptr = sequential).
  void Partition(int num_partitions, ThreadPool* pool = nullptr);

  int num_partitions() const { return num_partitions_; }

  /// Total key + value wire bytes received by partition `p`.
  double PartitionWireBytes(size_t p) const;

  /// Invokes `fn(key, values)` once per distinct key of partition `p`,
  /// keys in sorted order, values concatenated in (map task, emission)
  /// order. Safe to call concurrently for distinct `p` after Partition.
  void ForEachGroup(
      size_t p,
      const std::function<void(const Tuple&, const std::vector<Message>&)>&
          fn) const;

 private:
  bool pack_messages_;
  /// [task] -> records the task produced, in emission / first-seen order.
  std::vector<std::vector<ShuffleRecord>> task_records_;
  int num_partitions_ = 0;
  /// [partition] -> records, in (task, emission) order. Pointees live in
  /// task_records_.
  std::vector<std::vector<const ShuffleRecord*>> partitions_;
};

}  // namespace gumbo::mr

#endif  // GUMBO_MR_SHUFFLE_H_
