// Execution statistics of jobs and programs — the paper's four metrics
// (total time, net time, input bytes, communication bytes) plus per-task
// detail consumed by the net-time scheduler.
#ifndef GUMBO_MR_STATS_H_
#define GUMBO_MR_STATS_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace gumbo::mr {

/// Live fault-tolerance counters one job's concurrent task chains share
/// (DESIGN.md §11): bumped with relaxed atomics while map/shuffle/reduce
/// tasks retry, snapshotted into JobStats once the job quiesces.
struct RetryCounters {
  std::atomic<uint64_t> task_retries{0};
  std::atomic<uint64_t> faults_injected{0};
  std::atomic<uint64_t> retry_us{0};  ///< wall time of abandoned attempts
};

/// Per-input-partition accounting (maps onto the cost model's (N_i, M_i)).
struct InputStats {
  std::string dataset;
  double input_mb = 0.0;     ///< N_i: HDFS bytes read
  double output_mb = 0.0;    ///< M_i: intermediate bytes produced
  double metadata_mb = 0.0;  ///< Mhat_i
  int num_map_tasks = 0;     ///< m_i
};

struct JobStats {
  std::string job_name;
  std::vector<InputStats> inputs;
  std::vector<double> map_task_costs;     ///< cost-seconds per map task
  std::vector<double> reduce_task_costs;  ///< cost-seconds per reduce task
  int num_reducers = 0;
  double hdfs_read_mb = 0.0;
  /// Communication: mapper -> reducer bytes, measured once on the map
  /// side of the shuffle, after combining (DESIGN.md §5.1). This is the
  /// single source of truth for shuffle volume: the reduce-side partition
  /// totals and RoundStats::shuffle_mb are derived from it, never
  /// re-measured (reconciled in tests/runtime_test.cc).
  double shuffle_mb = 0.0;
  double hdfs_write_mb = 0.0;
  double job_overhead = 0.0;  ///< cost_h

  // ---- Shuffle-volume optimization counters (DESIGN.md §5) ----
  uint64_t shuffle_records = 0;   ///< materialized records (post-packing)
  uint64_t shuffle_messages = 0;  ///< shuffled values (post-combine)
  /// Distinct keys whose 64-bit fingerprints collided in the map-side
  /// grouping table (DESIGN.md §3); resolved by full-key compares, so
  /// purely diagnostic for hash quality.
  uint64_t fingerprint_collisions = 0;
  uint64_t combined_messages = 0; ///< values removed by the combiner
  double combined_mb = 0.0;       ///< intermediate MB the combiner removed
  uint64_t filtered_messages = 0; ///< emissions suppressed by Bloom filters
  double filter_mb = 0.0;           ///< Bloom filter bitset MB (represented)
  double filter_broadcast_mb = 0.0; ///< filter_mb shipped to every map task
  double filter_build_cost = 0.0;   ///< cost-seconds to build the filters

  // ---- Fault-tolerance counters (DESIGN.md §11) ----
  uint64_t task_retries = 0;    ///< task attempts abandoned and re-run
  uint64_t faults_injected = 0; ///< injected faults this job observed
  double retry_ms = 0.0;        ///< wall time spent in abandoned attempts

  // ---- Distribution (DESIGN.md §13) ----
  /// Real bytes this job pushed through the shard transport (shuffle
  /// chunks, control frames, output fragments), summed across shards.
  /// Unlike shuffle_mb these are raw frame MB, not represented MB:
  /// they measure the wire format itself. 0 in single-process runs.
  double dist_wire_mb = 0.0;
  /// Cost-seconds charged for dist_wire_mb at the model's network
  /// transfer rate t (§5.3) — the measured counterpart of the t·M term.
  double dist_cost = 0.0;

  /// Aggregate cost of the job = cost_h + filter build + real wire
  /// transfer + all task costs (filter broadcast is inside the map task
  /// costs, DESIGN.md §5.3).
  double TotalCost() const {
    double c = job_overhead + filter_build_cost + dist_cost;
    for (double t : map_task_costs) c += t;
    for (double t : reduce_task_costs) c += t;
    return c;
  }
};

/// Per-round accounting of the round runtime (mr/runtime.h). A round is
/// one dependency-depth level of the program's job DAG; all jobs of a
/// round are independent and execute concurrently.
struct RoundStats {
  int round = 0;              ///< 1-based round number
  std::vector<size_t> jobs;   ///< program job indices executed this round
  double max_job_cost = 0.0;  ///< modeled: slowest job (overhead + tasks)
  double sum_job_cost = 0.0;  ///< modeled: aggregate cost of the round
  int max_concurrent = 0;     ///< observed peak of jobs in flight at once
  double wall_ms = 0.0;       ///< real wall-clock of the round
  /// Shuffle MB of the round's jobs, copied from JobStats::shuffle_mb at
  /// the commit barrier — derived, never re-measured, so program totals
  /// and round totals cannot drift apart (tests/runtime_test.cc asserts
  /// the reconciliation).
  double shuffle_mb = 0.0;
};

struct ProgramStats {
  std::vector<JobStats> jobs;
  std::vector<RoundStats> round_stats;  ///< filled by the round runtime
  double total_time = 0.0;  ///< aggregate task time across all jobs
  double net_time = 0.0;    ///< simulated makespan (slot-constrained)
  double wall_ms = 0.0;     ///< real wall-clock of the whole program
  int rounds = 0;           ///< longest dependency chain of jobs

  /// Modeled net time under an idealized unconstrained cluster: rounds run
  /// back to back, jobs within a round fully overlap (max-per-round). An
  /// upper-level sanity bound on the slot-constrained net_time.
  double RoundNetTime() const {
    double v = 0.0;
    for (const auto& r : round_stats) v += r.max_job_cost;
    return v;
  }
  /// Largest observed number of concurrently-executing jobs in any round.
  int MaxConcurrentJobs() const {
    int v = 0;
    for (const auto& r : round_stats) {
      if (r.max_concurrent > v) v = r.max_concurrent;
    }
    return v;
  }

  double HdfsReadMb() const {
    double v = 0.0;
    for (const auto& j : jobs) v += j.hdfs_read_mb;
    return v;
  }
  double ShuffleMb() const {
    double v = 0.0;
    for (const auto& j : jobs) v += j.shuffle_mb;
    return v;
  }
  double HdfsWriteMb() const {
    double v = 0.0;
    for (const auto& j : jobs) v += j.hdfs_write_mb;
    return v;
  }

  // ---- Shuffle-volume optimization aggregates (DESIGN.md §5) ----
  uint64_t ShuffleRecords() const {
    uint64_t v = 0;
    for (const auto& j : jobs) v += j.shuffle_records;
    return v;
  }
  uint64_t ShuffleMessages() const {
    uint64_t v = 0;
    for (const auto& j : jobs) v += j.shuffle_messages;
    return v;
  }
  uint64_t CombinedMessages() const {
    uint64_t v = 0;
    for (const auto& j : jobs) v += j.combined_messages;
    return v;
  }
  uint64_t FilteredMessages() const {
    uint64_t v = 0;
    for (const auto& j : jobs) v += j.filtered_messages;
    return v;
  }
  double FilterBroadcastMb() const {
    double v = 0.0;
    for (const auto& j : jobs) v += j.filter_broadcast_mb;
    return v;
  }

  // ---- Distribution aggregates (DESIGN.md §13) ----
  double DistWireMb() const {
    double v = 0.0;
    for (const auto& j : jobs) v += j.dist_wire_mb;
    return v;
  }

  // ---- Fault-tolerance aggregates (DESIGN.md §11) ----
  uint64_t TaskRetries() const {
    uint64_t v = 0;
    for (const auto& j : jobs) v += j.task_retries;
    return v;
  }
  uint64_t FaultsInjected() const {
    uint64_t v = 0;
    for (const auto& j : jobs) v += j.faults_injected;
    return v;
  }
  double RetryMs() const {
    double v = 0.0;
    for (const auto& j : jobs) v += j.retry_ms;
    return v;
  }
};

}  // namespace gumbo::mr

#endif  // GUMBO_MR_STATS_H_
