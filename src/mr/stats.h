// Execution statistics of jobs and programs — the paper's four metrics
// (total time, net time, input bytes, communication bytes) plus per-task
// detail consumed by the net-time scheduler.
#ifndef GUMBO_MR_STATS_H_
#define GUMBO_MR_STATS_H_

#include <string>
#include <vector>

namespace gumbo::mr {

/// Per-input-partition accounting (maps onto the cost model's (N_i, M_i)).
struct InputStats {
  std::string dataset;
  double input_mb = 0.0;     ///< N_i: HDFS bytes read
  double output_mb = 0.0;    ///< M_i: intermediate bytes produced
  double metadata_mb = 0.0;  ///< Mhat_i
  int num_map_tasks = 0;     ///< m_i
};

struct JobStats {
  std::string job_name;
  std::vector<InputStats> inputs;
  std::vector<double> map_task_costs;     ///< cost-seconds per map task
  std::vector<double> reduce_task_costs;  ///< cost-seconds per reduce task
  int num_reducers = 0;
  double hdfs_read_mb = 0.0;
  double shuffle_mb = 0.0;  ///< communication: mapper -> reducer bytes
  double hdfs_write_mb = 0.0;
  double job_overhead = 0.0;  ///< cost_h

  /// Aggregate cost of the job = cost_h + sum of all task costs.
  double TotalCost() const {
    double c = job_overhead;
    for (double t : map_task_costs) c += t;
    for (double t : reduce_task_costs) c += t;
    return c;
  }
};

/// Per-round accounting of the round runtime (mr/runtime.h). A round is
/// one dependency-depth level of the program's job DAG; all jobs of a
/// round are independent and execute concurrently.
struct RoundStats {
  int round = 0;              ///< 1-based round number
  std::vector<size_t> jobs;   ///< program job indices executed this round
  double max_job_cost = 0.0;  ///< modeled: slowest job (overhead + tasks)
  double sum_job_cost = 0.0;  ///< modeled: aggregate cost of the round
  int max_concurrent = 0;     ///< observed peak of jobs in flight at once
  double wall_ms = 0.0;       ///< real wall-clock of the round
};

struct ProgramStats {
  std::vector<JobStats> jobs;
  std::vector<RoundStats> round_stats;  ///< filled by the round runtime
  double total_time = 0.0;  ///< aggregate task time across all jobs
  double net_time = 0.0;    ///< simulated makespan (slot-constrained)
  double wall_ms = 0.0;     ///< real wall-clock of the whole program
  int rounds = 0;           ///< longest dependency chain of jobs

  /// Modeled net time under an idealized unconstrained cluster: rounds run
  /// back to back, jobs within a round fully overlap (max-per-round). An
  /// upper-level sanity bound on the slot-constrained net_time.
  double RoundNetTime() const {
    double v = 0.0;
    for (const auto& r : round_stats) v += r.max_job_cost;
    return v;
  }
  /// Largest observed number of concurrently-executing jobs in any round.
  int MaxConcurrentJobs() const {
    int v = 0;
    for (const auto& r : round_stats) {
      if (r.max_concurrent > v) v = r.max_concurrent;
    }
    return v;
  }

  double HdfsReadMb() const {
    double v = 0.0;
    for (const auto& j : jobs) v += j.hdfs_read_mb;
    return v;
  }
  double ShuffleMb() const {
    double v = 0.0;
    for (const auto& j : jobs) v += j.shuffle_mb;
    return v;
  }
  double HdfsWriteMb() const {
    double v = 0.0;
    for (const auto& j : jobs) v += j.hdfs_write_mb;
    return v;
  }
};

}  // namespace gumbo::mr

#endif  // GUMBO_MR_STATS_H_
