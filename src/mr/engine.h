// Engine: executes one MapReduce job on real data with real parallelism,
// while accounting I/O in *represented* megabytes for the cost model
// (DESIGN.md §2, "real execution + modeled clock").
//
// Execution pipeline per job:
//   1. each input relation is split into map tasks of split_mb represented
//      megabytes (splits never span relations, matching HDFS);
//   2. map tasks run on a thread pool; emitted key/values are grouped by
//      key within the task when packing is enabled;
//   3. the reducer count is chosen per the job's allocation policy;
//      key/values are hash-partitioned;
//   4. reduce tasks run on the thread pool, keys in sorted order, and
//      write output relations back to the database.
//
// Results are deterministic: outputs are collected per task index and
// concatenated in task order.
#ifndef GUMBO_MR_ENGINE_H_
#define GUMBO_MR_ENGINE_H_

#include "common/relation.h"
#include "common/result.h"
#include "cost/constants.h"
#include "mr/job.h"
#include "mr/stats.h"

namespace gumbo::mr {

class Engine {
 public:
  explicit Engine(cost::ClusterConfig config) : config_(std::move(config)) {}

  const cost::ClusterConfig& config() const { return config_; }

  /// Runs `job` against `db`: reads the input relations, writes (replaces)
  /// the output relations, and returns the job's statistics.
  Result<JobStats> Run(const JobSpec& job, Database* db);

 private:
  cost::ClusterConfig config_;
};

}  // namespace gumbo::mr

#endif  // GUMBO_MR_ENGINE_H_
