// Engine: executes one MapReduce job on real data with real parallelism,
// while accounting I/O in *represented* megabytes for the cost model
// (DESIGN.md §2, "real execution + modeled clock").
//
// Execution pipeline per job:
//   1. each input relation is split into map tasks of split_mb represented
//      megabytes (splits never span relations, matching HDFS);
//   2. map tasks run as *morsel chains* on the work-stealing scheduler
//      (DESIGN.md §9): each task's scan is a sequence of fixed-size row
//      ranges sharing one mapper + emission buffer, so a task yields the
//      worker between morsels without changing what it emits; emitted
//      key/values are handed to the shuffle subsystem (mr/shuffle.h);
//   3. the reducer count is chosen per the job's allocation policy;
//      the shuffle hash-partitions the records;
//   4. reduce tasks run as morsel chains over whole key groups, keys in
//      sorted order, and produce the output relations.
//
// RunDetached executes a job against a read-only database view and returns
// the outputs without committing them; the round runtime (mr/runtime.h)
// uses it to run independent jobs concurrently and commit their outputs in
// deterministic job order. Run is the single-job convenience wrapper that
// commits immediately.
//
// Results are deterministic: a morsel chain preserves its task's emission
// order exactly (morsels of one chain never run concurrently), outputs
// are collected per task index and concatenated in task order — both
// independent of worker count, stealing, and priority (DESIGN.md §9).
#ifndef GUMBO_MR_ENGINE_H_
#define GUMBO_MR_ENGINE_H_

#include <vector>

#include "common/relation.h"
#include "common/result.h"
#include "common/scheduler.h"
#include "cost/constants.h"
#include "mr/job.h"
#include "mr/stats.h"

namespace gumbo::mr {

class Engine {
 public:
  /// `scheduler`: morsel scheduler for map/reduce work and concurrent
  /// jobs (nullptr = the process-wide Scheduler::Global()). `options`
  /// carries the default morsel size (GUMBO_MORSEL_ROWS).
  explicit Engine(cost::ClusterConfig config, Scheduler* scheduler = nullptr,
                  SchedOptions options = SchedOptions::FromEnv())
      : config_(std::move(config)),
        scheduler_(scheduler),
        sched_options_(options) {}

  const cost::ClusterConfig& config() const { return config_; }
  Scheduler& scheduler() const {
    return scheduler_ != nullptr ? *scheduler_ : Scheduler::Global();
  }
  const SchedOptions& sched_options() const { return sched_options_; }

  /// A detached job execution: statistics plus the produced output
  /// relations, in JobSpec::outputs order, not yet visible in any database.
  struct JobResult {
    JobStats stats;
    std::vector<Relation> outputs;
  };

  /// Executes `job` against `db` without modifying it; the caller decides
  /// when (and where) to commit the outputs. Safe to call concurrently
  /// from multiple threads as long as nothing mutates `db` meanwhile.
  /// `ctx` sets the priority class / morsel size / metrics sink for this
  /// job's morsels; its scheduler field is ignored (the engine's wins).
  Result<JobResult> RunDetached(const JobSpec& job, const Database& db,
                                const SchedContext& ctx = {}) const;

  /// Runs `job` against `db`: reads the input relations, writes (replaces)
  /// the output relations, and returns the job's statistics.
  Result<JobStats> Run(const JobSpec& job, Database* db,
                       const SchedContext& ctx = {}) const;

 private:
  cost::ClusterConfig config_;
  Scheduler* scheduler_;
  SchedOptions sched_options_;
};

}  // namespace gumbo::mr

#endif  // GUMBO_MR_ENGINE_H_
