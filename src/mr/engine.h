// Engine: executes one MapReduce job on real data with real parallelism,
// while accounting I/O in *represented* megabytes for the cost model
// (DESIGN.md §2, "real execution + modeled clock").
//
// Execution pipeline per job:
//   1. each input relation is split into map tasks of split_mb represented
//      megabytes (splits never span relations, matching HDFS);
//   2. map tasks run on a thread pool; emitted key/values are handed to
//      the shuffle subsystem (mr/shuffle.h), which packs them per task;
//   3. the reducer count is chosen per the job's allocation policy;
//      the shuffle hash-partitions the records;
//   4. reduce tasks run on the thread pool, keys in sorted order, and
//      produce the output relations.
//
// RunDetached executes a job against a read-only database view and returns
// the outputs without committing them; the round runtime (mr/runtime.h)
// uses it to run independent jobs concurrently and commit their outputs in
// deterministic job order. Run is the single-job convenience wrapper that
// commits immediately.
//
// Results are deterministic: outputs are collected per task index and
// concatenated in task order, independent of pool size and scheduling.
#ifndef GUMBO_MR_ENGINE_H_
#define GUMBO_MR_ENGINE_H_

#include <vector>

#include "common/relation.h"
#include "common/result.h"
#include "common/thread_pool.h"
#include "cost/constants.h"
#include "mr/job.h"
#include "mr/stats.h"

namespace gumbo::mr {

class Engine {
 public:
  /// `pool`: worker pool for map/reduce tasks and concurrent jobs
  /// (nullptr = the process-wide ThreadPool::Global()).
  explicit Engine(cost::ClusterConfig config, ThreadPool* pool = nullptr)
      : config_(std::move(config)), pool_(pool) {}

  const cost::ClusterConfig& config() const { return config_; }
  ThreadPool& pool() const {
    return pool_ != nullptr ? *pool_ : ThreadPool::Global();
  }

  /// A detached job execution: statistics plus the produced output
  /// relations, in JobSpec::outputs order, not yet visible in any database.
  struct JobResult {
    JobStats stats;
    std::vector<Relation> outputs;
  };

  /// Executes `job` against `db` without modifying it; the caller decides
  /// when (and where) to commit the outputs. Safe to call concurrently
  /// from multiple threads as long as nothing mutates `db` meanwhile.
  Result<JobResult> RunDetached(const JobSpec& job, const Database& db) const;

  /// Runs `job` against `db`: reads the input relations, writes (replaces)
  /// the output relations, and returns the job's statistics.
  Result<JobStats> Run(const JobSpec& job, Database* db) const;

 private:
  cost::ClusterConfig config_;
  ThreadPool* pool_;
};

}  // namespace gumbo::mr

#endif  // GUMBO_MR_ENGINE_H_
