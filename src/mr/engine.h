// Engine: executes one MapReduce job on real data with real parallelism,
// while accounting I/O in *represented* megabytes for the cost model
// (DESIGN.md §2, "real execution + modeled clock").
//
// Execution pipeline per job:
//   1. each input relation is split into map tasks of split_mb represented
//      megabytes (splits never span relations, matching HDFS);
//   2. map tasks run as *morsel chains* on the work-stealing scheduler
//      (DESIGN.md §9): each task's scan is a sequence of fixed-size row
//      ranges sharing one mapper + emission buffer, so a task yields the
//      worker between morsels without changing what it emits; emitted
//      key/values are handed to the shuffle subsystem (mr/shuffle.h);
//   3. the reducer count is chosen per the job's allocation policy;
//      the shuffle hash-partitions the records;
//   4. reduce tasks run as morsel chains over whole key groups, keys in
//      sorted order, and produce the output relations.
//
// RunDetached executes a job against a read-only database view and returns
// the outputs without committing them; the round runtime (mr/runtime.h)
// uses it to run independent jobs concurrently and commit their outputs in
// deterministic job order. Run is the single-job convenience wrapper that
// commits immediately.
//
// Results are deterministic: a morsel chain preserves its task's emission
// order exactly (morsels of one chain never run concurrently), outputs
// are collected per task index and concatenated in task order — both
// independent of worker count, stealing, and priority (DESIGN.md §9).
#ifndef GUMBO_MR_ENGINE_H_
#define GUMBO_MR_ENGINE_H_

#include <functional>
#include <memory>
#include <vector>

#include "common/relation.h"
#include "common/result.h"
#include "common/scheduler.h"
#include "cost/constants.h"
#include "mr/job.h"
#include "mr/shuffle.h"
#include "mr/stats.h"

namespace gumbo::mr {

/// One map task: a contiguous slice of one input relation. The split is
/// a pure function of the resolved inputs and the cluster config, so
/// every shard of a cluster computes the identical task list and can
/// talk about "task ti" without exchanging specs (DESIGN.md §13).
struct MapTaskSpec {
  size_t input_index = 0;
  size_t begin = 0;
  size_t end = 0;
  double input_mb = 0.0;
};

/// Ownership predicate over map-task / reduce-partition indices: an
/// execution only runs (and accounts) the units the predicate accepts.
/// Empty = owns everything (single-process execution).
using OwnedFn = std::function<bool(size_t)>;

class Engine {
 public:
  /// `scheduler`: morsel scheduler for map/reduce work and concurrent
  /// jobs (nullptr = the process-wide Scheduler::Global()). `options`
  /// carries the default morsel size (GUMBO_MORSEL_ROWS).
  explicit Engine(cost::ClusterConfig config, Scheduler* scheduler = nullptr,
                  SchedOptions options = SchedOptions::FromEnv())
      : config_(std::move(config)),
        scheduler_(scheduler),
        sched_options_(options) {}

  const cost::ClusterConfig& config() const { return config_; }
  Scheduler& scheduler() const {
    return scheduler_ != nullptr ? *scheduler_ : Scheduler::Global();
  }
  const SchedOptions& sched_options() const { return sched_options_; }

  /// A detached job execution: statistics plus the produced output
  /// relations, in JobSpec::outputs order, not yet visible in any database.
  struct JobResult {
    JobStats stats;
    std::vector<Relation> outputs;
  };

  /// Executes `job` against `db` without modifying it; the caller decides
  /// when (and where) to commit the outputs. Safe to call concurrently
  /// from multiple threads as long as nothing mutates `db` meanwhile.
  /// `ctx` sets the priority class / morsel size / metrics sink for this
  /// job's morsels; its scheduler field is ignored (the engine's wins).
  Result<JobResult> RunDetached(const JobSpec& job, const Database& db,
                                const SchedContext& ctx = {}) const;

  /// Runs `job` against `db`: reads the input relations, writes (replaces)
  /// the output relations, and returns the job's statistics.
  Result<JobStats> Run(const JobSpec& job, Database* db,
                       const SchedContext& ctx = {}) const;

 private:
  cost::ClusterConfig config_;
  Scheduler* scheduler_;
  SchedOptions sched_options_;
};

/// One job execution broken into resumable phases, so a caller can
/// interpose between them. RunDetached drives the whole sequence in one
/// process; the sharded runtime (src/dist/sharded.h) runs one
/// JobExecution per shard, restricts RunMaps/RunReduces to the units
/// that shard owns, and exchanges shuffle partitions / reducer counts /
/// output fragments over a Transport between the phases.
///
/// Phase order (each at most once):
///   Prepare -> RunMaps(owned) -> AccountMaps(owned)
///     -> ChooseReducers(...) -> [shuffle export/import] -> Partition(r)
///     -> RunReduces(owned) -> AccountReduces(owned) -> Finish()
///
/// The engine, job spec, and database passed to Prepare must outlive
/// the JobExecution; nothing may mutate the database meanwhile.
class JobExecution {
 public:
  /// Validates the job, resolves inputs against `db`, plans the map
  /// tasks, builds Bloom filters, and initializes the stats skeleton.
  /// `ctx`'s scheduler field is ignored (the engine's wins).
  static Result<std::unique_ptr<JobExecution>> Prepare(
      const Engine& engine, const JobSpec& job, const Database& db,
      const SchedContext& ctx);

  ~JobExecution();  // out-of-line: nested accounting structs are private

  /// The global map-task decomposition — identical on every shard.
  const std::vector<MapTaskSpec>& tasks() const { return tasks_; }

  /// Representation scale shared by all of this job's inputs.
  double scale() const { return scale_; }

  /// Sum of input_mb over ALL map tasks (not just owned ones); a pure
  /// function of the task list, so every shard agrees without exchange.
  double TotalInputMb() const;

  /// Runs the owned map tasks as morsel chains, feeding the shuffle.
  Status RunMaps(const OwnedFn& owned = {});

  /// Accounts the owned map tasks into stats(): per-task costs, per-input
  /// I/O aggregates, hdfs_read_mb, shuffle_mb, and the shuffle counters.
  /// Unowned cost slots stay zero so shard stats merge by element-wise sum.
  void AccountMaps(const OwnedFn& owned = {});

  /// Intermediate (shuffle) MB produced by the owned map tasks. Shards
  /// exchange these sums to agree on the global reducer count.
  double OwnedIntermediateMb(const OwnedFn& owned = {}) const;

  /// Reducer count per the job's allocation policy, from *global* totals.
  int ChooseReducers(double total_intermediate_mb,
                     double total_input_mb) const;

  /// The shuffle holding the owned tasks' records. The sharded runtime
  /// exports wire frames from it, then move-assigns a freshly imported
  /// Shuffle over it before calling Partition.
  Shuffle& shuffle() { return shuffle_; }

  /// Hash-partitions the shuffle into `num_reducers` partitions.
  Status Partition(int num_reducers);

  /// Runs the owned reduce partitions as morsel chains.
  Status RunReduces(const OwnedFn& owned = {});

  /// Accounts the owned reduce partitions into stats(): per-partition
  /// costs, hdfs_write_mb, and the received-MB tally that Finish()
  /// reconciles against shuffle_mb.
  void AccountReduces(const OwnedFn& owned = {});

  /// MB received by the owned reduce partitions (valid after
  /// AccountReduces); shards ship this for the global reconciliation.
  double ReceivedMb() const { return received_mb_; }

  /// Snapshots the live retry counters into stats(). Finish() does this
  /// itself; a shard calls it before shipping its stats frame.
  void FinalizeCounters();

  /// Moves partition `rj`'s output builders out (one per declared
  /// output). Sharded execution encodes these as output-fragment
  /// frames instead of calling Finish().
  std::vector<RelationBuilder> TakeReduceOutputs(size_t rj);

  /// Single-process epilogue: reconciles sent vs. received MB,
  /// concatenates partition outputs in partition order, dedupes where
  /// the spec asks, and returns the stats + relations.
  Result<Engine::JobResult> Finish();

  /// Mutable access for the sharded runtime's stats merge.
  JobStats& stats() { return stats_; }

 private:
  struct TaskIo;
  struct ReduceOut;

  JobExecution(const Engine& engine, const JobSpec& job);

  const Engine& engine_;
  const JobSpec& job_;
  std::vector<const Relation*> inputs_;
  double scale_ = 1.0;
  std::vector<MapTaskSpec> tasks_;
  std::shared_ptr<const FilterSet> filters_;
  SchedContext sched_ctx_;  // scheduler resolved, never null
  size_t morsel_rows_ = 0;
  uint32_t max_retries_ = 0;
  RetryCounters retry_counters_;
  Shuffle shuffle_;
  std::vector<TaskIo> task_io_;
  std::vector<ReduceOut> red_;
  JobStats stats_;
  double broadcast_cost_per_task_ = 0.0;
  double received_mb_ = 0.0;
};

}  // namespace gumbo::mr

#endif  // GUMBO_MR_ENGINE_H_
