// Runtime: the round scheduler of the execution stack (DESIGN.md §4).
//
// A Program is a DAG of MapReduce jobs; the paper's evaluation strategies
// differ exactly in how many *rounds* (dependency-depth levels) their
// programs need. The runtime makes that structure operational:
//
//   1. jobs are grouped into rounds by dependency depth (every dependency
//      of a round-k job completed in a round < k);
//   2. all jobs of a round execute concurrently on the engine's morsel
//      scheduler via Engine::RunDetached, reading a frozen database
//      snapshot;
//   3. after the round barrier, outputs are committed to the database in
//      job-index order, so results are byte-identical to a sequential run
//      regardless of worker count or scheduling;
//   4. per-round metrics (job set, modeled max/sum cost, observed peak
//      concurrency, wall clock) are aggregated into ProgramStats.
//
// The modeled clock is unchanged: net_time still comes from the
// slot-constrained cluster simulation (mr/program.h), which overlaps
// independent jobs the same way the real concurrent execution does.
#ifndef GUMBO_MR_RUNTIME_H_
#define GUMBO_MR_RUNTIME_H_

#include <vector>

#include "common/relation.h"
#include "common/result.h"
#include "mr/engine.h"
#include "mr/program.h"
#include "mr/stats.h"

namespace gumbo::mr {

struct RuntimeOptions {
  /// Execute the jobs of a round concurrently. When false, jobs run
  /// one-by-one in index order (useful for debugging and A/B timing);
  /// results and modeled metrics are identical either way.
  bool concurrent_jobs = true;
};

class Runtime {
 public:
  explicit Runtime(Engine* engine, RuntimeOptions options = {})
      : engine_(engine), options_(options) {}

  const Engine& engine() const { return *engine_; }
  const RuntimeOptions& options() const { return options_; }

  /// The round structure of `program`: round k holds every job whose
  /// longest dependency chain has length k. Jobs within a round are
  /// mutually independent; rounds are ordered.
  static std::vector<std::vector<size_t>> JobRounds(const Program& program);

  /// Executes every job of `program` against `db` round by round and
  /// returns the aggregated statistics. On success all job outputs are
  /// committed to `db`; on failure `db` holds the outputs of completed
  /// rounds only (the failing round commits nothing). `ctx` carries the
  /// query's priority class and metrics sink down to every morsel the
  /// program schedules (DESIGN.md §9).
  Result<ProgramStats> Execute(const Program& program, Database* db,
                               const SchedContext& ctx = {}) const;

 private:
  Engine* engine_;
  RuntimeOptions options_;
};

}  // namespace gumbo::mr

#endif  // GUMBO_MR_RUNTIME_H_
