#include "mr/shuffle.h"

#include <algorithm>
#include <cassert>
#include <unordered_map>

namespace gumbo::mr {

Shuffle::Shuffle(size_t num_map_tasks, bool pack_messages)
    : pack_messages_(pack_messages), task_records_(num_map_tasks) {}

ShuffleTaskIo Shuffle::AddTaskOutput(size_t task, std::vector<KeyValue> kvs,
                                     Combiner* combiner) {
  assert(task < task_records_.size());
  std::vector<ShuffleRecord>& records = task_records_[task];
  assert(records.empty() && "task output ingested twice");
  ShuffleTaskIo io;
  // The combiner contract needs per-key value lists, so combining always
  // goes through the grouped form even when packing is off (survivors are
  // then re-materialized as singleton records below).
  if (pack_messages_ || combiner != nullptr) {
    // Group by key, preserving first-seen key order for determinism.
    std::unordered_map<Tuple, size_t> index;
    index.reserve(kvs.size());
    std::vector<ShuffleRecord> grouped;
    for (KeyValue& kv : kvs) {
      auto [it, inserted] = index.emplace(kv.key, grouped.size());
      if (inserted) {
        ShuffleRecord rec;
        rec.key = std::move(kv.key);
        grouped.push_back(std::move(rec));
      }
      grouped[it->second].values.push_back(std::move(kv.value));
    }
    if (combiner != nullptr) {
      for (ShuffleRecord& rec : grouped) {
        if (rec.values.size() < 2) continue;
        const size_t before = rec.values.size();
        double before_bytes = 0.0;
        for (const Message& m : rec.values) before_bytes += m.wire_bytes;
        combiner->Combine(rec.key, &rec.values);
        assert(!rec.values.empty() && "combiner dropped a whole key group");
        const size_t removed = before - rec.values.size();
        io.combined_messages += removed;
        for (const Message& m : rec.values) before_bytes -= m.wire_bytes;
        io.combined_bytes += before_bytes;
        if (!pack_messages_) {
          // Without packing each removed message would have paid its own
          // key header as a singleton record.
          io.combined_bytes +=
              static_cast<double>(removed) * TupleWireBytes(rec.key);
        }
      }
    }
    if (pack_messages_) {
      for (ShuffleRecord& rec : grouped) {
        rec.wire_bytes = TupleWireBytes(rec.key);
        for (const Message& m : rec.values) rec.wire_bytes += m.wire_bytes;
      }
      records = std::move(grouped);
    } else {
      // No packing: every surviving message pays its own key header.
      for (ShuffleRecord& rec : grouped) {
        for (Message& m : rec.values) {
          ShuffleRecord r;
          r.key = rec.key;
          r.wire_bytes = TupleWireBytes(r.key) + m.wire_bytes;
          r.values.push_back(std::move(m));
          records.push_back(std::move(r));
        }
      }
    }
  } else {
    records.reserve(kvs.size());
    for (KeyValue& kv : kvs) {
      ShuffleRecord rec;
      rec.wire_bytes = TupleWireBytes(kv.key) + kv.value.wire_bytes;
      rec.key = std::move(kv.key);
      rec.values.push_back(std::move(kv.value));
      records.push_back(std::move(rec));
    }
  }
  io.records = records.size();
  for (const ShuffleRecord& rec : records) {
    io.wire_bytes += rec.wire_bytes;
    io.messages += rec.values.size();
  }
  return io;
}

void Shuffle::Partition(int num_partitions, ThreadPool* pool) {
  assert(num_partitions > 0);
  assert(partitions_.empty() && "Partition called twice");
  num_partitions_ = num_partitions;
  const size_t r = static_cast<size_t>(num_partitions);
  const size_t tasks = task_records_.size();

  // Bucket each task's records, then concatenate buckets in task order so
  // every partition sees its records in (task, emission) order.
  std::vector<std::vector<std::vector<const ShuffleRecord*>>> buckets(tasks);
  auto bucket_task = [&](size_t ti) {
    buckets[ti].resize(r);
    for (const ShuffleRecord& rec : task_records_[ti]) {
      buckets[ti][rec.key.Hash() % static_cast<uint64_t>(r)].push_back(&rec);
    }
  };
  auto gather_partition = [&](size_t p) {
    size_t total = 0;
    for (size_t ti = 0; ti < tasks; ++ti) total += buckets[ti][p].size();
    partitions_[p].reserve(total);
    for (size_t ti = 0; ti < tasks; ++ti) {
      partitions_[p].insert(partitions_[p].end(), buckets[ti][p].begin(),
                            buckets[ti][p].end());
    }
  };
  partitions_.resize(r);
  if (pool != nullptr) {
    pool->ParallelFor(tasks, bucket_task);
    pool->ParallelFor(r, gather_partition);
  } else {
    for (size_t ti = 0; ti < tasks; ++ti) bucket_task(ti);
    for (size_t p = 0; p < r; ++p) gather_partition(p);
  }
}

double Shuffle::PartitionWireBytes(size_t p) const {
  assert(p < partitions_.size());
  double bytes = 0.0;
  for (const ShuffleRecord* rec : partitions_[p]) bytes += rec->wire_bytes;
  return bytes;
}

void Shuffle::ForEachGroup(
    size_t p, const std::function<void(const Tuple&,
                                       const std::vector<Message>&)>& fn)
    const {
  assert(p < partitions_.size());
  // One flat index per partition; the stable sort keeps (task, emission)
  // order within equal keys, so merged value lists match a sequential run.
  std::vector<const ShuffleRecord*> sorted = partitions_[p];
  std::stable_sort(sorted.begin(), sorted.end(),
                   [](const ShuffleRecord* a, const ShuffleRecord* b) {
                     return a->key < b->key;
                   });
  std::vector<Message> merged;  // reused across key groups
  for (size_t i = 0; i < sorted.size();) {
    size_t j = i + 1;
    while (j < sorted.size() && sorted[j]->key == sorted[i]->key) ++j;
    if (j == i + 1) {
      fn(sorted[i]->key, sorted[i]->values);
    } else {
      merged.clear();
      for (size_t k = i; k < j; ++k) {
        merged.insert(merged.end(), sorted[k]->values.begin(),
                      sorted[k]->values.end());
      }
      fn(sorted[i]->key, merged);
    }
    i = j;
  }
}

}  // namespace gumbo::mr
