#include "mr/shuffle.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <cstring>
#include <string>

#include "common/cancel.h"
#include "common/fault.h"

namespace gumbo::mr {

namespace {

uint64_t NowUs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

Shuffle::Shuffle(size_t num_map_tasks, bool pack_messages)
    : pack_messages_(pack_messages), tasks_(num_map_tasks) {
  assert(num_map_tasks < (1u << 24) && "RecordRef packs the task in 24 bits");
}

Result<ShuffleTaskIo> Shuffle::AddTaskOutput(size_t task,
                                             MapOutputBuffer buffer,
                                             Combiner* combiner) {
  if (task >= tasks_.size()) {
    return Status::Internal("shuffle: map task index " +
                            std::to_string(task) + " out of range (" +
                            std::to_string(tasks_.size()) + " tasks)");
  }
  TaskData& td = tasks_[task];
  if (!td.entries.empty() || !td.messages.empty()) {
    return Status::Internal("shuffle: map task " + std::to_string(task) +
                            " output ingested twice");
  }
  ShuffleTaskIo io;
  io.fingerprint_collisions = buffer.fingerprint_collisions();
  td.key_arena = std::move(buffer.key_arena_);
  td.payload_arena = std::move(buffer.payload_arena_);

  if (pack_messages_ || combiner != nullptr) {
    // Lay each key group out contiguously (first-seen key order, chain =
    // emission order within the key), combining in place on the
    // destination range before accounting — one POD copy per message,
    // no per-group scratch. The combiner contract needs per-key value
    // lists, so combining always goes through the grouped form even when
    // packing is off (survivors then become singleton records over the
    // same contiguous range).
    td.messages.reserve(buffer.messages_.size());
    td.entries.reserve(pack_messages_ ? buffer.groups_.size()
                                      : buffer.messages_.size());
    for (const MapOutputBuffer::Group& g : buffer.groups_) {
      const size_t begin = td.messages.size();
      double group_wire = 0.0;
      for (uint32_t mi = g.head; mi != MapOutputBuffer::kNone;
           mi = buffer.next_[mi]) {
        td.messages.push_back(buffer.messages_[mi]);
        group_wire += buffer.messages_[mi].wire_bytes;
      }
      size_t count = td.messages.size() - begin;
      if (combiner != nullptr && count >= 2) {
        const size_t kept = combiner->Combine(
            td.key_arena.data() + g.key_pos, g.key_arity,
            td.messages.data() + begin, count, td.payload_arena.data());
        if (kept < 1 || kept > count) {
          return Status::Internal(
              "shuffle: combiner kept " + std::to_string(kept) + " of " +
              std::to_string(count) + " values of a key group (task " +
              std::to_string(task) +
              "); a combiner must keep between 1 and all of them");
        }
        const size_t removed = count - kept;
        td.messages.resize(begin + kept);
        double after_wire = 0.0;
        for (size_t i = 0; i < kept; ++i) {
          after_wire += td.messages[begin + i].wire_bytes;
        }
        io.combined_messages += removed;
        io.combined_bytes += group_wire - after_wire;
        if (!pack_messages_) {
          // Without packing each removed message would have paid its own
          // key header as a singleton record.
          io.combined_bytes +=
              static_cast<double>(removed) * KeyWireBytes(g.key_arity);
        }
        group_wire = after_wire;
        count = kept;
      }
      if (pack_messages_) {
        KeyEntry e;
        e.key_pos = g.key_pos;
        e.key_arity = g.key_arity;
        e.fingerprint = g.fingerprint;
        e.msg_begin = static_cast<uint32_t>(begin);
        e.msg_count = static_cast<uint32_t>(count);
        e.wire_bytes = KeyWireBytes(g.key_arity) + group_wire;
        td.entries.push_back(e);
      } else {
        // No packing: every surviving message pays its own key header;
        // the messages stay where they are, entries just point at them
        // one by one.
        for (size_t i = 0; i < count; ++i) {
          KeyEntry e;
          e.key_pos = g.key_pos;
          e.key_arity = g.key_arity;
          e.fingerprint = g.fingerprint;
          e.msg_begin = static_cast<uint32_t>(begin + i);
          e.msg_count = 1;
          e.wire_bytes =
              KeyWireBytes(g.key_arity) + td.messages[begin + i].wire_bytes;
          td.entries.push_back(e);
        }
      }
    }
  } else {
    // Neither packing nor combining: singleton records in raw emission
    // order; the emitter's message array already is that order.
    td.messages = std::move(buffer.messages_);
    td.entries.reserve(td.messages.size());
    for (uint32_t mi = 0; mi < td.messages.size(); ++mi) {
      const MapOutputBuffer::Group& g = buffer.groups_[buffer.group_of_[mi]];
      KeyEntry e;
      e.key_pos = g.key_pos;
      e.key_arity = g.key_arity;
      e.fingerprint = g.fingerprint;
      e.msg_begin = mi;
      e.msg_count = 1;
      e.wire_bytes = KeyWireBytes(g.key_arity) + td.messages[mi].wire_bytes;
      td.entries.push_back(e);
    }
  }

  io.records = td.entries.size();
  io.messages = td.messages.size();
  for (const KeyEntry& e : td.entries) io.wire_bytes += e.wire_bytes;
  return io;
}

void Shuffle::ForEachTaskRecord(
    size_t ti,
    const std::function<void(const KeyEntry&, const uint64_t* key_words,
                             const Message* msgs,
                             const uint64_t* payload_arena)>& fn) const {
  assert(ti < tasks_.size());
  const TaskData& td = tasks_[ti];
  for (const KeyEntry& e : td.entries) {
    fn(e, td.key_arena.data() + e.key_pos, td.messages.data() + e.msg_begin,
       td.payload_arena.data());
  }
}

Status Shuffle::ImportTaskRecord(size_t task, const uint64_t* key_words,
                                 uint32_t key_arity, uint64_t fingerprint,
                                 double wire_bytes, const ImportMessage* msgs,
                                 size_t msg_count) {
  if (task >= tasks_.size()) {
    return Status::Internal("shuffle: imported record for task " +
                            std::to_string(task) + " out of range (" +
                            std::to_string(tasks_.size()) + " tasks)");
  }
  if (!partitions_.empty() || num_partitions_ != 0) {
    return Status::Internal("shuffle: record imported after Partition");
  }
  TaskData& td = tasks_[task];
  KeyEntry e;
  e.key_pos = static_cast<uint32_t>(td.key_arena.size());
  e.key_arity = key_arity;
  e.fingerprint = fingerprint;
  e.msg_begin = static_cast<uint32_t>(td.messages.size());
  e.msg_count = static_cast<uint32_t>(msg_count);
  e.wire_bytes = wire_bytes;
  td.key_arena.insert(td.key_arena.end(), key_words, key_words + key_arity);
  for (size_t i = 0; i < msg_count; ++i) {
    const ImportMessage& im = msgs[i];
    Message m;
    m.tag = im.tag;
    m.aux = im.aux;
    m.payload_size = im.payload_size;
    m.wire_bytes = im.wire_bytes;
    if (im.payload_size <= Message::kInlinePayloadValues) {
      for (uint32_t w = 0; w < im.payload_size; ++w) {
        m.inline_payload[w] = im.payload[w];
      }
    } else {
      m.payload_pos = static_cast<uint32_t>(td.payload_arena.size());
      td.payload_arena.insert(td.payload_arena.end(), im.payload,
                              im.payload + im.payload_size);
    }
    td.messages.push_back(m);
  }
  td.entries.push_back(e);
  return Status::Ok();
}

bool Shuffle::KeyLess(const RecordRef& a, const RecordRef& b) const {
  // Fast paths on the inlined fields: the first word is the first
  // lexicographic position, and when either key ends there (arity < 2),
  // the arity hint finishes the comparison — no memory indirection.
  if (a.word0 != b.word0) return a.word0 < b.word0;
  const uint32_t ah = a.arity_hint();
  const uint32_t bh = b.arity_hint();
  if (ah < 2 || bh < 2) {
    // The shared prefix is exhausted at word0: shorter key first...
    if (ah != bh) return ah < bh;
    // ...or the keys are equal: (task, emission) order. Making the
    // tie-break explicit lets Partition use std::sort — same order a
    // stable sort would give, without the allocation and constant
    // factor. Equal arity hints make task_arity order the task order.
    if (a.task_arity != b.task_arity) return a.task_arity < b.task_arity;
    return a.entry < b.entry;
  }
  // Both keys have >= 2 words: lexicographic over the remaining raw
  // words, then arity — identical to Tuple::operator< (Value order is
  // raw-word order).
  const KeyEntry& ea = EntryOf(a);
  const KeyEntry& eb = EntryOf(b);
  const uint64_t* wa = KeyWordsOf(a);
  const uint64_t* wb = KeyWordsOf(b);
  const uint32_t n = std::min(ea.key_arity, eb.key_arity);
  for (uint32_t i = 1; i < n; ++i) {
    if (wa[i] < wb[i]) return true;
    if (wb[i] < wa[i]) return false;
  }
  if (ea.key_arity != eb.key_arity) return ea.key_arity < eb.key_arity;
  if (a.task_arity != b.task_arity) return a.task_arity < b.task_arity;
  return a.entry < b.entry;
}

bool Shuffle::KeyEquals(const RecordRef& a, const RecordRef& b) const {
  const KeyEntry& ea = EntryOf(a);
  const KeyEntry& eb = EntryOf(b);
  if (ea.fingerprint != eb.fingerprint || ea.key_arity != eb.key_arity) {
    return false;
  }
  return ea.key_arity == 0 ||
         std::memcmp(KeyWordsOf(a), KeyWordsOf(b),
                     ea.key_arity * sizeof(uint64_t)) == 0;
}

Status Shuffle::Partition(int num_partitions, Scheduler* scheduler,
                          const SchedContext& ctx, uint32_t max_retries,
                          RetryCounters* counters) {
  if (num_partitions <= 0) {
    return Status::Internal("shuffle: non-positive reduce partition count " +
                            std::to_string(num_partitions));
  }
  if (!partitions_.empty() || num_partitions_ != 0) {
    return Status::Internal("shuffle: Partition called twice");
  }
  num_partitions_ = num_partitions;
  const size_t r = static_cast<size_t>(num_partitions);
  const size_t tasks = tasks_.size();

  // Two counting passes instead of intermediate bucket vectors: first
  // count each task's records (and wire bytes) per partition, then write
  // every record directly into its final slot. Tasks write disjoint
  // slices (offsets are per task x partition), so both passes
  // parallelize without locks, and the (task, emission) pre-sort order
  // falls out of the offsets.
  std::vector<std::vector<uint32_t>> counts(tasks);
  std::vector<std::vector<double>> wires(tasks);
  auto count_task = [&](size_t ti) {
    counts[ti].assign(r, 0);
    wires[ti].assign(r, 0.0);
    for (const KeyEntry& e : tasks_[ti].entries) {
      const size_t p = PartitionIndex(e.fingerprint, num_partitions);
      ++counts[ti][p];
      wires[ti][p] += e.wire_bytes;
    }
  };
  partitions_.resize(r);
  partition_wire_bytes_.resize(r, 0.0);
  // Exclusive prefix sums over the counts matrix: base[ti][p] is where
  // task ti's first record of partition p lands. Built once in the
  // sizing pass below, so scatter offset setup is O(r) per task.
  std::vector<std::vector<size_t>> base(tasks);
  auto scatter_task = [&](size_t ti) {
    const TaskData& td = tasks_[ti];
    const std::vector<KeyEntry>& entries = td.entries;
    std::vector<size_t> offset = base[ti];
    const uint32_t task_bits = static_cast<uint32_t>(ti) << 8;
    for (uint32_t ei = 0; ei < entries.size(); ++ei) {
      const KeyEntry& e = entries[ei];
      RecordRef ref;
      ref.word0 = e.key_arity > 0 ? td.key_arena[e.key_pos] : 0;
      ref.task_arity =
          task_bits | std::min(e.key_arity, RecordRef::kAritySaturated);
      ref.entry = ei;
      const size_t p = PartitionIndex(e.fingerprint, num_partitions);
      partitions_[p][offset[p]++] = ref;
    }
  };
  const FaultInjector* faults =
      ctx.faults != nullptr && ctx.faults->active() &&
              ctx.faults->site_enabled(FaultSite::kShuffleSort)
          ? ctx.faults
          : nullptr;
  std::vector<Status> sort_status(r);
  auto sort_partition = [&](size_t p) {
    std::vector<RecordRef>& refs = partitions_[p];
    // The one sort of the shuffle, cached here — ForEachGroup never
    // re-sorts. KeyLess breaks key ties by (task, emission), so plain
    // sort yields exactly the stable order. A sort is idempotent, so an
    // injected fault retries it in place: the re-sorted attempt is
    // byte-identical to a fault-free one.
    for (uint32_t attempt = 0;; ++attempt) {
      const uint64_t start_us = faults != nullptr ? NowUs() : 0;
      std::sort(refs.begin(), refs.end(),
                [this](const RecordRef& a, const RecordRef& b) {
                  return KeyLess(a, b);
                });
      if (faults == nullptr ||
          !faults->ShouldFail(FaultSite::kShuffleSort, p, attempt)) {
        return;
      }
      if (counters != nullptr) {
        counters->faults_injected.fetch_add(1, std::memory_order_relaxed);
        counters->retry_us.fetch_add(NowUs() - start_us,
                                     std::memory_order_relaxed);
      }
      if (attempt >= max_retries) {
        sort_status[p] =
            FaultInjector::InjectedFault(FaultSite::kShuffleSort, p, attempt);
        return;
      }
      if (counters != nullptr) {
        counters->task_retries.fetch_add(1, std::memory_order_relaxed);
      }
    }
  };
  auto size_partitions = [&] {
    for (size_t ti = 0; ti < tasks; ++ti) base[ti].assign(r, 0);
    for (size_t p = 0; p < r; ++p) {
      size_t total = 0;
      double wire = 0.0;
      for (size_t ti = 0; ti < tasks; ++ti) {
        base[ti][p] = total;
        total += counts[ti][p];
        wire += wires[ti][p];
      }
      partitions_[p].resize(total);
      partition_wire_bytes_[p] = wire;
    }
  };
  // Cancellation polls sit between the phases, not inside the morsels:
  // each phase is bounded (one pass over the records), and skipping a
  // morsel mid-phase would leave the counts/offsets matrices in a state
  // the next phase cannot read.
  GUMBO_RETURN_IF_ERROR(CheckCancel(ctx.cancel));
  if (scheduler != nullptr) {
    // Each task slice / partition sort is one morsel: counts, scatter
    // slots, and sorted arrays are indexed by task/partition, so the
    // result is position-committed and independent of execution order.
    scheduler->ParallelFor(tasks, count_task, ctx);
    size_partitions();
    scheduler->ParallelFor(tasks, scatter_task, ctx);
    GUMBO_RETURN_IF_ERROR(CheckCancel(ctx.cancel));
    scheduler->ParallelFor(r, sort_partition, ctx);
  } else {
    for (size_t ti = 0; ti < tasks; ++ti) count_task(ti);
    size_partitions();
    for (size_t ti = 0; ti < tasks; ++ti) scatter_task(ti);
    GUMBO_RETURN_IF_ERROR(CheckCancel(ctx.cancel));
    for (size_t p = 0; p < r; ++p) sort_partition(p);
  }
  // Lowest failed partition wins: deterministic for a fixed fault seed,
  // independent of which sort morsel ran first.
  for (size_t p = 0; p < r; ++p) {
    GUMBO_RETURN_IF_ERROR(sort_status[p]);
  }
  return Status::Ok();
}

double Shuffle::PartitionWireBytes(size_t p) const {
  assert(p < partition_wire_bytes_.size());
  return partition_wire_bytes_[p];
}

void Shuffle::ForEachGroup(
    size_t p,
    const std::function<void(TupleView, const MessageGroup&)>& fn) const {
  GroupCursor cursor;
  ForEachGroupChunk(p, &cursor, static_cast<size_t>(-1), fn);
}

bool Shuffle::ForEachGroupChunk(
    size_t p, GroupCursor* cursor, size_t max_records,
    const std::function<void(TupleView, const MessageGroup&)>& fn) const {
  assert(p < partitions_.size());
  const std::vector<RecordRef>& refs = partitions_[p];
  // Reused scratch (lives in the cursor so it survives across the chunks
  // of a reduce morsel chain): the only per-key allocation-ish state,
  // and it stabilizes at the maximum segment count after a few keys.
  std::vector<MessageGroup::Segment>& segments = cursor->segments;
  const size_t budget_end =
      max_records >= refs.size() - std::min(cursor->next_record, refs.size())
          ? refs.size()
          : cursor->next_record + max_records;
  for (size_t i = cursor->next_record; i < refs.size();) {
    if (i >= budget_end) {
      cursor->next_record = i;
      return true;
    }
    size_t j = i + 1;
    while (j < refs.size() && KeyEquals(refs[i], refs[j])) ++j;
    segments.clear();
    size_t total = 0;
    for (size_t k = i; k < j; ++k) {
      const TaskData& td = tasks_[refs[k].task()];
      const KeyEntry& e = td.entries[refs[k].entry];
      if (e.msg_count == 0) continue;
      total += e.msg_count;
      const Message* msgs = td.messages.data() + e.msg_begin;
      if (!segments.empty()) {
        // Adjacent records of the same task with contiguous message
        // ranges (the unpacked singleton case) fuse into one segment.
        MessageGroup::Segment& last = segments.back();
        if (last.msgs + last.count == msgs &&
            last.arena == td.payload_arena.data()) {
          last.count += e.msg_count;
          continue;
        }
      }
      segments.push_back({msgs, td.payload_arena.data(), e.msg_count});
    }
    const KeyEntry& e0 = EntryOf(refs[i]);
    fn(TupleView(KeyWordsOf(refs[i]), e0.key_arity),
       MessageGroup(segments.data(), segments.size(), total));
    i = j;
  }
  cursor->next_record = refs.size();
  return false;
}

}  // namespace gumbo::mr
