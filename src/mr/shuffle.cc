#include "mr/shuffle.h"

#include <algorithm>
#include <cassert>
#include <unordered_map>

namespace gumbo::mr {

Shuffle::Shuffle(size_t num_map_tasks, bool pack_messages)
    : pack_messages_(pack_messages), task_records_(num_map_tasks) {}

ShuffleTaskIo Shuffle::AddTaskOutput(size_t task, std::vector<KeyValue> kvs) {
  assert(task < task_records_.size());
  std::vector<ShuffleRecord>& records = task_records_[task];
  assert(records.empty() && "task output ingested twice");
  if (pack_messages_) {
    // Group by key, preserving first-seen key order for determinism.
    std::unordered_map<Tuple, size_t> index;
    index.reserve(kvs.size());
    for (KeyValue& kv : kvs) {
      auto [it, inserted] = index.emplace(kv.key, records.size());
      if (inserted) {
        ShuffleRecord rec;
        rec.key = kv.key;
        rec.wire_bytes = TupleWireBytes(kv.key);
        records.push_back(std::move(rec));
      }
      ShuffleRecord& rec = records[it->second];
      rec.wire_bytes += kv.value.wire_bytes;
      rec.values.push_back(std::move(kv.value));
    }
  } else {
    records.reserve(kvs.size());
    for (KeyValue& kv : kvs) {
      ShuffleRecord rec;
      rec.wire_bytes = TupleWireBytes(kv.key) + kv.value.wire_bytes;
      rec.key = std::move(kv.key);
      rec.values.push_back(std::move(kv.value));
      records.push_back(std::move(rec));
    }
  }
  ShuffleTaskIo io;
  io.records = records.size();
  for (const ShuffleRecord& rec : records) io.wire_bytes += rec.wire_bytes;
  return io;
}

void Shuffle::Partition(int num_partitions, ThreadPool* pool) {
  assert(num_partitions > 0);
  assert(partitions_.empty() && "Partition called twice");
  num_partitions_ = num_partitions;
  const size_t r = static_cast<size_t>(num_partitions);
  const size_t tasks = task_records_.size();

  // Bucket each task's records, then concatenate buckets in task order so
  // every partition sees its records in (task, emission) order.
  std::vector<std::vector<std::vector<const ShuffleRecord*>>> buckets(tasks);
  auto bucket_task = [&](size_t ti) {
    buckets[ti].resize(r);
    for (const ShuffleRecord& rec : task_records_[ti]) {
      buckets[ti][rec.key.Hash() % static_cast<uint64_t>(r)].push_back(&rec);
    }
  };
  auto gather_partition = [&](size_t p) {
    size_t total = 0;
    for (size_t ti = 0; ti < tasks; ++ti) total += buckets[ti][p].size();
    partitions_[p].reserve(total);
    for (size_t ti = 0; ti < tasks; ++ti) {
      partitions_[p].insert(partitions_[p].end(), buckets[ti][p].begin(),
                            buckets[ti][p].end());
    }
  };
  partitions_.resize(r);
  if (pool != nullptr) {
    pool->ParallelFor(tasks, bucket_task);
    pool->ParallelFor(r, gather_partition);
  } else {
    for (size_t ti = 0; ti < tasks; ++ti) bucket_task(ti);
    for (size_t p = 0; p < r; ++p) gather_partition(p);
  }
}

double Shuffle::PartitionWireBytes(size_t p) const {
  assert(p < partitions_.size());
  double bytes = 0.0;
  for (const ShuffleRecord* rec : partitions_[p]) bytes += rec->wire_bytes;
  return bytes;
}

void Shuffle::ForEachGroup(
    size_t p, const std::function<void(const Tuple&,
                                       const std::vector<Message>&)>& fn)
    const {
  assert(p < partitions_.size());
  // One flat index per partition; the stable sort keeps (task, emission)
  // order within equal keys, so merged value lists match a sequential run.
  std::vector<const ShuffleRecord*> sorted = partitions_[p];
  std::stable_sort(sorted.begin(), sorted.end(),
                   [](const ShuffleRecord* a, const ShuffleRecord* b) {
                     return a->key < b->key;
                   });
  std::vector<Message> merged;  // reused across key groups
  for (size_t i = 0; i < sorted.size();) {
    size_t j = i + 1;
    while (j < sorted.size() && sorted[j]->key == sorted[i]->key) ++j;
    if (j == i + 1) {
      fn(sorted[i]->key, sorted[i]->values);
    } else {
      merged.clear();
      for (size_t k = i; k < j; ++k) {
        merged.insert(merged.end(), sorted[k]->values.begin(),
                      sorted[k]->values.end());
      }
      fn(sorted[i]->key, merged);
    }
    i = j;
  }
}

}  // namespace gumbo::mr
