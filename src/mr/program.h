// Program: a DAG of MapReduce jobs, plus the slot-constrained scheduler
// that yields the paper's two time metrics.
//
// Jobs are executed (for real) round by round — independent jobs of the
// same dependency depth run concurrently on the engine's thread pool (see
// mr/runtime.h); afterwards, the scheduler replays all task costs through
// an event-driven simulation of the cluster (nodes x slots), yielding:
//   * net time   — the makespan from query submission to the last job's
//     completion, with map/reduce tasks of concurrently-running jobs
//     competing for the same slot pools;
//   * total time — the aggregate cost of all tasks plus per-job overhead.
//
// Per the paper's Hadoop settings (Appendix B,
// mapreduce.job.reduce.slowstart.completedmaps = 1), a job's reduce tasks
// become available only once all its map tasks have finished.
#ifndef GUMBO_MR_PROGRAM_H_
#define GUMBO_MR_PROGRAM_H_

#include <string>
#include <vector>

#include "common/relation.h"
#include "common/result.h"
#include "mr/engine.h"
#include "mr/job.h"
#include "mr/stats.h"

namespace gumbo::mr {

class Program {
 public:
  /// Adds a job; `deps` are indices of jobs that must complete first
  /// (their outputs feed this job). Returns the job's index.
  size_t AddJob(JobSpec spec, std::vector<size_t> deps = {});

  size_t size() const { return jobs_.size(); }
  bool empty() const { return jobs_.empty(); }
  const JobSpec& job(size_t i) const { return jobs_[i]; }
  const std::vector<size_t>& deps(size_t i) const { return deps_[i]; }

  /// Length (in jobs) of the longest dependency chain — the paper's
  /// "number of rounds".
  int Rounds() const;

  /// Indices in a valid execution order (topological). Fails on cycles.
  Result<std::vector<size_t>> TopologicalOrder() const;

  std::string ToString() const;

 private:
  std::vector<JobSpec> jobs_;
  std::vector<std::vector<size_t>> deps_;
};

/// Executes every job of `program` against `db` using `engine`, then
/// simulates cluster scheduling to produce net/total time. Convenience
/// wrapper over mr::Runtime with default options: jobs of the same
/// dependency round run concurrently on the engine's thread pool.
Result<ProgramStats> RunProgram(const Program& program, Engine* engine,
                                Database* db);

/// The scheduling simulation alone (no data execution): computes net time
/// for the given per-job stats and dependency structure. Exposed for unit
/// tests and cost estimation.
double SimulateNetTime(const std::vector<JobStats>& jobs,
                       const std::vector<std::vector<size_t>>& deps,
                       const cost::ClusterConfig& config);

}  // namespace gumbo::mr

#endif  // GUMBO_MR_PROGRAM_H_
