// MapOutputBuffer: the flat map-side emission buffer of the shuffle hot
// path (DESIGN.md §3). Operators write key/message pairs straight into
// it — there is no intermediate vector of (Tuple, Message) pairs.
//
// Layout: keys are flat-encoded (8 bytes per Value, common/tuple.h) into
// one contiguous word arena, deduplicated on the fly through an
// open-addressing table over 64-bit fingerprints (full-key memcmp only
// when fingerprints collide); messages are POD structs appended in
// emission order to one flat array, linked into per-key chains so the
// shuffle can later lay each key group out contiguously in a single
// pass. Small message payloads live inline in the Message struct; larger
// ones spill to a shared payload arena.
//
// One MapOutputBuffer belongs to one map task; no synchronization.
#ifndef GUMBO_MR_MAP_OUTPUT_H_
#define GUMBO_MR_MAP_OUTPUT_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/tuple.h"
#include "mr/message.h"

namespace gumbo::mr {

class MapOutputBuffer {
 public:
  /// Fingerprint of a flat-encoded key. Injectable so tests can force
  /// collisions (grouping must stay exact via the full-key compare);
  /// production code always uses TupleFingerprint == Tuple::Hash.
  using FingerprintFn = uint64_t (*)(const uint64_t* words, uint32_t arity);

  MapOutputBuffer() : MapOutputBuffer(&TupleFingerprint) {}
  explicit MapOutputBuffer(FingerprintFn fingerprint);

  // ---- Emission (the operator-facing hot path) ----
  //
  // Keys and payloads arrive as zero-copy TupleViews (owning Tuples
  // convert implicitly): a key is a span of flat words wherever it lives
  // — a stored relation row, a stack-built projection, or a shuffle
  // payload — and its words are copied at most once, into the key arena
  // when first seen.

  /// Emits a message without payload for `key`.
  void Emit(TupleView key, uint32_t tag, uint32_t aux, double wire_bytes) {
    EmitImpl(key, /*prehashed=*/false, 0, tag, aux, TupleView(), wire_bytes);
  }
  /// Emits a message carrying `payload` for `key`.
  void Emit(TupleView key, uint32_t tag, uint32_t aux, TupleView payload,
            double wire_bytes) {
    EmitImpl(key, /*prehashed=*/false, 0, tag, aux, payload, wire_bytes);
  }
  /// Emit variants reusing a fingerprint the caller already computed — a
  /// Bloom-probe hash, or the relation's stored row fingerprint when the
  /// key is the fact itself (identity projection, DESIGN.md §7).
  /// `fingerprint` MUST equal key.Fingerprint(); anything else breaks
  /// grouping and partitioning.
  void EmitPrehashed(TupleView key, uint64_t fingerprint, uint32_t tag,
                     uint32_t aux, double wire_bytes) {
    EmitImpl(key, /*prehashed=*/true, fingerprint, tag, aux, TupleView(),
             wire_bytes);
  }
  void EmitPrehashed(TupleView key, uint64_t fingerprint, uint32_t tag,
                     uint32_t aux, TupleView payload, double wire_bytes) {
    EmitImpl(key, /*prehashed=*/true, fingerprint, tag, aux, payload,
             wire_bytes);
  }

  size_t num_messages() const { return messages_.size(); }
  size_t num_keys() const { return groups_.size(); }
  bool empty() const { return messages_.empty(); }
  /// Distinct keys inserted despite sharing a fingerprint with an
  /// earlier, different key (true 64-bit collisions, counted once per
  /// inserted key); surfaces in JobStats.
  uint64_t fingerprint_collisions() const { return fingerprint_collisions_; }

  /// Wire-byte / record accounting the way the shuffle will see it:
  /// packed, every distinct key pays one key header; unpacked, every
  /// message pays its own. Used by the sampling cost estimator, which
  /// must agree with the engine's accounting.
  void AccountWire(bool packed, double* wire_bytes, size_t* records) const;

  /// Visits every emission in original emission order:
  /// `fn(key_words, key_arity, fingerprint, message, payload_arena)`.
  /// Used by diagnostics and the shuffle microbenchmark to replay a
  /// recorded stream; not on the engine's hot path.
  template <class Fn>
  void ForEachEmission(Fn fn) const {
    for (size_t mi = 0; mi < messages_.size(); ++mi) {
      const Group& g = groups_[group_of_[mi]];
      fn(key_arena_.data() + g.key_pos, g.key_arity, g.fingerprint,
         messages_[mi], payload_arena_.data());
    }
  }

 private:
  friend class Shuffle;

  static constexpr uint32_t kNone = UINT32_MAX;

  /// One distinct key with its chained message list, in first-seen order.
  struct Group {
    uint32_t key_pos = 0;    ///< word offset into key_arena_
    uint32_t key_arity = 0;  ///< values in the key
    uint64_t fingerprint = 0;
    uint32_t head = kNone;   ///< first message of the chain
    uint32_t tail = kNone;   ///< last message of the chain
    uint32_t count = 0;      ///< chain length
  };

  void EmitImpl(TupleView key, bool prehashed, uint64_t fingerprint,
                uint32_t tag, uint32_t aux, TupleView payload,
                double wire_bytes);
  /// Returns the group index for the key `words[0..arity)`, appending the
  /// words to the key arena when the key is new.
  uint32_t FindOrAddGroup(const uint64_t* words, uint32_t arity,
                          uint64_t fingerprint);
  void GrowTable();

  FingerprintFn fingerprint_;
  std::vector<uint64_t> key_arena_;      ///< flat words of all distinct keys
  std::vector<uint64_t> payload_arena_;  ///< spilled message payload words
  std::vector<Group> groups_;            ///< distinct keys, first-seen order
  std::vector<Message> messages_;        ///< all messages, emission order
  std::vector<uint32_t> next_;           ///< per-message chain link
  std::vector<uint32_t> group_of_;       ///< per-message owning group
  std::vector<uint32_t> table_;          ///< open addressing: group indices
  size_t table_mask_ = 0;
  uint64_t fingerprint_collisions_ = 0;
};

/// The sink handed to Mapper::Map. A concrete class, not an interface:
/// the emission path is the hottest loop in the engine and must not pay
/// a virtual dispatch per key/value.
using Emitter = MapOutputBuffer;

}  // namespace gumbo::mr

#endif  // GUMBO_MR_MAP_OUTPUT_H_
