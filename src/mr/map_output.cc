#include "mr/map_output.h"

#include <cassert>
#include <cstring>

namespace gumbo::mr {

namespace {
// Sized for a few thousand distinct keys without rehashing; one buffer
// exists per in-flight map task, so the 16 KB footprint is irrelevant
// next to the task's own output.
constexpr size_t kInitialTableSize = 4096;  // power of two
}  // namespace

MapOutputBuffer::MapOutputBuffer(FingerprintFn fingerprint)
    : fingerprint_(fingerprint), table_(kInitialTableSize, kNone),
      table_mask_(kInitialTableSize - 1) {}

void MapOutputBuffer::EmitImpl(TupleView key, bool prehashed,
                               uint64_t fingerprint, uint32_t tag,
                               uint32_t aux, TupleView payload,
                               double wire_bytes) {
  // The key arrives as flat words already (stored rows, Tuple projections
  // and shuffle payloads are all word spans) — no staging copy; the arena
  // is only written when the key turns out to be first-seen.
  const uint32_t arity = key.size();
  const uint64_t* words = key.words();
  if (!prehashed) {
    fingerprint = fingerprint_(words, arity);
  }
  const uint32_t gi = FindOrAddGroup(words, arity, fingerprint);

  Message m;
  m.tag = tag;
  m.aux = aux;
  m.wire_bytes = wire_bytes;
  if (!payload.empty()) {
    m.payload_size = payload.size();
    if (m.payload_size <= Message::kInlinePayloadValues) {
      for (uint32_t i = 0; i < m.payload_size; ++i) {
        m.inline_payload[i] = payload.words()[i];
      }
    } else {
      m.payload_pos = static_cast<uint32_t>(payload_arena_.size());
      payload_arena_.insert(payload_arena_.end(), payload.words(),
                            payload.words() + m.payload_size);
    }
  }

  const uint32_t mi = static_cast<uint32_t>(messages_.size());
  messages_.push_back(m);
  next_.push_back(kNone);
  group_of_.push_back(gi);
  Group& g = groups_[gi];
  if (g.tail == kNone) {
    g.head = mi;
  } else {
    next_[g.tail] = mi;
  }
  g.tail = mi;
  ++g.count;
}

uint32_t MapOutputBuffer::FindOrAddGroup(const uint64_t* words,
                                         uint32_t arity,
                                         uint64_t fingerprint) {
  if ((groups_.size() + 1) * 4 > table_.size() * 3) GrowTable();
  size_t idx = fingerprint & table_mask_;
  bool collided = false;
  while (table_[idx] != kNone) {
    const Group& g = groups_[table_[idx]];
    if (g.fingerprint == fingerprint) {
      if (g.key_arity == arity &&
          (arity == 0 ||
           std::memcmp(key_arena_.data() + g.key_pos, words,
                       arity * sizeof(uint64_t)) == 0)) {
        return table_[idx];
      }
      collided = true;
    }
    idx = (idx + 1) & table_mask_;
  }
  // Counted once per *inserted* key that shares a fingerprint with a
  // different existing key — re-emissions of a known key never recount.
  if (collided) ++fingerprint_collisions_;
  Group g;
  g.key_pos = static_cast<uint32_t>(key_arena_.size());
  g.key_arity = arity;
  g.fingerprint = fingerprint;
  key_arena_.insert(key_arena_.end(), words, words + arity);
  const uint32_t gi = static_cast<uint32_t>(groups_.size());
  groups_.push_back(g);
  table_[idx] = gi;
  return gi;
}

void MapOutputBuffer::GrowTable() {
  std::vector<uint32_t> old = std::move(table_);
  table_.assign(old.size() * 2, kNone);
  table_mask_ = table_.size() - 1;
  // Reinsert by fingerprint only: all stored groups are distinct keys, so
  // no compares are needed.
  for (uint32_t gi : old) {
    if (gi == kNone) continue;
    size_t idx = groups_[gi].fingerprint & table_mask_;
    while (table_[idx] != kNone) idx = (idx + 1) & table_mask_;
    table_[idx] = gi;
  }
}

void MapOutputBuffer::AccountWire(bool packed, double* wire_bytes,
                                  size_t* records) const {
  double wire = 0.0;
  for (const Message& m : messages_) wire += m.wire_bytes;
  if (packed) {
    for (const Group& g : groups_) wire += KeyWireBytes(g.key_arity);
    *records = groups_.size();
  } else {
    for (uint32_t gi : group_of_) wire += KeyWireBytes(groups_[gi].key_arity);
    *records = messages_.size();
  }
  *wire_bytes = wire;
}

}  // namespace gumbo::mr
