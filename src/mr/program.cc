#include "mr/program.h"

#include <algorithm>
#include <queue>

#include "mr/runtime.h"

namespace gumbo::mr {

size_t Program::AddJob(JobSpec spec, std::vector<size_t> deps) {
  for (size_t d : deps) {
    (void)d;
    assert(d < jobs_.size() && "dependency on a job not yet added");
  }
  jobs_.push_back(std::move(spec));
  deps_.push_back(std::move(deps));
  return jobs_.size() - 1;
}

int Program::Rounds() const {
  std::vector<int> depth(jobs_.size(), 0);
  int rounds = 0;
  // deps_ indices always point backwards, so one forward pass suffices.
  for (size_t i = 0; i < jobs_.size(); ++i) {
    int d = 1;
    for (size_t p : deps_[i]) d = std::max(d, depth[p] + 1);
    depth[i] = d;
    rounds = std::max(rounds, d);
  }
  return rounds;
}

Result<std::vector<size_t>> Program::TopologicalOrder() const {
  // Dependencies point backwards by construction (AddJob asserts), so the
  // insertion order is already topological.
  std::vector<size_t> order(jobs_.size());
  for (size_t i = 0; i < jobs_.size(); ++i) order[i] = i;
  return order;
}

std::string Program::ToString() const {
  std::string out;
  for (size_t i = 0; i < jobs_.size(); ++i) {
    out += "[" + std::to_string(i) + "] " + jobs_[i].name;
    if (!deps_[i].empty()) {
      out += " <- {";
      for (size_t k = 0; k < deps_[i].size(); ++k) {
        if (k > 0) out += ", ";
        out += std::to_string(deps_[i][k]);
      }
      out += "}";
    }
    out += "\n";
  }
  return out;
}

namespace {

// State of one job inside the scheduling simulation.
struct SimJob {
  double ready_time = 0.0;  // max over dependency finish times + overhead
  size_t maps_pending = 0;  // not yet started
  size_t maps_running = 0;
  size_t reduces_pending = 0;
  size_t reduces_running = 0;
  bool maps_done = false;
  bool done = false;
  bool propagated = false;  // completion already forwarded to successors
  double finish_time = 0.0;
  size_t next_map = 0;     // index into sorted map task costs
  size_t next_reduce = 0;  // index into sorted reduce task costs
  std::vector<double> map_costs;     // sorted descending (LPT)
  std::vector<double> reduce_costs;  // sorted descending
};

}  // namespace

double SimulateNetTime(const std::vector<JobStats>& jobs,
                       const std::vector<std::vector<size_t>>& deps,
                       const cost::ClusterConfig& config) {
  const size_t n = jobs.size();
  if (n == 0) return 0.0;

  std::vector<SimJob> sim(n);
  std::vector<std::vector<size_t>> succ(n);
  std::vector<size_t> missing_deps(n, 0);
  for (size_t i = 0; i < n; ++i) {
    sim[i].map_costs = jobs[i].map_task_costs;
    sim[i].reduce_costs = jobs[i].reduce_task_costs;
    std::sort(sim[i].map_costs.rbegin(), sim[i].map_costs.rend());
    std::sort(sim[i].reduce_costs.rbegin(), sim[i].reduce_costs.rend());
    sim[i].maps_pending = sim[i].map_costs.size();
    sim[i].reduces_pending = sim[i].reduce_costs.size();
    missing_deps[i] = deps[i].size();
    for (size_t d : deps[i]) succ[d].push_back(i);
  }

  int free_map_slots = config.TotalMapSlots();
  int free_reduce_slots = config.TotalReduceSlots();

  // Event queue: (time, kind, job, cost-of-finished-task-kind).
  enum class EventKind { kJobReady, kMapDone, kReduceDone };
  struct Event {
    double time;
    EventKind kind;
    size_t job;
  };
  auto cmp = [](const Event& a, const Event& b) {
    if (a.time != b.time) return a.time > b.time;
    // Deterministic tie-break.
    if (a.kind != b.kind) return static_cast<int>(a.kind) > static_cast<int>(b.kind);
    return a.job > b.job;
  };
  std::priority_queue<Event, std::vector<Event>, decltype(cmp)> events(cmp);

  std::vector<bool> released(n, false);
  auto release_if_ready = [&](size_t j, double now) {
    if (released[j] || missing_deps[j] != 0) return;
    released[j] = true;
    // Job startup overhead delays the first task.
    sim[j].ready_time = now + config.costs.job_overhead;
    events.push({sim[j].ready_time, EventKind::kJobReady, j});
  };
  for (size_t i = 0; i < n; ++i) release_if_ready(i, 0.0);

  double now = 0.0;
  double makespan = 0.0;

  // Starts as many pending tasks as slots allow. Jobs scanned in index
  // order (deterministic); within a job, longest task first (LPT).
  auto schedule = [&]() {
    for (size_t j = 0; j < n && free_map_slots > 0; ++j) {
      SimJob& s = sim[j];
      if (!released[j] || s.ready_time > now) continue;
      while (free_map_slots > 0 && s.maps_pending > 0) {
        double c = s.map_costs[s.next_map++];
        --s.maps_pending;
        ++s.maps_running;
        --free_map_slots;
        events.push({now + c, EventKind::kMapDone, j});
      }
    }
    for (size_t j = 0; j < n && free_reduce_slots > 0; ++j) {
      SimJob& s = sim[j];
      if (!released[j] || !s.maps_done || s.done) continue;
      while (free_reduce_slots > 0 && s.reduces_pending > 0) {
        double c = s.reduce_costs[s.next_reduce++];
        --s.reduces_pending;
        ++s.reduces_running;
        --free_reduce_slots;
        events.push({now + c, EventKind::kReduceDone, j});
      }
    }
  };

  auto maybe_finish_maps = [&](size_t j) {
    SimJob& s = sim[j];
    if (!s.maps_done && s.maps_pending == 0 && s.maps_running == 0) {
      s.maps_done = true;
      if (s.reduce_costs.empty()) {
        // Map-only job (not used by gumbo's operators, but supported).
        s.done = true;
        s.finish_time = now;
      }
    }
  };

  auto maybe_finish_job = [&](size_t j) {
    SimJob& s = sim[j];
    if (!s.done && s.maps_done && s.reduces_pending == 0 &&
        s.reduces_running == 0) {
      s.done = true;
      s.finish_time = now;
    }
  };

  while (!events.empty()) {
    Event e = events.top();
    events.pop();
    now = e.time;
    switch (e.kind) {
      case EventKind::kJobReady: {
        // Handle empty jobs (no tasks at all).
        maybe_finish_maps(e.job);
        maybe_finish_job(e.job);
        break;
      }
      case EventKind::kMapDone: {
        SimJob& s = sim[e.job];
        --s.maps_running;
        ++free_map_slots;
        maybe_finish_maps(e.job);
        break;
      }
      case EventKind::kReduceDone: {
        SimJob& s = sim[e.job];
        --s.reduces_running;
        ++free_reduce_slots;
        maybe_finish_job(e.job);
        break;
      }
    }
    if (sim[e.job].done && !sim[e.job].propagated) {
      sim[e.job].propagated = true;
      makespan = std::max(makespan, sim[e.job].finish_time);
      for (size_t v : succ[e.job]) {
        if (missing_deps[v] > 0) {
          --missing_deps[v];
          release_if_ready(v, now);
        }
      }
    }
    schedule();
  }
  return makespan;
}

Result<ProgramStats> RunProgram(const Program& program, Engine* engine,
                                Database* db) {
  return Runtime(engine).Execute(program, db);
}

}  // namespace gumbo::mr
