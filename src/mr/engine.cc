#include "mr/engine.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "common/cancel.h"
#include "common/fault.h"
#include "cost/model.h"
#include "mr/shuffle.h"

namespace gumbo::mr {

namespace {

constexpr double kMbPerByte = 1.0 / (1024.0 * 1024.0);

uint64_t NowUs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

bool Owns(const OwnedFn& owned, size_t i) { return !owned || owned(i); }

// Reduce-side sink writing straight into flat RelationBuilders — one per
// declared output — so the collect phase adopts arenas wholesale instead
// of moving tuples one by one (DESIGN.md §7). Rows are fingerprinted once
// here, at emission; the output relation never re-hashes them.
class BuilderReduceEmitter : public ReduceEmitter {
 public:
  explicit BuilderReduceEmitter(const std::vector<JobOutput>& outputs) {
    builders_.reserve(outputs.size());
    for (const JobOutput& o : outputs) builders_.emplace_back(o.arity);
  }
  void Emit(size_t output_index, const Tuple& tuple) override {
    if (output_index >= builders_.size()) {
      bad_output_ = true;  // reported as Status::Internal at the chain end
      return;
    }
    builders_[output_index].Add(tuple);
  }
  void Emit(size_t output_index, TupleView row) override {
    if (output_index >= builders_.size()) {
      bad_output_ = true;
      return;
    }
    builders_[output_index].Add(row);
  }
  /// True once a reducer emitted to an output index the job never
  /// declared — the Emit interface cannot return a Status, so the
  /// violation is latched here and promoted by the reduce chain.
  bool bad_output() const { return bad_output_; }
  std::vector<RelationBuilder>& builders() { return builders_; }

 private:
  std::vector<RelationBuilder> builders_;
  bool bad_output_ = false;
};

}  // namespace

/// Per-map-task shuffle accounting, filled by RunMaps.
struct JobExecution::TaskIo {
  double output_mb = 0.0;    // represented MB of intermediate data
  double metadata_mb = 0.0;  // represented MB of per-record metadata
  ShuffleTaskIo io;          // raw record/message counts
  uint64_t filtered = 0;     // emissions suppressed by Bloom filters
};

/// Per-reduce-partition outputs + accounting, filled by RunReduces.
struct JobExecution::ReduceOut {
  std::vector<RelationBuilder> outputs;  // [output_index] -> flat rows
  double shuffle_mb = 0.0;
  double output_mb = 0.0;
};

JobExecution::JobExecution(const Engine& engine, const JobSpec& job)
    : engine_(engine), job_(job), shuffle_(0, job.pack_messages) {}

JobExecution::~JobExecution() = default;

Result<std::unique_ptr<JobExecution>> JobExecution::Prepare(
    const Engine& engine, const JobSpec& job, const Database& db,
    const SchedContext& ctx) {
  std::unique_ptr<JobExecution> exec(new JobExecution(engine, job));
  const cost::ClusterConfig& config = engine.config();

  // Resolve the scheduling context once: every phase of this job runs on
  // the engine's scheduler, at the caller's priority, with the caller's
  // metrics sink; a zero morsel size means the engine default.
  exec->sched_ctx_ = ctx;
  exec->sched_ctx_.scheduler = &engine.scheduler();
  if (exec->sched_ctx_.morsel_rows == 0) {
    exec->sched_ctx_.morsel_rows = engine.sched_options().morsel_rows;
  }
  exec->morsel_rows_ = std::max<size_t>(1, exec->sched_ctx_.morsel_rows);

  // Failure handling (DESIGN.md §11): every morsel chain polls the
  // caller's cancellation token at its chain boundaries, and an active
  // fault injector gets a deterministic shot at each task attempt. A
  // failed attempt is abandoned before any of its output is adopted, so
  // a retry re-runs the idempotent task from its beginning and the
  // committed bytes stay identical to a fault-free run.
  if (exec->sched_ctx_.faults != nullptr && !exec->sched_ctx_.faults->active()) {
    exec->sched_ctx_.faults = nullptr;
  }
  exec->max_retries_ = engine.sched_options().max_task_retries;
  GUMBO_RETURN_IF_ERROR(CheckCancel(exec->sched_ctx_.cancel));

  if (!job.mapper_factory || !job.reducer_factory) {
    return Status::InvalidArgument("job " + job.name +
                                   ": missing mapper or reducer factory");
  }
  if (job.inputs.empty()) {
    return Status::InvalidArgument("job " + job.name + ": no inputs");
  }

  // Resolve inputs and check a consistent representation scale.
  exec->inputs_.reserve(job.inputs.size());
  double scale = -1.0;
  for (const JobInput& in : job.inputs) {
    GUMBO_ASSIGN_OR_RETURN(const Relation* rel, db.Get(in.dataset));
    if (scale < 0.0) {
      scale = rel->representation_scale();
    } else if (std::abs(scale - rel->representation_scale()) >
               1e-9 * std::max(1.0, scale)) {
      return Status::FailedPrecondition(
          "job " + job.name + ": input " + in.dataset +
          " has representation scale " +
          std::to_string(rel->representation_scale()) +
          ", expected " + std::to_string(scale));
    }
    exec->inputs_.push_back(rel);
  }
  exec->scale_ = scale;

  // ---- Plan map tasks. The split depends only on the resolved inputs
  // and the cluster config, so every shard computes the same list.
  JobStats& stats = exec->stats_;
  stats.job_name = job.name;
  stats.job_overhead = config.costs.job_overhead;
  stats.inputs.resize(job.inputs.size());
  for (size_t i = 0; i < exec->inputs_.size(); ++i) {
    const Relation* rel = exec->inputs_[i];
    double mb = rel->SizeMb();
    int ntasks = std::max(
        1, static_cast<int>(std::ceil(mb / std::max(config.split_mb, 1e-9))));
    size_t n = rel->size();
    for (int k = 0; k < ntasks; ++k) {
      MapTaskSpec t;
      t.input_index = i;
      t.begin = n * static_cast<size_t>(k) / static_cast<size_t>(ntasks);
      t.end = n * static_cast<size_t>(k + 1) / static_cast<size_t>(ntasks);
      t.input_mb = static_cast<double>(t.end - t.begin) * scale *
                   rel->bytes_per_tuple() * kMbPerByte;
      exec->tasks_.push_back(t);
    }
    stats.inputs[i].dataset = job.inputs[i].dataset;
    stats.inputs[i].input_mb = mb;
    stats.inputs[i].num_map_tasks = ntasks;
  }

  // ---- Bloom filters (DESIGN.md §5.2): built once per job from the
  // resolved inputs, before any map task runs; every mapper gets the set.
  if (job.filter_builder) {
    GUMBO_ASSIGN_OR_RETURN(FilterSet fs, job.filter_builder(exec->inputs_));
    if (!fs.empty()) {
      stats.filter_mb = fs.SizeBytes() * scale * kMbPerByte;
      stats.filter_build_cost =
          cost::FilterBuildCost(config.costs, fs.scan_mb());
      // Distributed-cache style: one filter copy shipped per node, not
      // per task (DESIGN.md §5.3).
      stats.filter_broadcast_mb =
          stats.filter_mb * static_cast<double>(config.nodes);
      exec->filters_ = std::make_shared<const FilterSet>(std::move(fs));
    }
  }

  if (exec->tasks_.size() >= (1u << 24)) {
    return Status::Internal(
        "job " + job.name + ": " + std::to_string(exec->tasks_.size()) +
        " map tasks exceed the shuffle's 24-bit task id space");
  }
  exec->shuffle_ = Shuffle(exec->tasks_.size(), job.pack_messages);
  exec->task_io_.resize(exec->tasks_.size());
  stats.map_task_costs.resize(exec->tasks_.size());
  // The filter broadcast cost is spread evenly over the map tasks so it
  // enters the net-time simulation (DESIGN.md §5.3).
  exec->broadcast_cost_per_task_ =
      exec->filters_ != nullptr && !exec->tasks_.empty()
          ? cost::FilterBroadcastCost(config.costs, stats.filter_mb,
                                      config.nodes) /
                static_cast<double>(exec->tasks_.size())
          : 0.0;
  return exec;
}

double JobExecution::TotalInputMb() const {
  double total = 0.0;
  for (const MapTaskSpec& t : tasks_) total += t.input_mb;
  return total;
}

Status JobExecution::RunMaps(const OwnedFn& owned) {
  const double meta_bytes = engine_.config().costs.metadata_bytes_per_record;
  const double overhead = job_.intermediate_overhead_factor;
  const CancelToken* cancel = sched_ctx_.cancel;
  const FaultInjector* faults = sched_ctx_.faults;

  // Each map task runs as a *chain* of row-range morsels (DESIGN.md §9):
  // the chain shares one mapper + emission buffer, and each morsel
  // resubmits the next one, so the task's emission order — and therefore
  // its combined/packed wire bytes and every downstream byte — is
  // exactly the sequential order, while the scheduler is free to
  // interleave other queries' morsels between any two of ours.
  struct MapChain {
    size_t ti = 0;
    size_t next_row = 0;
    uint32_t attempt = 0;
    uint64_t attempt_start_us = 0;
    std::unique_ptr<Mapper> mapper;
    std::unique_ptr<Combiner> combiner;
    MapOutputBuffer emitter;
    Status status;  ///< this chain's terminal failure, if any
  };
  std::vector<MapChain> chains(tasks_.size());
  // Cancellation and fault escalation abort the whole phase: sibling
  // chains stop resubmitting at their next morsel boundary and the
  // group drains. Nothing was adopted by a chain that didn't finish,
  // and the job result is discarded on error, so stopping early never
  // leaks partial state.
  std::atomic<bool> abort{false};
  Scheduler::TaskGroup group(sched_ctx_);
  // Arms (or, after an injected fault, re-arms) one map task attempt:
  // scan position back to the task's first row, fresh operators, fresh
  // emission buffer — a retried attempt is indistinguishable from a
  // first run, which is what keeps retries byte-identical.
  auto arm = [&](MapChain& c) {
    c.next_row = tasks_[c.ti].begin;
    c.mapper = job_.mapper_factory();
    if (filters_ != nullptr) c.mapper->AttachFilters(filters_.get());
    if (job_.combiner_factory) c.combiner = job_.combiner_factory();
    c.emitter = MapOutputBuffer();
    if (faults != nullptr) c.attempt_start_us = NowUs();
  };
  std::function<void(size_t)> step = [&](size_t ti) {
    if (abort.load(std::memory_order_relaxed)) return;
    MapChain& c = chains[ti];
    if (const Status cs = CheckCancel(cancel); !cs.ok()) {
      abort.store(true, std::memory_order_relaxed);
      return;
    }
    const MapTaskSpec& t = tasks_[ti];
    const Relation* rel = inputs_[t.input_index];
    const size_t stop = std::min(t.end, c.next_row + morsel_rows_);
    for (size_t j = c.next_row; j < stop; ++j) {
      // Zero-copy scan: the mapper sees the stored flat row with its
      // precomputed fingerprint (DESIGN.md §7).
      c.mapper->Map(t.input_index, rel->view(j), static_cast<uint64_t>(j),
                    &c.emitter);
    }
    c.next_row = stop;
    // The fault check runs after the morsel's rows, so an injected
    // fault always abandons an attempt that did real partial work —
    // the adversarial case for the discard-then-retry contract.
    if (faults != nullptr &&
        faults->ShouldFail(FaultSite::kMapScan, ti, c.attempt)) {
      retry_counters_.faults_injected.fetch_add(1, std::memory_order_relaxed);
      retry_counters_.retry_us.fetch_add(NowUs() - c.attempt_start_us,
                                         std::memory_order_relaxed);
      if (c.attempt >= max_retries_) {
        c.status =
            FaultInjector::InjectedFault(FaultSite::kMapScan, ti, c.attempt);
        abort.store(true, std::memory_order_relaxed);
        return;
      }
      retry_counters_.task_retries.fetch_add(1, std::memory_order_relaxed);
      ++c.attempt;
      arm(c);
      group.Submit([&step, ti] { step(ti); });
      return;
    }
    if (stop < t.end) {
      group.Submit([&step, ti] { step(ti); });
      return;
    }
    Result<ShuffleTaskIo> io_or =
        shuffle_.AddTaskOutput(ti, std::move(c.emitter), c.combiner.get());
    if (!io_or.ok()) {
      c.status = io_or.status();
      abort.store(true, std::memory_order_relaxed);
      return;
    }
    const ShuffleTaskIo& io = *io_or;
    task_io_[ti].output_mb = io.wire_bytes * overhead * scale_ * kMbPerByte;
    task_io_[ti].metadata_mb =
        static_cast<double>(io.records) * meta_bytes * scale_ * kMbPerByte;
    task_io_[ti].io = io;
    task_io_[ti].filtered = c.mapper->SuppressedEmissions();
  };
  for (size_t ti = 0; ti < tasks_.size(); ++ti) {
    if (!Owns(owned, ti)) continue;
    MapChain& c = chains[ti];
    c.ti = ti;
    arm(c);
    group.Submit([&step, ti] { step(ti); });
  }
  group.Wait();
  GUMBO_RETURN_IF_ERROR(CheckCancel(cancel));
  // Lowest recorded failure wins. The status *code* is deterministic
  // for a fixed fault seed; the reported task may vary when the abort
  // raced a sibling's own exhaustion, which only affects the message.
  for (const MapChain& c : chains) {
    GUMBO_RETURN_IF_ERROR(c.status);
  }
  return Status::Ok();
}

void JobExecution::AccountMaps(const OwnedFn& owned) {
  const double overhead = job_.intermediate_overhead_factor;
  // Per-input aggregates and per-task map costs, over the owned tasks
  // only: unowned slots stay zero, so a coordinator reconstructs the
  // global vectors by element-wise summing the shards' disjoint fills.
  for (size_t ti = 0; ti < tasks_.size(); ++ti) {
    if (!Owns(owned, ti)) continue;
    const MapTaskSpec& t = tasks_[ti];
    InputStats& is = stats_.inputs[t.input_index];
    is.output_mb += task_io_[ti].output_mb;
    is.metadata_mb += task_io_[ti].metadata_mb;
    stats_.shuffle_mb += task_io_[ti].output_mb;
    stats_.hdfs_read_mb += t.input_mb;
    cost::MapPartition p;
    p.input_mb = t.input_mb;
    p.output_mb = task_io_[ti].output_mb;
    p.metadata_mb = task_io_[ti].metadata_mb;
    p.num_mappers = 1;
    stats_.map_task_costs[ti] =
        cost::MapCost(engine_.config().costs, p) + broadcast_cost_per_task_;
    stats_.shuffle_records += task_io_[ti].io.records;
    stats_.shuffle_messages += task_io_[ti].io.messages;
    stats_.fingerprint_collisions += task_io_[ti].io.fingerprint_collisions;
    stats_.combined_messages += task_io_[ti].io.combined_messages;
    stats_.combined_mb +=
        task_io_[ti].io.combined_bytes * overhead * scale_ * kMbPerByte;
    stats_.filtered_messages += task_io_[ti].filtered;
  }
}

double JobExecution::OwnedIntermediateMb(const OwnedFn& owned) const {
  double total = 0.0;
  for (size_t ti = 0; ti < tasks_.size(); ++ti) {
    if (Owns(owned, ti)) total += task_io_[ti].output_mb;
  }
  return total;
}

int JobExecution::ChooseReducers(double total_intermediate_mb,
                                 double total_input_mb) const {
  const cost::ClusterConfig& config = engine_.config();
  int r = 1;
  switch (job_.reducer_allocation) {
    case ReducerAllocation::kByIntermediateSize:
      r = std::max(1, static_cast<int>(std::ceil(total_intermediate_mb /
                                                 config.mb_per_reducer)));
      break;
    case ReducerAllocation::kByMapInputSize:
      // Pig's 1 GB of map input per reducer; expressed relative to the
      // cluster's (possibly scaled) 256 MB intermediate allocation.
      r = std::max(1, static_cast<int>(std::ceil(
                          total_input_mb / (4.0 * config.mb_per_reducer))));
      break;
    case ReducerAllocation::kFixed:
      r = std::max(1, job_.fixed_num_reducers);
      break;
  }
  return r;
}

Status JobExecution::Partition(int num_reducers) {
  stats_.num_reducers = num_reducers;
  red_.resize(static_cast<size_t>(num_reducers));
  return shuffle_.Partition(num_reducers, sched_ctx_.scheduler, sched_ctx_,
                            max_retries_, &retry_counters_);
}

Status JobExecution::RunReduces(const OwnedFn& owned) {
  const size_t r = red_.size();
  const CancelToken* cancel = sched_ctx_.cancel;
  const FaultInjector* faults = sched_ctx_.faults;

  // Reduce tasks chain like map tasks: one reducer + emitter per
  // partition, each morsel consuming a bounded budget of whole key groups
  // via the shuffle's resumable cursor, so key order and per-partition
  // output order are exactly the sequential walk's.
  struct ReduceChain {
    std::unique_ptr<Reducer> reducer;
    std::unique_ptr<BuilderReduceEmitter> emitter;
    Shuffle::GroupCursor cursor;
    uint32_t attempt = 0;
    uint64_t attempt_start_us = 0;
    Status status;  ///< this chain's terminal failure, if any
  };
  std::vector<ReduceChain> chains(r);
  std::atomic<bool> abort{false};
  Scheduler::TaskGroup group(sched_ctx_);
  // Fresh reducer + emitter + cursor per attempt: outputs are adopted
  // only when the whole partition walked cleanly, so re-walking after
  // an injected fault is idempotent (same groups, same order).
  auto arm = [&](ReduceChain& c) {
    c.reducer = job_.reducer_factory();
    c.emitter = std::make_unique<BuilderReduceEmitter>(job_.outputs);
    c.cursor = Shuffle::GroupCursor();
    if (faults != nullptr) c.attempt_start_us = NowUs();
  };
  std::function<void(size_t)> step = [&](size_t rj) {
    if (abort.load(std::memory_order_relaxed)) return;
    ReduceChain& c = chains[rj];
    if (const Status cs = CheckCancel(cancel); !cs.ok()) {
      abort.store(true, std::memory_order_relaxed);
      return;
    }
    const bool more = shuffle_.ForEachGroupChunk(
        rj, &c.cursor, morsel_rows_,
        [&](TupleView key, const MessageGroup& values) {
          c.reducer->Reduce(key, values, c.emitter.get());
        });
    if (c.emitter->bad_output()) {
      c.status = Status::Internal(
          "job " + job_.name + ": reducer emitted to an output index >= " +
          std::to_string(job_.outputs.size()) + " (partition " +
          std::to_string(rj) + ")");
      abort.store(true, std::memory_order_relaxed);
      return;
    }
    if (faults != nullptr &&
        faults->ShouldFail(FaultSite::kReduceEmit, rj, c.attempt)) {
      retry_counters_.faults_injected.fetch_add(1, std::memory_order_relaxed);
      retry_counters_.retry_us.fetch_add(NowUs() - c.attempt_start_us,
                                         std::memory_order_relaxed);
      if (c.attempt >= max_retries_) {
        c.status = FaultInjector::InjectedFault(FaultSite::kReduceEmit, rj,
                                                c.attempt);
        abort.store(true, std::memory_order_relaxed);
        return;
      }
      retry_counters_.task_retries.fetch_add(1, std::memory_order_relaxed);
      ++c.attempt;
      arm(c);
      group.Submit([&step, rj] { step(rj); });
      return;
    }
    if (more) {
      group.Submit([&step, rj] { step(rj); });
      return;
    }
    ReduceOut& out = red_[rj];
    out.shuffle_mb = shuffle_.PartitionWireBytes(rj) *
                     job_.intermediate_overhead_factor * scale_ * kMbPerByte;
    out.outputs = std::move(c.emitter->builders());
    for (size_t oi = 0; oi < job_.outputs.size(); ++oi) {
      const JobOutput& spec = job_.outputs[oi];
      double bpt =
          spec.bytes_per_tuple > 0.0 ? spec.bytes_per_tuple : 10.0 * spec.arity;
      out.output_mb += static_cast<double>(out.outputs[oi].size()) * scale_ *
                       bpt * kMbPerByte;
    }
  };
  for (size_t rj = 0; rj < r; ++rj) {
    if (!Owns(owned, rj)) continue;
    arm(chains[rj]);
    group.Submit([&step, rj] { step(rj); });
  }
  group.Wait();
  GUMBO_RETURN_IF_ERROR(CheckCancel(cancel));
  for (const ReduceChain& c : chains) {
    GUMBO_RETURN_IF_ERROR(c.status);
  }
  return Status::Ok();
}

void JobExecution::AccountReduces(const OwnedFn& owned) {
  stats_.reduce_task_costs.resize(red_.size());
  for (size_t rj = 0; rj < red_.size(); ++rj) {
    if (!Owns(owned, rj)) continue;
    stats_.reduce_task_costs[rj] =
        cost::ReduceCost(engine_.config().costs, red_[rj].shuffle_mb,
                         red_[rj].output_mb, /*num_reducers=*/1);
    stats_.hdfs_write_mb += red_[rj].output_mb;
    received_mb_ += red_[rj].shuffle_mb;
  }
}

void JobExecution::FinalizeCounters() {
  stats_.task_retries =
      retry_counters_.task_retries.load(std::memory_order_relaxed);
  stats_.faults_injected =
      retry_counters_.faults_injected.load(std::memory_order_relaxed);
  stats_.retry_ms =
      static_cast<double>(
          retry_counters_.retry_us.load(std::memory_order_relaxed)) /
      1000.0;
}

std::vector<RelationBuilder> JobExecution::TakeReduceOutputs(size_t rj) {
  return std::move(red_[rj].outputs);
}

Result<Engine::JobResult> JobExecution::Finish() {
  // Reconciliation: the reduce-side partition totals only feed per-task
  // cost attribution; the bytes metric itself is the map-side
  // stats.shuffle_mb (the single source of truth, see mr/stats.h). The
  // two views must agree — every shuffled byte lands in exactly one
  // partition — and the invariant is enforced in Release builds too, so
  // CI's Release matrix catches accounting drift.
  if (std::abs(received_mb_ - stats_.shuffle_mb) >
      1e-6 * std::max(1.0, stats_.shuffle_mb)) {
    return Status::Internal(
        "job " + job_.name +
        ": map-side and reduce-side shuffle accounting diverged (map " +
        std::to_string(stats_.shuffle_mb) + " MB, reduce " +
        std::to_string(received_mb_) + " MB)");
  }

  // ---- Collect outputs.
  // Reduce tasks produced flat builders; the first non-empty builder's
  // arenas are moved into the relation wholesale, the rest are appended
  // with bulk copies — never tuple-by-tuple (DESIGN.md §7).
  Engine::JobResult result;
  result.outputs.reserve(job_.outputs.size());
  for (size_t oi = 0; oi < job_.outputs.size(); ++oi) {
    const JobOutput& spec = job_.outputs[oi];
    Relation out(spec.dataset, spec.arity);
    if (spec.bytes_per_tuple > 0.0) out.set_bytes_per_tuple(spec.bytes_per_tuple);
    out.set_representation_scale(scale_);
    size_t total = 0;
    for (const auto& rt : red_) total += rt.outputs[oi].size();
    for (auto& rt : red_) {
      const bool first_move = out.empty() && !rt.outputs[oi].empty();
      out.Adopt(std::move(rt.outputs[oi]));
      // Reserve for the remaining appends only after the wholesale move
      // of the first arena (reserving earlier would defeat the move).
      if (first_move) out.Reserve(total - out.size());
    }
    if (spec.dedupe) out.SortAndDedupe(sched_ctx_.scheduler, &sched_ctx_);
    result.outputs.push_back(std::move(out));
  }

  FinalizeCounters();
  result.stats = std::move(stats_);
  return result;
}

Result<Engine::JobResult> Engine::RunDetached(const JobSpec& job,
                                              const Database& db,
                                              const SchedContext& ctx) const {
  GUMBO_ASSIGN_OR_RETURN(std::unique_ptr<JobExecution> exec,
                         JobExecution::Prepare(*this, job, db, ctx));
  GUMBO_RETURN_IF_ERROR(exec->RunMaps());
  exec->AccountMaps();
  const int r =
      exec->ChooseReducers(exec->OwnedIntermediateMb(), exec->TotalInputMb());
  GUMBO_RETURN_IF_ERROR(exec->Partition(r));
  GUMBO_RETURN_IF_ERROR(exec->RunReduces());
  exec->AccountReduces();
  return exec->Finish();
}

Result<JobStats> Engine::Run(const JobSpec& job, Database* db,
                             const SchedContext& ctx) const {
  GUMBO_ASSIGN_OR_RETURN(JobResult result, RunDetached(job, *db, ctx));
  for (Relation& out : result.outputs) {
    db->Put(std::move(out));
  }
  return std::move(result.stats);
}

}  // namespace gumbo::mr
