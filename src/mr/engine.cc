#include "mr/engine.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <memory>
#include <vector>

#include "cost/model.h"
#include "mr/shuffle.h"

namespace gumbo::mr {

namespace {

constexpr double kMbPerByte = 1.0 / (1024.0 * 1024.0);

// One map task: a contiguous slice of one input relation.
struct MapTaskSpec {
  size_t input_index = 0;
  size_t begin = 0;
  size_t end = 0;
  double input_mb = 0.0;
};

// Reduce-side sink writing straight into flat RelationBuilders — one per
// declared output — so the collect phase adopts arenas wholesale instead
// of moving tuples one by one (DESIGN.md §7). Rows are fingerprinted once
// here, at emission; the output relation never re-hashes them.
class BuilderReduceEmitter : public ReduceEmitter {
 public:
  explicit BuilderReduceEmitter(const std::vector<JobOutput>& outputs) {
    builders_.reserve(outputs.size());
    for (const JobOutput& o : outputs) builders_.emplace_back(o.arity);
  }
  void Emit(size_t output_index, const Tuple& tuple) override {
    assert(output_index < builders_.size());
    builders_[output_index].Add(tuple);
  }
  void Emit(size_t output_index, TupleView row) override {
    assert(output_index < builders_.size());
    builders_[output_index].Add(row);
  }
  std::vector<RelationBuilder>& builders() { return builders_; }

 private:
  std::vector<RelationBuilder> builders_;
};

}  // namespace

Result<Engine::JobResult> Engine::RunDetached(const JobSpec& job,
                                              const Database& db,
                                              const SchedContext& ctx) const {
  // Resolve the scheduling context once: every phase of this job runs on
  // the engine's scheduler, at the caller's priority, with the caller's
  // metrics sink; a zero morsel size means the engine default.
  SchedContext sched_ctx = ctx;
  sched_ctx.scheduler = &scheduler();
  if (sched_ctx.morsel_rows == 0) {
    sched_ctx.morsel_rows = sched_options_.morsel_rows;
  }
  const size_t morsel_rows = std::max<size_t>(1, sched_ctx.morsel_rows);

  if (!job.mapper_factory || !job.reducer_factory) {
    return Status::InvalidArgument("job " + job.name +
                                   ": missing mapper or reducer factory");
  }
  if (job.inputs.empty()) {
    return Status::InvalidArgument("job " + job.name + ": no inputs");
  }

  // Resolve inputs and check a consistent representation scale.
  std::vector<const Relation*> inputs;
  inputs.reserve(job.inputs.size());
  double scale = -1.0;
  for (const JobInput& in : job.inputs) {
    GUMBO_ASSIGN_OR_RETURN(const Relation* rel, db.Get(in.dataset));
    if (scale < 0.0) {
      scale = rel->representation_scale();
    } else if (std::abs(scale - rel->representation_scale()) >
               1e-9 * std::max(1.0, scale)) {
      return Status::FailedPrecondition(
          "job " + job.name + ": input " + in.dataset +
          " has representation scale " +
          std::to_string(rel->representation_scale()) +
          ", expected " + std::to_string(scale));
    }
    inputs.push_back(rel);
  }

  // ---- Plan map tasks -----------------------------------------------------
  std::vector<MapTaskSpec> tasks;
  JobResult result;
  JobStats& stats = result.stats;
  stats.job_name = job.name;
  stats.job_overhead = config_.costs.job_overhead;
  stats.inputs.resize(job.inputs.size());
  for (size_t i = 0; i < inputs.size(); ++i) {
    const Relation* rel = inputs[i];
    double mb = rel->SizeMb();
    int ntasks = std::max(
        1, static_cast<int>(std::ceil(mb / std::max(config_.split_mb, 1e-9))));
    size_t n = rel->size();
    for (int k = 0; k < ntasks; ++k) {
      MapTaskSpec t;
      t.input_index = i;
      t.begin = n * static_cast<size_t>(k) / static_cast<size_t>(ntasks);
      t.end = n * static_cast<size_t>(k + 1) / static_cast<size_t>(ntasks);
      t.input_mb = static_cast<double>(t.end - t.begin) * scale *
                   rel->bytes_per_tuple() * kMbPerByte;
      tasks.push_back(t);
    }
    stats.inputs[i].dataset = job.inputs[i].dataset;
    stats.inputs[i].input_mb = mb;
    stats.inputs[i].num_map_tasks = ntasks;
  }

  // ---- Bloom filters (DESIGN.md §5.2): built once per job from the
  // resolved inputs, before any map task runs; every mapper gets the set.
  std::shared_ptr<const FilterSet> filters;
  if (job.filter_builder) {
    GUMBO_ASSIGN_OR_RETURN(FilterSet fs, job.filter_builder(inputs));
    if (!fs.empty()) {
      stats.filter_mb = fs.SizeBytes() * scale * kMbPerByte;
      stats.filter_build_cost =
          cost::FilterBuildCost(config_.costs, fs.scan_mb());
      // Distributed-cache style: one filter copy shipped per node, not
      // per task (DESIGN.md §5.3).
      stats.filter_broadcast_mb =
          stats.filter_mb * static_cast<double>(config_.nodes);
      filters = std::make_shared<const FilterSet>(std::move(fs));
    }
  }

  // ---- Map phase (two passes when reducer count depends on intermediate
  // size: we must know the total before partitioning; the shuffle buffers
  // per-task records and buckets them once `r` is known) -------------------
  const double meta_bytes = config_.costs.metadata_bytes_per_record;
  const double overhead = job.intermediate_overhead_factor;

  Shuffle shuffle(tasks.size(), job.pack_messages);
  struct TaskAccounting {
    double output_mb = 0.0;    // represented MB of intermediate data
    double metadata_mb = 0.0;  // represented MB of per-record metadata
    ShuffleTaskIo io;          // raw record/message counts
    uint64_t filtered = 0;     // emissions suppressed by Bloom filters
  };
  std::vector<TaskAccounting> task_io(tasks.size());

  // Each map task runs as a *chain* of row-range morsels (DESIGN.md §9):
  // the chain shares one mapper + emission buffer, and each morsel
  // resubmits the next one, so the task's emission order — and therefore
  // its combined/packed wire bytes and every downstream byte — is
  // exactly the sequential order, while the scheduler is free to
  // interleave other queries' morsels between any two of ours.
  {
    struct MapChain {
      size_t ti = 0;
      size_t next_row = 0;
      std::unique_ptr<Mapper> mapper;
      std::unique_ptr<Combiner> combiner;
      MapOutputBuffer emitter;
    };
    std::vector<MapChain> chains(tasks.size());
    Scheduler::TaskGroup group(sched_ctx);
    std::function<void(size_t)> step = [&](size_t ti) {
      MapChain& c = chains[ti];
      const MapTaskSpec& t = tasks[ti];
      const Relation* rel = inputs[t.input_index];
      const size_t stop = std::min(t.end, c.next_row + morsel_rows);
      for (size_t j = c.next_row; j < stop; ++j) {
        // Zero-copy scan: the mapper sees the stored flat row with its
        // precomputed fingerprint (DESIGN.md §7).
        c.mapper->Map(t.input_index, rel->view(j), static_cast<uint64_t>(j),
                      &c.emitter);
      }
      c.next_row = stop;
      if (stop < t.end) {
        group.Submit([&step, ti] { step(ti); });
        return;
      }
      ShuffleTaskIo io =
          shuffle.AddTaskOutput(ti, std::move(c.emitter), c.combiner.get());
      task_io[ti].output_mb = io.wire_bytes * overhead * scale * kMbPerByte;
      task_io[ti].metadata_mb =
          static_cast<double>(io.records) * meta_bytes * scale * kMbPerByte;
      task_io[ti].io = io;
      task_io[ti].filtered = c.mapper->SuppressedEmissions();
    };
    for (size_t ti = 0; ti < tasks.size(); ++ti) {
      MapChain& c = chains[ti];
      c.ti = ti;
      c.next_row = tasks[ti].begin;
      c.mapper = job.mapper_factory();
      if (filters != nullptr) c.mapper->AttachFilters(filters.get());
      if (job.combiner_factory) c.combiner = job.combiner_factory();
      group.Submit([&step, ti] { step(ti); });
    }
    group.Wait();
  }

  // Per-input aggregates and per-task map costs.
  double total_intermediate_mb = 0.0;
  double total_input_mb = 0.0;
  stats.map_task_costs.resize(tasks.size());
  // The filter broadcast cost is spread evenly over the map tasks so it
  // enters the net-time simulation (DESIGN.md §5.3).
  const double broadcast_cost =
      filters != nullptr && !tasks.empty()
          ? cost::FilterBroadcastCost(config_.costs, stats.filter_mb,
                                      config_.nodes) /
                static_cast<double>(tasks.size())
          : 0.0;
  for (size_t ti = 0; ti < tasks.size(); ++ti) {
    const MapTaskSpec& t = tasks[ti];
    InputStats& is = stats.inputs[t.input_index];
    is.output_mb += task_io[ti].output_mb;
    is.metadata_mb += task_io[ti].metadata_mb;
    total_intermediate_mb += task_io[ti].output_mb;
    total_input_mb += t.input_mb;
    cost::MapPartition p;
    p.input_mb = t.input_mb;
    p.output_mb = task_io[ti].output_mb;
    p.metadata_mb = task_io[ti].metadata_mb;
    p.num_mappers = 1;
    stats.map_task_costs[ti] = cost::MapCost(config_.costs, p) + broadcast_cost;
    stats.shuffle_records += task_io[ti].io.records;
    stats.shuffle_messages += task_io[ti].io.messages;
    stats.fingerprint_collisions += task_io[ti].io.fingerprint_collisions;
    stats.combined_messages += task_io[ti].io.combined_messages;
    stats.combined_mb +=
        task_io[ti].io.combined_bytes * overhead * scale * kMbPerByte;
    stats.filtered_messages += task_io[ti].filtered;
  }
  stats.hdfs_read_mb = total_input_mb;
  stats.shuffle_mb = total_intermediate_mb;

  // ---- Choose reducer count ----------------------------------------------
  int r = 1;
  switch (job.reducer_allocation) {
    case ReducerAllocation::kByIntermediateSize:
      r = std::max(1, static_cast<int>(std::ceil(
                          total_intermediate_mb / config_.mb_per_reducer)));
      break;
    case ReducerAllocation::kByMapInputSize:
      // Pig's 1 GB of map input per reducer; expressed relative to the
      // cluster's (possibly scaled) 256 MB intermediate allocation.
      r = std::max(1, static_cast<int>(std::ceil(
                          total_input_mb / (4.0 * config_.mb_per_reducer))));
      break;
    case ReducerAllocation::kFixed:
      r = std::max(1, job.fixed_num_reducers);
      break;
  }
  stats.num_reducers = r;

  // ---- Partition + reduce phase -------------------------------------------
  shuffle.Partition(r, sched_ctx.scheduler, sched_ctx);

  struct ReduceTaskOut {
    std::vector<RelationBuilder> outputs;  // [output_index] -> flat rows
    double shuffle_mb = 0.0;
    double output_mb = 0.0;
  };
  std::vector<ReduceTaskOut> red(static_cast<size_t>(r));

  // Reduce tasks chain like map tasks: one reducer + emitter per
  // partition, each morsel consuming a bounded budget of whole key groups
  // via the shuffle's resumable cursor, so key order and per-partition
  // output order are exactly the sequential walk's.
  {
    struct ReduceChain {
      std::unique_ptr<Reducer> reducer;
      std::unique_ptr<BuilderReduceEmitter> emitter;
      Shuffle::GroupCursor cursor;
    };
    std::vector<ReduceChain> chains(static_cast<size_t>(r));
    Scheduler::TaskGroup group(sched_ctx);
    std::function<void(size_t)> step = [&](size_t rj) {
      ReduceChain& c = chains[rj];
      const bool more = shuffle.ForEachGroupChunk(
          rj, &c.cursor, morsel_rows,
          [&](TupleView key, const MessageGroup& values) {
            c.reducer->Reduce(key, values, c.emitter.get());
          });
      if (more) {
        group.Submit([&step, rj] { step(rj); });
        return;
      }
      ReduceTaskOut& out = red[rj];
      out.shuffle_mb =
          shuffle.PartitionWireBytes(rj) * overhead * scale * kMbPerByte;
      out.outputs = std::move(c.emitter->builders());
      for (size_t oi = 0; oi < job.outputs.size(); ++oi) {
        const JobOutput& spec = job.outputs[oi];
        double bpt = spec.bytes_per_tuple > 0.0 ? spec.bytes_per_tuple
                                                : 10.0 * spec.arity;
        out.output_mb += static_cast<double>(out.outputs[oi].size()) * scale *
                         bpt * kMbPerByte;
      }
    };
    for (size_t rj = 0; rj < static_cast<size_t>(r); ++rj) {
      chains[rj].reducer = job.reducer_factory();
      chains[rj].emitter = std::make_unique<BuilderReduceEmitter>(job.outputs);
      group.Submit([&step, rj] { step(rj); });
    }
    group.Wait();
  }

  stats.reduce_task_costs.resize(static_cast<size_t>(r));
  double total_output_mb = 0.0;
  double received_mb = 0.0;
  for (int rj = 0; rj < r; ++rj) {
    stats.reduce_task_costs[static_cast<size_t>(rj)] = cost::ReduceCost(
        config_.costs, red[static_cast<size_t>(rj)].shuffle_mb,
        red[static_cast<size_t>(rj)].output_mb, /*num_reducers=*/1);
    total_output_mb += red[static_cast<size_t>(rj)].output_mb;
    received_mb += red[static_cast<size_t>(rj)].shuffle_mb;
  }
  // Reconciliation: the reduce-side partition totals only feed per-task
  // cost attribution; the bytes metric itself is the map-side
  // stats.shuffle_mb (the single source of truth, see mr/stats.h). The
  // two views must agree — every shuffled byte lands in exactly one
  // partition — and the invariant is enforced in Release builds too, so
  // CI's Release matrix catches accounting drift.
  if (std::abs(received_mb - stats.shuffle_mb) >
      1e-6 * std::max(1.0, stats.shuffle_mb)) {
    return Status::Internal(
        "job " + job.name +
        ": map-side and reduce-side shuffle accounting diverged (map " +
        std::to_string(stats.shuffle_mb) + " MB, reduce " +
        std::to_string(received_mb) + " MB)");
  }
  stats.hdfs_write_mb = total_output_mb;

  // ---- Collect outputs -----------------------------------------------------
  // Reduce tasks produced flat builders; the first non-empty builder's
  // arenas are moved into the relation wholesale, the rest are appended
  // with bulk copies — never tuple-by-tuple (DESIGN.md §7).
  result.outputs.reserve(job.outputs.size());
  for (size_t oi = 0; oi < job.outputs.size(); ++oi) {
    const JobOutput& spec = job.outputs[oi];
    Relation out(spec.dataset, spec.arity);
    if (spec.bytes_per_tuple > 0.0) out.set_bytes_per_tuple(spec.bytes_per_tuple);
    out.set_representation_scale(scale);
    size_t total = 0;
    for (const auto& rt : red) total += rt.outputs[oi].size();
    for (auto& rt : red) {
      const bool first_move = out.empty() && !rt.outputs[oi].empty();
      out.Adopt(std::move(rt.outputs[oi]));
      // Reserve for the remaining appends only after the wholesale move
      // of the first arena (reserving earlier would defeat the move).
      if (first_move) out.Reserve(total - out.size());
    }
    if (spec.dedupe) out.SortAndDedupe(sched_ctx.scheduler, &sched_ctx);
    result.outputs.push_back(std::move(out));
  }

  return result;
}

Result<JobStats> Engine::Run(const JobSpec& job, Database* db,
                             const SchedContext& ctx) const {
  GUMBO_ASSIGN_OR_RETURN(JobResult result, RunDetached(job, *db, ctx));
  for (Relation& out : result.outputs) {
    db->Put(std::move(out));
  }
  return std::move(result.stats);
}

}  // namespace gumbo::mr
