#include "mr/engine.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>
#include <vector>

#include "common/thread_pool.h"
#include "cost/model.h"

namespace gumbo::mr {

namespace {

constexpr double kMbPerByte = 1.0 / (1024.0 * 1024.0);

// One map task: a contiguous slice of one input relation.
struct MapTaskSpec {
  size_t input_index = 0;
  size_t begin = 0;
  size_t end = 0;
  double input_mb = 0.0;
};

// A packed shuffle record: one key plus all messages a map task emitted
// for it (a singleton list per message when packing is disabled).
struct PackedRecord {
  Tuple key;
  std::vector<Message> values;
  double wire_bytes = 0.0;  // key bytes + value bytes (per materialized rec)
};

// Map task result: records pre-partitioned by reducer.
struct MapTaskResult {
  std::vector<std::vector<PackedRecord>> buckets;  // [reducer] -> records
  double output_mb = 0.0;    // represented MB of intermediate data
  double metadata_mb = 0.0;  // represented MB of per-record metadata
};

class VectorMapEmitter : public MapEmitter {
 public:
  void Emit(Tuple key, Message value) override {
    buffer_.push_back({std::move(key), std::move(value)});
  }
  std::vector<KeyValue>& buffer() { return buffer_; }

 private:
  std::vector<KeyValue> buffer_;
};

class VectorReduceEmitter : public ReduceEmitter {
 public:
  explicit VectorReduceEmitter(size_t num_outputs) : outputs_(num_outputs) {}
  void Emit(size_t output_index, Tuple tuple) override {
    assert(output_index < outputs_.size());
    outputs_[output_index].push_back(std::move(tuple));
  }
  std::vector<std::vector<Tuple>>& outputs() { return outputs_; }

 private:
  std::vector<std::vector<Tuple>> outputs_;
};

}  // namespace

Result<JobStats> Engine::Run(const JobSpec& job, Database* db) {
  if (!job.mapper_factory || !job.reducer_factory) {
    return Status::InvalidArgument("job " + job.name +
                                   ": missing mapper or reducer factory");
  }
  if (job.inputs.empty()) {
    return Status::InvalidArgument("job " + job.name + ": no inputs");
  }

  // Resolve inputs and check a consistent representation scale.
  std::vector<const Relation*> inputs;
  inputs.reserve(job.inputs.size());
  double scale = -1.0;
  for (const JobInput& in : job.inputs) {
    GUMBO_ASSIGN_OR_RETURN(const Relation* rel, db->Get(in.dataset));
    if (scale < 0.0) {
      scale = rel->representation_scale();
    } else if (std::abs(scale - rel->representation_scale()) >
               1e-9 * std::max(1.0, scale)) {
      return Status::FailedPrecondition(
          "job " + job.name + ": input " + in.dataset +
          " has representation scale " +
          std::to_string(rel->representation_scale()) +
          ", expected " + std::to_string(scale));
    }
    inputs.push_back(rel);
  }

  // ---- Plan map tasks -----------------------------------------------------
  std::vector<MapTaskSpec> tasks;
  JobStats stats;
  stats.job_name = job.name;
  stats.job_overhead = config_.costs.job_overhead;
  stats.inputs.resize(job.inputs.size());
  for (size_t i = 0; i < inputs.size(); ++i) {
    const Relation* rel = inputs[i];
    double mb = rel->SizeMb();
    int ntasks = std::max(
        1, static_cast<int>(std::ceil(mb / std::max(config_.split_mb, 1e-9))));
    size_t n = rel->size();
    for (int k = 0; k < ntasks; ++k) {
      MapTaskSpec t;
      t.input_index = i;
      t.begin = n * static_cast<size_t>(k) / static_cast<size_t>(ntasks);
      t.end = n * static_cast<size_t>(k + 1) / static_cast<size_t>(ntasks);
      t.input_mb = static_cast<double>(t.end - t.begin) * scale *
                   rel->bytes_per_tuple() * kMbPerByte;
      tasks.push_back(t);
    }
    stats.inputs[i].dataset = job.inputs[i].dataset;
    stats.inputs[i].input_mb = mb;
    stats.inputs[i].num_map_tasks = ntasks;
  }

  // ---- Map phase (two passes when reducer count depends on intermediate
  // size: we must know the total before partitioning; instead we buffer
  // unpartitioned results, then bucket them once `r` is known) -------------
  const double meta_bytes = config_.costs.metadata_bytes_per_record;
  const double overhead = job.intermediate_overhead_factor;

  struct RawTaskOut {
    std::vector<PackedRecord> records;
    double output_mb = 0.0;
    double metadata_mb = 0.0;
  };
  std::vector<RawTaskOut> raw(tasks.size());

  ThreadPool::Global().ParallelFor(tasks.size(), [&](size_t ti) {
    const MapTaskSpec& t = tasks[ti];
    const Relation* rel = inputs[t.input_index];
    auto mapper = job.mapper_factory();
    VectorMapEmitter emitter;
    for (size_t j = t.begin; j < t.end; ++j) {
      mapper->Map(t.input_index, rel->tuples()[j], static_cast<uint64_t>(j),
                  &emitter);
    }
    RawTaskOut& out = raw[ti];
    double wire_bytes = 0.0;
    size_t record_count = 0;
    if (job.pack_messages) {
      // Group by key, preserving first-seen key order for determinism.
      std::unordered_map<Tuple, size_t> index;
      for (KeyValue& kv : emitter.buffer()) {
        auto [it, inserted] = index.emplace(kv.key, out.records.size());
        if (inserted) {
          PackedRecord rec;
          rec.key = kv.key;
          rec.wire_bytes = TupleWireBytes(kv.key);
          out.records.push_back(std::move(rec));
        }
        PackedRecord& rec = out.records[it->second];
        rec.wire_bytes += kv.value.wire_bytes;
        rec.values.push_back(std::move(kv.value));
      }
      record_count = out.records.size();
    } else {
      out.records.reserve(emitter.buffer().size());
      for (KeyValue& kv : emitter.buffer()) {
        PackedRecord rec;
        rec.wire_bytes = TupleWireBytes(kv.key) + kv.value.wire_bytes;
        rec.key = std::move(kv.key);
        rec.values.push_back(std::move(kv.value));
        out.records.push_back(std::move(rec));
      }
      record_count = out.records.size();
    }
    for (const PackedRecord& rec : out.records) wire_bytes += rec.wire_bytes;
    out.output_mb = wire_bytes * overhead * scale * kMbPerByte;
    out.metadata_mb = static_cast<double>(record_count) * meta_bytes * scale *
                      kMbPerByte;
  });

  // Per-input aggregates and per-task map costs.
  double total_intermediate_mb = 0.0;
  double total_input_mb = 0.0;
  stats.map_task_costs.resize(tasks.size());
  for (size_t ti = 0; ti < tasks.size(); ++ti) {
    const MapTaskSpec& t = tasks[ti];
    InputStats& is = stats.inputs[t.input_index];
    is.output_mb += raw[ti].output_mb;
    is.metadata_mb += raw[ti].metadata_mb;
    total_intermediate_mb += raw[ti].output_mb;
    total_input_mb += t.input_mb;
    cost::MapPartition p;
    p.input_mb = t.input_mb;
    p.output_mb = raw[ti].output_mb;
    p.metadata_mb = raw[ti].metadata_mb;
    p.num_mappers = 1;
    stats.map_task_costs[ti] = cost::MapCost(config_.costs, p);
  }
  stats.hdfs_read_mb = total_input_mb;
  stats.shuffle_mb = total_intermediate_mb;

  // ---- Choose reducer count ----------------------------------------------
  int r = 1;
  switch (job.reducer_allocation) {
    case ReducerAllocation::kByIntermediateSize:
      r = std::max(1, static_cast<int>(std::ceil(
                          total_intermediate_mb / config_.mb_per_reducer)));
      break;
    case ReducerAllocation::kByMapInputSize:
      // Pig's 1 GB of map input per reducer; expressed relative to the
      // cluster's (possibly scaled) 256 MB intermediate allocation.
      r = std::max(1, static_cast<int>(std::ceil(
                          total_input_mb / (4.0 * config_.mb_per_reducer))));
      break;
    case ReducerAllocation::kFixed:
      r = std::max(1, job.fixed_num_reducers);
      break;
  }
  stats.num_reducers = r;

  // ---- Partition ----------------------------------------------------------
  std::vector<std::vector<std::vector<const PackedRecord*>>> partitioned(
      tasks.size());
  ThreadPool::Global().ParallelFor(tasks.size(), [&](size_t ti) {
    auto& buckets = partitioned[ti];
    buckets.resize(static_cast<size_t>(r));
    for (const PackedRecord& rec : raw[ti].records) {
      buckets[rec.key.Hash() % static_cast<uint64_t>(r)].push_back(&rec);
    }
  });

  // ---- Reduce phase --------------------------------------------------------
  struct ReduceTaskOut {
    std::vector<std::vector<Tuple>> outputs;  // [output_index] -> tuples
    double shuffle_mb = 0.0;
    double output_mb = 0.0;
  };
  std::vector<ReduceTaskOut> red(static_cast<size_t>(r));

  ThreadPool::Global().ParallelFor(static_cast<size_t>(r), [&](size_t rj) {
    // Gather this partition's records from every map task, in task order.
    std::unordered_map<Tuple, std::vector<Message>> groups;
    double wire_bytes = 0.0;
    for (size_t ti = 0; ti < tasks.size(); ++ti) {
      for (const PackedRecord* rec : partitioned[ti][rj]) {
        wire_bytes += rec->wire_bytes;
        auto& vec = groups[rec->key];
        vec.insert(vec.end(), rec->values.begin(), rec->values.end());
      }
    }
    // Sorted key order for determinism.
    std::vector<const Tuple*> keys;
    keys.reserve(groups.size());
    for (const auto& [k, v] : groups) keys.push_back(&k);
    std::sort(keys.begin(), keys.end(),
              [](const Tuple* a, const Tuple* b) { return *a < *b; });

    auto reducer = job.reducer_factory();
    VectorReduceEmitter emitter(job.outputs.size());
    for (const Tuple* k : keys) {
      reducer->Reduce(*k, groups[*k], &emitter);
    }
    ReduceTaskOut& out = red[rj];
    out.shuffle_mb = wire_bytes * overhead * scale * kMbPerByte;
    out.outputs = std::move(emitter.outputs());
    for (size_t oi = 0; oi < job.outputs.size(); ++oi) {
      const JobOutput& spec = job.outputs[oi];
      double bpt = spec.bytes_per_tuple > 0.0 ? spec.bytes_per_tuple
                                              : 10.0 * spec.arity;
      out.output_mb += static_cast<double>(out.outputs[oi].size()) * scale *
                       bpt * kMbPerByte;
    }
  });

  stats.reduce_task_costs.resize(static_cast<size_t>(r));
  double total_output_mb = 0.0;
  for (int rj = 0; rj < r; ++rj) {
    stats.reduce_task_costs[static_cast<size_t>(rj)] = cost::ReduceCost(
        config_.costs, red[static_cast<size_t>(rj)].shuffle_mb,
        red[static_cast<size_t>(rj)].output_mb, /*num_reducers=*/1);
    total_output_mb += red[static_cast<size_t>(rj)].output_mb;
  }
  stats.hdfs_write_mb = total_output_mb;

  // ---- Write outputs -------------------------------------------------------
  for (size_t oi = 0; oi < job.outputs.size(); ++oi) {
    const JobOutput& spec = job.outputs[oi];
    Relation out(spec.dataset, spec.arity);
    if (spec.bytes_per_tuple > 0.0) out.set_bytes_per_tuple(spec.bytes_per_tuple);
    out.set_representation_scale(scale);
    size_t total = 0;
    for (const auto& rt : red) total += rt.outputs[oi].size();
    out.mutable_tuples().reserve(total);
    for (auto& rt : red) {
      for (Tuple& t : rt.outputs[oi]) out.AddUnchecked(std::move(t));
    }
    if (spec.dedupe) out.SortAndDedupe();
    db->Put(std::move(out));
  }

  return stats;
}

}  // namespace gumbo::mr
