#include "mr/engine.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <functional>
#include <memory>
#include <vector>

#include "common/cancel.h"
#include "common/fault.h"
#include "cost/model.h"
#include "mr/shuffle.h"

namespace gumbo::mr {

namespace {

constexpr double kMbPerByte = 1.0 / (1024.0 * 1024.0);

uint64_t NowUs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

// One map task: a contiguous slice of one input relation.
struct MapTaskSpec {
  size_t input_index = 0;
  size_t begin = 0;
  size_t end = 0;
  double input_mb = 0.0;
};

// Reduce-side sink writing straight into flat RelationBuilders — one per
// declared output — so the collect phase adopts arenas wholesale instead
// of moving tuples one by one (DESIGN.md §7). Rows are fingerprinted once
// here, at emission; the output relation never re-hashes them.
class BuilderReduceEmitter : public ReduceEmitter {
 public:
  explicit BuilderReduceEmitter(const std::vector<JobOutput>& outputs) {
    builders_.reserve(outputs.size());
    for (const JobOutput& o : outputs) builders_.emplace_back(o.arity);
  }
  void Emit(size_t output_index, const Tuple& tuple) override {
    if (output_index >= builders_.size()) {
      bad_output_ = true;  // reported as Status::Internal at the chain end
      return;
    }
    builders_[output_index].Add(tuple);
  }
  void Emit(size_t output_index, TupleView row) override {
    if (output_index >= builders_.size()) {
      bad_output_ = true;
      return;
    }
    builders_[output_index].Add(row);
  }
  /// True once a reducer emitted to an output index the job never
  /// declared — the Emit interface cannot return a Status, so the
  /// violation is latched here and promoted by the reduce chain.
  bool bad_output() const { return bad_output_; }
  std::vector<RelationBuilder>& builders() { return builders_; }

 private:
  std::vector<RelationBuilder> builders_;
  bool bad_output_ = false;
};

}  // namespace

Result<Engine::JobResult> Engine::RunDetached(const JobSpec& job,
                                              const Database& db,
                                              const SchedContext& ctx) const {
  // Resolve the scheduling context once: every phase of this job runs on
  // the engine's scheduler, at the caller's priority, with the caller's
  // metrics sink; a zero morsel size means the engine default.
  SchedContext sched_ctx = ctx;
  sched_ctx.scheduler = &scheduler();
  if (sched_ctx.morsel_rows == 0) {
    sched_ctx.morsel_rows = sched_options_.morsel_rows;
  }
  const size_t morsel_rows = std::max<size_t>(1, sched_ctx.morsel_rows);

  // Failure handling (DESIGN.md §11): every morsel chain polls the
  // caller's cancellation token at its chain boundaries, and an active
  // fault injector gets a deterministic shot at each task attempt. A
  // failed attempt is abandoned before any of its output is adopted, so
  // a retry re-runs the idempotent task from its beginning and the
  // committed bytes stay identical to a fault-free run.
  const CancelToken* cancel = sched_ctx.cancel;
  const FaultInjector* faults =
      sched_ctx.faults != nullptr && sched_ctx.faults->active()
          ? sched_ctx.faults
          : nullptr;
  const uint32_t max_retries = sched_options_.max_task_retries;
  RetryCounters retry_counters;
  GUMBO_RETURN_IF_ERROR(CheckCancel(cancel));

  if (!job.mapper_factory || !job.reducer_factory) {
    return Status::InvalidArgument("job " + job.name +
                                   ": missing mapper or reducer factory");
  }
  if (job.inputs.empty()) {
    return Status::InvalidArgument("job " + job.name + ": no inputs");
  }

  // Resolve inputs and check a consistent representation scale.
  std::vector<const Relation*> inputs;
  inputs.reserve(job.inputs.size());
  double scale = -1.0;
  for (const JobInput& in : job.inputs) {
    GUMBO_ASSIGN_OR_RETURN(const Relation* rel, db.Get(in.dataset));
    if (scale < 0.0) {
      scale = rel->representation_scale();
    } else if (std::abs(scale - rel->representation_scale()) >
               1e-9 * std::max(1.0, scale)) {
      return Status::FailedPrecondition(
          "job " + job.name + ": input " + in.dataset +
          " has representation scale " +
          std::to_string(rel->representation_scale()) +
          ", expected " + std::to_string(scale));
    }
    inputs.push_back(rel);
  }

  // ---- Plan map tasks -----------------------------------------------------
  std::vector<MapTaskSpec> tasks;
  JobResult result;
  JobStats& stats = result.stats;
  stats.job_name = job.name;
  stats.job_overhead = config_.costs.job_overhead;
  stats.inputs.resize(job.inputs.size());
  for (size_t i = 0; i < inputs.size(); ++i) {
    const Relation* rel = inputs[i];
    double mb = rel->SizeMb();
    int ntasks = std::max(
        1, static_cast<int>(std::ceil(mb / std::max(config_.split_mb, 1e-9))));
    size_t n = rel->size();
    for (int k = 0; k < ntasks; ++k) {
      MapTaskSpec t;
      t.input_index = i;
      t.begin = n * static_cast<size_t>(k) / static_cast<size_t>(ntasks);
      t.end = n * static_cast<size_t>(k + 1) / static_cast<size_t>(ntasks);
      t.input_mb = static_cast<double>(t.end - t.begin) * scale *
                   rel->bytes_per_tuple() * kMbPerByte;
      tasks.push_back(t);
    }
    stats.inputs[i].dataset = job.inputs[i].dataset;
    stats.inputs[i].input_mb = mb;
    stats.inputs[i].num_map_tasks = ntasks;
  }

  // ---- Bloom filters (DESIGN.md §5.2): built once per job from the
  // resolved inputs, before any map task runs; every mapper gets the set.
  std::shared_ptr<const FilterSet> filters;
  if (job.filter_builder) {
    GUMBO_ASSIGN_OR_RETURN(FilterSet fs, job.filter_builder(inputs));
    if (!fs.empty()) {
      stats.filter_mb = fs.SizeBytes() * scale * kMbPerByte;
      stats.filter_build_cost =
          cost::FilterBuildCost(config_.costs, fs.scan_mb());
      // Distributed-cache style: one filter copy shipped per node, not
      // per task (DESIGN.md §5.3).
      stats.filter_broadcast_mb =
          stats.filter_mb * static_cast<double>(config_.nodes);
      filters = std::make_shared<const FilterSet>(std::move(fs));
    }
  }

  // ---- Map phase (two passes when reducer count depends on intermediate
  // size: we must know the total before partitioning; the shuffle buffers
  // per-task records and buckets them once `r` is known) -------------------
  const double meta_bytes = config_.costs.metadata_bytes_per_record;
  const double overhead = job.intermediate_overhead_factor;

  if (tasks.size() >= (1u << 24)) {
    return Status::Internal(
        "job " + job.name + ": " + std::to_string(tasks.size()) +
        " map tasks exceed the shuffle's 24-bit task id space");
  }
  Shuffle shuffle(tasks.size(), job.pack_messages);
  struct TaskAccounting {
    double output_mb = 0.0;    // represented MB of intermediate data
    double metadata_mb = 0.0;  // represented MB of per-record metadata
    ShuffleTaskIo io;          // raw record/message counts
    uint64_t filtered = 0;     // emissions suppressed by Bloom filters
  };
  std::vector<TaskAccounting> task_io(tasks.size());

  // Each map task runs as a *chain* of row-range morsels (DESIGN.md §9):
  // the chain shares one mapper + emission buffer, and each morsel
  // resubmits the next one, so the task's emission order — and therefore
  // its combined/packed wire bytes and every downstream byte — is
  // exactly the sequential order, while the scheduler is free to
  // interleave other queries' morsels between any two of ours.
  {
    struct MapChain {
      size_t ti = 0;
      size_t next_row = 0;
      uint32_t attempt = 0;
      uint64_t attempt_start_us = 0;
      std::unique_ptr<Mapper> mapper;
      std::unique_ptr<Combiner> combiner;
      MapOutputBuffer emitter;
      Status status;  ///< this chain's terminal failure, if any
    };
    std::vector<MapChain> chains(tasks.size());
    // Cancellation and fault escalation abort the whole phase: sibling
    // chains stop resubmitting at their next morsel boundary and the
    // group drains. Nothing was adopted by a chain that didn't finish,
    // and the job result is discarded on error, so stopping early never
    // leaks partial state.
    std::atomic<bool> abort{false};
    Scheduler::TaskGroup group(sched_ctx);
    // Arms (or, after an injected fault, re-arms) one map task attempt:
    // scan position back to the task's first row, fresh operators, fresh
    // emission buffer — a retried attempt is indistinguishable from a
    // first run, which is what keeps retries byte-identical.
    auto arm = [&](MapChain& c) {
      c.next_row = tasks[c.ti].begin;
      c.mapper = job.mapper_factory();
      if (filters != nullptr) c.mapper->AttachFilters(filters.get());
      if (job.combiner_factory) c.combiner = job.combiner_factory();
      c.emitter = MapOutputBuffer();
      if (faults != nullptr) c.attempt_start_us = NowUs();
    };
    std::function<void(size_t)> step = [&](size_t ti) {
      if (abort.load(std::memory_order_relaxed)) return;
      MapChain& c = chains[ti];
      if (const Status cs = CheckCancel(cancel); !cs.ok()) {
        abort.store(true, std::memory_order_relaxed);
        return;
      }
      const MapTaskSpec& t = tasks[ti];
      const Relation* rel = inputs[t.input_index];
      const size_t stop = std::min(t.end, c.next_row + morsel_rows);
      for (size_t j = c.next_row; j < stop; ++j) {
        // Zero-copy scan: the mapper sees the stored flat row with its
        // precomputed fingerprint (DESIGN.md §7).
        c.mapper->Map(t.input_index, rel->view(j), static_cast<uint64_t>(j),
                      &c.emitter);
      }
      c.next_row = stop;
      // The fault check runs after the morsel's rows, so an injected
      // fault always abandons an attempt that did real partial work —
      // the adversarial case for the discard-then-retry contract.
      if (faults != nullptr &&
          faults->ShouldFail(FaultSite::kMapScan, ti, c.attempt)) {
        retry_counters.faults_injected.fetch_add(1, std::memory_order_relaxed);
        retry_counters.retry_us.fetch_add(NowUs() - c.attempt_start_us,
                                          std::memory_order_relaxed);
        if (c.attempt >= max_retries) {
          c.status =
              FaultInjector::InjectedFault(FaultSite::kMapScan, ti, c.attempt);
          abort.store(true, std::memory_order_relaxed);
          return;
        }
        retry_counters.task_retries.fetch_add(1, std::memory_order_relaxed);
        ++c.attempt;
        arm(c);
        group.Submit([&step, ti] { step(ti); });
        return;
      }
      if (stop < t.end) {
        group.Submit([&step, ti] { step(ti); });
        return;
      }
      Result<ShuffleTaskIo> io_or =
          shuffle.AddTaskOutput(ti, std::move(c.emitter), c.combiner.get());
      if (!io_or.ok()) {
        c.status = io_or.status();
        abort.store(true, std::memory_order_relaxed);
        return;
      }
      const ShuffleTaskIo& io = *io_or;
      task_io[ti].output_mb = io.wire_bytes * overhead * scale * kMbPerByte;
      task_io[ti].metadata_mb =
          static_cast<double>(io.records) * meta_bytes * scale * kMbPerByte;
      task_io[ti].io = io;
      task_io[ti].filtered = c.mapper->SuppressedEmissions();
    };
    for (size_t ti = 0; ti < tasks.size(); ++ti) {
      MapChain& c = chains[ti];
      c.ti = ti;
      arm(c);
      group.Submit([&step, ti] { step(ti); });
    }
    group.Wait();
    GUMBO_RETURN_IF_ERROR(CheckCancel(cancel));
    // Lowest recorded failure wins. The status *code* is deterministic
    // for a fixed fault seed; the reported task may vary when the abort
    // raced a sibling's own exhaustion, which only affects the message.
    for (const MapChain& c : chains) {
      GUMBO_RETURN_IF_ERROR(c.status);
    }
  }

  // Per-input aggregates and per-task map costs.
  double total_intermediate_mb = 0.0;
  double total_input_mb = 0.0;
  stats.map_task_costs.resize(tasks.size());
  // The filter broadcast cost is spread evenly over the map tasks so it
  // enters the net-time simulation (DESIGN.md §5.3).
  const double broadcast_cost =
      filters != nullptr && !tasks.empty()
          ? cost::FilterBroadcastCost(config_.costs, stats.filter_mb,
                                      config_.nodes) /
                static_cast<double>(tasks.size())
          : 0.0;
  for (size_t ti = 0; ti < tasks.size(); ++ti) {
    const MapTaskSpec& t = tasks[ti];
    InputStats& is = stats.inputs[t.input_index];
    is.output_mb += task_io[ti].output_mb;
    is.metadata_mb += task_io[ti].metadata_mb;
    total_intermediate_mb += task_io[ti].output_mb;
    total_input_mb += t.input_mb;
    cost::MapPartition p;
    p.input_mb = t.input_mb;
    p.output_mb = task_io[ti].output_mb;
    p.metadata_mb = task_io[ti].metadata_mb;
    p.num_mappers = 1;
    stats.map_task_costs[ti] = cost::MapCost(config_.costs, p) + broadcast_cost;
    stats.shuffle_records += task_io[ti].io.records;
    stats.shuffle_messages += task_io[ti].io.messages;
    stats.fingerprint_collisions += task_io[ti].io.fingerprint_collisions;
    stats.combined_messages += task_io[ti].io.combined_messages;
    stats.combined_mb +=
        task_io[ti].io.combined_bytes * overhead * scale * kMbPerByte;
    stats.filtered_messages += task_io[ti].filtered;
  }
  stats.hdfs_read_mb = total_input_mb;
  stats.shuffle_mb = total_intermediate_mb;

  // ---- Choose reducer count ----------------------------------------------
  int r = 1;
  switch (job.reducer_allocation) {
    case ReducerAllocation::kByIntermediateSize:
      r = std::max(1, static_cast<int>(std::ceil(
                          total_intermediate_mb / config_.mb_per_reducer)));
      break;
    case ReducerAllocation::kByMapInputSize:
      // Pig's 1 GB of map input per reducer; expressed relative to the
      // cluster's (possibly scaled) 256 MB intermediate allocation.
      r = std::max(1, static_cast<int>(std::ceil(
                          total_input_mb / (4.0 * config_.mb_per_reducer))));
      break;
    case ReducerAllocation::kFixed:
      r = std::max(1, job.fixed_num_reducers);
      break;
  }
  stats.num_reducers = r;

  // ---- Partition + reduce phase -------------------------------------------
  GUMBO_RETURN_IF_ERROR(shuffle.Partition(r, sched_ctx.scheduler, sched_ctx,
                                          max_retries, &retry_counters));

  struct ReduceTaskOut {
    std::vector<RelationBuilder> outputs;  // [output_index] -> flat rows
    double shuffle_mb = 0.0;
    double output_mb = 0.0;
  };
  std::vector<ReduceTaskOut> red(static_cast<size_t>(r));

  // Reduce tasks chain like map tasks: one reducer + emitter per
  // partition, each morsel consuming a bounded budget of whole key groups
  // via the shuffle's resumable cursor, so key order and per-partition
  // output order are exactly the sequential walk's.
  {
    struct ReduceChain {
      std::unique_ptr<Reducer> reducer;
      std::unique_ptr<BuilderReduceEmitter> emitter;
      Shuffle::GroupCursor cursor;
      uint32_t attempt = 0;
      uint64_t attempt_start_us = 0;
      Status status;  ///< this chain's terminal failure, if any
    };
    std::vector<ReduceChain> chains(static_cast<size_t>(r));
    std::atomic<bool> abort{false};
    Scheduler::TaskGroup group(sched_ctx);
    // Fresh reducer + emitter + cursor per attempt: outputs are adopted
    // only when the whole partition walked cleanly, so re-walking after
    // an injected fault is idempotent (same groups, same order).
    auto arm = [&](ReduceChain& c) {
      c.reducer = job.reducer_factory();
      c.emitter = std::make_unique<BuilderReduceEmitter>(job.outputs);
      c.cursor = Shuffle::GroupCursor();
      if (faults != nullptr) c.attempt_start_us = NowUs();
    };
    std::function<void(size_t)> step = [&](size_t rj) {
      if (abort.load(std::memory_order_relaxed)) return;
      ReduceChain& c = chains[rj];
      if (const Status cs = CheckCancel(cancel); !cs.ok()) {
        abort.store(true, std::memory_order_relaxed);
        return;
      }
      const bool more = shuffle.ForEachGroupChunk(
          rj, &c.cursor, morsel_rows,
          [&](TupleView key, const MessageGroup& values) {
            c.reducer->Reduce(key, values, c.emitter.get());
          });
      if (c.emitter->bad_output()) {
        c.status = Status::Internal(
            "job " + job.name + ": reducer emitted to an output index >= " +
            std::to_string(job.outputs.size()) + " (partition " +
            std::to_string(rj) + ")");
        abort.store(true, std::memory_order_relaxed);
        return;
      }
      if (faults != nullptr &&
          faults->ShouldFail(FaultSite::kReduceEmit, rj, c.attempt)) {
        retry_counters.faults_injected.fetch_add(1, std::memory_order_relaxed);
        retry_counters.retry_us.fetch_add(NowUs() - c.attempt_start_us,
                                          std::memory_order_relaxed);
        if (c.attempt >= max_retries) {
          c.status = FaultInjector::InjectedFault(FaultSite::kReduceEmit, rj,
                                                  c.attempt);
          abort.store(true, std::memory_order_relaxed);
          return;
        }
        retry_counters.task_retries.fetch_add(1, std::memory_order_relaxed);
        ++c.attempt;
        arm(c);
        group.Submit([&step, rj] { step(rj); });
        return;
      }
      if (more) {
        group.Submit([&step, rj] { step(rj); });
        return;
      }
      ReduceTaskOut& out = red[rj];
      out.shuffle_mb =
          shuffle.PartitionWireBytes(rj) * overhead * scale * kMbPerByte;
      out.outputs = std::move(c.emitter->builders());
      for (size_t oi = 0; oi < job.outputs.size(); ++oi) {
        const JobOutput& spec = job.outputs[oi];
        double bpt = spec.bytes_per_tuple > 0.0 ? spec.bytes_per_tuple
                                                : 10.0 * spec.arity;
        out.output_mb += static_cast<double>(out.outputs[oi].size()) * scale *
                         bpt * kMbPerByte;
      }
    };
    for (size_t rj = 0; rj < static_cast<size_t>(r); ++rj) {
      arm(chains[rj]);
      group.Submit([&step, rj] { step(rj); });
    }
    group.Wait();
    GUMBO_RETURN_IF_ERROR(CheckCancel(cancel));
    for (const ReduceChain& c : chains) {
      GUMBO_RETURN_IF_ERROR(c.status);
    }
  }

  stats.reduce_task_costs.resize(static_cast<size_t>(r));
  double total_output_mb = 0.0;
  double received_mb = 0.0;
  for (int rj = 0; rj < r; ++rj) {
    stats.reduce_task_costs[static_cast<size_t>(rj)] = cost::ReduceCost(
        config_.costs, red[static_cast<size_t>(rj)].shuffle_mb,
        red[static_cast<size_t>(rj)].output_mb, /*num_reducers=*/1);
    total_output_mb += red[static_cast<size_t>(rj)].output_mb;
    received_mb += red[static_cast<size_t>(rj)].shuffle_mb;
  }
  // Reconciliation: the reduce-side partition totals only feed per-task
  // cost attribution; the bytes metric itself is the map-side
  // stats.shuffle_mb (the single source of truth, see mr/stats.h). The
  // two views must agree — every shuffled byte lands in exactly one
  // partition — and the invariant is enforced in Release builds too, so
  // CI's Release matrix catches accounting drift.
  if (std::abs(received_mb - stats.shuffle_mb) >
      1e-6 * std::max(1.0, stats.shuffle_mb)) {
    return Status::Internal(
        "job " + job.name +
        ": map-side and reduce-side shuffle accounting diverged (map " +
        std::to_string(stats.shuffle_mb) + " MB, reduce " +
        std::to_string(received_mb) + " MB)");
  }
  stats.hdfs_write_mb = total_output_mb;

  // ---- Collect outputs -----------------------------------------------------
  // Reduce tasks produced flat builders; the first non-empty builder's
  // arenas are moved into the relation wholesale, the rest are appended
  // with bulk copies — never tuple-by-tuple (DESIGN.md §7).
  result.outputs.reserve(job.outputs.size());
  for (size_t oi = 0; oi < job.outputs.size(); ++oi) {
    const JobOutput& spec = job.outputs[oi];
    Relation out(spec.dataset, spec.arity);
    if (spec.bytes_per_tuple > 0.0) out.set_bytes_per_tuple(spec.bytes_per_tuple);
    out.set_representation_scale(scale);
    size_t total = 0;
    for (const auto& rt : red) total += rt.outputs[oi].size();
    for (auto& rt : red) {
      const bool first_move = out.empty() && !rt.outputs[oi].empty();
      out.Adopt(std::move(rt.outputs[oi]));
      // Reserve for the remaining appends only after the wholesale move
      // of the first arena (reserving earlier would defeat the move).
      if (first_move) out.Reserve(total - out.size());
    }
    if (spec.dedupe) out.SortAndDedupe(sched_ctx.scheduler, &sched_ctx);
    result.outputs.push_back(std::move(out));
  }

  stats.task_retries =
      retry_counters.task_retries.load(std::memory_order_relaxed);
  stats.faults_injected =
      retry_counters.faults_injected.load(std::memory_order_relaxed);
  stats.retry_ms =
      static_cast<double>(
          retry_counters.retry_us.load(std::memory_order_relaxed)) /
      1000.0;
  return result;
}

Result<JobStats> Engine::Run(const JobSpec& job, Database* db,
                             const SchedContext& ctx) const {
  GUMBO_ASSIGN_OR_RETURN(JobResult result, RunDetached(job, *db, ctx));
  for (Relation& out : result.outputs) {
    db->Put(std::move(out));
  }
  return std::move(result.stats);
}

}  // namespace gumbo::mr
