// Dictionary: string interning for Value handles.
#ifndef GUMBO_COMMON_DICTIONARY_H_
#define GUMBO_COMMON_DICTIONARY_H_

#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/value.h"

namespace gumbo {

/// Maps strings to dense Value handles and back. Not thread-safe; interning
/// happens during query parsing and data loading, which are single-threaded.
class Dictionary {
 public:
  /// Returns the Value handle for `s`, interning it on first sight.
  Value Intern(std::string_view s) {
    auto it = index_.find(std::string(s));
    if (it != index_.end()) return Value::StringId(it->second);
    uint64_t id = strings_.size();
    strings_.emplace_back(s);
    index_.emplace(strings_.back(), id);
    return Value::StringId(id);
  }

  /// Looks up the string for a string-valued handle. Returns "<bad-id>"
  /// for out-of-range ids rather than crashing (useful in debug printing).
  const std::string& Lookup(Value v) const {
    static const std::string kBad = "<bad-id>";
    if (!v.is_string() || v.string_id() >= strings_.size()) return kBad;
    return strings_[v.string_id()];
  }

  /// Renders any value as text: integers as decimal, strings quoted.
  std::string ToString(Value v) const {
    if (v.is_int()) return std::to_string(v.AsInt());
    return "\"" + Lookup(v) + "\"";
  }

  size_t size() const { return strings_.size(); }

  /// A process-wide dictionary used by the parser and examples. Library
  /// code takes an explicit Dictionary so tests can isolate state.
  static Dictionary& Global();

 private:
  std::vector<std::string> strings_;
  std::unordered_map<std::string, uint64_t> index_;
};

}  // namespace gumbo

#endif  // GUMBO_COMMON_DICTIONARY_H_
