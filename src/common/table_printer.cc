#include "common/table_printer.h"

#include <algorithm>

namespace gumbo {

std::string TablePrinter::Render() const {
  size_t cols = header_.size();
  for (const auto& r : rows_) cols = std::max(cols, r.size());
  std::vector<size_t> width(cols, 0);
  auto widen = [&](const std::vector<std::string>& row) {
    for (size_t i = 0; i < row.size(); ++i) {
      width[i] = std::max(width[i], row[i].size());
    }
  };
  widen(header_);
  for (const auto& r : rows_) widen(r);

  auto render_row = [&](const std::vector<std::string>& row) {
    std::string line;
    for (size_t i = 0; i < cols; ++i) {
      const std::string& cell = i < row.size() ? row[i] : std::string();
      line += "| ";
      line += cell;
      line.append(width[i] - cell.size() + 1, ' ');
    }
    line += "|\n";
    return line;
  };

  std::string sep = "+";
  for (size_t i = 0; i < cols; ++i) {
    sep.append(width[i] + 2, '-');
    sep += "+";
  }
  sep += "\n";

  std::string out = sep + render_row(header_) + sep;
  for (size_t i = 0; i < rows_.size(); ++i) {
    for (size_t s : separators_) {
      if (s == i) out += sep;
    }
    out += render_row(rows_[i]);
  }
  out += sep;
  return out;
}

}  // namespace gumbo
