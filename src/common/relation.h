// Relation and Database: named sets of facts on flat arena storage.
//
// A Relation is the in-memory representation of one relation instance.
// Tuples are stored as contiguous flat-encoded words (8 bytes per Value,
// common/tuple.h) in one per-relation arena, with a parallel array of
// precomputed 64-bit fingerprints (== Tuple::Hash of the row, computed
// exactly once when the row is added). Scans hand out zero-copy RowViews;
// no Tuple object exists between rounds unless a caller materializes one
// (DESIGN.md §7).
//
// In addition to the actual tuples a Relation tracks a *represented
// size*: the paper's experiments run on 1-4 GB relations; this repo
// executes on smaller materialized samples while accounting bytes at a
// configurable representation scale (see DESIGN.md "Substitutions"). All
// cost-model and counter arithmetic uses the represented megabytes.
#ifndef GUMBO_COMMON_RELATION_H_
#define GUMBO_COMMON_RELATION_H_

#include <cassert>
#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "common/tuple.h"

namespace gumbo {

class Scheduler;
struct SchedContext;

/// One stored row: a zero-copy TupleView plus the relation's precomputed
/// fingerprint, so scan consumers (mappers, filter builders) never hash a
/// stored tuple again.
class RowView : public TupleView {
 public:
  constexpr RowView() : TupleView(), fingerprint_(0) {}
  constexpr RowView(const uint64_t* words, uint32_t arity, uint64_t fingerprint)
      : TupleView(words, arity), fingerprint_(fingerprint) {}

  /// The stored fingerprint — equal to Fingerprint() (and to
  /// Tuple::Hash() of the decoded row) by construction, but free.
  uint64_t fingerprint() const { return fingerprint_; }

 private:
  uint64_t fingerprint_;
};

/// Accumulates flat rows of one fixed arity — the reduce-side emission
/// target (mr/engine.cc): reducers append encoded words + fingerprint
/// here, and the finished builder is adopted by a Relation arena-wholesale
/// instead of tuple-by-tuple.
class RelationBuilder {
 public:
  RelationBuilder() : arity_(0) {}
  explicit RelationBuilder(uint32_t arity) : arity_(arity) {}

  uint32_t arity() const { return arity_; }
  size_t size() const { return fingerprints_.size(); }
  bool empty() const { return fingerprints_.empty(); }

  void Reserve(size_t rows) {
    words_.reserve(rows * arity_);
    fingerprints_.reserve(rows);
  }

  /// Appends one row of `arity()` raw words; the fingerprint is computed
  /// here, once, and travels with the row from then on.
  void AddWords(const uint64_t* words) {
    words_.insert(words_.end(), words, words + arity_);
    fingerprints_.push_back(TupleFingerprint(words, arity_));
  }

  void Add(TupleView row) {
    assert(row.size() == arity_ && "builder arity mismatch");
    AddWords(row.words());
  }

  /// Raw word bytes currently buffered (bookkeeping for adopt-time
  /// accounting).
  size_t WordBytes() const { return words_.size() * sizeof(uint64_t); }

 private:
  friend class Relation;

  uint32_t arity_;
  std::vector<uint64_t> words_;         ///< size() * arity_ flat words
  std::vector<uint64_t> fingerprints_;  ///< one per row
};

/// One relation instance: a name, a fixed arity, and a bag of tuples that
/// is normalized to a set on demand (SortAndDedupe).
class Relation {
 public:
  Relation() : name_(), arity_(0) {}
  Relation(std::string name, uint32_t arity)
      : name_(std::move(name)), arity_(arity) {}

  const std::string& name() const { return name_; }
  uint32_t arity() const { return arity_; }

  /// Appends a tuple. The tuple's size must equal the relation arity
  /// (checked; returns InvalidArgument otherwise).
  Status Add(const Tuple& t) {
    if (t.size() != arity_) {
      return Status::InvalidArgument("tuple arity " + std::to_string(t.size()) +
                                     " != relation arity " +
                                     std::to_string(arity_) + " for " + name_);
    }
    AddWords(t.raw_words());
    return Status::Ok();
  }

  /// Appends without the arity check; used on hot paths where the arity is
  /// enforced by construction. Asserts in debug builds.
  void AddUnchecked(const Tuple& t) {
    assert(t.size() == arity_);
    AddWords(t.raw_words());
  }

  /// Appends a borrowed flat row. Asserts the arity in debug builds.
  void AddView(TupleView row) {
    assert(row.size() == arity_);
    AddWords(row.words());
  }

  /// Flat hot path: appends one row of `arity()` raw words straight into
  /// the arena. The fingerprint is computed here — the only time this row
  /// is ever hashed (DESIGN.md §7).
  void AddWords(const uint64_t* words) {
    words_.insert(words_.end(), words, words + arity_);
    fingerprints_.push_back(TupleFingerprint(words, arity_));
    ++append_version_;
  }

  /// Pre-sizes the arenas for `rows` additional tuples.
  void Reserve(size_t rows) {
    words_.reserve(words_.size() + rows * arity_);
    fingerprints_.reserve(fingerprints_.size() + rows);
  }

  /// Adopts a builder's rows. The builder must have this relation's
  /// arity. When the relation is empty the builder's arenas are moved
  /// wholesale (no copy, no re-hash); otherwise its words and
  /// fingerprints are appended with two bulk copies. The builder is left
  /// empty either way.
  void Adopt(RelationBuilder&& b);

  size_t size() const { return fingerprints_.size(); }
  bool empty() const { return fingerprints_.empty(); }

  /// Zero-copy view of row `i`, with its stored fingerprint. Valid until
  /// the relation is mutated.
  RowView view(size_t i) const {
    assert(i < size());
    return RowView(words_.data() + i * arity_, arity_, fingerprints_[i]);
  }

  /// Stored fingerprint of row `i` (== view(i).Fingerprint() ==
  /// TupleAt(i).Hash()).
  uint64_t fingerprint(size_t i) const {
    assert(i < size());
    return fingerprints_[i];
  }

  /// The flat word arena: size() * arity() words, row-major.
  const std::vector<uint64_t>& words() const { return words_; }
  /// One precomputed fingerprint per row.
  const std::vector<uint64_t>& fingerprints() const { return fingerprints_; }

  /// Iteration support: `for (RowView row : rel.views())`.
  class ViewIterator {
   public:
    ViewIterator(const Relation* rel, size_t i) : rel_(rel), i_(i) {}
    RowView operator*() const { return rel_->view(i_); }
    ViewIterator& operator++() {
      ++i_;
      return *this;
    }
    bool operator==(const ViewIterator& o) const { return i_ == o.i_; }
    bool operator!=(const ViewIterator& o) const { return i_ != o.i_; }

   private:
    const Relation* rel_;
    size_t i_;
  };
  class ViewRange {
   public:
    explicit ViewRange(const Relation* rel) : rel_(rel) {}
    ViewIterator begin() const { return {rel_, 0}; }
    ViewIterator end() const { return {rel_, rel_->size()}; }

   private:
    const Relation* rel_;
  };
  ViewRange views() const { return ViewRange(this); }

  /// Zero-copy view of the arena tail [from, size()) — the delta a
  /// consumer whose watermark is `from` rows has not seen (DESIGN.md §12).
  /// Borrows the arenas; valid until the relation is mutated.
  struct Slice {
    const uint64_t* words = nullptr;
    const uint64_t* fingerprints = nullptr;
    size_t rows = 0;
    uint32_t arity = 0;
    RowView view(size_t i) const {
      assert(i < rows);
      return RowView(words + i * arity, arity, fingerprints[i]);
    }
  };
  Slice TailSince(size_t from) const {
    assert(from <= size());
    return Slice{words_.data() + from * arity_, fingerprints_.data() + from,
                 size() - from, arity_};
  }

  /// Materializes rows [from, to) as a Relation under the same name:
  /// two bulk copies of words + stored fingerprints, never re-hashed.
  /// Size-accounting knobs (bytes_per_tuple, representation_scale) carry
  /// over so a delta slice accounts like its parent.
  Relation CloneRange(size_t from, size_t to) const;

  /// Bulk-appends every row of `other` (same arity required): words and
  /// stored fingerprints copied wholesale, no re-hash. The delta-union
  /// half of incremental maintenance (DESIGN.md §12); callers wanting set
  /// semantics follow with SortAndDedupe.
  void AppendFrom(const Relation& other);

  /// Bulk-appends `rows` rows from raw arenas: `words` (rows * arity()
  /// flat words) and `fps` (one stored fingerprint per row) are copied
  /// verbatim — NEVER re-hashed, so fingerprints decoded from a wire
  /// frame (src/dist/wire.h) survive round-trips bit-for-bit. The caller
  /// vouches that fps[i] == TupleFingerprint(row i) — debug builds spot-
  /// check the first row.
  void AppendRaw(const uint64_t* words, const uint64_t* fps, size_t rows);

  /// Bumped every time rows are appended (AddWords/Adopt/AppendFrom).
  /// Together with shape_version(), lets Database::SettleLoans classify
  /// what a mutable-handle holder actually did: nothing, pure appends, or
  /// a reshape.
  uint64_t append_version() const { return append_version_; }
  /// Bumped by SortAndDedupe (rows may move or vanish — existing row
  /// indices/watermarks are no longer prefixes of the new arena).
  uint64_t shape_version() const { return shape_version_; }

  /// Materializes row `i` as an owning Tuple (tests / diagnostics; scans
  /// should use view()).
  Tuple TupleAt(size_t i) const { return view(i).ToTuple(); }

  /// Materializes every row (tests / diagnostics only — this is the
  /// copying path the flat storage exists to avoid).
  std::vector<Tuple> ToTuples() const;

  /// Sorts tuples lexicographically and removes duplicates, giving the
  /// relation canonical set semantics. Operates on the flat words (Value
  /// order is raw-word order, so the result is byte-identical to sorting
  /// decoded Tuples); stored fingerprints are permuted, never recomputed.
  /// `scheduler` parallelizes the sort (chunked sort + pairwise merges)
  /// at `ctx`'s priority; results are identical for any scheduler,
  /// including nullptr (sequential). Deterministic.
  void SortAndDedupe(Scheduler* scheduler = nullptr,
                     const SchedContext* ctx = nullptr);

  /// Whether two relations hold the same set of tuples. Fingerprint-
  /// bucketed: rows are ordered by (fingerprint, words) — word memcmp only
  /// on fingerprint collision — and the deduped sequences compared.
  /// Inputs are untouched.
  bool SetEquals(const Relation& other) const;

  /// Bytes each tuple represents on disk, following the paper's data shape
  /// (4 GB / 100M tuples = 40 B for 4-ary guards; 1 GB / 100M = 10 B for
  /// conditionals). Defaults to 10 B per attribute.
  double bytes_per_tuple() const {
    return bytes_per_tuple_ > 0 ? bytes_per_tuple_ : 10.0 * arity_;
  }
  void set_bytes_per_tuple(double b) { bytes_per_tuple_ = b; }

  /// Representation scale: each materialized tuple stands for `scale`
  /// tuples of the represented experiment (DESIGN.md §2). Affects size
  /// accounting only, never query results.
  double representation_scale() const { return representation_scale_; }
  void set_representation_scale(double s) { representation_scale_ = s; }

  /// Represented size in MB: tuples * scale * bytes_per_tuple / 2^20.
  double SizeMb() const {
    return static_cast<double>(size()) * representation_scale_ *
           bytes_per_tuple() / (1024.0 * 1024.0);
  }

  /// Represented record count (tuples * scale); used for per-record
  /// metadata accounting (Hadoop's 16 B map-output metadata).
  double RepresentedRecords() const {
    return static_cast<double>(size()) * representation_scale_;
  }

 private:
  std::string name_;
  uint32_t arity_;
  std::vector<uint64_t> words_;         ///< size() * arity_ flat words
  std::vector<uint64_t> fingerprints_;  ///< one per row, set at add time
  uint64_t append_version_ = 0;         ///< ++ on every row append
  uint64_t shape_version_ = 0;          ///< ++ on SortAndDedupe
  double bytes_per_tuple_ = -1.0;
  double representation_scale_ = 1.0;
};

/// A database: a set of relation instances addressed by name.
///
/// Three serving-layer features (DESIGN.md §8, §12) live here:
///
/// *Stats epochs.* Every actual mutation (Put, Create, Erase, AddFact, or
/// writes made through a GetMutable handle, recognized at loan
/// settlement — see below) bumps a database-wide epoch counter and stamps
/// the touched relation with it. The serve-layer plan cache keys cached
/// plans on the epochs of the relations a query reads, so a stale plan
/// can never be served after the underlying data changed. Reads never
/// bump epochs, and neither does a mutable handle the holder never
/// writes through.
///
/// *Delta watermarks.* Each epoch bump is classified as *insert-only*
/// (AddFact, or settled handle writes that only appended rows) or
/// *destructive* (Put/Create/Erase, or settled handle writes that
/// reshaped the arena). For insert-only bumps the post-mutation row count
/// is recorded, so a consumer holding an older epoch can ask
/// InsertOnlySince/RowsAtEpoch and view "rows added since my epoch" as a
/// contiguous arena tail (Relation::TailSince) — the foundation of
/// incremental delta evaluation (DESIGN.md §12). History is bounded;
/// epochs that fall off resolve conservatively (as unknown -> callers
/// fall back to full recomputation).
///
/// *Overlay views.* A Database constructed over a base database resolves
/// Get/Contains through the base but takes all writes locally, so many
/// concurrent queries can execute against one immutable base snapshot
/// without copying a byte of it: intermediates and outputs land in the
/// per-query overlay. Enumeration (relations(), size()) and GetMutable
/// are local-only — an overlay can shadow a base relation but never
/// mutate one. The base must outlive the overlay and must not be mutated
/// while overlays read it.
class Database {
 public:
  Database() = default;

  /// Overlay view over `base` (may be nullptr for a plain database).
  explicit Database(const Database* base) : base_(base) {}

  /// Creates an empty relation. Fails if the name is taken (in an overlay:
  /// taken locally or in the base — shadowing via Create would silently
  /// split reads from writes).
  Status Create(const std::string& name, uint32_t arity) {
    if (Contains(name)) {
      return Status::AlreadyExists("relation " + name);
    }
    SettleLoans();
    relations_.emplace(name, Relation(name, arity));
    RecordDestructive(name, /*rows=*/0);
    return Status::Ok();
  }

  /// Inserts or replaces a relation under its own name. Destructive: a
  /// replaced relation shares no arena with its predecessor, so delta
  /// watermarks over the old rows are void.
  void Put(Relation rel) {
    SettleLoans();
    const std::string name = rel.name();
    loans_.erase(name);  // any outstanding handle now refers to new content
    const size_t rows = rel.size();
    relations_[name] = std::move(rel);
    RecordDestructive(name, rows);
  }

  bool Contains(const std::string& name) const {
    if (relations_.count(name) > 0) return true;
    return base_ != nullptr && base_->Contains(name);
  }

  Result<const Relation*> Get(const std::string& name) const {
    auto it = relations_.find(name);
    if (it != relations_.end()) return &it->second;
    if (base_ != nullptr) return base_->Get(name);
    return Status::NotFound("relation " + name);
  }

  /// Local-only: never reaches into an overlay's base (overlays must not
  /// mutate the shared snapshot they read). Hands out a mutation *loan*:
  /// the relation's version counters are snapshotted, and the stats epoch
  /// bumps only when a later settlement (any mutating Database call, or
  /// an explicit SettleLoans()) observes that the holder actually wrote —
  /// classified as insert-only if rows were only appended, destructive if
  /// the arena was reshaped. Read-only access through a mutable handle
  /// therefore no longer invalidates cached plans.
  Result<Relation*> GetMutable(const std::string& name) {
    SettleLoans();
    auto it = relations_.find(name);
    if (it == relations_.end()) return Status::NotFound("relation " + name);
    loans_[name] =
        Loan{it->second.append_version(), it->second.shape_version()};
    return &it->second;
  }

  /// Adds a fact to an existing (local) relation; the fact goes straight
  /// into the relation's flat arena and the epoch bump is recorded as
  /// insert-only — delta consumers at older epochs stay valid.
  Status AddFact(const std::string& name, const Tuple& t) {
    SettleLoans();
    auto it = relations_.find(name);
    if (it == relations_.end()) return Status::NotFound("relation " + name);
    GUMBO_RETURN_IF_ERROR(it->second.Add(t));
    RecordInsert(name, it->second.size());
    return Status::Ok();
  }

  /// Removes a (local) relation; returns false if absent. Destructive.
  bool Erase(const std::string& name) {
    SettleLoans();
    loans_.erase(name);
    if (relations_.erase(name) == 0) return false;
    RecordDestructive(name, /*rows=*/0);
    return true;
  }

  /// Settles every outstanding GetMutable loan: compares each loaned
  /// relation's version counters against the loan snapshot and bumps the
  /// stats epoch for the ones actually written (insert-only when rows
  /// were only appended, destructive when the arena was reshaped).
  /// Called implicitly by every mutating entry point; call explicitly
  /// after writing through a held pointer so StatsEpochOf (a const read)
  /// reflects the writes.
  void SettleLoans() {
    for (auto it = loans_.begin(); it != loans_.end();) {
      auto rel_it = relations_.find(it->first);
      if (rel_it == relations_.end()) {
        it = loans_.erase(it);
        continue;
      }
      const Relation& rel = rel_it->second;
      if (rel.shape_version() != it->second.shape_version) {
        RecordDestructive(it->first, rel.size());
      } else if (rel.append_version() != it->second.append_version) {
        RecordInsert(it->first, rel.size());
      }
      it->second =
          Loan{rel.append_version(), rel.shape_version()};  // re-arm
      ++it;
    }
  }

  /// Locally-stored relations only; an overlay does not enumerate its base.
  const std::map<std::string, Relation>& relations() const {
    return relations_;
  }

  size_t size() const { return relations_.size(); }

  /// Database-wide stats epoch: bumped by every settled mutation. Two
  /// equal readings bracket a mutation-free window.
  uint64_t stats_epoch() const { return stats_epoch_; }

  /// Epoch of the last mutation touching `name` (0 = never mutated here).
  /// Falls through to the base for relations not stored locally, so an
  /// overlay reports the base's epochs for the snapshot it reads.
  /// Const and pure: writes made through an outstanding GetMutable handle
  /// are visible here only after settlement (SettleLoans or the next
  /// mutating call).
  uint64_t StatsEpochOf(const std::string& name) const {
    auto it = relation_epochs_.find(name);
    if (it != relation_epochs_.end()) return it->second;
    if (base_ != nullptr && relations_.count(name) == 0) {
      return base_->StatsEpochOf(name);
    }
    return 0;
  }

  /// True iff every settled mutation of `name` after `epoch` was a pure
  /// insert — the rows that existed at `epoch` are a prefix of the rows
  /// now, so "the delta since `epoch`" is the arena tail past
  /// RowsAtEpoch(name, epoch). False when a destructive mutation
  /// intervened, when `epoch` predates the last destructive mutation, or
  /// for names without local delta history (conservative).
  bool InsertOnlySince(const std::string& name, uint64_t epoch) const {
    auto it = delta_states_.find(name);
    if (it == delta_states_.end()) return false;
    return epoch >= it->second.destructive_epoch;
  }

  /// Row count of `name` as of stats epoch `epoch` (which must be a value
  /// StatsEpochOf returned at some point); nullopt when unknown — the
  /// epoch predates retained watermark history or a destructive rewrite.
  std::optional<size_t> RowsAtEpoch(const std::string& name,
                                    uint64_t epoch) const {
    auto it = delta_states_.find(name);
    if (it == delta_states_.end()) return std::nullopt;
    const DeltaState& st = it->second;
    if (epoch == st.destructive_epoch) return st.rows_at_destructive;
    for (const Watermark& w : st.inserts) {
      if (w.epoch == epoch) return w.rows;
    }
    return std::nullopt;
  }

 private:
  struct Loan {
    uint64_t append_version = 0;
    uint64_t shape_version = 0;
  };
  struct Watermark {
    uint64_t epoch = 0;  ///< stats epoch stamped by the insert
    size_t rows = 0;     ///< relation row count right after it
  };
  struct DeltaState {
    /// Epoch of the last destructive mutation (Put/Create/Erase or a
    /// settled reshape); deltas are expressible only from epochs >= this.
    uint64_t destructive_epoch = 0;
    size_t rows_at_destructive = 0;
    /// Insert-only epoch bumps since then, ascending; bounded — the
    /// oldest watermarks are dropped and resolve as "unknown".
    std::vector<Watermark> inserts;
  };
  /// Insert watermarks retained per relation; epochs older than the
  /// retained window fall back to full recomputation, so this only caps
  /// how *stale* a delta consumer may be, never correctness.
  static constexpr size_t kMaxWatermarks = 64;

  void BumpStatsEpoch(const std::string& name) {
    relation_epochs_[name] = ++stats_epoch_;
  }

  void RecordInsert(const std::string& name, size_t rows) {
    BumpStatsEpoch(name);
    DeltaState& st = delta_states_[name];
    st.inserts.push_back(Watermark{stats_epoch_, rows});
    if (st.inserts.size() > kMaxWatermarks) {
      st.inserts.erase(st.inserts.begin());
    }
  }

  void RecordDestructive(const std::string& name, size_t rows) {
    BumpStatsEpoch(name);
    DeltaState& st = delta_states_[name];
    st.destructive_epoch = stats_epoch_;
    st.rows_at_destructive = rows;
    st.inserts.clear();
  }

  // std::map for deterministic iteration order.
  std::map<std::string, Relation> relations_;
  std::map<std::string, uint64_t> relation_epochs_;
  std::map<std::string, DeltaState> delta_states_;
  std::map<std::string, Loan> loans_;  ///< outstanding GetMutable loans
  uint64_t stats_epoch_ = 0;
  const Database* base_ = nullptr;
};

}  // namespace gumbo

#endif  // GUMBO_COMMON_RELATION_H_
