// Relation and Database: named sets of facts with byte-size accounting.
//
// A Relation is the in-memory representation of one relation instance. In
// addition to the actual tuples it tracks a *represented size*: the paper's
// experiments run on 1-4 GB relations; this repo executes on smaller
// materialized samples while accounting bytes at a configurable
// representation scale (see DESIGN.md "Substitutions"). All cost-model and
// counter arithmetic uses the represented megabytes.
#ifndef GUMBO_COMMON_RELATION_H_
#define GUMBO_COMMON_RELATION_H_

#include <cassert>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "common/tuple.h"

namespace gumbo {

/// One relation instance: a name, a fixed arity, and a bag of tuples that
/// is normalized to a set on demand (SortAndDedupe).
class Relation {
 public:
  Relation() : name_(), arity_(0) {}
  Relation(std::string name, uint32_t arity)
      : name_(std::move(name)), arity_(arity) {}

  const std::string& name() const { return name_; }
  uint32_t arity() const { return arity_; }

  /// Appends a tuple. The tuple's size must equal the relation arity
  /// (checked; returns InvalidArgument otherwise).
  Status Add(Tuple t) {
    if (t.size() != arity_) {
      return Status::InvalidArgument("tuple arity " + std::to_string(t.size()) +
                                     " != relation arity " +
                                     std::to_string(arity_) + " for " + name_);
    }
    tuples_.push_back(std::move(t));
    return Status::Ok();
  }

  /// Appends without the arity check; used on hot paths where the arity is
  /// enforced by construction. Asserts in debug builds.
  void AddUnchecked(Tuple t) {
    assert(t.size() == arity_);
    tuples_.push_back(std::move(t));
  }

  const std::vector<Tuple>& tuples() const { return tuples_; }
  std::vector<Tuple>& mutable_tuples() { return tuples_; }
  size_t size() const { return tuples_.size(); }
  bool empty() const { return tuples_.empty(); }

  /// Sorts tuples lexicographically and removes duplicates, giving the
  /// relation canonical set semantics. Deterministic.
  void SortAndDedupe();

  /// Whether two relations hold the same set of tuples (both are
  /// canonicalized by copy; inputs are untouched).
  bool SetEquals(const Relation& other) const;

  /// Bytes each tuple represents on disk, following the paper's data shape
  /// (4 GB / 100M tuples = 40 B for 4-ary guards; 1 GB / 100M = 10 B for
  /// conditionals). Defaults to 10 B per attribute.
  double bytes_per_tuple() const {
    return bytes_per_tuple_ > 0 ? bytes_per_tuple_ : 10.0 * arity_;
  }
  void set_bytes_per_tuple(double b) { bytes_per_tuple_ = b; }

  /// Representation scale: each materialized tuple stands for `scale`
  /// tuples of the represented experiment (DESIGN.md §2). Affects size
  /// accounting only, never query results.
  double representation_scale() const { return representation_scale_; }
  void set_representation_scale(double s) { representation_scale_ = s; }

  /// Represented size in MB: tuples * scale * bytes_per_tuple / 2^20.
  double SizeMb() const {
    return static_cast<double>(tuples_.size()) * representation_scale_ *
           bytes_per_tuple() / (1024.0 * 1024.0);
  }

  /// Represented record count (tuples * scale); used for per-record
  /// metadata accounting (Hadoop's 16 B map-output metadata).
  double RepresentedRecords() const {
    return static_cast<double>(tuples_.size()) * representation_scale_;
  }

 private:
  std::string name_;
  uint32_t arity_;
  std::vector<Tuple> tuples_;
  double bytes_per_tuple_ = -1.0;
  double representation_scale_ = 1.0;
};

/// A database: a set of relation instances addressed by name.
class Database {
 public:
  /// Creates an empty relation. Fails if the name is taken.
  Status Create(const std::string& name, uint32_t arity) {
    if (relations_.count(name) > 0) {
      return Status::AlreadyExists("relation " + name);
    }
    relations_.emplace(name, Relation(name, arity));
    return Status::Ok();
  }

  /// Inserts or replaces a relation under its own name.
  void Put(Relation rel) { relations_[rel.name()] = std::move(rel); }

  bool Contains(const std::string& name) const {
    return relations_.count(name) > 0;
  }

  Result<const Relation*> Get(const std::string& name) const {
    auto it = relations_.find(name);
    if (it == relations_.end()) return Status::NotFound("relation " + name);
    return &it->second;
  }

  Result<Relation*> GetMutable(const std::string& name) {
    auto it = relations_.find(name);
    if (it == relations_.end()) return Status::NotFound("relation " + name);
    return &it->second;
  }

  /// Adds a fact to an existing relation.
  Status AddFact(const std::string& name, Tuple t) {
    GUMBO_ASSIGN_OR_RETURN(Relation * rel, GetMutable(name));
    return rel->Add(std::move(t));
  }

  /// Removes a relation; returns false if absent.
  bool Erase(const std::string& name) { return relations_.erase(name) > 0; }

  const std::map<std::string, Relation>& relations() const {
    return relations_;
  }

  size_t size() const { return relations_.size(); }

 private:
  // std::map for deterministic iteration order.
  std::map<std::string, Relation> relations_;
};

}  // namespace gumbo

#endif  // GUMBO_COMMON_RELATION_H_
