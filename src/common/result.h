// Result<T>: value-or-Status, in the style of absl::StatusOr<T>.
#ifndef GUMBO_COMMON_RESULT_H_
#define GUMBO_COMMON_RESULT_H_

#include <cassert>
#include <optional>
#include <utility>

#include "common/status.h"

namespace gumbo {

/// Holds either a value of type T or a non-OK Status explaining why the
/// value is absent. Accessing the value of an errored Result is a
/// programming error (checked by assert in debug builds).
template <typename T>
class Result {
 public:
  /// Implicit construction from a value (OK result).
  Result(T value) : status_(Status::Ok()), value_(std::move(value)) {}  // NOLINT

  /// Implicit construction from an error Status. Must not be OK.
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "Result constructed from OK status without value");
    if (status_.ok()) {
      status_ = Status::Internal("Result constructed from OK status");
    }
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value if OK, otherwise `fallback`.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace gumbo

/// Evaluates a Result-returning expression; on error propagates the Status,
/// on success assigns the value to `lhs`. `lhs` may declare a variable.
#define GUMBO_ASSIGN_OR_RETURN(lhs, expr)                      \
  GUMBO_ASSIGN_OR_RETURN_IMPL_(                                \
      GUMBO_RESULT_CONCAT_(gumbo_result_tmp_, __LINE__), lhs, expr)

#define GUMBO_RESULT_CONCAT_INNER_(a, b) a##b
#define GUMBO_RESULT_CONCAT_(a, b) GUMBO_RESULT_CONCAT_INNER_(a, b)

#define GUMBO_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, expr) \
  auto tmp = (expr);                                 \
  if (!tmp.ok()) {                                   \
    return tmp.status();                             \
  }                                                  \
  lhs = std::move(tmp).value()

#endif  // GUMBO_COMMON_RESULT_H_
