#include "common/tuple.h"

#include "common/dictionary.h"

namespace gumbo {

std::string Tuple::ToString(const Dictionary* dict) const {
  std::string out = "(";
  for (uint32_t i = 0; i < size_; ++i) {
    if (i > 0) out += ", ";
    const Value& v = data()[i];
    if (dict != nullptr) {
      out += dict->ToString(v);
    } else if (v.is_int()) {
      out += std::to_string(v.AsInt());
    } else {
      out += "str#" + std::to_string(v.string_id());
    }
  }
  out += ")";
  return out;
}

}  // namespace gumbo
