#include "common/tuple.h"

#include "common/dictionary.h"

namespace gumbo {

namespace {

std::string ValueToString(Value v, const Dictionary* dict) {
  if (dict != nullptr) return dict->ToString(v);
  if (v.is_int()) return std::to_string(v.AsInt());
  return "str#" + std::to_string(v.string_id());
}

}  // namespace

std::string Tuple::ToString(const Dictionary* dict) const {
  std::string out = "(";
  for (uint32_t i = 0; i < size_; ++i) {
    if (i > 0) out += ", ";
    out += ValueToString(data()[i], dict);
  }
  out += ")";
  return out;
}

std::string TupleView::ToString(const Dictionary* dict) const {
  std::string out = "(";
  for (uint32_t i = 0; i < arity_; ++i) {
    if (i > 0) out += ", ";
    out += ValueToString((*this)[i], dict);
  }
  out += ")";
  return out;
}

}  // namespace gumbo
