// Small string helpers used across the project.
#ifndef GUMBO_COMMON_STR_UTIL_H_
#define GUMBO_COMMON_STR_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace gumbo {

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

/// Joins `parts` with `sep`.
std::string StrJoin(const std::vector<std::string>& parts,
                    std::string_view sep);

/// Splits on a single character, keeping empty fields.
std::vector<std::string> StrSplit(std::string_view s, char sep);

/// Whitespace trim (both ends).
std::string_view StrTrim(std::string_view s);

/// True if `s` starts with `prefix`.
bool StartsWith(std::string_view s, std::string_view prefix);

/// Renders a double with `digits` significant decimals, trimming trailing
/// zeros ("12.50" -> "12.5", "3.00" -> "3").
std::string FormatDouble(double v, int digits = 2);

}  // namespace gumbo

#endif  // GUMBO_COMMON_STR_UTIL_H_
