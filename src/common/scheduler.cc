#include "common/scheduler.h"

#include <chrono>

#include "common/config.h"

namespace gumbo {

namespace {

uint64_t NowUs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

// Worker identity: lets Push route a worker's own submissions (morsel
// chain continuations) onto that worker's deque for LIFO cache-hot
// pickup. Non-worker threads (service threads, tests, Wait helpers)
// route through the injection queue instead.
thread_local Scheduler* tls_scheduler = nullptr;
thread_local size_t tls_worker = 0;

// Every kStarvationPeriod-th dispatch scans low -> high so a saturated
// high class cannot starve background work indefinitely. Prime-ish and
// small enough that a low ticket waits at most a handful of morsels.
constexpr uint64_t kStarvationPeriod = 13;

}  // namespace

SchedOptions SchedOptions::FromEnv() {
  const common::RuntimeConfig& cfg = common::RuntimeConfig::Get();
  SchedOptions o;
  o.morsel_rows = cfg.morsel_rows.value_or(o.morsel_rows);
  if (cfg.disable_stealing.value_or(false)) o.stealing = false;
  o.max_task_retries = cfg.max_task_retries.value_or(o.max_task_retries);
  return o;
}

// Group state shared between the owning TaskGroup, its tickets in the
// scheduler deques, and any thread currently running one of its
// closures. Closures live here (not in the tickets): a ticket is only a
// hint that this group probably has a closure to run, so a helping
// Wait() can drain closures directly and the leftover tickets turn
// stale harmlessly.
struct Scheduler::TaskGroup::State {
  std::mutex mu;
  std::condition_variable cv_done;
  std::deque<std::function<void()>> closures;
  size_t pending = 0;  ///< submitted - completed
  size_t running = 0;  ///< closures currently executing
  SchedPriority priority = SchedPriority::kNormal;

  // Stall accounting (under mu): the group is stalled while it has
  // queued closures but none running — runnable-but-stolen-from time.
  bool stalled = false;
  uint64_t stall_since_us = 0;
  uint64_t stall_us = 0;
  uint64_t busy_us = 0;
  uint64_t morsels = 0;
};

Scheduler::Scheduler(size_t num_workers, bool stealing) : stealing_(stealing) {
  if (num_workers == 0) {
    num_workers = std::thread::hardware_concurrency();
    if (num_workers == 0) num_workers = 4;
  }
  queues_.resize(num_workers);
  workers_.reserve(num_workers);
  for (size_t i = 0; i < num_workers; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

Scheduler::~Scheduler() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  cv_work_.notify_all();
  // Workers only exit once NextTicket finds every deque empty, so all
  // queued work (including continuations pushed while draining) runs.
  for (auto& w : workers_) w.join();
}

Scheduler& Scheduler::Global() {
  static Scheduler* scheduler = [] {
    const size_t workers =
        common::RuntimeConfig::Get().sched_workers.value_or(0);
    return new Scheduler(workers);
  }();
  return *scheduler;
}

SchedulerStats Scheduler::stats() const {
  SchedulerStats s;
  s.submitted = submitted_.load(std::memory_order_relaxed);
  s.morsels = morsels_.load(std::memory_order_relaxed);
  s.local_hits = local_hits_.load(std::memory_order_relaxed);
  s.global_hits = global_hits_.load(std::memory_order_relaxed);
  s.steals = steals_.load(std::memory_order_relaxed);
  s.stale_tickets = stale_tickets_.load(std::memory_order_relaxed);
  s.inversions_avoided = inversions_avoided_.load(std::memory_order_relaxed);
  s.starvation_grants = starvation_grants_.load(std::memory_order_relaxed);
  return s;
}

void Scheduler::Push(std::shared_ptr<TaskGroup::State> state,
                     SchedPriority prio) {
  const int p = static_cast<int>(prio);
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (tls_scheduler == this) {
      // A worker scheduling from inside a closure (a chain continuation
      // or a nested group): push LIFO onto its own deque so it picks the
      // cache-hot ticket right back up unless someone steals it first.
      queues_[tls_worker].deques[p].push_back(std::move(state));
    } else {
      global_[p].push_back(std::move(state));
    }
  }
  cv_work_.notify_one();
  submitted_.fetch_add(1, std::memory_order_relaxed);
}

// Runs one closure of `state` on the calling thread if any is queued.
// Shared by workers (via tickets) and helping waiters; `stale`
// distinguishes a ticket that found its closure already drained from a
// waiter probing an empty queue.
bool Scheduler::RunClosure(const std::shared_ptr<TaskGroup::State>& s,
                           std::atomic<uint64_t>* stale_counter,
                           std::atomic<uint64_t>* morsel_counter) {
  std::function<void()> fn;
  {
    std::lock_guard<std::mutex> lock(s->mu);
    if (s->closures.empty()) {
      if (stale_counter) {
        stale_counter->fetch_add(1, std::memory_order_relaxed);
      }
      return false;
    }
    fn = std::move(s->closures.front());
    s->closures.pop_front();
    s->running++;
    if (s->stalled) {
      s->stall_us += NowUs() - s->stall_since_us;
      s->stalled = false;
    }
  }
  const uint64_t start = NowUs();
  fn();
  const uint64_t elapsed = NowUs() - start;
  bool done;
  {
    std::lock_guard<std::mutex> lock(s->mu);
    s->busy_us += elapsed;
    s->morsels++;
    s->running--;
    s->pending--;
    if (s->running == 0 && !s->closures.empty()) {
      s->stalled = true;
      s->stall_since_us = NowUs();
    }
    done = (s->pending == 0);
  }
  if (done) s->cv_done.notify_all();
  morsel_counter->fetch_add(1, std::memory_order_relaxed);
  return true;
}

bool Scheduler::NextTicket(size_t worker,
                           std::shared_ptr<TaskGroup::State>* out) {
  WorkerState& me = queues_[worker];
  const uint64_t n = me.dispatches++;
  const bool inverted = (n % kStarvationPeriod == kStarvationPeriod - 1);

  auto any_queued_at = [&](int p) {
    if (!global_[p].empty()) return true;
    for (const auto& w : queues_) {
      if (!w.deques[p].empty()) return true;
    }
    return false;
  };
  auto note_dispatch = [&](int p) {
    if (inverted) {
      for (int q = 0; q < p; ++q) {
        if (any_queued_at(q)) {
          starvation_grants_.fetch_add(1, std::memory_order_relaxed);
          break;
        }
      }
    } else {
      for (int q = p + 1; q < static_cast<int>(kNumSchedPriorities); ++q) {
        if (any_queued_at(q)) {
          inversions_avoided_.fetch_add(1, std::memory_order_relaxed);
          break;
        }
      }
    }
  };

  for (size_t oi = 0; oi < kNumSchedPriorities; ++oi) {
    const int p = inverted ? static_cast<int>(kNumSchedPriorities - 1 - oi)
                           : static_cast<int>(oi);
    if (!me.deques[p].empty()) {
      *out = std::move(me.deques[p].back());
      me.deques[p].pop_back();  // LIFO: newest local ticket is cache-hot
      local_hits_.fetch_add(1, std::memory_order_relaxed);
      note_dispatch(p);
      return true;
    }
    if (!global_[p].empty()) {
      *out = std::move(global_[p].front());
      global_[p].pop_front();
      global_hits_.fetch_add(1, std::memory_order_relaxed);
      note_dispatch(p);
      return true;
    }
    if (stealing_) {
      for (size_t v = 1; v < queues_.size(); ++v) {
        WorkerState& victim = queues_[(worker + v) % queues_.size()];
        if (!victim.deques[p].empty()) {
          *out = std::move(victim.deques[p].front());
          victim.deques[p].pop_front();  // FIFO: steal the coldest ticket
          steals_.fetch_add(1, std::memory_order_relaxed);
          note_dispatch(p);
          return true;
        }
      }
    }
  }
  return false;
}

void Scheduler::WorkerLoop(size_t worker) {
  tls_scheduler = this;
  tls_worker = worker;
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    std::shared_ptr<TaskGroup::State> ticket;
    if (NextTicket(worker, &ticket)) {
      lock.unlock();
      RunClosure(ticket, &stale_tickets_, &morsels_);
      ticket.reset();
      lock.lock();
      continue;
    }
    if (shutdown_) break;
    cv_work_.wait(lock);
  }
  tls_scheduler = nullptr;
}

Scheduler::TaskGroup::TaskGroup(const SchedContext& ctx)
    : state_(std::make_shared<State>()),
      scheduler_(ctx.scheduler != nullptr ? ctx.scheduler
                                          : &Scheduler::Global()),
      metrics_(ctx.metrics) {
  state_->priority = ctx.priority;
}

Scheduler::TaskGroup::~TaskGroup() { Wait(); }

void Scheduler::TaskGroup::Submit(std::function<void()> fn) {
  bool notify_waiter;
  {
    std::lock_guard<std::mutex> lock(state_->mu);
    state_->closures.push_back(std::move(fn));
    state_->pending++;
    if (state_->running == 0 && !state_->stalled) {
      // Queued with nothing running: the clock on runnable-but-unserved
      // time starts now (first claim stops it).
      state_->stalled = true;
      state_->stall_since_us = NowUs();
    }
    // A Wait()er may be blocked on cv_done with an empty closure queue;
    // a new closure means it should resume helping.
    notify_waiter = (state_->pending > state_->closures.size());
  }
  if (notify_waiter) state_->cv_done.notify_all();
  scheduler_->Push(state_, state_->priority);
}

void Scheduler::TaskGroup::Wait() {
  std::unique_lock<std::mutex> lock(state_->mu);
  while (state_->pending != 0) {
    if (state_->closures.empty()) {
      // Everything claimed by workers; block until the in-flight
      // closures finish or a chain continuation adds new ones.
      state_->cv_done.wait(lock, [&] {
        return state_->pending == 0 || !state_->closures.empty();
      });
      continue;
    }
    // Help: run a queued closure on this thread. The scheduler is only
    // touched on this path, so a group whose work was fully drained by
    // ~Scheduler can be waited on (and destroyed) after the scheduler
    // is gone, as the shutdown contract promises.
    lock.unlock();
    RunClosure(state_, /*stale_counter=*/nullptr, &scheduler_->morsels_);
    lock.lock();
  }
  if (metrics_ != nullptr) {
    metrics_->stall_us.fetch_add(state_->stall_us, std::memory_order_relaxed);
    metrics_->busy_us.fetch_add(state_->busy_us, std::memory_order_relaxed);
    metrics_->morsels.fetch_add(state_->morsels, std::memory_order_relaxed);
    state_->stall_us = 0;
    state_->busy_us = 0;
    state_->morsels = 0;  // flushed; Wait may run again from the dtor
  }
}

void Scheduler::ParallelFor(size_t n, const std::function<void(size_t)>& fn,
                            const SchedContext& ctx) {
  if (n == 0) return;
  if (n == 1) {
    fn(0);
    return;
  }
  SchedContext local = ctx;
  local.scheduler = this;
  TaskGroup group(local);
  for (size_t i = 0; i < n; ++i) {
    group.Submit([&fn, i] { fn(i); });
  }
  group.Wait();
}

}  // namespace gumbo
