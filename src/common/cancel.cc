#include "common/cancel.h"

namespace gumbo {

void CancelToken::SetDeadline(Clock::time_point deadline) {
  const int64_t ns = deadline.time_since_epoch().count();
  int64_t cur = deadline_ns_.load(std::memory_order_relaxed);
  // Earliest deadline wins: tighten monotonically so a service default
  // and a per-query deadline compose to the stricter one.
  while (ns < cur && !deadline_ns_.compare_exchange_weak(
                         cur, ns, std::memory_order_relaxed)) {
  }
}

void CancelToken::Latch(const Status& status) const {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (terminal_.ok()) {
      terminal_ = status;
      fired_at_ = Clock::now();
    }
  }
  cancelled_.store(true, std::memory_order_release);
}

void CancelToken::Cancel(std::string reason) {
  Latch(Status::Cancelled(std::move(reason)));
}

void CancelToken::CancelWithStatus(const Status& status) {
  Latch(status.ok() ? Status::Cancelled("cancelled") : status);
}

Status CancelToken::Check() const {
  if (!cancelled_.load(std::memory_order_acquire)) {
    if (!DeadlinePassed()) return Status::Ok();
    Latch(Status::DeadlineExceeded("query deadline exceeded"));
  }
  std::lock_guard<std::mutex> lock(mu_);
  return terminal_;
}

CancelToken::Clock::time_point CancelToken::fired_at() const {
  std::lock_guard<std::mutex> lock(mu_);
  return fired_at_;
}

}  // namespace gumbo
