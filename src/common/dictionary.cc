#include "common/dictionary.h"

namespace gumbo {

Dictionary& Dictionary::Global() {
  static Dictionary* dict = new Dictionary();
  return *dict;
}

}  // namespace gumbo
