// TablePrinter: aligned text tables for the benchmark harnesses, which
// regenerate the paper's tables/figures as console output.
#ifndef GUMBO_COMMON_TABLE_PRINTER_H_
#define GUMBO_COMMON_TABLE_PRINTER_H_

#include <string>
#include <vector>

namespace gumbo {

/// Collects rows of string cells and renders them with padded columns:
///
///   TablePrinter tp({"Query", "SEQ", "PAR"});
///   tp.AddRow({"A1", "233", "137"});
///   std::cout << tp.Render();
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> header)
      : header_(std::move(header)) {}

  void AddRow(std::vector<std::string> row) { rows_.push_back(std::move(row)); }

  /// Adds a horizontal separator line at the current position.
  void AddSeparator() { separators_.push_back(rows_.size()); }

  std::string Render() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
  std::vector<size_t> separators_;
};

}  // namespace gumbo

#endif  // GUMBO_COMMON_TABLE_PRINTER_H_
