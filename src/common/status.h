// Status: error handling without exceptions, in the style of
// absl::Status / rocksdb::Status. All fallible public APIs in gumbo return
// Status (or Result<T>, see result.h).
#ifndef GUMBO_COMMON_STATUS_H_
#define GUMBO_COMMON_STATUS_H_

#include <ostream>
#include <string>
#include <utility>

namespace gumbo {

/// Canonical error space, a pragmatic subset of the absl canonical codes.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kFailedPrecondition,
  kOutOfRange,
  kUnimplemented,
  kInternal,
  kParseError,
  kDeadlineExceeded,
  kCancelled,
  kResourceExhausted,
  kUnavailable,
};

/// Whether an operation that failed with `code` may be retried verbatim
/// with a chance of success. Only kUnavailable qualifies: it marks
/// transient failures (injected faults, lost tasks) whose re-execution is
/// idempotent by the task-retry contract (DESIGN.md §11). Deadline,
/// cancellation, and shedding outcomes are final; everything else is a
/// deterministic error that would simply recur.
inline bool IsRetryable(StatusCode code) {
  return code == StatusCode::kUnavailable;
}

/// Returns a stable human-readable name, e.g. "InvalidArgument".
const char* StatusCodeToString(StatusCode code);

/// A Status is either OK or carries an error code plus a message.
///
/// Typical use:
///   Status s = DoThing();
///   if (!s.ok()) return s;
/// or via the GUMBO_RETURN_IF_ERROR macro.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

}  // namespace gumbo

/// Propagates a non-OK Status to the caller.
#define GUMBO_RETURN_IF_ERROR(expr)                \
  do {                                             \
    ::gumbo::Status gumbo_status_tmp_ = (expr);    \
    if (!gumbo_status_tmp_.ok()) {                 \
      return gumbo_status_tmp_;                    \
    }                                              \
  } while (false)

#endif  // GUMBO_COMMON_STATUS_H_
