#include "common/config.h"

#include <atomic>
#include <cstdlib>
#include <string_view>

namespace gumbo::common {

namespace {

// Parse helpers. Each mirrors the historical per-site semantics exactly:
// a value the old call site would have ignored leaves the knob unset.

// Unsigned integer, any trailing garbage tolerated (strtoull semantics
// the scheduler/bench knobs always had).
std::optional<uint64_t> U64Prefix(const char* v) {
  if (v == nullptr) return std::nullopt;
  char* end = nullptr;
  const unsigned long long parsed = std::strtoull(v, &end, 10);
  if (end == v) return std::nullopt;
  return static_cast<uint64_t>(parsed);
}

// Unsigned integer, full-string strict (the soak harness's EnvU64).
std::optional<uint64_t> U64Strict(const char* v) {
  if (v == nullptr || *v == '\0') return std::nullopt;
  char* end = nullptr;
  const unsigned long long parsed = std::strtoull(v, &end, 10);
  if (end == nullptr || *end != '\0') return std::nullopt;
  return static_cast<uint64_t>(parsed);
}

// Boolean flag: empty or missing = unset, "0" = false, anything else =
// true (the GUMBO_DISABLE_* convention).
std::optional<bool> Flag(const char* v) {
  if (v == nullptr || v[0] == '\0') return std::nullopt;
  return std::string_view(v) != "0";
}

std::optional<double> PositiveF64(const char* v) {
  if (v == nullptr) return std::nullopt;
  char* end = nullptr;
  const double parsed = std::strtod(v, &end);
  if (end == v || parsed <= 0.0) return std::nullopt;
  return parsed;
}

std::optional<std::string> NonEmptyStr(const char* v) {
  if (v == nullptr || *v == '\0') return std::nullopt;
  return std::string(v);
}

// The innermost test override; null = use the env-parsed config.
std::atomic<const RuntimeConfig*> g_override{nullptr};

template <typename T>
void DescribeKnob(std::string* out, const char* name,
                  const std::optional<T>& v) {
  *out += "  ";
  *out += name;
  size_t pad = 26;
  for (const char* c = name; *c != '\0'; ++c) {
    if (pad > 0) --pad;
  }
  out->append(pad, ' ');
  *out += "= ";
  if (!v.has_value()) {
    *out += "(unset)";
  } else if constexpr (std::is_same_v<T, std::string>) {
    *out += *v;
  } else if constexpr (std::is_same_v<T, bool>) {
    *out += *v ? "1" : "0";
  } else if constexpr (std::is_same_v<T, double>) {
    *out += std::to_string(*v);
  } else {
    *out += std::to_string(static_cast<unsigned long long>(*v));
  }
  *out += "\n";
}

}  // namespace

RuntimeConfig RuntimeConfig::FromEnv() {
  RuntimeConfig c;
  // Scheduler: GUMBO_MORSEL_ROWS and GUMBO_SCHED_WORKERS require > 0;
  // GUMBO_MAX_TASK_RETRIES accepts 0 (retries off).
  if (auto v = U64Prefix(std::getenv("GUMBO_MORSEL_ROWS")); v && *v > 0) {
    c.morsel_rows = static_cast<size_t>(*v);
  }
  c.disable_stealing = Flag(std::getenv("GUMBO_DISABLE_STEALING"));
  if (auto v = U64Prefix(std::getenv("GUMBO_MAX_TASK_RETRIES"))) {
    c.max_task_retries = static_cast<uint32_t>(*v);
  }
  if (auto v = U64Prefix(std::getenv("GUMBO_SCHED_WORKERS")); v && *v > 0) {
    c.sched_workers = static_cast<size_t>(*v);
  }

  c.disable_combiners = Flag(std::getenv("GUMBO_DISABLE_COMBINERS"));
  c.disable_filters = Flag(std::getenv("GUMBO_DISABLE_FILTERS"));

  c.fault_seed = U64Prefix(std::getenv("GUMBO_FAULT_SEED"));
  c.fault_rate = PositiveF64(std::getenv("GUMBO_FAULT_RATE"));
  c.fault_sites = NonEmptyStr(std::getenv("GUMBO_FAULT_SITES"));

  c.disable_delta = Flag(std::getenv("GUMBO_DISABLE_DELTA"));
  // Historical atoll semantics: the variable being set is the signal,
  // however mangled its value.
  if (const char* v = std::getenv("GUMBO_RESULT_CACHE_CAP")) {
    c.result_cache_cap = static_cast<size_t>(std::atoll(v));
  }

  if (auto v = U64Prefix(std::getenv("GUMBO_SHARDS")); v && *v > 0) {
    c.shards = static_cast<int>(*v);
  }
  c.transport = NonEmptyStr(std::getenv("GUMBO_TRANSPORT"));
  c.dist_dir = NonEmptyStr(std::getenv("GUMBO_DIST_DIR"));

  c.soak_seed = U64Strict(std::getenv("GUMBO_SOAK_SEED"));
  c.soak_iters = U64Strict(std::getenv("GUMBO_SOAK_ITERS"));
  c.soak_tuples = U64Strict(std::getenv("GUMBO_SOAK_TUPLES"));
  c.soak_mutate = U64Strict(std::getenv("GUMBO_SOAK_MUTATE"));

  if (const char* v = std::getenv("GUMBO_BENCH_TUPLES")) {
    const size_t t = static_cast<size_t>(std::strtoull(v, nullptr, 10));
    c.bench_tuples = t < 100 ? 100 : t;
  }
  if (const char* v = std::getenv("GUMBO_BENCH_SEED")) {
    c.bench_seed = std::strtoull(v, nullptr, 10);
  }
  c.bench_sequential = Flag(std::getenv("GUMBO_BENCH_SEQUENTIAL"));
  // Presence alone enables phase output (even "0" did historically).
  if (std::getenv("GUMBO_BENCH_PHASES") != nullptr) c.bench_phases = true;
  return c;
}

const RuntimeConfig& RuntimeConfig::Get() {
  if (const RuntimeConfig* o = g_override.load(std::memory_order_acquire)) {
    return *o;
  }
  static const RuntimeConfig* parsed = new RuntimeConfig(FromEnv());
  return *parsed;
}

std::string RuntimeConfig::Describe() const {
  std::string s = "runtime config (GUMBO_* environment overrides):\n";
  DescribeKnob(&s, "GUMBO_MORSEL_ROWS", morsel_rows);
  DescribeKnob(&s, "GUMBO_DISABLE_STEALING", disable_stealing);
  DescribeKnob(&s, "GUMBO_MAX_TASK_RETRIES", max_task_retries);
  DescribeKnob(&s, "GUMBO_SCHED_WORKERS", sched_workers);
  DescribeKnob(&s, "GUMBO_DISABLE_COMBINERS", disable_combiners);
  DescribeKnob(&s, "GUMBO_DISABLE_FILTERS", disable_filters);
  DescribeKnob(&s, "GUMBO_FAULT_SEED", fault_seed);
  DescribeKnob(&s, "GUMBO_FAULT_RATE", fault_rate);
  DescribeKnob(&s, "GUMBO_FAULT_SITES", fault_sites);
  DescribeKnob(&s, "GUMBO_DISABLE_DELTA", disable_delta);
  DescribeKnob(&s, "GUMBO_RESULT_CACHE_CAP", result_cache_cap);
  DescribeKnob(&s, "GUMBO_SHARDS", shards);
  DescribeKnob(&s, "GUMBO_TRANSPORT", transport);
  DescribeKnob(&s, "GUMBO_DIST_DIR", dist_dir);
  DescribeKnob(&s, "GUMBO_SOAK_SEED", soak_seed);
  DescribeKnob(&s, "GUMBO_SOAK_ITERS", soak_iters);
  DescribeKnob(&s, "GUMBO_SOAK_TUPLES", soak_tuples);
  DescribeKnob(&s, "GUMBO_SOAK_MUTATE", soak_mutate);
  DescribeKnob(&s, "GUMBO_BENCH_TUPLES", bench_tuples);
  DescribeKnob(&s, "GUMBO_BENCH_SEED", bench_seed);
  DescribeKnob(&s, "GUMBO_BENCH_SEQUENTIAL", bench_sequential);
  DescribeKnob(&s, "GUMBO_BENCH_PHASES", bench_phases);
  return s;
}

RuntimeConfig::ScopedOverride::ScopedOverride(RuntimeConfig cfg)
    : cfg_(std::make_unique<const RuntimeConfig>(std::move(cfg))),
      prev_(g_override.exchange(cfg_.get(), std::memory_order_acq_rel)) {}

RuntimeConfig::ScopedOverride::~ScopedOverride() {
  g_override.store(prev_, std::memory_order_release);
}

}  // namespace gumbo::common
