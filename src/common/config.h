// RuntimeConfig: every GUMBO_* environment knob, parsed once in one
// place instead of scattered getenv calls across scheduler, fault
// injector, operator options, serve layer, soak harness, and benches.
//
// The contract is *layering*, not competition: programmatic options keep
// their struct defaults, and each knob here is a std::optional that is
// engaged only when its environment variable was set (and parsed) — the
// consuming code applies `cfg.knob.value_or(programmatic_default)`. That
// keeps the historical env-wins behavior while making the whole
// configuration injectable: tests install a ScopedOverride instead of
// mutating the process environment, and `--help` / `\stats` surfaces can
// print Describe() so a running binary can show which knobs are live.
#ifndef GUMBO_COMMON_CONFIG_H_
#define GUMBO_COMMON_CONFIG_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>

namespace gumbo::common {

struct RuntimeConfig {
  // ---- Morsel scheduler (DESIGN.md §9) ----
  std::optional<size_t> morsel_rows;         ///< GUMBO_MORSEL_ROWS (> 0)
  std::optional<bool> disable_stealing;      ///< GUMBO_DISABLE_STEALING
  std::optional<uint32_t> max_task_retries;  ///< GUMBO_MAX_TASK_RETRIES
  std::optional<size_t> sched_workers;       ///< GUMBO_SCHED_WORKERS (> 0)

  // ---- Operator ablations (DESIGN.md §5.4) ----
  std::optional<bool> disable_combiners;  ///< GUMBO_DISABLE_COMBINERS
  std::optional<bool> disable_filters;    ///< GUMBO_DISABLE_FILTERS

  // ---- Fault injection (DESIGN.md §11) ----
  std::optional<uint64_t> fault_seed;    ///< GUMBO_FAULT_SEED
  std::optional<double> fault_rate;      ///< GUMBO_FAULT_RATE (> 0)
  std::optional<std::string> fault_sites;  ///< GUMBO_FAULT_SITES (site list)

  // ---- Serve layer (DESIGN.md §12) ----
  std::optional<bool> disable_delta;        ///< GUMBO_DISABLE_DELTA
  std::optional<size_t> result_cache_cap;   ///< GUMBO_RESULT_CACHE_CAP

  // ---- Distribution (DESIGN.md §13) ----
  std::optional<int> shards;             ///< GUMBO_SHARDS (> 0 worker shards)
  std::optional<std::string> transport;  ///< GUMBO_TRANSPORT (inproc | mmap)
  std::optional<std::string> dist_dir;   ///< GUMBO_DIST_DIR (mmap mailbox)

  // ---- Soak harness ----
  std::optional<uint64_t> soak_seed;    ///< GUMBO_SOAK_SEED
  std::optional<uint64_t> soak_iters;   ///< GUMBO_SOAK_ITERS
  std::optional<uint64_t> soak_tuples;  ///< GUMBO_SOAK_TUPLES
  std::optional<uint64_t> soak_mutate;  ///< GUMBO_SOAK_MUTATE (0/1)

  // ---- Benchmarks ----
  std::optional<size_t> bench_tuples;     ///< GUMBO_BENCH_TUPLES (>= 100)
  std::optional<uint64_t> bench_seed;     ///< GUMBO_BENCH_SEED
  std::optional<bool> bench_sequential;   ///< GUMBO_BENCH_SEQUENTIAL
  std::optional<bool> bench_phases;       ///< GUMBO_BENCH_PHASES (presence)

  /// Fresh parse of the process environment. Unparseable values leave
  /// their knob disengaged, matching the historical per-site fallbacks.
  static RuntimeConfig FromEnv();

  /// The effective process configuration: the innermost ScopedOverride
  /// when one is installed, otherwise the environment parsed exactly
  /// once (first call wins; later setenv calls are invisible — tests
  /// use ScopedOverride instead).
  static const RuntimeConfig& Get();

  /// One knob per line ("GUMBO_MORSEL_ROWS        = 4096" or "(unset)"),
  /// for --help output and the query server's \stats view.
  std::string Describe() const;

  /// RAII test injection: installs `cfg` as RuntimeConfig::Get()'s
  /// result until destruction (restores the previous override, if any).
  /// Readers racing an install see either config, never a torn one.
  class ScopedOverride {
   public:
    explicit ScopedOverride(RuntimeConfig cfg);
    ~ScopedOverride();
    ScopedOverride(const ScopedOverride&) = delete;
    ScopedOverride& operator=(const ScopedOverride&) = delete;

   private:
    std::unique_ptr<const RuntimeConfig> cfg_;
    const RuntimeConfig* prev_;
  };
};

}  // namespace gumbo::common

#endif  // GUMBO_COMMON_CONFIG_H_
