// CancelToken: cooperative cancellation for the execution stack
// (DESIGN.md §11).
//
// The MapReduce substrate has no preemption — a morsel runs to
// completion — so a query is stopped the way real clusters stop tasks:
// every morsel chain checks a shared token at its chain boundaries and
// long scans poll it, and the first failed check aborts the chain with a
// typed Status that propagates cleanly through the round barrier (the
// failing round commits nothing, mr/runtime.h). One token covers three
// reasons to stop:
//
//   * a *deadline* (steady-clock time point): the first Check() at or
//     past it fails with kDeadlineExceeded — a deadline already in the
//     past therefore cancels before the first morsel runs;
//   * an explicit *Cancel(reason)* from any thread (a client gave up, a
//     service is shedding in-flight work): kCancelled;
//   * an injected-fault escalation (FaultInjector exhausting the retry
//     budget cancels the rest of the query instead of letting sibling
//     tasks run to a result nobody will read).
//
// Thread-safety: all members are safe to call concurrently. Check() is a
// couple of relaxed atomic loads on the not-cancelled fast path plus one
// clock read when a deadline is armed — cheap enough for every morsel
// boundary. The reason string is written once (first cancel wins) under
// a mutex and read only after the cancelled flag is observed.
#ifndef GUMBO_COMMON_CANCEL_H_
#define GUMBO_COMMON_CANCEL_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <limits>
#include <mutex>
#include <string>

#include "common/status.h"

namespace gumbo {

class CancelToken {
 public:
  using Clock = std::chrono::steady_clock;

  CancelToken() = default;
  /// Convenience: a token that fires `deadline_ms` from now (<= 0 arms a
  /// deadline already in the past — cancels before any work runs).
  explicit CancelToken(double deadline_ms) { SetDeadlineAfterMs(deadline_ms); }

  CancelToken(const CancelToken&) = delete;
  CancelToken& operator=(const CancelToken&) = delete;
  CancelToken(CancelToken&&) = delete;
  CancelToken& operator=(CancelToken&&) = delete;

  /// Arms (or tightens) the deadline: the earliest deadline ever set
  /// wins, so a service default and a per-query deadline compose to the
  /// stricter of the two.
  void SetDeadline(Clock::time_point deadline);
  void SetDeadlineAfterMs(double deadline_ms) {
    SetDeadline(Clock::now() + std::chrono::microseconds(static_cast<int64_t>(
                                   deadline_ms * 1e3)));
  }

  /// Cancels with kCancelled. The first cancellation (explicit, deadline,
  /// or fault) wins; later calls are no-ops.
  void Cancel(std::string reason);
  /// Cancels with an arbitrary terminal status (the fault-escalation
  /// path). `status` must not be OK.
  void CancelWithStatus(const Status& status);

  /// OK while neither cancelled nor past the deadline; afterwards the
  /// sticky terminal status (kCancelled / kDeadlineExceeded / the
  /// escalated fault status). The first deadline miss latches, so every
  /// later Check returns the same status.
  Status Check() const;

  /// True once any cancellation latched (never resets).
  bool cancelled() const {
    return cancelled_.load(std::memory_order_acquire) ||
           DeadlinePassed();
  }

  /// When the token first latched (for cancel-latency attribution:
  /// response time minus this is how long cancellation took to take
  /// effect). Clock::time_point::min() while not cancelled.
  Clock::time_point fired_at() const;

 private:
  bool DeadlinePassed() const {
    const int64_t d = deadline_ns_.load(std::memory_order_relaxed);
    return d != kNoDeadline &&
           Clock::now().time_since_epoch().count() >= d;
  }
  /// Latches `status` as the terminal state; first caller wins.
  void Latch(const Status& status) const;

  static constexpr int64_t kNoDeadline =
      std::numeric_limits<int64_t>::max();

  std::atomic<int64_t> deadline_ns_{kNoDeadline};
  mutable std::atomic<bool> cancelled_{false};
  mutable std::mutex mu_;            ///< guards the latch below
  mutable Status terminal_;          ///< set once, read after cancelled_
  mutable Clock::time_point fired_at_ = Clock::time_point::min();
};

/// Checks `token` if there is one: the universal morsel-boundary poll
/// (a null token means the caller runs uncancellable, e.g. direct
/// engine/runtime use outside the serving layer).
inline Status CheckCancel(const CancelToken* token) {
  return token == nullptr ? Status::Ok() : token->Check();
}

}  // namespace gumbo

#endif  // GUMBO_COMMON_CANCEL_H_
