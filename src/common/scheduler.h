// Morsel-driven work-stealing scheduler (DESIGN.md §9).
//
// The execution stack used to parallelize with whole-phase ParallelFor
// calls on a shared FIFO thread pool: every in-flight query grabbed the
// pool for an entire map or reduce phase, so concurrent queries fought
// for workers with no notion of priority or granularity
// (BENCH_serve.json's speedup_concurrency 0.92 regression). This
// scheduler replaces that substrate with *morsel-sized tickets* on
// per-worker priority deques:
//
//   * work arrives as closures submitted into a TaskGroup; each closure
//     is one morsel (a bounded row/partition range over the flat
//     arenas), so a worker returns to the scheduler every few thousand
//     rows and a short query's morsels can overtake a long query's
//     backlog at morsel granularity instead of queueing behind a whole
//     phase;
//   * each worker owns one deque per priority class: local pop is LIFO
//     (the continuation it just created is the cache-hot one), stealing
//     and the shared injection queue are FIFO (steal the oldest, i.e.
//     coldest, ticket);
//   * dispatch is priority-major (own high deque, then the global high
//     queue, then stealing high, before any normal-priority source), so
//     an interactive query's morsels preempt an analytical monster's
//     backlog — with a periodic inversion of the scan order so the low
//     class cannot starve;
//   * Wait() *helps*: the waiting thread drains its own group's
//     closures directly, so nested groups (round -> job -> phase) and
//     external submitters always make progress even when every worker
//     is busy elsewhere — the same re-entrancy contract the old pool's
//     ParallelFor had, at morsel granularity.
//
// Determinism: the scheduler never decides *where* results go, only
// *when* closures run. Every user commits results by morsel index into
// preallocated slots (or chains morsels so order within a chain is
// program order), so outputs are byte-identical to a single-threaded
// run for any worker count, steal pattern, or priority mix (DESIGN.md
// §6, §9).
//
// Locking honesty: the deques share one scheduler mutex. At morsel
// granularity (thousands of rows per ticket) the lock is taken a few
// thousand times per second and is nowhere near contention; the deque
// discipline is about *locality and priority*, not lock-freedom. A
// lock-free Chase-Lev deque is a drop-in upgrade behind this interface
// if profiles ever say otherwise.
#ifndef GUMBO_COMMON_SCHEDULER_H_
#define GUMBO_COMMON_SCHEDULER_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace gumbo {

class CancelToken;
class FaultInjector;

/// Priority classes, highest first. The serving layer maps its admission
/// lanes onto these (fast lane -> kHigh, FIFO -> kNormal; kLow is for
/// background/maintenance work).
enum class SchedPriority : int { kHigh = 0, kNormal = 1, kLow = 2 };
inline constexpr size_t kNumSchedPriorities = 3;

/// Aggregate scheduler counters (monotonic; snapshot via
/// Scheduler::stats). Relaxed atomics — readers want totals, not
/// ordering.
struct SchedulerStats {
  uint64_t submitted = 0;     ///< tickets submitted (morsels scheduled)
  uint64_t morsels = 0;       ///< closures executed (workers + waiters)
  uint64_t local_hits = 0;    ///< dispatches served from the worker's own deque
  uint64_t global_hits = 0;   ///< dispatches served from the injection queue
  uint64_t steals = 0;        ///< dispatches served from another worker's deque
  uint64_t stale_tickets = 0; ///< tickets whose closure a waiter already ran
  /// Dispatches of a kHigh ticket while lower-priority tickets were
  /// queued — each one is a priority inversion the old FIFO pool would
  /// have committed.
  uint64_t inversions_avoided = 0;
  /// Anti-starvation dispatches: the periodic low-before-high scan
  /// actually picked a lower class over a queued higher one.
  uint64_t starvation_grants = 0;
};

/// Per-group (and, summed by callers, per-query) scheduling metrics.
/// `stall_us` is wall time during which the group had queued closures
/// but none running — time the work was runnable but stolen-from
/// (serve::Metrics reports it as the sched_wait phase, DESIGN.md §9).
/// Sums over groups, so parallel stalls of sibling groups can exceed
/// the enclosing wall span (like CPU-seconds).
struct SchedGroupMetrics {
  std::atomic<uint64_t> stall_us{0};
  std::atomic<uint64_t> busy_us{0};   ///< summed closure run time
  std::atomic<uint64_t> morsels{0};
};

/// How a caller wants its work scheduled; threaded from the serving
/// layer through runtime and engine down to every group. Fields at
/// their zero values defer to the engine/scheduler defaults.
struct SchedContext {
  /// nullptr = Scheduler::Global() (or the engine's scheduler when the
  /// engine builds the context).
  class Scheduler* scheduler = nullptr;
  SchedPriority priority = SchedPriority::kNormal;
  /// Rows (map) / records (reduce) per morsel; 0 = the engine default
  /// (GUMBO_MORSEL_ROWS, see SchedOptions).
  size_t morsel_rows = 0;
  /// Optional per-query accumulator for stall/busy/morsel counts.
  SchedGroupMetrics* metrics = nullptr;
  /// Cooperative cancellation: morsel chains poll this at their chain
  /// boundaries and long scans poll it mid-morsel (common/cancel.h).
  /// nullptr = uncancellable.
  const CancelToken* cancel = nullptr;
  /// Deterministic chaos injection (common/fault.h). nullptr or an
  /// inactive injector = fault-free execution; the engine only consults
  /// it at task-retry boundaries, never inside committed output paths.
  const FaultInjector* faults = nullptr;
};

/// Process-wide scheduler tuning, read once from the environment:
///   GUMBO_MORSEL_ROWS       rows per morsel (default 4096)
///   GUMBO_DISABLE_STEALING  workers only use their own deque + the
///                           injection queue (A/B override)
///   GUMBO_SCHED_WORKERS     worker count of Scheduler::Global()
///   GUMBO_MAX_TASK_RETRIES  re-runs of a failed map/shuffle/reduce
///                           task before its fault escalates (default 3)
struct SchedOptions {
  size_t morsel_rows = 4096;
  bool stealing = true;
  uint32_t max_task_retries = 3;
  static SchedOptions FromEnv();
};

class Scheduler {
 public:
  /// Creates a scheduler with `num_workers` workers (0 = hardware
  /// concurrency). `stealing` = false disables victim scans (the
  /// GUMBO_DISABLE_STEALING A/B behavior); tickets then flow through
  /// the submitter's own deque and the injection queue only.
  explicit Scheduler(size_t num_workers = 0,
                     bool stealing = SchedOptions::FromEnv().stealing);
  /// Drains every queued ticket (all submitted closures run), then
  /// joins the workers. Groups with closures still queued are executed,
  /// not dropped — a TaskGroup outliving its scheduler sees all its
  /// work completed.
  ~Scheduler();

  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  size_t num_workers() const { return workers_.size(); }
  bool stealing() const { return stealing_; }

  /// Process-wide scheduler (sized by GUMBO_SCHED_WORKERS, else
  /// hardware concurrency).
  static Scheduler& Global();

  SchedulerStats stats() const;

  /// A set of related morsels that one caller submits and waits on.
  /// Closures may submit further closures into their own group (morsel
  /// chains); Wait returns only when every submitted closure has run.
  /// Not thread-safe for concurrent Submit+Wait by *different* caller
  /// threads — the intended shape is one owner plus the owner's own
  /// closures chaining.
  class TaskGroup {
   public:
    /// `ctx.scheduler` null = Scheduler::Global(). `ctx.metrics`, when
    /// set, receives this group's stall/busy/morsel counts at Wait.
    explicit TaskGroup(const SchedContext& ctx);
    /// Waits for completion (helping) if Wait was not called.
    ~TaskGroup();

    TaskGroup(const TaskGroup&) = delete;
    TaskGroup& operator=(const TaskGroup&) = delete;

    /// Enqueues one morsel. Safe to call from any thread, including
    /// from this group's own running closures (chains).
    void Submit(std::function<void()> fn);

    /// Runs this group's queued closures on the calling thread until
    /// none remain, then blocks until in-flight ones finish (resuming
    /// helping if new closures appear). Flushes metrics to
    /// `ctx.metrics` on return.
    void Wait();

   private:
    friend class Scheduler;
    struct State;
    std::shared_ptr<State> state_;
    Scheduler* scheduler_;
    SchedGroupMetrics* metrics_;
  };

  /// Convenience: runs fn(i) for i in [0, n) as one ticket per index at
  /// `ctx.priority` and blocks until done (helping). Each index is
  /// expected to already be morsel-sized (a partition, a chunk, a job);
  /// use a TaskGroup with chained closures for finer-grained phases.
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn,
                   const SchedContext& ctx);

 private:
  struct Ticket;
  friend class TaskGroup;

  void Push(std::shared_ptr<TaskGroup::State> state, SchedPriority prio);
  /// Runs one queued closure of `state` on the calling thread; false if
  /// none was queued (a stale ticket, counted when `stale` is set).
  static bool RunClosure(const std::shared_ptr<TaskGroup::State>& state,
                         std::atomic<uint64_t>* stale,
                         std::atomic<uint64_t>* morsels);
  void WorkerLoop(size_t worker);
  /// Pops the next ticket for `worker` under mu_; false if none.
  bool NextTicket(size_t worker, std::shared_ptr<TaskGroup::State>* out);

  struct WorkerState {
    std::deque<std::shared_ptr<TaskGroup::State>> deques[kNumSchedPriorities];
    uint64_t dispatches = 0;
  };

  const bool stealing_;
  mutable std::mutex mu_;
  std::condition_variable cv_work_;
  std::vector<WorkerState> queues_;  ///< one per worker
  std::deque<std::shared_ptr<TaskGroup::State>>
      global_[kNumSchedPriorities];  ///< injection queue (non-worker submits)
  bool shutdown_ = false;
  std::vector<std::thread> workers_;

  // Counters (relaxed; see SchedulerStats).
  std::atomic<uint64_t> submitted_{0};
  std::atomic<uint64_t> morsels_{0};
  std::atomic<uint64_t> local_hits_{0};
  std::atomic<uint64_t> global_hits_{0};
  std::atomic<uint64_t> steals_{0};
  std::atomic<uint64_t> stale_tickets_{0};
  std::atomic<uint64_t> inversions_avoided_{0};
  std::atomic<uint64_t> starvation_grants_{0};
};

}  // namespace gumbo

#endif  // GUMBO_COMMON_SCHEDULER_H_
