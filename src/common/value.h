// Value: a data value from the paper's domain D.
//
// Values are 64-bit handles. Integers are stored directly; strings are
// interned through a Dictionary (see dictionary.h) into a disjoint id
// range, so Value comparison/hashing is always a single 64-bit compare.
#ifndef GUMBO_COMMON_VALUE_H_
#define GUMBO_COMMON_VALUE_H_

#include <cstdint>
#include <functional>

namespace gumbo {

/// A single data value. Integers occupy [0, kStringBase); interned string
/// ids occupy [kStringBase, ...). Negative integers are also representable
/// (two's complement raw values with the top tag bit clear are integers).
class Value {
 public:
  /// Raw values at or above this bound denote interned strings.
  static constexpr uint64_t kStringBase = 1ULL << 62;

  /// Default-constructed Values are uninitialized (trivial constructor so
  /// Tuple can hold Values in a union); use Value::Int(0) for a zero value.
  Value() = default;

  static Value Int(int64_t v) { return Value(static_cast<uint64_t>(v) & ~kTagMask()); }

  /// Constructs a string handle from a dictionary id. Prefer
  /// Dictionary::Intern, which calls this.
  static Value StringId(uint64_t id) { return Value(kStringBase | id); }

  /// Reconstructs a Value from its raw 64-bit word — the inverse of raw().
  /// Used by the flat shuffle encoding (Tuple::DecodeFrom), which ships
  /// tuples as bare word arrays.
  static Value FromRaw(uint64_t raw) { return Value(raw); }

  bool is_string() const { return (raw_ & kStringBase) != 0; }
  bool is_int() const { return !is_string(); }

  /// The integer payload; meaningful only if is_int(). Sign-extends the
  /// 62-bit stored value.
  int64_t AsInt() const {
    uint64_t v = raw_;
    // Sign-extend from bit 61.
    if (v & (1ULL << 61)) v |= kTagMask();
    return static_cast<int64_t>(v);
  }

  /// The dictionary id; meaningful only if is_string().
  uint64_t string_id() const { return raw_ & ~kStringBase; }

  uint64_t raw() const { return raw_; }

  bool operator==(const Value& o) const { return raw_ == o.raw_; }
  bool operator!=(const Value& o) const { return raw_ != o.raw_; }
  bool operator<(const Value& o) const { return raw_ < o.raw_; }

 private:
  static constexpr uint64_t kTagMask() { return 3ULL << 62; }
  explicit Value(uint64_t raw) : raw_(raw) {}
  uint64_t raw_;  // Uninitialized by default; see the default constructor.
};

}  // namespace gumbo

namespace std {
template <>
struct hash<gumbo::Value> {
  size_t operator()(const gumbo::Value& v) const noexcept {
    // SplitMix64 finalizer inline to avoid the header dependency.
    uint64_t z = v.raw() + 0x9e3779b97f4a7c15ULL;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return static_cast<size_t>(z ^ (z >> 31));
  }
};
}  // namespace std

#endif  // GUMBO_COMMON_VALUE_H_
