// FaultInjector: seeded, deterministic fault injection for chaos testing
// (DESIGN.md §11).
//
// The paper's GUMBO system runs on a MapReduce cluster whose defining
// robustness property is that tasks fail and are idempotently re-run;
// this injector gives the single-process reproduction the same
// adversary. A fault decision is a pure function of
// (seed, site, unit, attempt):
//
//     fail  <=>  SplitMix64(seed ⊕ site ⊕ unit ⊕ attempt) < rate · 2⁶⁴
//
// so the *set* of failing (site, unit, attempt) triples is fixed by the
// seed alone — independent of thread count, steal pattern, and morsel
// size — and a retried attempt (attempt + 1) re-rolls, so any rate < 1
// terminates. `unit` identifies the idempotent work unit (a map task, a
// reduce partition, a planning key); callers derive it from stable ids,
// never from pointers or timing, which is what makes a chaos failure
// reproducible from GUMBO_FAULT_SEED alone.
//
// Sites name the injection points the execution stack actually guards:
// map scans, shuffle sorts, reduce emits, the planner, and the plan
// cache. A site filter restricts injection for targeted chaos runs.
//
// Thread-safety: ShouldFail is pure apart from the monotonic injected
// counters (relaxed atomics); one injector is shared by every worker.
#ifndef GUMBO_COMMON_FAULT_H_
#define GUMBO_COMMON_FAULT_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <string>

#include "common/status.h"

namespace gumbo {

/// Injection points, one per guarded phase of the stack.
enum class FaultSite : int {
  kMapScan = 0,     ///< a map task's morsel chain (mr/engine.cc)
  kShuffleSort = 1, ///< a partition sort (mr/shuffle.cc)
  kReduceEmit = 2,  ///< a reduce task's morsel chain (mr/engine.cc)
  kPlanner = 3,     ///< a single-flight planning run (serve/service.cc)
  kCache = 4,       ///< a plan-cache lookup (serve/service.cc)
};
inline constexpr size_t kNumFaultSites = 5;

const char* FaultSiteName(FaultSite site);

class FaultInjector {
 public:
  /// `rate` in [0, 1] is the per-(site, unit, attempt) fault
  /// probability. `site_mask` selects sites (bit i = site i); the
  /// default enables all of them.
  explicit FaultInjector(uint64_t seed, double rate,
                         uint32_t site_mask = ~0u);

  /// Reads GUMBO_FAULT_SEED, GUMBO_FAULT_RATE, and GUMBO_FAULT_SITES (a
  /// comma-separated list of site names, e.g. "map-scan,reduce-emit";
  /// unset = all sites). Returns an inactive injector (rate 0) when
  /// GUMBO_FAULT_RATE is unset or 0 — the production configuration.
  static FaultInjector FromEnv();

  uint64_t seed() const { return seed_; }
  double rate() const { return rate_; }
  uint32_t site_mask() const { return site_mask_; }
  bool active() const { return rate_ > 0.0; }
  bool site_enabled(FaultSite site) const {
    return (site_mask_ & (1u << static_cast<int>(site))) != 0;
  }

  /// Deterministically decides whether attempt `attempt` of work unit
  /// `unit` fails at `site`, counting an injection when it does. Callers
  /// observing true must abandon the attempt with InjectedFault() —
  /// before adopting any of its output — and either retry (attempt + 1)
  /// or escalate.
  bool ShouldFail(FaultSite site, uint64_t unit, uint32_t attempt) const;

  /// The typed, retryable status an injected fault surfaces as.
  static Status InjectedFault(FaultSite site, uint64_t unit,
                              uint32_t attempt);

  /// Total injections so far, and the per-site split (relaxed monotonic
  /// counters; exact once the run quiesces).
  uint64_t injected() const {
    return injected_.load(std::memory_order_relaxed);
  }
  uint64_t injected_at(FaultSite site) const {
    return per_site_[static_cast<size_t>(site)].load(
        std::memory_order_relaxed);
  }

 private:
  uint64_t seed_;
  double rate_;
  uint32_t site_mask_;
  uint64_t threshold_;  ///< rate scaled to the 64-bit hash range
  mutable std::atomic<uint64_t> injected_{0};
  mutable std::array<std::atomic<uint64_t>, kNumFaultSites> per_site_{};
};

}  // namespace gumbo

#endif  // GUMBO_COMMON_FAULT_H_
