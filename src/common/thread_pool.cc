#include "common/thread_pool.h"

#include <atomic>

namespace gumbo {

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::thread::hardware_concurrency();
    if (num_threads == 0) num_threads = 4;
  }
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  cv_task_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    queue_.push(std::move(task));
  }
  cv_task_.notify_one();
}

void ThreadPool::ParallelFor(size_t n, const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  if (n == 1) {
    fn(0);
    return;
  }
  // Work-stealing via a shared atomic counter; workers and the calling
  // thread drain indices until exhausted. Completion is tracked per call
  // (not via the pool-wide inflight count), so concurrent and nested
  // ParallelFor calls neither deadlock nor wait on each other: the caller
  // can always finish the loop single-handedly if every worker is busy.
  struct ForState {
    std::atomic<size_t> next{0};
    std::atomic<size_t> done{0};
    size_t n;
    const std::function<void(size_t)>* fn;
    std::mutex mu;
    std::condition_variable cv;

    void Drain() {
      for (size_t i = next.fetch_add(1); i < n; i = next.fetch_add(1)) {
        (*fn)(i);
        if (done.fetch_add(1) + 1 == n) {
          std::unique_lock<std::mutex> lock(mu);
          cv.notify_all();
        }
      }
    }
  };
  auto state = std::make_shared<ForState>();
  state->n = n;
  state->fn = &fn;
  size_t helpers = std::min(n - 1, workers_.size());
  for (size_t t = 0; t < helpers; ++t) {
    Submit([state] { state->Drain(); });
  }
  state->Drain();
  std::unique_lock<std::mutex> lock(state->mu);
  state->cv.wait(lock, [&] { return state->done.load() == n; });
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_task_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (shutdown_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();
  }
}

ThreadPool& ThreadPool::Global() {
  static ThreadPool* pool = new ThreadPool();
  return *pool;
}

}  // namespace gumbo
