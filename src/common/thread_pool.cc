#include "common/thread_pool.h"

#include <atomic>

namespace gumbo {

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::thread::hardware_concurrency();
    if (num_threads == 0) num_threads = 4;
  }
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  cv_task_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    queue_.push(std::move(task));
    ++inflight_;
  }
  cv_task_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_done_.wait(lock, [this] { return inflight_ == 0; });
}

void ThreadPool::ParallelFor(size_t n, const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  if (n == 1) {
    fn(0);
    return;
  }
  // Work-stealing via a shared atomic counter; each pool task drains
  // indices until exhausted. Bounded number of pool tasks.
  auto counter = std::make_shared<std::atomic<size_t>>(0);
  size_t tasks = std::min(n, workers_.size());
  for (size_t t = 0; t < tasks; ++t) {
    Submit([counter, n, &fn] {
      for (size_t i = counter->fetch_add(1); i < n;
           i = counter->fetch_add(1)) {
        fn(i);
      }
    });
  }
  Wait();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_task_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (shutdown_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();
    {
      std::unique_lock<std::mutex> lock(mu_);
      --inflight_;
      if (inflight_ == 0) cv_done_.notify_all();
    }
  }
}

ThreadPool& ThreadPool::Global() {
  static ThreadPool* pool = new ThreadPool();
  return *pool;
}

}  // namespace gumbo
