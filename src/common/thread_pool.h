// A fixed-size thread pool with a re-entrant ParallelFor helper.
//
// The MapReduce engine uses this to execute map/reduce tasks with real
// parallelism, and the round runtime (mr/runtime.h) nests job-level
// ParallelFor calls around the engine's task-level ones. Determinism of
// results is guaranteed by the engine (outputs are collected per task
// index), not by scheduling order.
#ifndef GUMBO_COMMON_THREAD_POOL_H_
#define GUMBO_COMMON_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace gumbo {

class ThreadPool {
 public:
  /// Creates a pool with `num_threads` workers (0 = hardware concurrency).
  explicit ThreadPool(size_t num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t num_threads() const { return workers_.size(); }

  /// Enqueues a task for asynchronous execution. Completion is the
  /// submitter's concern (ParallelFor tracks it per call).
  void Submit(std::function<void()> task);

  /// Runs fn(i) for i in [0, n), distributing across the pool, and blocks
  /// until all iterations finish. fn must be safe to call concurrently for
  /// distinct i.
  ///
  /// Re-entrant: the calling thread participates in the iteration drain, so
  /// nested ParallelFor calls (and calls from pool workers themselves) make
  /// progress even when every worker is busy, and concurrent ParallelFor
  /// calls complete independently of each other's pending work.
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn);

  /// Process-wide pool for engine execution.
  static ThreadPool& Global();

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> queue_;
  std::mutex mu_;
  std::condition_variable cv_task_;
  bool shutdown_ = false;
};

}  // namespace gumbo

#endif  // GUMBO_COMMON_THREAD_POOL_H_
