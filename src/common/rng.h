// Deterministic, seedable pseudo-random number generation.
//
// All randomness in gumbo (data generation, sampling, randomized tests)
// flows through these generators so that every experiment is reproducible
// from a seed. SplitMix64 is used for seeding/hashing, Xoshiro256** for
// bulk generation (both public-domain algorithms by Blackman & Vigna).
#ifndef GUMBO_COMMON_RNG_H_
#define GUMBO_COMMON_RNG_H_

#include <cstdint>

namespace gumbo {

/// SplitMix64: tiny, statistically strong 64-bit mixer. Useful both as a
/// stream generator and as a finalizer for hash values.
class SplitMix64 {
 public:
  explicit SplitMix64(uint64_t seed) : state_(seed) {}

  uint64_t Next() {
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  /// One-shot mix of a 64-bit value (stateless).
  static uint64_t Mix(uint64_t x) {
    SplitMix64 m(x);
    return m.Next();
  }

 private:
  uint64_t state_;
};

/// Xoshiro256**: fast all-purpose 64-bit generator.
class Xoshiro256 {
 public:
  explicit Xoshiro256(uint64_t seed) {
    SplitMix64 sm(seed);
    for (auto& s : state_) s = sm.Next();
  }

  uint64_t Next() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). bound must be > 0. Uses Lemire's
  /// multiply-shift reduction (slight modulo bias is irrelevant for our
  /// bounds, which are far below 2^64).
  uint64_t Uniform(uint64_t bound) {
    return static_cast<uint64_t>(
        (static_cast<unsigned __int128>(Next()) * bound) >> 64);
  }

  /// Uniform double in [0, 1).
  double UniformDouble() {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial with probability p.
  bool Bernoulli(double p) { return UniformDouble() < p; }

 private:
  static uint64_t Rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  uint64_t state_[4];
};

}  // namespace gumbo

#endif  // GUMBO_COMMON_RNG_H_
