#include "common/fault.h"

#include <cmath>
#include <cstring>

#include "common/config.h"
#include "common/rng.h"

namespace gumbo {

namespace {

// Distinct odd multipliers keep the three id streams from cancelling
// under xor (unit and attempt values are small integers in practice).
constexpr uint64_t kSiteSalt = 0x9e3779b97f4a7c15ULL;
constexpr uint64_t kUnitSalt = 0xc2b2ae3d27d4eb4fULL;
constexpr uint64_t kAttemptSalt = 0x165667b19e3779f9ULL;

uint32_t ParseSiteMask(const char* spec) {
  uint32_t mask = 0;
  std::string token;
  for (const char* p = spec;; ++p) {
    if (*p != '\0' && *p != ',') {
      token += *p;
      continue;
    }
    for (size_t s = 0; s < kNumFaultSites; ++s) {
      if (token == FaultSiteName(static_cast<FaultSite>(s))) {
        mask |= 1u << s;
      }
    }
    token.clear();
    if (*p == '\0') break;
  }
  return mask != 0 ? mask : ~0u;  // an unparseable filter enables all
}

}  // namespace

const char* FaultSiteName(FaultSite site) {
  switch (site) {
    case FaultSite::kMapScan:
      return "map-scan";
    case FaultSite::kShuffleSort:
      return "shuffle-sort";
    case FaultSite::kReduceEmit:
      return "reduce-emit";
    case FaultSite::kPlanner:
      return "planner";
    case FaultSite::kCache:
      return "cache";
  }
  return "?";
}

FaultInjector::FaultInjector(uint64_t seed, double rate, uint32_t site_mask)
    : seed_(seed),
      rate_(rate < 0.0 ? 0.0 : (rate > 1.0 ? 1.0 : rate)),
      site_mask_(site_mask) {
  // rate == 1 must always fire: the hash is uniform over [0, 2^64), so
  // the threshold for certainty is the max value + "never below" guard.
  threshold_ = rate_ >= 1.0
                   ? ~0ULL
                   : static_cast<uint64_t>(
                         std::ldexp(rate_, 64) >= std::ldexp(1.0, 64)
                             ? ~0ULL
                             : std::ldexp(rate_, 64));
}

FaultInjector FaultInjector::FromEnv() {
  const common::RuntimeConfig& cfg = common::RuntimeConfig::Get();
  const uint64_t seed = cfg.fault_seed.value_or(0);
  const double rate = cfg.fault_rate.value_or(0.0);
  const uint32_t mask =
      cfg.fault_sites ? ParseSiteMask(cfg.fault_sites->c_str()) : ~0u;
  return FaultInjector(seed, rate, mask);
}

bool FaultInjector::ShouldFail(FaultSite site, uint64_t unit,
                               uint32_t attempt) const {
  if (rate_ <= 0.0 || !site_enabled(site)) return false;
  const uint64_t h = SplitMix64::Mix(
      seed_ ^ (static_cast<uint64_t>(site) * kSiteSalt) ^
      (unit * kUnitSalt) ^ (static_cast<uint64_t>(attempt) * kAttemptSalt));
  if (rate_ < 1.0 && h >= threshold_) return false;
  injected_.fetch_add(1, std::memory_order_relaxed);
  per_site_[static_cast<size_t>(site)].fetch_add(1,
                                                 std::memory_order_relaxed);
  return true;
}

Status FaultInjector::InjectedFault(FaultSite site, uint64_t unit,
                                    uint32_t attempt) {
  return Status::Unavailable(
      "injected fault at " + std::string(FaultSiteName(site)) + " (unit " +
      std::to_string(unit) + ", attempt " + std::to_string(attempt) + ")");
}

}  // namespace gumbo
