// Tuple: an ordered sequence of Values with small-size-optimized storage.
//
// Relations in the paper's experiments have arity at most four, so tuples
// store up to four values inline and spill to the heap only beyond that
// (e.g. composite shuffle keys). Value semantics throughout.
#ifndef GUMBO_COMMON_TUPLE_H_
#define GUMBO_COMMON_TUPLE_H_

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <cstring>
#include <functional>
#include <initializer_list>
#include <string>
#include <vector>

#include "common/value.h"

namespace gumbo {

class Dictionary;

/// SplitMix64-style mixing step shared by Tuple::Hash and the shuffle's
/// flat-key fingerprints (mr/map_output.h). Folding `word` into the
/// running state `h` here — instead of each caller rolling its own — is
/// what guarantees fingerprint == Tuple::Hash() bit for bit, which the
/// shuffle relies on for byte-identical partitioning.
inline uint64_t FingerprintMix(uint64_t h, uint64_t word) {
  uint64_t z = word + h;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// 64-bit fingerprint of a flat-encoded tuple (`arity` raw Value words).
/// Equal to Tuple::Hash() of the decoded tuple by construction.
inline uint64_t TupleFingerprint(const uint64_t* words, uint32_t arity) {
  uint64_t h = 0x9e3779b97f4a7c15ULL ^ arity;
  for (uint32_t i = 0; i < arity; ++i) h = FingerprintMix(h, words[i]);
  return h;
}

/// A fixed-arity row of Values. Cheap to copy at small arity; ordered and
/// hashable so it can serve as a shuffle key.
class Tuple {
 public:
  static constexpr uint32_t kInlineCapacity = 4;

  Tuple() : size_(0), capacity_(kInlineCapacity) {}

  Tuple(std::initializer_list<Value> vals) : Tuple() {
    for (const Value& v : vals) PushBack(v);
  }

  /// Convenience: builds a tuple of integer values.
  static Tuple Ints(std::initializer_list<int64_t> vals) {
    Tuple t;
    for (int64_t v : vals) t.PushBack(Value::Int(v));
    return t;
  }

  Tuple(const Tuple& o) : Tuple() { CopyFrom(o); }
  Tuple(Tuple&& o) noexcept : Tuple() { MoveFrom(std::move(o)); }
  Tuple& operator=(const Tuple& o) {
    if (this != &o) {
      Clear();
      CopyFrom(o);
    }
    return *this;
  }
  Tuple& operator=(Tuple&& o) noexcept {
    if (this != &o) {
      Clear();
      MoveFrom(std::move(o));
    }
    return *this;
  }
  ~Tuple() { Clear(); }

  uint32_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  const Value& operator[](uint32_t i) const {
    assert(i < size_);
    return data()[i];
  }
  Value& operator[](uint32_t i) {
    assert(i < size_);
    return data()[i];
  }

  const Value* begin() const { return data(); }
  const Value* end() const { return data() + size_; }

  void PushBack(Value v) {
    if (size_ == capacity_) Grow();
    data()[size_++] = v;
  }

  void Clear() {
    if (!IsInline()) delete[] heap_;
    size_ = 0;
    capacity_ = kInlineCapacity;
  }

  bool operator==(const Tuple& o) const {
    if (size_ != o.size_) return false;
    const Value* a = data();
    const Value* b = o.data();
    for (uint32_t i = 0; i < size_; ++i) {
      if (!(a[i] == b[i])) return false;
    }
    return true;
  }
  bool operator!=(const Tuple& o) const { return !(*this == o); }

  /// Lexicographic order (by raw value), used for deterministic sorting.
  bool operator<(const Tuple& o) const {
    uint32_t n = std::min(size_, o.size_);
    for (uint32_t i = 0; i < n; ++i) {
      if (data()[i] < o.data()[i]) return true;
      if (o.data()[i] < data()[i]) return false;
    }
    return size_ < o.size_;
  }

  uint64_t Hash() const {
    uint64_t h = 0x9e3779b97f4a7c15ULL ^ size_;
    for (uint32_t i = 0; i < size_; ++i) h = FingerprintMix(h, data()[i].raw());
    return h;
  }

  // ---- Flat encoding (the shuffle's wire form, DESIGN.md §3) ----
  // A tuple's flat form is its size() raw Value words; the arity travels
  // out of band (in the shuffle's key/group headers).

  /// Appends the tuple's raw words to `out`; returns the starting word
  /// offset within `out`.
  size_t EncodeTo(std::vector<uint64_t>* out) const {
    size_t pos = out->size();
    for (uint32_t i = 0; i < size_; ++i) out->push_back(data()[i].raw());
    return pos;
  }

  /// Rebuilds a tuple from `arity` flat words. Round-trips with EncodeTo
  /// for every Value kind (ints incl. negatives, interned strings) and
  /// every arity, including heap-spilled tuples beyond kInlineCapacity.
  static Tuple DecodeFrom(const uint64_t* words, uint32_t arity) {
    Tuple t;
    for (uint32_t i = 0; i < arity; ++i) t.PushBack(Value::FromRaw(words[i]));
    return t;
  }

  /// Renders as "(v1, v2, ...)" resolving strings through `dict` if given.
  std::string ToString(const Dictionary* dict = nullptr) const;

  /// The tuple's values as raw 64-bit words, without copying. A Value is
  /// exactly its raw word (static_assert below), so the value array IS
  /// the flat encoding — this is what makes Tuple → TupleView conversion
  /// free.
  const uint64_t* raw_words() const {
    return reinterpret_cast<const uint64_t*>(data());
  }

 private:
  bool IsInline() const { return capacity_ == kInlineCapacity; }
  Value* data() { return IsInline() ? inline_ : heap_; }
  const Value* data() const { return IsInline() ? inline_ : heap_; }

  void Grow() {
    uint32_t new_cap = capacity_ * 2;
    Value* heap = new Value[new_cap];
    std::copy(data(), data() + size_, heap);
    if (!IsInline()) delete[] heap_;
    heap_ = heap;
    capacity_ = new_cap;
  }

  void CopyFrom(const Tuple& o) {
    for (uint32_t i = 0; i < o.size_; ++i) PushBack(o.data()[i]);
  }

  void MoveFrom(Tuple&& o) {
    if (o.IsInline()) {
      std::copy(o.inline_, o.inline_ + o.size_, inline_);
      size_ = o.size_;
    } else {
      heap_ = o.heap_;
      size_ = o.size_;
      capacity_ = o.capacity_;
      o.capacity_ = kInlineCapacity;
    }
    o.size_ = 0;
  }

  union {
    Value inline_[kInlineCapacity];
    Value* heap_;
  };
  uint32_t size_;
  uint32_t capacity_;
};

static_assert(sizeof(Value) == sizeof(uint64_t),
              "Value must stay a bare word: flat storage and raw_words() "
              "reinterpret Value arrays as uint64_t arrays");

/// A borrowed, zero-copy view of one flat-encoded tuple: a span of raw
/// Value words plus an arity (DESIGN.md §7). This is the scan currency of
/// the flat relation storage — map tasks, filter builders, and reducers
/// all read TupleViews; a heap Tuple is materialized only when a caller
/// genuinely needs an owning copy (ToTuple).
///
/// Comparison and hashing match Tuple exactly: Value order is raw-word
/// order, so lexicographic word compare == Tuple::operator<, and
/// Fingerprint() == Tuple::Hash() of the decoded tuple.
class TupleView {
 public:
  constexpr TupleView() : words_(nullptr), arity_(0) {}
  constexpr TupleView(const uint64_t* words, uint32_t arity)
      : words_(words), arity_(arity) {}
  /// Implicit: a Tuple's value array already is its flat encoding. The
  /// view borrows — it is valid only while the tuple lives.
  TupleView(const Tuple& t) : words_(t.raw_words()), arity_(t.size()) {}

  uint32_t size() const { return arity_; }
  bool empty() const { return arity_ == 0; }
  const uint64_t* words() const { return words_; }

  Value operator[](uint32_t i) const {
    assert(i < arity_);
    return Value::FromRaw(words_[i]);
  }

  /// Materializes an owning Tuple (the only copying operation here).
  Tuple ToTuple() const { return Tuple::DecodeFrom(words_, arity_); }

  /// Equal to Tuple::Hash() of the decoded tuple.
  uint64_t Fingerprint() const { return TupleFingerprint(words_, arity_); }

  bool operator==(TupleView o) const {
    if (arity_ != o.arity_) return false;
    for (uint32_t i = 0; i < arity_; ++i) {
      if (words_[i] != o.words_[i]) return false;
    }
    return true;
  }
  bool operator!=(TupleView o) const { return !(*this == o); }

  /// Lexicographic raw-word order — identical to Tuple::operator< because
  /// Value order is raw order.
  bool operator<(TupleView o) const {
    const uint32_t n = arity_ < o.arity_ ? arity_ : o.arity_;
    for (uint32_t i = 0; i < n; ++i) {
      if (words_[i] != o.words_[i]) return words_[i] < o.words_[i];
    }
    return arity_ < o.arity_;
  }

  std::string ToString(const Dictionary* dict = nullptr) const;

 private:
  const uint64_t* words_;
  uint32_t arity_;
};

}  // namespace gumbo

namespace std {
template <>
struct hash<gumbo::Tuple> {
  size_t operator()(const gumbo::Tuple& t) const noexcept {
    return static_cast<size_t>(t.Hash());
  }
};
}  // namespace std

#endif  // GUMBO_COMMON_TUPLE_H_
