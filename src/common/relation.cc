#include "common/relation.h"

#include <algorithm>
#include <cstring>
#include <numeric>

#include "common/scheduler.h"

namespace gumbo {

namespace {

/// Lexicographic order of two flat rows of `arity` words — identical to
/// Tuple::operator< of the decoded rows (Value order is raw-word order).
inline bool RowLess(const uint64_t* a, const uint64_t* b, uint32_t arity) {
  for (uint32_t i = 0; i < arity; ++i) {
    if (a[i] != b[i]) return a[i] < b[i];
  }
  return false;
}

inline bool RowEquals(const uint64_t* a, const uint64_t* b, uint32_t arity) {
  return arity == 0 ||
         std::memcmp(a, b, arity * sizeof(uint64_t)) == 0;
}

/// Sorts `idx` by the comparator, in parallel when a scheduler is given:
/// power-of-two chunked sorts followed by pairwise in-place merge rounds,
/// each chunk/pair one morsel at the context's priority. The result is a
/// plain sorted permutation, so it is byte-identical for any scheduler
/// (including nullptr).
template <class T, class Less>
void SortIndices(std::vector<T>* idx, Scheduler* scheduler,
                 const SchedContext& ctx, Less less) {
  const size_t n = idx->size();
  constexpr size_t kParallelMin = 1 << 14;  // below this, one sort wins
  if (scheduler == nullptr || n < kParallelMin) {
    std::sort(idx->begin(), idx->end(), less);
    return;
  }
  size_t chunks = 1;
  while (chunks < 64 && n / (chunks * 2) >= (1 << 13)) chunks *= 2;
  if (chunks == 1) {
    std::sort(idx->begin(), idx->end(), less);
    return;
  }
  auto bound = [&](size_t c) { return n * c / chunks; };
  scheduler->ParallelFor(
      chunks,
      [&](size_t c) {
        std::sort(idx->begin() + bound(c), idx->begin() + bound(c + 1), less);
      },
      ctx);
  for (size_t width = 1; width < chunks; width *= 2) {
    const size_t pairs = chunks / (width * 2);
    scheduler->ParallelFor(
        pairs,
        [&](size_t p) {
          const size_t lo = bound(p * width * 2);
          const size_t mid = bound(p * width * 2 + width);
          const size_t hi = bound((p + 1) * width * 2);
          std::inplace_merge(idx->begin() + lo, idx->begin() + mid,
                             idx->begin() + hi, less);
        },
        ctx);
  }
}

}  // namespace

void Relation::Adopt(RelationBuilder&& b) {
  assert(b.arity_ == arity_ && "builder arity mismatch");
  if (!b.empty()) {
    if (empty()) {
      words_ = std::move(b.words_);
      fingerprints_ = std::move(b.fingerprints_);
    } else {
      words_.insert(words_.end(), b.words_.begin(), b.words_.end());
      fingerprints_.insert(fingerprints_.end(), b.fingerprints_.begin(),
                           b.fingerprints_.end());
    }
    ++append_version_;
  }
  b.words_.clear();
  b.fingerprints_.clear();
}

Relation Relation::CloneRange(size_t from, size_t to) const {
  assert(from <= to && to <= size());
  Relation out(name_, arity_);
  out.words_.assign(words_.begin() + static_cast<std::ptrdiff_t>(from * arity_),
                    words_.begin() + static_cast<std::ptrdiff_t>(to * arity_));
  out.fingerprints_.assign(
      fingerprints_.begin() + static_cast<std::ptrdiff_t>(from),
      fingerprints_.begin() + static_cast<std::ptrdiff_t>(to));
  out.bytes_per_tuple_ = bytes_per_tuple_;
  out.representation_scale_ = representation_scale_;
  return out;
}

void Relation::AppendFrom(const Relation& other) {
  assert(other.arity_ == arity_ && "AppendFrom arity mismatch");
  if (other.empty()) return;
  words_.insert(words_.end(), other.words_.begin(), other.words_.end());
  fingerprints_.insert(fingerprints_.end(), other.fingerprints_.begin(),
                       other.fingerprints_.end());
  ++append_version_;
}

void Relation::AppendRaw(const uint64_t* words, const uint64_t* fps,
                         size_t rows) {
  if (rows == 0) return;
  assert(fps[0] == TupleFingerprint(words, arity_) &&
         "AppendRaw fed a fingerprint that does not match its row");
  words_.insert(words_.end(), words, words + rows * arity_);
  fingerprints_.insert(fingerprints_.end(), fps, fps + rows);
  ++append_version_;
}

std::vector<Tuple> Relation::ToTuples() const {
  std::vector<Tuple> out;
  out.reserve(size());
  for (size_t i = 0; i < size(); ++i) out.push_back(TupleAt(i));
  return out;
}

void Relation::SortAndDedupe(Scheduler* scheduler, const SchedContext* ctx) {
  const size_t n = size();
  if (n <= 1) return;
  // Rows may move or vanish below: any held row index or delta watermark
  // into the old arena is void (Database::SettleLoans classifies this as
  // a destructive write).
  ++shape_version_;
  if (arity_ == 0) {
    // All zero-arity rows are equal: the set is a single empty tuple.
    fingerprints_.resize(1);
    return;
  }
  const uint64_t* words = words_.data();
  const uint32_t arity = arity_;
  // 24-byte sort refs with the first two key words inlined (the same
  // trick as the shuffle's RecordRef): for the paper's arities (<= 4)
  // nearly every comparison resolves without an indirection into the
  // arena, and the sort moves 24-byte refs instead of 48-byte Tuples.
  struct SortRef {
    uint64_t word0;
    uint64_t word1;  ///< 0 when arity == 1 (ties then mean equal rows)
    uint32_t idx;
  };
  std::vector<SortRef> refs(n);
  for (size_t i = 0; i < n; ++i) {
    refs[i].word0 = words[i * arity];
    refs[i].word1 = arity > 1 ? words[i * arity + 1] : 0;
    refs[i].idx = static_cast<uint32_t>(i);
  }
  auto less = [words, arity](const SortRef& a, const SortRef& b) {
    if (a.word0 != b.word0) return a.word0 < b.word0;
    if (a.word1 != b.word1) return a.word1 < b.word1;
    for (uint32_t i = 2; i < arity; ++i) {
      const uint64_t wa = words[static_cast<size_t>(a.idx) * arity + i];
      const uint64_t wb = words[static_cast<size_t>(b.idx) * arity + i];
      if (wa != wb) return wa < wb;
    }
    return false;
  };
  SortIndices(&refs, scheduler, ctx != nullptr ? *ctx : SchedContext{}, less);
  // Rebuild the arenas in sorted order, skipping duplicates (adjacent
  // after the sort; equal rows have equal words by definition). Stored
  // fingerprints are permuted along — a row is hashed once in its
  // lifetime, at add time.
  std::vector<uint64_t> new_words(n * arity);
  std::vector<uint64_t> new_fps(n);
  uint64_t* dst = new_words.data();
  size_t kept = 0;
  const uint64_t* prev = nullptr;
  for (size_t k = 0; k < n; ++k) {
    const uint64_t* row = words + static_cast<size_t>(refs[k].idx) * arity;
    if (prev != nullptr && prev[0] == refs[k].word0 &&
        RowEquals(prev, row, arity)) {
      continue;
    }
    std::memcpy(dst + kept * arity, row, arity * sizeof(uint64_t));
    new_fps[kept] = fingerprints_[refs[k].idx];
    ++kept;
    prev = row;
  }
  new_words.resize(kept * arity);
  new_fps.resize(kept);
  words_ = std::move(new_words);
  fingerprints_ = std::move(new_fps);
}

bool Relation::SetEquals(const Relation& other) const {
  if (arity_ != other.arity_) return false;
  if (arity_ == 0) return empty() == other.empty();
  // Fingerprint-bucketed canonicalization: order rows by (fingerprint,
  // words) — the word compare only runs when fingerprints collide — then
  // walk both deduped sequences in lockstep. No arena is copied.
  auto sorted_indices = [](const Relation& r) {
    std::vector<uint32_t> idx(r.size());
    std::iota(idx.begin(), idx.end(), 0u);
    const uint64_t* words = r.words_.data();
    const uint64_t* fps = r.fingerprints_.data();
    const uint32_t arity = r.arity_;
    std::sort(idx.begin(), idx.end(), [&](uint32_t a, uint32_t b) {
      if (fps[a] != fps[b]) return fps[a] < fps[b];
      return RowLess(words + static_cast<size_t>(a) * arity,
                     words + static_cast<size_t>(b) * arity, arity);
    });
    return idx;
  };
  std::vector<uint32_t> ia = sorted_indices(*this);
  std::vector<uint32_t> ib = sorted_indices(other);
  const uint32_t arity = arity_;
  auto row_of = [arity](const Relation& r, uint32_t i) {
    return r.words_.data() + static_cast<size_t>(i) * arity;
  };
  size_t a = 0;
  size_t b = 0;
  while (a < ia.size() && b < ib.size()) {
    const uint64_t* ra = row_of(*this, ia[a]);
    const uint64_t* rb = row_of(other, ib[b]);
    if (fingerprints_[ia[a]] != other.fingerprints_[ib[b]] ||
        !RowEquals(ra, rb, arity)) {
      return false;
    }
    // Skip duplicates of the matched row on both sides.
    do {
      ++a;
    } while (a < ia.size() && RowEquals(ra, row_of(*this, ia[a]), arity));
    do {
      ++b;
    } while (b < ib.size() && RowEquals(rb, row_of(other, ib[b]), arity));
  }
  return a == ia.size() && b == ib.size();
}

}  // namespace gumbo
