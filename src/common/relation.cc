#include "common/relation.h"

#include <algorithm>

namespace gumbo {

void Relation::SortAndDedupe() {
  std::sort(tuples_.begin(), tuples_.end());
  tuples_.erase(std::unique(tuples_.begin(), tuples_.end()), tuples_.end());
}

bool Relation::SetEquals(const Relation& other) const {
  if (arity_ != other.arity_) return false;
  std::vector<Tuple> a = tuples_;
  std::vector<Tuple> b = other.tuples_;
  std::sort(a.begin(), a.end());
  a.erase(std::unique(a.begin(), a.end()), a.end());
  std::sort(b.begin(), b.end());
  b.erase(std::unique(b.begin(), b.end()), b.end());
  return a == b;
}

}  // namespace gumbo
