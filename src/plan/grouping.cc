#include "plan/grouping.h"

#include <algorithm>
#include <map>

namespace gumbo::plan {

std::string Grouping::ToString() const {
  std::string out = "{";
  for (size_t g = 0; g < groups.size(); ++g) {
    if (g > 0) out += ", ";
    out += "{";
    for (size_t i = 0; i < groups[g].size(); ++i) {
      if (i > 0) out += ",";
      out += std::to_string(groups[g][i]);
    }
    out += "}";
  }
  out += "}";
  return out;
}

Result<double> EstimateGroupCost(
    const std::vector<ops::SemiJoinEquation>& equations,
    const std::vector<size_t>& group, const ops::OpOptions& options,
    const cost::CostEstimator& estimator) {
  std::vector<ops::SemiJoinEquation> subset;
  subset.reserve(group.size());
  for (size_t i : group) subset.push_back(equations[i]);
  GUMBO_ASSIGN_OR_RETURN(mr::JobSpec spec,
                         BuildMsjJob(subset, options, "estimate"));
  // Output bound K: one row per guard fact per equation, in the shipped
  // payload representation (paper §4.1 bounds K by the guard size N1).
  double k_mb = 0.0;
  for (const auto& eq : subset) {
    GUMBO_ASSIGN_OR_RETURN(cost::RelationStats stats,
                           estimator.StatsOf(eq.guard_dataset));
    double payload_bytes = options.tuple_id_refs
                               ? 8.0
                               : 10.0 * static_cast<double>(eq.guard.arity());
    k_mb += stats.tuples * payload_bytes / (1024.0 * 1024.0);
  }
  GUMBO_ASSIGN_OR_RETURN(cost::JobEstimate est,
                         estimator.EstimateJob(spec, k_mb));
  return est.cost;
}

namespace {

// Cached group costs keyed by bitmask (n <= 63).
class GroupCostCache {
 public:
  GroupCostCache(const std::vector<ops::SemiJoinEquation>& equations,
                 const ops::OpOptions& options,
                 const cost::CostEstimator& estimator)
      : equations_(equations), options_(options), estimator_(estimator) {}

  Result<double> Cost(uint64_t mask) {
    auto it = cache_.find(mask);
    if (it != cache_.end()) return it->second;
    std::vector<size_t> group;
    for (size_t i = 0; i < equations_.size(); ++i) {
      if (mask & (1ULL << i)) group.push_back(i);
    }
    GUMBO_ASSIGN_OR_RETURN(
        double c, EstimateGroupCost(equations_, group, options_, estimator_));
    cache_.emplace(mask, c);
    return c;
  }

 private:
  const std::vector<ops::SemiJoinEquation>& equations_;
  const ops::OpOptions& options_;
  const cost::CostEstimator& estimator_;
  std::map<uint64_t, double> cache_;
};

}  // namespace

Result<Grouping> GreedyBsgfGrouping(
    const std::vector<ops::SemiJoinEquation>& equations,
    const ops::OpOptions& options, const cost::CostEstimator& estimator) {
  const size_t n = equations.size();
  if (n == 0) return Status::InvalidArgument("grouping: no equations");
  if (n > 63) return Status::OutOfRange("grouping: more than 63 equations");

  GroupCostCache cache(equations, options, estimator);

  // Active groups as bitmasks with their costs.
  std::vector<uint64_t> masks;
  std::vector<double> costs;
  for (size_t i = 0; i < n; ++i) {
    uint64_t m = 1ULL << i;
    GUMBO_ASSIGN_OR_RETURN(double c, cache.Cost(m));
    masks.push_back(m);
    costs.push_back(c);
  }

  // Repeatedly merge the best positive-gain pair.
  while (masks.size() > 1) {
    double best_gain = 0.0;
    size_t best_i = 0, best_j = 0;
    double best_merged_cost = 0.0;
    for (size_t i = 0; i < masks.size(); ++i) {
      for (size_t j = i + 1; j < masks.size(); ++j) {
        GUMBO_ASSIGN_OR_RETURN(double merged, cache.Cost(masks[i] | masks[j]));
        double gain = costs[i] + costs[j] - merged;
        if (gain > best_gain + 1e-12) {
          best_gain = gain;
          best_i = i;
          best_j = j;
          best_merged_cost = merged;
        }
      }
    }
    if (best_gain <= 0.0) break;
    masks[best_i] |= masks[best_j];
    costs[best_i] = best_merged_cost;
    masks.erase(masks.begin() + static_cast<long>(best_j));
    costs.erase(costs.begin() + static_cast<long>(best_j));
  }

  Grouping result;
  for (size_t g = 0; g < masks.size(); ++g) {
    std::vector<size_t> group;
    for (size_t i = 0; i < n; ++i) {
      if (masks[g] & (1ULL << i)) group.push_back(i);
    }
    result.groups.push_back(std::move(group));
    result.total_cost += costs[g];
  }
  // Deterministic order: by smallest member.
  std::sort(result.groups.begin(), result.groups.end());
  return result;
}

namespace {

// Recursive set-partition enumeration: item i joins an existing group or
// opens a new one (canonical / duplicate-free).
Status EnumeratePartitions(size_t i, size_t n, std::vector<uint64_t>* groups,
                           GroupCostCache* cache, Grouping* best) {
  if (i == n) {
    double total = 0.0;
    for (uint64_t mask : *groups) {
      GUMBO_ASSIGN_OR_RETURN(double c, cache->Cost(mask));
      total += c;
    }
    if (best->groups.empty() || total < best->total_cost - 1e-12) {
      best->total_cost = total;
      best->groups.clear();
      for (uint64_t mask : *groups) {
        std::vector<size_t> g;
        for (size_t k = 0; k < n; ++k) {
          if (mask & (1ULL << k)) g.push_back(k);
        }
        best->groups.push_back(std::move(g));
      }
    }
    return Status::Ok();
  }
  uint64_t bit = 1ULL << i;
  for (size_t g = 0; g < groups->size(); ++g) {
    (*groups)[g] |= bit;
    GUMBO_RETURN_IF_ERROR(EnumeratePartitions(i + 1, n, groups, cache, best));
    (*groups)[g] &= ~bit;
  }
  groups->push_back(bit);
  GUMBO_RETURN_IF_ERROR(EnumeratePartitions(i + 1, n, groups, cache, best));
  groups->pop_back();
  return Status::Ok();
}

}  // namespace

Result<Grouping> OptimalGrouping(
    const std::vector<ops::SemiJoinEquation>& equations,
    const ops::OpOptions& options, const cost::CostEstimator& estimator,
    size_t max_n) {
  const size_t n = equations.size();
  if (n == 0) return Status::InvalidArgument("grouping: no equations");
  if (n > max_n || n > 63) {
    return Status::OutOfRange("optimal grouping limited to " +
                              std::to_string(max_n) + " equations, got " +
                              std::to_string(n));
  }
  GroupCostCache cache(equations, options, estimator);
  Grouping best;
  std::vector<uint64_t> groups;
  GUMBO_RETURN_IF_ERROR(EnumeratePartitions(0, n, &groups, &cache, &best));
  std::sort(best.groups.begin(), best.groups.end());
  return best;
}

}  // namespace gumbo::plan
