#include "plan/executor.h"

#include <algorithm>

#include "dist/sharded.h"
#include "sgf/naive_eval.h"

namespace gumbo::plan {

namespace {

// One dispatch for every context-driven entry point: a real cluster shard
// wins over the local harness, which wins over the plain runtime. All
// three produce byte-identical outputs (DESIGN.md §13).
Result<mr::ProgramStats> RunProgram(const mr::Program& program,
                                    mr::Engine* engine, Database* db,
                                    const ExecutionContext& ctx) {
  if (ctx.cluster != nullptr && ctx.cluster->num_shards > 1) {
    dist::ShardedRuntime runtime(engine, *ctx.cluster);
    return runtime.Execute(program, db, ctx.sched);
  }
  if (ctx.local_shards > 1) {
    return dist::ExecuteShardedLocal(engine, program, db, ctx.local_shards,
                                     ctx.sched);
  }
  return mr::Runtime(engine).Execute(program, db, ctx.sched);
}

// The paper's four metrics plus the shuffle/round counters, derived from
// the program statistics — shared by every execution entry point.
void FillMetrics(ExecutionResult* result) {
  // Full reset first: Metrics also carries serving fields (plan_cache_hit,
  // queue_ms, sched_wait_ms) that this derivation does not touch, and
  // max_jobs_per_round folds via std::max — a reused ExecutionResult must
  // not leak a previous execution's values into this one
  // (tests/serve_test.cc pins this).
  result->metrics = Metrics{};
  Metrics& m = result->metrics;
  m.net_time = result->stats.net_time;
  m.total_time = result->stats.total_time;
  m.input_mb = result->stats.HdfsReadMb();
  m.communication_mb =
      result->stats.ShuffleMb() + result->stats.FilterBroadcastMb();
  m.shuffle_mb = result->stats.ShuffleMb();
  m.dist_wire_mb = result->stats.DistWireMb();
  m.output_mb = result->stats.HdfsWriteMb();
  m.shuffle_records = result->stats.ShuffleRecords();
  m.shuffle_messages = result->stats.ShuffleMessages();
  m.combined_messages = result->stats.CombinedMessages();
  m.filtered_messages = result->stats.FilteredMessages();
  m.filter_broadcast_mb = result->stats.FilterBroadcastMb();
  m.wall_ms = result->stats.wall_ms;
  m.jobs = static_cast<int>(result->stats.jobs.size());
  m.rounds = result->stats.rounds;
  for (const mr::RoundStats& r : result->stats.round_stats) {
    m.max_jobs_per_round =
        std::max(m.max_jobs_per_round, static_cast<int>(r.jobs.size()));
  }
  m.peak_concurrent_jobs = result->stats.MaxConcurrentJobs();
  m.task_retries = result->stats.TaskRetries();
  m.faults_injected = result->stats.FaultsInjected();
  m.retry_ms = result->stats.RetryMs();
}

}  // namespace

Result<ExecutionResult> ExecutePlan(const QueryPlan& plan,
                                    const mr::Runtime& runtime, Database* db,
                                    const SchedContext& ctx) {
  ExecutionResult result;
  GUMBO_ASSIGN_OR_RETURN(result.stats, runtime.Execute(plan.program, db, ctx));
  for (const std::string& name : plan.intermediates) {
    db->Erase(name);
  }
  FillMetrics(&result);
  return result;
}

Result<ExecutionResult> ExecutePlanOnSnapshot(const QueryPlan& plan,
                                              const mr::Runtime& runtime,
                                              const Database& base,
                                              Database* outputs,
                                              const SchedContext& ctx) {
  // All writes (intermediates, outputs) land in the overlay; `base` is
  // only ever read, so concurrent snapshot executions need no locking.
  Database overlay(&base);
  ExecutionResult result;
  GUMBO_ASSIGN_OR_RETURN(result.stats,
                         runtime.Execute(plan.program, &overlay, ctx));
  for (const std::string& name : plan.outputs) {
    GUMBO_ASSIGN_OR_RETURN(Relation * rel, overlay.GetMutable(name));
    outputs->Put(std::move(*rel));
  }
  FillMetrics(&result);
  return result;
}

Result<ExecutionResult> ExecutePlanWithOverrides(const QueryPlan& plan,
                                                 const mr::Runtime& runtime,
                                                 const Database& base,
                                                 const Database& overrides,
                                                 Database* outputs,
                                                 const SchedContext& ctx) {
  Database overlay(&base);
  // Shadow first: a local relation wins over the base namesake for every
  // read, so the plan sees the delta slice wherever it would have read
  // the full relation. The slices are small by construction — copying
  // them into the per-query overlay keeps `overrides` reusable.
  for (const auto& [name, rel] : overrides.relations()) {
    overlay.Put(rel);
  }
  ExecutionResult result;
  GUMBO_ASSIGN_OR_RETURN(result.stats,
                         runtime.Execute(plan.program, &overlay, ctx));
  for (const std::string& name : plan.outputs) {
    GUMBO_ASSIGN_OR_RETURN(Relation * rel, overlay.GetMutable(name));
    outputs->Put(std::move(*rel));
  }
  FillMetrics(&result);
  return result;
}

Result<ExecutionResult> ExecutePlan(const QueryPlan& plan, mr::Engine* engine,
                                    Database* db) {
  return ExecutePlan(plan, mr::Runtime(engine), db);
}

Result<ExecutionResult> ExecutePlan(const QueryPlan& plan, mr::Engine* engine,
                                    Database* db,
                                    const ExecutionContext& ctx) {
  ExecutionResult result;
  GUMBO_ASSIGN_OR_RETURN(result.stats,
                         RunProgram(plan.program, engine, db, ctx));
  for (const std::string& name : plan.intermediates) {
    db->Erase(name);
  }
  FillMetrics(&result);
  CalibrateFromExecution(plan, result.stats, ctx.calibration);
  return result;
}

Result<ExecutionResult> ExecutePlanOnSnapshot(const QueryPlan& plan,
                                              mr::Engine* engine,
                                              const Database& base,
                                              Database* outputs,
                                              const ExecutionContext& ctx) {
  Database overlay(&base);
  ExecutionResult result;
  GUMBO_ASSIGN_OR_RETURN(result.stats,
                         RunProgram(plan.program, engine, &overlay, ctx));
  for (const std::string& name : plan.outputs) {
    GUMBO_ASSIGN_OR_RETURN(Relation * rel, overlay.GetMutable(name));
    outputs->Put(std::move(*rel));
  }
  FillMetrics(&result);
  CalibrateFromExecution(plan, result.stats, ctx.calibration);
  return result;
}

Result<ExecutionResult> ExecuteAndVerify(const sgf::SgfQuery& query,
                                         const Planner& planner,
                                         const mr::Runtime& runtime,
                                         Database* db) {
  // Reference run first, on the pristine database.
  GUMBO_ASSIGN_OR_RETURN(Database expected, sgf::NaiveEvalSgf(query, *db));

  GUMBO_ASSIGN_OR_RETURN(QueryPlan plan, planner.Plan(query, *db));
  GUMBO_ASSIGN_OR_RETURN(ExecutionResult result,
                         ExecutePlan(plan, runtime, db));

  for (const auto& q : query.subqueries()) {
    GUMBO_ASSIGN_OR_RETURN(const Relation* got, db->Get(q.output()));
    GUMBO_ASSIGN_OR_RETURN(const Relation* want, expected.Get(q.output()));
    if (!got->SetEquals(*want)) {
      return Status::FailedPrecondition(
          "strategy " + std::string(StrategyName(planner.options().strategy)) +
          " produced wrong result for " + q.output() + ": got " +
          std::to_string(got->size()) + " tuples, reference has " +
          std::to_string(want->size()));
    }
  }
  return result;
}

Result<ExecutionResult> ExecuteAndVerify(const sgf::SgfQuery& query,
                                         const Planner& planner,
                                         mr::Engine* engine, Database* db) {
  return ExecuteAndVerify(query, planner, mr::Runtime(engine), db);
}

void CalibrateFromExecution(const QueryPlan& plan,
                            const mr::ProgramStats& stats,
                            cost::CalibrationStore* store) {
  if (store == nullptr) return;
  const size_t jobs = std::min(plan.job_estimates.size(), stats.jobs.size());
  for (size_t j = 0; j < jobs; ++j) {
    const JobEstimateRecord& rec = plan.job_estimates[j];
    const mr::JobStats& js = stats.jobs[j];
    const size_t inputs = std::min(rec.inputs.size(), js.inputs.size());
    for (size_t i = 0; i < inputs; ++i) {
      const cost::InputEstimateTag& tag = rec.inputs[i];
      const mr::InputStats& obs = js.inputs[i];
      if (!obs.dataset.empty() && obs.dataset != tag.dataset) continue;
      store->Observe(tag.channel, tag.regime, tag.output_mb, obs.output_mb);
      if (tag.channel == cost::Channel::kCatalogOutput) {
        store->Observe(cost::Channel::kCatalogInput, tag.regime, tag.input_mb,
                       obs.input_mb);
      }
    }
    if (rec.bound_defaulted) {
      store->Observe(cost::Channel::kOutputBound, rec.bound_regime,
                     rec.output_mb, js.hdfs_write_mb);
    }
    // Yields are meaningful only when the knob was actually on for this
    // job — otherwise a zero yield would just record the knob's absence.
    if (j < plan.program.size()) {
      const mr::JobSpec& spec = plan.program.job(j);
      const double shuffled = static_cast<double>(js.shuffle_messages);
      if (spec.combiner_factory) {
        const double combined = static_cast<double>(js.combined_messages);
        if (shuffled + combined > 0.0) {
          store->Observe(cost::Channel::kCombinerYield, rec.bound_regime, 1.0,
                         combined / (shuffled + combined));
        }
      }
      if (spec.filter_builder) {
        const double filtered = static_cast<double>(js.filtered_messages);
        const double emitted =
            shuffled + static_cast<double>(js.combined_messages) + filtered;
        if (emitted > 0.0) {
          store->Observe(cost::Channel::kFilterYield, rec.bound_regime, 1.0,
                         filtered / emitted);
        }
      }
    }
  }
}

}  // namespace gumbo::plan
