// Multiway topological sorts of an SGF query's dependency graph
// (paper §4.6).
//
// A multiway topological sort (F1, ..., Fk) partitions the BSGF subqueries
// into ordered batches such that every dependency crosses from an earlier
// batch to a later one. SGF-Opt — finding the sort minimizing
// sum_i cost(GOPT(F_i)) (Equation 10) — is NP-complete (Theorem 2).
//
//  * GreedySgfSort — the paper's Greedy-SGF: a blue/red sweep that places
//    each ready vertex into the existing batch with which it has maximal
//    non-zero relation overlap, appending a fresh batch otherwise;
//  * EnumerateMultiwayTopoSorts — exhaustive enumeration (small queries,
//    validation, and the OPT-SGF strategy).
#ifndef GUMBO_PLAN_TOPOSORT_H_
#define GUMBO_PLAN_TOPOSORT_H_

#include <vector>

#include "common/result.h"
#include "sgf/sgf.h"

namespace gumbo::plan {

/// Ordered batches of subquery indices.
using Batches = std::vector<std::vector<size_t>>;

/// Number of distinct relation names mentioned (as guard or conditional
/// input) by both `query_index` and some member of `batch` (paper §4.6).
/// Output names are not counted.
size_t Overlap(const sgf::SgfQuery& query, size_t query_index,
               const std::vector<size_t>& batch);

/// Whether `batches` is a valid multiway topological sort of the graph.
bool IsValidMultiwaySort(const sgf::DependencyGraph& graph,
                         const Batches& batches);

/// The paper's Greedy-SGF heuristic (O(n^3)).
Result<Batches> GreedySgfSort(const sgf::SgfQuery& query);

/// All multiway topological sorts, up to `limit` (fails beyond it).
Result<std::vector<Batches>> EnumerateMultiwayTopoSorts(
    const sgf::DependencyGraph& graph, size_t limit = 200000);

}  // namespace gumbo::plan

#endif  // GUMBO_PLAN_TOPOSORT_H_
