#include "plan/planner.h"

#include <algorithm>
#include <cctype>
#include <map>
#include <set>

#include "mr/runtime.h"
#include "ops/chain.h"
#include "ops/eval.h"
#include "ops/one_round.h"
#include "plan/grouping.h"
#include "plan/toposort.h"
#include "sgf/analyzer.h"

namespace gumbo::plan {

const char* StrategyName(Strategy s) {
  switch (s) {
    case Strategy::kSeq:
      return "SEQ";
    case Strategy::kPar:
      return "PAR";
    case Strategy::kGreedy:
      return "GREEDY";
    case Strategy::kOpt:
      return "OPT";
    case Strategy::kOneRound:
      return "1-ROUND";
    case Strategy::kSeqUnit:
      return "SEQUNIT";
    case Strategy::kParUnit:
      return "PARUNIT";
    case Strategy::kGreedySgf:
      return "GREEDY-SGF";
    case Strategy::kOptSgf:
      return "OPT-SGF";
  }
  return "?";
}

Result<Strategy> StrategyFromName(const std::string& name) {
  static const std::map<std::string, Strategy> kMap = {
      {"SEQ", Strategy::kSeq},
      {"PAR", Strategy::kPar},
      {"GREEDY", Strategy::kGreedy},
      {"OPT", Strategy::kOpt},
      {"1-ROUND", Strategy::kOneRound},
      {"ONE-ROUND", Strategy::kOneRound},
      {"SEQUNIT", Strategy::kSeqUnit},
      {"PARUNIT", Strategy::kParUnit},
      {"GREEDY-SGF", Strategy::kGreedySgf},
      {"OPT-SGF", Strategy::kOptSgf},
  };
  // Case-insensitive: "greedy", "Greedy" and "GREEDY" all resolve.
  std::string upper = name;
  for (char& c : upper) c = static_cast<char>(std::toupper(
      static_cast<unsigned char>(c)));
  auto it = kMap.find(upper);
  if (it == kMap.end()) {
    std::string valid;
    for (const auto& [n, s] : kMap) {
      (void)s;
      if (!valid.empty()) valid += ", ";
      valid += n;
    }
    return Status::InvalidArgument("unknown strategy " + name +
                                   " (valid: " + valid + ")");
  }
  return it->second;
}

namespace {

// Planning context threaded through batch planners.
struct PlanContext {
  const sgf::SgfQuery* query = nullptr;
  const Database* db = nullptr;
  const cost::ClusterConfig* config = nullptr;
  const PlannerOptions* options = nullptr;
  cost::StatsCatalog catalog;  // declared stats for produced datasets
  QueryPlan plan;
  size_t name_counter = 0;

  std::string FreshName(const std::string& hint) {
    std::string name = "__" + hint + "_" + std::to_string(name_counter++);
    plan.intermediates.push_back(name);
    return name;
  }
  void Describe(const std::string& line) {
    plan.description += line;
    plan.description += "\n";
  }
};

// Upper-bound stats for every produced dataset: the (transitive) base
// guard's tuple count, at the output's own tuple density (paper §4.1: K is
// bounded by the guard size). Each produced dataset inherits its guard's
// key-skew regime — a semi-join output is a subset of the guard, so its
// skew is the guard's (DESIGN.md §10).
Status RegisterProducedStats(const sgf::SgfQuery& query, const Database& db,
                             cost::StatsCatalog* catalog) {
  std::map<std::string, double> tuple_bound;
  std::map<std::string, cost::SkewRegime> regime_of;
  for (const auto& q : query.subqueries()) {
    double guard_tuples = 0.0;
    cost::SkewRegime regime = cost::SkewRegime::kUniform;
    const std::string& g = q.guard().relation();
    auto it = tuple_bound.find(g);
    if (it != tuple_bound.end()) {
      guard_tuples = it->second;
      regime = regime_of[g];
    } else {
      GUMBO_ASSIGN_OR_RETURN(const Relation* rel, db.Get(g));
      guard_tuples = rel->RepresentedRecords();
      regime = cost::ClassifyKeySkew(*rel);
    }
    tuple_bound[q.output()] = guard_tuples;
    regime_of[q.output()] = regime;
    cost::RelationStats stats;
    stats.tuples = guard_tuples;
    stats.bytes_per_tuple = 10.0 * static_cast<double>(q.OutputArity());
    stats.regime = regime;
    catalog->Put(q.output(), stats);
  }
  return Status::Ok();
}

// Extracts the semi-join equations of one BSGF query; X_i dataset names
// are freshly generated.
std::vector<ops::SemiJoinEquation> EquationsOf(const sgf::BsgfQuery& q,
                                               PlanContext* ctx,
                                               std::vector<std::string>* xs) {
  std::vector<ops::SemiJoinEquation> eqs;
  for (size_t i = 0; i < q.num_conditional_atoms(); ++i) {
    ops::SemiJoinEquation eq;
    eq.output = ctx->FreshName("x_" + q.output());
    eq.guard = q.guard();
    eq.guard_dataset = q.guard().relation();
    eq.conditional = q.conditional_atoms()[i];
    eq.conditional_dataset = q.conditional_atoms()[i].relation();
    xs->push_back(eq.output);
    eqs.push_back(std::move(eq));
  }
  return eqs;
}

std::string JobLabel(const std::string& kind,
                     const std::vector<std::string>& parts) {
  std::string out = kind + "(";
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += ", ";
    out += parts[i];
  }
  out += ")";
  return out;
}

// ---- Batch planners ---------------------------------------------------------
// Each plans a set of *independent* subqueries (a batch): inputs may only be
// base relations or outputs of earlier batches. `barrier` holds the job ids
// every first-stage job of this batch must depend on; the ids of this
// batch's final jobs are returned through `batch_jobs`.

// MSJ-partition-based planning (PAR / GREEDY / OPT): one MSJ job per group
// plus a single multi-formula EVAL.
Status PlanBatchPartitioned(const std::vector<size_t>& batch,
                            const std::vector<size_t>& barrier,
                            PlanContext* ctx,
                            std::vector<size_t>* batch_jobs) {
  const Strategy strategy = ctx->options->strategy;
  // Collect equations across the batch.
  std::vector<ops::SemiJoinEquation> eqs;
  std::vector<ops::EvalTask> eval_tasks;
  std::vector<ops::OneRoundTask> projection_tasks;  // condition-free queries
  // eq index -> (query, atom) bookkeeping handled via EvalTask x_datasets.
  for (size_t qi : batch) {
    const sgf::BsgfQuery& q = ctx->query->subqueries()[qi];
    if (!q.has_condition()) {
      ops::OneRoundTask t;
      t.query = q;
      t.guard_dataset = q.guard().relation();
      t.output_dataset = q.output();
      projection_tasks.push_back(std::move(t));
      continue;
    }
    ops::EvalTask t;
    t.query = q;
    t.guard_dataset = q.guard().relation();
    t.output_dataset = q.output();
    std::vector<ops::SemiJoinEquation> q_eqs = EquationsOf(q, ctx, &t.x_datasets);
    for (auto& e : q_eqs) eqs.push_back(std::move(e));
    eval_tasks.push_back(std::move(t));
  }

  // Group the equations.
  Grouping grouping;
  if (!eqs.empty()) {
    if (strategy == Strategy::kPar) {
      for (size_t i = 0; i < eqs.size(); ++i) grouping.groups.push_back({i});
    } else {
      cost::CostEstimator estimator(*ctx->config, ctx->options->cost_variant,
                                    ctx->db, &ctx->catalog,
                                    ctx->options->sample_size,
                                    ctx->options->calibration);
      // Register X_i stats (upper bound: guard size at payload density;
      // regime inherited from the guard — X_i is a guard subset).
      for (const auto& eq : eqs) {
        GUMBO_ASSIGN_OR_RETURN(cost::RelationStats gs,
                               estimator.StatsOf(eq.guard_dataset));
        cost::RelationStats xs;
        xs.tuples = gs.tuples;
        xs.bytes_per_tuple =
            ctx->options->op.tuple_id_refs
                ? 8.0
                : 10.0 * static_cast<double>(eq.guard.arity());
        xs.regime = gs.regime;
        ctx->catalog.Put(eq.output, xs);
      }
      if (strategy == Strategy::kOpt) {
        GUMBO_ASSIGN_OR_RETURN(
            grouping, OptimalGrouping(eqs, ctx->options->op, estimator,
                                      ctx->options->opt_max_n));
      } else {
        GUMBO_ASSIGN_OR_RETURN(
            grouping, GreedyBsgfGrouping(eqs, ctx->options->op, estimator));
      }
    }
  }

  // MSJ jobs.
  std::vector<size_t> msj_jobs;
  for (const auto& group : grouping.groups) {
    std::vector<ops::SemiJoinEquation> subset;
    std::vector<std::string> labels;
    for (size_t i : group) {
      subset.push_back(eqs[i]);
      labels.push_back(eqs[i].output);
    }
    GUMBO_ASSIGN_OR_RETURN(
        mr::JobSpec spec,
        ops::BuildMsjJob(subset, ctx->options->op, JobLabel("MSJ", labels)));
    size_t id = ctx->plan.program.AddJob(std::move(spec), barrier);
    ctx->Describe(ctx->plan.program.job(id).name);
    msj_jobs.push_back(id);
  }

  // EVAL job (depends on all MSJ jobs of this batch plus the barrier).
  if (!eval_tasks.empty()) {
    std::vector<std::string> labels;
    for (const auto& t : eval_tasks) labels.push_back(t.output_dataset);
    GUMBO_ASSIGN_OR_RETURN(
        mr::JobSpec spec,
        ops::BuildEvalJob(eval_tasks, ctx->options->op, JobLabel("EVAL", labels)));
    std::vector<size_t> deps = msj_jobs;
    deps.insert(deps.end(), barrier.begin(), barrier.end());
    size_t id = ctx->plan.program.AddJob(std::move(spec), deps);
    ctx->Describe(ctx->plan.program.job(id).name);
    batch_jobs->push_back(id);
  }

  // Projection-only queries (no WHERE): one fused job.
  if (!projection_tasks.empty()) {
    std::vector<std::string> labels;
    for (const auto& t : projection_tasks) labels.push_back(t.output_dataset);
    GUMBO_ASSIGN_OR_RETURN(mr::JobSpec spec,
                           ops::BuildOneRoundJob(projection_tasks, ctx->options->op,
                                            JobLabel("PROJECT", labels)));
    size_t id = ctx->plan.program.AddJob(std::move(spec), barrier);
    ctx->Describe(ctx->plan.program.job(id).name);
    batch_jobs->push_back(id);
  }
  return Status::Ok();
}

// SEQ: per query, DNF clauses -> chains of semi-join / anti-join steps;
// chains run in parallel, a union job combines multi-clause queries.
Status PlanBatchSeq(const std::vector<size_t>& batch,
                    const std::vector<size_t>& barrier, PlanContext* ctx,
                    std::vector<size_t>* batch_jobs) {
  for (size_t qi : batch) {
    const sgf::BsgfQuery& q = ctx->query->subqueries()[qi];
    if (!q.has_condition()) {
      ops::OneRoundTask t;
      t.query = q;
      t.guard_dataset = q.guard().relation();
      t.output_dataset = q.output();
      GUMBO_ASSIGN_OR_RETURN(
          mr::JobSpec spec,
          ops::BuildOneRoundJob({t}, ctx->options->op,
                           JobLabel("PROJECT", {q.output()})));
      size_t id = ctx->plan.program.AddJob(std::move(spec), barrier);
      ctx->Describe(ctx->plan.program.job(id).name);
      batch_jobs->push_back(id);
      continue;
    }
    std::vector<std::vector<int>> clauses;
    GUMBO_RETURN_IF_ERROR(q.condition()->ToDnf(&clauses));
    // Dedupe identical literals within each clause.
    for (auto& clause : clauses) {
      std::sort(clause.begin(), clause.end());
      clause.erase(std::unique(clause.begin(), clause.end()), clause.end());
    }
    const bool single_chain = clauses.size() == 1;
    std::vector<std::string> chain_outputs;
    std::vector<size_t> chain_last_jobs;
    for (size_t ci = 0; ci < clauses.size(); ++ci) {
      std::string current = q.guard().relation();
      std::vector<size_t> deps = barrier;
      for (size_t li = 0; li < clauses[ci].size(); ++li) {
        int lit = clauses[ci][li];
        size_t atom = static_cast<size_t>(std::abs(lit)) - 1;
        const bool last = li + 1 == clauses[ci].size();
        ops::ChainStepSpec step;
        step.guard = q.guard();
        step.input_dataset = current;
        step.conditional = q.conditional_atoms()[atom];
        step.conditional_dataset = q.conditional_atoms()[atom].relation();
        step.positive = lit > 0;
        step.filter_guard_pattern = (li == 0);
        if (last && single_chain) {
          step.emit_projection = true;
          step.select_vars = q.select_vars();
          step.output_dataset = q.output();
        } else {
          step.output_dataset =
              ctx->FreshName("seq_" + q.output() + "_c" + std::to_string(ci));
        }
        std::string label = std::string(lit > 0 ? "SJ" : "ASJ") + "[" +
                            q.output() + "/" + std::to_string(ci) + ":" +
                            step.conditional.ToString() + "]";
        GUMBO_ASSIGN_OR_RETURN(mr::JobSpec spec,
                               ops::BuildChainStepJob(step, ctx->options->op,
                                                      label));
        size_t id = ctx->plan.program.AddJob(std::move(spec), deps);
        ctx->Describe(ctx->plan.program.job(id).name);
        deps = {id};
        current = step.output_dataset;
        if (last) {
          chain_outputs.push_back(current);
          chain_last_jobs.push_back(id);
        }
      }
    }
    if (single_chain) {
      batch_jobs->push_back(chain_last_jobs.front());
    } else {
      GUMBO_ASSIGN_OR_RETURN(
          mr::JobSpec spec,
          ops::BuildUnionProjectJob(chain_outputs, q.guard(), q.select_vars(),
                               q.output(), ctx->options->op,
                               JobLabel("UNION", {q.output()})));
      size_t id = ctx->plan.program.AddJob(std::move(spec), chain_last_jobs);
      ctx->Describe(ctx->plan.program.job(id).name);
      batch_jobs->push_back(id);
    }
  }
  return Status::Ok();
}

// 1-ROUND: all queries of the batch fused into a single job.
Status PlanBatchOneRound(const std::vector<size_t>& batch,
                         const std::vector<size_t>& barrier, PlanContext* ctx,
                         std::vector<size_t>* batch_jobs) {
  std::vector<ops::OneRoundTask> tasks;
  std::vector<std::string> labels;
  for (size_t qi : batch) {
    const sgf::BsgfQuery& q = ctx->query->subqueries()[qi];
    if (!ops::CanOneRound(q)) {
      return Status::FailedPrecondition(
          "1-ROUND does not apply to " + q.output() +
          " (conjunction over distinct join keys)");
    }
    ops::OneRoundTask t;
    t.query = q;
    t.guard_dataset = q.guard().relation();
    for (const auto& atom : q.conditional_atoms()) {
      t.conditional_datasets.push_back(atom.relation());
    }
    t.output_dataset = q.output();
    labels.push_back(q.output());
    tasks.push_back(std::move(t));
  }
  GUMBO_ASSIGN_OR_RETURN(
      mr::JobSpec spec,
      ops::BuildOneRoundJob(tasks, ctx->options->op, JobLabel("1ROUND", labels)));
  size_t id = ctx->plan.program.AddJob(std::move(spec), barrier);
  ctx->Describe(ctx->plan.program.job(id).name);
  batch_jobs->push_back(id);
  return Status::Ok();
}

Status PlanBatch(Strategy strategy, const std::vector<size_t>& batch,
                 const std::vector<size_t>& barrier, PlanContext* ctx,
                 std::vector<size_t>* batch_jobs) {
  switch (strategy) {
    case Strategy::kSeq:
      return PlanBatchSeq(batch, barrier, ctx, batch_jobs);
    case Strategy::kOneRound:
      return PlanBatchOneRound(batch, barrier, ctx, batch_jobs);
    case Strategy::kPar:
    case Strategy::kGreedy:
    case Strategy::kOpt:
      return PlanBatchPartitioned(batch, barrier, ctx, batch_jobs);
    default:
      return Status::Internal("PlanBatch called with an SGF-level strategy");
  }
}

// Level decomposition: level(v) = longest path depth from sources.
Batches LevelBatches(const sgf::DependencyGraph& graph) {
  const size_t n = graph.size();
  std::vector<int> level(n, 0);
  int max_level = 0;
  for (size_t v = 0; v < n; ++v) {  // predecessors have smaller indices
    for (size_t p : graph.Predecessors(v)) {
      level[v] = std::max(level[v], level[p] + 1);
    }
    max_level = std::max(max_level, level[v]);
  }
  Batches batches(static_cast<size_t>(max_level) + 1);
  for (size_t v = 0; v < n; ++v) {
    batches[static_cast<size_t>(level[v])].push_back(v);
  }
  return batches;
}

// Estimated Equation-10 cost of evaluating the batches with GREEDY
// grouping inside (used by OPT-SGF).
Result<double> EstimateSortCost(const Batches& batches, PlanContext* ctx) {
  double total = 0.0;
  cost::CostEstimator estimator(*ctx->config, ctx->options->cost_variant,
                                ctx->db, &ctx->catalog,
                                ctx->options->sample_size,
                                ctx->options->calibration);
  for (const auto& batch : batches) {
    std::vector<ops::SemiJoinEquation> eqs;
    size_t fresh = 0;
    double eval_input_mb = 0.0;
    for (size_t qi : batch) {
      const sgf::BsgfQuery& q = ctx->query->subqueries()[qi];
      GUMBO_ASSIGN_OR_RETURN(cost::RelationStats gs,
                             estimator.StatsOf(q.guard().relation()));
      eval_input_mb += gs.SizeMb();
      for (size_t ai = 0; ai < q.num_conditional_atoms(); ++ai) {
        ops::SemiJoinEquation eq;
        eq.output = "__cost_x" + std::to_string(fresh++);
        eq.guard = q.guard();
        eq.guard_dataset = q.guard().relation();
        eq.conditional = q.conditional_atoms()[ai];
        eq.conditional_dataset = q.conditional_atoms()[ai].relation();
        eval_input_mb += gs.tuples *
                         (ctx->options->op.tuple_id_refs ? 8.0 : 40.0) /
                         (1024.0 * 1024.0);
        eqs.push_back(std::move(eq));
      }
    }
    if (!eqs.empty()) {
      GUMBO_ASSIGN_OR_RETURN(Grouping g, GreedyBsgfGrouping(
                                             eqs, ctx->options->op, estimator));
      total += g.total_cost;
    }
    // Rough EVAL term: overhead + read + shuffle of its inputs.
    total += ctx->config->costs.job_overhead +
             (ctx->config->costs.hdfs_read + ctx->config->costs.transfer +
              ctx->config->costs.local_write) *
                 eval_input_mb;
  }
  return total;
}

// Post-pass over a lowered plan: estimate every job's §5.3 cost and record
// the per-input provenance tags (JobEstimateRecord). Walks jobs in program
// order (which is dependency order: AddJob only references earlier ids),
// registering catalog stats for each job's outputs as it goes, so inputs
// produced by strategies that don't register intermediates themselves
// (SEQ chain steps, PAR X_i) still estimate. These records make estimated
// totals comparable across strategies (ChoosePlan) and give the
// calibration feedback loop its "estimated" side (DESIGN.md §10).
Status EstimatePlanJobs(PlanContext* ctx) {
  cost::CostEstimator estimator(*ctx->config, ctx->options->cost_variant,
                                ctx->db, &ctx->catalog,
                                ctx->options->sample_size,
                                ctx->options->calibration);
  QueryPlan& plan = ctx->plan;
  plan.job_estimates.clear();
  plan.estimated_cost = 0.0;
  plan.job_estimates.reserve(plan.program.size());
  for (size_t j = 0; j < plan.program.size(); ++j) {
    const mr::JobSpec& job = plan.program.job(j);
    // Upper bound for this job's outputs: the summed tuple bounds of its
    // inputs (a union can reach the sum; a semi-join stays below it).
    double input_tuple_bound = 0.0;
    cost::SkewRegime input_regime = cost::SkewRegime::kUniform;
    for (const mr::JobInput& input : job.inputs) {
      Result<cost::RelationStats> stats = estimator.StatsOf(input.dataset);
      if (stats.ok()) {
        input_tuple_bound += stats->tuples;
        if (stats->regime > input_regime) input_regime = stats->regime;
      }
    }
    GUMBO_ASSIGN_OR_RETURN(cost::JobEstimate est, estimator.EstimateJob(job));
    JobEstimateRecord rec;
    rec.job_name = job.name;
    rec.cost = est.cost;
    rec.output_mb = est.output_mb;
    rec.bound_regime = est.bound_regime;
    rec.bound_defaulted = est.bound_defaulted;
    rec.inputs = std::move(est.input_tags);
    plan.estimated_cost += est.cost;
    plan.job_estimates.push_back(std::move(rec));
    // Register stats for datasets this job produces (skip ones already
    // bounded by RegisterProducedStats or the grouping path).
    for (const mr::JobOutput& out : job.outputs) {
      if (ctx->catalog.Contains(out.dataset)) continue;
      if (ctx->db != nullptr && ctx->db->Contains(out.dataset)) continue;
      cost::RelationStats stats;
      stats.tuples = input_tuple_bound;
      stats.bytes_per_tuple = out.bytes_per_tuple > 0.0
                                  ? out.bytes_per_tuple
                                  : 10.0 * static_cast<double>(out.arity);
      stats.regime = input_regime;
      ctx->catalog.Put(out.dataset, stats);
    }
  }
  return Status::Ok();
}

}  // namespace

Result<QueryPlan> Planner::Plan(const sgf::SgfQuery& query,
                                const Database& db) const {
  GUMBO_RETURN_IF_ERROR(sgf::ValidateSgf(query));
  for (const std::string& rel : query.BaseRelations()) {
    if (!db.Contains(rel)) {
      return Status::NotFound("base relation " + rel + " not in database");
    }
  }

  // The GUMBO_DISABLE_* environment overrides win over programmatic
  // settings so CI and benches can force an ablation (DESIGN.md §5.4).
  PlannerOptions options = options_;
  options.op = ops::ApplyEnvOverrides(options.op);

  PlanContext ctx;
  ctx.query = &query;
  ctx.db = &db;
  ctx.config = &config_;
  ctx.options = &options;
  GUMBO_RETURN_IF_ERROR(RegisterProducedStats(query, db, &ctx.catalog));
  for (const auto& q : query.subqueries()) {
    ctx.plan.outputs.push_back(q.output());
  }

  sgf::DependencyGraph graph = query.BuildDependencyGraph();

  // Decide the batch structure and the per-batch strategy.
  Batches batches;
  Strategy batch_strategy = options_.strategy;
  switch (options_.strategy) {
    case Strategy::kSeqUnit: {
      for (size_t i = 0; i < query.size(); ++i) batches.push_back({i});
      batch_strategy = Strategy::kPar;
      break;
    }
    case Strategy::kParUnit: {
      batches = LevelBatches(graph);
      batch_strategy = Strategy::kPar;
      break;
    }
    case Strategy::kGreedySgf: {
      GUMBO_ASSIGN_OR_RETURN(batches, GreedySgfSort(query));
      batch_strategy = Strategy::kGreedy;
      break;
    }
    case Strategy::kOptSgf: {
      GUMBO_ASSIGN_OR_RETURN(std::vector<Batches> all,
                             EnumerateMultiwayTopoSorts(graph));
      double best_cost = 0.0;
      bool have = false;
      for (const Batches& cand : all) {
        GUMBO_ASSIGN_OR_RETURN(double c, EstimateSortCost(cand, &ctx));
        if (!have || c < best_cost) {
          have = true;
          best_cost = c;
          batches = cand;
        }
      }
      if (!have) return Status::Internal("no multiway topological sort found");
      batch_strategy = Strategy::kGreedy;
      break;
    }
    default:
      batches = LevelBatches(graph);
      break;
  }

  std::vector<size_t> barrier;
  for (size_t b = 0; b < batches.size(); ++b) {
    ctx.Describe("-- batch " + std::to_string(b + 1) + " [" +
                 StrategyName(batch_strategy) + "]");
    std::vector<size_t> batch_jobs;
    GUMBO_RETURN_IF_ERROR(
        PlanBatch(batch_strategy, batches[b], barrier, &ctx, &batch_jobs));
    barrier = batch_jobs;
  }

  // Summarize the runtime's round structure: jobs listed on one line run
  // concurrently under the round scheduler (mr/runtime.h).
  const std::vector<std::vector<size_t>> rounds =
      mr::Runtime::JobRounds(ctx.plan.program);
  for (size_t r = 0; r < rounds.size(); ++r) {
    std::string line = "-- round " + std::to_string(r + 1) + " (" +
                       std::to_string(rounds[r].size()) + " job" +
                       (rounds[r].size() == 1 ? "" : "s") + "):";
    for (size_t j : rounds[r]) line += " [" + std::to_string(j) + "]";
    ctx.Describe(line);
  }
  GUMBO_RETURN_IF_ERROR(EstimatePlanJobs(&ctx));
  return std::move(ctx.plan);
}

cost::SkewRegime QueryRegime(const sgf::SgfQuery& query, const Database& db) {
  cost::SkewRegime regime = cost::SkewRegime::kUniform;
  for (const sgf::BsgfQuery& q : query.subqueries()) {
    const std::string& g = q.guard().relation();
    if (!db.Contains(g)) continue;  // intermediate: inherits a base guard
    const cost::SkewRegime r = cost::ClassifyKeySkew(*db.Get(g).value());
    if (r > regime) regime = r;
  }
  return regime;
}

ops::OpOptions TuneOpOptions(const ops::OpOptions& base,
                             cost::SkewRegime regime,
                             const cost::CalibrationStore& store,
                             double min_yield) {
  ops::OpOptions tuned = base;
  if (tuned.combiners &&
      store.Observations(cost::Channel::kCombinerYield, regime) > 0 &&
      store.Factor(cost::Channel::kCombinerYield, regime) < min_yield) {
    tuned.combiners = false;
  }
  if (tuned.bloom_filters &&
      store.Observations(cost::Channel::kFilterYield, regime) > 0 &&
      store.Factor(cost::Channel::kFilterYield, regime) < min_yield) {
    tuned.bloom_filters = false;
  }
  return tuned;
}

Result<StrategyChoice> ChoosePlan(const sgf::SgfQuery& query,
                                  const Database& db,
                                  const cost::ClusterConfig& config,
                                  const PlannerOptions& base,
                                  std::vector<Strategy> candidates) {
  if (candidates.empty()) {
    candidates = {Strategy::kOneRound, Strategy::kSeq, Strategy::kPar,
                  Strategy::kGreedy};
  }
  StrategyChoice choice;
  bool have = false;
  Status last_error = Status::Ok();
  for (Strategy s : candidates) {
    PlannerOptions options = base;
    options.strategy = s;
    Planner planner(config, options);
    Result<QueryPlan> planned = planner.Plan(query, db);
    if (!planned.ok()) {
      // Inapplicable strategies (1-ROUND on a non-qualifying query) are
      // skipped; real failures surface if no candidate plans at all.
      last_error = planned.status();
      continue;
    }
    choice.candidates.push_back({s, planned->estimated_cost});
    if (!have || planned->estimated_cost < choice.plan.estimated_cost) {
      have = true;
      choice.strategy = s;
      choice.plan = std::move(*planned);
    }
  }
  if (!have) {
    return Status(last_error.code(),
                  "no candidate strategy planned: " + last_error.message());
  }
  return choice;
}

}  // namespace gumbo::plan
