#include "plan/toposort.h"

#include <algorithm>
#include <set>
#include <string>

namespace gumbo::plan {

size_t Overlap(const sgf::SgfQuery& query, size_t query_index,
               const std::vector<size_t>& batch) {
  std::set<std::string> mine;
  for (const std::string& rel :
       query.subqueries()[query_index].InputRelations()) {
    mine.insert(rel);
  }
  std::set<std::string> shared;
  for (size_t other : batch) {
    for (const std::string& rel : query.subqueries()[other].InputRelations()) {
      if (mine.count(rel) > 0) shared.insert(rel);
    }
  }
  return shared.size();
}

bool IsValidMultiwaySort(const sgf::DependencyGraph& graph,
                         const Batches& batches) {
  const size_t n = graph.size();
  std::vector<int> batch_of(n, -1);
  size_t seen = 0;
  for (size_t b = 0; b < batches.size(); ++b) {
    for (size_t v : batches[b]) {
      if (v >= n || batch_of[v] != -1) return false;
      batch_of[v] = static_cast<int>(b);
      ++seen;
    }
  }
  if (seen != n) return false;
  for (size_t u = 0; u < n; ++u) {
    for (size_t v : graph.Successors(u)) {
      if (batch_of[u] >= batch_of[v]) return false;
    }
  }
  return true;
}

Result<Batches> GreedySgfSort(const sgf::SgfQuery& query) {
  const size_t n = query.size();
  if (n == 0) return Status::InvalidArgument("empty SGF query");
  sgf::DependencyGraph graph = query.BuildDependencyGraph();
  if (!graph.IsAcyclic()) {
    return Status::InvalidArgument("dependency graph has a cycle");
  }

  std::vector<bool> red(n, false);
  std::vector<int> batch_of(n, -1);
  Batches batches;

  for (size_t step = 0; step < n; ++step) {
    // D: blue vertices with no blue predecessors.
    std::vector<size_t> ready;
    for (size_t v = 0; v < n; ++v) {
      if (red[v]) continue;
      bool ok = true;
      for (size_t p : graph.Predecessors(v)) {
        if (!red[p]) {
          ok = false;
          break;
        }
      }
      if (ok) ready.push_back(v);
    }
    // Find (u, F_i) maximizing non-zero overlap subject to validity:
    // every predecessor of u must lie strictly before batch i.
    size_t best_u = ready.front();
    int best_batch = -1;
    size_t best_overlap = 0;
    for (size_t u : ready) {
      int min_batch = 0;  // earliest batch u may join
      for (size_t p : graph.Predecessors(u)) {
        min_batch = std::max(min_batch, batch_of[p] + 1);
      }
      for (size_t b = static_cast<size_t>(min_batch); b < batches.size();
           ++b) {
        size_t ov = Overlap(query, u, batches[b]);
        if (ov > best_overlap) {
          best_overlap = ov;
          best_u = u;
          best_batch = static_cast<int>(b);
        }
      }
    }
    if (best_batch >= 0 && best_overlap > 0) {
      batches[static_cast<size_t>(best_batch)].push_back(best_u);
      batch_of[best_u] = best_batch;
    } else {
      // No positive overlap anywhere: open a new final batch.
      batches.push_back({best_u});
      batch_of[best_u] = static_cast<int>(batches.size()) - 1;
    }
    red[best_u] = true;
  }
  for (auto& b : batches) std::sort(b.begin(), b.end());
  return batches;
}

namespace {

// Builds batches front to back: the next batch is any non-empty subset of
// the currently ready (all predecessors already placed) vertices. Every
// multiway topological sort decomposes this way, so the enumeration is
// complete; distinct choices give distinct sorts, so it is duplicate-free.
Status EnumerateRec(const sgf::DependencyGraph& graph,
                    std::vector<bool>* placed, size_t remaining,
                    Batches* prefix, size_t limit, std::vector<Batches>* out) {
  if (remaining == 0) {
    if (out->size() >= limit) {
      return Status::OutOfRange("too many multiway topological sorts");
    }
    out->push_back(*prefix);
    return Status::Ok();
  }
  std::vector<size_t> ready;
  for (size_t v = 0; v < graph.size(); ++v) {
    if ((*placed)[v]) continue;
    bool ok = true;
    for (size_t p : graph.Predecessors(v)) {
      if (!(*placed)[p]) {
        ok = false;
        break;
      }
    }
    if (ok) ready.push_back(v);
  }
  if (ready.empty()) return Status::Internal("cycle during enumeration");
  if (ready.size() > 20) {
    return Status::OutOfRange("ready set too large to enumerate");
  }
  const uint32_t subsets = 1u << ready.size();
  for (uint32_t mask = 1; mask < subsets; ++mask) {
    std::vector<size_t> batch;
    for (size_t k = 0; k < ready.size(); ++k) {
      if (mask & (1u << k)) {
        batch.push_back(ready[k]);
        (*placed)[ready[k]] = true;
      }
    }
    prefix->push_back(batch);
    GUMBO_RETURN_IF_ERROR(EnumerateRec(graph, placed,
                                       remaining - batch.size(), prefix,
                                       limit, out));
    prefix->pop_back();
    for (size_t v : batch) (*placed)[v] = false;
  }
  return Status::Ok();
}

}  // namespace

Result<std::vector<Batches>> EnumerateMultiwayTopoSorts(
    const sgf::DependencyGraph& graph, size_t limit) {
  if (!graph.IsAcyclic()) {
    return Status::InvalidArgument("dependency graph has a cycle");
  }
  std::vector<Batches> out;
  std::vector<bool> placed(graph.size(), false);
  Batches prefix;
  GUMBO_RETURN_IF_ERROR(
      EnumerateRec(graph, &placed, graph.size(), &prefix, limit, &out));
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace gumbo::plan
