// Partitioning a set of semi-join equations into MSJ jobs (paper §4.4).
//
// BSGF-Opt — finding the partition of S minimizing the summed job costs
// (Equation 9; the EVAL term is constant across partitions) — is
// NP-complete (Theorem 1). Two solvers are provided:
//
//  * GreedyBsgfGrouping — the paper's Greedy-BSGF: start from singletons
//    and repeatedly merge the pair of groups with the largest positive
//    gain(Si, Sj) = cost(Si) + cost(Sj) - cost(Si u Sj);
//  * OptimalGrouping   — exhaustive enumeration of set partitions with
//    memoized per-subset costs (practical to ~12 equations; used to
//    validate the heuristic and for the OPT strategy on small queries).
#ifndef GUMBO_PLAN_GROUPING_H_
#define GUMBO_PLAN_GROUPING_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "cost/estimator.h"
#include "ops/msj.h"

namespace gumbo::plan {

/// A partition of equation indices [0, n) into groups.
struct Grouping {
  std::vector<std::vector<size_t>> groups;
  double total_cost = 0.0;  ///< sum of estimated per-group MSJ job costs

  std::string ToString() const;
};

/// Estimates the MSJ job cost of evaluating exactly the given equations in
/// one job (the cost(S_i) of Equation 5, via the estimator).
Result<double> EstimateGroupCost(
    const std::vector<ops::SemiJoinEquation>& equations,
    const std::vector<size_t>& group, const ops::OpOptions& options,
    const cost::CostEstimator& estimator);

/// The paper's Greedy-BSGF heuristic.
Result<Grouping> GreedyBsgfGrouping(
    const std::vector<ops::SemiJoinEquation>& equations,
    const ops::OpOptions& options, const cost::CostEstimator& estimator);

/// Exhaustive optimum over all set partitions. Fails with OutOfRange when
/// n exceeds `max_n`.
Result<Grouping> OptimalGrouping(
    const std::vector<ops::SemiJoinEquation>& equations,
    const ops::OpOptions& options, const cost::CostEstimator& estimator,
    size_t max_n = 12);

}  // namespace gumbo::plan

#endif  // GUMBO_PLAN_GROUPING_H_
