// Strategy-based query planning: turns an SGF query into an executable
// MapReduce program (paper §4.4–§4.7, §5).
//
// Strategies, matching the paper's experimental nomenclature:
//   SEQ        — sequential semi-join chains per DNF clause (§5.2);
//   PAR        — every semi-join in its own MSJ job, one EVAL (§5.2);
//   GREEDY     — Greedy-BSGF grouping of semi-joins into MSJ jobs + EVAL;
//   OPT        — brute-force optimal grouping (small queries);
//   1-ROUND    — fused MSJ+EVAL single job (§5.1 opt (4); only for
//                qualifying queries, see ops::CanOneRound);
//   SEQUNIT    — nested SGF: one subquery at a time, PAR inside (§5.3);
//   PARUNIT    — nested SGF: level by level, PAR inside (§5.3);
//   GREEDY-SGF — Greedy-SGF multiway toposort, GREEDY inside (§4.6);
//   OPT-SGF    — brute-force best multiway toposort, GREEDY inside.
//
// Flat strategies applied to nested queries operate level by level.
#ifndef GUMBO_PLAN_PLANNER_H_
#define GUMBO_PLAN_PLANNER_H_

#include <memory>
#include <string>
#include <vector>

#include "common/relation.h"
#include "common/result.h"
#include "cost/estimator.h"
#include "mr/program.h"
#include "ops/msj.h"
#include "sgf/sgf.h"

namespace gumbo::plan {

enum class Strategy {
  kSeq,
  kPar,
  kGreedy,
  kOpt,
  kOneRound,
  kSeqUnit,
  kParUnit,
  kGreedySgf,
  kOptSgf,
};

const char* StrategyName(Strategy s);
Result<Strategy> StrategyFromName(const std::string& name);

struct PlannerOptions {
  Strategy strategy = Strategy::kGreedy;
  ops::OpOptions op;  ///< packing / tuple-id toggles (§5.1 opts (1),(2))
  cost::CostModelVariant cost_variant = cost::CostModelVariant::kGumbo;
  size_t sample_size = 1024;  ///< map-sampling size for cost estimation
  size_t opt_max_n = 10;      ///< brute-force grouping limit
};

/// A fully-lowered plan: the MR program plus dataset bookkeeping. Once
/// lowered, a QueryPlan is immutable and reusable: executing it never
/// writes into it, so one plan may serve many (concurrent) executions —
/// the property the serve-layer plan cache relies on (DESIGN.md §8).
struct QueryPlan {
  mr::Program program;
  /// Output dataset per subquery (dataset name == subquery output name).
  std::vector<std::string> outputs;
  /// Intermediate datasets to drop after execution.
  std::vector<std::string> intermediates;
  /// Human-readable plan summary (one line per job).
  std::string description;
};

/// Shared handle to an immutable lowered plan (plan cache currency).
using PlanRef = std::shared_ptr<const QueryPlan>;

class Planner {
 public:
  Planner(const cost::ClusterConfig& config, PlannerOptions options)
      : config_(config), options_(std::move(options)) {}

  const PlannerOptions& options() const { return options_; }

  /// Plans `query` against the (base-relation) database `db`. The query
  /// must validate (sgf::ValidateSgf).
  Result<QueryPlan> Plan(const sgf::SgfQuery& query, const Database& db) const;

 private:
  cost::ClusterConfig config_;
  PlannerOptions options_;
};

}  // namespace gumbo::plan

#endif  // GUMBO_PLAN_PLANNER_H_
