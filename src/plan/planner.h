// Strategy-based query planning: turns an SGF query into an executable
// MapReduce program (paper §4.4–§4.7, §5).
//
// Strategies, matching the paper's experimental nomenclature:
//   SEQ        — sequential semi-join chains per DNF clause (§5.2);
//   PAR        — every semi-join in its own MSJ job, one EVAL (§5.2);
//   GREEDY     — Greedy-BSGF grouping of semi-joins into MSJ jobs + EVAL;
//   OPT        — brute-force optimal grouping (small queries);
//   1-ROUND    — fused MSJ+EVAL single job (§5.1 opt (4); only for
//                qualifying queries, see ops::CanOneRound);
//   SEQUNIT    — nested SGF: one subquery at a time, PAR inside (§5.3);
//   PARUNIT    — nested SGF: level by level, PAR inside (§5.3);
//   GREEDY-SGF — Greedy-SGF multiway toposort, GREEDY inside (§4.6);
//   OPT-SGF    — brute-force best multiway toposort, GREEDY inside.
//
// Flat strategies applied to nested queries operate level by level.
#ifndef GUMBO_PLAN_PLANNER_H_
#define GUMBO_PLAN_PLANNER_H_

#include <memory>
#include <string>
#include <vector>

#include "common/relation.h"
#include "common/result.h"
#include "cost/estimator.h"
#include "mr/program.h"
#include "ops/msj.h"
#include "sgf/sgf.h"

namespace gumbo::plan {

enum class Strategy {
  kSeq,
  kPar,
  kGreedy,
  kOpt,
  kOneRound,
  kSeqUnit,
  kParUnit,
  kGreedySgf,
  kOptSgf,
};

const char* StrategyName(Strategy s);
Result<Strategy> StrategyFromName(const std::string& name);

struct PlannerOptions {
  Strategy strategy = Strategy::kGreedy;
  ops::OpOptions op;  ///< packing / tuple-id toggles (§5.1 opts (1),(2))
  cost::CostModelVariant cost_variant = cost::CostModelVariant::kGumbo;
  size_t sample_size = 1024;  ///< map-sampling size for cost estimation
  size_t opt_max_n = 10;      ///< brute-force grouping limit
  /// Optional learned observed/estimated correction factors (DESIGN.md
  /// §10). Non-owning; must outlive the planner. Null or empty store =
  /// the uncalibrated paper model, byte for byte.
  const cost::CalibrationStore* calibration = nullptr;
};

/// Plan-time estimate of one job, recorded parallel to the program's jobs
/// so observed execution stats can be fed back into a CalibrationStore
/// (CalibrateFromExecution, DESIGN.md §10).
struct JobEstimateRecord {
  std::string job_name;
  double cost = 0.0;           ///< modeled §5.3 job cost
  double output_mb = 0.0;      ///< K bound the estimate used
  cost::SkewRegime bound_regime = cost::SkewRegime::kUniform;
  bool bound_defaulted = false;
  /// One per job input, in JobSpec::inputs order.
  std::vector<cost::InputEstimateTag> inputs;
};

/// A fully-lowered plan: the MR program plus dataset bookkeeping. Once
/// lowered, a QueryPlan is immutable and reusable: executing it never
/// writes into it, so one plan may serve many (concurrent) executions —
/// the property the serve-layer plan cache relies on (DESIGN.md §8).
struct QueryPlan {
  mr::Program program;
  /// Output dataset per subquery (dataset name == subquery output name).
  std::vector<std::string> outputs;
  /// Intermediate datasets to drop after execution.
  std::vector<std::string> intermediates;
  /// Human-readable plan summary (one line per job).
  std::string description;
  /// Plan-time cost estimates, parallel to program jobs (the calibration
  /// feedback loop's "estimated" side). Every strategy gets them, so
  /// estimated totals are comparable across strategies.
  std::vector<JobEstimateRecord> job_estimates;
  /// Summed estimated job cost of the whole plan (the §5.3 total-time
  /// analogue used to rank strategies in ChoosePlan).
  double estimated_cost = 0.0;
};

/// Shared handle to an immutable lowered plan (plan cache currency).
using PlanRef = std::shared_ptr<const QueryPlan>;

class Planner {
 public:
  Planner(const cost::ClusterConfig& config, PlannerOptions options)
      : config_(config), options_(std::move(options)) {}

  const PlannerOptions& options() const { return options_; }

  /// Plans `query` against the (base-relation) database `db`. The query
  /// must validate (sgf::ValidateSgf).
  Result<QueryPlan> Plan(const sgf::SgfQuery& query, const Database& db) const;

 private:
  cost::ClusterConfig config_;
  PlannerOptions options_;
};

/// The dominant key-skew regime of a query against `db`: the most skewed
/// regime among the base guard relations it reads.
cost::SkewRegime QueryRegime(const sgf::SgfQuery& query, const Database& db);

/// Per-regime combiner/filter knob tuning from observed yields: a knob is
/// switched off when the store has seen this regime deliver a negligible
/// yield (< `min_yield` of messages combined away / suppressed), and left
/// at its `base` setting otherwise — including when the store has no
/// observations for the regime yet.
ops::OpOptions TuneOpOptions(const ops::OpOptions& base,
                             cost::SkewRegime regime,
                             const cost::CalibrationStore& store,
                             double min_yield = 0.02);

/// One candidate strategy's estimated outcome (ChoosePlan).
struct StrategyCost {
  Strategy strategy = Strategy::kGreedy;
  double estimated_cost = 0.0;
};

/// The plan ChoosePlan selected, plus the ranking that selected it.
struct StrategyChoice {
  Strategy strategy = Strategy::kGreedy;
  QueryPlan plan;  ///< the winning strategy's plan
  /// Every candidate that planned successfully, with its estimated cost
  /// (ranking input; inapplicable candidates, e.g. 1-ROUND on a
  /// non-qualifying query, are simply absent).
  std::vector<StrategyCost> candidates;
};

/// Plans `query` under each candidate strategy and picks the one with the
/// lowest estimated plan cost under `base.calibration` (the self-
/// calibrating optimizer's strategy re-pick, DESIGN.md §10). `candidates`
/// defaults to {1-ROUND, SEQ, PAR, GREEDY}; candidates whose planning
/// fails with FailedPrecondition are skipped. base.strategy is ignored.
Result<StrategyChoice> ChoosePlan(const sgf::SgfQuery& query,
                                  const Database& db,
                                  const cost::ClusterConfig& config,
                                  const PlannerOptions& base,
                                  std::vector<Strategy> candidates = {});

}  // namespace gumbo::plan

#endif  // GUMBO_PLAN_PLANNER_H_
