// Plan execution: runs a QueryPlan's MR program on the round runtime,
// collects the paper's metrics, cleans up intermediates, and (optionally)
// verifies results against the naive reference evaluator.
#ifndef GUMBO_PLAN_EXECUTOR_H_
#define GUMBO_PLAN_EXECUTOR_H_

#include "common/relation.h"
#include "common/result.h"
#include "cost/calibration.h"
#include "dist/cluster.h"
#include "mr/program.h"
#include "mr/runtime.h"
#include "plan/planner.h"
#include "sgf/sgf.h"

namespace gumbo::plan {

/// Everything an execution entry point needs beyond the plan and the
/// database — one struct instead of a parameter per concern, so adding a
/// concern (as §13 added `cluster`) does not ripple through every
/// ExecutePlan* signature again.
struct ExecutionContext {
  /// Scheduling identity of the query: priority class, cancel token,
  /// fault plan, metrics sink (common/scheduler.h). The scheduler field
  /// is ignored as usual — the engine's wins.
  SchedContext sched;
  /// When set, the execution's observed sizes/yields are fed back into
  /// the store (CalibrateFromExecution) before returning — the §10
  /// calibration loop without a second call at every call site.
  cost::CalibrationStore* calibration = nullptr;
  /// When set (and num_shards > 1), the program runs on this shard of a
  /// real cluster via dist::ShardedRuntime — every shard of the cluster
  /// must execute the same plan. Borrowed.
  dist::Cluster* cluster = nullptr;
  /// When cluster is null and local_shards > 1, the program runs under
  /// dist::ExecuteShardedLocal: `local_shards` in-process worker shards
  /// over an InProcTransport, byte-identical to the default path.
  int local_shards = 1;
};

/// The paper's four performance metrics (§5.1) plus bookkeeping.
struct Metrics {
  double net_time = 0.0;        ///< query submission -> final result
  double total_time = 0.0;      ///< aggregate task time
  double input_mb = 0.0;        ///< bytes read from HDFS over the plan
  /// Bytes shuffled mapper -> reducer, plus Bloom-filter broadcast bytes
  /// when filters are in use (DESIGN.md §5.3).
  double communication_mb = 0.0;
  /// Pure mapper -> reducer shuffle bytes (no filter broadcast) — the
  /// figure the §5 shuffle-volume optimizations shrink.
  double shuffle_mb = 0.0;
  /// Real wire frame bytes exchanged between shards (DESIGN.md §13);
  /// zero for single-process executions. Charged to the cost model at
  /// the transfer rate via JobStats::dist_cost.
  double dist_wire_mb = 0.0;
  double output_mb = 0.0;
  double wall_ms = 0.0;         ///< real wall-clock of the execution
  int jobs = 0;
  int rounds = 0;
  // ---- Shuffle-volume optimization counters (DESIGN.md §5) ----
  uint64_t shuffle_records = 0;   ///< materialized shuffle records
  uint64_t shuffle_messages = 0;  ///< shuffled values (post-combine)
  uint64_t combined_messages = 0; ///< values removed by combiners
  uint64_t filtered_messages = 0; ///< emissions suppressed by Bloom filters
  double filter_broadcast_mb = 0.0;  ///< filter bits shipped to map tasks
  /// Largest number of jobs sharing one round (plan structure).
  int max_jobs_per_round = 0;
  /// Observed peak of concurrently-executing jobs (runtime behavior).
  int peak_concurrent_jobs = 0;
  // ---- Serving-layer bookkeeping (DESIGN.md §8, §12) ----
  // Filled by serve::QueryService; zero/false for direct ExecutePlan calls.
  bool plan_cache_hit = false;  ///< lowered plan came from the plan cache
  double queue_ms = 0.0;        ///< admission-queue wait before execution
  double plan_ms = 0.0;         ///< planning wall time (0 on a cache hit)
  /// Outputs served straight from the result cache — no planning, no
  /// execution (the other fields describe an empty execution).
  bool result_cache_hit = false;
  /// Outputs delta-maintained from a cached result: the execution fields
  /// describe the (delta-sized) maintenance pass, not a full run.
  bool delta_applied = false;
  uint64_t delta_rows = 0;  ///< input delta rows the maintenance pass read
  // ---- Morsel-scheduling attribution (DESIGN.md §9) ----
  /// Wall time this query's morsels were runnable but unserved (its task
  /// groups had queued work and nothing running — "stolen-from" time).
  /// Summed over the query's groups, so concurrent stalls can exceed the
  /// enclosing wall span; exec_ms excludes this, so an inflated p95
  /// splits into "our work got slower" vs "our work waited its turn".
  double sched_wait_ms = 0.0;
  uint64_t sched_morsels = 0;  ///< morsels this query's groups executed
  // ---- Fault-tolerance attribution (DESIGN.md §11) ----
  /// Task attempts abandoned and re-run (map scans, shuffle sorts,
  /// reduce walks) across the plan's jobs, and the injected faults that
  /// caused them. retry_ms is the wall time those abandoned attempts
  /// burned — the latency cost of surviving the faults, the retry
  /// analogue of sched_wait_ms attribution.
  uint64_t task_retries = 0;
  uint64_t faults_injected = 0;
  double retry_ms = 0.0;
};

struct ExecutionResult {
  Metrics metrics;
  mr::ProgramStats stats;
};

/// Executes `plan` against `db` (which must hold the base relations) on
/// `runtime`. On success the produced output relations are left in `db`
/// and all intermediate datasets are dropped.
///
/// A lowered QueryPlan is a reusable, immutable artifact: execution never
/// writes into it (job factories instantiate fresh mappers/reducers per
/// task), so one plan may be executed many times — including concurrently
/// from multiple threads via ExecutePlanOnSnapshot — which is what makes
/// the serve-layer plan cache sound (DESIGN.md §8).
Result<ExecutionResult> ExecutePlan(const QueryPlan& plan,
                                    const mr::Runtime& runtime, Database* db,
                                    const SchedContext& ctx = {});

/// Executes `plan` against the immutable snapshot `base` without writing
/// to it: intermediates and outputs materialize in a private overlay
/// (Database overlay views, common/relation.h), and the plan's declared
/// output relations are moved into `*outputs` on success. Many callers may
/// run plans against the same `base` concurrently, as long as nothing
/// mutates `base` meanwhile — the admission scheduler's contract.
Result<ExecutionResult> ExecutePlanOnSnapshot(const QueryPlan& plan,
                                              const mr::Runtime& runtime,
                                              const Database& base,
                                              Database* outputs,
                                              const SchedContext& ctx = {});

/// Delta-mode execution (DESIGN.md §12): like ExecutePlanOnSnapshot, but
/// every relation in `overrides` shadows its base namesake for the whole
/// run, so a cached plan re-executes over delta slices instead of the
/// full relations. The caller (serve::QueryService) guarantees via
/// serve::PlanDelta that shadowed names occur only in guard position, so
/// the run produces exactly the delta of each dirty output. Output
/// relations land in `*outputs` as usual.
Result<ExecutionResult> ExecutePlanWithOverrides(const QueryPlan& plan,
                                                 const mr::Runtime& runtime,
                                                 const Database& base,
                                                 const Database& overrides,
                                                 Database* outputs,
                                                 const SchedContext& ctx = {});

/// Convenience overload: wraps `engine` in a default Runtime (jobs of the
/// same round run concurrently on the engine's scheduler).
Result<ExecutionResult> ExecutePlan(const QueryPlan& plan, mr::Engine* engine,
                                    Database* db);

/// The context-driven entry points (preferred): dispatch to the plain
/// runtime, a real cluster shard, or the local sharded harness according
/// to `ctx`, feed the calibration store when one is given, and otherwise
/// behave exactly like their Runtime-based namesakes above (which remain
/// as thin shims for existing callers).
Result<ExecutionResult> ExecutePlan(const QueryPlan& plan, mr::Engine* engine,
                                    Database* db, const ExecutionContext& ctx);
Result<ExecutionResult> ExecutePlanOnSnapshot(const QueryPlan& plan,
                                              mr::Engine* engine,
                                              const Database& base,
                                              Database* outputs,
                                              const ExecutionContext& ctx);

/// Plans + executes + verifies in one call: evaluates `query` under
/// `planner`'s strategy on `runtime` and checks every produced relation
/// against sgf::NaiveEvalSgf. Returns FailedPrecondition on any mismatch.
Result<ExecutionResult> ExecuteAndVerify(const sgf::SgfQuery& query,
                                         const Planner& planner,
                                         const mr::Runtime& runtime,
                                         Database* db);

/// Convenience overload wrapping `engine` in a default Runtime.
Result<ExecutionResult> ExecuteAndVerify(const sgf::SgfQuery& query,
                                         const Planner& planner,
                                         mr::Engine* engine, Database* db);

/// Closes the calibration loop (DESIGN.md §10): matches the observed
/// per-input (N_i, M_i), per-job output sizes, and combiner/filter yields
/// of an executed program against the estimates the planner recorded in
/// `plan.job_estimates`, and feeds each observed/estimated pair into
/// `store`. Jobs and inputs are matched positionally (ProgramStats::jobs
/// is indexed by program job id) with dataset-name sanity checks; yield
/// observations are recorded only for jobs whose spec actually enabled
/// the corresponding knob. Thread-safe via the store.
void CalibrateFromExecution(const QueryPlan& plan,
                            const mr::ProgramStats& stats,
                            cost::CalibrationStore* store);

}  // namespace gumbo::plan

#endif  // GUMBO_PLAN_EXECUTOR_H_
