// Plan execution: runs a QueryPlan's MR program, collects the paper's
// metrics, cleans up intermediates, and (optionally) verifies results
// against the naive reference evaluator.
#ifndef GUMBO_PLAN_EXECUTOR_H_
#define GUMBO_PLAN_EXECUTOR_H_

#include "common/relation.h"
#include "common/result.h"
#include "mr/program.h"
#include "plan/planner.h"
#include "sgf/sgf.h"

namespace gumbo::plan {

/// The paper's four performance metrics (§5.1) plus bookkeeping.
struct Metrics {
  double net_time = 0.0;        ///< query submission -> final result
  double total_time = 0.0;      ///< aggregate task time
  double input_mb = 0.0;        ///< bytes read from HDFS over the plan
  double communication_mb = 0.0;///< bytes shuffled mapper -> reducer
  double output_mb = 0.0;
  int jobs = 0;
  int rounds = 0;
};

struct ExecutionResult {
  Metrics metrics;
  mr::ProgramStats stats;
};

/// Executes `plan` against `db` (which must hold the base relations).
/// On success the produced output relations are left in `db` and all
/// intermediate datasets are dropped.
Result<ExecutionResult> ExecutePlan(const QueryPlan& plan, mr::Engine* engine,
                                    Database* db);

/// Plans + executes + verifies in one call: evaluates `query` under
/// `planner`'s strategy and checks every produced relation against
/// sgf::NaiveEvalSgf. Returns FailedPrecondition on any mismatch.
Result<ExecutionResult> ExecuteAndVerify(const sgf::SgfQuery& query,
                                         const Planner& planner,
                                         mr::Engine* engine, Database* db);

}  // namespace gumbo::plan

#endif  // GUMBO_PLAN_EXECUTOR_H_
