// Differential soak harness (DESIGN.md §10): random SGF queries over
// random skewed/correlated databases, evaluated through every planner
// strategy and the serve::QueryService paths (plan cache on/off, result
// cache, and — in mutation mode — delta maintenance under AddFact
// writes), with every result checked byte-identical — flat words AND row
// fingerprints — against the naive reference evaluator.
//
// Everything is deterministic in one seed: iteration i of a soak with
// base seed S behaves exactly like a one-iteration soak with seed S + i,
// so a failure is reproducible from the printed seed alone. On
// divergence the harness additionally *minimizes* the failing case —
// dropping trailing subquery statements and halving the database — and
// reports the smallest (query, database) pair that still diverges.
#ifndef GUMBO_SOAK_SOAK_H_
#define GUMBO_SOAK_SOAK_H_

#include <array>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/fault.h"
#include "common/relation.h"
#include "sgf/query_gen.h"

namespace gumbo::soak {

/// The database regimes the soak cycles through — the generator
/// configurations the calibrated cost model has to discriminate
/// (data/generator.h).
enum class DataRegime {
  kUniform,     ///< Guard + Conditional: the paper's uniform data
  kZipf,        ///< ZipfGuard(theta=0.8) + uniform conditionals
  kZipfHeavy,   ///< ZipfGuard(theta=1.2): heavy-skew regime
  kCorrelated,  ///< CorrelatedGuard(corr=0.6, theta=0.8)
  kHotCold,     ///< ZipfGuard(1.0) + alternating Hot/ColdConditional
};

const char* DataRegimeName(DataRegime regime);

struct SoakConfig {
  /// Base seed; iteration i uses seed + i. Env: GUMBO_SOAK_SEED.
  uint64_t seed = 7;
  /// Random (query, database) pairs to run. Env: GUMBO_SOAK_ITERS.
  size_t iterations = 200;
  /// Materialized tuples per generated relation. Env: GUMBO_SOAK_TUPLES.
  size_t tuples = 240;
  /// Conditional-relation selectivity (data/generator.h).
  double selectivity = 0.4;
  /// Also run each query through serve::QueryService: plan-cache-on
  /// submitted twice (second hit exercises the cached-plan path),
  /// cache-off, and result-cache-on submitted twice (second hit must be a
  /// pure result-cache hit, byte-identical with no execution).
  bool serve_paths = true;
  /// Mutation mode (DESIGN.md §12): per iteration, run each query through
  /// one service over a *mutable* copy of the database, interleave seeded
  /// AddFact batches through the service's write API, and require every
  /// post-mutation response — delta-maintained, result-hit, or fallback
  /// re-execution — byte-identical to a from-scratch naive evaluation of
  /// the mutated database. Env: GUMBO_SOAK_MUTATE (non-zero enables).
  bool mutate = false;
  /// Thread a shared CalibrationStore through the whole soak: planners
  /// estimate through it and executions feed it, so the soak also pins
  /// the invariant that calibration changes estimates, never results.
  bool calibrate = true;
  /// Stop after this many (minimized) failures.
  size_t max_failures = 1;
  /// Chaos mode (DESIGN.md §11): per-(site, unit, attempt) fault
  /// probability injected into every execution path. 0 = off. Under
  /// chaos the contract sharpens: an OK result must STILL be
  /// byte-identical to the fault-free reference (task retry is
  /// invisible), and a failure must be one of the typed clean errors
  /// (Unavailable, DeadlineExceeded, Cancelled, ResourceExhausted) —
  /// a wrong byte or an Internal error is a soak failure either way.
  /// Env: GUMBO_FAULT_RATE.
  double fault_rate = 0.0;
  /// Base fault seed; iteration i derives its injector from this and
  /// the iteration seed, so chaos runs stay reproducible from the two
  /// printed seeds. Env: GUMBO_FAULT_SEED.
  uint64_t fault_seed = 42;
  /// Fault-site filter (bit i = FaultSite i). Env: GUMBO_FAULT_SITES.
  uint32_t fault_sites = ~0u;

  bool chaos() const { return fault_rate > 0.0; }

  /// Reads GUMBO_SOAK_{SEED,ITERS,TUPLES} and GUMBO_FAULT_{RATE,SEED,
  /// SITES} over the defaults above.
  static SoakConfig FromEnv();
};

/// One minimized divergence: everything needed to reproduce it.
struct SoakFailure {
  uint64_t seed = 0;       ///< exact iteration seed (generators + query)
  DataRegime regime = DataRegime::kUniform;
  /// Strategy name, "serve-cache", "serve-nocache", "serve-result", or
  /// "serve-delta" (mutation mode).
  std::string path;
  bool mutate = false;     ///< repro needs GUMBO_SOAK_MUTATE=1
  std::string query_text;  ///< minimized query
  size_t tuples = 0;       ///< minimized database size
  std::string detail;      ///< what differed
  /// Multi-line human-readable reproduction recipe.
  std::string Repro() const;
};

struct SoakReport {
  size_t iterations = 0;  ///< (query, database) pairs actually run
  size_t checks = 0;      ///< individual path-vs-naive comparisons
  size_t skipped = 0;     ///< inapplicable paths (e.g. 1-ROUND refusals)
  // ---- Chaos-mode accounting (all zero when fault_rate == 0) ----
  /// Paths that failed with a typed clean error (retry budget exhausted
  /// to Unavailable, etc.) — acceptable chaos outcomes, not failures.
  size_t clean_errors = 0;
  uint64_t faults_injected = 0;  ///< total injections across the soak
  uint64_t task_retries = 0;     ///< attempts re-run across the soak
  std::array<uint64_t, kNumFaultSites> faults_per_site{};
  // ---- Mutation-mode accounting (all zero when mutate == false) ----
  size_t mutation_checks = 0;  ///< post-mutation byte-identity checks
  uint64_t delta_hits = 0;     ///< responses answered by delta maintenance
  uint64_t result_hits = 0;    ///< responses served straight from the cache
  std::vector<SoakFailure> failures;

  bool ok() const { return failures.empty(); }
  std::string Summary() const;
};

/// Runs the soak. Deterministic in `config`.
SoakReport RunSoak(const SoakConfig& config);

/// Builds the iteration database for `base` relations (name -> arity)
/// under `regime`. Relations of arity >= 3 are guards, the rest
/// conditionals. Exposed for tests and the failure minimizer.
Database BuildDatabase(const std::map<std::string, uint32_t>& base,
                       DataRegime regime, uint64_t seed, size_t tuples,
                       double selectivity);

}  // namespace gumbo::soak

#endif  // GUMBO_SOAK_SOAK_H_
