#include "soak/soak.h"

#include <string>

#include "common/config.h"
#include "common/dictionary.h"
#include "cost/calibration.h"
#include "data/generator.h"
#include "mr/engine.h"
#include "mr/runtime.h"
#include "plan/executor.h"
#include "plan/planner.h"
#include "serve/service.h"
#include "sgf/naive_eval.h"
#include "sgf/parser.h"

namespace gumbo::soak {

namespace {

constexpr plan::Strategy kStrategies[] = {
    plan::Strategy::kSeq,       plan::Strategy::kPar,
    plan::Strategy::kGreedy,    plan::Strategy::kOpt,
    plan::Strategy::kOneRound,  plan::Strategy::kSeqUnit,
    plan::Strategy::kParUnit,   plan::Strategy::kGreedySgf,
    plan::Strategy::kOptSgf,
};

constexpr DataRegime kRegimes[] = {
    DataRegime::kUniform, DataRegime::kZipf,    DataRegime::kZipfHeavy,
    DataRegime::kCorrelated, DataRegime::kHotCold,
};

constexpr sgf::QueryShape kShapes[] = {
    sgf::QueryShape::kWideFanout,
    sgf::QueryShape::kDeepChain,
    sgf::QueryShape::kAntiJoinHeavy,
    sgf::QueryShape::kMixed,
};

// A tiny simulated cluster so the generated relations split into several
// map tasks / reducers (same sizing as tests/property_test.cc).
cost::ClusterConfig SoakCluster() {
  cost::ClusterConfig config;
  config.split_mb = 0.002;
  config.mb_per_reducer = 0.002;
  return config;
}

std::vector<std::string> OutputNames(const sgf::SgfQuery& query) {
  std::vector<std::string> names;
  names.reserve(query.size());
  for (const sgf::BsgfQuery& q : query.subqueries()) {
    names.push_back(q.output());
  }
  return names;
}

// Byte-identity check: both relations canonicalized (SortAndDedupe), then
// the flat word arenas AND the per-row fingerprints must match exactly.
// Returns an empty string on identity, a description otherwise.
std::string DiffRelation(const Relation& want_in, const Relation& got_in) {
  Relation want = want_in;
  Relation got = got_in;
  want.SortAndDedupe();
  got.SortAndDedupe();
  if (want.size() != got.size()) {
    return "size " + std::to_string(got.size()) + " != reference " +
           std::to_string(want.size());
  }
  if (want.words() != got.words()) return "word arenas differ";
  if (want.fingerprints() != got.fingerprints()) {
    return "row fingerprints differ (words identical)";
  }
  return "";
}

std::string DiffOutputs(const Database& expected, const Database& got,
                        const std::vector<std::string>& outputs) {
  for (const std::string& name : outputs) {
    Result<const Relation*> want = expected.Get(name);
    if (!want.ok()) return name + ": missing from reference";
    Result<const Relation*> have = got.Get(name);
    if (!have.ok()) return name + ": missing from result";
    std::string diff = DiffRelation(**want, **have);
    if (!diff.empty()) return name + ": " + diff;
  }
  return "";
}

enum class Outcome { kOk, kSkip, kFail, kCleanError };

// Chaos-mode triage: a fault-injected run may fail, but only with one of
// the typed terminal statuses of DESIGN.md §11. Anything else (Internal,
// wrong bytes, ...) means a fault corrupted state instead of being
// retried or cleanly escalated — a real failure.
bool IsCleanChaosError(const Status& status) {
  switch (status.code()) {
    case StatusCode::kUnavailable:
    case StatusCode::kDeadlineExceeded:
    case StatusCode::kCancelled:
    case StatusCode::kResourceExhausted:
      return true;
    default:
      return false;
  }
}

// One strategy against the naive reference. `calibration` (may be null)
// feeds the planner's estimates; `feed` (may be null) receives this
// execution's observed stats afterwards — the full loop under soak.
// `faults` (may be null) injects chaos into the execution; `retries`
// (may be null) accumulates the attempts re-run surviving it.
Outcome CheckStrategy(const sgf::SgfQuery& query, const Database& db,
                      const Database& expected,
                      const std::vector<std::string>& outputs,
                      plan::Strategy strategy,
                      const cost::CalibrationStore* calibration,
                      cost::CalibrationStore* feed,
                      const FaultInjector* faults, uint64_t* retries,
                      std::string* detail) {
  detail->clear();
  const cost::ClusterConfig config = SoakCluster();
  plan::PlannerOptions opts;
  opts.strategy = strategy;
  opts.sample_size = 32;
  opts.calibration = calibration;
  plan::Planner planner(config, opts);
  Result<plan::QueryPlan> plan = planner.Plan(query, db);
  if (!plan.ok()) {
    // Inapplicable strategy (1-ROUND precondition, OPT size limit, ...).
    *detail = plan.status().ToString();
    return Outcome::kSkip;
  }
  mr::Engine engine(config);
  mr::Runtime runtime(&engine);
  SchedContext ctx;
  ctx.faults = (faults != nullptr && faults->active()) ? faults : nullptr;
  Database out;
  Result<plan::ExecutionResult> executed =
      plan::ExecutePlanOnSnapshot(*plan, runtime, db, &out, ctx);
  if (!executed.ok()) {
    *detail = "execution failed: " + executed.status().ToString();
    return (ctx.faults != nullptr && IsCleanChaosError(executed.status()))
               ? Outcome::kCleanError
               : Outcome::kFail;
  }
  if (retries != nullptr) *retries += executed->stats.TaskRetries();
  if (feed != nullptr) {
    plan::CalibrateFromExecution(*plan, executed->stats, feed);
  }
  *detail = DiffOutputs(expected, out, outputs);
  return detail->empty() ? Outcome::kOk : Outcome::kFail;
}

// The serve paths: with a cache on, the query is submitted twice — the
// second response must come from that cache (the cached plan re-executed,
// or a pure result-cache hit with no execution at all) AND stay
// identical; with everything off, once. `store` may be null
// (uncalibrated service). The "serve-cache" path keeps the result cache
// OFF so the cached-plan re-execution stays exercised — with it on, the
// second submission would short-circuit before ever reaching the plan.
Outcome CheckServe(const sgf::SgfQuery& query, const Database& db,
                   const Database& expected,
                   const std::vector<std::string>& outputs, bool cache,
                   bool result_cache, cost::CalibrationStore* store,
                   const FaultInjector* faults, uint64_t* retries,
                   std::string* detail) {
  detail->clear();
  const bool chaos = faults != nullptr && faults->active();
  serve::ServiceOptions so;
  so.max_inflight = 2;
  so.plan_cache = cache;
  so.result_cache = result_cache;
  so.cluster = SoakCluster();
  so.planner.sample_size = 32;
  so.calibration = store;
  // Hermetic: the service injects exactly what this check was handed —
  // never the ambient GUMBO_FAULT_* env (which would break the
  // minimizer's fault-free re-checks in a chaos environment).
  static const FaultInjector kNoFaults(0, 0.0);
  so.faults = faults != nullptr ? faults : &kNoFaults;
  serve::QueryService service(&db, so);
  Outcome outcome = Outcome::kOk;
  const int runs = (cache || result_cache) ? 2 : 1;
  for (int r = 0; r < runs; ++r) {
    serve::QueryResponse resp = service.Run(query);
    if (!resp.ok()) {
      *detail = "serve execution failed: " + resp.status.ToString();
      outcome = (chaos && IsCleanChaosError(resp.status)) ? Outcome::kCleanError
                                                          : Outcome::kFail;
      break;
    }
    // Under chaos a kCache fault legitimately degrades the second lookup
    // to a miss, so the hit assertions only hold fault-free.
    if (r == 1 && !chaos) {
      if (result_cache && !resp.metrics.result_cache_hit) {
        *detail = "second submission missed the result cache";
        outcome = Outcome::kFail;
        break;
      }
      if (!result_cache && cache && !resp.metrics.plan_cache_hit) {
        *detail = "second submission missed the plan cache";
        outcome = Outcome::kFail;
        break;
      }
    }
    std::string diff = DiffOutputs(expected, resp.outputs, outputs);
    if (!diff.empty()) {
      *detail = (r == 0 ? "cold run: "
                        : (result_cache ? "result-hit run: "
                                        : "cached-plan run: ")) +
                diff;
      outcome = Outcome::kFail;
      break;
    }
  }
  if (retries != nullptr) *retries += service.Stats().task_retries;
  return outcome;
}

// Mutation mode (DESIGN.md §12): one service over a *mutable* copy of the
// iteration database, both caches on. A cold run populates the result
// cache; then, per base relation in deterministic order, a small seeded
// batch of AddFacts lands through the service's write API and the query
// re-runs. Every post-mutation response must be byte-identical to a
// from-scratch naive evaluation of the mutated database — whether the
// service answered via a guard-delta maintenance pass, a pure result hit
// (no epoch moved for this query's relations), or full fallback
// re-execution (conditional-position insert). Cycling the insert target
// through all base relations exercises all three regimes.
Outcome CheckMutation(const sgf::SgfQuery& query, const Database& base_db,
                      const std::map<std::string, uint32_t>& base,
                      const std::vector<std::string>& outputs, uint64_t seed,
                      size_t tuples, cost::CalibrationStore* store,
                      uint64_t* delta_hits, uint64_t* result_hits,
                      std::string* detail) {
  detail->clear();
  Database db = base_db;  // mutable copy; the iteration db stays pristine
  serve::ServiceOptions so;
  so.max_inflight = 2;
  so.cluster = SoakCluster();
  so.planner.sample_size = 32;
  so.calibration = store;
  // Mutation checks are always fault-free: they pin delta soundness, and
  // chaos coverage of the read path already exists in CheckServe.
  static const FaultInjector kNoFaults(0, 0.0);
  so.faults = &kNoFaults;
  serve::QueryService service(&db, so);
  {
    serve::QueryResponse cold = service.Run(query);
    if (!cold.ok()) {
      *detail = "cold run failed: " + cold.status.ToString();
      return Outcome::kFail;
    }
  }
  Xoshiro256 rng(SplitMix64::Mix(seed ^ 0xde17aULL));
  // Same value domain the generators draw from, so inserted facts join
  // against existing rows often enough to actually change outputs.
  const uint64_t domain = tuples > 0 ? tuples : 1;
  for (const auto& [name, arity] : base) {
    constexpr int kFactsPerBatch = 3;
    for (int f = 0; f < kFactsPerBatch; ++f) {
      Tuple t;
      for (uint32_t a = 0; a < arity; ++a) {
        t.PushBack(Value::Int(static_cast<int64_t>(rng.Uniform(domain))));
      }
      const Status st = service.AddFact(name, t);
      if (!st.ok()) {
        *detail = "AddFact(" + name + ") failed: " + st.ToString();
        return Outcome::kFail;
      }
    }
    serve::QueryResponse resp = service.Run(query);
    if (!resp.ok()) {
      *detail = "post-mutation run (after " + name +
                " inserts) failed: " + resp.status.ToString();
      return Outcome::kFail;
    }
    if (delta_hits != nullptr && resp.metrics.delta_applied) ++*delta_hits;
    if (result_hits != nullptr && resp.metrics.result_cache_hit) {
      ++*result_hits;
    }
    // The service is quiescent between Run calls, so reading db here is
    // safe; NaiveEvalSgf recomputes the truth over the mutated state.
    Result<Database> expected = sgf::NaiveEvalSgf(query, db);
    if (!expected.ok()) {
      *detail = "naive reference on mutated db failed: " +
                expected.status().ToString();
      return Outcome::kFail;
    }
    std::string diff = DiffOutputs(*expected, resp.outputs, outputs);
    if (!diff.empty()) {
      *detail = "after inserts into " + name + ": " + diff;
      return Outcome::kFail;
    }
  }
  return Outcome::kOk;
}

// Dispatches a path by name — the minimizer's re-check hook. Paths are
// strategy names plus "serve-cache" / "serve-nocache" / "serve-result".
// ("serve-delta" mutation failures are recorded unminimized: the
// minimizer's re-checks don't replay the service-applied write batches.)
Outcome CheckPath(const std::string& path, const sgf::SgfQuery& query,
                  const Database& db, const Database& expected,
                  const std::vector<std::string>& outputs,
                  std::string* detail) {
  if (path == "serve-cache" || path == "serve-nocache" ||
      path == "serve-result") {
    return CheckServe(query, db, expected, outputs, path != "serve-nocache",
                      path == "serve-result", nullptr, nullptr, nullptr,
                      detail);
  }
  Result<plan::Strategy> strategy = plan::StrategyFromName(path);
  if (!strategy.ok()) {
    *detail = "unknown path " + path;
    return Outcome::kSkip;
  }
  return CheckStrategy(query, db, expected, outputs, *strategy, nullptr,
                       nullptr, nullptr, nullptr, detail);
}

// Whether `path` still diverges on (query_text, db(seed, tuples)).
// Conservative: anything that fails to parse or naive-evaluate counts as
// "no divergence", so the minimizer never shrinks past reproducibility.
bool Diverges(const std::string& query_text,
              const std::map<std::string, uint32_t>& base, DataRegime regime,
              uint64_t seed, size_t tuples, double selectivity,
              const std::string& path, std::string* detail) {
  Result<sgf::SgfQuery> query =
      sgf::ParseSgf(query_text, &Dictionary::Global());
  if (!query.ok()) return false;
  Database db = BuildDatabase(base, regime, seed, tuples, selectivity);
  Result<Database> expected = sgf::NaiveEvalSgf(*query, db);
  if (!expected.ok()) return false;
  return CheckPath(path, *query, db, *expected, OutputNames(*query),
                   detail) == Outcome::kFail;
}

std::string JoinStatements(const std::vector<std::string>& statements,
                           size_t count) {
  std::string text;
  for (size_t i = 0; i < count && i < statements.size(); ++i) {
    if (!text.empty()) text += "\n";
    text += statements[i];
  }
  return text;
}

// Shrinks a diverging case: shortest diverging statement prefix first
// (prefixes are valid SGF by construction, sgf/query_gen.h), then halve
// the database while the divergence persists. Re-checks run uncalibrated;
// a result divergence must not depend on estimates, so if shrinking loses
// the repro the original (seed, full query, full size) is kept.
SoakFailure Minimize(const sgf::GeneratedQuery& generated, DataRegime regime,
                     uint64_t seed, const SoakConfig& config,
                     const std::string& path, std::string detail) {
  SoakFailure failure;
  failure.seed = seed;
  failure.regime = regime;
  failure.path = path;
  failure.query_text = generated.Text();
  failure.tuples = config.tuples;
  failure.detail = std::move(detail);

  std::string shrunk_detail;
  size_t keep = generated.statements.size();
  for (size_t k = 1; k < generated.statements.size(); ++k) {
    if (Diverges(JoinStatements(generated.statements, k),
                 generated.base_relations, regime, seed, config.tuples,
                 config.selectivity, path, &shrunk_detail)) {
      keep = k;
      break;
    }
  }
  std::string text = JoinStatements(generated.statements, keep);
  size_t tuples = config.tuples;
  if (keep < generated.statements.size() ||
      Diverges(text, generated.base_relations, regime, seed, tuples,
               config.selectivity, path, &shrunk_detail)) {
    failure.query_text = text;
    if (!shrunk_detail.empty()) failure.detail = shrunk_detail;
    while (tuples / 2 >= 16 &&
           Diverges(text, generated.base_relations, regime, seed, tuples / 2,
                    config.selectivity, path, &shrunk_detail)) {
      tuples /= 2;
      failure.detail = shrunk_detail;
    }
    failure.tuples = tuples;
  }
  return failure;
}

}  // namespace

const char* DataRegimeName(DataRegime regime) {
  switch (regime) {
    case DataRegime::kUniform:
      return "uniform";
    case DataRegime::kZipf:
      return "zipf";
    case DataRegime::kZipfHeavy:
      return "zipf-heavy";
    case DataRegime::kCorrelated:
      return "correlated";
    case DataRegime::kHotCold:
      return "hot-cold";
  }
  return "?";
}

SoakConfig SoakConfig::FromEnv() {
  const common::RuntimeConfig& cfg = common::RuntimeConfig::Get();
  SoakConfig config;
  config.seed = cfg.soak_seed.value_or(config.seed);
  config.iterations = static_cast<size_t>(
      cfg.soak_iters.value_or(config.iterations));
  config.tuples =
      static_cast<size_t>(cfg.soak_tuples.value_or(config.tuples));
  config.mutate = cfg.soak_mutate.value_or(config.mutate ? 1 : 0) != 0;
  // Chaos knobs share the injector's own env parsing (site-name lists,
  // rate clamping) so a chaos soak is configured exactly like any other
  // fault-injected run.
  const FaultInjector env_faults = FaultInjector::FromEnv();
  config.fault_rate = env_faults.rate();
  config.fault_seed = env_faults.seed();
  config.fault_sites = env_faults.site_mask();
  return config;
}

std::string SoakFailure::Repro() const {
  std::string s;
  s += "soak divergence: path=" + path + " regime=" +
       std::string(DataRegimeName(regime)) + "\n";
  s += "  detail: " + detail + "\n";
  s += "  repro: GUMBO_SOAK_SEED=" + std::to_string(seed) +
       " GUMBO_SOAK_ITERS=1 GUMBO_SOAK_TUPLES=" + std::to_string(tuples) +
       (mutate ? " GUMBO_SOAK_MUTATE=1" : "") + " bench_soak\n";
  s += "  minimized query:\n" + query_text + "\n";
  return s;
}

std::string SoakReport::Summary() const {
  std::string s = "soak: " + std::to_string(iterations) + " iterations, " +
                  std::to_string(checks) + " checks, " +
                  std::to_string(skipped) + " skipped, " +
                  std::to_string(failures.size()) + " failures";
  if (faults_injected > 0 || clean_errors > 0) {
    s += "\nchaos: " + std::to_string(faults_injected) +
         " faults injected (";
    for (size_t i = 0; i < kNumFaultSites; ++i) {
      if (i > 0) s += ", ";
      s += std::string(FaultSiteName(static_cast<FaultSite>(i))) + " " +
           std::to_string(faults_per_site[i]);
    }
    s += "), " + std::to_string(task_retries) + " task retries, " +
         std::to_string(clean_errors) + " clean typed errors";
  }
  if (mutation_checks > 0) {
    s += "\nmutation: " + std::to_string(mutation_checks) +
         " post-write identity checks, " + std::to_string(delta_hits) +
         " delta-maintained, " + std::to_string(result_hits) +
         " result-cache hits";
  }
  for (const SoakFailure& f : failures) {
    s += "\n" + f.Repro();
  }
  return s;
}

Database BuildDatabase(const std::map<std::string, uint32_t>& base,
                       DataRegime regime, uint64_t seed, size_t tuples,
                       double selectivity) {
  data::GeneratorConfig g;
  g.seed = seed;
  g.tuples = tuples;
  g.representation_scale = 1.0;
  g.selectivity = selectivity;
  data::Generator gen(g);
  Database db;
  // Alternate hot/cold deterministically by name in the kHotCold regime
  // (the conditional pool is S/T/U/V -> hot, cold, hot, cold).
  for (const auto& [name, arity] : base) {
    const bool guard = arity >= 3;
    switch (regime) {
      case DataRegime::kUniform:
        db.Put(guard ? gen.Guard(name, arity) : gen.Conditional(name, arity));
        break;
      case DataRegime::kZipf:
        db.Put(guard ? gen.ZipfGuard(name, arity, 0.8)
                     : gen.Conditional(name, arity));
        break;
      case DataRegime::kZipfHeavy:
        db.Put(guard ? gen.ZipfGuard(name, arity, 1.2)
                     : gen.Conditional(name, arity));
        break;
      case DataRegime::kCorrelated:
        db.Put(guard ? gen.CorrelatedGuard(name, arity, 0.6, 0.8)
                     : gen.Conditional(name, arity));
        break;
      case DataRegime::kHotCold: {
        const bool hot = !name.empty() && ((name[0] - 'A') % 2 == 0);
        db.Put(guard ? gen.ZipfGuard(name, arity, 1.0)
                     : (hot ? gen.HotConditional(name, arity)
                            : gen.ColdConditional(name, arity)));
        break;
      }
    }
  }
  return db;
}

SoakReport RunSoak(const SoakConfig& config) {
  SoakReport report;
  cost::CalibrationStore store;
  for (size_t i = 0; i < config.iterations; ++i) {
    const uint64_t seed = config.seed + i;
    // Fresh injector per iteration with a seed derived from both base
    // seeds: fault sets vary across iterations but stay reproducible
    // from (GUMBO_SOAK_SEED, GUMBO_FAULT_SEED), preserving the
    // "iteration i == one-iteration soak with seed S + i" contract.
    const FaultInjector faults(SplitMix64::Mix(config.fault_seed ^ seed),
                               config.fault_rate, config.fault_sites);
    const FaultInjector* inject = config.chaos() ? &faults : nullptr;
    // A chaos failure is recorded unminimized: the minimizer's re-checks
    // run fault-free, so shrinking would lose the repro. The detail
    // carries the injector configuration instead.
    const auto chaos_failure = [&](const std::string& path,
                                   const sgf::GeneratedQuery& generated,
                                   DataRegime regime, std::string detail) {
      SoakFailure f;
      f.seed = seed;
      f.regime = regime;
      f.path = path;
      f.query_text = generated.Text();
      f.tuples = config.tuples;
      f.detail = std::move(detail) + " [chaos: GUMBO_FAULT_SEED=" +
                 std::to_string(config.fault_seed) +
                 " GUMBO_FAULT_RATE=" + std::to_string(config.fault_rate) +
                 "]";
      return f;
    };
    Xoshiro256 rng(SplitMix64::Mix(seed ^ 0x50a7ULL));
    const DataRegime regime =
        kRegimes[rng.Uniform(sizeof(kRegimes) / sizeof(kRegimes[0]))];
    sgf::QueryGenConfig qc;
    qc.shape = kShapes[rng.Uniform(sizeof(kShapes) / sizeof(kShapes[0]))];
    const sgf::GeneratedQuery generated =
        sgf::QueryGenerator(qc).Generate(seed);
    Database db = BuildDatabase(generated.base_relations, regime, seed,
                                config.tuples, config.selectivity);
    Result<Database> expected = sgf::NaiveEvalSgf(generated.query, db);
    ++report.iterations;
    if (!expected.ok()) {
      SoakFailure f;
      f.seed = seed;
      f.regime = regime;
      f.path = "naive-reference";
      f.query_text = generated.Text();
      f.tuples = config.tuples;
      f.detail = expected.status().ToString();
      report.failures.push_back(std::move(f));
      if (report.failures.size() >= config.max_failures) break;
      continue;
    }
    const std::vector<std::string> outputs = OutputNames(generated.query);

    std::string detail;
    for (plan::Strategy strategy : kStrategies) {
      // The shared store both drives estimates (all strategies) and is
      // fed back from GREEDY executions — calibration must never change
      // a result byte, and the soak holds it to that.
      const Outcome outcome = CheckStrategy(
          generated.query, db, *expected, outputs, strategy,
          config.calibrate ? &store : nullptr,
          (config.calibrate && strategy == plan::Strategy::kGreedy) ? &store
                                                                    : nullptr,
          inject, &report.task_retries, &detail);
      if (outcome == Outcome::kSkip) {
        ++report.skipped;
        continue;
      }
      if (outcome == Outcome::kCleanError) {
        ++report.clean_errors;
        continue;
      }
      ++report.checks;
      if (outcome == Outcome::kFail) {
        report.failures.push_back(
            inject != nullptr
                ? chaos_failure(plan::StrategyName(strategy), generated,
                                regime, detail)
                : Minimize(generated, regime, seed, config,
                           plan::StrategyName(strategy), detail));
      }
    }
    if (config.serve_paths) {
      struct ServePath {
        const char* name;
        bool plan_cache;
        bool result_cache;
      };
      constexpr ServePath kServePaths[] = {
          {"serve-cache", true, false},  // cached-plan re-execution
          {"serve-nocache", false, false},
          {"serve-result", true, true},  // pure result-cache hit
      };
      for (const ServePath& sp : kServePaths) {
        const Outcome outcome = CheckServe(
            generated.query, db, *expected, outputs, sp.plan_cache,
            sp.result_cache, config.calibrate ? &store : nullptr, inject,
            &report.task_retries, &detail);
        if (outcome == Outcome::kCleanError) {
          ++report.clean_errors;
          continue;
        }
        ++report.checks;
        if (outcome == Outcome::kFail) {
          report.failures.push_back(
              inject != nullptr
                  ? chaos_failure(sp.name, generated, regime, detail)
                  : Minimize(generated, regime, seed, config, sp.name,
                             detail));
        }
      }
    }
    if (config.mutate) {
      const Outcome outcome = CheckMutation(
          generated.query, db, generated.base_relations, outputs, seed,
          config.tuples, config.calibrate ? &store : nullptr,
          &report.delta_hits, &report.result_hits, &detail);
      ++report.mutation_checks;
      ++report.checks;
      if (outcome == Outcome::kFail) {
        // Recorded unminimized: the shrink re-checks don't replay the
        // seeded write batches, so shrinking would lose the repro.
        SoakFailure f;
        f.seed = seed;
        f.regime = regime;
        f.path = "serve-delta";
        f.mutate = true;
        f.query_text = generated.Text();
        f.tuples = config.tuples;
        f.detail = detail;
        report.failures.push_back(std::move(f));
      }
    }
    report.faults_injected += faults.injected();
    for (size_t s = 0; s < kNumFaultSites; ++s) {
      report.faults_per_site[s] += faults.injected_at(static_cast<FaultSite>(s));
    }
    if (report.failures.size() >= config.max_failures) break;
  }
  return report;
}

}  // namespace gumbo::soak
