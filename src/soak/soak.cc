#include "soak/soak.h"

#include <cstdlib>
#include <string>

#include "common/dictionary.h"
#include "cost/calibration.h"
#include "data/generator.h"
#include "mr/engine.h"
#include "mr/runtime.h"
#include "plan/executor.h"
#include "plan/planner.h"
#include "serve/service.h"
#include "sgf/naive_eval.h"
#include "sgf/parser.h"

namespace gumbo::soak {

namespace {

constexpr plan::Strategy kStrategies[] = {
    plan::Strategy::kSeq,       plan::Strategy::kPar,
    plan::Strategy::kGreedy,    plan::Strategy::kOpt,
    plan::Strategy::kOneRound,  plan::Strategy::kSeqUnit,
    plan::Strategy::kParUnit,   plan::Strategy::kGreedySgf,
    plan::Strategy::kOptSgf,
};

constexpr DataRegime kRegimes[] = {
    DataRegime::kUniform, DataRegime::kZipf,    DataRegime::kZipfHeavy,
    DataRegime::kCorrelated, DataRegime::kHotCold,
};

constexpr sgf::QueryShape kShapes[] = {
    sgf::QueryShape::kWideFanout,
    sgf::QueryShape::kDeepChain,
    sgf::QueryShape::kAntiJoinHeavy,
    sgf::QueryShape::kMixed,
};

// A tiny simulated cluster so the generated relations split into several
// map tasks / reducers (same sizing as tests/property_test.cc).
cost::ClusterConfig SoakCluster() {
  cost::ClusterConfig config;
  config.split_mb = 0.002;
  config.mb_per_reducer = 0.002;
  return config;
}

uint64_t EnvU64(const char* name, uint64_t fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  char* end = nullptr;
  const unsigned long long parsed = std::strtoull(v, &end, 10);
  return (end != nullptr && *end == '\0') ? parsed : fallback;
}

std::vector<std::string> OutputNames(const sgf::SgfQuery& query) {
  std::vector<std::string> names;
  names.reserve(query.size());
  for (const sgf::BsgfQuery& q : query.subqueries()) {
    names.push_back(q.output());
  }
  return names;
}

// Byte-identity check: both relations canonicalized (SortAndDedupe), then
// the flat word arenas AND the per-row fingerprints must match exactly.
// Returns an empty string on identity, a description otherwise.
std::string DiffRelation(const Relation& want_in, const Relation& got_in) {
  Relation want = want_in;
  Relation got = got_in;
  want.SortAndDedupe();
  got.SortAndDedupe();
  if (want.size() != got.size()) {
    return "size " + std::to_string(got.size()) + " != reference " +
           std::to_string(want.size());
  }
  if (want.words() != got.words()) return "word arenas differ";
  if (want.fingerprints() != got.fingerprints()) {
    return "row fingerprints differ (words identical)";
  }
  return "";
}

std::string DiffOutputs(const Database& expected, const Database& got,
                        const std::vector<std::string>& outputs) {
  for (const std::string& name : outputs) {
    Result<const Relation*> want = expected.Get(name);
    if (!want.ok()) return name + ": missing from reference";
    Result<const Relation*> have = got.Get(name);
    if (!have.ok()) return name + ": missing from result";
    std::string diff = DiffRelation(**want, **have);
    if (!diff.empty()) return name + ": " + diff;
  }
  return "";
}

enum class Outcome { kOk, kSkip, kFail };

// One strategy against the naive reference. `calibration` (may be null)
// feeds the planner's estimates; `feed` (may be null) receives this
// execution's observed stats afterwards — the full loop under soak.
Outcome CheckStrategy(const sgf::SgfQuery& query, const Database& db,
                      const Database& expected,
                      const std::vector<std::string>& outputs,
                      plan::Strategy strategy,
                      const cost::CalibrationStore* calibration,
                      cost::CalibrationStore* feed, std::string* detail) {
  detail->clear();
  const cost::ClusterConfig config = SoakCluster();
  plan::PlannerOptions opts;
  opts.strategy = strategy;
  opts.sample_size = 32;
  opts.calibration = calibration;
  plan::Planner planner(config, opts);
  Result<plan::QueryPlan> plan = planner.Plan(query, db);
  if (!plan.ok()) {
    // Inapplicable strategy (1-ROUND precondition, OPT size limit, ...).
    *detail = plan.status().ToString();
    return Outcome::kSkip;
  }
  mr::Engine engine(config);
  mr::Runtime runtime(&engine);
  Database out;
  Result<plan::ExecutionResult> executed =
      plan::ExecutePlanOnSnapshot(*plan, runtime, db, &out);
  if (!executed.ok()) {
    *detail = "execution failed: " + executed.status().ToString();
    return Outcome::kFail;
  }
  if (feed != nullptr) {
    plan::CalibrateFromExecution(*plan, executed->stats, feed);
  }
  *detail = DiffOutputs(expected, out, outputs);
  return detail->empty() ? Outcome::kOk : Outcome::kFail;
}

// The serve paths: with the plan cache on, the query is submitted twice —
// the second response must come from the cached plan AND stay identical;
// with it off, once. `store` may be null (uncalibrated service).
Outcome CheckServe(const sgf::SgfQuery& query, const Database& db,
                   const Database& expected,
                   const std::vector<std::string>& outputs, bool cache,
                   cost::CalibrationStore* store, std::string* detail) {
  detail->clear();
  serve::ServiceOptions so;
  so.max_inflight = 2;
  so.plan_cache = cache;
  so.cluster = SoakCluster();
  so.planner.sample_size = 32;
  so.calibration = store;
  serve::QueryService service(&db, so);
  const int runs = cache ? 2 : 1;
  for (int r = 0; r < runs; ++r) {
    serve::QueryResponse resp = service.Run(query);
    if (!resp.ok()) {
      *detail = "serve execution failed: " + resp.status.ToString();
      return Outcome::kFail;
    }
    if (cache && r == 1 && !resp.metrics.plan_cache_hit) {
      *detail = "second submission missed the plan cache";
      return Outcome::kFail;
    }
    std::string diff = DiffOutputs(expected, resp.outputs, outputs);
    if (!diff.empty()) {
      *detail = (r == 0 ? "cold run: " : "cached-plan run: ") + diff;
      return Outcome::kFail;
    }
  }
  return Outcome::kOk;
}

// Dispatches a path by name — the minimizer's re-check hook. Paths are
// strategy names plus "serve-cache" / "serve-nocache".
Outcome CheckPath(const std::string& path, const sgf::SgfQuery& query,
                  const Database& db, const Database& expected,
                  const std::vector<std::string>& outputs,
                  std::string* detail) {
  if (path == "serve-cache" || path == "serve-nocache") {
    return CheckServe(query, db, expected, outputs, path == "serve-cache",
                      nullptr, detail);
  }
  Result<plan::Strategy> strategy = plan::StrategyFromName(path);
  if (!strategy.ok()) {
    *detail = "unknown path " + path;
    return Outcome::kSkip;
  }
  return CheckStrategy(query, db, expected, outputs, *strategy, nullptr,
                       nullptr, detail);
}

// Whether `path` still diverges on (query_text, db(seed, tuples)).
// Conservative: anything that fails to parse or naive-evaluate counts as
// "no divergence", so the minimizer never shrinks past reproducibility.
bool Diverges(const std::string& query_text,
              const std::map<std::string, uint32_t>& base, DataRegime regime,
              uint64_t seed, size_t tuples, double selectivity,
              const std::string& path, std::string* detail) {
  Result<sgf::SgfQuery> query =
      sgf::ParseSgf(query_text, &Dictionary::Global());
  if (!query.ok()) return false;
  Database db = BuildDatabase(base, regime, seed, tuples, selectivity);
  Result<Database> expected = sgf::NaiveEvalSgf(*query, db);
  if (!expected.ok()) return false;
  return CheckPath(path, *query, db, *expected, OutputNames(*query),
                   detail) == Outcome::kFail;
}

std::string JoinStatements(const std::vector<std::string>& statements,
                           size_t count) {
  std::string text;
  for (size_t i = 0; i < count && i < statements.size(); ++i) {
    if (!text.empty()) text += "\n";
    text += statements[i];
  }
  return text;
}

// Shrinks a diverging case: shortest diverging statement prefix first
// (prefixes are valid SGF by construction, sgf/query_gen.h), then halve
// the database while the divergence persists. Re-checks run uncalibrated;
// a result divergence must not depend on estimates, so if shrinking loses
// the repro the original (seed, full query, full size) is kept.
SoakFailure Minimize(const sgf::GeneratedQuery& generated, DataRegime regime,
                     uint64_t seed, const SoakConfig& config,
                     const std::string& path, std::string detail) {
  SoakFailure failure;
  failure.seed = seed;
  failure.regime = regime;
  failure.path = path;
  failure.query_text = generated.Text();
  failure.tuples = config.tuples;
  failure.detail = std::move(detail);

  std::string shrunk_detail;
  size_t keep = generated.statements.size();
  for (size_t k = 1; k < generated.statements.size(); ++k) {
    if (Diverges(JoinStatements(generated.statements, k),
                 generated.base_relations, regime, seed, config.tuples,
                 config.selectivity, path, &shrunk_detail)) {
      keep = k;
      break;
    }
  }
  std::string text = JoinStatements(generated.statements, keep);
  size_t tuples = config.tuples;
  if (keep < generated.statements.size() ||
      Diverges(text, generated.base_relations, regime, seed, tuples,
               config.selectivity, path, &shrunk_detail)) {
    failure.query_text = text;
    if (!shrunk_detail.empty()) failure.detail = shrunk_detail;
    while (tuples / 2 >= 16 &&
           Diverges(text, generated.base_relations, regime, seed, tuples / 2,
                    config.selectivity, path, &shrunk_detail)) {
      tuples /= 2;
      failure.detail = shrunk_detail;
    }
    failure.tuples = tuples;
  }
  return failure;
}

}  // namespace

const char* DataRegimeName(DataRegime regime) {
  switch (regime) {
    case DataRegime::kUniform:
      return "uniform";
    case DataRegime::kZipf:
      return "zipf";
    case DataRegime::kZipfHeavy:
      return "zipf-heavy";
    case DataRegime::kCorrelated:
      return "correlated";
    case DataRegime::kHotCold:
      return "hot-cold";
  }
  return "?";
}

SoakConfig SoakConfig::FromEnv() {
  SoakConfig config;
  config.seed = EnvU64("GUMBO_SOAK_SEED", config.seed);
  config.iterations =
      static_cast<size_t>(EnvU64("GUMBO_SOAK_ITERS", config.iterations));
  config.tuples =
      static_cast<size_t>(EnvU64("GUMBO_SOAK_TUPLES", config.tuples));
  return config;
}

std::string SoakFailure::Repro() const {
  std::string s;
  s += "soak divergence: path=" + path + " regime=" +
       std::string(DataRegimeName(regime)) + "\n";
  s += "  detail: " + detail + "\n";
  s += "  repro: GUMBO_SOAK_SEED=" + std::to_string(seed) +
       " GUMBO_SOAK_ITERS=1 GUMBO_SOAK_TUPLES=" + std::to_string(tuples) +
       " bench_soak\n";
  s += "  minimized query:\n" + query_text + "\n";
  return s;
}

std::string SoakReport::Summary() const {
  std::string s = "soak: " + std::to_string(iterations) + " iterations, " +
                  std::to_string(checks) + " checks, " +
                  std::to_string(skipped) + " skipped, " +
                  std::to_string(failures.size()) + " failures";
  for (const SoakFailure& f : failures) {
    s += "\n" + f.Repro();
  }
  return s;
}

Database BuildDatabase(const std::map<std::string, uint32_t>& base,
                       DataRegime regime, uint64_t seed, size_t tuples,
                       double selectivity) {
  data::GeneratorConfig g;
  g.seed = seed;
  g.tuples = tuples;
  g.representation_scale = 1.0;
  g.selectivity = selectivity;
  data::Generator gen(g);
  Database db;
  // Alternate hot/cold deterministically by name in the kHotCold regime
  // (the conditional pool is S/T/U/V -> hot, cold, hot, cold).
  for (const auto& [name, arity] : base) {
    const bool guard = arity >= 3;
    switch (regime) {
      case DataRegime::kUniform:
        db.Put(guard ? gen.Guard(name, arity) : gen.Conditional(name, arity));
        break;
      case DataRegime::kZipf:
        db.Put(guard ? gen.ZipfGuard(name, arity, 0.8)
                     : gen.Conditional(name, arity));
        break;
      case DataRegime::kZipfHeavy:
        db.Put(guard ? gen.ZipfGuard(name, arity, 1.2)
                     : gen.Conditional(name, arity));
        break;
      case DataRegime::kCorrelated:
        db.Put(guard ? gen.CorrelatedGuard(name, arity, 0.6, 0.8)
                     : gen.Conditional(name, arity));
        break;
      case DataRegime::kHotCold: {
        const bool hot = !name.empty() && ((name[0] - 'A') % 2 == 0);
        db.Put(guard ? gen.ZipfGuard(name, arity, 1.0)
                     : (hot ? gen.HotConditional(name, arity)
                            : gen.ColdConditional(name, arity)));
        break;
      }
    }
  }
  return db;
}

SoakReport RunSoak(const SoakConfig& config) {
  SoakReport report;
  cost::CalibrationStore store;
  for (size_t i = 0; i < config.iterations; ++i) {
    const uint64_t seed = config.seed + i;
    Xoshiro256 rng(SplitMix64::Mix(seed ^ 0x50a7ULL));
    const DataRegime regime =
        kRegimes[rng.Uniform(sizeof(kRegimes) / sizeof(kRegimes[0]))];
    sgf::QueryGenConfig qc;
    qc.shape = kShapes[rng.Uniform(sizeof(kShapes) / sizeof(kShapes[0]))];
    const sgf::GeneratedQuery generated =
        sgf::QueryGenerator(qc).Generate(seed);
    Database db = BuildDatabase(generated.base_relations, regime, seed,
                                config.tuples, config.selectivity);
    Result<Database> expected = sgf::NaiveEvalSgf(generated.query, db);
    ++report.iterations;
    if (!expected.ok()) {
      SoakFailure f;
      f.seed = seed;
      f.regime = regime;
      f.path = "naive-reference";
      f.query_text = generated.Text();
      f.tuples = config.tuples;
      f.detail = expected.status().ToString();
      report.failures.push_back(std::move(f));
      if (report.failures.size() >= config.max_failures) break;
      continue;
    }
    const std::vector<std::string> outputs = OutputNames(generated.query);

    std::string detail;
    for (plan::Strategy strategy : kStrategies) {
      // The shared store both drives estimates (all strategies) and is
      // fed back from GREEDY executions — calibration must never change
      // a result byte, and the soak holds it to that.
      const Outcome outcome = CheckStrategy(
          generated.query, db, *expected, outputs, strategy,
          config.calibrate ? &store : nullptr,
          (config.calibrate && strategy == plan::Strategy::kGreedy) ? &store
                                                                    : nullptr,
          &detail);
      if (outcome == Outcome::kSkip) {
        ++report.skipped;
        continue;
      }
      ++report.checks;
      if (outcome == Outcome::kFail) {
        report.failures.push_back(Minimize(generated, regime, seed, config,
                                           plan::StrategyName(strategy),
                                           detail));
      }
    }
    if (config.serve_paths) {
      for (const bool cache : {true, false}) {
        const Outcome outcome = CheckServe(
            generated.query, db, *expected, outputs, cache,
            config.calibrate ? &store : nullptr, &detail);
        ++report.checks;
        if (outcome == Outcome::kFail) {
          report.failures.push_back(
              Minimize(generated, regime, seed, config,
                       cache ? "serve-cache" : "serve-nocache", detail));
        }
      }
    }
    if (report.failures.size() >= config.max_failures) break;
  }
  return report;
}

}  // namespace gumbo::soak
