// Cluster: which shard am I, how many are there, and how do we talk —
// the identity a ShardedRuntime executes under (DESIGN.md §13).
#ifndef GUMBO_DIST_CLUSTER_H_
#define GUMBO_DIST_CLUSTER_H_

#include <string>

#include "dist/transport.h"

namespace gumbo::dist {

/// How a caller asks for sharded execution (serve::ServiceOptions,
/// bench flags, GUMBO_SHARDS / GUMBO_TRANSPORT / GUMBO_DIST_DIR).
struct ClusterOptions {
  /// Worker shards. 1 = single-process execution, no transport at all.
  int shards = 1;
  /// "inproc" (threads in this process) or "mmap" (directory mailbox,
  /// one process per shard).
  std::string transport = "inproc";
  /// Mailbox root for the mmap transport; ignored by inproc.
  std::string dir;
};

/// One shard's identity within a running cluster. Plain aggregate: the
/// transport is borrowed and must outlive every execution using it.
struct Cluster {
  Transport* transport = nullptr;
  int shard = 0;
  int num_shards = 1;

  /// Shard 0 coordinates: it sums worker stats, chooses reducer counts,
  /// assembles outputs, and broadcasts round commits.
  bool coordinator() const { return shard == 0; }
};

}  // namespace gumbo::dist

#endif  // GUMBO_DIST_CLUSTER_H_
