// Wire format of the sharded runtime (DESIGN.md §13): every byte that
// crosses a shard boundary travels in a *frame* — a fixed 32-byte header
// followed by a typed, length-prefixed body, checksummed end to end.
//
// Frame layout:
//   magic      u32   'GMB0' — rejects foreign files/streams outright
//   version    u16   kWireVersion; readers reject anything else
//   type       u16   FrameType discriminator
//   src_shard  u32   sender's shard index
//   aux        u32   frame-type specific (e.g. program job index)
//   body_bytes u64   length of the body that follows
//   checksum   u64   FNV-1a over the body bytes
//
// The body is a flat little-endian byte stream written by FrameWriter
// and read back by FrameReader with bounds-checked, memcpy-based
// accessors (no alignment assumptions). Values that already live in the
// engine's flat buffers — key/payload word arenas, relation word arenas,
// cached row fingerprints — are copied into the body verbatim, 8 bytes
// per word, and adopted verbatim on the far side: nothing is re-encoded,
// re-hashed, or re-combined, which is what makes a sharded run
// byte-identical to the single-process runtime (tests/dist_test.cc).
//
// Doubles (wire-byte accounting) ship as their IEEE-754 bit patterns, so
// accounting survives the wire bit-for-bit too.
#ifndef GUMBO_DIST_WIRE_H_
#define GUMBO_DIST_WIRE_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "common/relation.h"
#include "common/result.h"

namespace gumbo::dist {

inline constexpr uint32_t kWireMagic = 0x30424D47u;  // "GMB0" little-endian
inline constexpr uint16_t kWireVersion = 1;
inline constexpr size_t kFrameHeaderBytes = 32;

/// Frame discriminators of the shard protocol (src/dist/sharded.cc).
enum class FrameType : uint16_t {
  kMapStats = 1,        ///< worker -> coordinator: owned intermediate MB
  kReduceAlloc = 2,     ///< coordinator -> workers: global reducer count
  kShuffleChunk = 3,    ///< shard -> shard: records for owned partitions
  kJobStats = 4,        ///< worker -> coordinator: owned-subset job stats
  kOutputFragment = 5,  ///< worker -> coordinator: owned partitions' rows
  kCommit = 6,          ///< coordinator -> workers: round's committed relations
  kError = 7,           ///< any -> any: abort the protocol with a Status
  kRelation = 8,        ///< standalone: one whole relation (worker output)
};

/// FNV-1a 64 over `size` bytes — the frame body checksum.
uint64_t WireChecksum(const uint8_t* data, size_t size);

/// Appends typed values to a frame body, then seals it with a header.
class FrameWriter {
 public:
  void U32(uint32_t v) { Raw(&v, sizeof(v)); }
  void U64(uint64_t v) { Raw(&v, sizeof(v)); }
  void F64(double v) { Raw(&v, sizeof(v)); }
  void Str(const std::string& s) {
    U32(static_cast<uint32_t>(s.size()));
    Raw(s.data(), s.size());
  }
  /// `n` flat 64-bit words, verbatim.
  void Words(const uint64_t* w, size_t n) { Raw(w, n * sizeof(uint64_t)); }

  size_t body_bytes() const { return body_.size(); }

  /// Seals the body: returns header + body as one sendable frame and
  /// leaves the writer empty for reuse.
  std::vector<uint8_t> Finish(FrameType type, uint32_t src_shard,
                              uint32_t aux = 0);

 private:
  void Raw(const void* p, size_t n) {
    const uint8_t* b = static_cast<const uint8_t*>(p);
    body_.insert(body_.end(), b, b + n);
  }
  std::vector<uint8_t> body_;
};

/// Validates a frame (magic, version, length, checksum) and reads the
/// body back with bounds-checked typed accessors. Borrows the frame
/// bytes — they must outlive the reader.
class FrameReader {
 public:
  /// Rejects truncated, foreign, version-skewed, and corrupted frames
  /// with Status::ParseError before any field is readable.
  static Result<FrameReader> Parse(const std::vector<uint8_t>& frame);

  FrameType type() const { return type_; }
  uint32_t src_shard() const { return src_shard_; }
  uint32_t aux() const { return aux_; }

  Status ReadU32(uint32_t* v) { return Read(v, sizeof(*v)); }
  Status ReadU64(uint64_t* v) { return Read(v, sizeof(*v)); }
  Status ReadF64(double* v) { return Read(v, sizeof(*v)); }
  Status ReadStr(std::string* s);
  /// Reads `n` flat words into `out` (resized to exactly `n`).
  Status ReadWords(size_t n, std::vector<uint64_t>* out);

  /// Bytes of body not yet consumed.
  size_t remaining() const { return end_ - pos_; }

 private:
  FrameReader(const uint8_t* body, size_t size)
      : pos_(body), end_(body + size) {}
  Status Read(void* v, size_t n) {
    if (static_cast<size_t>(end_ - pos_) < n) {
      return Status::ParseError("wire: frame body over-read");
    }
    std::memcpy(v, pos_, n);
    pos_ += n;
    return Status::Ok();
  }

  FrameType type_ = FrameType::kError;
  uint32_t src_shard_ = 0;
  uint32_t aux_ = 0;
  const uint8_t* pos_ = nullptr;
  const uint8_t* end_ = nullptr;
};

/// Encodes one whole relation — name, arity, size-accounting knobs, and
/// the word + fingerprint arenas verbatim — as a kRelation body (the
/// same layout kCommit and kOutputFragment embed per relation).
void EncodeRelationBody(const Relation& rel, FrameWriter* w);
std::vector<uint8_t> EncodeRelationFrame(const Relation& rel,
                                         uint32_t src_shard);

/// Decodes a relation encoded by EncodeRelationBody from `r`'s current
/// position. Fingerprints are adopted verbatim (Relation::AppendRaw).
Result<Relation> DecodeRelationBody(FrameReader* r);

/// Encodes / decodes a Status as a kError body.
std::vector<uint8_t> EncodeErrorFrame(const Status& s, uint32_t src_shard);
Status DecodeErrorBody(FrameReader* r);

}  // namespace gumbo::dist

#endif  // GUMBO_DIST_WIRE_H_
