// ShardedRuntime: the round runtime of DESIGN.md §4, run symmetrically on
// N worker shards that exchange shuffle partitions over a Transport
// (DESIGN.md §13).
//
// Execution model — full replication, task-ownership sharding:
//   * every shard holds a full replica of the database, so the map-task
//     decomposition (a pure function of inputs + config) is identical
//     everywhere, and shard s simply *runs* the map tasks with
//     ti % N == s and the reduce partitions with p % N == s;
//   * per job, shards proceed in lock step: run owned maps -> agree on
//     the global reducer count (workers ship their intermediate MB, the
//     coordinator broadcasts r) -> exchange shuffle records as wire
//     frames routed by Shuffle::PartitionIndex (each record travels to
//     the shard owning its partition — including self, through the same
//     transport path) -> partition + run owned reduces -> ship output
//     fragments and stats to the coordinator;
//   * the coordinator merges shard stats (disjoint task/partition slots
//     sum element-wise), reconciles map-side vs reduce-side accounting
//     globally, assembles outputs in ascending partition order, and at
//     the round barrier commits them in job order — then broadcasts the
//     committed relations so every replica re-synchronizes before the
//     next round.
//
// Byte-identity to the single-process runtime (the oracle pinned by
// tests/dist_test.cc, same pattern as tests/shuffle_flat_test.cc): the
// per-task emission, combining, and packing happen once, on the task's
// owner, exactly as in-process; the wire format ships the resulting flat
// records verbatim (no re-encoding, fingerprints included); the import
// preserves per-(task, partition) record order and global task indices,
// which is all the partition sort's tie-break (task, emission) can
// observe; and the coordinator concatenates partition outputs in the
// same ascending-partition order Finish() does. Every byte downstream of
// the shuffle is therefore independent of the shard count.
#ifndef GUMBO_DIST_SHARDED_H_
#define GUMBO_DIST_SHARDED_H_

#include "common/relation.h"
#include "common/result.h"
#include "common/scheduler.h"
#include "dist/cluster.h"
#include "mr/program.h"
#include "mr/runtime.h"
#include "mr/stats.h"

namespace gumbo::dist {

class ShardedRuntime {
 public:
  /// `engine` and `cluster.transport` are borrowed. Every shard of the
  /// cluster must construct an equivalent runtime (same engine config).
  ShardedRuntime(mr::Engine* engine, Cluster cluster,
                 mr::RuntimeOptions options = {})
      : engine_(engine), cluster_(cluster), options_(options) {}

  const Cluster& cluster() const { return cluster_; }

  /// Executes `program` against this shard's database replica, in lock
  /// step with every other shard (all shards must call Execute with the
  /// same program). On success every replica holds the same committed
  /// outputs, byte-identical to a single-process Runtime::Execute; the
  /// coordinator's ProgramStats carry the merged (global) accounting,
  /// including the real wire MB charged at the model's transfer rate —
  /// workers' stats are their local shares.
  Result<mr::ProgramStats> Execute(const mr::Program& program, Database* db,
                                   const SchedContext& ctx = {}) const;

 private:
  Result<mr::Engine::JobResult> RunJob(const mr::JobSpec& job,
                                       const Database& db,
                                       const SchedContext& ctx,
                                       uint32_t job_aux) const;

  mr::Engine* engine_;
  Cluster cluster_;
  mr::RuntimeOptions options_;
};

/// Convenience harness: runs `program` across `shards` in-process worker
/// threads — each with its own overlay replica of `db` and an
/// InProcTransport — and commits the coordinator's outputs into `db`.
/// Semantically identical to Runtime::Execute (byte-identical outputs,
/// merged stats); exists so callers (serve layer, tests, benches) can
/// exercise real sharded execution without spawning processes.
Result<mr::ProgramStats> ExecuteShardedLocal(mr::Engine* engine,
                                             const mr::Program& program,
                                             Database* db, int shards,
                                             const SchedContext& ctx = {},
                                             mr::RuntimeOptions options = {});

}  // namespace gumbo::dist

#endif  // GUMBO_DIST_SHARDED_H_
