// Transport: how wire frames move between shards (DESIGN.md §13).
//
// The shard protocol (src/dist/sharded.cc) is written against this tiny
// interface — ordered, reliable, point-to-point frame delivery — so the
// same protocol code runs in-process (tests, local sharding) and
// multi-process (examples/worker.cc) without a single branch:
//
//   * InProcTransport: per-channel FIFO queues under one mutex. All
//     shards live in one process (one thread each); used by
//     ExecuteShardedLocal and the deterministic dist tests.
//   * MmapTransport: a directory mailbox. Channel (from -> to) is the
//     directory c<from>_<to>/ under a shared root; frame k is the file
//     f<k>.msg, written to a temp name and atomically renamed, then
//     memory-mapped (and unlinked) by the receiver. Real multi-process
//     runs — the worker binary and the scaling bench — use this; no
//     sockets, no daemons, works on any local filesystem.
//
// Both transports deliver every channel's frames in send order; Recv
// blocks (bounded by a generous timeout that turns a lost peer into
// Status::DeadlineExceeded instead of a hang).
#ifndef GUMBO_DIST_TRANSPORT_H_
#define GUMBO_DIST_TRANSPORT_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <vector>

#include "common/result.h"

namespace gumbo::dist {

class Transport {
 public:
  virtual ~Transport() = default;

  /// Enqueues `frame` on the (from -> to) channel. Frames of one channel
  /// are delivered in send order; distinct channels are independent.
  virtual Status Send(int from, int to, std::vector<uint8_t> frame) = 0;

  /// Blocks until the next frame of the (from -> to) channel arrives at
  /// endpoint `to`; Status::DeadlineExceeded after `timeout_ms`.
  virtual Result<std::vector<uint8_t>> Recv(int to, int from,
                                            int timeout_ms = kDefaultTimeoutMs) = 0;

  /// Number of endpoints (shards) this transport connects.
  virtual int endpoints() const = 0;

  virtual const char* name() const = 0;

  /// Generous: a healthy peer answers in milliseconds; only a dead or
  /// wedged one runs the clock out.
  static constexpr int kDefaultTimeoutMs = 120000;
};

/// All shards in one process: n*n FIFO queues, one mutex, one condvar.
class InProcTransport : public Transport {
 public:
  explicit InProcTransport(int endpoints);

  Status Send(int from, int to, std::vector<uint8_t> frame) override;
  Result<std::vector<uint8_t>> Recv(int to, int from,
                                    int timeout_ms) override;
  int endpoints() const override { return endpoints_; }
  const char* name() const override { return "inproc"; }

 private:
  const int endpoints_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::vector<std::deque<std::vector<uint8_t>>> channels_;  // [from*n + to]
};

/// One shard per process, frames as atomically-renamed files under a
/// shared directory, reads via mmap. The root and every channel
/// directory are created eagerly by whichever process constructs first.
class MmapTransport : public Transport {
 public:
  /// `dir`: shared mailbox root (created if absent). All cooperating
  /// processes must pass the same `dir` and `endpoints`.
  MmapTransport(std::string dir, int endpoints);

  Status Send(int from, int to, std::vector<uint8_t> frame) override;
  Result<std::vector<uint8_t>> Recv(int to, int from,
                                    int timeout_ms) override;
  int endpoints() const override { return endpoints_; }
  const char* name() const override { return "mmap"; }

 private:
  std::string ChannelDir(int from, int to) const;

  const std::string dir_;
  const int endpoints_;
  std::vector<uint64_t> send_seq_;  // [from*n + to] next file to write
  std::vector<uint64_t> recv_seq_;  // [from*n + to] next file to read
};

}  // namespace gumbo::dist

#endif  // GUMBO_DIST_TRANSPORT_H_
