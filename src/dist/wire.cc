#include "dist/wire.h"

#include <utility>

namespace gumbo::dist {

uint64_t WireChecksum(const uint8_t* data, size_t size) {
  uint64_t h = 0xcbf29ce484222325ull;  // FNV-1a 64 offset basis
  for (size_t i = 0; i < size; ++i) {
    h ^= data[i];
    h *= 0x100000001b3ull;
  }
  return h;
}

std::vector<uint8_t> FrameWriter::Finish(FrameType type, uint32_t src_shard,
                                         uint32_t aux) {
  std::vector<uint8_t> frame(kFrameHeaderBytes + body_.size());
  uint8_t* p = frame.data();
  auto put = [&p](const void* v, size_t n) {
    std::memcpy(p, v, n);
    p += n;
  };
  const uint32_t magic = kWireMagic;
  const uint16_t version = kWireVersion;
  const uint16_t t = static_cast<uint16_t>(type);
  const uint64_t body_bytes = body_.size();
  const uint64_t checksum = WireChecksum(body_.data(), body_.size());
  put(&magic, sizeof(magic));
  put(&version, sizeof(version));
  put(&t, sizeof(t));
  put(&src_shard, sizeof(src_shard));
  put(&aux, sizeof(aux));
  put(&body_bytes, sizeof(body_bytes));
  put(&checksum, sizeof(checksum));
  std::memcpy(p, body_.data(), body_.size());
  body_.clear();
  return frame;
}

Result<FrameReader> FrameReader::Parse(const std::vector<uint8_t>& frame) {
  if (frame.size() < kFrameHeaderBytes) {
    return Status::ParseError("wire: frame shorter than its header (" +
                              std::to_string(frame.size()) + " bytes)");
  }
  const uint8_t* p = frame.data();
  auto get = [&p](void* v, size_t n) {
    std::memcpy(v, p, n);
    p += n;
  };
  uint32_t magic = 0;
  uint16_t version = 0;
  uint16_t type = 0;
  uint32_t src_shard = 0;
  uint32_t aux = 0;
  uint64_t body_bytes = 0;
  uint64_t checksum = 0;
  get(&magic, sizeof(magic));
  get(&version, sizeof(version));
  get(&type, sizeof(type));
  get(&src_shard, sizeof(src_shard));
  get(&aux, sizeof(aux));
  get(&body_bytes, sizeof(body_bytes));
  get(&checksum, sizeof(checksum));
  if (magic != kWireMagic) {
    return Status::ParseError("wire: bad frame magic");
  }
  if (version != kWireVersion) {
    return Status::ParseError("wire: frame version " +
                              std::to_string(version) + ", expected " +
                              std::to_string(kWireVersion));
  }
  if (frame.size() - kFrameHeaderBytes != body_bytes) {
    return Status::ParseError(
        "wire: truncated frame (header claims " + std::to_string(body_bytes) +
        " body bytes, got " +
        std::to_string(frame.size() - kFrameHeaderBytes) + ")");
  }
  if (WireChecksum(p, body_bytes) != checksum) {
    return Status::ParseError("wire: frame checksum mismatch (" +
                              std::to_string(body_bytes) + " body bytes)");
  }
  FrameReader r(p, body_bytes);
  r.type_ = static_cast<FrameType>(type);
  r.src_shard_ = src_shard;
  r.aux_ = aux;
  return r;
}

Status FrameReader::ReadStr(std::string* s) {
  uint32_t n = 0;
  GUMBO_RETURN_IF_ERROR(ReadU32(&n));
  if (static_cast<size_t>(end_ - pos_) < n) {
    return Status::ParseError("wire: string over-read");
  }
  s->assign(reinterpret_cast<const char*>(pos_), n);
  pos_ += n;
  return Status::Ok();
}

Status FrameReader::ReadWords(size_t n, std::vector<uint64_t>* out) {
  out->resize(n);
  return Read(out->data(), n * sizeof(uint64_t));
}

void EncodeRelationBody(const Relation& rel, FrameWriter* w) {
  w->Str(rel.name());
  w->U32(rel.arity());
  w->F64(rel.bytes_per_tuple());
  w->F64(rel.representation_scale());
  w->U64(rel.size());
  w->Words(rel.words().data(), rel.words().size());
  w->Words(rel.fingerprints().data(), rel.fingerprints().size());
}

std::vector<uint8_t> EncodeRelationFrame(const Relation& rel,
                                         uint32_t src_shard) {
  FrameWriter w;
  EncodeRelationBody(rel, &w);
  return w.Finish(FrameType::kRelation, src_shard);
}

Result<Relation> DecodeRelationBody(FrameReader* r) {
  std::string name;
  uint32_t arity = 0;
  double bytes_per_tuple = 0.0;
  double scale = 1.0;
  uint64_t rows = 0;
  GUMBO_RETURN_IF_ERROR(r->ReadStr(&name));
  GUMBO_RETURN_IF_ERROR(r->ReadU32(&arity));
  GUMBO_RETURN_IF_ERROR(r->ReadF64(&bytes_per_tuple));
  GUMBO_RETURN_IF_ERROR(r->ReadF64(&scale));
  GUMBO_RETURN_IF_ERROR(r->ReadU64(&rows));
  std::vector<uint64_t> words;
  std::vector<uint64_t> fps;
  GUMBO_RETURN_IF_ERROR(r->ReadWords(rows * arity, &words));
  GUMBO_RETURN_IF_ERROR(r->ReadWords(rows, &fps));
  Relation rel(name, arity);
  if (bytes_per_tuple > 0.0) rel.set_bytes_per_tuple(bytes_per_tuple);
  rel.set_representation_scale(scale);
  rel.Reserve(rows);
  rel.AppendRaw(words.data(), fps.data(), rows);
  return rel;
}

std::vector<uint8_t> EncodeErrorFrame(const Status& s, uint32_t src_shard) {
  FrameWriter w;
  w.U32(static_cast<uint32_t>(s.code()));
  w.Str(s.message());
  return w.Finish(FrameType::kError, src_shard);
}

Status DecodeErrorBody(FrameReader* r) {
  uint32_t code = 0;
  std::string message;
  GUMBO_RETURN_IF_ERROR(r->ReadU32(&code));
  GUMBO_RETURN_IF_ERROR(r->ReadStr(&message));
  return Status(static_cast<StatusCode>(code), std::move(message));
}

}  // namespace gumbo::dist
