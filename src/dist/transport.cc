#include "dist/transport.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cassert>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <thread>
#include <utility>

namespace gumbo::dist {

namespace {

std::string ChannelName(int from, int to) {
  return "c" + std::to_string(from) + "_" + std::to_string(to);
}

}  // namespace

// ---- InProcTransport ------------------------------------------------------

InProcTransport::InProcTransport(int endpoints)
    : endpoints_(endpoints),
      channels_(static_cast<size_t>(endpoints) * endpoints) {
  assert(endpoints > 0);
}

Status InProcTransport::Send(int from, int to, std::vector<uint8_t> frame) {
  if (from < 0 || from >= endpoints_ || to < 0 || to >= endpoints_) {
    return Status::InvalidArgument("inproc transport: endpoint out of range");
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    channels_[static_cast<size_t>(from) * endpoints_ + to].push_back(
        std::move(frame));
  }
  cv_.notify_all();
  return Status::Ok();
}

Result<std::vector<uint8_t>> InProcTransport::Recv(int to, int from,
                                                   int timeout_ms) {
  if (from < 0 || from >= endpoints_ || to < 0 || to >= endpoints_) {
    return Status::InvalidArgument("inproc transport: endpoint out of range");
  }
  std::deque<std::vector<uint8_t>>& q =
      channels_[static_cast<size_t>(from) * endpoints_ + to];
  std::unique_lock<std::mutex> lock(mu_);
  if (!cv_.wait_for(lock, std::chrono::milliseconds(timeout_ms),
                    [&q] { return !q.empty(); })) {
    return Status::DeadlineExceeded(
        "inproc transport: no frame from shard " + std::to_string(from) +
        " within " + std::to_string(timeout_ms) + " ms");
  }
  std::vector<uint8_t> frame = std::move(q.front());
  q.pop_front();
  return frame;
}

// ---- MmapTransport --------------------------------------------------------

MmapTransport::MmapTransport(std::string dir, int endpoints)
    : dir_(std::move(dir)),
      endpoints_(endpoints),
      send_seq_(static_cast<size_t>(endpoints) * endpoints, 0),
      recv_seq_(static_cast<size_t>(endpoints) * endpoints, 0) {
  assert(endpoints > 0);
  // Every channel directory up front, idempotently: a receiver may start
  // polling a channel before its sender process even launched.
  std::error_code ec;
  for (int f = 0; f < endpoints_; ++f) {
    for (int t = 0; t < endpoints_; ++t) {
      std::filesystem::create_directories(ChannelDir(f, t), ec);
    }
  }
}

std::string MmapTransport::ChannelDir(int from, int to) const {
  return dir_ + "/" + ChannelName(from, to);
}

Status MmapTransport::Send(int from, int to, std::vector<uint8_t> frame) {
  if (from < 0 || from >= endpoints_ || to < 0 || to >= endpoints_) {
    return Status::InvalidArgument("mmap transport: endpoint out of range");
  }
  const uint64_t seq = send_seq_[static_cast<size_t>(from) * endpoints_ + to]++;
  const std::string dir = ChannelDir(from, to);
  const std::string tmp = dir + "/t" + std::to_string(seq) + ".tmp";
  const std::string final_path = dir + "/f" + std::to_string(seq) + ".msg";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) {
    return Status::Unavailable("mmap transport: cannot create " + tmp);
  }
  const size_t written = std::fwrite(frame.data(), 1, frame.size(), f);
  const bool flushed = std::fclose(f) == 0;
  if (written != frame.size() || !flushed) {
    std::remove(tmp.c_str());
    return Status::Unavailable("mmap transport: short write to " + tmp);
  }
  // The atomic rename is the publish: the receiver never sees a partial
  // frame, only absence or the complete file.
  if (std::rename(tmp.c_str(), final_path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::Unavailable("mmap transport: cannot publish " + final_path);
  }
  return Status::Ok();
}

Result<std::vector<uint8_t>> MmapTransport::Recv(int to, int from,
                                                 int timeout_ms) {
  if (from < 0 || from >= endpoints_ || to < 0 || to >= endpoints_) {
    return Status::InvalidArgument("mmap transport: endpoint out of range");
  }
  uint64_t& seq = recv_seq_[static_cast<size_t>(from) * endpoints_ + to];
  const std::string path =
      ChannelDir(from, to) + "/f" + std::to_string(seq) + ".msg";
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  int fd = -1;
  for (;;) {
    fd = ::open(path.c_str(), O_RDONLY);
    if (fd >= 0) break;
    if (std::chrono::steady_clock::now() >= deadline) {
      return Status::DeadlineExceeded(
          "mmap transport: no frame from shard " + std::to_string(from) +
          " within " + std::to_string(timeout_ms) + " ms (" + path + ")");
    }
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    return Status::Unavailable("mmap transport: cannot stat " + path);
  }
  std::vector<uint8_t> frame(static_cast<size_t>(st.st_size));
  if (!frame.empty()) {
    void* map = ::mmap(nullptr, frame.size(), PROT_READ, MAP_PRIVATE, fd, 0);
    if (map == MAP_FAILED) {
      ::close(fd);
      return Status::Unavailable("mmap transport: cannot mmap " + path);
    }
    std::memcpy(frame.data(), map, frame.size());
    ::munmap(map, frame.size());
  }
  ::close(fd);
  ::unlink(path.c_str());
  ++seq;
  return frame;
}

}  // namespace gumbo::dist
