#include "dist/sharded.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <optional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/cancel.h"
#include "dist/wire.h"
#include "mr/engine.h"
#include "mr/shuffle.h"

namespace gumbo::dist {

namespace {

constexpr double kMbPerByte = 1.0 / (1024.0 * 1024.0);

/// Receives the next frame on (from -> me), parses it, and checks the
/// type. A kError frame arriving instead carries a peer's failure — it
/// is decoded and propagated as this shard's own status, which is how
/// one shard's local error unwinds the whole lock-step protocol without
/// waiting out the transport timeout.
Result<std::vector<uint8_t>> ExpectFrame(Transport* tp, int me, int from,
                                         FrameType want) {
  GUMBO_ASSIGN_OR_RETURN(std::vector<uint8_t> bytes, tp->Recv(me, from));
  GUMBO_ASSIGN_OR_RETURN(FrameReader r, FrameReader::Parse(bytes));
  if (r.type() == FrameType::kError) {
    Status peer = DecodeErrorBody(&r);
    if (peer.ok()) peer = Status::Internal("dist: malformed error frame");
    return peer;
  }
  if (r.type() != want) {
    return Status::Internal(
        "dist: shard " + std::to_string(me) + " expected frame type " +
        std::to_string(static_cast<int>(want)) + " from shard " +
        std::to_string(from) + ", got " +
        std::to_string(static_cast<int>(r.type())));
  }
  return bytes;
}

/// Best-effort: tells every other shard this one failed, so their next
/// ExpectFrame unwinds immediately instead of timing out.
void BroadcastError(Transport* tp, int me, int shards, const Status& s) {
  for (int d = 0; d < shards; ++d) {
    if (d == me) continue;
    (void)tp->Send(me, d, EncodeErrorFrame(s, static_cast<uint32_t>(me)));
  }
}

}  // namespace

Result<mr::Engine::JobResult> ShardedRuntime::RunJob(const mr::JobSpec& job,
                                                     const Database& db,
                                                     const SchedContext& ctx,
                                                     uint32_t job_aux) const {
  const int S = cluster_.num_shards;
  const int me = cluster_.shard;
  Transport* tp = cluster_.transport;
  const uint32_t me32 = static_cast<uint32_t>(me);
  const auto owned_map = [S, me](size_t ti) {
    return static_cast<int>(ti % static_cast<size_t>(S)) == me;
  };
  const auto owned_red = [S, me](size_t p) {
    return static_cast<int>(p % static_cast<size_t>(S)) == me;
  };
  // A local failure past Prepare leaves peers blocked mid-protocol;
  // broadcast it so they unwind (see ExpectFrame).
  auto fail = [&](Status s) -> Status {
    BroadcastError(tp, me, S, s);
    return s;
  };

  GUMBO_ASSIGN_OR_RETURN(std::unique_ptr<mr::JobExecution> exec,
                         mr::JobExecution::Prepare(*engine_, job, db, ctx));
  GUMBO_RETURN_IF_ERROR(exec->RunMaps(owned_map));
  exec->AccountMaps(owned_map);

  // ---- Agree on the global reducer count. The split is deterministic
  // and replicated, so only the measured intermediate MB (a function of
  // the data each shard actually mapped) needs exchanging.
  int r = 0;
  if (me == 0) {
    double total_intermediate_mb = exec->OwnedIntermediateMb(owned_map);
    for (int s = 1; s < S; ++s) {
      GUMBO_ASSIGN_OR_RETURN(
          std::vector<uint8_t> bytes,
          ExpectFrame(tp, me, s, FrameType::kMapStats));
      exec->stats().dist_wire_mb += static_cast<double>(bytes.size()) * kMbPerByte;
      GUMBO_ASSIGN_OR_RETURN(FrameReader rd, FrameReader::Parse(bytes));
      double shard_mb = 0.0;
      GUMBO_RETURN_IF_ERROR(rd.ReadF64(&shard_mb));
      total_intermediate_mb += shard_mb;
    }
    r = exec->ChooseReducers(total_intermediate_mb, exec->TotalInputMb());
    FrameWriter w;
    for (int s = 1; s < S; ++s) {
      w.U32(static_cast<uint32_t>(r));
      std::vector<uint8_t> frame =
          w.Finish(FrameType::kReduceAlloc, me32, job_aux);
      exec->stats().dist_wire_mb +=
          static_cast<double>(frame.size()) * kMbPerByte;
      GUMBO_RETURN_IF_ERROR(tp->Send(me, s, std::move(frame)));
    }
  } else {
    FrameWriter w;
    w.F64(exec->OwnedIntermediateMb(owned_map));
    GUMBO_RETURN_IF_ERROR(
        tp->Send(me, 0, w.Finish(FrameType::kMapStats, me32, job_aux)));
    GUMBO_ASSIGN_OR_RETURN(std::vector<uint8_t> bytes,
                           ExpectFrame(tp, me, 0, FrameType::kReduceAlloc));
    GUMBO_ASSIGN_OR_RETURN(FrameReader rd, FrameReader::Parse(bytes));
    uint32_t ru = 0;
    GUMBO_RETURN_IF_ERROR(rd.ReadU32(&ru));
    r = static_cast<int>(ru);
  }

  // ---- Shuffle exchange: every owned record is routed to the shard
  // owning its partition — one kShuffleChunk frame per destination
  // (empty frames included, so receive counts are uniform). Records are
  // shipped verbatim from the flat shuffle buffers: key words, cached
  // fingerprint, messages, and spilled payloads, with the wire-byte
  // accounting doubles as bit patterns.
  double shuffle_sent_bytes = 0.0;
  {
    std::vector<FrameWriter> writers(static_cast<size_t>(S));
    mr::Shuffle& shuffle = exec->shuffle();
    for (size_t ti = 0; ti < exec->tasks().size(); ++ti) {
      if (!owned_map(ti)) continue;
      shuffle.ForEachTaskRecord(
          ti, [&](const mr::Shuffle::KeyEntry& e, const uint64_t* key_words,
                  const mr::Message* msgs, const uint64_t* payload_arena) {
            const size_t p = mr::Shuffle::PartitionIndex(e.fingerprint, r);
            FrameWriter& w = writers[p % static_cast<size_t>(S)];
            w.U32(static_cast<uint32_t>(ti));
            w.U32(e.key_arity);
            w.U64(e.fingerprint);
            w.F64(e.wire_bytes);
            w.U32(e.msg_count);
            w.Words(key_words, e.key_arity);
            for (uint32_t mi = 0; mi < e.msg_count; ++mi) {
              const mr::Message& m = msgs[mi];
              w.U32(m.tag);
              w.U32(m.aux);
              w.U32(m.payload_size);
              w.F64(m.wire_bytes);
              w.Words(m.payload_words(payload_arena), m.payload_size);
            }
          });
    }
    for (int d = 0; d < S; ++d) {
      std::vector<uint8_t> frame =
          writers[static_cast<size_t>(d)].Finish(FrameType::kShuffleChunk,
                                                 me32, job_aux);
      shuffle_sent_bytes += static_cast<double>(frame.size());
      GUMBO_RETURN_IF_ERROR(tp->Send(me, d, std::move(frame)));
    }
  }

  // ---- Shuffle import: a fresh Shuffle over the same global task list,
  // fed from the S received chunks in shard order. Within one (task,
  // partition) pair the records arrive in their original emission order
  // (one source frame, walked in order); that plus the global task
  // indices is everything the partition sort's (task, emission)
  // tie-break observes, so the sorted partitions are byte-identical to
  // the single-process shuffle's.
  {
    mr::Shuffle imported(exec->tasks().size(), job.pack_messages);
    std::vector<uint64_t> key_scratch;
    std::vector<uint64_t> payload_scratch;
    std::vector<uint64_t> word_tmp;
    std::vector<mr::Shuffle::ImportMessage> msg_scratch;
    std::vector<size_t> payload_offsets;
    for (int s = 0; s < S; ++s) {
      GUMBO_ASSIGN_OR_RETURN(std::vector<uint8_t> bytes,
                             ExpectFrame(tp, me, s, FrameType::kShuffleChunk));
      GUMBO_ASSIGN_OR_RETURN(FrameReader rd, FrameReader::Parse(bytes));
      while (rd.remaining() > 0) {
        uint32_t ti = 0;
        uint32_t key_arity = 0;
        uint64_t fingerprint = 0;
        double wire_bytes = 0.0;
        uint32_t msg_count = 0;
        GUMBO_RETURN_IF_ERROR(rd.ReadU32(&ti));
        GUMBO_RETURN_IF_ERROR(rd.ReadU32(&key_arity));
        GUMBO_RETURN_IF_ERROR(rd.ReadU64(&fingerprint));
        GUMBO_RETURN_IF_ERROR(rd.ReadF64(&wire_bytes));
        GUMBO_RETURN_IF_ERROR(rd.ReadU32(&msg_count));
        GUMBO_RETURN_IF_ERROR(rd.ReadWords(key_arity, &key_scratch));
        msg_scratch.assign(msg_count, {});
        payload_offsets.assign(msg_count, 0);
        payload_scratch.clear();
        for (uint32_t mi = 0; mi < msg_count; ++mi) {
          mr::Shuffle::ImportMessage& im = msg_scratch[mi];
          GUMBO_RETURN_IF_ERROR(rd.ReadU32(&im.tag));
          GUMBO_RETURN_IF_ERROR(rd.ReadU32(&im.aux));
          GUMBO_RETURN_IF_ERROR(rd.ReadU32(&im.payload_size));
          GUMBO_RETURN_IF_ERROR(rd.ReadF64(&im.wire_bytes));
          GUMBO_RETURN_IF_ERROR(rd.ReadWords(im.payload_size, &word_tmp));
          payload_offsets[mi] = payload_scratch.size();
          payload_scratch.insert(payload_scratch.end(), word_tmp.begin(),
                                 word_tmp.end());
        }
        // Pointers resolved only once the scratch arena stopped growing.
        for (uint32_t mi = 0; mi < msg_count; ++mi) {
          msg_scratch[mi].payload = payload_scratch.data() + payload_offsets[mi];
        }
        GUMBO_RETURN_IF_ERROR(imported.ImportTaskRecord(
            ti, key_scratch.data(), key_arity, fingerprint, wire_bytes,
            msg_scratch.data(), msg_count));
      }
    }
    exec->shuffle() = std::move(imported);
  }

  GUMBO_RETURN_IF_ERROR(exec->Partition(r));
  if (Status s = exec->RunReduces(owned_red); !s.ok()) return fail(s);
  exec->AccountReduces(owned_red);
  exec->FinalizeCounters();

  const size_t num_outputs = job.outputs.size();
  mr::JobStats& st = exec->stats();

  if (me != 0) {
    // ---- Worker epilogue: ship the owned partitions' output rows and
    // the owned-subset stats; outputs themselves stay empty (the replica
    // is refreshed by the round's kCommit frames).
    FrameWriter w;
    for (size_t p = 0; p < static_cast<size_t>(r); ++p) {
      if (!owned_red(p)) continue;
      std::vector<RelationBuilder> builders = exec->TakeReduceOutputs(p);
      w.U32(static_cast<uint32_t>(p));
      for (size_t oi = 0; oi < num_outputs; ++oi) {
        const mr::JobOutput& spec = job.outputs[oi];
        Relation frag(spec.dataset, spec.arity);
        frag.Adopt(std::move(builders[oi]));
        w.U64(frag.size());
        w.Words(frag.words().data(), frag.words().size());
        w.Words(frag.fingerprints().data(), frag.fingerprints().size());
      }
    }
    // Not added to shuffle_sent_bytes: the coordinator counts epilogue
    // frames on receive, so each frame is charged exactly once.
    GUMBO_RETURN_IF_ERROR(
        tp->Send(me, 0, w.Finish(FrameType::kOutputFragment, me32, job_aux)));
    FrameWriter sw;
    sw.F64(st.shuffle_mb);
    sw.F64(st.hdfs_read_mb);
    sw.F64(st.hdfs_write_mb);
    sw.F64(exec->ReceivedMb());
    sw.U32(static_cast<uint32_t>(st.map_task_costs.size()));
    for (double c : st.map_task_costs) sw.F64(c);
    sw.U32(static_cast<uint32_t>(st.reduce_task_costs.size()));
    for (double c : st.reduce_task_costs) sw.F64(c);
    sw.U32(static_cast<uint32_t>(st.inputs.size()));
    for (const mr::InputStats& is : st.inputs) {
      sw.F64(is.output_mb);
      sw.F64(is.metadata_mb);
    }
    sw.U64(st.shuffle_records);
    sw.U64(st.shuffle_messages);
    sw.U64(st.fingerprint_collisions);
    sw.U64(st.combined_messages);
    sw.F64(st.combined_mb);
    sw.U64(st.filtered_messages);
    sw.U64(st.task_retries);
    sw.U64(st.faults_injected);
    sw.F64(st.retry_ms);
    sw.F64(shuffle_sent_bytes);
    GUMBO_RETURN_IF_ERROR(
        tp->Send(me, 0, sw.Finish(FrameType::kJobStats, me32, job_aux)));
    mr::Engine::JobResult partial;
    partial.stats = std::move(st);
    return partial;
  }

  // ---- Coordinator epilogue: collect fragments + stats from every
  // worker, merge the disjoint accounting slots, reconcile globally, and
  // assemble the outputs in ascending partition order — exactly the
  // concatenation Finish() performs in-process.
  struct RemoteFrag {
    std::vector<uint64_t> words;
    std::vector<uint64_t> fps;
    uint64_t rows = 0;
  };
  // [p][oi]; only partitions owned by workers are filled.
  std::vector<std::vector<RemoteFrag>> remote(static_cast<size_t>(r));
  double wire_bytes_total = shuffle_sent_bytes;
  double received_mb = exec->ReceivedMb();
  for (int s = 1; s < S; ++s) {
    GUMBO_ASSIGN_OR_RETURN(std::vector<uint8_t> fbytes,
                           ExpectFrame(tp, me, s, FrameType::kOutputFragment));
    wire_bytes_total += static_cast<double>(fbytes.size());
    GUMBO_ASSIGN_OR_RETURN(FrameReader frd, FrameReader::Parse(fbytes));
    while (frd.remaining() > 0) {
      uint32_t p = 0;
      GUMBO_RETURN_IF_ERROR(frd.ReadU32(&p));
      if (p >= static_cast<uint32_t>(r)) {
        return fail(Status::ParseError(
            "dist: output fragment names partition " + std::to_string(p) +
            " of " + std::to_string(r)));
      }
      std::vector<RemoteFrag>& frags = remote[p];
      frags.resize(num_outputs);
      for (size_t oi = 0; oi < num_outputs; ++oi) {
        RemoteFrag& f = frags[oi];
        GUMBO_RETURN_IF_ERROR(frd.ReadU64(&f.rows));
        GUMBO_RETURN_IF_ERROR(frd.ReadWords(
            f.rows * job.outputs[oi].arity, &f.words));
        GUMBO_RETURN_IF_ERROR(frd.ReadWords(f.rows, &f.fps));
      }
    }
    GUMBO_ASSIGN_OR_RETURN(std::vector<uint8_t> sbytes,
                           ExpectFrame(tp, me, s, FrameType::kJobStats));
    wire_bytes_total += static_cast<double>(sbytes.size());
    GUMBO_ASSIGN_OR_RETURN(FrameReader srd, FrameReader::Parse(sbytes));
    double shuffle_mb = 0.0, hdfs_read = 0.0, hdfs_write = 0.0, recv_mb = 0.0;
    GUMBO_RETURN_IF_ERROR(srd.ReadF64(&shuffle_mb));
    GUMBO_RETURN_IF_ERROR(srd.ReadF64(&hdfs_read));
    GUMBO_RETURN_IF_ERROR(srd.ReadF64(&hdfs_write));
    GUMBO_RETURN_IF_ERROR(srd.ReadF64(&recv_mb));
    st.shuffle_mb += shuffle_mb;
    st.hdfs_read_mb += hdfs_read;
    st.hdfs_write_mb += hdfs_write;
    received_mb += recv_mb;
    uint32_t n = 0;
    GUMBO_RETURN_IF_ERROR(srd.ReadU32(&n));
    if (n != st.map_task_costs.size()) {
      return fail(Status::ParseError("dist: map cost vector size mismatch"));
    }
    for (uint32_t i = 0; i < n; ++i) {
      double c = 0.0;
      GUMBO_RETURN_IF_ERROR(srd.ReadF64(&c));
      st.map_task_costs[i] += c;
    }
    GUMBO_RETURN_IF_ERROR(srd.ReadU32(&n));
    if (n != st.reduce_task_costs.size()) {
      return fail(
          Status::ParseError("dist: reduce cost vector size mismatch"));
    }
    for (uint32_t i = 0; i < n; ++i) {
      double c = 0.0;
      GUMBO_RETURN_IF_ERROR(srd.ReadF64(&c));
      st.reduce_task_costs[i] += c;
    }
    GUMBO_RETURN_IF_ERROR(srd.ReadU32(&n));
    if (n != st.inputs.size()) {
      return fail(Status::ParseError("dist: input stats size mismatch"));
    }
    for (uint32_t i = 0; i < n; ++i) {
      double out_mb = 0.0, meta_mb = 0.0;
      GUMBO_RETURN_IF_ERROR(srd.ReadF64(&out_mb));
      GUMBO_RETURN_IF_ERROR(srd.ReadF64(&meta_mb));
      st.inputs[i].output_mb += out_mb;
      st.inputs[i].metadata_mb += meta_mb;
    }
    uint64_t u = 0;
    double d = 0.0;
    GUMBO_RETURN_IF_ERROR(srd.ReadU64(&u));
    st.shuffle_records += u;
    GUMBO_RETURN_IF_ERROR(srd.ReadU64(&u));
    st.shuffle_messages += u;
    GUMBO_RETURN_IF_ERROR(srd.ReadU64(&u));
    st.fingerprint_collisions += u;
    GUMBO_RETURN_IF_ERROR(srd.ReadU64(&u));
    st.combined_messages += u;
    GUMBO_RETURN_IF_ERROR(srd.ReadF64(&d));
    st.combined_mb += d;
    GUMBO_RETURN_IF_ERROR(srd.ReadU64(&u));
    st.filtered_messages += u;
    GUMBO_RETURN_IF_ERROR(srd.ReadU64(&u));
    st.task_retries += u;
    GUMBO_RETURN_IF_ERROR(srd.ReadU64(&u));
    st.faults_injected += u;
    GUMBO_RETURN_IF_ERROR(srd.ReadF64(&d));
    st.retry_ms += d;
    GUMBO_RETURN_IF_ERROR(srd.ReadF64(&d));
    wire_bytes_total += d;  // the worker's shuffle + fragment sends
  }

  // Global reconciliation — same invariant, same tolerance as the
  // single-process Finish().
  if (std::abs(received_mb - st.shuffle_mb) >
      1e-6 * std::max(1.0, st.shuffle_mb)) {
    return fail(Status::Internal(
        "job " + job.name +
        ": sharded map-side and reduce-side shuffle accounting diverged "
        "(map " +
        std::to_string(st.shuffle_mb) + " MB, reduce " +
        std::to_string(received_mb) + " MB)"));
  }

  mr::Engine::JobResult result;
  result.outputs.reserve(num_outputs);
  std::vector<std::vector<RelationBuilder>> own(static_cast<size_t>(r));
  for (size_t p = 0; p < static_cast<size_t>(r); ++p) {
    if (owned_red(p)) own[p] = exec->TakeReduceOutputs(p);
  }
  for (size_t oi = 0; oi < num_outputs; ++oi) {
    const mr::JobOutput& spec = job.outputs[oi];
    Relation out(spec.dataset, spec.arity);
    if (spec.bytes_per_tuple > 0.0) out.set_bytes_per_tuple(spec.bytes_per_tuple);
    out.set_representation_scale(exec->scale());
    for (size_t p = 0; p < static_cast<size_t>(r); ++p) {
      if (owned_red(p)) {
        out.Adopt(std::move(own[p][oi]));
      } else if (oi < remote[p].size()) {
        const RemoteFrag& f = remote[p][oi];
        out.AppendRaw(f.words.data(), f.fps.data(), f.rows);
      }
    }
    if (spec.dedupe) {
      out.SortAndDedupe(&engine_->scheduler(), &ctx);
    }
    result.outputs.push_back(std::move(out));
  }

  st.dist_wire_mb += wire_bytes_total * kMbPerByte;
  result.stats = std::move(st);
  return result;
}

Result<mr::ProgramStats> ShardedRuntime::Execute(const mr::Program& program,
                                                 Database* db,
                                                 const SchedContext& ctx) const {
  const int S = cluster_.num_shards;
  const int me = cluster_.shard;
  Transport* tp = cluster_.transport;
  if (S <= 1) {
    // Degenerate cluster: the single-process runtime IS the semantics.
    mr::Runtime rt(engine_, options_);
    return rt.Execute(program, db, ctx);
  }
  if (tp == nullptr || tp->endpoints() < S) {
    return Status::InvalidArgument(
        "dist: cluster of " + std::to_string(S) +
        " shards needs a transport with as many endpoints");
  }

  using Clock = std::chrono::steady_clock;
  const Clock::time_point program_start = Clock::now();
  auto ms_since = [](Clock::time_point t0) {
    return std::chrono::duration<double, std::milli>(Clock::now() - t0)
        .count();
  };
  const double transfer = engine_->config().costs.transfer;

  mr::ProgramStats stats;
  stats.jobs.resize(program.size());
  const std::vector<std::vector<size_t>> rounds =
      mr::Runtime::JobRounds(program);
  stats.round_stats.reserve(rounds.size());

  for (size_t ri = 0; ri < rounds.size(); ++ri) {
    const std::vector<size_t>& round = rounds[ri];
    const Clock::time_point round_start = Clock::now();
    GUMBO_RETURN_IF_ERROR(CheckCancel(ctx.cancel));

    // Jobs run sequentially in index order: the lock-step protocol keys
    // frames by channel order, so two jobs in flight would interleave.
    // Deterministic regardless — the single-process runtime commits in
    // job order too, so results cannot differ.
    std::vector<mr::Engine::JobResult> results;
    results.reserve(round.size());
    for (size_t gj : round) {
      GUMBO_ASSIGN_OR_RETURN(
          mr::Engine::JobResult r,
          RunJob(program.job(gj), *db, ctx, static_cast<uint32_t>(gj)));
      results.push_back(std::move(r));
    }

    // ---- Round barrier.
    mr::RoundStats rs;
    rs.round = static_cast<int>(ri + 1);
    rs.jobs = round;
    rs.max_concurrent = 1;
    if (me == 0) {
      // Commit in job order, broadcasting each job's committed relations
      // so every replica re-synchronizes before the next round reads.
      for (size_t k = 0; k < round.size(); ++k) {
        mr::Engine::JobResult& r = results[k];
        FrameWriter w;
        w.U32(static_cast<uint32_t>(r.outputs.size()));
        for (const Relation& out : r.outputs) EncodeRelationBody(out, &w);
        std::vector<uint8_t> frame = w.Finish(
            FrameType::kCommit, 0, static_cast<uint32_t>(round[k]));
        r.stats.dist_wire_mb += static_cast<double>(frame.size()) *
                                static_cast<double>(S - 1) * kMbPerByte;
        r.stats.dist_cost = transfer * r.stats.dist_wire_mb;
        for (int s = 1; s < S; ++s) {
          GUMBO_RETURN_IF_ERROR(tp->Send(0, s, frame));
        }
        for (Relation& out : r.outputs) db->Put(std::move(out));
        const double cost = r.stats.TotalCost();
        rs.max_job_cost = std::max(rs.max_job_cost, cost);
        rs.sum_job_cost += cost;
        rs.shuffle_mb += r.stats.shuffle_mb;
        stats.jobs[round[k]] = std::move(r.stats);
      }
    } else {
      for (size_t k = 0; k < round.size(); ++k) {
        GUMBO_ASSIGN_OR_RETURN(std::vector<uint8_t> bytes,
                               ExpectFrame(tp, me, 0, FrameType::kCommit));
        GUMBO_ASSIGN_OR_RETURN(FrameReader rd, FrameReader::Parse(bytes));
        uint32_t n = 0;
        GUMBO_RETURN_IF_ERROR(rd.ReadU32(&n));
        for (uint32_t i = 0; i < n; ++i) {
          GUMBO_ASSIGN_OR_RETURN(Relation rel, DecodeRelationBody(&rd));
          db->Put(std::move(rel));
        }
        mr::RoundStats& worker_rs = rs;
        worker_rs.shuffle_mb += results[k].stats.shuffle_mb;
        stats.jobs[round[k]] = std::move(results[k].stats);
      }
    }
    rs.wall_ms = ms_since(round_start);
    stats.round_stats.push_back(std::move(rs));
  }

  stats.rounds = program.Rounds();
  stats.wall_ms = ms_since(program_start);
  for (const mr::JobStats& js : stats.jobs) stats.total_time += js.TotalCost();
  std::vector<std::vector<size_t>> deps;
  deps.reserve(program.size());
  for (size_t i = 0; i < program.size(); ++i) deps.push_back(program.deps(i));
  stats.net_time = mr::SimulateNetTime(stats.jobs, deps, engine_->config());
  return stats;
}

Result<mr::ProgramStats> ExecuteShardedLocal(mr::Engine* engine,
                                             const mr::Program& program,
                                             Database* db, int shards,
                                             const SchedContext& ctx,
                                             mr::RuntimeOptions options) {
  if (shards <= 1) {
    mr::Runtime rt(engine, options);
    return rt.Execute(program, db, ctx);
  }
  InProcTransport tp(shards);
  // Every shard — coordinator included — executes against its own
  // overlay replica: the shared base stays immutable while any shard
  // reads it, and the coordinator's committed relations are moved into
  // the caller's database only after every thread quiesced.
  std::vector<std::optional<Result<mr::ProgramStats>>> results(
      static_cast<size_t>(shards));
  std::vector<Database> replicas;
  replicas.reserve(static_cast<size_t>(shards));
  for (int s = 0; s < shards; ++s) {
    replicas.emplace_back(static_cast<const Database*>(db));
  }
  {
    std::vector<std::thread> threads;
    threads.reserve(static_cast<size_t>(shards));
    for (int s = 0; s < shards; ++s) {
      threads.emplace_back([&, s] {
        ShardedRuntime rt(engine, Cluster{&tp, s, shards}, options);
        results[static_cast<size_t>(s)] =
            rt.Execute(program, &replicas[static_cast<size_t>(s)], ctx);
      });
    }
    for (std::thread& t : threads) t.join();
  }
  for (int s = 1; s < shards; ++s) {
    if (!results[static_cast<size_t>(s)]->ok()) {
      return results[static_cast<size_t>(s)]->status();
    }
  }
  if (!results[0]->ok()) return results[0]->status();
  for (const auto& [name, rel] : replicas[0].relations()) {
    (void)name;
    db->Put(rel);
  }
  return std::move(**results[0]);
}

}  // namespace gumbo::dist
