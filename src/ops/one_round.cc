#include "ops/one_round.h"

#include <algorithm>
#include <map>
#include <memory>
#include <set>

#include "mr/combiner.h"
#include "ops/messages.h"

namespace gumbo::ops {

bool CanOneRound(const sgf::BsgfQuery& query) {
  if (!query.has_condition()) return true;
  if (query.AllAtomsShareJoinKey()) return true;
  return query.condition()->IsDisjunctionOfLiterals();
}

namespace {

// A key group: the conditional atoms sharing one join key, evaluated
// together at a reducer.
struct KeyGroup {
  std::vector<std::string> key_vars;
  enum class Mode {
    kFullCondition,     // single group covering all atoms (case a)
    kLocalDisjunction,  // OR of this group's literals (case b)
    kUnconditional,     // no WHERE clause: emit always
  };
  Mode mode = Mode::kFullCondition;
  /// Atoms in this group; `negated` applies in kLocalDisjunction mode.
  struct Literal {
    uint32_t atom_index = 0;
    bool negated = false;
    uint32_t cond_id = 0;  // per-group canonical condition id
  };
  std::vector<Literal> literals;
  size_t num_cond_ids = 0;
  /// Bloom pre-filtering (DESIGN.md §5.2): a group's request may be
  /// dropped only when "zero Asserts at this key" already means "do not
  /// emit" — i.e. the condition with every atom false evaluates false
  /// (kFullCondition) or the disjunction has no negated literal
  /// (kLocalDisjunction). Never for kUnconditional groups.
  bool can_filter = false;
  /// First of this group's `num_cond_ids` request filters in the job
  /// FilterSet; SIZE_MAX when the group is not request-filterable.
  size_t filter_base = SIZE_MAX;
  /// Guard-key filter of this group for assert-side suppression: an
  /// Assert at a key no guard fact projects to can reach no Request, and
  /// the reducer only ever emits Requests — dead weight for every mode
  /// (DESIGN.md §5.2). SIZE_MAX when filters are off or the group has no
  /// conditional atoms.
  size_t assert_filter = SIZE_MAX;
};

struct CompiledOneRound {
  struct Task {
    sgf::BsgfQuery query;
    std::vector<KeyGroup> groups;
    size_t output_index = 0;
    double payload_bytes = 0.0;  // SELECT projection wire size
  };
  std::vector<Task> tasks;
  size_t num_filters = 0;
  double filter_fpp = mr::BloomFilter::kDefaultFpp;
  struct CondRoute {
    size_t task;
    size_t group;
    uint32_t atom_index;
    uint32_t cond_id;
  };
  // Input routing.
  std::vector<std::vector<size_t>> guard_tasks_of_input;
  std::vector<std::vector<CondRoute>> cond_routes_of_input;
};

// Key layout: (task_id, group_id, join-key values...).
Tuple MakeKey(size_t task, size_t group, TupleView projected) {
  Tuple key;
  key.PushBack(Value::Int(static_cast<int64_t>(task)));
  key.PushBack(Value::Int(static_cast<int64_t>(group)));
  for (uint32_t i = 0; i < projected.size(); ++i) key.PushBack(projected[i]);
  return key;
}

class OneRoundMapper : public mr::Mapper {
 public:
  explicit OneRoundMapper(std::shared_ptr<const CompiledOneRound> c)
      : c_(std::move(c)) {}

  void AttachFilters(const mr::FilterSet* filters) override {
    filters_ = filters;
  }
  uint64_t SuppressedEmissions() const override { return suppressed_; }

  void Map(size_t input_index, RowView fact, uint64_t tuple_id,
           mr::Emitter* emitter) override {
    (void)tuple_id;
    for (size_t ti : c_->guard_tasks_of_input[input_index]) {
      const auto& task = c_->tasks[ti];
      if (!task.query.guard().Conforms(fact)) continue;
      Tuple projection =
          task.query.guard().Project(fact, task.query.select_vars());
      for (size_t gi = 0; gi < task.groups.size(); ++gi) {
        const KeyGroup& group = task.groups[gi];
        Tuple key_proj = task.query.guard().Project(fact, group.key_vars);
        // Drop the request only when every condition filter of the group
        // misses: no Assert can reach the reducer for this key, and the
        // group is marked safe to decide "false" on zero Asserts
        // (DESIGN.md §5.2).
        if (filters_ != nullptr && group.can_filter) {
          const uint64_t h = key_proj.Hash();
          bool might = false;
          for (size_t ci = 0; ci < group.num_cond_ids; ++ci) {
            if (filters_->filter(group.filter_base + ci).MightContain(h)) {
              might = true;
              break;
            }
          }
          if (!might) {
            ++suppressed_;
            continue;
          }
        }
        emitter->Emit(MakeKey(ti, gi, key_proj), kTagRequest, 0, projection,
                      RequestWireBytes(task.payload_bytes));
      }
    }
    seen_.clear();
    for (const auto& route : c_->cond_routes_of_input[input_index]) {
      const auto& task = c_->tasks[route.task];
      const sgf::Atom& atom =
          task.query.conditional_atoms()[route.atom_index];
      if (!atom.Conforms(fact)) continue;
      const KeyGroup& group = task.groups[route.group];
      Tuple key_proj = atom.Project(fact, group.key_vars);
      if (filters_ != nullptr && group.assert_filter != SIZE_MAX &&
          !filters_->filter(group.assert_filter)
               .MightContain(key_proj.Hash())) {
        ++suppressed_;  // no guard fact can request this key
        continue;
      }
      Tuple key = MakeKey(route.task, route.group, key_proj);
      // Dedupe identical asserts for this fact (shared signatures).
      bool dup = false;
      for (const auto& [cid, k] : seen_) {
        if (cid == route.cond_id && k == key) {
          dup = true;
          break;
        }
      }
      if (dup) continue;
      seen_.emplace_back(route.cond_id, key);
      emitter->Emit(key, kTagAssert, route.cond_id, AssertWireBytes());
    }
  }

 private:
  std::shared_ptr<const CompiledOneRound> c_;
  const mr::FilterSet* filters_ = nullptr;
  uint64_t suppressed_ = 0;
  std::vector<std::pair<uint32_t, Tuple>> seen_;
};

class OneRoundReducer : public mr::Reducer {
 public:
  explicit OneRoundReducer(std::shared_ptr<const CompiledOneRound> c)
      : c_(std::move(c)) {}

  void Reduce(TupleView key, const mr::MessageGroup& values,
              mr::ReduceEmitter* emitter) override {
    size_t ti = static_cast<size_t>(key[0].AsInt());
    size_t gi = static_cast<size_t>(key[1].AsInt());
    const auto& task = c_->tasks[ti];
    const KeyGroup& group = task.groups[gi];
    asserted_.assign(group.num_cond_ids, false);
    for (const mr::MessageRef m : values) {
      if (m.tag() == kTagAssert) asserted_[m.aux()] = true;
    }
    bool holds = false;
    switch (group.mode) {
      case KeyGroup::Mode::kUnconditional:
        holds = true;
        break;
      case KeyGroup::Mode::kFullCondition: {
        // truth of atom i = asserted[cond_id of i]; atoms are indexed by
        // their position in the query.
        holds = task.query.condition()->Evaluate([&](size_t atom) {
          for (const auto& lit : group.literals) {
            if (lit.atom_index == atom) return !!asserted_[lit.cond_id];
          }
          return false;  // unreachable: all atoms are in the single group
        });
        break;
      }
      case KeyGroup::Mode::kLocalDisjunction: {
        for (const auto& lit : group.literals) {
          bool truth = asserted_[lit.cond_id];
          if (lit.negated ? !truth : truth) {
            holds = true;
            break;
          }
        }
        break;
      }
    }
    if (!holds) return;
    for (const mr::MessageRef m : values) {
      if (m.tag() == kTagRequest) {
        emitter->Emit(task.output_index, m.PayloadView());  // zero-copy
      }
    }
  }

 private:
  std::shared_ptr<const CompiledOneRound> c_;
  std::vector<bool> asserted_;
};

// Marks which atoms appear under NOT in a disjunction-of-literals tree.
void CollectLiteralSigns(const sgf::Condition& c, std::vector<bool>* negated) {
  switch (c.kind()) {
    case sgf::Condition::Kind::kAtom:
      return;
    case sgf::Condition::Kind::kNot:
      (*negated)[c.child()->atom_index()] = true;
      return;
    case sgf::Condition::Kind::kOr:
      CollectLiteralSigns(*c.lhs(), negated);
      CollectLiteralSigns(*c.rhs(), negated);
      return;
    case sgf::Condition::Kind::kAnd:
      // Unreachable for IsDisjunctionOfLiterals inputs.
      return;
  }
}

}  // namespace

Result<mr::JobSpec> BuildOneRoundJob(const std::vector<OneRoundTask>& tasks,
                                     const OpOptions& options,
                                     const std::string& job_name) {
  if (tasks.empty()) {
    return Status::InvalidArgument("1-ROUND: no tasks");
  }
  auto compiled = std::make_shared<CompiledOneRound>();

  mr::JobSpec spec;
  spec.name = job_name;
  spec.pack_messages = options.pack_messages;

  std::vector<std::string> inputs;
  auto input_index_of = [&](const std::string& ds) {
    for (size_t i = 0; i < inputs.size(); ++i) {
      if (inputs[i] == ds) return i;
    }
    inputs.push_back(ds);
    return inputs.size() - 1;
  };
  auto grow_routes = [&] {
    compiled->guard_tasks_of_input.resize(inputs.size());
    compiled->cond_routes_of_input.resize(inputs.size());
  };

  std::set<std::string> output_names;
  for (size_t ti = 0; ti < tasks.size(); ++ti) {
    const OneRoundTask& in = tasks[ti];
    if (!CanOneRound(in.query)) {
      return Status::FailedPrecondition(
          "1-ROUND: query " + in.query.output() +
          " does not qualify (mixed keys with conjunction)");
    }
    if (in.conditional_datasets.size() != in.query.num_conditional_atoms()) {
      return Status::InvalidArgument(
          "1-ROUND: dataset count mismatch for " + in.query.output());
    }
    if (!output_names.insert(in.output_dataset).second) {
      return Status::InvalidArgument("1-ROUND: duplicate output " +
                                     in.output_dataset);
    }

    CompiledOneRound::Task task;
    task.query = in.query;
    task.output_index = ti;
    task.payload_bytes =
        10.0 * static_cast<double>(in.query.select_vars().size());

    // Build key groups.
    const auto& atoms = in.query.conditional_atoms();
    if (!in.query.has_condition()) {
      KeyGroup g;
      g.mode = KeyGroup::Mode::kUnconditional;
      task.groups.push_back(std::move(g));
    } else if (in.query.AllAtomsShareJoinKey()) {
      KeyGroup g;
      g.mode = KeyGroup::Mode::kFullCondition;
      g.key_vars = in.query.JoinKeyOf(0);
      std::map<std::string, uint32_t> ids;
      for (uint32_t ai = 0; ai < atoms.size(); ++ai) {
        std::string sig = in.conditional_datasets[ai] + "|" +
                          atoms[ai].ConditionSignature(g.key_vars);
        auto [it, ins] = ids.emplace(sig, static_cast<uint32_t>(ids.size()));
        g.literals.push_back({ai, false, it->second});
      }
      g.num_cond_ids = ids.size();
      task.groups.push_back(std::move(g));
    } else {
      // Disjunction of literals: group atoms by join key. Literal signs
      // come from the condition tree (atom or NOT atom leaves).
      std::vector<bool> negated(atoms.size(), false);
      CollectLiteralSigns(*in.query.condition(), &negated);
      std::map<std::vector<std::string>, size_t> group_of_key;
      for (uint32_t ai = 0; ai < atoms.size(); ++ai) {
        std::vector<std::string> kv = in.query.JoinKeyOf(ai);
        auto [it, ins] = group_of_key.emplace(kv, task.groups.size());
        if (ins) {
          KeyGroup g;
          g.mode = KeyGroup::Mode::kLocalDisjunction;
          g.key_vars = kv;
          task.groups.push_back(std::move(g));
        }
        KeyGroup& g = task.groups[it->second];
        std::string sig = in.conditional_datasets[ai] + "|" +
                          atoms[ai].ConditionSignature(g.key_vars);
        // Per-group condition ids.
        uint32_t cid = 0;
        bool found = false;
        for (const auto& lit : g.literals) {
          std::string other_sig =
              in.conditional_datasets[lit.atom_index] + "|" +
              atoms[lit.atom_index].ConditionSignature(g.key_vars);
          if (other_sig == sig) {
            cid = lit.cond_id;
            found = true;
            break;
          }
        }
        if (!found) cid = static_cast<uint32_t>(g.num_cond_ids++);
        g.literals.push_back({ai, negated[ai], cid});
      }
    }

    // Filter eligibility per group (see KeyGroup::can_filter) and filter
    // index assignment: one Bloom filter per (group, condition id).
    if (options.bloom_filters) {
      for (KeyGroup& g : task.groups) {
        switch (g.mode) {
          case KeyGroup::Mode::kUnconditional:
            g.can_filter = false;
            break;
          case KeyGroup::Mode::kFullCondition:
            // Safe only if zero Asserts already decides "false".
            g.can_filter = !in.query.condition()->Evaluate(
                [](size_t) { return false; });
            break;
          case KeyGroup::Mode::kLocalDisjunction:
            g.can_filter = std::none_of(
                g.literals.begin(), g.literals.end(),
                [](const KeyGroup::Literal& l) { return l.negated; });
            break;
        }
        if (g.can_filter) {
          g.filter_base = compiled->num_filters;
          compiled->num_filters += g.num_cond_ids;
        }
        if (!g.literals.empty()) {
          g.assert_filter = compiled->num_filters++;
        }
      }
    }

    // Routing.
    size_t gi = input_index_of(in.guard_dataset);
    grow_routes();
    compiled->guard_tasks_of_input[gi].push_back(ti);
    for (uint32_t ai = 0; ai < atoms.size(); ++ai) {
      size_t ii = input_index_of(in.conditional_datasets[ai]);
      grow_routes();
      // Find the group and cond id of this atom.
      for (size_t g = 0; g < task.groups.size(); ++g) {
        for (const auto& lit : task.groups[g].literals) {
          if (lit.atom_index == ai) {
            compiled->cond_routes_of_input[ii].push_back(
                {ti, g, ai, lit.cond_id});
          }
        }
      }
    }
    compiled->tasks.push_back(std::move(task));

    mr::JobOutput out;
    out.dataset = in.output_dataset;
    out.arity = in.query.OutputArity();
    out.bytes_per_tuple = 10.0 * static_cast<double>(in.query.OutputArity());
    out.dedupe = true;
    spec.outputs.push_back(std::move(out));
  }
  grow_routes();
  for (const std::string& ds : inputs) spec.inputs.push_back({ds});

  spec.mapper_factory = [compiled] {
    return std::make_unique<OneRoundMapper>(compiled);
  };
  spec.reducer_factory = [compiled] {
    return std::make_unique<OneRoundReducer>(compiled);
  };
  if (options.combiners) {
    spec.combiner_factory = [] { return std::make_unique<mr::DedupCombiner>(); };
  }
  compiled->filter_fpp = options.filter_fpp;
  if (options.bloom_filters && compiled->num_filters > 0) {
    spec.filter_builder = [compiled](const std::vector<const Relation*>& rels)
        -> Result<mr::FilterSet> {
      // Size each filter for the largest input routed to it.
      std::vector<size_t> expected(compiled->num_filters, 0);
      for (size_t i = 0; i < rels.size(); ++i) {
        for (const auto& route : compiled->cond_routes_of_input[i]) {
          const KeyGroup& g =
              compiled->tasks[route.task].groups[route.group];
          if (!g.can_filter) continue;
          const size_t fid = g.filter_base + route.cond_id;
          expected[fid] = std::max(expected[fid], rels[i]->size());
        }
        for (size_t ti : compiled->guard_tasks_of_input[i]) {
          for (const KeyGroup& g : compiled->tasks[ti].groups) {
            if (g.assert_filter == SIZE_MAX) continue;
            expected[g.assert_filter] =
                std::max(expected[g.assert_filter], rels[i]->size());
          }
        }
      }
      mr::FilterSet fs;
      for (size_t f = 0; f < compiled->num_filters; ++f) {
        fs.Add(mr::BloomFilter(expected[f], compiled->filter_fpp));
      }
      double scan_mb = 0.0;
      for (size_t i = 0; i < rels.size(); ++i) {
        // One representative route per request filter id: atoms sharing a
        // condition signature would insert the same keys twice.
        std::vector<const CompiledOneRound::CondRoute*> distinct;
        std::set<size_t> fid_seen;
        for (const auto& route : compiled->cond_routes_of_input[i]) {
          const KeyGroup& g =
              compiled->tasks[route.task].groups[route.group];
          if (!g.can_filter) continue;
          if (fid_seen.insert(g.filter_base + route.cond_id).second) {
            distinct.push_back(&route);
          }
        }
        // Guard side: every eligible group of every task guarded by this
        // input feeds its assert filter.
        std::vector<std::pair<size_t, const KeyGroup*>> guard_groups;
        for (size_t ti : compiled->guard_tasks_of_input[i]) {
          for (const KeyGroup& g : compiled->tasks[ti].groups) {
            if (g.assert_filter != SIZE_MAX) guard_groups.push_back({ti, &g});
          }
        }
        if (distinct.empty() && guard_groups.empty()) continue;
        scan_mb += rels[i]->SizeMb();
        for (RowView fact : rels[i]->views()) {
          for (const auto* route : distinct) {
            const auto& task = compiled->tasks[route->task];
            const sgf::Atom& atom =
                task.query.conditional_atoms()[route->atom_index];
            if (!atom.Conforms(fact)) continue;
            const KeyGroup& g = task.groups[route->group];
            fs.mutable_filter(g.filter_base + route->cond_id)
                ->Insert(atom.Project(fact, g.key_vars).Hash());
          }
          for (const auto& [ti, g] : guard_groups) {
            const sgf::Atom& guard = compiled->tasks[ti].query.guard();
            if (!guard.Conforms(fact)) continue;
            fs.mutable_filter(g->assert_filter)
                ->Insert(guard.Project(fact, g->key_vars).Hash());
          }
        }
      }
      fs.set_scan_mb(scan_mb);
      return fs;
    };
  }
  return spec;
}

}  // namespace gumbo::ops
