// Shuffle message vocabulary of the gumbo operators, with wire sizes.
//
// Wire sizes follow a compact Hadoop serialization: 1 tag byte, 2 bytes
// for small ids, 8 bytes for a tuple id, and 10 bytes per attribute of a
// tuple payload (the paper's data density). The tuple-id optimization
// (paper §5.1, optimization (2)) replaces a guard-tuple payload by its
// 8-byte id; the EVAL job then re-reads the guard relation to resolve ids.
#ifndef GUMBO_OPS_MESSAGES_H_
#define GUMBO_OPS_MESSAGES_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/relation.h"
#include "mr/message.h"
#include "sgf/atom.h"

namespace gumbo::ops {

/// The shuffle key of one fact under one join-key projection, plus its
/// fingerprint — THE invariant of the flat hot path: `hash` always
/// equals `TupleFingerprint(key.words(), key.size())` (== Tuple::Hash of
/// the key), whether it came from the stored row or a fresh projection.
/// Every mapper emission and every Bloom insert/probe must agree on it,
/// so the selection logic lives here, once.
struct ShuffleKey {
  TupleView key;
  uint64_t hash = 0;
  /// Backing storage when the key is a real projection; `key` views it.
  Tuple projected;

  /// Selects the key for `fact`: on an identity projection
  /// (`Atom::IsIdentityProjection(vars)`, precomputed by the operator
  /// builders as `identity`) the fact itself with its stored row
  /// fingerprint — the tuple is never hashed after load (DESIGN.md §7) —
  /// otherwise the projection, materialized and hashed once.
  void Select(const sgf::Atom& atom, bool identity,
              const std::vector<std::string>& vars, RowView fact) {
    if (identity) {
      key = fact;
      hash = fact.fingerprint();
    } else {
      projected = atom.Project(fact, vars);
      key = projected;
      hash = key.Fingerprint();
    }
  }
};

/// Hash-only variant for Bloom-filter build scans: the figure a probe of
/// the same (atom, vars, fact) via ShuffleKey::Select would use.
inline uint64_t ShuffleKeyHash(const sgf::Atom& atom, bool identity,
                               const std::vector<std::string>& vars,
                               RowView fact) {
  return identity ? fact.fingerprint() : atom.Project(fact, vars).Hash();
}

/// Message tags used by MSJ / EVAL / 1-ROUND / chain jobs.
enum MsgTag : uint32_t {
  /// Guard-side request: "does a conditional fact with my key exist?"
  /// aux = equation index; payload = guard tuple, its id, or an output
  /// projection (operator-dependent).
  kTagRequest = 1,
  /// Conditional-side assertion of existence. aux = condition id.
  kTagAssert = 2,
  /// EVAL: the guard fact itself (X0 membership). payload = guard tuple
  /// when ids are in use, empty otherwise (the key carries the tuple).
  kTagGuard = 3,
  /// EVAL: membership of the key in semi-join output X_aux.
  kTagX = 4,
};

inline constexpr double kTagBytes = 1.0;
inline constexpr double kSmallIdBytes = 2.0;
inline constexpr double kTupleIdBytes = 8.0;

/// Request message wire size (excluding key): tag + equation id + payload.
inline double RequestWireBytes(double payload_bytes) {
  return kTagBytes + kSmallIdBytes + payload_bytes;
}

/// Assert message wire size (excluding key): tag + condition id.
inline double AssertWireBytes() { return kTagBytes + kSmallIdBytes; }

}  // namespace gumbo::ops

#endif  // GUMBO_OPS_MESSAGES_H_
