// Shuffle message vocabulary of the gumbo operators, with wire sizes.
//
// Wire sizes follow a compact Hadoop serialization: 1 tag byte, 2 bytes
// for small ids, 8 bytes for a tuple id, and 10 bytes per attribute of a
// tuple payload (the paper's data density). The tuple-id optimization
// (paper §5.1, optimization (2)) replaces a guard-tuple payload by its
// 8-byte id; the EVAL job then re-reads the guard relation to resolve ids.
#ifndef GUMBO_OPS_MESSAGES_H_
#define GUMBO_OPS_MESSAGES_H_

#include <cstdint>

#include "mr/message.h"

namespace gumbo::ops {

/// Message tags used by MSJ / EVAL / 1-ROUND / chain jobs.
enum MsgTag : uint32_t {
  /// Guard-side request: "does a conditional fact with my key exist?"
  /// aux = equation index; payload = guard tuple, its id, or an output
  /// projection (operator-dependent).
  kTagRequest = 1,
  /// Conditional-side assertion of existence. aux = condition id.
  kTagAssert = 2,
  /// EVAL: the guard fact itself (X0 membership). payload = guard tuple
  /// when ids are in use, empty otherwise (the key carries the tuple).
  kTagGuard = 3,
  /// EVAL: membership of the key in semi-join output X_aux.
  kTagX = 4,
};

inline constexpr double kTagBytes = 1.0;
inline constexpr double kSmallIdBytes = 2.0;
inline constexpr double kTupleIdBytes = 8.0;

/// Request message wire size (excluding key): tag + equation id + payload.
inline double RequestWireBytes(double payload_bytes) {
  return kTagBytes + kSmallIdBytes + payload_bytes;
}

/// Assert message wire size (excluding key): tag + condition id.
inline double AssertWireBytes() { return kTagBytes + kSmallIdBytes; }

}  // namespace gumbo::ops

#endif  // GUMBO_OPS_MESSAGES_H_
