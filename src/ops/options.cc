#include "ops/options.h"

#include <cstdlib>
#include <string_view>

namespace gumbo::ops {

namespace {

// Any set, non-"0", non-empty value ("1", "true", ...) means disabled.
bool EnvDisables(const char* name) {
  const char* v = std::getenv(name);
  return v != nullptr && v[0] != '\0' && std::string_view(v) != "0";
}

}  // namespace

OpOptions ApplyEnvOverrides(OpOptions options) {
  if (EnvDisables("GUMBO_DISABLE_COMBINERS")) options.combiners = false;
  if (EnvDisables("GUMBO_DISABLE_FILTERS")) options.bloom_filters = false;
  return options;
}

}  // namespace gumbo::ops
