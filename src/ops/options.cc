#include "ops/options.h"

#include "common/config.h"

namespace gumbo::ops {

OpOptions ApplyEnvOverrides(OpOptions options) {
  const common::RuntimeConfig& cfg = common::RuntimeConfig::Get();
  if (cfg.disable_combiners.value_or(false)) options.combiners = false;
  if (cfg.disable_filters.value_or(false)) options.bloom_filters = false;
  return options;
}

}  // namespace gumbo::ops
