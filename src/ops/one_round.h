// 1-ROUND: the fused MSJ+EVAL job (paper §5.1, optimization (4)).
//
// A BSGF query can be answered in a single MapReduce job when, for every
// guard fact, the truth of the WHERE condition is decidable at one reducer
// (or decomposes into per-reducer disjuncts). Two cases:
//
//  (a) all conditional atoms share the same join key (e.g. query A3):
//      the guard fact sends one request carrying its SELECT projection;
//      the reducer sees every Assert relevant to the fact and evaluates
//      the full condition;
//  (b) the condition is a disjunction of literals (atoms / negated atoms),
//      possibly with different keys: the guard fact sends one request per
//      distinct key group; each reducer evaluates the OR of its local
//      literals and emits on success; the union over reducers implements
//      the disjunction (duplicates removed by the output dedupe).
//
// Queries with no WHERE clause degenerate to a projection job.
#ifndef GUMBO_OPS_ONE_ROUND_H_
#define GUMBO_OPS_ONE_ROUND_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "mr/job.h"
#include "ops/msj.h"
#include "sgf/bsgf.h"

namespace gumbo::ops {

/// Whether `query` qualifies for 1-ROUND evaluation.
bool CanOneRound(const sgf::BsgfQuery& query);

/// One fused single-job evaluation of a BSGF query.
struct OneRoundTask {
  sgf::BsgfQuery query;
  std::string guard_dataset;
  /// Dataset per conditional atom (same order as the query's atoms).
  std::vector<std::string> conditional_datasets;
  std::string output_dataset;
};

/// Builds one MR job evaluating all `tasks`; every task's query must
/// satisfy CanOneRound.
Result<mr::JobSpec> BuildOneRoundJob(const std::vector<OneRoundTask>& tasks,
                                     const OpOptions& options,
                                     const std::string& job_name);

}  // namespace gumbo::ops

#endif  // GUMBO_OPS_ONE_ROUND_H_
