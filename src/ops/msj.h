// MSJ: the multi-semi-join MapReduce operator (paper §4.2, Algorithm 1).
//
// MSJ(S) evaluates a set S of semi-join equations
//     X_i := pi(alpha_i |x kappa_i)
// in ONE MapReduce job. The mapper emits, for every guard-conforming fact,
// one Request message per equation (keyed by the equation's join key), and
// for every conditional-conforming fact one Assert message per *distinct
// condition* (keyed the same way). The reducer joins Requests with Asserts
// and writes each X_i.
//
// Sharing effects captured exactly as in the paper:
//  * guard sharing     — each input relation is read once per job;
//  * condition sharing — equations whose conditional atoms have the same
//    canonical signature w.r.t. their join key (Atom::ConditionSignature)
//    share Assert messages (query A2's S(x), S(y), ... all assert "S");
//  * key sharing       — message packing merges per-key messages into one
//    record (query A3's S(x), T(x), U(x), V(x) share the key x).
//
// Output contents: each X_i holds, for every guard fact satisfying the
// semi-join, either the full guard tuple (arity of the guard) or — with
// the tuple-id optimization — the 8-byte id of the guard fact. The final
// SELECT projection happens in the downstream EVAL job; projecting earlier
// would be incorrect when distinct guard facts agree on the select
// variables but satisfy different atoms (see DESIGN.md).
#ifndef GUMBO_OPS_MSJ_H_
#define GUMBO_OPS_MSJ_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "mr/job.h"
#include "ops/options.h"
#include "sgf/atom.h"

namespace gumbo::ops {

/// One semi-join equation X := alpha |x kappa.
struct SemiJoinEquation {
  std::string output;     ///< dataset name for X
  sgf::Atom guard;        ///< alpha
  std::string guard_dataset;  ///< relation instance alpha reads
  sgf::Atom conditional;  ///< kappa
  std::string conditional_dataset;  ///< relation instance kappa reads
};

/// Builds the single MR job computing every equation in `equations`.
/// Requirements (checked): non-empty; pairwise distinct output names; no
/// output name appears as an input dataset.
Result<mr::JobSpec> BuildMsjJob(const std::vector<SemiJoinEquation>& equations,
                                const OpOptions& options,
                                const std::string& job_name);

}  // namespace gumbo::ops

#endif  // GUMBO_OPS_MSJ_H_
