#include "ops/chain.h"

#include <algorithm>
#include <memory>

#include "mr/combiner.h"
#include "ops/messages.h"

namespace gumbo::ops {

namespace {

struct CompiledStep {
  ChainStepSpec spec;
  std::vector<std::string> key_vars;
  // Identity projections (DESIGN.md §7): the join key is the fact itself,
  // so the mapper reuses the stored row fingerprint instead of hashing.
  bool guard_key_identity = false;
  bool cond_key_identity = false;
  // Bloom pre-filtering (DESIGN.md §5.2). Requests may be dropped on
  // *positive* steps only — an anti-join emits guards *without* matches,
  // so its requests must flow. Asserts at keys no input tuple projects to
  // are dead weight for both polarities (the reducer only emits
  // requests), so assert-side filtering is always on.
  bool bloom_filters = false;
  bool request_filter = false;
  double filter_fpp = mr::BloomFilter::kDefaultFpp;
};

class ChainMapper : public mr::Mapper {
 public:
  explicit ChainMapper(std::shared_ptr<const CompiledStep> c)
      : c_(std::move(c)) {}

  void AttachFilters(const mr::FilterSet* filters) override {
    filters_ = filters;
  }
  uint64_t SuppressedEmissions() const override { return suppressed_; }

  void Map(size_t input_index, RowView fact, uint64_t tuple_id,
           mr::Emitter* emitter) override {
    (void)tuple_id;
    const ChainStepSpec& s = c_->spec;
    if (input_index == 0) {
      if (s.filter_guard_pattern && !s.guard.Conforms(fact)) return;
      key_.Select(s.guard, c_->guard_key_identity, c_->key_vars, fact);
      if (filters_ != nullptr && c_->request_filter &&
          !filters_->filter(0).MightContain(key_.hash)) {
        ++suppressed_;  // key provably unmatched: the semi-join drops it
        return;
      }
      emitter->EmitPrehashed(key_.key, key_.hash, kTagRequest, 0, fact,
                             RequestWireBytes(mr::TupleWireBytes(fact)));
    } else {
      if (!s.conditional.Conforms(fact)) return;
      key_.Select(s.conditional, c_->cond_key_identity, c_->key_vars, fact);
      if (filters_ != nullptr &&
          !filters_->filter(1).MightContain(key_.hash)) {
        ++suppressed_;  // no input tuple can request this key
        return;
      }
      emitter->EmitPrehashed(key_.key, key_.hash, kTagAssert, 0,
                             AssertWireBytes());
    }
  }

 private:
  std::shared_ptr<const CompiledStep> c_;
  const mr::FilterSet* filters_ = nullptr;
  uint64_t suppressed_ = 0;
  ShuffleKey key_;  // per-emission key/fingerprint scratch
};

class ChainReducer : public mr::Reducer {
 public:
  explicit ChainReducer(std::shared_ptr<const CompiledStep> c)
      : c_(std::move(c)) {}

  void Reduce(TupleView key, const mr::MessageGroup& values,
              mr::ReduceEmitter* emitter) override {
    (void)key;
    bool asserted = false;
    for (const mr::MessageRef m : values) {
      if (m.tag() == kTagAssert) {
        asserted = true;
        break;
      }
    }
    const ChainStepSpec& s = c_->spec;
    if (asserted != s.positive) return;
    for (const mr::MessageRef m : values) {
      if (m.tag() != kTagRequest) continue;
      if (s.emit_projection) {
        emitter->Emit(0, s.guard.Project(m.PayloadView(), s.select_vars));
      } else {
        emitter->Emit(0, m.PayloadView());  // zero-copy forward
      }
    }
  }

 private:
  std::shared_ptr<const CompiledStep> c_;
};

// Union/projection: map every chain-output tuple to its projection and
// emit the key once per group.
struct CompiledUnion {
  sgf::Atom guard;
  std::vector<std::string> select_vars;
  bool identity = false;  // projection reproduces the fact (DESIGN.md §7)
};

class UnionMapper : public mr::Mapper {
 public:
  explicit UnionMapper(std::shared_ptr<const CompiledUnion> c)
      : c_(std::move(c)) {}
  void Map(size_t input_index, RowView fact, uint64_t tuple_id,
           mr::Emitter* emitter) override {
    (void)input_index;
    (void)tuple_id;
    if (c_->identity) {
      emitter->EmitPrehashed(fact, fact.fingerprint(), kTagGuard, 0,
                             kTagBytes);
    } else {
      emitter->Emit(c_->guard.Project(fact, c_->select_vars), kTagGuard, 0,
                    kTagBytes);
    }
  }

 private:
  std::shared_ptr<const CompiledUnion> c_;
};

class UnionReducer : public mr::Reducer {
 public:
  void Reduce(TupleView key, const mr::MessageGroup& values,
              mr::ReduceEmitter* emitter) override {
    (void)values;
    emitter->Emit(0, key);  // zero-copy: key words into the output builder
  }
};

}  // namespace

Result<mr::JobSpec> BuildChainStepJob(const ChainStepSpec& step,
                                      const OpOptions& options,
                                      const std::string& job_name) {
  if (step.emit_projection && step.select_vars.empty()) {
    return Status::InvalidArgument("chain step " + job_name +
                                   ": projection without select vars");
  }
  auto compiled = std::make_shared<CompiledStep>();
  compiled->spec = step;
  compiled->key_vars = step.conditional.SharedVariables(step.guard);
  compiled->guard_key_identity =
      step.guard.IsIdentityProjection(compiled->key_vars);
  compiled->cond_key_identity =
      step.conditional.IsIdentityProjection(compiled->key_vars);
  compiled->bloom_filters = options.bloom_filters;
  compiled->request_filter = options.bloom_filters && step.positive;
  compiled->filter_fpp = options.filter_fpp;

  mr::JobSpec spec;
  spec.name = job_name;
  // Two logical inputs even when both sides read the same dataset: the
  // roles are distinguished by input index, and Hadoop would likewise read
  // a relation twice when it is mounted as two job inputs.
  spec.inputs.push_back({step.input_dataset});
  spec.inputs.push_back({step.conditional_dataset});

  mr::JobOutput out;
  out.dataset = step.output_dataset;
  if (step.emit_projection) {
    out.arity = static_cast<uint32_t>(step.select_vars.size());
    out.bytes_per_tuple = 10.0 * static_cast<double>(out.arity);
    out.dedupe = true;
  } else {
    out.arity = step.guard.arity();
    out.bytes_per_tuple = 10.0 * static_cast<double>(out.arity);
    out.dedupe = false;
  }
  spec.outputs.push_back(std::move(out));

  spec.mapper_factory = [compiled] {
    return std::make_unique<ChainMapper>(compiled);
  };
  spec.reducer_factory = [compiled] {
    return std::make_unique<ChainReducer>(compiled);
  };
  if (options.combiners) {
    spec.combiner_factory = [] { return std::make_unique<mr::DedupCombiner>(); };
  }
  if (compiled->bloom_filters) {
    // Filter 0: the conditional's projected join keys (input 1), used to
    // suppress requests on positive steps; filter 1: the input guard
    // set's projected keys (input 0), used to suppress dead asserts.
    spec.filter_builder = [compiled](const std::vector<const Relation*>& rels)
        -> Result<mr::FilterSet> {
      const Relation* input = rels[0];
      const Relation* cond = rels[1];
      const ChainStepSpec& s = compiled->spec;
      mr::FilterSet fs;
      // Slot 0 stays empty (zero bytes) on anti-join steps.
      fs.Add(compiled->request_filter
                 ? mr::BloomFilter(cond->size(), compiled->filter_fpp)
                 : mr::BloomFilter());
      fs.Add(mr::BloomFilter(input->size(), compiled->filter_fpp));
      if (compiled->request_filter) {
        for (RowView fact : cond->views()) {
          if (!s.conditional.Conforms(fact)) continue;
          fs.mutable_filter(0)->Insert(
              ShuffleKeyHash(s.conditional, compiled->cond_key_identity,
                             compiled->key_vars, fact));
        }
      }
      for (RowView fact : input->views()) {
        if (s.filter_guard_pattern && !s.guard.Conforms(fact)) continue;
        fs.mutable_filter(1)->Insert(
            ShuffleKeyHash(s.guard, compiled->guard_key_identity,
                           compiled->key_vars, fact));
      }
      fs.set_scan_mb((compiled->request_filter ? cond->SizeMb() : 0.0) +
                     input->SizeMb());
      return fs;
    };
  }
  return spec;
}

Result<mr::JobSpec> BuildUnionProjectJob(
    const std::vector<std::string>& chain_outputs, const sgf::Atom& guard,
    const std::vector<std::string>& select_vars,
    const std::string& output_dataset, const OpOptions& options,
    const std::string& job_name) {
  if (chain_outputs.empty()) {
    return Status::InvalidArgument("union: no inputs");
  }
  auto compiled = std::make_shared<CompiledUnion>();
  compiled->guard = guard;
  compiled->select_vars = select_vars;
  compiled->identity = guard.IsIdentityProjection(select_vars);

  mr::JobSpec spec;
  spec.name = job_name;
  for (const std::string& ds : chain_outputs) spec.inputs.push_back({ds});
  mr::JobOutput out;
  out.dataset = output_dataset;
  out.arity = static_cast<uint32_t>(select_vars.size());
  out.bytes_per_tuple = 10.0 * static_cast<double>(out.arity);
  out.dedupe = true;
  spec.outputs.push_back(std::move(out));
  spec.mapper_factory = [compiled] {
    return std::make_unique<UnionMapper>(compiled);
  };
  spec.reducer_factory = [] { return std::make_unique<UnionReducer>(); };
  // The union reducer only tests key existence, so per-task duplicate
  // markers combine away entirely (DESIGN.md §5.1).
  if (options.combiners) {
    spec.combiner_factory = [] { return std::make_unique<mr::DedupCombiner>(); };
  }
  return spec;
}

}  // namespace gumbo::ops
