#include "ops/eval.h"

#include <memory>
#include <set>

#include "mr/combiner.h"
#include "ops/messages.h"

namespace gumbo::ops {

namespace {

// Compiled EVAL job description shared by all task instances.
struct CompiledEval {
  struct Task {
    sgf::BsgfQuery query;
    size_t output_index = 0;
    uint32_t task_id = 0;
  };
  std::vector<Task> tasks;
  // Input routing: an input is either a guard input of a task or an X_i.
  struct InputRoute {
    size_t task = 0;
    bool is_guard = false;
    uint32_t atom_index = 0;  // which conditional atom when !is_guard
  };
  std::vector<std::vector<InputRoute>> routes;  // per input index
  bool tuple_id_refs = true;
};

// Key layout: (task_id, guard-identity...), where the identity is the
// tuple id (id mode) or the full guard tuple.
Tuple MakeKey(uint32_t task_id, TupleView identity) {
  Tuple key;
  key.PushBack(Value::Int(task_id));
  for (uint32_t i = 0; i < identity.size(); ++i) key.PushBack(identity[i]);
  return key;
}

class EvalMapper : public mr::Mapper {
 public:
  explicit EvalMapper(std::shared_ptr<const CompiledEval> c)
      : c_(std::move(c)) {}

  void Map(size_t input_index, RowView fact, uint64_t tuple_id,
           mr::Emitter* emitter) override {
    for (const auto& route : c_->routes[input_index]) {
      const auto& task = c_->tasks[route.task];
      if (route.is_guard) {
        if (!task.query.guard().Conforms(fact)) continue;
        if (c_->tuple_id_refs) {
          // Ship the guard tuple to resolve the id at the reducer.
          Tuple identity{Value::Int(static_cast<int64_t>(tuple_id))};
          emitter->Emit(MakeKey(task.task_id, identity), kTagGuard, 0, fact,
                        kTagBytes + mr::TupleWireBytes(fact));
        } else {
          emitter->Emit(MakeKey(task.task_id, fact), kTagGuard, 0, kTagBytes);
        }
      } else {
        // Membership fact of X_{atom_index}: the fact IS the identity
        // (an id in id mode, the guard tuple otherwise).
        emitter->Emit(MakeKey(task.task_id, fact), kTagX, route.atom_index,
                      kTagBytes + kSmallIdBytes);
      }
    }
  }

 private:
  std::shared_ptr<const CompiledEval> c_;
};

class EvalReducer : public mr::Reducer {
 public:
  explicit EvalReducer(std::shared_ptr<const CompiledEval> c)
      : c_(std::move(c)) {}

  void Reduce(TupleView key, const mr::MessageGroup& values,
              mr::ReduceEmitter* emitter) override {
    uint32_t task_id = static_cast<uint32_t>(key[0].AsInt());
    const auto& task = c_->tasks[task_id];
    // Zero-copy: the guard payload stays a view into the shuffle arena,
    // which outlives this call.
    TupleView guard_fact;
    bool have_guard = false;
    truth_.assign(task.query.num_conditional_atoms(), false);
    for (const mr::MessageRef m : values) {
      if (m.tag() == kTagGuard) {
        if (!have_guard) {
          guard_fact = m.PayloadView();
          have_guard = true;
        }
      } else if (m.tag() == kTagX) {
        truth_[m.aux()] = true;
      }
    }
    if (!have_guard) {
      // No guard fact for this key: X_i entries can only originate from
      // guard facts, so this indicates a plan bug in full-tuple mode; in
      // id mode it cannot happen either. Ignore defensively.
      return;
    }
    bool keep = true;
    if (task.query.has_condition()) {
      keep = task.query.condition()->Evaluate(
          [&](size_t i) { return truth_[i]; });
    }
    if (!keep) return;
    const sgf::BsgfQuery& q = task.query;
    Tuple out;
    if (c_->tuple_id_refs) {
      out = q.guard().Project(guard_fact, q.select_vars());
    } else {
      // Key = (task_id, guard tuple); the suffix view is the fact.
      out = q.guard().Project(TupleView(key.words() + 1, key.size() - 1),
                              q.select_vars());
    }
    emitter->Emit(task.output_index, out);
  }

 private:
  std::shared_ptr<const CompiledEval> c_;
  std::vector<bool> truth_;
};

}  // namespace

Result<mr::JobSpec> BuildEvalJob(const std::vector<EvalTask>& tasks,
                                 const OpOptions& options,
                                 const std::string& job_name) {
  if (tasks.empty()) {
    return Status::InvalidArgument("EVAL: no tasks");
  }
  auto compiled = std::make_shared<CompiledEval>();
  compiled->tuple_id_refs = options.tuple_id_refs;

  mr::JobSpec spec;
  spec.name = job_name;
  spec.pack_messages = options.pack_messages;

  std::vector<std::string> inputs;
  auto input_index_of = [&](const std::string& ds) {
    for (size_t i = 0; i < inputs.size(); ++i) {
      if (inputs[i] == ds) return i;
    }
    inputs.push_back(ds);
    return inputs.size() - 1;
  };

  std::set<std::string> output_names;
  for (size_t ti = 0; ti < tasks.size(); ++ti) {
    const EvalTask& in = tasks[ti];
    if (in.x_datasets.size() != in.query.num_conditional_atoms()) {
      return Status::InvalidArgument(
          "EVAL task " + in.query.output() + ": " +
          std::to_string(in.x_datasets.size()) + " X datasets for " +
          std::to_string(in.query.num_conditional_atoms()) + " atoms");
    }
    if (!output_names.insert(in.output_dataset).second) {
      return Status::InvalidArgument("EVAL: duplicate output " +
                                     in.output_dataset);
    }
    CompiledEval::Task task;
    task.query = in.query;
    task.task_id = static_cast<uint32_t>(ti);
    task.output_index = ti;
    compiled->tasks.push_back(std::move(task));

    size_t gi = input_index_of(in.guard_dataset);
    compiled->routes.resize(inputs.size());
    compiled->routes[gi].push_back({ti, true, 0});
    for (size_t ai = 0; ai < in.x_datasets.size(); ++ai) {
      size_t xi = input_index_of(in.x_datasets[ai]);
      compiled->routes.resize(inputs.size());
      compiled->routes[xi].push_back({ti, false, static_cast<uint32_t>(ai)});
    }

    mr::JobOutput out;
    out.dataset = in.output_dataset;
    out.arity = in.query.OutputArity();
    out.bytes_per_tuple = 10.0 * static_cast<double>(in.query.OutputArity());
    out.dedupe = true;
    spec.outputs.push_back(std::move(out));
  }
  compiled->routes.resize(inputs.size());
  for (const std::string& ds : inputs) spec.inputs.push_back({ds});

  spec.mapper_factory = [compiled] {
    return std::make_unique<EvalMapper>(compiled);
  };
  spec.reducer_factory = [compiled] {
    return std::make_unique<EvalReducer>(compiled);
  };
  // Dedup combiner only (DESIGN.md §5.1): EVAL's X-membership and guard
  // messages are set-semantic, but requests are never Bloom-filtered here
  // — a guard fact can produce output even when every X_i misses (e.g. a
  // fully negated condition), so no emission is provably droppable.
  if (options.combiners) {
    spec.combiner_factory = [] { return std::make_unique<mr::DedupCombiner>(); };
  }
  return spec;
}

}  // namespace gumbo::ops
