// EVAL: the Boolean-combination MapReduce job (paper §4.3).
//
// EVAL(X0, phi) computes the guard tuples of X0 satisfying the Boolean
// formula phi over the semi-join outputs X1..Xn: the mapper emits <a : i>
// for each fact a in X_i (and <a : guard> for X0 itself); the reducer
// evaluates phi on the set of indices present and outputs the SELECT
// projection of the guard fact when it holds.
//
// Multiple formulas Y1 AND phi1, ..., Ym AND phim are evaluated in one job
// (paper: EVAL(Y1, phi1, ..., Yn, phin)); keys are disambiguated by a task
// id prefix.
//
// With the tuple-id optimization the X_i hold guard tuple ids; the guard
// relation is re-read and shuffled once to resolve ids back to tuples
// (paper §5.1, optimization (2)).
#ifndef GUMBO_OPS_EVAL_H_
#define GUMBO_OPS_EVAL_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "mr/job.h"
#include "ops/msj.h"
#include "sgf/bsgf.h"

namespace gumbo::ops {

/// One formula evaluation: the EVAL-side remainder of one BSGF query.
struct EvalTask {
  /// The BSGF query this task finalizes. Supplies the guard atom, the
  /// select variables, and the condition tree.
  sgf::BsgfQuery query;
  /// Dataset the guard atom reads (usually query.guard().relation(), but
  /// plans may redirect to an intermediate).
  std::string guard_dataset;
  /// Dataset of X_i for each conditional atom i of the query (same order
  /// as query.conditional_atoms()).
  std::vector<std::string> x_datasets;
  /// Output dataset; receives the deduplicated SELECT projection.
  std::string output_dataset;
};

/// Builds one MR job evaluating all `tasks`.
Result<mr::JobSpec> BuildEvalJob(const std::vector<EvalTask>& tasks,
                                 const OpOptions& options,
                                 const std::string& job_name);

}  // namespace gumbo::ops

#endif  // GUMBO_OPS_EVAL_H_
