#include "ops/msj.h"

#include <algorithm>
#include <map>
#include <memory>
#include <set>

#include "mr/combiner.h"
#include "ops/messages.h"

namespace gumbo::ops {

namespace {

// Compiled form of an MSJ job, shared (read-only) by all mapper/reducer
// instances.
struct CompiledMsj {
  struct Equation {
    sgf::Atom guard;
    sgf::Atom conditional;
    std::vector<std::string> key_vars;  // join key, kappa-order
    uint32_t cond_id = 0;               // canonical condition id
    size_t output_index = 0;            // into JobSpec::outputs
    double payload_bytes = 0.0;         // request payload wire size
    // Identity projections (DESIGN.md §7): when the join key IS the fact,
    // the mapper reuses the relation's stored row fingerprint instead of
    // hashing the projection — tuples hash once at load, never again.
    bool guard_key_identity = false;
    bool cond_key_identity = false;
  };
  std::vector<Equation> equations;
  // Routing: per input dataset index, which equations read it as guard /
  // as conditional.
  std::vector<std::vector<size_t>> guard_eqs_of_input;
  std::vector<std::vector<size_t>> cond_eqs_of_input;
  size_t num_conditions = 0;
  bool tuple_id_refs = true;
  // Bloom pre-filtering (DESIGN.md §5.2): one filter per condition id
  // (conditions sharing a signature share a filter, like Asserts).
  bool bloom_filters = false;
  double filter_fpp = mr::BloomFilter::kDefaultFpp;
};

class MsjMapper : public mr::Mapper {
 public:
  explicit MsjMapper(std::shared_ptr<const CompiledMsj> c) : c_(std::move(c)) {}

  void AttachFilters(const mr::FilterSet* filters) override {
    filters_ = filters;
  }
  uint64_t SuppressedEmissions() const override { return suppressed_; }

  void Map(size_t input_index, RowView fact, uint64_t tuple_id,
           mr::Emitter* emitter) override {
    // Guard role: one request per equation this fact guards — unless the
    // condition's Bloom filter proves the key has no match (a semi-join
    // request with no Assert is dropped at the reducer anyway, so
    // skipping it here cannot change the result; DESIGN.md §5.2). The
    // key hash doubles as the emitter's grouping fingerprint; on identity
    // projections the stored row fingerprint is it, no hashing at all.
    for (size_t ei : c_->guard_eqs_of_input[input_index]) {
      const auto& eq = c_->equations[ei];
      if (!eq.guard.Conforms(fact)) continue;
      key_.Select(eq.guard, eq.guard_key_identity, eq.key_vars, fact);
      if (filters_ != nullptr &&
          !filters_->filter(eq.cond_id).MightContain(key_.hash)) {
        ++suppressed_;
        continue;
      }
      const double wire = RequestWireBytes(eq.payload_bytes);
      if (c_->tuple_id_refs) {
        emitter->EmitPrehashed(key_.key, key_.hash, kTagRequest,
                               static_cast<uint32_t>(ei),
                               Tuple{Value::Int(static_cast<int64_t>(tuple_id))},
                               wire);
      } else {
        emitter->EmitPrehashed(key_.key, key_.hash, kTagRequest,
                               static_cast<uint32_t>(ei), fact, wire);
      }
    }
    // Conditional role: one assert per *distinct* (condition id, key) —
    // unless the guard-side filter proves no guard fact projects to this
    // key, in which case the assert can reach no request and is dead
    // weight (DESIGN.md §5.2, assert-side filtering).
    seen_.clear();
    for (size_t ei : c_->cond_eqs_of_input[input_index]) {
      const auto& eq = c_->equations[ei];
      if (!eq.conditional.Conforms(fact)) continue;
      key_.Select(eq.conditional, eq.cond_key_identity, eq.key_vars, fact);
      if (filters_ != nullptr &&
          !filters_->filter(c_->num_conditions + eq.cond_id)
               .MightContain(key_.hash)) {
        ++suppressed_;
        continue;
      }
      bool duplicate = false;
      for (const auto& [cid, k] : seen_) {
        if (cid == eq.cond_id && key_.key == k) {
          duplicate = true;
          break;
        }
      }
      if (duplicate) continue;
      seen_.emplace_back(eq.cond_id, key_.key.ToTuple());
      emitter->EmitPrehashed(key_.key, key_.hash, kTagAssert, eq.cond_id,
                             AssertWireBytes());
    }
  }

 private:
  std::shared_ptr<const CompiledMsj> c_;
  const mr::FilterSet* filters_ = nullptr;
  uint64_t suppressed_ = 0;
  ShuffleKey key_;  // per-emission key/fingerprint scratch
  // Scratch: (cond_id, key) pairs asserted for the current fact.
  std::vector<std::pair<uint32_t, Tuple>> seen_;
};

class MsjReducer : public mr::Reducer {
 public:
  explicit MsjReducer(std::shared_ptr<const CompiledMsj> c)
      : c_(std::move(c)), asserted_(c_->num_conditions, false) {}

  void Reduce(TupleView key, const mr::MessageGroup& values,
              mr::ReduceEmitter* emitter) override {
    (void)key;
    std::fill(asserted_.begin(), asserted_.end(), false);
    for (const mr::MessageRef m : values) {
      if (m.tag() == kTagAssert) asserted_[m.aux()] = true;
    }
    for (const mr::MessageRef m : values) {
      if (m.tag() != kTagRequest) continue;
      const auto& eq = c_->equations[m.aux()];
      if (asserted_[eq.cond_id]) {
        // Zero-copy: payload words flow from the shuffle arena straight
        // into the output builder.
        emitter->Emit(eq.output_index, m.PayloadView());
      }
    }
  }

 private:
  std::shared_ptr<const CompiledMsj> c_;
  std::vector<bool> asserted_;
};

}  // namespace

Result<mr::JobSpec> BuildMsjJob(const std::vector<SemiJoinEquation>& equations,
                                const OpOptions& options,
                                const std::string& job_name) {
  if (equations.empty()) {
    return Status::InvalidArgument("MSJ: empty equation set");
  }
  // Output names pairwise distinct and disjoint from inputs.
  std::set<std::string> outputs;
  std::set<std::string> input_names;
  for (const auto& eq : equations) {
    if (!outputs.insert(eq.output).second) {
      return Status::InvalidArgument("MSJ: duplicate output " + eq.output);
    }
    input_names.insert(eq.guard_dataset);
    input_names.insert(eq.conditional_dataset);
  }
  for (const auto& out : outputs) {
    if (input_names.count(out) > 0) {
      return Status::InvalidArgument("MSJ: output " + out +
                                     " also appears as an input");
    }
  }

  auto compiled = std::make_shared<CompiledMsj>();
  compiled->tuple_id_refs = options.tuple_id_refs;

  mr::JobSpec spec;
  spec.name = job_name;
  spec.pack_messages = options.pack_messages;

  // Distinct input datasets, in first-mention order.
  std::vector<std::string> inputs;
  auto input_index_of = [&](const std::string& ds) {
    for (size_t i = 0; i < inputs.size(); ++i) {
      if (inputs[i] == ds) return i;
    }
    inputs.push_back(ds);
    return inputs.size() - 1;
  };

  // Condition ids: canonical signature -> id. The signature includes the
  // dataset (two atoms over different relation instances never share).
  std::map<std::string, uint32_t> cond_ids;

  for (size_t ei = 0; ei < equations.size(); ++ei) {
    const SemiJoinEquation& in = equations[ei];
    CompiledMsj::Equation eq;
    eq.guard = in.guard;
    eq.conditional = in.conditional;
    eq.key_vars = in.conditional.SharedVariables(in.guard);
    std::string sig =
        in.conditional_dataset + "|" +
        in.conditional.ConditionSignature(eq.key_vars);
    auto [it, inserted] =
        cond_ids.emplace(sig, static_cast<uint32_t>(cond_ids.size()));
    eq.cond_id = it->second;
    eq.payload_bytes = options.tuple_id_refs
                           ? kTupleIdBytes
                           : 10.0 * static_cast<double>(in.guard.arity());
    eq.output_index = ei;
    eq.guard_key_identity = in.guard.IsIdentityProjection(eq.key_vars);
    eq.cond_key_identity = in.conditional.IsIdentityProjection(eq.key_vars);
    compiled->equations.push_back(std::move(eq));

    size_t gi = input_index_of(in.guard_dataset);
    size_t ci = input_index_of(in.conditional_dataset);
    compiled->guard_eqs_of_input.resize(inputs.size());
    compiled->cond_eqs_of_input.resize(inputs.size());
    compiled->guard_eqs_of_input[gi].push_back(ei);
    compiled->cond_eqs_of_input[ci].push_back(ei);

    mr::JobOutput out;
    out.dataset = in.output;
    out.arity = options.tuple_id_refs ? 1 : in.guard.arity();
    out.bytes_per_tuple =
        options.tuple_id_refs ? kTupleIdBytes
                              : 10.0 * static_cast<double>(in.guard.arity());
    out.dedupe = false;
    spec.outputs.push_back(std::move(out));
  }
  compiled->guard_eqs_of_input.resize(inputs.size());
  compiled->cond_eqs_of_input.resize(inputs.size());
  compiled->num_conditions = cond_ids.size();

  // Inputs plus estimator hints: per input, the (upper-bound) message
  // count per tuple and the average message wire size, derived from the
  // equations routed to it.
  for (size_t i = 0; i < inputs.size(); ++i) {
    mr::JobInput in;
    in.dataset = inputs[i];
    double msgs = 0.0;
    double bytes = 0.0;
    for (size_t ei : compiled->guard_eqs_of_input[i]) {
      const auto& eq = compiled->equations[ei];
      msgs += 1.0;
      bytes += 10.0 * static_cast<double>(eq.key_vars.size()) +
               RequestWireBytes(eq.payload_bytes);
    }
    for (size_t ei : compiled->cond_eqs_of_input[i]) {
      const auto& eq = compiled->equations[ei];
      msgs += 1.0;
      bytes += 10.0 * static_cast<double>(eq.key_vars.size()) +
               AssertWireBytes();
    }
    in.hint_messages_per_tuple = msgs;
    in.hint_bytes_per_message = msgs > 0.0 ? bytes / msgs : 0.0;
    spec.inputs.push_back(std::move(in));
  }

  spec.mapper_factory = [compiled] {
    return std::make_unique<MsjMapper>(compiled);
  };
  spec.reducer_factory = [compiled] {
    return std::make_unique<MsjReducer>(compiled);
  };
  // Map-side dedup combiner (DESIGN.md §5.1): collapses identical Asserts
  // emitted for one key by different facts of the same map task.
  if (options.combiners) {
    spec.combiner_factory = [] { return std::make_unique<mr::DedupCombiner>(); };
  }
  // Two-sided Bloom filters per condition id (DESIGN.md §5.2), built by
  // the engine from the resolved inputs: filters [0, C) hold conditional
  // join keys (suppress Requests whose key cannot be asserted), filters
  // [C, 2C) hold guard join keys (suppress Asserts whose key no Request
  // can carry — the reducer only ever emits Requests, so such Asserts are
  // dead weight).
  if (options.bloom_filters) {
    compiled->bloom_filters = true;
    compiled->filter_fpp = options.filter_fpp;
    spec.filter_builder = [compiled](const std::vector<const Relation*>& rels)
        -> Result<mr::FilterSet> {
      const size_t nc = compiled->num_conditions;
      // Size each filter for the largest input feeding it.
      std::vector<size_t> expected(2 * nc, 0);
      for (size_t i = 0; i < rels.size(); ++i) {
        for (size_t ei : compiled->cond_eqs_of_input[i]) {
          const auto& eq = compiled->equations[ei];
          expected[eq.cond_id] =
              std::max(expected[eq.cond_id], rels[i]->size());
        }
        // Guard-side filters take one insert pass per (input, equation)
        // and equations sharing a condition can read different guards,
        // so size for the *sum* of contributing passes (a max would
        // undersize the filter and inflate its false-positive rate).
        for (size_t ei : compiled->guard_eqs_of_input[i]) {
          const auto& eq = compiled->equations[ei];
          expected[nc + eq.cond_id] += rels[i]->size();
        }
      }
      mr::FilterSet fs;
      for (size_t f = 0; f < 2 * nc; ++f) {
        fs.Add(mr::BloomFilter(expected[f], compiled->filter_fpp));
      }
      double scan_mb = 0.0;
      for (size_t i = 0; i < rels.size(); ++i) {
        // Distinct condition ids per role: equations sharing a signature
        // would insert the same conditional keys twice; guard keys go
        // into the union filter of their equation's condition.
        std::vector<size_t> cond_eqs;
        std::set<uint32_t> cond_seen;
        for (size_t ei : compiled->cond_eqs_of_input[i]) {
          if (cond_seen.insert(compiled->equations[ei].cond_id).second) {
            cond_eqs.push_back(ei);
          }
        }
        const std::vector<size_t>& guard_eqs =
            compiled->guard_eqs_of_input[i];
        if (cond_eqs.empty() && guard_eqs.empty()) continue;
        scan_mb += rels[i]->SizeMb();
        // View-based scan; ShuffleKeyHash keeps the inserted figure in
        // lockstep with what the mappers probe.
        for (RowView fact : rels[i]->views()) {
          for (size_t ei : cond_eqs) {
            const auto& eq = compiled->equations[ei];
            if (!eq.conditional.Conforms(fact)) continue;
            fs.mutable_filter(eq.cond_id)
                ->Insert(ShuffleKeyHash(eq.conditional, eq.cond_key_identity,
                                        eq.key_vars, fact));
          }
          for (size_t ei : guard_eqs) {
            const auto& eq = compiled->equations[ei];
            if (!eq.guard.Conforms(fact)) continue;
            fs.mutable_filter(nc + eq.cond_id)
                ->Insert(ShuffleKeyHash(eq.guard, eq.guard_key_identity,
                                        eq.key_vars, fact));
          }
        }
      }
      fs.set_scan_mb(scan_mb);
      return fs;
    };
  }
  return spec;
}

}  // namespace gumbo::ops
