// Building blocks of sequential (SEQ) query plans:
//
//  * ChainStep — one repartition semi-join (or anti-join, for negated
//    literals) applied to the *output of the previous step* (paper §5.2,
//    strategy SEQ; §4.1 describes the underlying one-semi-join job). Each
//    step shrinks the running guard set, which is exactly why SEQ has low
//    total time and high net time.
//  * Union/projection job — combines the outputs of the per-DNF-clause
//    chains and applies the SELECT projection (a set union; needed when
//    the condition has more than one DNF clause, e.g. query B2).
#ifndef GUMBO_OPS_CHAIN_H_
#define GUMBO_OPS_CHAIN_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "mr/job.h"
#include "ops/options.h"
#include "sgf/bsgf.h"

namespace gumbo::ops {

/// One semi-join / anti-join step of a sequential chain.
struct ChainStepSpec {
  /// Guard atom of the query (supplies the variable layout and, on the
  /// first step, the conformance pattern filter).
  sgf::Atom guard;
  /// Dataset holding the current guard set (full guard-arity tuples).
  std::string input_dataset;
  /// The conditional atom applied in this step.
  sgf::Atom conditional;
  std::string conditional_dataset;
  /// false => anti-join (keep tuples with NO matching conditional fact).
  bool positive = true;
  /// Apply the guard pattern filter (constants / repeated variables);
  /// set on the first step of a chain only.
  bool filter_guard_pattern = false;
  /// When set, this is the last step of the only chain: emit the SELECT
  /// projection (deduplicated) instead of full guard tuples.
  bool emit_projection = false;
  std::vector<std::string> select_vars;  // used when emit_projection
  std::string output_dataset;
};

/// Builds the MR job for one chain step. `options` controls the
/// shuffle-volume optimizations (DESIGN.md §5): the dedup combiner always
/// applies; Bloom-filtered requests apply to *positive* steps only — an
/// anti-join keeps exactly the guard tuples with no conditional match, so
/// dropping filter-negative requests would invert its output
/// (docs/operators.md, "Filter rules").
Result<mr::JobSpec> BuildChainStepJob(const ChainStepSpec& step,
                                      const OpOptions& options,
                                      const std::string& job_name);

/// Builds the union+projection job: reads the final dataset of each chain
/// (full guard tuples), projects onto `select_vars` of `guard`, dedupes.
/// The dedup combiner (DESIGN.md §5.1) collapses the per-key union
/// markers to one per map task.
Result<mr::JobSpec> BuildUnionProjectJob(
    const std::vector<std::string>& chain_outputs, const sgf::Atom& guard,
    const std::vector<std::string>& select_vars,
    const std::string& output_dataset, const OpOptions& options,
    const std::string& job_name);

}  // namespace gumbo::ops

#endif  // GUMBO_OPS_CHAIN_H_
