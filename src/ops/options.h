// Operator-level options shared by the MSJ / EVAL / 1-ROUND / chain
// builders — the per-plan switchboard for the paper's §5.1 message
// optimizations and the shuffle-volume optimizations of DESIGN.md §5.
#ifndef GUMBO_OPS_OPTIONS_H_
#define GUMBO_OPS_OPTIONS_H_

#include "mr/filter.h"

namespace gumbo::ops {

/// Options every operator builder accepts.
struct OpOptions {
  /// Gumbo §5.1 optimization (2): ship guard tuple ids instead of tuples.
  bool tuple_id_refs = true;
  /// Gumbo §5.1 optimization (1): message packing.
  bool pack_messages = true;
  /// Map-side set-semantics dedup combiner (DESIGN.md §5.1): collapse
  /// identical (tag, aux, payload) messages per key within one map task.
  /// Legal for every gumbo operator (docs/operators.md).
  bool combiners = true;
  /// Bloom-filtered semi-join requests (DESIGN.md §5.2): guard tuples
  /// whose join key provably has no conditional match never emit a
  /// Request. Per-operator eligibility rules in docs/operators.md.
  bool bloom_filters = true;
  /// Target false-positive probability of the key filters. 5% (~6.2
  /// bits/key) balances filter broadcast bytes against the shuffled
  /// bytes saved at the paper's 100M-key relations; DESIGN.md §5.2 gives
  /// the sizing math and §5.3 the broadcast accounting.
  double filter_fpp = 0.05;
};

/// Applies the GUMBO_DISABLE_COMBINERS / GUMBO_DISABLE_FILTERS
/// environment overrides (any non-empty value other than "0" disables
/// the corresponding optimization). The environment wins over
/// programmatic settings so CI and benches can force an ablation without
/// code changes (DESIGN.md §5.4); plan::Planner applies this to every
/// plan it builds.
OpOptions ApplyEnvOverrides(OpOptions options);

}  // namespace gumbo::ops

#endif  // GUMBO_OPS_OPTIONS_H_
